(* Benchmark harness: regenerates every table and figure of the paper's
   Section 5 (Figures 4–9 plus the in-text nest/linking-selection cost
   table, reported here as "Figure 10"), the Section 4.2 ablations, and
   Bechamel microbenchmarks of the core physical operators.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --figure 6   # one figure
     dune exec bench/main.exe -- --scale 0.02 --no-micro --no-ablation
     dune exec bench/main.exe -- --domains-sweep --scale 0.02
                                              # parallel-kernel speedups
                                              # only, to BENCH_parallel.json

   Two costs are reported per run:
   - cpu(s): measured wall-clock of the in-memory OCaml engine;
   - sim(s): the simulated 2005-disk elapsed time of Iosim (sequential
     scans, random index I/O, per-tuple engine→procedure fetch), which
     is the regime the paper's absolute numbers live in.  Figure shapes
     (who wins, crossovers) are asserted on sim(s); see EXPERIMENTS.md. *)

module Iosim = Nra_storage.Iosim
module Q = Nra.Tpch.Queries
module Nx = Nra.Exec.Nra_exec

(* ---------- configuration ---------- *)

let scale = ref 0.05
let selected_figures : int list ref = ref []
let run_micro = ref true
let run_ablation = ref true
let run_full = ref false
let run_domains_sweep = ref false
let run_outofcore_sweep = ref false
let run_rewrite_sweep = ref false
let run_columnar_sweep = ref false

let usage () =
  prerr_endline
    "usage: main.exe [--figure N]... [--scale S] [--full] [--no-micro] \
     [--no-ablation] [--domains-sweep] [--outofcore-sweep] \
     [--rewrite-sweep] [--columnar-sweep]";
  exit 2

let () =
  let rec parse = function
    | [] -> ()
    | "--figure" :: n :: rest ->
        (match int_of_string_opt n with
        | Some i -> selected_figures := i :: !selected_figures
        | None -> usage ());
        parse rest
    | "--scale" :: s :: rest ->
        (match float_of_string_opt s with
        | Some f when f > 0.0 -> scale := f
        | _ -> usage ());
        parse rest
    | "--full" :: rest ->
        run_full := true;
        parse rest
    | "--no-micro" :: rest ->
        run_micro := false;
        parse rest
    | "--no-ablation" :: rest ->
        run_ablation := false;
        parse rest
    | "--domains-sweep" :: rest ->
        run_domains_sweep := true;
        parse rest
    | "--outofcore-sweep" :: rest ->
        run_outofcore_sweep := true;
        parse rest
    | "--rewrite-sweep" :: rest ->
        run_rewrite_sweep := true;
        parse rest
    | "--columnar-sweep" :: rest ->
        run_columnar_sweep := true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

let wanted fig =
  !selected_figures = [] || List.mem fig !selected_figures

(* ---------- measurement ---------- *)

type cost = { cpu : float; sim : float; rows : int }

let measure f =
  (* one warm-up to populate minor-heap/caches, then the timed run *)
  ignore (f ());
  Iosim.reset ();
  let t0 = Unix.gettimeofday () in
  let rel = f () in
  let cpu = Unix.gettimeofday () -. t0 in
  { cpu; sim = Iosim.simulated_seconds (); rows = Nra.Relation.cardinality rel }

let run_strategy cat strategy sql =
  measure (fun () -> Nra.query_exn ~strategy cat sql)

let strategies () =
  [ ("native", Nra.Classical); ("nra-orig", Nra.Nra_original);
    ("nra-opt", Nra.Nra_optimized) ]
  @ (if !run_full then
       [ ("nra-full", Nra.Nra_full); ("hybrid", Nra.Hybrid) ]
     else [])
  @ [ ("auto", Nra.Auto) ]

let header title detail =
  Printf.printf "\n== %s ==\n   %s\n" title detail

let print_series_header () =
  Printf.printf "%-26s %8s" "size (outer block rows)" "|result|";
  List.iter
    (fun (name, _) -> Printf.printf " | %-9s %9s" (name ^ " cpu") "sim(s)")
    (strategies ());
  print_newline ()

let print_series_row label result_rows costs =
  Printf.printf "%-26s %8d" label result_rows;
  List.iter (fun c -> Printf.printf " | %9.3f %9.2f" c.cpu c.sim) costs;
  print_newline ()

let outer_block_size cat sql =
  (* size of the outermost block after its local selections — the
     paper's X axis *)
  match Nra.Planner.Analyze.analyze_string cat sql with
  | Error m -> failwith m
  | Ok t ->
      Iosim.reset ();
      let rel = Nra.Exec.Frame.block_relation t.Nra.Planner.Analyze.root in
      Nra.Relation.cardinality rel

(* machine-readable record of every sweep point, dumped as
   BENCH_subqueries.json at the end of the run *)
type point = {
  fig : string;
  outer : int;
  result_rows : int;
  auto_pick : string;
  runs : (string * cost) list;
}

let points : point list ref = ref []

(* one rewrite-on/off comparison per (query, strategy): [fired] is
   whether the cost gate actually installed directives for the plan the
   strategy ran (for auto, the plan of its pick), and [pick_*] record
   auto's choice under each configuration *)
type rw_run = {
  rw_name : string;
  fired : bool;
  pick_off : string;
  pick_on : string;
  off : cost;
  on : cost;
}

type rw_point = { rwp_fig : string; rwp_outer : int; rwp_runs : rw_run list }

let rewrite_points : rw_point list ref = ref []

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let emit_json path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"scale\": %g,\n  \"points\": [\n" !scale);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"figure\": %s, \"outer\": %d, \"result_rows\": %d, \
            \"auto_pick\": %s, \"strategies\": ["
           (json_string p.fig) p.outer p.result_rows
           (json_string p.auto_pick));
      List.iteri
        (fun j (name, c) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "{\"name\": %s, \"cpu_s\": %.6f, \"sim_s\": %.4f}"
               (json_string name) c.cpu c.sim))
        p.runs;
      Buffer.add_string buf "]}")
    (List.rev !points);
  Buffer.add_string buf "\n  ]";
  if !rewrite_points <> [] then begin
    Buffer.add_string buf ",\n  \"rewrite_sweep\": [\n";
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf "    {\"figure\": %s, \"outer\": %d, \
                           \"strategies\": ["
             (json_string p.rwp_fig) p.rwp_outer);
        List.iteri
          (fun j r ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"name\": %s, \"rewrite_fired\": %b, \"pick_off\": %s, \
                  \"pick_on\": %s, \"off_cpu_s\": %.6f, \"off_sim_s\": \
                  %.4f, \"on_cpu_s\": %.6f, \"on_sim_s\": %.4f, \
                  \"improved\": %b}"
                 (json_string r.rw_name) r.fired (json_string r.pick_off)
                 (json_string r.pick_on) r.off.cpu r.off.sim r.on.cpu
                 r.on.sim
                 (r.on.sim < r.off.sim)))
          p.rwp_runs;
        Buffer.add_string buf "]}")
      (List.rev !rewrite_points);
    Buffer.add_string buf "\n  ]"
  end;
  Buffer.add_string buf "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s (%d points, %d rewrite points)\n" path
    (List.length !points)
    (List.length !rewrite_points)

let sweep ~fig cat sqls =
  print_series_header ();
  List.iter
    (fun sql ->
      let costs =
        List.map (fun (n, s) -> (n, run_strategy cat s sql)) (strategies ())
      in
      let outer = outer_block_size cat sql in
      let auto_pick =
        match Nra.auto_choice cat sql with
        | Ok s -> Nra.strategy_to_string s
        | Error m -> "error: " ^ m
      in
      let result_rows = (snd (List.hd costs)).rows in
      points :=
        { fig; outer; result_rows; auto_pick; runs = costs } :: !points;
      print_series_row (string_of_int outer) result_rows (List.map snd costs))
    sqls

(* ---------- the data ---------- *)

let cat =
  let cfg = { Nra.Tpch.Gen.default with Nra.Tpch.Gen.scale = !scale } in
  Printf.printf "generating TPC-H data at scale %.3f (seed %Ld)...\n%!" !scale
    cfg.Nra.Tpch.Gen.seed;
  let t0 = Unix.gettimeofday () in
  let cat = Nra.Tpch.Gen.generate cfg in
  Nra.Tpch.Gen.add_benchmark_indexes cat;
  Printf.printf "done in %.1fs:" (Unix.gettimeofday () -. t0);
  List.iter
    (fun t ->
      Printf.printf " %s=%d" (Nra.Table.name t) (Nra.Table.cardinality t))
    (Nra.Catalog.tables cat);
  print_newline ();
  let c = Iosim.config () in
  Printf.printf
    "I/O model: %d rows/page, seq %.2fms, rand %.2fms, fetch %.3fms/tuple\n"
    c.Iosim.rows_per_page c.Iosim.t_seq_ms c.Iosim.t_rand_ms
    c.Iosim.t_fetch_ms;
  cat

(* statistics for the auto strategy; collection is pure CPU, so the
   simulated numbers below are unaffected *)
let () =
  match Nra.exec cat "analyze" with
  | Ok (Nra.Done m) -> Printf.printf "%s (for --strategy auto)\n" m
  | _ -> prerr_endline "warning: ANALYZE failed; auto will use defaults"

(* the paper's block sizes as fractions of the base tables, extended
   below the paper's smallest point so the auto strategy's crossover
   (native wins on tiny outer blocks, NRA past it) is visible *)
let q1_fractions = [ 500.; 1_500.; 4_000.; 8_000.; 12_000.; 16_000. ]
                   |> List.map (fun n -> n /. 1_500_000.)

let part_fractions = [ 12_000.; 24_000.; 36_000.; 48_000. ]
                     |> List.map (fun n -> n /. 200_000.)

let availqty_fraction = 16_000. /. 800_000.

let q1_sqls () =
  List.map
    (fun f ->
      let lo, hi = Q.q1_window ~outer_fraction:f in
      Q.q1 ~date_lo:lo ~date_hi:hi)
    q1_fractions

let q2_sqls quant =
  List.map
    (fun f ->
      let size_lo, size_hi = Q.size_window ~outer_fraction:f in
      Q.q2 ~quant ~size_lo ~size_hi
        ~availqty_max:(Q.availqty_bound ~fraction:availqty_fraction)
        ~quantity:25)
    part_fractions

let q3_sqls ~quant ~exists ~variant =
  List.map
    (fun f ->
      let size_lo, size_hi = Q.size_window ~outer_fraction:f in
      Q.q3 ~quant ~exists ~variant ~size_lo ~size_hi
        ~availqty_max:(Q.availqty_bound ~fraction:availqty_fraction)
        ~quantity:25)
    part_fractions

let variant_name = function Q.A -> "(a) =,=" | Q.B -> "(b) <>,=" | Q.C -> "(c) =,<>"

(* ---------- figures ---------- *)

let figure4 () =
  header "Figure 4: Query 1"
    "one-level ALL subquery over orders/lineitem; native = nested \
     iteration with the l_orderkey index (no NOT NULL on \
     l_extendedprice, so no antijoin)";
  sweep ~fig:"4" cat (q1_sqls ())

(* the JA sweep reuses Query 1's outer windows but links an aggregated
   subquery (MAX per order); fewer points than Figure 4 since there are
   four linking operators to cover *)
let ja_fractions = [ 500.; 4_000.; 16_000. ] |> List.map (fun n -> n /. 1_500_000.)

let q1_ja_sqls link =
  List.map
    (fun f ->
      let lo, hi = Q.q1_window ~outer_fraction:f in
      Q.q1_ja ~link ~date_lo:lo ~date_hi:hi)
    ja_fractions

let figure_ja () =
  List.iter
    (fun link ->
      let op = Q.ja_link_str link in
      header (Printf.sprintf "JA sweep: Query 1-JA  o_totalprice %s MAX(...)" op)
        "aggregate-linking (type JA) subquery: the value set is the \
         per-order MAX singleton; empty groups aggregate to NULL, so the \
         semijoin shortcut is off for every strategy";
      sweep ~fig:("JA " ^ op) cat (q1_ja_sqls link))
    [ Q.Ja_in; Q.Ja_not_in; Q.Ja_gt_all; Q.Ja_scalar_eq ]

let figure5 () =
  header "Figure 5: Query 2a (mixed ANY / NOT EXISTS)"
    "linear two-level; native = semijoin over antijoin, bottom-up";
  sweep ~fig:"5" cat (q2_sqls Q.Any)

let figure6 () =
  header "Figure 6: Query 2b (negative ALL / NOT EXISTS)"
    "same query with ALL: the native approach must fall back to nested \
     iteration (ps_supplycost is nullable)";
  sweep ~fig:"6" cat (q2_sqls Q.All)

let figure789 fig name ~quant ~exists =
  List.iter
    (fun variant ->
      header
        (Printf.sprintf "Figure %d%s: Query %s %s" fig
           (match variant with Q.A -> "(a)" | Q.B -> "(b)" | Q.C -> "(c)")
           name (variant_name variant))
        "tree-correlated two-level (innermost block references both \
         enclosing blocks); native = nested iteration with indexes";
      sweep
        ~fig:
          (Printf.sprintf "%d%s" fig
             (match variant with Q.A -> "a" | Q.B -> "b" | Q.C -> "c"))
        cat
        (q3_sqls ~quant ~exists ~variant))
    [ Q.A; Q.B; Q.C ]

let figure10 () =
  header "Figure 10 (in-text table): nest + linking-selection cost"
    "processing time of the nested relational operators alone, original \
     (materialized nest, two passes) vs optimized (pipelined, one pass). \
     The sweep uses absolute intermediate sizes comparable to the \
     paper's 40K–165K tuples, so the CPU numbers are directly \
     interpretable";
  Printf.printf "%-12s %14s %16s %16s\n" "outer rows" "intermediate"
    "original(s)" "optimized(s)";
  List.iter
    (fun f ->
      let lo, hi = Q.q1_window ~outer_fraction:f in
      let sql = Q.q1 ~date_lo:lo ~date_hi:hi in
      match Nra.Planner.Analyze.analyze_string cat sql with
      | Error m -> failwith m
      | Ok t ->
          (* median of 3 runs: the quantity is pure CPU and small *)
          let median options =
            let xs =
              List.init 3 (fun _ ->
                  let _, st = Nx.run_where ~options cat t in
                  st.Nx.nest_select_seconds)
            in
            List.nth (List.sort compare xs) 1
          in
          let _, st = Nx.run_where ~options:Nx.original cat t in
          Printf.printf "%-12d %14d %16.4f %16.4f\n"
            (outer_block_size cat sql)
            st.Nx.total_intermediate_rows (median Nx.original)
            (median Nx.optimized))
    [ 0.25; 0.5; 0.75; 1.0 ]

(* ---------- ablations (§4.2) ---------- *)

let ablation_run name options sql =
  match Nra.Planner.Analyze.analyze_string cat sql with
  | Error m -> failwith m
  | Ok t ->
      ignore (Nx.run ~options cat t);
      Iosim.reset ();
      let t0 = Unix.gettimeofday () in
      let rel, st = Nx.run_where ~options cat t in
      let cpu = Unix.gettimeofday () -. t0 in
      Printf.printf "  %-34s cpu %7.3fs  sim %8.2fs  peak-interm %8d  (%d rows)\n"
        name cpu
        (Iosim.simulated_seconds ())
        st.Nx.peak_intermediate_rows
        (Nra.Relation.cardinality rel)

let ablations () =
  header "Ablations" "each §4.2 optimization toggled in isolation";
  let q1 = List.nth (q1_sqls ()) 3 in
  let q2b = List.nth (q2_sqls Q.All) 3 in
  let q3c = List.nth (q3_sqls ~quant:Q.Any ~exists:true ~variant:Q.A) 3 in
  Printf.printf "\n[pipelining — §4.2.1/4.2.2, on Query 1]\n";
  ablation_run "original (two passes)" Nx.original q1;
  ablation_run "pipelined" Nx.optimized q1;
  Printf.printf "\n[nest implementation, on Query 1]\n";
  ablation_run "sort-based nest" Nx.original q1;
  ablation_run "hash-based nest"
    { Nx.original with Nx.nest_impl = `Hash }
    q1;
  Printf.printf "\n[bottom-up linear evaluation — §4.2.3, on Query 2b]\n";
  ablation_run "top-down" Nx.optimized q2b;
  ablation_run "bottom-up"
    { Nx.optimized with Nx.bottom_up_linear = true }
    q2b;
  Printf.printf "\n[nest push-down — §4.2.4, on Query 1]\n";
  ablation_run "outer join + nest" Nx.optimized q1;
  ablation_run "push-down (group once, probe)"
    { Nx.optimized with Nx.push_down_nest = true }
    q1;
  Printf.printf "\n[positive simplification — §4.2.5, on Query 3c(a)]\n";
  ablation_run "outer join + nest" Nx.optimized q3c;
  ablation_run "semijoin rewrite"
    { Nx.optimized with Nx.positive_simplify = true; push_down_nest = true }
    q3c;
  (* the buffer cache the paper's environment had 3% of: nested
     iteration recovers as the cache approaches the database size,
     while the scan-based NRA is indifferent *)
  Printf.printf
    "\n[buffer cache size vs nested iteration, on Query 1 (largest sweep \
     point)]\n";
  let saved = Iosim.config () in
  List.iter
    (fun cache_pages ->
      Iosim.set_config { saved with Iosim.cache_pages };
      Iosim.reset ();
      let rel = Nra.query_exn ~strategy:Nra.Naive cat q1 in
      Printf.printf
        "  cache %6d pages: naive sim %7.2fs  (hits %d / misses %d, %d rows)\n"
        cache_pages
        (Iosim.simulated_seconds ())
        (Iosim.cache_hits ()) (Iosim.cache_misses ())
        (Nra.Relation.cardinality rel))
    [ 0; 40; 160; 640; 2560; 10240 ];
  Iosim.set_config saved

(* ---------- guard overhead and Auto degradation ---------- *)

let robustness () =
  header "Robustness (pseudo-figure 11): guard overhead, kill-and-fallback"
    "cost of the cooperative tick checkpoints, and of Auto's \
     kill-the-attempt-and-rerun discipline when the budget is pinned to \
     the bare estimate (overrun 1.0: every optimistic estimate degrades)";
  let q1 = List.nth (q1_sqls ()) 3 in
  let direct = run_strategy cat Nra.Nra_optimized q1 in
  let guarded =
    measure (fun () ->
        let guard =
          (* effectively-infinite limits: pure checkpoint overhead *)
          Nra.Guard.budget ~wall_ms:1e12 ~sim_io_ms:1e12
            ~max_rows:max_int ()
        in
        match Nra.query ~strategy:Nra.Nra_optimized ~guard cat q1 with
        | Ok rel -> rel
        | Error m -> failwith m)
  in
  Printf.printf
    "  nra-opt, Query 1 (largest sweep point): unguarded cpu %.3fs, \
     guarded cpu %.3fs, sim %.2fs either way\n"
    direct.cpu guarded.cpu guarded.sim;
  let overrun, floor_ms = Nra.auto_guard () in
  let sqls = q1_sqls () @ q2_sqls Q.Any @ q2_sqls Q.All in
  let sweep_auto label =
    Nra.Guard.reset_events ();
    Iosim.reset ();
    let t0 = Unix.gettimeofday () in
    let sim =
      List.fold_left
        (fun acc sql ->
          Iosim.reset ();
          ignore (Nra.query_exn ~strategy:Nra.Auto cat sql);
          acc +. Iosim.simulated_seconds ())
        0.0 sqls
    in
    let cpu = Unix.gettimeofday () -. t0 in
    let ev = Nra.Guard.events () in
    Printf.printf
      "  auto, %d queries, %s: %d fallback(s), cpu %.3fs, sim %.2fs\n"
      (List.length sqls) label ev.Nra.Guard.auto_fallbacks cpu sim
  in
  sweep_auto
    (Printf.sprintf "default overrun x%.1f floor %.1fms" overrun floor_ms);
  Nra.set_auto_guard ~overrun:1.0 ~floor_ms:0.0 ();
  sweep_auto "overrun x1.0 floor 0ms";
  Nra.set_auto_guard ~overrun ~floor_ms ();
  Nra.Guard.reset_events ()

(* ---------- Bechamel microbenchmarks ---------- *)

let micro () =
  header "Microbenchmarks (Bechamel)"
    "per-operation cost of the physical operators on fixed inputs";
  let open Bechamel in
  let open Nra in
  let lineitem = Table.relation (Catalog.table cat "lineitem") in
  let orders = Table.relation (Catalog.table cat "orders") in
  let sample n rel =
    Relation.make (Relation.schema rel)
      (Array.sub (Relation.rows rel) 0 (min n (Relation.cardinality rel)))
  in
  let li = sample 20_000 lineitem in
  let ords = sample 5_000 orders in
  let li_schema = Relation.schema li in
  let o_schema = Relation.schema ords in
  let okey = Schema.find o_schema ~table:"orders" "o_orderkey" in
  let lkey = Schema.find li_schema ~table:"lineitem" "l_orderkey" in
  let join_on =
    Expr.Cmp
      (Three_valued.Eq, Expr.Col okey,
       Expr.Col (Schema.arity o_schema + lkey))
  in
  let wide = Algebra.Join.join Algebra.Join.Left_outer ~on:join_on ords li in
  let by = Array.init (Schema.arity o_schema) Fun.id in
  let keep =
    [| Schema.arity o_schema + lkey; Schema.arity o_schema + lkey |]
  in
  let grouped = Nested.Grouped.nest_sort ~by ~keep wide in
  let pred =
    Nested.Link_pred.Quant
      (Expr.Col
         (Schema.find o_schema ~table:"orders" "o_totalprice"),
       Three_valued.Gt, Nested.Link_pred.All, 0)
  in
  let tests =
    Test.make_grouped ~name:"operators"
      [
        Test.make ~name:"hash-join(5k x 20k)"
          (Staged.stage (fun () ->
               Algebra.Join.join Algebra.Join.Inner ~on:join_on ords li));
        Test.make ~name:"left-outer-join(5k x 20k)"
          (Staged.stage (fun () ->
               Algebra.Join.join Algebra.Join.Left_outer ~on:join_on ords li));
        Test.make ~name:"nest-sort"
          (Staged.stage (fun () -> Nested.Grouped.nest_sort ~by ~keep wide));
        Test.make ~name:"nest-hash"
          (Staged.stage (fun () -> Nested.Grouped.nest_hash ~by ~keep wide));
        Test.make ~name:"linking-selection"
          (Staged.stage (fun () ->
               Nested.Grouped.select pred ~marker:(Some 1) grouped));
        Test.make ~name:"pseudo-selection"
          (Staged.stage (fun () ->
               Nested.Grouped.pseudo_select pred ~marker:(Some 1)
                 ~pad:[| 0 |] grouped));
        Test.make ~name:"sort(20k)"
          (Staged.stage (fun () -> Relation.sort_by [| lkey |] li));
        Test.make ~name:"semijoin(5k x 20k)"
          (Staged.stage (fun () ->
               Algebra.Join.join Algebra.Join.Semi ~on:join_on ords li));
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let v = Hashtbl.find results name in
      match Analyze.OLS.estimates v with
      | Some (t :: _) -> Printf.printf "  %-34s %10.3f ms/run\n" name (t /. 1e6)
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    (List.sort compare names)

(* ---------- BENCH_parallel.json ----------

   Two sweeps share the file: the domains sweep (parallel-kernel
   speedup curve) and the columnar sweep (row vs columnar kernel
   timings at domains=0).  Each records its section; whichever sweeps
   ran are emitted together. *)

let domains_section : string option ref = ref None
let columnar_section : string option ref = ref None

let write_bench_parallel () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"scale\": %g,\n  \"host_cores\": %d" !scale
       (Domain.recommended_domain_count ()));
  (match !domains_section with
  | Some s -> Buffer.add_string buf (",\n  \"domains_sweep\": " ^ s)
  | None -> ());
  (match !columnar_section with
  | Some s -> Buffer.add_string buf (",\n  \"columnar_sweep\": " ^ s)
  | None -> ());
  Buffer.add_string buf "\n}\n";
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_parallel.json\n"

(* ---------- domains sweep ----------

   The three parallel kernels (partitioned hash join, parallel nest,
   morsel filter) timed at pool sizes 0/1/2/4 against the serial
   baseline, with a bit-identity check per point; results land in
   BENCH_parallel.json.  The host core count goes into the JSON too:
   wall-clock speedup is bounded by the physical cores, not the domain
   count, so single-core CI still produces an honest (flat) curve. *)

let domains_sweep () =
  let open Nra in
  header "Domains sweep"
    "parallel kernels vs the serial baseline (bit-identity checked)";
  let lineitem = Table.relation (Catalog.table cat "lineitem") in
  let orders = Table.relation (Catalog.table cat "orders") in
  let li_schema = Relation.schema lineitem in
  let o_schema = Relation.schema orders in
  let okey = Schema.find o_schema ~table:"orders" "o_orderkey" in
  let lkey = Schema.find li_schema ~table:"lineitem" "l_orderkey" in
  let join_on =
    Expr.Cmp
      ( Three_valued.Eq,
        Expr.Col okey,
        Expr.Col (Schema.arity o_schema + lkey) )
  in
  let by = Array.init (Schema.arity o_schema) Fun.id in
  let keep =
    [| Schema.arity o_schema + lkey; Schema.arity o_schema + lkey |]
  in
  let filter_on =
    Expr.Cmp (Three_valued.Gt, Expr.Col lkey, Expr.Const (Value.Int 100))
  in
  let join () = Algebra.Join.join Algebra.Join.Inner ~on:join_on orders lineitem in
  let wide = join () in
  let nest () = Nested.Grouped.nest_hash ~by ~keep wide in
  let filter () = Algebra.Basic.select filter_on lineitem in
  (* best-of-3 after a warm-up: the kernels are sub-second at these
     scales and we want the speedup curve, not allocator noise *)
  let time f =
    ignore (f ());
    let best = ref infinity in
    let result = ref (f ()) in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := r
    done;
    (!best, !result)
  in
  Printf.printf "%8s | %10s %10s %10s | identical\n" "domains" "join(s)"
    "nest(s)" "filter(s)";
  let baseline = ref None in
  let points =
    List.map
      (fun d ->
        Pool.set_size d;
        let tj, rj = time join in
        let tn, rn = time nest in
        let tf, rf = time filter in
        let identical =
          match !baseline with
          | None ->
              baseline := Some (rj, rn, rf);
              true
          | Some (bj, bn, bf) ->
              Relation.rows bj = Relation.rows rj
              && bn.Nested.Grouped.groups = rn.Nested.Grouped.groups
              && Relation.rows bf = Relation.rows rf
        in
        Printf.printf "%8d | %10.4f %10.4f %10.4f | %b\n%!" d tj tn tf
          identical;
        (d, tj, tn, tf, identical))
      [ 0; 1; 2; 4 ]
  in
  Pool.set_size 0;
  let b0 = List.hd points in
  let base (_, tj, tn, tf, _) = (tj, tn, tf) in
  let bj, bn, bf = base b0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "{\n\
    \    \"note\": \"speedup = serial_best_of_3 / best_of_3; wall-clock \
     speedup is bounded by host_cores regardless of the domain count; \
     identity is structural equality against the domains=0 result\",\n\
    \    \"points\": [\n";
  List.iteri
    (fun i (d, tj, tn, tf, identical) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"domains\": %d, \"join_s\": %.6f, \"nest_s\": %.6f, \
            \"filter_s\": %.6f, \"join_speedup\": %.3f, \"nest_speedup\": \
            %.3f, \"filter_speedup\": %.3f, \"identical\": %b}"
           d tj tn tf (bj /. tj) (bn /. tn) (bf /. tf) identical))
    points;
  Buffer.add_string buf "\n    ]\n  }";
  domains_section := Some (Buffer.contents buf)

(* ---------- columnar sweep ----------

   Row-at-a-time vs columnar timings for the four kernel shapes, at
   domains=0 — an honest single-core comparison, no parallel speedup
   mixed in.  Per kernel: disable the columnar core and take the best
   of five runs, then enable it (priming the base-relation batches the
   way Exec.Frame does at scan time) and repeat; the two results must
   be structurally identical.  The probe-heavy join direction (big
   lineitem probing a small orders build) is where the hash-vector
   probe win shows; every kernel input is a scan-primed base relation,
   the only place the hash-vector paths engage (intermediates hash
   inline either way — see Join.key_vectors). *)

let columnar_sweep () =
  let open Nra in
  header "Columnar sweep"
    "row vs columnar kernels at domains=0 (structural identity checked)";
  Pool.set_size 0;
  let lineitem = Table.relation (Catalog.table cat "lineitem") in
  let orders = Table.relation (Catalog.table cat "orders") in
  let li_schema = Relation.schema lineitem in
  let o_schema = Relation.schema orders in
  let okey = Schema.find o_schema ~table:"orders" "o_orderkey" in
  let lkey = Schema.find li_schema ~table:"lineitem" "l_orderkey" in
  let o_arity = Schema.arity o_schema in
  let li_arity = Schema.arity li_schema in
  let join_build_on =
    Expr.Cmp (Three_valued.Eq, Expr.Col okey, Expr.Col (o_arity + lkey))
  in
  let join_probe_on =
    Expr.Cmp (Three_valued.Eq, Expr.Col lkey, Expr.Col (li_arity + okey))
  in
  let filter_on =
    Expr.Cmp (Three_valued.Gt, Expr.Col lkey, Expr.Const (Value.Int 100))
  in
  (* nest over a primed base relation: the key-hash vectors only engage
     for scan-primed inputs (intermediates hash inline either way, so
     timing them would compare identical code) *)
  let by = [| lkey |] in
  let keep = [| lkey; lkey |] in
  let kernels =
    [
      ( "filter_morsel",
        fun () -> `R (Algebra.Basic.select filter_on lineitem) );
      ( "join_build_heavy",
        fun () ->
          `R (Algebra.Join.join Algebra.Join.Inner ~on:join_build_on orders
                lineitem) );
      (* Anti (the NOT EXISTS shape): the probe pass IS the work — no
         output rows get built, so the timing isolates hash + bucket
         scan instead of drowning it in Row.concat allocation *)
      ( "join_probe_heavy",
        fun () ->
          `R (Algebra.Join.join Algebra.Join.Anti ~on:join_probe_on
                lineitem orders) );
      ( "nest_hash",
        fun () -> `N (Nested.Grouped.nest_hash ~by ~keep lineitem) );
    ]
  in
  let same a b =
    match (a, b) with
    | `R x, `R y -> Relation.rows x = Relation.rows y
    | `N x, `N y -> x.Nested.Grouped.groups = y.Nested.Grouped.groups
    | _ -> false
  in
  (* the two legs are interleaved rep by rep, each preceded by an
     untimed warm run and a full major GC: heap drift over a long
     process hits both legs equally instead of whichever leg happened
     to run later *)
  let timed f =
    ignore (f ());
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  Printf.printf "%-18s | %10s %11s %8s | identical\n" "kernel" "row(s)"
    "columnar(s)" "speedup";
  let points =
    List.map
      (fun (name, run) ->
        let best_row = ref infinity and best_col = ref infinity in
        let row_res = ref None and col_res = ref None in
        for _ = 1 to 5 do
          Batch.set_enabled false;
          let dt, r = timed run in
          if dt < !best_row then best_row := dt;
          row_res := Some r;
          Batch.set_enabled true;
          Batch.prime lineitem;
          Batch.prime orders;
          (* the warm run inside [timed] also re-forces the lazy
             columns the toggle flush dropped, so the timed run sees
             the scan-primed steady state *)
          let dt, r = timed run in
          if dt < !best_col then best_col := dt;
          col_res := Some r
        done;
        let trow = !best_row and tcol = !best_col in
        let identical =
          match (!row_res, !col_res) with
          | Some a, Some b -> same a b
          | _ -> false
        in
        Printf.printf "%-18s | %10.4f %11.4f %8.2f | %b\n%!" name trow tcol
          (trow /. tcol) identical;
        (name, trow, tcol, identical))
      kernels
  in
  Batch.set_enabled true;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "{\n\
    \    \"note\": \"row_s = NRA_COLUMNAR off, columnar_s = on with \
     base-relation batches primed, both best-of-5 at domains=0; speedup = \
     row_s / columnar_s; identity is structural equality of the two \
     results\",\n\
    \    \"kernels\": [\n";
  List.iteri
    (fun i (name, trow, tcol, identical) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"kernel\": %s, \"row_s\": %.6f, \"columnar_s\": %.6f, \
            \"speedup\": %.3f, \"identical\": %b}"
           (json_string name) trow tcol (trow /. tcol) identical))
    points;
  Buffer.add_string buf "\n    ]\n  }";
  columnar_section := Some (Buffer.contents buf);
  if List.exists (fun (_, _, _, ok) -> not ok) points then begin
    prerr_endline "columnar sweep: result divergence";
    exit 1
  end

(* ---------- out-of-core sweep ----------

   The paper's queries under three buffer-pool frame budgets — tiny
   (everything spills and thrashes), the paper's 32 MB cache (exact
   frame count via Iosim.frames_for_mb), and unbounded (pool disabled,
   the pre-pool engine) — with a CSV-identity check of every run
   against the pool-disabled reference and the pool counters recorded
   per point; results land in BENCH_outofcore.json.  The naive point
   shows the other side of the cache story: index-free nested
   iteration rescans the inner block per outer tuple, which a resident
   inner table makes nearly free and a tiny budget makes brutal. *)

let outofcore_sweep () =
  let open Nra in
  header "Out-of-core sweep"
    "frame budgets tiny / paper-32MB / unbounded; CSV identity checked \
     against the pool-disabled run";
  let runs =
    [
      ("q1/nra-opt", Nra.Nra_optimized, List.nth (q1_sqls ()) 3);
      ("q1/naive", Nra.Naive, List.nth (q1_sqls ()) 0);
      ("q2b/nra-opt", Nra.Nra_optimized, List.nth (q2_sqls Q.All) 1);
    ]
  in
  let budgets =
    [
      ("tiny", Some 8);
      ("paper-32mb", Some (Iosim.frames_for_mb 32.0));
      ("unbounded", None);
    ]
  in
  Bufpool.set_frames None;
  let refs =
    List.map
      (fun (name, strategy, sql) ->
        (name, Relation.to_csv (query_exn ~strategy cat sql)))
      runs
  in
  Printf.printf "%-12s %-12s %10s %10s %6s %6s %6s %6s | identical\n"
    "budget" "run" "cpu(s)" "sim(s)" "hit" "miss" "evict" "spill";
  let all_ok = ref true in
  let point_rows =
    List.concat_map
      (fun (bname, frames) ->
        Bufpool.set_frames frames;
        List.map
          (fun (qname, strategy, sql) ->
            ignore (query_exn ~strategy cat sql);
            Iosim.reset ();
            let t0 = Unix.gettimeofday () in
            let rel = query_exn ~strategy cat sql in
            let cpu = Unix.gettimeofday () -. t0 in
            let sim = Iosim.simulated_seconds () in
            let bp = Bufpool.stats () in
            let gv = Governor.stats () in
            let identical =
              Relation.to_csv rel = List.assoc qname refs
            in
            if not identical then all_ok := false;
            Printf.printf
              "%-12s %-12s %10.3f %10.2f %6d %6d %6d %6d | %b\n%!" bname
              qname cpu sim bp.Bufpool.hits bp.Bufpool.misses
              bp.Bufpool.evictions bp.Bufpool.spilled_partitions identical;
            (bname, frames, qname, cpu, sim, bp, gv, identical))
          runs)
      budgets
  in
  Bufpool.set_frames None;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"scale\": %g,\n  \"page_size_kb\": %g,\n  \"note\": \
        \"identity is CSV equality against the pool-disabled run; \
        frames=0 means the pool is disabled\",\n  \"points\": [\n"
       !scale (Iosim.config ()).Iosim.page_size_kb);
  List.iteri
    (fun i (bname, frames, qname, cpu, sim, bp, gv, identical) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"budget\": %s, \"frames\": %d, \"run\": %s, \"cpu_s\": \
            %.6f, \"sim_s\": %.4f, \"hits\": %d, \"misses\": %d, \
            \"evictions\": %d, \"writebacks\": %d, \
            \"spilled_partitions\": %d, \"spilled_pages\": %d, \
            \"governor_hw_bytes\": %d, \"governor_stagings\": %d, \
            \"governor_spilled_stagings\": %d, \"spill_volume_kb\": %d, \
            \"identical\": %b}"
           (json_string bname)
           (Option.value frames ~default:0)
           (json_string qname) cpu sim bp.Nra.Bufpool.hits
           bp.Nra.Bufpool.misses bp.Nra.Bufpool.evictions
           bp.Nra.Bufpool.writebacks bp.Nra.Bufpool.spilled_partitions
           bp.Nra.Bufpool.spilled_pages gv.Nra.Governor.high_water_bytes
           gv.Nra.Governor.stagings gv.Nra.Governor.spilled_stagings
           (int_of_float
              (float_of_int bp.Nra.Bufpool.spilled_pages
              *. (Iosim.config ()).Iosim.page_size_kb))
           identical))
    point_rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_outofcore.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_outofcore.json (every point identical: %b)\n"
    !all_ok;
  if not !all_ok then exit 1

(* ---------- rewrite sweep ----------

   The algebraic rewrite pass (lib/opt) on and off over the Figure 4
   and Figure 6 queries, per NRA strategy and for auto: simulated and
   CPU cost each way, whether the cost gate fired for the plan that
   ran, and — for auto — which strategy it picked under each
   configuration.  This is the acceptance evidence that auto selects a
   rewritten plan with a measured improvement on a benched Figure 4
   query; results land in the rewrite_sweep section of
   BENCH_subqueries.json. *)

let rewrite_sweep () =
  header "Rewrite sweep"
    "--rewrite none vs all per strategy; 'fired' = the cost gate \
     installed directives for the plan that ran";
  let rw_strategies =
    [
      ("nra-orig", Nra.Nra_original);
      ("nra-opt", Nra.Nra_optimized);
      ("nra-full", Nra.Nra_full);
      ("auto", Nra.Auto);
    ]
  in
  let sweep_one fig sql =
    let analyzed =
      match Nra.Planner.Analyze.analyze_string cat sql with
      | Ok t -> t
      | Error m -> failwith m
    in
    let outer = outer_block_size cat sql in
    let pick () =
      match Nra.auto_choice cat sql with
      | Ok c -> Nra.strategy_to_string c
      | Error m -> "error: " ^ m
    in
    let runs =
      List.map
        (fun (name, strategy) ->
          Nra.set_rewrite_rules [];
          let off = run_strategy cat strategy sql in
          let pick_off = match strategy with Nra.Auto -> pick () | _ -> "" in
          Nra.set_rewrite_rules Nra.Opt.Config.all;
          let on = run_strategy cat strategy sql in
          let pick_on = match strategy with Nra.Auto -> pick () | _ -> "" in
          let fired =
            let plan_of =
              match strategy with
              | Nra.Auto -> Nra.strategy_of_string pick_on
              | s -> Some s
            in
            match plan_of with
            | Some s -> (
                match Nra.nra_base_options s with
                | Some base -> Nra.rewrite_for cat analyzed base <> None
                | None -> false)
            | None -> false
          in
          Nra.set_rewrite_rules [];
          Printf.printf
            "  fig %-3s outer %-7d %-9s off sim %8.2fs  on sim %8.2fs  \
             fired %-5b%s\n%!"
            fig outer name off.sim on.sim fired
            (match strategy with
            | Nra.Auto ->
                Printf.sprintf "  (pick: %s -> %s)" pick_off pick_on
            | _ -> "");
          { rw_name = name; fired; pick_off; pick_on; off; on })
        rw_strategies
    in
    rewrite_points :=
      { rwp_fig = fig; rwp_outer = outer; rwp_runs = runs }
      :: !rewrite_points
  in
  List.iter (sweep_one "4") (q1_sqls ());
  List.iter (sweep_one "6") (q2_sqls Q.All)

(* ---------- main ---------- *)

let () =
  if !run_domains_sweep || !run_columnar_sweep then begin
    if !run_domains_sweep then domains_sweep ();
    if !run_columnar_sweep then columnar_sweep ();
    write_bench_parallel ();
    exit 0
  end;
  if !run_outofcore_sweep then begin
    outofcore_sweep ();
    exit 0
  end;
  (* with explicit --figure selections the rewrite sweep composes with
     them (one emit at the end records both); alone it keeps the old
     sweep-and-exit behavior *)
  if !run_rewrite_sweep then begin
    rewrite_sweep ();
    if !selected_figures = [] then begin
      emit_json "BENCH_subqueries.json";
      exit 0
    end
  end;
  if wanted 4 then figure4 ();
  if wanted 5 then figure5 ();
  if wanted 6 then figure6 ();
  if wanted 7 then figure789 7 "3a (mixed ALL / EXISTS)" ~quant:Q.All ~exists:true;
  if wanted 8 then figure789 8 "3b (negative ALL / NOT EXISTS)" ~quant:Q.All ~exists:false;
  if wanted 9 then figure789 9 "3c (positive ANY / EXISTS)" ~quant:Q.Any ~exists:true;
  if wanted 10 then figure10 ();
  if wanted 11 then robustness ();
  if wanted 12 then figure_ja ();
  if !run_ablation && !selected_figures = [] then ablations ();
  if !run_micro && !selected_figures = [] then micro ();
  if !points <> [] then emit_json "BENCH_subqueries.json";
  print_newline ()
