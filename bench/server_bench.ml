(* Serving-layer workload driver: N simulated clients replay the
   Figure-4 query mix through the server (sessions + admission control +
   plan cache), in the engine's deterministic virtual-time model.

   Each client is a session; arrivals are open-loop, round-robin with a
   fixed inter-arrival gap, so with service times far above the gap the
   admission queue fills and the run exercises queueing, queue timeouts
   and rejections — all reproducibly, since both the data and the clock
   are simulated.  Before the last round one client issues ANALYZE,
   which bumps the statistics epoch and invalidates the cached plans.

   Reports throughput (virtual qps), p50/p95 latency, rejections and
   the plan-cache hit rate, to stdout and BENCH_server.json.

   Usage:
     dune exec bench/server_bench.exe
     dune exec bench/server_bench.exe -- --scale 0.005 --clients 4 \
       --rounds 2 --max-concurrent 2 --queue-len 4 \
       --queue-timeout-ms 3000 --gap-ms 10 *)

module Server = Nra_server.Server
module Admission = Nra_server.Admission
module Plan_cache = Nra_server.Plan_cache
module Q = Nra.Tpch.Queries

let scale = ref 0.01
let clients = ref 8
let rounds = ref 3
let max_concurrent = ref 2
let queue_len = ref 4
let queue_timeout_ms = ref 5_000.0
let gap_ms = ref 10.0
let out_path = ref "BENCH_server.json"

let usage () =
  prerr_endline
    "usage: server_bench.exe [--scale S] [--clients N] [--rounds N] \
     [--max-concurrent N] [--queue-len N] [--queue-timeout-ms MS] \
     [--gap-ms MS] [--out PATH]";
  exit 2

let () =
  let int_ref r n = match int_of_string_opt n with
    | Some v when v > 0 -> r := v
    | _ -> usage ()
  and float_ref r s = match float_of_string_opt s with
    | Some v when v > 0.0 -> r := v
    | _ -> usage ()
  in
  let rec parse = function
    | [] -> ()
    | "--scale" :: s :: rest -> float_ref scale s; parse rest
    | "--clients" :: n :: rest -> int_ref clients n; parse rest
    | "--rounds" :: n :: rest -> int_ref rounds n; parse rest
    | "--max-concurrent" :: n :: rest -> int_ref max_concurrent n; parse rest
    | "--queue-len" :: n :: rest -> int_ref queue_len n; parse rest
    | "--queue-timeout-ms" :: s :: rest -> float_ref queue_timeout_ms s; parse rest
    | "--gap-ms" :: s :: rest -> float_ref gap_ms s; parse rest
    | "--out" :: p :: rest -> out_path := p; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* the Figure-4 mix: Query 1 across the paper's outer-block sweep *)
let query_mix () =
  [ 500.; 1_500.; 4_000.; 8_000.; 12_000.; 16_000. ]
  |> List.map (fun n ->
         let lo, hi = Q.q1_window ~outer_fraction:(n /. 1_500_000.) in
         Q.q1 ~date_lo:lo ~date_hi:hi)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let () =
  let cfg = { Nra.Tpch.Gen.default with Nra.Tpch.Gen.scale = !scale } in
  Printf.printf "generating TPC-H data at scale %.3f...\n%!" !scale;
  let cat = Nra.Tpch.Gen.generate cfg in
  Nra.Tpch.Gen.add_benchmark_indexes cat;
  ignore (Nra.exec cat "analyze");
  let server =
    Server.create
      ~config:
        {
          Server.default_config with
          admission =
            {
              Admission.max_concurrent = !max_concurrent;
              queue_len = !queue_len;
              queue_timeout_ms = Some !queue_timeout_ms;
            };
          strategy = Nra.Auto;
        }
      cat
  in
  let sessions =
    Array.init !clients (fun i ->
        Server.session server ~label:(Printf.sprintf "client-%d" i) ())
  in
  let mix = Array.of_list (query_mix ()) in
  let outcomes = ref [] in
  let note os = outcomes := List.rev_append os !outcomes in
  let n_stmts = ref 0 in
  let host_t0 = Unix.gettimeofday () in
  for round = 0 to !rounds - 1 do
    (* an ANALYZE before the last round: the statistics epoch bump
       invalidates every cached plan, visible in the counters *)
    if round = !rounds - 1 && !rounds > 1 then
      ignore (Server.exec server sessions.(0) "analyze");
    Array.iteri
      (fun k sql ->
        Array.iteri
          (fun i s ->
            let seq = (round * Array.length mix) + k in
            let at =
              float_of_int ((seq * !clients) + i) *. !gap_ms
            in
            incr n_stmts;
            match Server.submit server ~at s sql with
            | `Done o -> note [ o ]
            | `Queued -> ())
          sessions;
        note (Server.drain server))
      mix
  done;
  note (Server.finish server);
  let host_s = Unix.gettimeofday () -. host_t0 in
  let outcomes = List.rev !outcomes in
  let ok, rejected, timed_out, other_err = (ref 0, ref 0, ref 0, ref 0) in
  let lat = ref [] in
  List.iter
    (fun o ->
      match o.Server.result with
      | Ok _ ->
          incr ok;
          lat := Server.latency_ms o :: !lat
      | Error (Nra.Exec_error.Rejected _) -> incr rejected
      | Error (Nra.Exec_error.Queue_timeout _) -> incr timed_out
      | Error _ -> incr other_err)
    outcomes;
  let sorted = Array.of_list !lat in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50 and p95 = percentile sorted 0.95 in
  let virtual_s = Server.now server /. 1000.0 in
  let qps = if virtual_s > 0.0 then float_of_int !ok /. virtual_s else 0.0 in
  let cs = Plan_cache.stats (Server.cache server) in
  let hit_rate = Plan_cache.hit_rate cs in
  let a = Server.admission_stats server in
  Printf.printf
    "%d clients x %d rounds x %d queries = %d statements (%d outcomes)\n"
    !clients !rounds (Array.length mix) !n_stmts (List.length outcomes);
  Printf.printf
    "ok %d, rejected %d, queue timeouts %d, other errors %d\n" !ok !rejected
    !timed_out !other_err;
  Printf.printf
    "virtual time %.2fs -> %.2f qps; latency p50 %.1f ms, p95 %.1f ms \
     (host %.2fs)\n"
    virtual_s qps p50 p95 host_s;
  Format.printf "%a@.%a@." Admission.pp_stats a Plan_cache.pp_stats cs;
  let oc = open_out !out_path in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %g,\n\
    \  \"clients\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"max_concurrent\": %d,\n\
    \  \"queue_len\": %d,\n\
    \  \"queue_timeout_ms\": %g,\n\
    \  \"gap_ms\": %g,\n\
    \  \"statements\": %d,\n\
    \  \"ok\": %d,\n\
    \  \"rejected\": %d,\n\
    \  \"queue_timeouts\": %d,\n\
    \  \"other_errors\": %d,\n\
    \  \"virtual_seconds\": %.4f,\n\
    \  \"throughput_qps\": %.4f,\n\
    \  \"latency_p50_ms\": %.2f,\n\
    \  \"latency_p95_ms\": %.2f,\n\
    \  \"host_seconds\": %.3f,\n\
    \  \"cache\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f, \
     \"invalidations\": %d, \"evictions\": %d},\n\
    \  \"admission\": {\"admitted\": %d, \"queued\": %d, \"rejected_full\": \
     %d, \"timed_out\": %d, \"peak_running\": %d, \"peak_queue\": %d}\n\
     }\n"
    !scale !clients !rounds !max_concurrent !queue_len !queue_timeout_ms
    !gap_ms !n_stmts !ok !rejected !timed_out !other_err virtual_s qps p50
    p95 host_s cs.Plan_cache.hits cs.Plan_cache.misses hit_rate
    cs.Plan_cache.invalidations cs.Plan_cache.evictions a.Admission.admitted
    a.Admission.queued a.Admission.rejected_full a.Admission.timed_out
    a.Admission.peak_running a.Admission.peak_queue;
  close_out oc;
  Printf.printf "wrote %s\n" !out_path;
  if hit_rate <= 0.0 then begin
    prerr_endline "FAIL: plan-cache hit rate is zero";
    exit 1
  end
