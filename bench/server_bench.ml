(* Serving-layer workload driver: N simulated clients replay the
   Figure-4 query mix through the server (sessions + admission control +
   plan cache + cooperative scheduler), in the engine's deterministic
   virtual-time model.

   Default mode — each client is a session; arrivals are open-loop,
   round-robin with a fixed inter-arrival gap, so with service times far
   above the gap the admission queue fills and the run exercises
   queueing, queue timeouts and rejections — all reproducibly, since
   both the data and the clock are simulated.  Before the last round one
   client issues ANALYZE, which bumps the statistics epoch and
   invalidates the cached plans.  Reports throughput (virtual qps),
   p50/p95 latency, rejections and the plan-cache hit rate, to stdout
   and BENCH_server.json.

   --concurrency-sweep — a head-of-line-blocking workload (a few long
   statements salted into a stream of short ones) replayed at several
   scheduler quanta, including [infinity] (= PR 3's slot-serialized
   baseline: a statement occupies its slot for its whole simulated-I/O
   duration).  Reports throughput/p50/p95 per quantum and fails unless
   interleaving (any finite quantum) improves the multi-client p95 over
   the serialized baseline.

   Usage:
     dune exec bench/server_bench.exe
     dune exec bench/server_bench.exe -- --scale 0.005 --clients 4 \
       --rounds 2 --max-concurrent 2 --queue-len 4 \
       --queue-timeout-ms 3000 --gap-ms 10
     dune exec bench/server_bench.exe -- --concurrency-sweep \
       --scale 0.005 --clients 4 --max-concurrent 2 *)

module Server = Nra_server.Server
module Scheduler = Nra_server.Scheduler
module Admission = Nra_server.Admission
module Plan_cache = Nra_server.Plan_cache
module Q = Nra.Tpch.Queries

let scale = ref 0.01
let clients = ref 8
let rounds = ref 3
let max_concurrent = ref 2
let queue_len = ref 4
let queue_timeout_ms = ref 5_000.0
let gap_ms = ref 10.0
let out_path = ref "BENCH_server.json"
let sweep = ref false
let sweep_shorts = ref 24  (* short statements per client *)
let sweep_longs = ref 4  (* long statements, salted in by client 0 *)

let usage () =
  prerr_endline
    "usage: server_bench.exe [--scale S] [--clients N] [--rounds N] \
     [--max-concurrent N] [--queue-len N] [--queue-timeout-ms MS] \
     [--gap-ms MS] [--out PATH] [--concurrency-sweep] [--shorts N] \
     [--longs N]";
  exit 2

let () =
  let int_ref r n = match int_of_string_opt n with
    | Some v when v > 0 -> r := v
    | _ -> usage ()
  and float_ref r s = match float_of_string_opt s with
    | Some v when v > 0.0 -> r := v
    | _ -> usage ()
  in
  let rec parse = function
    | [] -> ()
    | "--scale" :: s :: rest -> float_ref scale s; parse rest
    | "--clients" :: n :: rest -> int_ref clients n; parse rest
    | "--rounds" :: n :: rest -> int_ref rounds n; parse rest
    | "--max-concurrent" :: n :: rest -> int_ref max_concurrent n; parse rest
    | "--queue-len" :: n :: rest -> int_ref queue_len n; parse rest
    | "--queue-timeout-ms" :: s :: rest -> float_ref queue_timeout_ms s; parse rest
    | "--gap-ms" :: s :: rest -> float_ref gap_ms s; parse rest
    | "--out" :: p :: rest -> out_path := p; parse rest
    | "--concurrency-sweep" :: rest -> sweep := true; parse rest
    | "--shorts" :: n :: rest -> int_ref sweep_shorts n; parse rest
    | "--longs" :: n :: rest -> int_ref sweep_longs n; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* the Figure-4 mix: Query 1 across the paper's outer-block sweep *)
let query_mix () =
  [ 500.; 1_500.; 4_000.; 8_000.; 12_000.; 16_000. ]
  |> List.map (fun n ->
         let lo, hi = Q.q1_window ~outer_fraction:(n /. 1_500_000.) in
         Q.q1 ~date_lo:lo ~date_hi:hi)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let stats_of_latencies lat =
  let sorted = Array.of_list lat in
  Array.sort compare sorted;
  (percentile sorted 0.50, percentile sorted 0.95)

(* ---------- the concurrency sweep ---------- *)

type sweep_point = {
  sp_quantum_ms : float;
  sp_ok : int;
  sp_errors : int;
  sp_qps : float;
  sp_p50 : float;
  sp_p95 : float;
  sp_p50_short : float;
  sp_p95_short : float;
  sp_slices : int;
  sp_yields : int;
  sp_host_s : float;
}

let run_sweep_point cat ~quantum_ms ~short_sql ~long_sql =
  let server =
    Server.create
      ~config:
        {
          Server.default_config with
          admission =
            {
              Admission.max_concurrent = !max_concurrent;
              (* the sweep compares latency shapes, so nothing may be
                 turned away or timed out *)
              queue_len = 4096;
              queue_timeout_ms = None;
            };
          (* a fixed strategy, not Auto: Auto's kill-and-fallback
             attempt is a no-yield critical section (its Iosim
             checkpoint/rollback cannot tolerate concurrent charges —
             see docs/SERVER.md), so Auto statements would serialize
             and the sweep would measure nothing *)
          strategy = Nra.Nra_optimized;
          quantum_ms;
        }
      cat
  in
  let sessions =
    Array.init !clients (fun i ->
        Server.session server ~label:(Printf.sprintf "client-%d" i) ())
  in
  (* arrival schedule: waves of one short per client, every
     (shorts/longs)-th wave preceded by a long from client 0 *)
  let events = ref [] in
  let t = ref 0.0 in
  let next () = let a = !t in t := a +. !gap_ms; a in
  let every = max 1 (!sweep_shorts / !sweep_longs) in
  for k = 0 to !sweep_shorts - 1 do
    if k mod every = 0 then events := (next (), 0, long_sql) :: !events;
    for i = 0 to !clients - 1 do
      events := (next (), i, short_sql) :: !events
    done
  done;
  let events = List.rev !events in
  let outcomes = ref [] in
  let note os = outcomes := List.rev_append os !outcomes in
  let host_t0 = Unix.gettimeofday () in
  List.iter
    (fun (at, i, sql) ->
      (match Server.submit server ~at sessions.(i) sql with
      | `Done o -> note [ o ]
      | `Running _ | `Queued -> ());
      note (Server.drain server))
    events;
  note (Server.finish server);
  let host_s = Unix.gettimeofday () -. host_t0 in
  let ok = ref 0 and errors = ref 0 in
  let lat = ref [] and lat_short = ref [] in
  List.iter
    (fun o ->
      match o.Server.result with
      | Ok _ ->
          incr ok;
          let l = Server.latency_ms o in
          lat := l :: !lat;
          if String.equal o.Server.sql short_sql then
            lat_short := l :: !lat_short
      | Error _ -> incr errors)
    !outcomes;
  let p50, p95 = stats_of_latencies !lat in
  let p50_short, p95_short = stats_of_latencies !lat_short in
  let virtual_s = Server.now server /. 1000.0 in
  let qps = if virtual_s > 0.0 then float_of_int !ok /. virtual_s else 0.0 in
  let st = Scheduler.stats (Server.scheduler server) in
  {
    sp_quantum_ms = quantum_ms;
    sp_ok = !ok;
    sp_errors = !errors;
    sp_qps = qps;
    sp_p50 = p50;
    sp_p95 = p95;
    sp_p50_short = p50_short;
    sp_p95_short = p95_short;
    sp_slices = st.Scheduler.slices;
    sp_yields = st.Scheduler.yields;
    sp_host_s = host_s;
  }

let quantum_label q = if q = infinity then "inf" else Printf.sprintf "%g" q

let run_sweep cat =
  (* a head-of-line-blocking mix: the short is an interactive-grade
     nested lookup over the small dimension tables (~0.2 ms simulated),
     the long is the paper's Query 1 over a wide date window (~100 ms) —
     what matters is the 500x asymmetry, because the sweep measures how
     long a short statement sits behind an in-flight long one *)
  let short_sql =
    "select s_name from supplier where s_nationkey in (select n_nationkey \
     from nation where n_regionkey = 2)"
  and long_sql =
    let lo, hi = Q.q1_window ~outer_fraction:(16_000. /. 1_500_000.) in
    Q.q1 ~date_lo:lo ~date_hi:hi
  in
  let quanta = [ infinity; 0.25; 0.5; 1.0; 2.0 ] in
  let points =
    List.map
      (fun q ->
        Printf.printf "quantum %s ms...\n%!" (quantum_label q);
        run_sweep_point cat ~quantum_ms:q ~short_sql ~long_sql)
      quanta
  in
  let n_stmts = !clients * !sweep_shorts + !sweep_longs in
  Printf.printf
    "\nconcurrency sweep: %d clients, %d statements (%d long), %d slot(s)\n"
    !clients n_stmts !sweep_longs !max_concurrent;
  Printf.printf "%8s %6s %5s %9s %9s %9s %9s %8s\n" "quantum" "ok" "err"
    "qps" "p50" "p95" "p95short" "slices";
  List.iter
    (fun p ->
      Printf.printf "%8s %6d %5d %9.2f %9.1f %9.1f %9.1f %8d\n"
        (quantum_label p.sp_quantum_ms)
        p.sp_ok p.sp_errors p.sp_qps p.sp_p50 p.sp_p95 p.sp_p95_short
        p.sp_slices)
    points;
  let baseline =
    List.find (fun p -> p.sp_quantum_ms = infinity) points
  in
  let finite = List.filter (fun p -> p.sp_quantum_ms <> infinity) points in
  let best =
    List.fold_left
      (fun acc p -> if p.sp_p95 < acc.sp_p95 then p else acc)
      (List.hd finite) (List.tl finite)
  in
  Printf.printf
    "p95: serialized (quantum inf) %.1f ms -> interleaved (quantum %s) %.1f \
     ms (%+.1f%%)\n"
    baseline.sp_p95
    (quantum_label best.sp_quantum_ms)
    best.sp_p95
    (100.0 *. (best.sp_p95 -. baseline.sp_p95) /. baseline.sp_p95);
  let oc = open_out !out_path in
  let json_q q =
    if q = infinity then "\"inf\"" else Printf.sprintf "%g" q
  in
  Printf.fprintf oc
    "{\n\
    \  \"mode\": \"concurrency-sweep\",\n\
    \  \"scale\": %g,\n\
    \  \"clients\": %d,\n\
    \  \"max_concurrent\": %d,\n\
    \  \"gap_ms\": %g,\n\
    \  \"statements\": %d,\n\
    \  \"long_statements\": %d,\n\
    \  \"sweep\": [\n"
    !scale !clients !max_concurrent !gap_ms n_stmts !sweep_longs;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"quantum_ms\": %s, \"ok\": %d, \"errors\": %d, \
         \"throughput_qps\": %.4f, \"latency_p50_ms\": %.2f, \
         \"latency_p95_ms\": %.2f, \"latency_p50_short_ms\": %.2f, \
         \"latency_p95_short_ms\": %.2f, \"slices\": %d, \"yields\": %d, \
         \"host_seconds\": %.3f}%s\n"
        (json_q p.sp_quantum_ms) p.sp_ok p.sp_errors p.sp_qps p.sp_p50
        p.sp_p95 p.sp_p50_short p.sp_p95_short p.sp_slices p.sp_yields
        p.sp_host_s
        (if i = List.length points - 1 then "" else ","))
    points;
  Printf.fprintf oc
    "  ],\n\
    \  \"p95_serialized_ms\": %.2f,\n\
    \  \"p95_interleaved_best_ms\": %.2f,\n\
    \  \"p95_improved\": %b\n\
     }\n"
    baseline.sp_p95 best.sp_p95
    (best.sp_p95 < baseline.sp_p95);
  close_out oc;
  Printf.printf "wrote %s\n" !out_path;
  if best.sp_ok <> baseline.sp_ok then begin
    Printf.eprintf "FAIL: outcome count changed across quanta (%d vs %d)\n"
      best.sp_ok baseline.sp_ok;
    exit 1
  end;
  if best.sp_p95 >= baseline.sp_p95 then begin
    prerr_endline
      "FAIL: interleaving did not improve p95 over the serialized baseline";
    exit 1
  end

(* ---------- the default open-loop mix ---------- *)

let run_mix cat =
  let server =
    Server.create
      ~config:
        {
          Server.default_config with
          admission =
            {
              Admission.max_concurrent = !max_concurrent;
              queue_len = !queue_len;
              queue_timeout_ms = Some !queue_timeout_ms;
            };
          strategy = Nra.Auto;
        }
      cat
  in
  let sessions =
    Array.init !clients (fun i ->
        Server.session server ~label:(Printf.sprintf "client-%d" i) ())
  in
  let mix = Array.of_list (query_mix ()) in
  let outcomes = ref [] in
  let note os = outcomes := List.rev_append os !outcomes in
  let n_stmts = ref 0 in
  let host_t0 = Unix.gettimeofday () in
  for round = 0 to !rounds - 1 do
    (* an ANALYZE before the last round: the statistics epoch bump
       invalidates every cached plan, visible in the counters *)
    if round = !rounds - 1 && !rounds > 1 then
      ignore (Server.exec server sessions.(0) "analyze");
    Array.iteri
      (fun k sql ->
        Array.iteri
          (fun i s ->
            let seq = (round * Array.length mix) + k in
            let at =
              float_of_int ((seq * !clients) + i) *. !gap_ms
            in
            incr n_stmts;
            match Server.submit server ~at s sql with
            | `Done o -> note [ o ]
            | `Running _ | `Queued -> ())
          sessions;
        note (Server.drain server))
      mix
  done;
  note (Server.finish server);
  let host_s = Unix.gettimeofday () -. host_t0 in
  let outcomes = List.rev !outcomes in
  let ok, rejected, timed_out, other_err = (ref 0, ref 0, ref 0, ref 0) in
  let lat = ref [] in
  List.iter
    (fun o ->
      match o.Server.result with
      | Ok _ ->
          incr ok;
          lat := Server.latency_ms o :: !lat
      | Error (Nra.Exec_error.Rejected _) -> incr rejected
      | Error (Nra.Exec_error.Queue_timeout _) -> incr timed_out
      | Error _ -> incr other_err)
    outcomes;
  let p50, p95 = stats_of_latencies !lat in
  let virtual_s = Server.now server /. 1000.0 in
  let qps = if virtual_s > 0.0 then float_of_int !ok /. virtual_s else 0.0 in
  let cs = Plan_cache.stats (Server.cache server) in
  let hit_rate = Plan_cache.hit_rate cs in
  let a = Server.admission_stats server in
  Printf.printf
    "%d clients x %d rounds x %d queries = %d statements (%d outcomes)\n"
    !clients !rounds (Array.length mix) !n_stmts (List.length outcomes);
  Printf.printf
    "ok %d, rejected %d, queue timeouts %d, other errors %d\n" !ok !rejected
    !timed_out !other_err;
  Printf.printf
    "virtual time %.2fs -> %.2f qps; latency p50 %.1f ms, p95 %.1f ms \
     (host %.2fs)\n"
    virtual_s qps p50 p95 host_s;
  Format.printf "%a@.%a@.%a@." Admission.pp_stats a Plan_cache.pp_stats cs
    Scheduler.pp_stats
    (Scheduler.stats (Server.scheduler server));
  let oc = open_out !out_path in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %g,\n\
    \  \"clients\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"max_concurrent\": %d,\n\
    \  \"queue_len\": %d,\n\
    \  \"queue_timeout_ms\": %g,\n\
    \  \"gap_ms\": %g,\n\
    \  \"quantum_ms\": %g,\n\
    \  \"statements\": %d,\n\
    \  \"ok\": %d,\n\
    \  \"rejected\": %d,\n\
    \  \"queue_timeouts\": %d,\n\
    \  \"other_errors\": %d,\n\
    \  \"virtual_seconds\": %.4f,\n\
    \  \"throughput_qps\": %.4f,\n\
    \  \"latency_p50_ms\": %.2f,\n\
    \  \"latency_p95_ms\": %.2f,\n\
    \  \"host_seconds\": %.3f,\n\
    \  \"cache\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f, \
     \"invalidations\": %d, \"evictions\": %d},\n\
    \  \"admission\": {\"admitted\": %d, \"queued\": %d, \"rejected_full\": \
     %d, \"timed_out\": %d, \"peak_running\": %d, \"peak_queue\": %d}\n\
     }\n"
    !scale !clients !rounds !max_concurrent !queue_len !queue_timeout_ms
    !gap_ms
    (Server.config server).Server.quantum_ms
    !n_stmts !ok !rejected !timed_out !other_err virtual_s qps p50
    p95 host_s cs.Plan_cache.hits cs.Plan_cache.misses hit_rate
    cs.Plan_cache.invalidations cs.Plan_cache.evictions a.Admission.admitted
    a.Admission.queued a.Admission.rejected_full a.Admission.timed_out
    a.Admission.peak_running a.Admission.peak_queue;
  close_out oc;
  Printf.printf "wrote %s\n" !out_path;
  if hit_rate <= 0.0 then begin
    prerr_endline "FAIL: plan-cache hit rate is zero";
    exit 1
  end

let () =
  let cfg = { Nra.Tpch.Gen.default with Nra.Tpch.Gen.scale = !scale } in
  Printf.printf "generating TPC-H data at scale %.3f...\n%!" !scale;
  let cat = Nra.Tpch.Gen.generate cfg in
  Nra.Tpch.Gen.add_benchmark_indexes cat;
  ignore (Nra.exec cat "analyze");
  if !sweep then run_sweep cat else run_mix cat
