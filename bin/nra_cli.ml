(* Command-line front end: run SQL with any evaluation strategy against
   a generated TPC-H catalog, inspect plans, or start a small REPL.

     dune exec bin/nra_cli.exe -- query "select ..." --strategy auto
     dune exec bin/nra_cli.exe -- explain "select ..." --costs
     dune exec bin/nra_cli.exe -- analyze [table]
     dune exec bin/nra_cli.exe -- repl --scale 0.01
     dune exec bin/nra_cli.exe -- tables *)

open Cmdliner

(* ---------- shared options ---------- *)

let scale =
  let doc = "TPC-H scale factor (1.0 = official SF 1 row counts)." in
  Arg.(value & opt float 0.01 & info [ "scale" ] ~docv:"S" ~doc)

let seed =
  let doc = "Data generator seed." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"N" ~doc)

let null_rate =
  let doc =
    "Probability of NULL in the nullable money columns (exercises \
     three-valued semantics)."
  in
  Arg.(value & opt float 0.0 & info [ "null-rate" ] ~docv:"P" ~doc)

let not_null =
  let doc =
    "Declare NOT NULL constraints on l_extendedprice / ps_supplycost \
     (lets the classical strategy antijoin ALL and NOT IN)."
  in
  Arg.(value & flag & info [ "not-null" ] ~doc)

let strategy =
  let parse s =
    match Nra.strategy_of_string s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown strategy %S (expected one of %s)" s
               (String.concat ", " (List.map fst Nra.strategies))))
  in
  let print ppf s = Format.pp_print_string ppf (Nra.strategy_to_string s) in
  let strategy_conv = Arg.conv (parse, print) in
  let doc =
    "Evaluation strategy: naive (nested iteration), classical \
     (semijoin/antijoin unnesting), nra-original, nra-optimized or \
     nra-full (the paper's approach), hybrid (Section 6 dispatch), or \
     auto (cost-based: ANALYZE statistics price every strategy and the \
     cheapest runs)."
  in
  Arg.(
    value & opt strategy_conv Nra.Nra_optimized & info [ "strategy"; "s" ] ~doc)

let rewrite_arg =
  let parse s =
    match Nra.Opt.Config.parse s with
    | Ok _ -> Ok s
    | Error m -> Error (`Msg m)
  in
  let rules_conv = Arg.conv (parse, Format.pp_print_string) in
  let doc =
    "Algebraic rewrite rules applied to NRA plans before execution: \
     $(b,all), $(b,none), or a comma-separated subset of $(b,fuse), \
     $(b,push-down), $(b,pipeline), $(b,semijoin).  Each candidate \
     rewrite is priced by the cost model and fires only on improvement; \
     results are identical under any setting.  Overrides the \
     NRA_REWRITE environment variable."
  in
  Arg.(
    value & opt (some rules_conv) None & info [ "rewrite" ] ~docv:"RULES" ~doc)

let columnar_arg =
  let doc =
    "Columnar execution core: vectorized filters, columnar hash-join \
     key vectors, columnar nest partitioning, and packed spill pages \
     over typed batches with null bitmaps.  On by default; results \
     are bit-identical either way.  Overrides the NRA_COLUMNAR \
     environment variable."
  in
  Arg.(value & opt (some bool) None & info [ "columnar" ] ~docv:"BOOL" ~doc)

let install_columnar v = Option.iter Nra.set_columnar v

let install_rewrite spec =
  Option.iter
    (fun s ->
      match Nra.set_rewrite_spec s with
      | Ok () -> ()
      | Error m ->
          (* the converter validated [s]; defensively surface anyway *)
          Printf.eprintf "bad --rewrite spec: %s\n%!" m)
    spec

let make_catalog scale seed null_rate not_null =
  let cfg =
    {
      Nra.Tpch.Gen.scale;
      seed;
      null_rate;
      declare_not_null = not_null;
    }
  in
  let cat = Nra.Tpch.Gen.generate cfg in
  Nra.Tpch.Gen.add_benchmark_indexes cat;
  cat

let sql_arg =
  let doc = "The SQL query (quote it)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let csv =
  let doc = "Print the result as CSV instead of an aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let timing =
  let doc = "Print measured CPU and simulated 2005-disk time." in
  Arg.(value & flag & info [ "time" ] ~doc)

(* ---------- guard / fault options ---------- *)

let timeout_ms =
  let doc = "Kill the query after this much wall-clock time (ms)." in
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)

let io_budget_ms =
  let doc =
    "Kill the query after this much simulated-2005-disk time (ms); \
     deterministic for a given query and data."
  in
  Arg.(
    value & opt (some float) None & info [ "io-budget-ms" ] ~docv:"MS" ~doc)

let max_rows =
  let doc = "Kill the query after materializing this many intermediate rows." in
  Arg.(value & opt (some int) None & info [ "max-rows" ] ~docv:"N" ~doc)

let faults =
  let doc =
    "Inject transient storage faults with this per-read probability \
     (deterministic, see --fault-seed); executors retry with backoff."
  in
  Arg.(value & opt float 0.0 & info [ "faults" ] ~docv:"P" ~doc)

let fault_seed =
  let doc = "Fault-injection PRNG seed." in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N" ~doc)

let install_faults p seed = if p > 0.0 then Nra.Fault.configure ~seed p

(* ---------- out-of-core storage options ---------- *)

let buffer_pages =
  let doc =
    "Buffer-pool frame budget in pages (0 disables the pool).  When an \
     input exceeds the budget, joins switch to grace/hybrid hash and \
     nests spill partitions — results are bit-identical at every \
     setting.  Default: the NRA_BUFFER_PAGES environment variable."
  in
  Arg.(value & opt (some int) None & info [ "buffer-pages" ] ~docv:"N" ~doc)

let buffer_mb =
  let doc =
    "Buffer-pool budget in megabytes, converted to whole frames at the \
     configured page size (see $(b,--page-size-kb)); the paper's 32 MB \
     buffer cache is $(b,--buffer-mb 32)."
  in
  Arg.(value & opt (some float) None & info [ "buffer-mb" ] ~docv:"MB" ~doc)

let page_size_kb =
  let doc =
    "Simulated page size in KB (default 8) — the unit $(b,--buffer-mb) \
     divides by, so memory budgets convert to exact frame counts."
  in
  Arg.(
    value & opt (some float) None & info [ "page-size-kb" ] ~docv:"KB" ~doc)

let install_storage page_size_kb buffer_pages buffer_mb =
  Option.iter
    (fun kb ->
      let c = Nra.Iosim.config () in
      Nra.Iosim.set_config { c with Nra.Iosim.page_size_kb = kb })
    page_size_kb;
  (match buffer_pages with
  | Some 0 -> Nra.Bufpool.set_frames None
  | Some n -> Nra.Bufpool.set_frames (Some n)
  | None -> ());
  Option.iter
    (fun mb -> Nra.Bufpool.set_frames (Some (Nra.Iosim.frames_for_mb mb)))
    buffer_mb

(* ---------- serving-layer options (repl) ---------- *)

let session_wall_ms =
  let doc =
    "Aggregate wall-clock budget (ms) for the whole REPL session; spent \
     down by every statement."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "session-budget-wall-ms" ] ~docv:"MS" ~doc)

let session_io_ms =
  let doc =
    "Aggregate simulated-I/O budget (ms) for the whole REPL session."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "session-budget-io-ms" ] ~docv:"MS" ~doc)

let session_rows =
  let doc =
    "Aggregate intermediate-row budget for the whole REPL session."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "session-budget-rows" ] ~docv:"N" ~doc)

let max_concurrent =
  let doc = "Admission control: concurrent execution slots." in
  Arg.(
    value
    & opt int Nra_server.Admission.default_config.max_concurrent
    & info [ "max-concurrent" ] ~docv:"N" ~doc)

let queue_len =
  let doc = "Admission control: bounded wait-queue length." in
  Arg.(
    value
    & opt int Nra_server.Admission.default_config.queue_len
    & info [ "queue-len" ] ~docv:"N" ~doc)

let quantum_ms =
  let doc =
    "Cooperative scheduler quantum: simulated-I/O milliseconds a \
     statement may charge per slice before yielding to other in-flight \
     statements ('inf' disables interleaving: a statement runs to \
     completion once scheduled)."
  in
  Arg.(
    value
    & opt float Nra_server.Scheduler.default_quantum_ms
    & info [ "quantum-ms" ] ~docv:"MS" ~doc)

let domains_arg =
  let doc =
    "Worker domains for intra-query parallelism (morsel-driven hash \
     join, nest, and scan+filter). 0 forces the serial path; the \
     default is the NRA_DOMAINS environment variable, else the host \
     core count minus one. Results are bit-identical at every setting."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

(* Run [f] over a budget assembled from the flags, with SIGINT wired to
   the budget's cancel token for the duration (the default Ctrl-C
   behavior is restored afterwards, so a second Ctrl-C at a prompt still
   kills the process). *)
let with_guard_flags timeout_ms io_budget_ms max_rows f =
  let tok = Nra.Guard.token () in
  let b =
    Nra.Guard.budget ?wall_ms:timeout_ms ?sim_io_ms:io_budget_ms
      ?max_rows ~cancel_on:tok ()
  in
  let old =
    Sys.signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Nra.Guard.cancel tok))
  in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigint old)
    (fun () -> f b)

let print_robustness_report () =
  let ev = Nra.Guard.events () in
  if
    ev.Nra.Guard.budget_kills + ev.Nra.Guard.cancellations
    + ev.Nra.Guard.auto_fallbacks > 0
  then
    Printf.printf
      "guard: %d budget kill(s), %d cancellation(s), %d auto fallback(s)\n"
      ev.Nra.Guard.budget_kills ev.Nra.Guard.cancellations
      ev.Nra.Guard.auto_fallbacks;
  if Nra.Fault.enabled () then begin
    let fs = Nra.Fault.stats () in
    Printf.printf
      "faults: %d injected, %d retried, %d escaped, %.2f ms backoff\n"
      fs.Nra.Fault.injected fs.Nra.Fault.retried fs.Nra.Fault.escaped
      fs.Nra.Fault.backoff_ms_total
  end

(* ---------- commands ---------- *)

let run_query strategy rewrite columnar domains scale seed null_rate
    not_null csv timing timeout_ms io_budget_ms max_rows faults fault_seed
    psize bpages bmb sql =
  Option.iter Nra_pool.Pool.set_size domains;
  install_rewrite rewrite;
  install_columnar columnar;
  install_storage psize bpages bmb;
  let cat = make_catalog scale seed null_rate not_null in
  (* a torn WAL (e.g. a crash fault in a prior in-process run) is
     repaired before the statement executes *)
  (match Nra.Wal.recover_if_needed cat with
  | Some s ->
      Printf.eprintf
        "recovered unfinished statement(s) from WAL (%d redone, %d \
         undone)\n%!"
        s.Nra.Wal.redone s.Nra.Wal.undone
  | None -> ());
  (* statistics collection is pure CPU (no Iosim charges), so Auto's
     choice is informed without distorting the reported simulation *)
  if strategy = Nra.Auto then ignore (Nra.exec cat "analyze");
  install_faults faults fault_seed;
  Nra_storage.Iosim.reset ();
  let t0 = Unix.gettimeofday () in
  match
    with_guard_flags timeout_ms io_budget_ms max_rows (fun guard ->
        Nra.query ~strategy ~guard cat sql)
  with
  | Ok rel ->
      let dt = Unix.gettimeofday () -. t0 in
      if csv then print_string (Nra.Relation.to_csv rel)
      else Format.printf "%a@." Nra.Relation.pp rel;
      if timing then begin
        let c = Nra_storage.Iosim.counters () in
        let strategy_label =
          match strategy with
          | Nra.Auto -> (
              match Nra.auto_choice cat sql with
              | Ok s -> "auto -> " ^ Nra.strategy_to_string s
              | Error _ -> "auto")
          | s -> Nra.strategy_to_string s
        in
        Printf.printf
          "cpu: %.3fs   simulated-2005-disk: %.2fs   strategy: %s\n" dt
          (Nra_storage.Iosim.simulated_seconds ())
          strategy_label;
        Printf.printf
          "io: %d seq pages, %d random pages, %d tuples fetched, cache \
           %d hit / %d miss\n"
          c.Nra_storage.Iosim.seq_pages c.Nra_storage.Iosim.rand_pages
          c.Nra_storage.Iosim.fetched_rows
          (Nra_storage.Iosim.cache_hits ())
          (Nra_storage.Iosim.cache_misses ());
        if Nra.Bufpool.enabled () then begin
          let bp = Nra.Bufpool.stats () in
          Printf.printf
            "pool: %s frames, %d hit / %d miss, %d eviction(s), %d \
             writeback(s), %d spilled partition(s) (%d page(s)), %d WAL \
             record(s)\n"
            (match Nra.Bufpool.frames () with
            | Some f -> string_of_int f
            | None -> "-")
            bp.Nra.Bufpool.hits bp.Nra.Bufpool.misses
            bp.Nra.Bufpool.evictions bp.Nra.Bufpool.writebacks
            bp.Nra.Bufpool.spilled_partitions bp.Nra.Bufpool.spilled_pages
            (Nra.Wal.records ())
        end;
        let gv = Nra.Governor.stats () in
        if gv.Nra.Governor.stagings > 0 then begin
          let bp = Nra.Bufpool.stats () in
          Printf.printf
            "governor: %d staged (%d rows), high-water %d bytes, %d \
             spilled (%d rows), largest resident %d page(s), spill \
             volume %d KB\n"
            gv.Nra.Governor.stagings gv.Nra.Governor.staged_rows
            gv.Nra.Governor.high_water_bytes
            gv.Nra.Governor.spilled_stagings gv.Nra.Governor.spilled_rows
            gv.Nra.Governor.max_resident_pages
            (int_of_float
               (float_of_int bp.Nra.Bufpool.spilled_pages
               *. (Nra_storage.Iosim.config ()).Nra_storage.Iosim
                  .page_size_kb))
        end
      end;
      if timing then print_robustness_report ();
      `Ok ()
  | Error m ->
      if timing then print_robustness_report ();
      `Error (false, m)

let query_cmd =
  let info = Cmd.info "query" ~doc:"Run a SQL query over generated TPC-H data." in
  Cmd.v info
    Term.(
      ret
        (const run_query $ strategy $ rewrite_arg $ columnar_arg
       $ domains_arg $ scale
       $ seed $ null_rate $ not_null $ csv $ timing $ timeout_ms
       $ io_budget_ms $ max_rows $ faults $ fault_seed $ page_size_kb
       $ buffer_pages $ buffer_mb $ sql_arg))

let costs =
  let doc =
    "Also price every evaluation strategy with the cost model (after \
     ANALYZE over the generated tables) and show the strategy `auto' \
     would run."
  in
  Arg.(value & flag & info [ "costs" ] ~doc)

let run_explain rewrite scale seed null_rate not_null costs sql =
  install_rewrite rewrite;
  let cat = make_catalog scale seed null_rate not_null in
  match Nra.explain cat sql with
  | Ok text ->
      print_endline text;
      if costs then begin
        ignore (Nra.exec cat "analyze");
        match Nra.explain_costs cat sql with
        | Ok report ->
            print_newline ();
            print_string report
        | Error m -> Printf.printf "cost estimation failed: %s\n" m
      end;
      `Ok ()
  | Error m -> `Error (false, m)

let explain_cmd =
  let info =
    Cmd.info "explain"
      ~doc:
        "Show the paper's tree expression for a query, its nesting \
         depth/linearity, and the strategy the classical baseline would \
         pick per subquery; with $(b,--costs), the cost model's \
         per-strategy estimates and auto's choice."
  in
  Cmd.v info
    Term.(
      ret
        (const run_explain $ rewrite_arg $ scale $ seed $ null_rate
       $ not_null $ costs $ sql_arg))

let run_tables scale seed null_rate not_null =
  let cat = make_catalog scale seed null_rate not_null in
  Format.printf "%a@." Nra.Catalog.pp cat

let tables_cmd =
  let info = Cmd.info "tables" ~doc:"List the generated tables." in
  Cmd.v info
    Term.(const run_tables $ scale $ seed $ null_rate $ not_null)

let table_arg =
  let doc = "Analyze only this table (default: every table)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"TABLE" ~doc)

let run_analyze scale seed null_rate not_null table =
  let cat = make_catalog scale seed null_rate not_null in
  let sql =
    match table with Some t -> "analyze " ^ t | None -> "analyze"
  in
  match Nra.exec cat sql with
  | Ok (Nra.Done msg) ->
      print_endline msg;
      let store = Nra.Stats.Stats_store.of_catalog cat in
      Format.printf "%a@." Nra.Stats.Stats_store.pp store;
      `Ok ()
  | Ok _ -> `Error (false, "unexpected result")
  | Error m -> `Error (false, m)

let analyze_cmd =
  let info =
    Cmd.info "analyze"
      ~doc:
        "Collect optimizer statistics (row counts, NDV, null fractions, \
         histograms, clustering) over the generated tables and print \
         them."
  in
  Cmd.v info
    Term.(
      ret
        (const run_analyze $ scale $ seed $ null_rate $ not_null $ table_arg))

let run_repl strategy rewrite columnar domains scale seed null_rate
    not_null timeout_ms io_budget_ms max_rows faults fault_seed psize bpages
    bmb session_wall_ms session_io_ms session_rows max_concurrent queue_len
    quantum_ms =
  install_rewrite rewrite;
  install_columnar columnar;
  install_storage psize bpages bmb;
  let cat = make_catalog scale seed null_rate not_null in
  install_faults faults fault_seed;
  let server =
    Nra_server.Server.create
      ~config:
        {
          Nra_server.Server.default_config with
          admission =
            {
              Nra_server.Admission.default_config with
              max_concurrent;
              queue_len;
            };
          session_wall_ms;
          session_sim_io_ms = session_io_ms;
          session_rows;
          strategy;
          quantum_ms;
          domains;
        }
      cat
  in
  let session = Nra_server.Server.session server ~label:"repl" () in
  Printf.printf
    "nra repl — strategy %s; end statements with a blank line; \\q quits; \
     \\session reports the session; Ctrl-C cancels the running statement.\n"
    (Nra.strategy_to_string strategy);
  let buf = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buf = 0 then print_string "nra> "
    else print_string "...> ";
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> Nra_server.Server.close_session server session
    | "\\q" -> Nra_server.Server.close_session server session
    | "\\session" ->
        print_endline (Nra_server.Server.report server session);
        loop ()
    | "" when Buffer.length buf > 0 ->
        let sql = Buffer.contents buf in
        Buffer.clear buf;
        (* the SIGINT handler is scoped to the statement: Ctrl-C here
           cancels cooperatively, Ctrl-C at the prompt still exits.  The
           per-statement guard only tightens the session allowance. *)
        (match
           with_guard_flags timeout_ms io_budget_ms max_rows (fun guard ->
               Nra_server.Server.exec server ~guard session sql)
         with
        | Ok (Nra.Rows rel) -> Format.printf "%a@." Nra.Relation.pp rel
        | Ok (Nra.Count n) -> Printf.printf "%d row(s) affected\n" n
        | Ok (Nra.Done msg) -> print_endline msg
        | Error e -> Printf.printf "error: %s\n" (Nra.Exec_error.to_string e));
        loop ()
    | "" -> loop ()
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        loop ()
  in
  loop ()

let repl_cmd =
  let info =
    Cmd.info "repl"
      ~doc:
        "Interactive SQL loop through the serving layer: a session with \
         optional aggregate budgets, admission control, and a \
         generation-checked plan cache."
  in
  Cmd.v info
    Term.(
      const run_repl $ strategy $ rewrite_arg $ columnar_arg
      $ domains_arg $ scale $ seed
      $ null_rate $ not_null $ timeout_ms $ io_budget_ms $ max_rows $ faults
      $ fault_seed $ page_size_kb $ buffer_pages $ buffer_mb
      $ session_wall_ms $ session_io_ms $ session_rows $ max_concurrent
      $ queue_len $ quantum_ms)

let main =
  let info =
    Cmd.info "nra-cli" ~version:"1.0.0"
      ~doc:
        "Nested relational processing of SQL subqueries (Cao & Badia, \
         SIGMOD 2005)."
  in
  Cmd.group info [ query_cmd; explain_cmd; analyze_cmd; tables_cmd; repl_cmd ]

let () = exit (Cmd.eval main)
