open Nra
open Test_support
module B = Algebra.Basic
module J = Algebra.Join
module S = Algebra.Setops
module Agg = Algebra.Aggregate
module T = Three_valued

let schema2 t =
  Schema.of_columns
    [ Schema.column ~table:t "a" Ttype.Int; Schema.column ~table:t "b" Ttype.Int ]

let rel t rows =
  Relation.make (schema2 t)
    (Array.of_list (List.map (fun (a, b) -> [| a; b |]) rows))

let left () =
  rel "l" [ (vi 1, vi 10); (vi 2, vi 20); (vi 3, vnull); (vnull, vi 40) ]

let right () =
  rel "r" [ (vi 1, vi 100); (vi 1, vi 101); (vi 3, vi 300); (vnull, vi 400) ]

let eq_on_a = Expr.Cmp (T.Eq, Expr.Col 0, Expr.Col 2)

let test_select () =
  let r = B.select (Expr.Cmp (T.Ge, Expr.Col 0, Expr.Const (vi 2))) (left ()) in
  (* NULL comparison is unknown: row (null, 40) is dropped *)
  Alcotest.(check int) "rows" 2 (Relation.cardinality r)

let test_project_exprs () =
  let r =
    B.project_exprs
      [
        (Expr.Add (Expr.Col 0, Expr.Col 1), Schema.column "s" Ttype.Int);
        (Expr.Const (vi 7), Schema.column "k" Ttype.Int);
      ]
      (left ())
  in
  check_rows "computed"
    [
      [ None; Some 7 ];
      [ None; Some 7 ];
      [ Some 11; Some 7 ];
      [ Some 22; Some 7 ];
    ]
    r

let test_product_limit_distinct () =
  let p = B.product (left ()) (right ()) in
  Alcotest.(check int) "product" 16 (Relation.cardinality p);
  Alcotest.(check int) "limit" 3 (Relation.cardinality (B.limit 3 p));
  Alcotest.(check int) "limit beyond" 16
    (Relation.cardinality (B.limit 99 p));
  let dup = Relation.append (left ()) (left ()) in
  Alcotest.(check int) "distinct" 4 (Relation.cardinality (B.distinct dup))

let test_inner_join () =
  let r = J.join J.Inner ~on:eq_on_a (left ()) (right ()) in
  (* 1 matches twice, 3 once; NULL keys never match *)
  check_rows "inner"
    [
      [ Some 1; Some 10; Some 1; Some 100 ];
      [ Some 1; Some 10; Some 1; Some 101 ];
      [ Some 3; None; Some 3; Some 300 ];
    ]
    r

let test_left_outer_join () =
  let r = J.join J.Left_outer ~on:eq_on_a (left ()) (right ()) in
  check_rows "outer"
    [
      [ None; Some 40; None; None ];
      [ Some 1; Some 10; Some 1; Some 100 ];
      [ Some 1; Some 10; Some 1; Some 101 ];
      [ Some 2; Some 20; None; None ];
      [ Some 3; None; Some 3; Some 300 ];
    ]
    r

let test_semi_anti () =
  let s = J.join J.Semi ~on:eq_on_a (left ()) (right ()) in
  check_rows "semi" [ [ Some 1; Some 10 ]; [ Some 3; None ] ] s;
  let a = J.join J.Anti ~on:eq_on_a (left ()) (right ()) in
  check_rows "anti" [ [ None; Some 40 ]; [ Some 2; Some 20 ] ] a

let test_residual_join () =
  (* equi on a plus a residual inequality on the b columns *)
  let on =
    Expr.And (eq_on_a, Expr.Cmp (T.Gt, Expr.Col 3, Expr.Const (vi 100)))
  in
  let r = J.join J.Inner ~on (left ()) (right ()) in
  check_rows "residual"
    [
      [ Some 1; Some 10; Some 1; Some 101 ];
      [ Some 3; None; Some 3; Some 300 ];
    ]
    r

let test_pure_theta_join () =
  (* no equi conjunct: must fall back to nested loop *)
  let on = Expr.Cmp (T.Lt, Expr.Col 0, Expr.Col 2) in
  let r = J.join J.Inner ~on (left ()) (right ()) in
  (* 1<3 and 2<3; NULLs on either side never qualify *)
  Alcotest.(check int) "theta join" 2 (Relation.cardinality r)

let qtest = QCheck_alcotest.to_alcotest

let arb_pairs =
  QCheck.(
    small_list
      (pair
         (oneof [ always Value.Null; map (fun i -> Value.Int i) (int_bound 5) ])
         (map (fun i -> Value.Int i) (int_bound 5))))

let prop_hash_eq_nested_loop =
  QCheck.Test.make ~name:"hash join = nested loop join (all kinds)"
    (QCheck.pair arb_pairs arb_pairs)
    (fun (l, r) ->
      let lrel = rel "l" l and rrel = rel "r" r in
      let on =
        Expr.And (eq_on_a, Expr.Cmp (T.Le, Expr.Col 1, Expr.Col 3))
      in
      List.for_all
        (fun kind ->
          Relation.equal_bag
            (J.join kind ~on lrel rrel)
            (J.nested_loop kind ~on lrel rrel))
        [ J.Inner; J.Left_outer; J.Semi; J.Anti ])

let prop_outer_join_left_preserving =
  QCheck.Test.make ~name:"left outer join preserves every left row"
    (QCheck.pair arb_pairs arb_pairs)
    (fun (l, r) ->
      let lrel = rel "l" l and rrel = rel "r" r in
      let o = J.join J.Left_outer ~on:eq_on_a lrel rrel in
      let left_part = Relation.project o [ 0; 1 ] in
      Relation.cardinality o >= Relation.cardinality lrel
      && List.for_all
           (fun row -> List.exists (Row.equal row) (Relation.sorted_rows left_part))
           (Relation.sorted_rows lrel))

let prop_semi_anti_partition =
  QCheck.Test.make ~name:"semi and anti partition the left side"
    (QCheck.pair arb_pairs arb_pairs)
    (fun (l, r) ->
      let lrel = rel "l" l and rrel = rel "r" r in
      let s = J.join J.Semi ~on:eq_on_a lrel rrel in
      let a = J.join J.Anti ~on:eq_on_a lrel rrel in
      Relation.equal_bag lrel (Relation.append s a))

let test_setops () =
  let a = rel "x" [ (vi 1, vi 1); (vi 1, vi 1); (vi 2, vi 2) ] in
  let b = rel "x" [ (vi 1, vi 1); (vi 3, vi 3) ] in
  Alcotest.(check int) "union dedups" 3 (Relation.cardinality (S.union a b));
  Alcotest.(check int) "union_all" 5 (Relation.cardinality (S.union_all a b));
  Alcotest.(check int) "intersect" 1 (Relation.cardinality (S.intersect a b));
  Alcotest.(check int) "intersect_all min multiplicity" 1
    (Relation.cardinality (S.intersect_all a b));
  Alcotest.(check int) "except" 1 (Relation.cardinality (S.except a b));
  Alcotest.(check int) "except_all subtracts multiplicity" 2
    (Relation.cardinality (S.except_all a b))

let test_division () =
  (* students × courses: who takes every required course? *)
  let takes =
    rel "t"
      [
        (vi 1, vi 10); (vi 1, vi 20); (vi 1, vi 30);
        (vi 2, vi 10); (vi 2, vi 30);
        (vi 3, vi 20);
      ]
  in
  let required = rel "req" [ (vi 0, vi 10); (vi 0, vi 30) ] in
  let d = S.divide takes ~by:required ~on:[ (1, 1) ] in
  check_rows "students covering the divisor" [ [ Some 1 ]; [ Some 2 ] ] d;
  (* empty divisor: universally true *)
  let d = S.divide takes ~by:(rel "req" []) ~on:[ (1, 1) ] in
  Alcotest.(check int) "for-all over empty set" 3 (Relation.cardinality d);
  (* duplicate divisor rows don't change the answer *)
  let required2 =
    rel "req" [ (vi 0, vi 10); (vi 9, vi 10); (vi 0, vi 30) ]
  in
  let d = S.divide takes ~by:required2 ~on:[ (1, 1) ] in
  Alcotest.(check int) "divisor is a set" 2 (Relation.cardinality d)

let qtest2 = QCheck_alcotest.to_alcotest

(* division agrees with its double-negation definition:
   x qualifies iff ¬∃ s ∈ S. ¬∃ (x, s) ∈ R *)
let prop_division_vs_double_negation =
  QCheck.Test.make ~name:"division = double NOT EXISTS"
    QCheck.(
      pair
        (small_list (pair (int_bound 3) (int_bound 3)))
        (small_list (int_bound 3)))
    (fun (pairs, ys) ->
      let takes = rel "t" (List.map (fun (x, y) -> (vi x, vi y)) pairs) in
      let req = rel "r" (List.map (fun y -> (vi 0, vi y)) ys) in
      let d = S.divide takes ~by:req ~on:[ (1, 1) ] in
      let xs = List.sort_uniq compare (List.map fst pairs) in
      let expected =
        List.filter
          (fun x ->
            List.for_all (fun y -> List.mem (x, y) pairs)
              (List.sort_uniq compare ys))
          xs
      in
      List.length expected = Relation.cardinality d
      && List.for_all
           (fun x ->
             Array.exists
               (fun row -> Value.equal row.(0) (vi x))
               (Relation.rows d))
           expected)

let test_aggregates () =
  let r =
    rel "x"
      [ (vi 1, vi 10); (vi 1, vnull); (vi 2, vi 5); (vi 2, vi 7); (vi 1, vi 2) ]
  in
  let g =
    Agg.group_by ~keys:[ 0 ]
      [
        { Agg.func = Agg.Count_star; as_name = "n" };
        { Agg.func = Agg.Count (Expr.Col 1); as_name = "nv" };
        { Agg.func = Agg.Sum (Expr.Col 1); as_name = "s" };
        { Agg.func = Agg.Min (Expr.Col 1); as_name = "mn" };
        { Agg.func = Agg.Max (Expr.Col 1); as_name = "mx" };
      ]
      r
  in
  check_rows "group_by"
    [
      [ Some 1; Some 3; Some 2; Some 12; Some 2; Some 10 ];
      [ Some 2; Some 2; Some 2; Some 12; Some 5; Some 7 ];
    ]
    g;
  let empty = rel "x" [] in
  let glob =
    Agg.global
      [
        { Agg.func = Agg.Count_star; as_name = "n" };
        { Agg.func = Agg.Sum (Expr.Col 0); as_name = "s" };
      ]
      empty
  in
  check_rows "global over empty: COUNT 0, SUM NULL" [ [ Some 0; None ] ] glob

let test_avg () =
  let r = rel "x" [ (vi 1, vi 10); (vi 1, vi 20); (vi 1, vnull) ] in
  let g =
    Agg.group_by ~keys:[ 0 ] [ { Agg.func = Agg.Avg (Expr.Col 1); as_name = "a" } ] r
  in
  let row = (Relation.rows g).(0) in
  Alcotest.check value_testable "avg ignores nulls" (vf 15.0) row.(1)

let test_sort () =
  let r = rel "x" [ (vi 2, vi 1); (vnull, vi 2); (vi 1, vi 3) ] in
  let s =
    Algebra.Sort.sort
      [ { Algebra.Sort.pos = 0; dir = Algebra.Sort.Desc } ]
      r
  in
  let first = (Relation.rows s).(0) in
  Alcotest.check value_testable "desc puts nulls last... first is 2" (vi 2)
    first.(0);
  let last = (Relation.rows s).(2) in
  Alcotest.(check bool) "null last on desc" true (Value.is_null last.(0))

let () =
  Alcotest.run "algebra"
    [
      ( "basic",
        [
          Alcotest.test_case "select (3VL)" `Quick test_select;
          Alcotest.test_case "project_exprs" `Quick test_project_exprs;
          Alcotest.test_case "product/limit/distinct" `Quick
            test_product_limit_distinct;
        ] );
      ( "joins",
        [
          Alcotest.test_case "inner" `Quick test_inner_join;
          Alcotest.test_case "left outer" `Quick test_left_outer_join;
          Alcotest.test_case "semi/anti" `Quick test_semi_anti;
          Alcotest.test_case "residual" `Quick test_residual_join;
          Alcotest.test_case "pure theta" `Quick test_pure_theta_join;
        ] );
      ( "setops",
        [
          Alcotest.test_case "all six" `Quick test_setops;
          Alcotest.test_case "division" `Quick test_division;
          qtest2 prop_division_vs_double_negation;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "group_by" `Quick test_aggregates;
          Alcotest.test_case "avg" `Quick test_avg;
        ] );
      ("sort", [ Alcotest.test_case "directions" `Quick test_sort ]);
      ( "properties",
        [
          qtest prop_hash_eq_nested_loop;
          qtest prop_outer_join_left_preserving;
          qtest prop_semi_anti_partition;
        ] );
    ]
