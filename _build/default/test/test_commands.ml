(* DDL / DML commands through the facade: CREATE TABLE, INSERT (values
   and select), DELETE (with subqueries), DROP, and the invariants they
   must maintain (key uniqueness, NOT NULL, index rebuilds). *)

open Nra
open Test_support

let exec cat sql =
  match Nra.exec cat sql with
  | Ok r -> r
  | Error m -> Alcotest.fail (Printf.sprintf "exec failed (%s): %s" sql m)

let expect_error cat sql =
  match Nra.exec cat sql with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail ("accepted: " ^ sql)

let count = function
  | Nra.Count n -> n
  | _ -> Alcotest.fail "expected a row count"

let rows = function
  | Nra.Rows r -> r
  | _ -> Alcotest.fail "expected rows"

let fresh () =
  let cat = Catalog.create () in
  ignore
    (exec cat
       "create table books (id int, title string not null, pages int, \
        primary key (id))");
  cat

let test_create_and_insert () =
  let cat = fresh () in
  Alcotest.(check bool) "registered" true (Catalog.mem cat "books");
  let n =
    count
      (exec cat
         "insert into books values (1, 'sicp', 657), (2, 'taocp', null), \
          (3, 'okasaki', 220)")
  in
  Alcotest.(check int) "inserted" 3 n;
  let r = rows (exec cat "select title from books where pages is null") in
  Alcotest.(check int) "null pages" 1 (Relation.cardinality r)

let test_insert_select () =
  let cat = fresh () in
  ignore (exec cat "insert into books values (1, 'a', 10), (2, 'b', 20)");
  ignore
    (exec cat
       "create table big_books (id int, title string, pages int, primary \
        key (id))");
  let n =
    count
      (exec cat
         "insert into big_books select id, title, pages from books where \
          pages > 15")
  in
  Alcotest.(check int) "insert-select" 1 n;
  let r = rows (exec cat "select title from big_books") in
  check_rows "contents" [ [] ] (Relation.project r []);
  Alcotest.(check int) "one row" 1 (Relation.cardinality r)

let test_delete () =
  let cat = fresh () in
  ignore
    (exec cat "insert into books values (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)");
  let n = count (exec cat "delete from books where pages >= 20") in
  Alcotest.(check int) "deleted" 2 n;
  let r = rows (exec cat "select id from books") in
  check_rows "survivor" [ [ Some 1 ] ] r;
  (* unconditional delete *)
  let n = count (exec cat "delete from books") in
  Alcotest.(check int) "cleared" 1 n

let test_delete_with_subquery () =
  let cat = fresh () in
  ignore (exec cat "insert into books values (1, 'a', 10), (2, 'b', 20)");
  ignore
    (exec cat
       "create table loans (lid int, book int, primary key (lid))");
  ignore (exec cat "insert into loans values (1, 2)");
  let n =
    count
      (exec cat
         "delete from books where not exists (select * from loans where \
          loans.book = books.id)")
  in
  Alcotest.(check int) "unloaned books deleted" 1 n;
  let r = rows (exec cat "select id from books") in
  check_rows "loaned book survives" [ [ Some 2 ] ] r

let test_constraints () =
  let cat = fresh () in
  ignore (exec cat "insert into books values (1, 'a', 10)");
  (* duplicate key *)
  expect_error cat "insert into books values (1, 'dup', 0)";
  (* NOT NULL violation *)
  expect_error cat "insert into books values (2, null, 0)";
  (* type violation *)
  expect_error cat "insert into books values ('x', 'a', 0)";
  (* arity violation *)
  expect_error cat "insert into books values (2, 'a')";
  (* failed inserts must not have modified the table *)
  let r = rows (exec cat "select count(*) from books") in
  check_rows "unchanged" [ [ Some 1 ] ] r

let test_ddl_errors () =
  let cat = fresh () in
  expect_error cat "create table books (id int, primary key (id))";
  expect_error cat "create table nokey (id int)";
  expect_error cat "create table bad (id frob, primary key (id))";
  expect_error cat "drop table nosuch";
  expect_error cat "insert into nosuch values (1)";
  expect_error cat "delete from nosuch";
  ignore (exec cat "drop table books");
  Alcotest.(check bool) "dropped" false (Catalog.mem cat "books")

let test_indexes_rebuilt () =
  let cat = fresh () in
  Catalog.create_sorted_index cat ~table:"books" [ "pages" ];
  ignore (exec cat "insert into books values (1, 'a', 10), (2, 'b', 20)");
  (match Catalog.sorted_index_on cat ~table:"books" "pages" with
  | Some idx -> Alcotest.(check int) "index sees new rows" 2
                  (Sorted_index.cardinality idx)
  | None -> Alcotest.fail "secondary index lost by insert");
  ignore (exec cat "delete from books where id = 1");
  match Catalog.sorted_index_on cat ~table:"books" "pages" with
  | Some idx ->
      Alcotest.(check int) "index sees deletion" 1
        (Sorted_index.cardinality idx)
  | None -> Alcotest.fail "secondary index lost by delete"

let test_update () =
  let cat = fresh () in
  ignore
    (exec cat "insert into books values (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)");
  let n = count (exec cat "update books set pages = pages + 5 where pages >= 20") in
  Alcotest.(check int) "two updated" 2 n;
  let r = rows (exec cat "select pages from books order by pages") in
  check_rows "incremented" [ [ Some 10 ]; [ Some 25 ]; [ Some 35 ] ] r;
  (* multiple assignments see the pre-update row *)
  ignore
    (exec cat
       "create table pairs (id int, x int, y int, primary key (id))");
  ignore (exec cat "insert into pairs values (1, 1, 2)");
  ignore (exec cat "update pairs set x = y, y = x");
  let r = rows (exec cat "select x, y from pairs") in
  check_rows "swap" [ [ Some 2; Some 1 ] ] r;
  (* WHERE with a subquery *)
  ignore (exec cat "create table hot (hid int, primary key (hid))");
  ignore (exec cat "insert into hot values (1)");
  let n =
    count
      (exec cat
         "update books set title = 'HOT' where id in (select hid from hot)")
  in
  Alcotest.(check int) "one via subquery" 1 n;
  let r = rows (exec cat "select title from books where id = 1") in
  Alcotest.check value_testable "retitled" (vs "HOT")
    (Relation.rows r).(0).(0)

let test_update_constraints () =
  let cat = fresh () in
  ignore (exec cat "insert into books values (1, 'a', 10)");
  (* NOT NULL violation caught, table unchanged *)
  expect_error cat "update books set title = null";
  expect_error cat "update books set nosuch = 1";
  expect_error cat "update nosuch set pages = 1";
  let r = rows (exec cat "select title from books") in
  Alcotest.check value_testable "unchanged" (vs "a")
    (Relation.rows r).(0).(0)

let test_varchar_and_types () =
  let cat = Catalog.create () in
  ignore
    (exec cat
       "create table misc (id integer, name varchar(20), price real, ok \
        boolean, d date, primary key (id))");
  let n =
    count
      (exec cat
         "insert into misc values (1, 'x', 1.5, true, date '2020-02-29')")
  in
  Alcotest.(check int) "row in" 1 n;
  let r = rows (exec cat "select d from misc where ok = true") in
  Alcotest.(check int) "queried back" 1 (Relation.cardinality r)

let () =
  Alcotest.run "commands"
    [
      ( "dml",
        [
          Alcotest.test_case "create + insert" `Quick test_create_and_insert;
          Alcotest.test_case "insert-select" `Quick test_insert_select;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete with subquery" `Quick
            test_delete_with_subquery;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "update constraints" `Quick
            test_update_constraints;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "constraints" `Quick test_constraints;
          Alcotest.test_case "ddl errors" `Quick test_ddl_errors;
          Alcotest.test_case "indexes rebuilt" `Quick test_indexes_rebuilt;
          Alcotest.test_case "types" `Quick test_varchar_and_types;
        ] );
    ]
