open Nra
module Ast = Sql.Ast
module Lexer = Sql.Lexer
module Parser = Sql.Parser
module T = Three_valued

let parse = Parser.parse

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a.b, 'it''s' <> 1.5e2 -- comment\n<=" in
  Alcotest.(check int) "token count" 10 (List.length toks);
  (match toks with
  | Lexer.KW "select" :: Lexer.IDENT "a" :: Lexer.OP "." :: Lexer.IDENT "b"
    :: Lexer.OP "," :: Lexer.STRING "it's" :: Lexer.OP "<>"
    :: Lexer.FLOAT 150.0 :: Lexer.OP "<=" :: [ Lexer.EOF ] ->
      ()
  | _ -> Alcotest.fail "unexpected token stream");
  match Lexer.tokenize "!=" with
  | [ Lexer.OP "<>"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "!= should normalize to <>"

let test_lexer_errors () =
  (match Lexer.tokenize "'unterminated" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "accepted unterminated string");
  match Lexer.tokenize "a ; b" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "accepted unknown character"

let roundtrip sql =
  let q = parse sql in
  let q2 = parse (Ast.to_string q) in
  Alcotest.(check bool)
    (Printf.sprintf "roundtrip: %s" sql)
    true (q = q2)

let test_simple_select () =
  let q = parse "select a, b.c as x from t, u v where a > 1" in
  Alcotest.(check int) "two select items" 2 (List.length q.Ast.select);
  Alcotest.(check bool) "alias" true (List.mem ("u", Some "v") q.Ast.from);
  roundtrip "select a, b.c as x from t, u v where a > 1"

let test_all_linking_forms () =
  List.iter roundtrip
    [
      "select * from t where exists (select * from u where u.a = t.a)";
      "select * from t where not exists (select * from u)";
      "select * from t where a in (select b from u)";
      "select * from t where a not in (select b from u)";
      "select * from t where a > all (select b from u)";
      "select * from t where a <= some (select b from u)";
      "select * from t where a = any (select b from u)";
      "select * from t where a < (select max(b) from u)";
      "select * from t where a in (1, 2, 3)";
      "select * from t where a not in (1, -2)";
      "select * from t where a between 1 and 10 or not (b is null)";
      "select * from t where a is not null and b is null";
    ]

let test_some_is_any () =
  let q1 = parse "select * from t where a = some (select b from u)" in
  let q2 = parse "select * from t where a = any (select b from u)" in
  Alcotest.(check bool) "SOME = ANY" true (q1 = q2)

let test_nested_deep () =
  let q =
    parse
      "select * from a where x in (select y from b where exists (select * \
       from c where c.z = a.x and c.w > all (select v from d)))"
  in
  Alcotest.(check int) "depth 3" 3 (Ast.query_depth q);
  Alcotest.(check bool) "not flat" false (Ast.is_flat q)

let test_full_clauses () =
  roundtrip
    "select distinct a, count(*) as n, sum(b + 1) from t where c = 'x' group \
     by a having count(*) > 2 order by a desc, n limit 10";
  let q =
    parse
      "select a from t group by a having min(b) >= 0 order by a limit 5"
  in
  Alcotest.(check int) "group_by" 1 (List.length q.Ast.group_by);
  Alcotest.(check bool) "having" true (q.Ast.having <> None);
  Alcotest.(check (option int)) "limit" (Some 5) q.Ast.limit

let test_precedence () =
  let q = parse "select * from t where a = 1 or b = 2 and c = 3" in
  (match q.Ast.where with
  | Some (Ast.Or (_, Ast.And (_, _))) -> ()
  | _ -> Alcotest.fail "AND must bind tighter than OR");
  let q = parse "select * from t where a + 2 * b = 7" in
  match q.Ast.where with
  | Some (Ast.Cmp (T.Eq, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)), _))
    ->
      ()
  | _ -> Alcotest.fail "* must bind tighter than +"

let test_parenthesized_cond_vs_expr () =
  (* "(expr) cmp" must not be swallowed by the condition backtracking *)
  let q = parse "select * from t where (a + 1) > 2 and (a = 1 or b = 2)" in
  match Option.map Ast.cond_conjuncts q.Ast.where with
  | Some [ Ast.Cmp (T.Gt, _, _); Ast.Or (_, _) ] -> ()
  | _ -> Alcotest.fail "mis-parsed parenthesized forms"

let test_dates_literals () =
  let q = parse "select * from t where d >= date '1994-01-01'" in
  (match q.Ast.where with
  | Some (Ast.Cmp (T.Ge, _, Ast.Lit (Value.Date _))) -> ()
  | _ -> Alcotest.fail "date literal");
  roundtrip "select * from t where d >= date '1994-01-01' and e < -2.5"

let test_parse_errors () =
  List.iter
    (fun sql ->
      match Parser.parse_result sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ sql))
    [
      "";
      "select";
      "select from t";
      "select * from";
      "select * from t where";
      "select * from t where a >";
      "select * from t where a in ()";
      "select * from t where exists select * from u";
      "select * from t limit x";
      "select * from t order"; (* "from t trailing" is a legal alias *)
      "select * from t where a between 1";
    ]

let test_subqueries_listing () =
  let q =
    parse
      "select * from t where exists (select * from u) and a in (select b \
       from v)"
  in
  Alcotest.(check int) "two immediate subqueries" 2
    (List.length (Ast.subqueries (Option.get q.Ast.where)))

(* random AST printing/parsing roundtrip *)
let qtest = QCheck_alcotest.to_alcotest

let arb_query =
  let open QCheck.Gen in
  let ident = oneofl [ "a"; "b"; "c"; "d" ] in
  let table = oneofl [ "t"; "u"; "v" ] in
  let lit =
    oneof
      [
        map (fun i -> Ast.Lit (Value.Int i)) (int_bound 100);
        return (Ast.Lit Value.Null);
        map (fun s -> Ast.Lit (Value.String s)) (oneofl [ "x"; "y" ]);
      ]
  in
  let expr =
    oneof
      [
        map (fun n -> Ast.Col (None, n)) ident;
        map2 (fun t n -> Ast.Col (Some t, n)) table ident;
        lit;
      ]
  in
  let cmpop = oneofl [ T.Eq; T.Neq; T.Lt; T.Le; T.Gt; T.Ge ] in
  let rec cond depth =
    let leaf =
      oneof
        [
          map3 (fun op a b -> Ast.Cmp (op, a, b)) cmpop expr expr;
          map (fun e -> Ast.Is_null e) expr;
          map (fun e -> Ast.Is_not_null e) expr;
        ]
    in
    if depth = 0 then leaf
    else
      oneof
        [
          leaf;
          map2 (fun a b -> Ast.And (a, b)) (cond (depth - 1)) (cond (depth - 1));
          map2 (fun a b -> Ast.Or (a, b)) (cond (depth - 1)) (cond (depth - 1));
          map (fun a -> Ast.Not a) (cond (depth - 1));
          map2
            (fun e q -> Ast.In_query (e, q))
            expr (query (depth - 1));
          map (fun q -> Ast.Exists q) (query (depth - 1));
          map3
            (fun e op q -> Ast.Quant_cmp (e, op, Ast.All, q))
            expr cmpop (query (depth - 1));
        ]
  and query depth =
    let* sel = map (fun e -> [ Ast.Sel_expr (e, None) ]) expr in
    let* from = map (fun t -> [ (t, None) ]) table in
    let* where = option (cond depth) in
    return (Ast.simple_query ~select:sel ~from ?where ())
  in
  QCheck.make ~print:Ast.to_string (query 2)

(* Printing then parsing may normalize once (e.g. NOT (EXISTS …) becomes
   NOT EXISTS); after that first trip the representation is a fixpoint. *)
(* robustness: arbitrary input must produce Ok or Error, never escape
   with another exception *)
let prop_parser_total_on_noise =
  QCheck.Test.make ~name:"parser never crashes on noise" ~count:2000
    QCheck.(string_gen_of_size (Gen.int_bound 60) Gen.printable)
    (fun s ->
      match Parser.parse_command_result s with
      | Ok _ | Error _ -> true)

let prop_parser_total_on_token_soup =
  let fragments =
    [| "select"; "from"; "where"; "("; ")"; ","; "*"; "a"; "t"; "1";
       "'x'"; "and"; "or"; "not"; "in"; "exists"; "all"; "any"; "="; "<";
       "null"; "union"; "with"; "as"; "insert"; "values"; "like"; "%";
       "group"; "by"; "order"; "limit"; "date"; "count"; "-"; "+" |]
  in
  QCheck.Test.make ~name:"parser never crashes on token soup" ~count:2000
    QCheck.(list_of_size (Gen.int_bound 25) (int_bound 35))
    (fun idxs ->
      let s = String.concat " " (List.map (fun i -> fragments.(i)) idxs) in
      match Parser.parse_command_result s with
      | Ok _ | Error _ -> true)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse reaches a fixpoint" ~count:500 arb_query
    (fun q ->
      match Parser.parse_result (Ast.to_string q) with
      | Error _ -> false
      | Ok q2 -> (
          match Parser.parse_result (Ast.to_string q2) with
          | Ok q3 -> q3 = q2
          | Error _ -> false))

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple select" `Quick test_simple_select;
          Alcotest.test_case "all linking forms" `Quick test_all_linking_forms;
          Alcotest.test_case "SOME = ANY" `Quick test_some_is_any;
          Alcotest.test_case "deep nesting" `Quick test_nested_deep;
          Alcotest.test_case "full clauses" `Quick test_full_clauses;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "parenthesized forms" `Quick
            test_parenthesized_cond_vs_expr;
          Alcotest.test_case "date literals" `Quick test_dates_literals;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "subqueries" `Quick test_subqueries_listing;
        ] );
      ( "properties",
        [
          qtest prop_print_parse_roundtrip;
          qtest prop_parser_total_on_noise;
          qtest prop_parser_total_on_token_soup;
        ] );
    ]
