open Nra
open Test_support

let schema =
  Schema.of_columns
    [
      Schema.column ~table:"r" "a" Ttype.Int;
      Schema.column ~table:"r" "b" Ttype.Int;
      Schema.column ~table:"s" "a" Ttype.Int;
      Schema.column ~table:"s" "c" ~not_null:true Ttype.String;
    ]

let test_find () =
  Alcotest.(check int) "qualified" 2 (Schema.find schema ~table:"s" "a");
  Alcotest.(check int) "unqualified unique" 1 (Schema.find schema "b");
  Alcotest.check_raises "ambiguous" (Schema.Ambiguous "a") (fun () ->
      ignore (Schema.find schema "a"));
  Alcotest.check_raises "missing" (Schema.Not_found_col "zz") (fun () ->
      ignore (Schema.find schema "zz"));
  Alcotest.check_raises "missing qualified" (Schema.Not_found_col "r.c")
    (fun () -> ignore (Schema.find schema ~table:"r" "c"))

let test_find_opt_mem () =
  Alcotest.(check (option int)) "opt hit" (Some 3)
    (Schema.find_opt schema ~table:"s" "c");
  Alcotest.(check (option int)) "opt ambiguous" None
    (Schema.find_opt schema "a");
  Alcotest.(check bool) "mem" true (Schema.mem schema "b");
  Alcotest.(check bool) "not mem" false (Schema.mem schema "zz")

let test_append_project_rename () =
  let s2 = Schema.append schema schema in
  Alcotest.(check int) "append arity" 8 (Schema.arity s2);
  let p = Schema.project schema [ 3; 0 ] in
  Alcotest.(check string) "project order" "s.c"
    (Schema.qualified_name (Schema.col p 0));
  let r = Schema.rename_table "x" schema in
  Alcotest.(check string) "rename" "x.a"
    (Schema.qualified_name (Schema.col r 0));
  Alcotest.(check bool) "equal_names reflexive" true
    (Schema.equal_names schema schema);
  Alcotest.(check bool) "renamed differs" false
    (Schema.equal_names schema r)

let test_row_ops () =
  let row = [| vi 1; vi 2; vi 3; vnull |] in
  Alcotest.(check bool) "project" true
    (Row.equal [| vi 3; vi 1 |] (Row.project row [ 2; 0 ]));
  Alcotest.(check bool) "concat" true
    (Row.equal [| vi 1; vi 2 |] (Row.concat [| vi 1 |] [| vi 2 |]));
  Alcotest.(check bool) "nulls" true (Row.equal [| vnull; vnull |] (Row.nulls 2));
  Alcotest.(check bool) "has_null_on hit" true
    (Row.has_null_on [| 3 |] row);
  Alcotest.(check bool) "has_null_on miss" false
    (Row.has_null_on [| 0; 1; 2 |] row);
  Alcotest.(check int) "compare_on equal" 0
    (Row.compare_on [| 0; 1 |] row [| vi 1; vi 2; vi 99; vi 0 |]);
  Alcotest.(check bool) "compare shorter first" true
    (Row.compare [| vi 1 |] [| vi 1; vi 2 |] < 0);
  Alcotest.(check int) "hash_on consistency"
    (Row.hash_on [| 0; 2 |] row)
    (Row.hash_on [| 0; 1 |] [| vi 1; vi 3; vi 0; vi 0 |])

let qtest = QCheck_alcotest.to_alcotest

let arb_row =
  QCheck.(
    map Array.of_list
      (small_list
         (oneof [ always Value.Null; map (fun i -> Value.Int i) small_int ])))

let prop_row_compare_consistent_hash =
  QCheck.Test.make ~name:"equal rows hash equally"
    (QCheck.pair arb_row arb_row)
    (fun (a, b) -> if Row.equal a b then Row.hash a = Row.hash b else true)

let prop_project_preserves =
  QCheck.Test.make ~name:"projection on all positions is identity" arb_row
    (fun row ->
      Row.equal row (Row.project row (List.init (Array.length row) Fun.id)))

let () =
  Alcotest.run "schema_row"
    [
      ( "schema",
        [
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "find_opt/mem" `Quick test_find_opt_mem;
          Alcotest.test_case "append/project/rename" `Quick
            test_append_project_rename;
        ] );
      ("row", [ Alcotest.test_case "operations" `Quick test_row_ops ]);
      ( "properties",
        [ qtest prop_row_compare_consistent_hash; qtest prop_project_preserves ]
      );
    ]
