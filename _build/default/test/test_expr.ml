open Nra
open Test_support
module T = Three_valued

let row = [| vi 10; vi 3; vnull; vs "hi"; vf 2.5 |]

let test_eval_scalar () =
  Alcotest.check value_testable "col" (vi 3) (Expr.eval_scalar row (Expr.Col 1));
  Alcotest.check value_testable "const" (vs "x")
    (Expr.eval_scalar row (Expr.Const (vs "x")));
  Alcotest.check value_testable "arith" (vi 13)
    (Expr.eval_scalar row (Expr.Add (Expr.Col 0, Expr.Col 1)));
  Alcotest.check value_testable "null propagates" vnull
    (Expr.eval_scalar row (Expr.Mul (Expr.Col 2, Expr.Col 0)));
  Alcotest.check value_testable "nested" (vf 25.0)
    (Expr.eval_scalar row
       (Expr.Mul (Expr.Col 0, Expr.Const (vf 2.5))))

let test_eval_pred () =
  let check name expected p = Alcotest.check t3 name expected (Expr.eval_pred row p) in
  check "cmp true" T.True (Expr.Cmp (T.Gt, Expr.Col 0, Expr.Col 1));
  check "cmp unknown" T.Unknown (Expr.Cmp (T.Gt, Expr.Col 0, Expr.Col 2));
  check "is_null" T.True (Expr.Is_null (Expr.Col 2));
  check "is_not_null" T.True (Expr.Is_not_null (Expr.Col 0));
  check "and short-circuit semantics" T.False
    (Expr.And
       ( Expr.Cmp (T.Gt, Expr.Col 1, Expr.Col 0),
         Expr.Cmp (T.Eq, Expr.Col 2, Expr.Col 2) ));
  check "in_list hit" T.True
    (Expr.In_list (Expr.Col 1, [ vi 1; vi 3 ]));
  check "in_list miss with null is unknown" T.Unknown
    (Expr.In_list (Expr.Col 1, [ vi 1; vnull ]));
  check "in_list plain miss" T.False
    (Expr.In_list (Expr.Col 1, [ vi 1; vi 2 ]));
  check "null in_list" T.Unknown
    (Expr.In_list (Expr.Col 2, [ vi 1 ]));
  check "between" T.True
    (Expr.Between (Expr.Col 1, Expr.Const (vi 1), Expr.Const (vi 5)));
  check "between unknown" T.Unknown
    (Expr.Between (Expr.Col 2, Expr.Const (vi 1), Expr.Const (vi 5)))

let test_holds () =
  Alcotest.(check bool) "unknown not selected" false
    (Expr.holds (Expr.Cmp (T.Eq, Expr.Col 2, Expr.Col 2)) row)

let test_conjuncts () =
  let p =
    Expr.And
      ( Expr.And (Expr.Is_null (Expr.Col 0), Expr.true_),
        Expr.Is_null (Expr.Col 1) )
  in
  Alcotest.(check int) "flattens and drops true" 2
    (List.length (Expr.conjuncts p));
  Alcotest.(check int) "conj of [] is true" 0
    (List.length (Expr.conjuncts (Expr.conj [])))

let test_cols () =
  let p =
    Expr.And
      ( Expr.Cmp (T.Eq, Expr.Col 3, Expr.Col 1),
        Expr.Between (Expr.Col 1, Expr.Const (vi 0), Expr.Col 4) )
  in
  Alcotest.(check (list int)) "pred_cols sorted unique" [ 1; 3; 4 ]
    (Expr.pred_cols p);
  Alcotest.(check (list int)) "scalar_cols" [ 0; 2 ]
    (Expr.scalar_cols (Expr.Add (Expr.Col 2, Expr.Col 0)))

let test_shift_remap () =
  let p = Expr.Cmp (T.Eq, Expr.Col 0, Expr.Col 2) in
  Alcotest.(check (list int)) "shift" [ 5; 7 ]
    (Expr.pred_cols (Expr.shift_pred 5 p));
  Alcotest.(check (list int)) "remap" [ 0; 4 ]
    (Expr.pred_cols (Expr.remap_pred (fun i -> i * 2) p))

let test_split_equi () =
  let p =
    Expr.conj
      [
        Expr.Cmp (T.Eq, Expr.Col 0, Expr.Col 5);
        Expr.Cmp (T.Eq, Expr.Col 6, Expr.Col 1);
        Expr.Cmp (T.Neq, Expr.Col 2, Expr.Col 7);
        Expr.Cmp (T.Eq, Expr.Col 0, Expr.Col 1);
      ]
  in
  let equi, residual = Expr.split_equi ~left_arity:4 p in
  Alcotest.(check (list (pair int int)))
    "equi pairs (right positions rebased)"
    [ (0, 1); (1, 2) ]
    equi;
  Alcotest.(check int) "residuals" 2 (List.length residual)

let test_fold_basics () =
  let open Expr in
  Alcotest.(check bool) "arith folds" true
    (fold_scalar (Add (Const (vi 1), Const (vi 2))) = Const (vi 3));
  Alcotest.(check bool) "nested folds" true
    (fold_scalar (Mul (Add (Const (vi 1), Const (vi 2)), Const (vi 4)))
    = Const (vi 12));
  Alcotest.(check bool) "cols block folding" true
    (match fold_scalar (Add (Col 0, Const (vi 2))) with
    | Add (Col 0, Const _) -> true
    | _ -> false);
  Alcotest.(check bool) "cmp folds to literal" true
    (fold_pred (Cmp (Three_valued.Lt, Const (vi 1), Const (vi 2)))
    = Lit3 Three_valued.True);
  Alcotest.(check bool) "true and p -> p" true
    (fold_pred (And (true_, Is_null (Col 0))) = Is_null (Col 0));
  Alcotest.(check bool) "false and p -> false" true
    (fold_pred (And (Lit3 Three_valued.False, Is_null (Col 0)))
    = Lit3 Three_valued.False);
  Alcotest.(check bool) "null comparison folds to unknown" true
    (fold_pred (Cmp (Three_valued.Eq, Const vnull, Const (vi 1)))
    = Lit3 Three_valued.Unknown);
  (* a raising constant expression is left untouched *)
  Alcotest.(check bool) "type error not folded" true
    (match fold_scalar (Add (Const (vs "x"), Const (vi 1))) with
    | Add (Const _, Const _) -> true
    | _ -> false)

let qtest = QCheck_alcotest.to_alcotest

let arb_pred =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        map (fun i -> Expr.Col i) (int_bound 4);
        map (fun i -> Expr.Const (vi i)) (int_bound 5);
        return (Expr.Const vnull);
      ]
  in
  let scalar2 =
    oneof
      [
        scalar;
        map2 (fun a b -> Expr.Add (a, b)) scalar scalar;
        map2 (fun a b -> Expr.Sub (a, b)) scalar scalar;
      ]
  in
  let op = oneofl Three_valued.[ Eq; Neq; Lt; Le; Gt; Ge ] in
  let leaf =
    oneof
      [
        map3 (fun o a b -> Expr.Cmp (o, a, b)) op scalar2 scalar2;
        map (fun a -> Expr.Is_null a) scalar2;
        map (fun a -> Expr.In_list (a, [ vi 1; vnull ])) scalar2;
        map3 (fun a lo hi -> Expr.Between (a, lo, hi)) scalar2 scalar2 scalar2;
      ]
  in
  let rec pred n =
    if n = 0 then leaf
    else
      oneof
        [
          leaf;
          map2 (fun a b -> Expr.And (a, b)) (pred (n - 1)) (pred (n - 1));
          map2 (fun a b -> Expr.Or (a, b)) (pred (n - 1)) (pred (n - 1));
          map (fun a -> Expr.Not a) (pred (n - 1));
        ]
  in
  QCheck.make (pred 3)

let prop_fold_sound =
  QCheck.Test.make ~name:"folding preserves evaluation" ~count:1000
    QCheck.(pair arb_pred (array_of_size (QCheck.Gen.return 5)
                             (oneof [ QCheck.always vnull;
                                      map (fun i -> vi i) (int_bound 5) ])))
    (fun (p, row) ->
      Three_valued.equal
        (Expr.eval_pred row p)
        (Expr.eval_pred row (Expr.fold_pred p)))

let () =
  Alcotest.run "expr"
    [
      ( "eval",
        [
          Alcotest.test_case "scalar" `Quick test_eval_scalar;
          Alcotest.test_case "pred" `Quick test_eval_pred;
          Alcotest.test_case "holds" `Quick test_holds;
        ] );
      ( "structure",
        [
          Alcotest.test_case "conjuncts" `Quick test_conjuncts;
          Alcotest.test_case "cols" `Quick test_cols;
          Alcotest.test_case "shift/remap" `Quick test_shift_remap;
          Alcotest.test_case "split_equi" `Quick test_split_equi;
        ] );
      ( "folding",
        [
          Alcotest.test_case "basics" `Quick test_fold_basics;
          qtest prop_fold_sound;
        ] );
    ]
