(* Output post-processing: projection, DISTINCT, ORDER BY, LIMIT,
   GROUP BY + aggregates, HAVING — over both flat queries and queries
   whose WHERE contains subqueries. *)

open Nra
open Test_support

let cat () = emp_dept_catalog ()

let test_projection_expressions () =
  let rel = q (cat ()) "select salary + 10 as sp, ename from emp where emp_id = 1" in
  check_rows "computed column first" [ [ Some 100 ] ]
    (Relation.project rel [ 0 ]);
  Alcotest.(check string) "column names" "sp"
    (Schema.qualified_name (Schema.col (Relation.schema rel) 0))

let test_star_expansion () =
  let rel = q (cat ()) "select * from dept where dept_id = 1" in
  Alcotest.(check int) "all columns" 3 (Schema.arity (Relation.schema rel));
  (* qualified star picks one table of a join *)
  let rel =
    q (cat ())
      "select d.*, ename from emp, dept d where emp.dept_id = d.dept_id \
       and emp_id = 1"
  in
  Alcotest.(check int) "d.* plus one column" 4
    (Schema.arity (Relation.schema rel));
  Alcotest.(check string) "first column from dept" "dept_id"
    (Schema.qualified_name (Schema.col (Relation.schema rel) 0));
  match Nra.query (cat ()) "select zz.* from dept" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown alias in qualified star"

let test_order_by () =
  let rel = q (cat ()) "select ename from emp order by salary desc, ename" in
  let names = List.map (fun r -> Value.to_string r.(0)) (Array.to_list (Relation.rows rel)) in
  (* salary desc: ada 90, eve 80, cyd 70, bob 60, fay 40, dan NULL last *)
  Alcotest.(check (list string)) "order"
    [ "'ada'"; "'eve'"; "'cyd'"; "'bob'"; "'fay'"; "'dan'" ]
    names

let test_order_by_hidden_key () =
  (* ordering key not in the select list *)
  let rel = q (cat ()) "select ename from emp order by emp_id desc limit 2" in
  let names = List.map (fun r -> Value.to_string r.(0)) (Array.to_list (Relation.rows rel)) in
  Alcotest.(check (list string)) "hidden key" [ "'fay'"; "'eve'" ] names;
  Alcotest.(check int) "only selected columns remain" 1
    (Schema.arity (Relation.schema rel))

let test_limit () =
  let rel = q (cat ()) "select ename from emp limit 0" in
  Alcotest.(check int) "limit 0" 0 (Relation.cardinality rel);
  let rel = q (cat ()) "select ename from emp limit 100" in
  Alcotest.(check int) "limit beyond" 6 (Relation.cardinality rel)

let test_distinct () =
  let rel = q (cat ()) "select distinct dept_id from emp" in
  (* 1, 2, 3, NULL *)
  Alcotest.(check int) "distinct groups" 4 (Relation.cardinality rel)

let test_distinct_order_by () =
  let rel =
    q (cat ()) "select distinct dept_id from emp order by dept_id desc"
  in
  Alcotest.(check int) "rows" 4 (Relation.cardinality rel);
  let first = (Relation.rows rel).(0) in
  Alcotest.check value_testable "desc first" (vi 3) first.(0);
  (* ORDER BY something not selected under DISTINCT is rejected *)
  match Nra.query (cat ()) "select distinct dept_id from emp order by salary"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted DISTINCT with foreign ORDER BY key"

let test_group_by () =
  let rel =
    q (cat ())
      "select dept_id, count(*) as n, sum(salary) as s from emp group by \
       dept_id order by dept_id"
  in
  check_rows "groups (NULL group first)"
    [
      [ None; Some 1; Some 40 ];
      [ Some 1; Some 2; Some 150 ];
      [ Some 2; Some 2; Some 70 ];
      [ Some 3; Some 1; Some 80 ];
    ]
    rel

let test_group_by_expression_key () =
  let rel =
    q (cat ())
      "select salary - salary as z, count(*) from emp where salary is not \
       null group by salary - salary"
  in
  check_rows "expression key" [ [ Some 0; Some 5 ] ] rel

let test_having () =
  let rel =
    q (cat ())
      "select dept_id, count(*) from emp group by dept_id having count(*) > \
       1 order by dept_id"
  in
  check_rows "having filters groups"
    [ [ Some 1; Some 2 ]; [ Some 2; Some 2 ] ]
    rel;
  let rel =
    q (cat ())
      "select dept_id from emp group by dept_id having min(salary) >= 60 \
       and count(salary) = 2"
  in
  (* count(salary) ignores dan's NULL, distinguishing dept 2 from dept 1 *)
  check_rows "having with un-selected aggregates" [ [ Some 1 ] ] rel

let test_global_aggregate () =
  let rel = q (cat ()) "select count(*), avg(salary), min(ename) from emp" in
  let row = (Relation.rows rel).(0) in
  Alcotest.check value_testable "count" (vi 6) row.(0);
  Alcotest.check value_testable "avg ignores null" (vf 68.0) row.(1);
  Alcotest.check value_testable "min string" (vs "ada") row.(2)

let test_global_aggregate_empty_input () =
  let rel = q (cat ()) "select count(*), sum(salary) from emp where salary > 1000" in
  check_rows "count 0, sum NULL" [ [ Some 0; None ] ] rel

let test_group_by_after_subquery () =
  (* aggregation happens after the WHERE subqueries, in every executor *)
  let cat = cat () in
  let sql =
    "select dept_id, count(*) as n from emp where dept_id in (select \
     dept_id from dept where budget is not null) group by dept_id order by \
     dept_id"
  in
  let rel = check_equivalent cat sql in
  check_rows "post-subquery grouping"
    [ [ Some 1; Some 2 ]; [ Some 2; Some 2 ] ]
    rel

let test_errors () =
  let expect_err sql =
    match Nra.query (cat ()) sql with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted: " ^ sql)
  in
  expect_err "select ename, count(*) from emp";
  expect_err "select ename from emp group by dept_id";
  expect_err "select dept_id from emp group by dept_id having ename = 'x'"

let () =
  Alcotest.run "post"
    [
      ( "projection",
        [
          Alcotest.test_case "expressions" `Quick test_projection_expressions;
          Alcotest.test_case "star" `Quick test_star_expansion;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "hidden key" `Quick test_order_by_hidden_key;
          Alcotest.test_case "limit" `Quick test_limit;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "distinct + order by" `Quick
            test_distinct_order_by;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "expression key" `Quick
            test_group_by_expression_key;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "global" `Quick test_global_aggregate;
          Alcotest.test_case "global over empty" `Quick
            test_global_aggregate_empty_input;
          Alcotest.test_case "after subqueries" `Quick
            test_group_by_after_subquery;
        ] );
      ("errors", [ Alcotest.test_case "rejected" `Quick test_errors ]);
    ]
