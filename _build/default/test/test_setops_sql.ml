(* SQL-level set operations: UNION / INTERSECT / EXCEPT with and without
   ALL, precedence, parenthesization, ORDER BY / LIMIT hoisting, error
   cases, and nested queries inside the components. *)

open Nra
open Test_support

let cat () = emp_dept_catalog ()

let test_union () =
  let rel =
    q (cat ())
      "select dept_id from emp where salary > 70 union select dept_id from \
       emp where salary < 50"
  in
  (* {1 (ada 90), 3 (eve 80)} ∪ {null (fay 40)} *)
  check_rows "union dedups" [ [ None ]; [ Some 1 ]; [ Some 3 ] ] rel

let test_union_all () =
  let rel =
    q (cat ())
      "select dept_id from emp union all select dept_id from emp"
  in
  Alcotest.(check int) "bag semantics" 12 (Relation.cardinality rel)

let test_intersect_except () =
  let rel =
    q (cat ())
      "select dept_id from emp intersect select dept_id from dept"
  in
  check_rows "intersect" [ [ Some 1 ]; [ Some 2 ]; [ Some 3 ] ] rel;
  let rel =
    q (cat ())
      "select dept_id from dept except select dept_id from emp"
  in
  check_rows "except" [ [ Some 4 ] ] rel

let test_precedence () =
  (* INTERSECT binds tighter: A union (B intersect C) *)
  let rel =
    q (cat ())
      "select 1 as x from dept where dept_id = 1 union select 2 as x from \
       dept where dept_id = 1 intersect select 3 as x from dept where \
       dept_id = 1"
  in
  (* B∩C = ∅, so the result is just A = {1} *)
  check_rows "intersect first" [ [ Some 1 ] ] rel;
  (* parentheses override: (A union B) intersect C *)
  let rel =
    q (cat ())
      "(select 1 as x from dept where dept_id = 1 union select 2 as x from \
       dept where dept_id = 1) intersect select 2 as x from dept where \
       dept_id = 1"
  in
  check_rows "parens" [ [ Some 2 ] ] rel

let test_order_limit_hoisting () =
  let rel =
    q (cat ())
      "select ename, salary from emp where dept_id = 1 union select ename, \
       salary from emp where dept_id = 2 order by salary desc limit 2"
  in
  Alcotest.(check int) "limit applies to the union" 2
    (Relation.cardinality rel);
  let first = (Relation.rows rel).(0) in
  Alcotest.check value_testable "ordered by the union's salary" (vs "ada")
    first.(0);
  (* positional key *)
  let rel =
    q (cat ())
      "select ename from emp where dept_id = 1 union select ename from emp \
       where dept_id = 3 order by 1 desc limit 1"
  in
  let first = (Relation.rows rel).(0) in
  Alcotest.check value_testable "positional" (vs "eve") first.(0)

let test_subqueries_inside_components () =
  let cat = cat () in
  let sql =
    "select dname from dept where not exists (select * from emp where \
     emp.dept_id = dept.dept_id) union select ename from emp where salary \
     > all (select budget from dept)"
  in
  (* both components exercise the nested machinery; all strategies agree *)
  List.iter
    (fun (name, s) ->
      match Nra.query ~strategy:s cat sql with
      | Ok rel ->
          Alcotest.(check int) (name ^ " rows") 1 (Relation.cardinality rel)
      | Error m -> Alcotest.fail (name ^ ": " ^ m))
    Nra.strategies

let test_errors () =
  let expect sql =
    match Nra.query (cat ()) sql with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted: " ^ sql)
  in
  expect "select dept_id, dname from dept union select dept_id from dept";
  expect "select dept_id from dept union select dept_id from dept order by nosuch";
  expect "select dept_id from dept union select dept_id from dept order by 0";
  expect
    "select dept_id from dept union select dept_id from dept order by \
     dept_id + 1"

let test_statement_printing_roundtrip () =
  let src =
    "(select a from t) union all ((select b from u) intersect (select c \
     from v))"
  in
  let s = Sql.Parser.parse_statement src in
  let s2 = Sql.Parser.parse_statement (Sql.Ast.statement_to_string s) in
  Alcotest.(check bool) "statement roundtrip" true (s = s2)

let () =
  Alcotest.run "setops_sql"
    [
      ( "semantics",
        [
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "union all" `Quick test_union_all;
          Alcotest.test_case "intersect/except" `Quick test_intersect_except;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "order/limit hoisting" `Quick
            test_order_limit_hoisting;
          Alcotest.test_case "nested components" `Quick
            test_subqueries_inside_components;
        ] );
      ( "structure",
        [
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "printing roundtrip" `Quick
            test_statement_printing_roundtrip;
        ] );
    ]
