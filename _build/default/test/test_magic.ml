(* The magic decorrelation baseline: correctness (it is already part of
   every cross-executor equivalence run), magic-set construction, the
   restriction effect, and the documented fallbacks. *)

open Nra
open Test_support
module M = Exec.Magic
module A = Planner.Analyze

let analyze cat sql =
  match A.analyze_string cat sql with
  | Ok t -> t
  | Error m -> Alcotest.fail m

let test_magic_set_size () =
  let cat = emp_dept_catalog () in
  (* four departments → magic set of 4 dept_ids *)
  let t =
    analyze cat
      "select dname from dept where exists (select * from emp where \
       emp.dept_id = dept.dept_id)"
  in
  Alcotest.(check (list (pair int int))) "one magic set of 4" [ (2, 4) ]
    (M.magic_set_sizes cat t);
  (* selective outer block → smaller magic set *)
  let t =
    analyze cat
      "select dname from dept where budget > 60 and exists (select * from \
       emp where emp.dept_id = dept.dept_id)"
  in
  Alcotest.(check (list (pair int int))) "restricted outer" [ (2, 1) ]
    (M.magic_set_sizes cat t)

let test_no_magic_for_tree_correlation () =
  let cat = emp_dept_catalog () in
  (* the innermost block references dept — the subtree under emp is not
     self-contained, so no magic set is built for it *)
  let t =
    analyze cat
      "select dname from dept where budget < any (select salary from emp \
       where emp.dept_id = dept.dept_id and exists (select * from project \
       where project.owner_dept = dept.dept_id))"
  in
  Alcotest.(check (list (pair int int))) "fallback to iteration" []
    (M.magic_set_sizes cat t)

let test_no_magic_for_non_equi () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      "select dname from dept where budget > all (select hours from \
       project where project.owner_dept <> dept.dept_id)"
  in
  Alcotest.(check (list (pair int int))) "non-equality correlation" []
    (M.magic_set_sizes cat t)

let test_nested_magic () =
  let cat = emp_dept_catalog () in
  (* a linear two-level chain builds one magic set per level *)
  let t =
    analyze cat
      "select dname from dept where budget < any (select salary from emp \
       where emp.dept_id = dept.dept_id and exists (select * from project \
       where project.lead_emp = emp.emp_id))"
  in
  Alcotest.(check int) "two magic sets" 2
    (List.length (M.magic_set_sizes cat t))

let test_correctness_on_corpus () =
  let cat = emp_dept_catalog () in
  List.iter
    (fun sql ->
      ignore
        (check_equivalent ~strategies:[ Nra.Naive; Nra.Magic ] cat sql))
    [
      "select dname from dept where budget <= all (select salary from emp \
       where emp.dept_id = dept.dept_id)";
      "select dname from dept where budget not in (select salary - 10 from \
       emp where emp.dept_id = dept.dept_id)";
      "select ename from emp where salary > (select avg(hours) from \
       project where project.lead_emp = emp.emp_id)";
      "select dname from dept where not exists (select * from emp where \
       emp.dept_id = dept.dept_id and salary > 75)";
    ]

let test_restriction_shrinks_inner () =
  (* the point of the magic set: with a selective outer block, the inner
     table is only partially processed.  We observe it through the I/O
     accounting: the restricted run scans the same tables but groups far
     fewer rows — assert instead on the magic set size vs the base
     cardinality. *)
  let cat =
    Tpch.Gen.generate { Tpch.Gen.default with Tpch.Gen.scale = 0.002 }
  in
  let t =
    analyze cat
      "select o_orderkey from orders where o_orderkey < 10 and \
       o_totalprice > all (select l_extendedprice from lineitem where \
       l_orderkey = o_orderkey)"
  in
  (match M.magic_set_sizes cat t with
  | [ (2, n) ] ->
      Alcotest.(check bool) "magic set is tiny" true (n <= 9 && n >= 1)
  | _ -> Alcotest.fail "expected one magic set");
  ignore (check_equivalent ~strategies:[ Nra.Naive; Nra.Magic ] cat
            "select o_orderkey from orders where o_orderkey < 10 and \
             o_totalprice > all (select l_extendedprice from lineitem \
             where l_orderkey = o_orderkey)")

let () =
  Alcotest.run "magic"
    [
      ( "magic sets",
        [
          Alcotest.test_case "size" `Quick test_magic_set_size;
          Alcotest.test_case "tree correlation" `Quick
            test_no_magic_for_tree_correlation;
          Alcotest.test_case "non-equi" `Quick test_no_magic_for_non_equi;
          Alcotest.test_case "nested" `Quick test_nested_magic;
        ] );
      ( "correctness",
        [
          Alcotest.test_case "corpus" `Quick test_correctness_on_corpus;
          Alcotest.test_case "restriction" `Quick
            test_restriction_shrinks_inner;
        ] );
    ]
