open Nra
open Test_support
module N = Nested.Nested_relation
module G = Nested.Grouped
module LP = Nested.Link_pred
module L = Nested.Linking
module T = Three_valued

let schema =
  Schema.of_columns
    [
      Schema.column ~table:"x" "g" Ttype.Int;
      Schema.column ~table:"x" "v" Ttype.Int;
      Schema.column ~table:"x" "k" Ttype.Int;
    ]

let flat rows =
  Relation.make schema
    (Array.of_list (List.map (fun (g, v, k) -> [| g; v; k |]) rows))

let sample () =
  flat
    [
      (vi 1, vi 10, vi 1);
      (vi 1, vi 20, vi 2);
      (vi 2, vi 30, vi 3);
      (vnull, vi 40, vi 4);
      (vnull, vi 50, vi 5);
      (vi 3, vnull, vnull); (* a padded (empty-group) tuple *)
    ]

(* ---------- general model ---------- *)

let test_depth () =
  let n = N.of_flat (sample ()) in
  Alcotest.(check int) "flat depth 0" 0 (N.depth n.N.sch);
  let n1 = N.nest ~by:[ 0 ] ~keep:[ 1; 2 ] n in
  Alcotest.(check int) "one nest" 1 (N.depth n1.N.sch)

let test_nest_groups_nulls () =
  let n = N.nest ~by:[ 0 ] ~keep:[ 1; 2 ] (N.of_flat (sample ())) in
  (* groups: 1, 2, NULL, 3 — NULL keys group together like GROUP BY *)
  Alcotest.(check int) "groups" 4 (List.length n.N.tuples)

let test_nest_errors () =
  let n = N.of_flat (sample ()) in
  (match N.nest ~by:[ 0 ] ~keep:[ 0; 1 ] n with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted overlapping by/keep");
  match N.nest ~by:[ 9 ] ~keep:[] n with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted out-of-range position"

let test_unnest_inverse () =
  let r = flat [ (vi 1, vi 10, vi 1); (vi 1, vi 20, vi 2); (vi 2, vi 30, vi 3) ] in
  let n = N.nest ~by:[ 0 ] ~keep:[ 1; 2 ] (N.of_flat r) in
  let u = N.unnest ~sub:0 n in
  Alcotest.(check bool) "unnest . nest = id (non-empty groups)" true
    (Relation.equal_bag r (N.to_flat u))

let test_unnest_drops_empty () =
  let n = N.nest ~by:[ 0 ] ~keep:[ 1; 2 ] (N.of_flat (sample ())) in
  (* remove the elements of one group by selecting with an impossible
     predicate… simpler: build a nested tuple with an empty set *)
  let emptied =
    {
      n with
      N.tuples =
        List.map
          (fun (tp : N.tuple) ->
            if Row.equal tp.N.avals [| vi 2 |] then
              {
                tp with
                N.svals =
                  [| { (tp.N.svals.(0)) with N.tuples = [] } |];
              }
            else tp)
          n.N.tuples;
    }
  in
  let u = N.unnest ~sub:0 emptied in
  Alcotest.(check int) "group 2 vanished" 5 (List.length u.N.tuples)

let test_equal_set_semantics () =
  let a = N.of_flat (flat [ (vi 1, vi 2, vi 3); (vi 1, vi 2, vi 3) ]) in
  let b = N.of_flat (flat [ (vi 1, vi 2, vi 3) ]) in
  Alcotest.(check bool) "duplicate tuples equal as sets" true (N.equal a b)

(* ---------- grouped representation ---------- *)

let test_sort_vs_hash_nest () =
  let r = sample () in
  let s = G.nest_sort ~by:[| 0 |] ~keep:[| 1; 2 |] r in
  let h = G.nest_hash ~by:[| 0 |] ~keep:[| 1; 2 |] r in
  Alcotest.(check bool) "same groups" true (G.equal s h);
  Alcotest.(check int) "cardinality" 4 (G.cardinality s)

let test_grouped_unnest () =
  let r = sample () in
  let g = G.nest_sort ~by:[| 0 |] ~keep:[| 1; 2 |] r in
  Alcotest.(check bool) "unnest restores rows" true
    (Relation.equal_bag r (G.unnest g))

let test_grouped_to_nested () =
  let r = sample () in
  let g = G.nest_sort ~by:[| 0 |] ~keep:[| 1; 2 |] r in
  let n = G.to_nested g in
  Alcotest.(check int) "same groups in general model" 4
    (List.length n.N.tuples)

(* ---------- linking predicates ---------- *)

let test_quantifier_semantics () =
  let eval q op x elems =
    LP.eval (LP.Quant (Expr.Const x, op, q, 0)) ~outer:[||]
      ~elems:(List.map (fun v -> [| v |]) elems)
  in
  (* the motivating example of Section 2: 5 > ALL {2,3,4,null} *)
  Alcotest.check t3 "5 > ALL {2,3,4,null} is unknown" T.Unknown
    (eval LP.All T.Gt (vi 5) [ vi 2; vi 3; vi 4; vnull ]);
  Alcotest.check t3 "5 > ALL {2,3,4}" T.True
    (eval LP.All T.Gt (vi 5) [ vi 2; vi 3; vi 4 ]);
  Alcotest.check t3 "ALL over empty" T.True (eval LP.All T.Gt (vi 5) []);
  Alcotest.check t3 "SOME over empty" T.False (eval LP.Some_ T.Gt (vi 5) []);
  Alcotest.check t3 "5 > SOME {9,null}" T.Unknown
    (eval LP.Some_ T.Gt (vi 5) [ vi 9; vnull ]);
  Alcotest.check t3 "5 > SOME {1,null}" T.True
    (eval LP.Some_ T.Gt (vi 5) [ vi 1; vnull ]);
  Alcotest.check t3 "null lhs with non-empty set" T.Unknown
    (eval LP.All T.Eq vnull [ vi 1 ]);
  Alcotest.check t3 "exists" T.True
    (LP.eval LP.Non_empty ~outer:[||] ~elems:[ [| vi 1 |] ]);
  Alcotest.check t3 "not exists" T.True
    (LP.eval LP.Is_empty ~outer:[||] ~elems:[])

let test_marker_filter () =
  let elems = [ [| vi 1; vi 9 |]; [| vi 2; vnull |] ] in
  Alcotest.(check int) "marker drops padded" 1
    (List.length (LP.filter_marker ~marker:(Some 1) elems));
  Alcotest.(check int) "no marker keeps all" 2
    (List.length (LP.filter_marker ~marker:None elems))

let test_is_positive () =
  Alcotest.(check bool) "exists" true (LP.is_positive LP.Non_empty);
  Alcotest.(check bool) "not exists" false (LP.is_positive LP.Is_empty);
  Alcotest.(check bool) "some" true
    (LP.is_positive (LP.Quant (Expr.Col 0, T.Eq, LP.Some_, 0)));
  Alcotest.(check bool) "all" false
    (LP.is_positive (LP.Quant (Expr.Col 0, T.Eq, LP.All, 0)))

let test_grouped_select () =
  let r = sample () in
  let g = G.nest_sort ~by:[| 0 |] ~keep:[| 1; 2 |] r in
  (* keep groups where 15 < SOME {v}; the padded group (g=3) has marker
     NULL so its set is empty *)
  let pred = LP.Quant (Expr.Const (vi 15), T.Lt, LP.Some_, 0) in
  let sel = G.select pred ~marker:(Some 1) g in
  check_rows "select keys" [ [ None ]; [ Some 1 ]; [ Some 2 ] ] sel;
  let psel = G.pseudo_select pred ~marker:(Some 1) ~pad:[| 0 |] g in
  (* every group survives; the failing one (g=3) is padded *)
  Alcotest.(check int) "pseudo keeps all" 4 (Relation.cardinality psel)

let test_linking_on_general_model () =
  let r = sample () in
  let g = G.nest_sort ~by:[| 0 |] ~keep:[| 1; 2 |] r in
  let n = G.to_nested g in
  let pred = LP.Quant (Expr.Const (vi 15), T.Lt, LP.Some_, 0) in
  let sel = L.select pred ~sub:0 ~marker:(Some 1) n in
  Alcotest.(check int) "general-model select agrees" 3
    (List.length sel.N.tuples);
  let psel = L.pseudo_select pred ~sub:0 ~marker:(Some 1) ~pad:[ 0 ] n in
  Alcotest.(check int) "general-model pseudo keeps all" 4
    (List.length psel.N.tuples);
  let dropped = L.drop_sub ~sub:0 psel in
  Alcotest.(check int) "drop_sub flattens schema" 0
    (Array.length dropped.N.sch.N.subs)

let flat_wide rows =
  let col name = Schema.column ~table:"w" name Ttype.Int in
  Relation.make
    (Schema.of_columns
       (List.map col [ "b"; "c"; "d"; "e"; "h"; "i"; "j"; "l" ]))
    (Array.of_list
       (List.map
          (fun r ->
            Array.of_list
              (List.map (function Some i -> vi i | None -> vnull) r))
          rows))

(* Definition 4's multi-level case: linking attributes at depths d and
   d+1, computed with select_at after two consecutive nests (§4.2.1) —
   the whole of the paper's Query Q inside the general model. *)
let test_deep_linking_query_q () =
  (* Temp1 columns: B C D E H I J L *)
  let temp1 =
    flat_wide
      [
        [ Some 1; Some 2; Some 3; Some 1; Some 8; Some 1; Some 9; Some 3 ];
        [ Some 1; Some 2; Some 3; Some 2; Some 9; Some 2; Some 7; Some 1 ];
        [ Some 1; Some 2; Some 3; Some 2; Some 9; Some 2; Some 9; Some 3 ];
        [ Some 2; Some 3; Some 5; Some 3; None; Some 4; None; None ];
      ]
  in
  let n = N.of_flat temp1 in
  let two_level =
    N.nest ~name:"ss" ~by:[ 0; 1; 2 ] ~keep:[ 3; 4; 5 ]
      (N.nest ~name:"ts" ~by:[ 0; 1; 2; 3; 4; 5 ] ~keep:[ 6; 7 ] n)
  in
  Alcotest.(check int) "depth 2" 2 (N.depth two_level.N.sch);
  (* inner predicate S.H > ALL {T.J}, marker T.L, at depth 1 *)
  let inner = LP.Quant (Expr.Col 1, T.Gt, LP.All, 0) in
  let after_inner =
    L.pseudo_select_at ~path:[ 0 ] inner ~sub:0 ~marker:(Some 1)
      ~pad:[ 0; 1; 2 ] two_level
  in
  (* outer predicate R.B <> ALL {S.E} (NOT IN), marker S.I, at the top *)
  let outer = LP.Quant (Expr.Col 0, T.Neq, LP.All, 0) in
  let final = L.select outer ~sub:0 ~marker:(Some 2) after_inner in
  let atoms =
    List.map (fun (tp : N.tuple) -> tp.N.avals) final.N.tuples
    |> List.sort Row.compare
  in
  Alcotest.(check int) "both R tuples qualify" 2 (List.length atoms);
  Alcotest.(check bool) "(1,2,3)" true
    (Row.equal (List.nth atoms 0) [| vi 1; vi 2; vi 3 |]);
  Alcotest.(check bool) "(2,3,5)" true
    (Row.equal (List.nth atoms 1) [| vi 2; vi 3; vi 5 |])

let test_at_depth_errors () =
  let r = sample () in
  let n = N.nest ~by:[ 0 ] ~keep:[ 1; 2 ] (N.of_flat r) in
  match L.at_depth ~path:[ 3 ] Fun.id n with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted bad path"

let qtest = QCheck_alcotest.to_alcotest

let arb_rows =
  QCheck.(
    small_list
      (triple
         (oneof [ always Value.Null; map (fun i -> Value.Int i) (int_bound 3) ])
         (map (fun i -> Value.Int i) (int_bound 9))
         (map (fun i -> Value.Int i) small_int)))

let prop_sort_hash_agree =
  QCheck.Test.make ~name:"sort-nest = hash-nest" arb_rows (fun rows ->
      let r = flat rows in
      G.equal
        (G.nest_sort ~by:[| 0 |] ~keep:[| 1; 2 |] r)
        (G.nest_hash ~by:[| 0 |] ~keep:[| 1; 2 |] r))

let prop_nest_partitions =
  QCheck.Test.make ~name:"nest partitions the rows" arb_rows (fun rows ->
      let r = flat rows in
      let g = G.nest_sort ~by:[| 0 |] ~keep:[| 1; 2 |] r in
      Relation.equal_bag r (G.unnest g))

let prop_quant_vs_bruteforce =
  QCheck.Test.make ~name:"quantifiers match brute force"
    QCheck.(
      pair
        (oneof [ always Value.Null; map (fun i -> Value.Int i) (int_bound 5) ])
        (small_list
           (oneof
              [ always Value.Null; map (fun i -> Value.Int i) (int_bound 5) ])))
    (fun (x, set) ->
      let elems = List.map (fun v -> [| v |]) set in
      let brute op q =
        let results = List.map (fun v -> T.cmp op x v) set in
        match q with LP.Some_ -> T.disj results | LP.All -> T.conj results
      in
      List.for_all
        (fun op ->
          List.for_all
            (fun q ->
              T.equal
                (LP.eval (LP.Quant (Expr.Const x, op, q, 0)) ~outer:[||]
                   ~elems)
                (brute op q))
            [ LP.Some_; LP.All ])
        [ T.Eq; T.Neq; T.Lt; T.Le; T.Gt; T.Ge ])

let () =
  Alcotest.run "nested"
    [
      ( "general model",
        [
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "nest groups NULLs" `Quick
            test_nest_groups_nulls;
          Alcotest.test_case "nest errors" `Quick test_nest_errors;
          Alcotest.test_case "unnest inverse" `Quick test_unnest_inverse;
          Alcotest.test_case "unnest drops empty" `Quick
            test_unnest_drops_empty;
          Alcotest.test_case "set semantics" `Quick test_equal_set_semantics;
        ] );
      ( "grouped",
        [
          Alcotest.test_case "sort vs hash" `Quick test_sort_vs_hash_nest;
          Alcotest.test_case "unnest" `Quick test_grouped_unnest;
          Alcotest.test_case "to_nested" `Quick test_grouped_to_nested;
        ] );
      ( "linking",
        [
          Alcotest.test_case "quantifier semantics" `Quick
            test_quantifier_semantics;
          Alcotest.test_case "marker filter" `Quick test_marker_filter;
          Alcotest.test_case "positivity" `Quick test_is_positive;
          Alcotest.test_case "grouped selections" `Quick test_grouped_select;
          Alcotest.test_case "general-model selections" `Quick
            test_linking_on_general_model;
          Alcotest.test_case "deep linking (Query Q in the model)" `Quick
            test_deep_linking_query_q;
          Alcotest.test_case "at_depth errors" `Quick test_at_depth_errors;
        ] );
      ( "properties",
        [
          qtest prop_sort_hash_agree;
          qtest prop_nest_partitions;
          qtest prop_quant_vs_bruteforce;
        ] );
    ]
