open Nra
open Test_support
module T = Three_valued

let qtest = QCheck_alcotest.to_alcotest

let arb_t3 = QCheck.oneofl [ T.True; T.False; T.Unknown ]

let all3 = [ T.True; T.False; T.Unknown ]

let test_not () =
  Alcotest.check t3 "not true" T.False (T.not_ T.True);
  Alcotest.check t3 "not false" T.True (T.not_ T.False);
  Alcotest.check t3 "not unknown" T.Unknown (T.not_ T.Unknown)

(* the full Kleene truth tables *)
let test_and_table () =
  let expect = function
    | T.False, _ | _, T.False -> T.False
    | T.True, T.True -> T.True
    | _ -> T.Unknown
  in
  List.iter
    (fun a ->
      List.iter
        (fun b -> Alcotest.check t3 "and" (expect (a, b)) (T.and_ a b))
        all3)
    all3

let test_or_table () =
  let expect = function
    | T.True, _ | _, T.True -> T.True
    | T.False, T.False -> T.False
    | _ -> T.Unknown
  in
  List.iter
    (fun a ->
      List.iter
        (fun b -> Alcotest.check t3 "or" (expect (a, b)) (T.or_ a b))
        all3)
    all3

let test_conj_disj () =
  Alcotest.check t3 "conj []" T.True (T.conj []);
  Alcotest.check t3 "disj []" T.False (T.disj []);
  Alcotest.check t3 "conj with unknown" T.Unknown
    (T.conj [ T.True; T.Unknown; T.True ]);
  Alcotest.check t3 "conj absorbs false" T.False
    (T.conj [ T.True; T.Unknown; T.False ]);
  Alcotest.check t3 "disj absorbs true" T.True
    (T.disj [ T.False; T.Unknown; T.True ])

let test_to_bool () =
  Alcotest.(check bool) "true" true (T.to_bool T.True);
  Alcotest.(check bool) "false" false (T.to_bool T.False);
  Alcotest.(check bool) "unknown is not selected" false (T.to_bool T.Unknown)

let test_cmp () =
  Alcotest.check t3 "5 > 3" T.True (T.cmp T.Gt (vi 5) (vi 3));
  Alcotest.check t3 "5 > null" T.Unknown (T.cmp T.Gt (vi 5) Value.Null);
  Alcotest.check t3 "null = null is unknown" T.Unknown
    (T.cmp T.Eq Value.Null Value.Null);
  Alcotest.check t3 "int vs float" T.True (T.cmp T.Le (vi 3) (vf 3.0));
  Alcotest.check t3 "neq" T.True (T.cmp T.Neq (vs "a") (vs "b"))

let test_negate_flip () =
  let ops = [ T.Eq; T.Neq; T.Lt; T.Le; T.Gt; T.Ge ] in
  List.iter
    (fun op ->
      Alcotest.(check bool)
        "negate is involutive" true
        (T.negate_op (T.negate_op op) = op);
      Alcotest.(check bool)
        "flip is involutive" true
        (T.flip_op (T.flip_op op) = op))
    ops;
  (* semantic checks on non-null values *)
  List.iter
    (fun op ->
      for a = -2 to 2 do
        for b = -2 to 2 do
          let v = T.cmp op (vi a) (vi b) in
          Alcotest.check t3 "negate_op complements"
            (T.not_ v)
            (T.cmp (T.negate_op op) (vi a) (vi b));
          Alcotest.check t3 "flip_op swaps" v
            (T.cmp (T.flip_op op) (vi b) (vi a))
        done
      done)
    ops

let prop_de_morgan =
  QCheck.Test.make ~name:"De Morgan" (QCheck.pair arb_t3 arb_t3)
    (fun (a, b) ->
      T.equal (T.not_ (T.and_ a b)) (T.or_ (T.not_ a) (T.not_ b))
      && T.equal (T.not_ (T.or_ a b)) (T.and_ (T.not_ a) (T.not_ b)))

let prop_commutative =
  QCheck.Test.make ~name:"and/or commute" (QCheck.pair arb_t3 arb_t3)
    (fun (a, b) ->
      T.equal (T.and_ a b) (T.and_ b a) && T.equal (T.or_ a b) (T.or_ b a))

let prop_associative =
  QCheck.Test.make ~name:"and/or associate"
    (QCheck.triple arb_t3 arb_t3 arb_t3)
    (fun (a, b, c) ->
      T.equal (T.and_ a (T.and_ b c)) (T.and_ (T.and_ a b) c)
      && T.equal (T.or_ a (T.or_ b c)) (T.or_ (T.or_ a b) c))

let prop_double_negation =
  QCheck.Test.make ~name:"double negation" arb_t3 (fun a ->
      T.equal (T.not_ (T.not_ a)) a)

let () =
  Alcotest.run "three_valued"
    [
      ( "tables",
        [
          Alcotest.test_case "not" `Quick test_not;
          Alcotest.test_case "and" `Quick test_and_table;
          Alcotest.test_case "or" `Quick test_or_table;
          Alcotest.test_case "conj/disj" `Quick test_conj_disj;
          Alcotest.test_case "to_bool" `Quick test_to_bool;
          Alcotest.test_case "cmp" `Quick test_cmp;
          Alcotest.test_case "negate/flip" `Quick test_negate_flip;
        ] );
      ( "properties",
        [
          qtest prop_de_morgan;
          qtest prop_commutative;
          qtest prop_associative;
          qtest prop_double_negation;
        ] );
    ]
