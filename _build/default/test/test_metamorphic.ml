(* Metamorphic testing: SQL-level identities that must hold on any
   database, checked on randomized tables built through the DDL/DML
   path.  These are an oracle orthogonal to the cross-executor
   equivalence suite — they catch bugs all executors could share. *)

open Nra

let rng = Tpch.Prng.create 0xC0FFEEL

let exec cat sql =
  match Nra.exec cat sql with
  | Ok r -> r
  | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" sql m)

let card cat sql =
  match exec cat sql with
  | Nra.Rows r -> Relation.cardinality r
  | _ -> Alcotest.fail "expected rows"

let scalar cat sql =
  match exec cat sql with
  | Nra.Rows r when Relation.cardinality r = 1 -> (Relation.rows r).(0).(0)
  | _ -> Alcotest.fail ("expected a single value from " ^ sql)

(* a fresh random table through CREATE + INSERT *)
let random_table cat name rows =
  ignore
    (exec cat
       (Printf.sprintf
          "create table %s (id int, a int, b int, primary key (id))" name));
  let values =
    List.init rows (fun i ->
        let v () =
          if Tpch.Prng.bool rng 0.2 then "null"
          else string_of_int (Tpch.Prng.int rng 8)
        in
        Printf.sprintf "(%d, %s, %s)" i (v ()) (v ()))
  in
  if rows > 0 then
    ignore
      (exec cat
         (Printf.sprintf "insert into %s values %s" name
            (String.concat ", " values)))

let fresh_db () =
  let cat = Catalog.create () in
  random_table cat "t" (1 + Tpch.Prng.int rng 40);
  random_table cat "u" (Tpch.Prng.int rng 30);
  cat

let random_pred () =
  let cmp () = [| "="; "<>"; "<"; "<="; ">"; ">=" |].(Tpch.Prng.int rng 6) in
  let k () = string_of_int (Tpch.Prng.int rng 8) in
  match Tpch.Prng.int rng 5 with
  | 0 -> Printf.sprintf "a %s %s" (cmp ()) (k ())
  | 1 -> Printf.sprintf "a %s b" (cmp ())
  | 2 -> "a is null"
  | 3 -> Printf.sprintf "a between %s and %s" (k ()) (k ())
  | _ -> Printf.sprintf "a %s %s and b is not null" (cmp ()) (k ())

let rounds = 40

let test_count_star_is_cardinality () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let p = random_pred () in
    let n = card cat (Printf.sprintf "select id from t where %s" p) in
    let c = scalar cat (Printf.sprintf "select count(*) from t where %s" p) in
    Alcotest.check Test_support.value_testable p (Value.Int n) c
  done

let test_excluded_middle_under_3vl () =
  (* |P| + |NOT P| + |unknown P| = |t|, where the unknown rows are those
     selected by neither *)
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let p = random_pred () in
    let total = card cat "select id from t" in
    let yes = card cat (Printf.sprintf "select id from t where %s" p) in
    let no = card cat (Printf.sprintf "select id from t where not (%s)" p) in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %d + %d <= %d" p yes no total)
      true
      (yes + no <= total);
    (* the remainder is exactly the rows where the predicate is unknown:
       adding IS-NULL guards must recover them *)
    let unknown =
      card cat
        (Printf.sprintf
           "select id from t where (a is null or b is null) and id not in \
            (select id from t where %s) and id not in (select id from t \
            where not (%s))"
           p p)
    in
    Alcotest.(check int) "partition" total (yes + no + unknown)
  done

let test_group_counts_sum_to_total () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let p = random_pred () in
    let total = card cat (Printf.sprintf "select id from t where %s" p) in
    let summed =
      scalar cat
        (Printf.sprintf
           "with g as (select a, count(*) as n from t where %s group by a) \
            select sum(n) from g"
           p)
    in
    let expected = if total = 0 then Value.Null else Value.Int total in
    Alcotest.check Test_support.value_testable "sum of group counts"
      expected summed
  done

let test_distinct_and_limit_bounds () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let all = card cat "select a from t" in
    let distinct = card cat "select distinct a from t" in
    Alcotest.(check bool) "distinct <= all" true (distinct <= all);
    let k = Tpch.Prng.int rng 10 in
    let limited = card cat (Printf.sprintf "select a from t limit %d" k) in
    Alcotest.(check int) "limit" (min k all) limited;
    let ordered = card cat "select a from t order by a desc" in
    Alcotest.(check int) "order by permutes" all ordered
  done

let test_setop_cardinalities () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let a = card cat "select a from t" in
    let b = card cat "select a from u" in
    Alcotest.(check int) "union all"
      (a + b)
      (card cat "select a from t union all select a from u");
    let inter = card cat "select a from t intersect all select a from u" in
    let except = card cat "select a from t except all select a from u" in
    Alcotest.(check int) "A = (A∩B) + (A−B) as bags" a (inter + except);
    let union = card cat "select a from t union select a from u" in
    let du = card cat "select distinct a from t" in
    let dv = card cat "select distinct a from u" in
    Alcotest.(check bool) "|A∪B| <= |A|+|B| (sets)" true (union <= du + dv);
    Alcotest.(check bool) "|A∪B| >= max" true (union >= max du dv)
  done

let test_in_vs_exists () =
  (* x IN (select y …) ≡ EXISTS (select * … where y = x) — note the
     equivalence holds in 3VL for the WHERE-filtered result *)
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let via_in = card cat "select id from t where a in (select a from u)" in
    let via_exists =
      card cat
        "select id from t where exists (select * from u u2 where u2.a = t.a)"
    in
    Alcotest.(check int) "IN = EXISTS-with-equality" via_in via_exists;
    let via_not_in =
      card cat "select id from t where a not in (select a from u)"
    in
    (* NOT IN is stricter than NOT EXISTS when NULLs are around *)
    let via_not_exists =
      card cat
        "select id from t where not exists (select * from u u2 where u2.a \
         = t.a)"
    in
    Alcotest.(check bool) "NOT IN <= NOT EXISTS" true
      (via_not_in <= via_not_exists)
  done

let test_delete_is_complement () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let p = random_pred () in
    let total = card cat "select id from t" in
    let matching = card cat (Printf.sprintf "select id from t where %s" p) in
    (match exec cat (Printf.sprintf "delete from t where %s" p) with
    | Nra.Count n -> Alcotest.(check int) "delete count" matching n
    | _ -> Alcotest.fail "expected count");
    Alcotest.(check int) "survivors" (total - matching)
      (card cat "select id from t")
  done

let () =
  Alcotest.run "metamorphic"
    [
      ( "identities",
        [
          Alcotest.test_case "count(*) = cardinality" `Quick
            test_count_star_is_cardinality;
          Alcotest.test_case "3VL excluded middle" `Quick
            test_excluded_middle_under_3vl;
          Alcotest.test_case "group counts sum" `Quick
            test_group_counts_sum_to_total;
          Alcotest.test_case "distinct/limit/order bounds" `Quick
            test_distinct_and_limit_bounds;
          Alcotest.test_case "set operation cardinalities" `Quick
            test_setop_cardinalities;
          Alcotest.test_case "IN vs EXISTS" `Quick test_in_vs_exists;
          Alcotest.test_case "delete complements select" `Quick
            test_delete_is_complement;
        ] );
    ]
