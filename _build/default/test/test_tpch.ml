open Nra
open Test_support
module G = Tpch.Gen
module Q = Tpch.Queries

let small = { G.default with G.scale = 0.002 }

let test_determinism () =
  let a = G.generate small and b = G.generate small in
  List.iter2
    (fun ta tb ->
      Alcotest.(check bool)
        (Table.name ta ^ " identical across runs")
        true
        (Relation.equal_bag (Table.relation ta) (Table.relation tb)))
    (Catalog.tables a) (Catalog.tables b)

let test_row_counts () =
  let cat = G.generate small in
  let n t = Table.cardinality (Catalog.table cat t) in
  Alcotest.(check int) "regions" 5 (n "region");
  Alcotest.(check int) "nations" 25 (n "nation");
  Alcotest.(check int) "suppliers" 20 (n "supplier");
  Alcotest.(check int) "customers" 300 (n "customer");
  Alcotest.(check int) "parts" 400 (n "part");
  Alcotest.(check int) "orders" 3000 (n "orders");
  Alcotest.(check bool) "~4 partsupp per part" true
    (n "partsupp" >= 3 * n "part" && n "partsupp" <= 4 * n "part");
  Alcotest.(check bool) "1–7 lineitems per order" true
    (n "lineitem" >= n "orders" && n "lineitem" <= 7 * n "orders")

let test_key_uniqueness () =
  let cat = G.generate small in
  List.iter
    (fun table ->
      let t = Catalog.table cat table in
      let keys = Table.key_positions t in
      let rows = Relation.rows (Table.relation t) in
      let seen = Hashtbl.create (Array.length rows) in
      Array.iter
        (fun row ->
          let k = Row.project_arr row keys in
          let h = Row.hash k in
          if
            Hashtbl.find_all seen h |> List.exists (fun k2 -> Row.equal k k2)
          then Alcotest.fail (table ^ ": duplicate key");
          Hashtbl.add seen h k)
        rows)
    [ "region"; "nation"; "supplier"; "customer"; "part"; "partsupp";
      "orders"; "lineitem" ]

let test_foreign_keys () =
  let cat = G.generate small in
  let check_fk sql =
    let rel = q cat sql in
    Alcotest.(check int) ("dangling: " ^ sql) 0 (Relation.cardinality rel)
  in
  check_fk
    "select o_orderkey from orders where o_custkey not in (select c_custkey \
     from customer)";
  check_fk
    "select l_orderkey from lineitem where l_orderkey not in (select \
     o_orderkey from orders)";
  check_fk
    "select ps_partkey from partsupp where ps_partkey not in (select \
     p_partkey from part)";
  check_fk
    "select ps_suppkey from partsupp where ps_suppkey not in (select \
     s_suppkey from supplier)";
  (* every lineitem (partkey, suppkey) pair exists in partsupp *)
  check_fk
    "select l_orderkey from lineitem l where not exists (select * from \
     partsupp where ps_partkey = l.l_partkey and ps_suppkey = l.l_suppkey)"

let test_date_invariants () =
  let cat = G.generate small in
  let none sql = Alcotest.(check int) sql 0 (Relation.cardinality (q cat sql)) in
  none
    (Printf.sprintf
       "select o_orderkey from orders where o_orderdate < date '%s'"
       (Value.string_of_date G.orderdate_lo));
  none
    (Printf.sprintf
       "select o_orderkey from orders where o_orderdate > date '%s'"
       (Value.string_of_date G.orderdate_hi));
  (* receipt strictly after ship *)
  none "select l_orderkey from lineitem where l_receiptdate <= l_shipdate"

let test_null_injection () =
  let cat =
    G.generate { small with G.null_rate = 0.5; declare_not_null = false }
  in
  let nulls =
    q cat "select l_orderkey from lineitem where l_extendedprice is null"
  in
  Alcotest.(check bool) "nulls injected" true (Relation.cardinality nulls > 0);
  (* NOT NULL declaration suppresses injection *)
  let cat = G.generate { small with G.null_rate = 0.5; declare_not_null = true } in
  let nulls =
    q cat "select l_orderkey from lineitem where l_extendedprice is null"
  in
  Alcotest.(check int) "constraint wins" 0 (Relation.cardinality nulls)

let test_benchmark_indexes () =
  let cat = G.generate small in
  G.add_benchmark_indexes cat;
  Alcotest.(check bool) "lineitem composite" true
    (Catalog.sorted_index_on cat ~table:"lineitem" "l_partkey" <> None);
  Alcotest.(check bool) "partsupp" true
    (Catalog.sorted_index_on cat ~table:"partsupp" "ps_partkey" <> None)

let test_queries_analyze () =
  let cat = G.generate small in
  let check sql =
    match Planner.Analyze.analyze_string cat sql with
    | Ok _ -> ()
    | Error m -> Alcotest.fail (m ^ " in " ^ sql)
  in
  let lo, hi = Q.q1_window ~outer_fraction:0.3 in
  check (Q.q1 ~date_lo:lo ~date_hi:hi);
  List.iter
    (fun quant ->
      check (Q.q2 ~quant ~size_lo:1 ~size_hi:10 ~availqty_max:100 ~quantity:25))
    [ Q.Any; Q.All ];
  List.iter
    (fun variant ->
      List.iter
        (fun (quant, exists) ->
          check
            (Q.q3 ~quant ~exists ~variant ~size_lo:1 ~size_hi:10
               ~availqty_max:100 ~quantity:25))
        [ (Q.All, true); (Q.All, false); (Q.Any, true) ])
    [ Q.A; Q.B; Q.C ]

let test_window_helpers () =
  let lo, hi = Q.q1_window ~outer_fraction:1.0 in
  Alcotest.(check string) "full window lo" "1992-01-01" lo;
  Alcotest.(check string) "full window hi" "1998-08-02" hi;
  let s_lo, s_hi = Q.size_window ~outer_fraction:0.5 in
  Alcotest.(check (pair int int)) "half the sizes" (1, 25) (s_lo, s_hi);
  Alcotest.(check int) "availqty bound" 999 (Q.availqty_bound ~fraction:0.1)

let test_q3_variant_strings () =
  let base ~variant =
    Q.q3 ~quant:Q.All ~exists:true ~variant ~size_lo:1 ~size_hi:10
      ~availqty_max:100 ~quantity:25
  in
  let has s sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "A uses equalities" true
    (has (base ~variant:Q.A) "p_partkey = l_partkey");
  Alcotest.(check bool) "B negates the first" true
    (has (base ~variant:Q.B) "p_partkey <> l_partkey");
  Alcotest.(check bool) "C negates the second" true
    (has (base ~variant:Q.C) "ps_suppkey <> l_suppkey")

let () =
  Alcotest.run "tpch"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "row counts" `Quick test_row_counts;
          Alcotest.test_case "key uniqueness" `Quick test_key_uniqueness;
          Alcotest.test_case "foreign keys" `Quick test_foreign_keys;
          Alcotest.test_case "date invariants" `Quick test_date_invariants;
          Alcotest.test_case "null injection" `Quick test_null_injection;
          Alcotest.test_case "benchmark indexes" `Quick test_benchmark_indexes;
        ] );
      ( "queries",
        [
          Alcotest.test_case "analyze" `Quick test_queries_analyze;
          Alcotest.test_case "window helpers" `Quick test_window_helpers;
          Alcotest.test_case "variants" `Quick test_q3_variant_strings;
        ] );
    ]
