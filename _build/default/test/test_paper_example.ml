(* The paper's running example, end to end.

   Section 2 introduces Query Q over R(A,B,C,D), S(E,F,G,H,I), T(J,K,L);
   Section 3 (Example 1) computes Temp1..Temp4 with the extended nested
   algebra; Section 4 (Example 2) processes the whole query.  These
   tests rebuild each intermediate with the library's operators and
   check the hand-derived contents, then run Query Q through every
   executor. *)

open Nra
open Test_support
module J = Algebra.Join
module G = Nested.Grouped
module LP = Nested.Link_pred
module T3 = Three_valued

let query_q =
  {|select r.b, r.c, r.d
    from r
    where r.a > 10 and r.b not in
      (select s.e from s
       where s.f = 5 and r.d = s.g and s.h > all
         (select t.j from t where t.k = r.c and t.l <> s.i))|}

(* Temp1 = π_{B,C,D,E,H,I,J,L}((R ⟕_{R.D=S.G} S) ⟕_{T.K=R.C ∧ T.L<>S.I} T) *)
let temp1 () =
  let r = Table.relation (paper_r ()) in
  let s = Table.relation (paper_s ()) in
  let t = Table.relation (paper_t ()) in
  let rs_schema = Schema.append (Relation.schema r) (Relation.schema s) in
  let d = Schema.find rs_schema ~table:"r" "d"
  and g = Schema.find rs_schema ~table:"s" "g" in
  let rs =
    J.join J.Left_outer
      ~on:(Expr.Cmp (T3.Eq, Expr.Col d, Expr.Col g))
      r s
  in
  let rst_schema = Schema.append (Relation.schema rs) (Relation.schema t) in
  let k = Schema.find rst_schema ~table:"t" "k"
  and c = Schema.find rst_schema ~table:"r" "c"
  and l = Schema.find rst_schema ~table:"t" "l"
  and i = Schema.find rst_schema ~table:"s" "i" in
  let rst =
    J.join J.Left_outer
      ~on:
        (Expr.And
           ( Expr.Cmp (T3.Eq, Expr.Col k, Expr.Col c),
             Expr.Cmp (T3.Neq, Expr.Col l, Expr.Col i) ))
      rs t
  in
  let pick names =
    List.map
      (fun (tbl, n) -> Schema.find (Relation.schema rst) ~table:tbl n)
      names
  in
  Algebra.Basic.project_cols
    (pick
       [
         ("r", "b"); ("r", "c"); ("r", "d"); ("s", "e"); ("s", "h");
         ("s", "i"); ("t", "j"); ("t", "l");
       ])
    rst

let find8 rel tbl n = Schema.find (Relation.schema rel) ~table:tbl n

let temp2 () =
  let t1 = temp1 () in
  let p tbl n = find8 t1 tbl n in
  G.nest_sort
    ~by:
      [|
        p "r" "b"; p "r" "c"; p "r" "d"; p "s" "e"; p "s" "h"; p "s" "i";
      |]
    ~keep:[| p "t" "j"; p "t" "l" |]
    t1

(* In Temp2's element frame, T.J is column 0 and T.L (the marker) 1. *)
let all_pred t2 =
  let h = Schema.find t2.G.key_schema ~table:"s" "h" in
  LP.Quant (Expr.Col h, T3.Gt, LP.All, 0)

let test_base_relations () =
  Alcotest.(check int) "R rows" 3 (Table.cardinality (paper_r ()));
  Alcotest.(check int) "S rows" 3 (Table.cardinality (paper_s ()));
  Alcotest.(check int) "T rows" 3 (Table.cardinality (paper_t ()))

let test_temp1 () =
  let t1 = temp1 () in
  (* r1 (D=3) matches s1,s2 on G=3; each S row then left-joins T rows
     with K=C(2), L<>I.  r2 (D=5) matches s3 (G=5), no T with K=3.
     r3 (D=4) matches no S, no T with K=5. *)
  check_rows "temp1"
    [
      (* B C D E H I J L, sorted; NULLs first *)
      [ None; Some 5; Some 4; None; None; None; None; None ];
      [ Some 1; Some 2; Some 3; Some 1; Some 8; Some 1; Some 9; Some 3 ];
      [ Some 1; Some 2; Some 3; Some 2; Some 9; Some 2; Some 7; Some 1 ];
      [ Some 1; Some 2; Some 3; Some 2; Some 9; Some 2; Some 9; Some 3 ];
      [ Some 2; Some 3; Some 5; Some 3; None; Some 4; None; None ];
    ]
    t1

let test_temp2 () =
  let t2 = temp2 () in
  Alcotest.(check int) "four groups" 4 (G.cardinality t2);
  (* the group of (1,2,3,s2) holds two T elements *)
  let counts =
    Array.to_list t2.G.groups
    |> List.map (fun (_, elems) -> Array.length elems)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "group sizes" [ 1; 1; 1; 2 ] counts

let test_temp3_pseudo_selection () =
  let t2 = temp2 () in
  let pad =
    Array.of_list
      (List.map
         (fun n -> Schema.find t2.G.key_schema ~table:"s" n)
         [ "e"; "h"; "i" ])
  in
  let marker = Some (Schema.find t2.G.elem_schema ~table:"t" "l") in
  let t3 = G.pseudo_select (all_pred t2) ~marker ~pad t2 in
  (* Both S tuples joined to r1 fail S.H > ALL {T.J} (8>9 and 9>9 are
     false) and get their S attributes padded; the S tuple under r2 has
     an empty T set, so ALL holds vacuously (even though S.H is NULL);
     the padded R row r3 has an empty set too. *)
  check_rows "temp3"
    [
      [ None; Some 5; Some 4; None; None; None ];
      [ Some 1; Some 2; Some 3; None; None; None ];
      [ Some 1; Some 2; Some 3; None; None; None ];
      [ Some 2; Some 3; Some 5; Some 3; None; Some 4 ];
    ]
    t3

let test_temp4_selection () =
  let t2 = temp2 () in
  let marker = Some (Schema.find t2.G.elem_schema ~table:"t" "l") in
  let t4 = G.select (all_pred t2) ~marker t2 in
  (* σ discards the two failing tuples instead of padding *)
  check_rows "temp4"
    [
      [ None; Some 5; Some 4; None; None; None ];
      [ Some 2; Some 3; Some 5; Some 3; None; Some 4 ];
    ]
    t4

let test_query_q_result () =
  let cat = paper_catalog () in
  let rel = check_equivalent cat query_q in
  (* hand derivation: r1 qualifies because both S candidates fail the
     inner ALL (NOT IN ∅ is true); r2 qualifies because its single S
     candidate passes ALL vacuously and 2 <> 3; r3 fails R.A > 10 *)
  check_rows "query Q" [ [ Some 1; Some 2; Some 3 ]; [ Some 2; Some 3; Some 5 ] ] rel

let test_query_q_tree () =
  let cat = paper_catalog () in
  match Planner.Analyze.analyze_string cat query_q with
  | Error m -> Alcotest.fail m
  | Ok t ->
      Alcotest.(check int) "depth" 2 t.Planner.Analyze.depth;
      Alcotest.(check bool) "not linear (T correlates to R and S)" false
        t.Planner.Analyze.linear;
      Alcotest.(check int) "three blocks" 3
        (List.length t.Planner.Analyze.blocks);
      let b2 = List.nth t.Planner.Analyze.blocks 1 in
      Alcotest.(check int) "S block: one local conjunct (s.f = 5)" 1
        (List.length b2.Planner.Analyze.local);
      Alcotest.(check int) "S block: one correlated conjunct (r.d = s.g)" 1
        (List.length b2.Planner.Analyze.correlated);
      let b3 = List.nth t.Planner.Analyze.blocks 2 in
      Alcotest.(check int) "T block: two correlated conjuncts" 2
        (List.length b3.Planner.Analyze.correlated)

let test_general_nested_model () =
  (* Example 1 again through the general (arbitrary-depth) model *)
  let t1 = temp1 () in
  let n = Nested.Nested_relation.of_flat t1 in
  let p tbl name = find8 t1 tbl name in
  let nested =
    Nested.Nested_relation.nest ~name:"ts"
      ~by:[ p "r" "b"; p "r" "c"; p "r" "d"; p "s" "e"; p "s" "h"; p "s" "i" ]
      ~keep:[ p "t" "j"; p "t" "l" ]
      n
  in
  Alcotest.(check int) "depth 1" 1
    (Nested.Nested_relation.depth nested.Nested.Nested_relation.sch);
  Alcotest.(check int) "four nested tuples" 4
    (List.length nested.Nested.Nested_relation.tuples);
  (* a second nest produces a two-level relation, as in §4.2.1 *)
  let nested2 =
    Nested.Nested_relation.nest ~name:"ss" ~by:[ 0; 1; 2 ] ~keep:[ 3; 4; 5 ]
      nested
  in
  Alcotest.(check int) "depth 2" 2
    (Nested.Nested_relation.depth nested2.Nested.Nested_relation.sch);
  Alcotest.(check int) "three tuples at the top" 3
    (List.length nested2.Nested.Nested_relation.tuples)

let () =
  Alcotest.run "paper_example"
    [
      ( "figures",
        [
          Alcotest.test_case "base relations" `Quick test_base_relations;
          Alcotest.test_case "Temp1 (outer joins)" `Quick test_temp1;
          Alcotest.test_case "Temp2 (nest)" `Quick test_temp2;
          Alcotest.test_case "Temp3 (pseudo-selection)" `Quick
            test_temp3_pseudo_selection;
          Alcotest.test_case "Temp4 (selection)" `Quick test_temp4_selection;
        ] );
      ( "query Q",
        [
          Alcotest.test_case "result across executors" `Quick
            test_query_q_result;
          Alcotest.test_case "tree expression" `Quick test_query_q_tree;
        ] );
      ( "general model",
        [
          Alcotest.test_case "multi-level nest" `Quick
            test_general_nested_model;
        ] );
    ]
