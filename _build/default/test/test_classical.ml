(* The classical-unnesting baseline must pick exactly the strategies the
   paper attributes to "System A", and its algebraic paths must agree
   with nested iteration. *)

open Nra
open Test_support
module C = Exec.Classical
module A = Planner.Analyze

let plan cat sql =
  match A.analyze_string cat sql with
  | Ok t -> C.plan cat t
  | Error m -> Alcotest.fail m

let strategies_of cat sql = List.map snd (plan cat sql)

let test_positive_semijoin () =
  let cat = emp_dept_catalog () in
  List.iter
    (fun sql ->
      Alcotest.(check (list string))
        sql [ "semijoin" ]
        (List.map C.strategy_to_string (strategies_of cat sql)))
    [
      "select dname from dept where exists (select * from emp where \
       emp.dept_id = dept.dept_id)";
      "select ename from emp where dept_id in (select dept_id from dept)";
      "select ename from emp where salary > any (select budget from dept)";
    ]

let test_not_exists_antijoin () =
  let cat = emp_dept_catalog () in
  Alcotest.(check (list string))
    "not exists" [ "antijoin" ]
    (List.map C.strategy_to_string
       (strategies_of cat
          "select dname from dept where not exists (select * from emp where \
           emp.dept_id = dept.dept_id)"))

let test_all_needs_not_null () =
  let cat = emp_dept_catalog () in
  (* salary is nullable → must iterate *)
  Alcotest.(check (list string))
    "nullable ALL iterates" [ "nested-iteration" ]
    (List.map C.strategy_to_string
       (strategies_of cat
          "select dname from dept where budget < all (select salary from \
           emp where emp.dept_id = dept.dept_id)"));
  (* ename and dname are NOT NULL → antijoin is sound *)
  Alcotest.(check (list string))
    "NOT NULL ALL antijoins" [ "antijoin" ]
    (List.map C.strategy_to_string
       (strategies_of cat
          "select ename from emp where ename <> all (select dname from \
           dept)"))

let test_nonadjacent_correlation_iterates () =
  let cat = emp_dept_catalog () in
  (* the innermost block references dept (two levels up): the paper's
     Query 3 shape — the whole subtree must fall back to iteration *)
  let p =
    plan cat
      "select dname from dept where budget < any (select salary from emp \
       where emp.dept_id = dept.dept_id and exists (select * from project \
       where project.owner_dept = dept.dept_id and project.lead_emp = \
       emp.emp_id))"
  in
  Alcotest.(check string) "outer subquery iterates" "nested-iteration"
    (C.strategy_to_string (List.assoc 2 p))

let test_linear_query_2_shape () =
  (* the paper's Query 2 shape on TPC-H: ANY → semijoin + antijoin,
     bottom-up *)
  let cfg = { Tpch.Gen.default with scale = 0.002 } in
  let cat = Tpch.Gen.generate cfg in
  let sql =
    Tpch.Queries.q2 ~quant:Tpch.Queries.Any ~size_lo:1 ~size_hi:25
      ~availqty_max:5000 ~quantity:25
  in
  let p = plan cat sql in
  Alcotest.(check (list string))
    "Q2a: semijoin over antijoin"
    [ "semijoin"; "antijoin" ]
    (List.map (fun (_, s) -> C.strategy_to_string s) p);
  (* ALL on nullable ps_supplycost → iterate at the top *)
  let sql_all =
    Tpch.Queries.q2 ~quant:Tpch.Queries.All ~size_lo:1 ~size_hi:25
      ~availqty_max:5000 ~quantity:25
  in
  let p = plan cat sql_all in
  Alcotest.(check string) "Q2b: iterate" "nested-iteration"
    (C.strategy_to_string (List.assoc 2 p));
  (* with the NOT NULL constraint declared, the paper notes System A
     runs two antijoins instead *)
  let cat_nn =
    Tpch.Gen.generate { cfg with declare_not_null = true }
  in
  let p = plan cat_nn sql_all in
  Alcotest.(check (list string))
    "Q2b with NOT NULL: two antijoins" [ "antijoin"; "antijoin" ]
    (List.map (fun (_, s) -> C.strategy_to_string s) p)

let test_query3_never_antijoins () =
  let cfg = { Tpch.Gen.default with declare_not_null = true; scale = 0.002 } in
  let cat = Tpch.Gen.generate cfg in
  (* "System A is unable to use antijoin in these queries, even though
     the NOT NULL constraint is present" *)
  let sql =
    Tpch.Queries.q3 ~quant:Tpch.Queries.All ~exists:false
      ~variant:Tpch.Queries.A ~size_lo:1 ~size_hi:25 ~availqty_max:5000
      ~quantity:25
  in
  let p = plan cat sql in
  Alcotest.(check string) "top subquery iterates" "nested-iteration"
    (C.strategy_to_string (List.assoc 2 p))

let test_correctness_vs_naive () =
  (* classical's algebraic paths agree with nested iteration even when
     mixing strategies in one query *)
  let cat = emp_dept_catalog () in
  List.iter
    (fun sql ->
      ignore
        (check_equivalent
           ~strategies:[ Nra.Naive; Nra.Classical ]
           cat sql))
    [
      "select dname from dept where exists (select * from emp where \
       emp.dept_id = dept.dept_id) and not exists (select * from project \
       where project.owner_dept = dept.dept_id)";
      "select ename from emp where ename <> all (select dname from dept) \
       and dept_id in (select dept_id from dept)";
    ]

let () =
  Alcotest.run "classical"
    [
      ( "strategy selection",
        [
          Alcotest.test_case "positive → semijoin" `Quick
            test_positive_semijoin;
          Alcotest.test_case "NOT EXISTS → antijoin" `Quick
            test_not_exists_antijoin;
          Alcotest.test_case "ALL needs NOT NULL" `Quick
            test_all_needs_not_null;
          Alcotest.test_case "non-adjacent correlation" `Quick
            test_nonadjacent_correlation_iterates;
        ] );
      ( "paper queries",
        [
          Alcotest.test_case "Query 2 shapes" `Quick test_linear_query_2_shape;
          Alcotest.test_case "Query 3 never antijoins" `Quick
            test_query3_never_antijoins;
        ] );
      ( "correctness",
        [ Alcotest.test_case "vs naive" `Quick test_correctness_vs_naive ] );
    ]
