(* Common table expressions: materialization, chaining, use inside
   subqueries, cleanup, and error cases. *)

open Nra
open Test_support

let test_basic () =
  let cat = emp_dept_catalog () in
  let rel =
    q cat
      "with rich as (select ename, salary from emp where salary > 65) \
       select ename from rich order by ename"
  in
  (* ada 90, cyd 70, eve 80 *)
  Alcotest.(check int) "rows" 3 (Relation.cardinality rel);
  Alcotest.(check bool) "temporary table cleaned up" false
    (Catalog.mem cat "rich")

let test_star_hides_rowid () =
  let cat = emp_dept_catalog () in
  let rel =
    q cat "with t as (select dept_id, budget from dept) select * from t"
  in
  Alcotest.(check int) "only the two selected columns" 2
    (Schema.arity (Relation.schema rel));
  (* but the synthetic key remains addressable *)
  let rel =
    q cat
      "with t as (select dept_id from dept) select __rowid from t where \
       __rowid = 0"
  in
  Alcotest.(check int) "rowid addressable" 1 (Relation.cardinality rel)

let test_chained_ctes () =
  let cat = emp_dept_catalog () in
  let rel =
    q cat
      "with paid as (select dept_id, salary from emp where salary is not \
       null), tops as (select dept_id, max(salary) as m from paid group by \
       dept_id) select m from tops order by m desc limit 1"
  in
  check_rows "max of maxima" [ [ Some 90 ] ] rel

let test_cte_in_subquery () =
  let cat = emp_dept_catalog () in
  let rel =
    check_equivalent cat
      "with busy as (select owner_dept from project where hours is not \
       null) select dname from dept where exists (select * from busy where \
       busy.owner_dept = dept.dept_id)"
  in
  Alcotest.(check int) "departments with logged projects" 3
    (Relation.cardinality rel)

let test_cte_of_setop_and_nested () =
  let cat = emp_dept_catalog () in
  let rel =
    q cat
      "with names as (select ename as n from emp union select dname as n \
       from dept) select count(*) from names"
  in
  check_rows "6 employees + 4 departments" [ [ Some 10 ] ] rel;
  let rel =
    q cat
      "with solvent as (select dept_id from dept where budget >= all \
       (select hours from project where project.owner_dept = \
       dept.dept_id)) select count(*) from solvent"
  in
  Alcotest.(check int) "nested query inside a CTE" 1
    (Relation.cardinality rel)

let test_errors_and_cleanup () =
  let cat = emp_dept_catalog () in
  (match Nra.query cat "with emp as (select * from dept) select * from emp"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a CTE shadowing a table");
  (* a failing main statement must still clean up the CTE *)
  (match
     Nra.query cat "with t as (select dept_id from dept) select nosuch from t"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown column");
  Alcotest.(check bool) "cleaned up after failure" false (Catalog.mem cat "t");
  (* exec-only commands are rejected by query *)
  match Nra.query cat "drop table dept" with
  | Error m ->
      Alcotest.(check bool) "mentions exec" true
        (String.length m > 0);
      Alcotest.(check bool) "table untouched" true (Catalog.mem cat "dept")
  | Ok _ -> Alcotest.fail "query performed DDL"

let () =
  Alcotest.run "with"
    [
      ( "ctes",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "star hides rowid" `Quick test_star_hides_rowid;
          Alcotest.test_case "chained" `Quick test_chained_ctes;
          Alcotest.test_case "inside subqueries" `Quick test_cte_in_subquery;
          Alcotest.test_case "setops and nesting" `Quick
            test_cte_of_setop_and_nested;
          Alcotest.test_case "errors and cleanup" `Quick
            test_errors_and_cleanup;
        ] );
    ]
