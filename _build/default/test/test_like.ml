open Nra
open Test_support
module T = Three_valued

let m pattern s = Expr.like_match ~pattern s

let test_matcher () =
  let cases =
    [
      ("abc", "abc", true);
      ("abc", "abd", false);
      ("abc", "ab", false);
      ("", "", true);
      ("", "a", false);
      ("%", "", true);
      ("%", "anything", true);
      ("a%", "a", true);
      ("a%", "abc", true);
      ("a%", "ba", false);
      ("%c", "abc", true);
      ("%c", "cab", false);
      ("a%c", "abc", true);
      ("a%c", "ac", true);
      ("a%c", "abd", false);
      ("_", "a", true);
      ("_", "", false);
      ("_", "ab", false);
      ("a_c", "abc", true);
      ("a_c", "ac", false);
      ("%a%a%", "banana", true);
      ("%a%a%a%", "banana", true);
      ("%a%a%a%a%", "banana", false);
      ("__%", "ab", true);
      ("__%", "a", false);
      ("%_%", "x", true);
      ("%%%", "", true);
    ]
  in
  List.iter
    (fun (pattern, s, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S like %S" s pattern)
        expected (m pattern s))
    cases

let test_pred_semantics () =
  let row = [| vs "hello"; vnull; vi 3 |] in
  Alcotest.check t3 "match" T.True
    (Expr.eval_pred row (Expr.Like (Expr.Col 0, "he%")));
  Alcotest.check t3 "no match" T.False
    (Expr.eval_pred row (Expr.Like (Expr.Col 0, "x%")));
  Alcotest.check t3 "null is unknown" T.Unknown
    (Expr.eval_pred row (Expr.Like (Expr.Col 1, "%")));
  match Expr.eval_pred row (Expr.Like (Expr.Col 2, "%")) with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "LIKE on an int should be a type error"

let test_sql_like () =
  let cat = emp_dept_catalog () in
  let rel = q cat "select ename from emp where ename like '%a%'" in
  (* ada, dan, fay *)
  Alcotest.(check int) "contains a" 3 (Relation.cardinality rel);
  let rel = q cat "select ename from emp where ename not like '_a_'" in
  (* dan and fay are _a_; everyone else survives *)
  Alcotest.(check int) "not like" 4 (Relation.cardinality rel);
  let rel =
    q cat
      "select dname from dept where exists (select * from emp where \
       emp.dept_id = dept.dept_id and ename like 'a%')"
  in
  (* only ada matches 'a%', and she works in eng *)
  Alcotest.(check (list (list string)))
    "like inside a subquery"
    [ [ "'eng'" ] ]
    (List.map
       (fun row -> [ Value.to_string row.(0) ])
       (Relation.sorted_rows rel))

let test_like_in_subquery_all_strategies () =
  let cat = emp_dept_catalog () in
  let rel =
    check_equivalent cat
      "select dname from dept where not exists (select * from emp where \
       emp.dept_id = dept.dept_id and ename like '%y%')"
  in
  Alcotest.(check bool) "consistent" true (Relation.cardinality rel >= 1)

let test_parser_roundtrip () =
  let src = "select a from t where a like 'x%_y' and not (b like '%')" in
  let q1 = Sql.Parser.parse src in
  let q2 = Sql.Parser.parse (Sql.Ast.to_string q1) in
  Alcotest.(check bool) "roundtrip" true (q1 = q2);
  (* a quote inside the pattern survives printing *)
  let q1 = Sql.Parser.parse "select a from t where a like '%''%'" in
  let q2 = Sql.Parser.parse (Sql.Ast.to_string q1) in
  Alcotest.(check bool) "escaped quote" true (q1 = q2)

let qtest = QCheck_alcotest.to_alcotest

(* %-less patterns are exact (up to _), and % on both ends means
   substring *)
let prop_exact =
  QCheck.Test.make ~name:"pattern without wildcards is equality"
    QCheck.(string_small_of (QCheck.Gen.char_range 'a' 'z'))
    (fun s -> m s s && (s = "" || not (m s (s ^ "x"))))

let prop_substring =
  QCheck.Test.make ~name:"%p% is substring search"
    QCheck.(
      pair
        (string_small_of (QCheck.Gen.char_range 'a' 'c'))
        (string_small_of (QCheck.Gen.char_range 'a' 'c')))
    (fun (hay, needle) ->
      let contains =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      m ("%" ^ needle ^ "%") hay = contains)

let () =
  Alcotest.run "like"
    [
      ( "matcher",
        [
          Alcotest.test_case "cases" `Quick test_matcher;
          Alcotest.test_case "3VL semantics" `Quick test_pred_semantics;
        ] );
      ( "sql",
        [
          Alcotest.test_case "queries" `Quick test_sql_like;
          Alcotest.test_case "subquery, all strategies" `Quick
            test_like_in_subquery_all_strategies;
          Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
        ] );
      ("properties", [ qtest prop_exact; qtest prop_substring ]);
    ]
