open Nra
open Test_support

let schema =
  Schema.of_columns
    [
      Schema.column ~table:"t" "a" Ttype.Int;
      Schema.column ~table:"t" ~not_null:true "b" Ttype.String;
      Schema.column ~table:"t" "c" Ttype.Date;
      Schema.column ~table:"t" "d" Ttype.Float;
    ]

let rel rows = Relation.make schema (Array.of_list rows)

let sample () =
  rel
    [
      [| vi 2; vs "x"; Value.Date 10; vf 1.5 |];
      [| vi 1; vs "y"; Value.Date 5; vnull |];
      [| vi 2; vs "x"; Value.Date 10; vf 1.5 |];
      [| vnull; vs "z,with\"quote"; Value.Date 0; vf (-2.25) |];
    ]

let test_make_arity () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.make: row arity 2 <> schema arity 4")
    (fun () -> ignore (Relation.make schema [| [| vi 1; vi 2 |] |]))

let test_typecheck () =
  (match Relation.typecheck (sample ()) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let bad_type = rel [ [| vs "no"; vs "b"; Value.Date 0; vf 0.0 |] ] in
  (match Relation.typecheck bad_type with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted wrong type");
  let bad_null = rel [ [| vi 1; vnull; Value.Date 0; vf 0.0 |] ] in
  match Relation.typecheck bad_null with
  | Error m ->
      Alcotest.(check bool) "mentions NOT NULL" true
        (String.length m > 0
        && String.index_opt m 'N' <> None)
  | Ok () -> Alcotest.fail "accepted NULL in NOT NULL column"

let test_filter_map_project () =
  let r = sample () in
  let f = Relation.filter (fun row -> Value.equal row.(0) (vi 2)) r in
  Alcotest.(check int) "filter" 2 (Relation.cardinality f);
  let p = Relation.project r [ 1 ] in
  Alcotest.(check int) "project arity" 1 (Schema.arity (Relation.schema p));
  Alcotest.(check int) "project keeps rows" 4 (Relation.cardinality p)

let test_sort_dedup () =
  let r = sample () in
  let s = Relation.sort_by [| 0 |] r in
  let first = (Relation.rows s).(0) in
  Alcotest.(check bool) "nulls first" true (Value.is_null first.(0));
  let d = Relation.dedup r in
  Alcotest.(check int) "dedup" 3 (Relation.cardinality d)

let test_bag_set_equality () =
  let r = sample () in
  let shuffled =
    Relation.make schema
      (Array.of_list (List.rev (Array.to_list (Relation.rows r))))
  in
  Alcotest.(check bool) "bag equal under permutation" true
    (Relation.equal_bag r shuffled);
  Alcotest.(check bool) "bag differs from dedup" false
    (Relation.equal_bag r (Relation.dedup r));
  Alcotest.(check bool) "set equal to dedup" true
    (Relation.equal_set r (Relation.dedup r))

let test_csv_roundtrip () =
  let r = sample () in
  match Relation.of_csv schema (Relation.to_csv r) with
  | Ok r' ->
      Alcotest.(check bool) "roundtrip" true (Relation.equal_bag r r')
  | Error m -> Alcotest.fail m

let test_csv_errors () =
  (match Relation.of_csv schema "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted empty CSV");
  (match Relation.of_csv schema "h\n1,2\n" with
  | Error m ->
      Alcotest.(check bool) "field count" true
        (String.length m > 0)
  | Ok _ -> Alcotest.fail "accepted wrong field count");
  match Relation.of_csv schema "a,b,c,d\nxx,y,1970-01-01,0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad int"

let qtest = QCheck_alcotest.to_alcotest

let arb_rel =
  QCheck.(
    map
      (fun rows ->
        rel
          (List.map
             (fun (a, b, c, d) ->
               [|
                 (match a with None -> Value.Null | Some i -> Value.Int i);
                 Value.String b;
                 Value.Date c;
                 (match d with
                 | None -> Value.Null
                 | Some f -> Value.Float (Float.of_int f /. 8.));
               |])
             rows))
      (small_list
         (quad (option small_int)
            (string_small_of Gen.printable)
            small_int (option small_int))))

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"CSV roundtrip" arb_rel (fun r ->
      match Relation.of_csv schema (Relation.to_csv r) with
      | Ok r' -> Relation.equal_bag r r'
      | Error _ -> false)

let prop_sort_is_permutation =
  QCheck.Test.make ~name:"sort_by permutes" arb_rel (fun r ->
      Relation.equal_bag r (Relation.sort_by [| 0; 2 |] r))

let prop_dedup_idempotent =
  QCheck.Test.make ~name:"dedup idempotent" arb_rel (fun r ->
      let d = Relation.dedup r in
      Relation.equal_bag d (Relation.dedup d))

let () =
  Alcotest.run "relation"
    [
      ( "basics",
        [
          Alcotest.test_case "arity check" `Quick test_make_arity;
          Alcotest.test_case "typecheck" `Quick test_typecheck;
          Alcotest.test_case "filter/map/project" `Quick
            test_filter_map_project;
          Alcotest.test_case "sort/dedup" `Quick test_sort_dedup;
          Alcotest.test_case "bag/set equality" `Quick test_bag_set_equality;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "errors" `Quick test_csv_errors;
        ] );
      ( "properties",
        [
          qtest prop_csv_roundtrip;
          qtest prop_sort_is_permutation;
          qtest prop_dedup_idempotent;
        ] );
    ]
