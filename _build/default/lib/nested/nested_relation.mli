(** Nested relations of arbitrary depth — the paper's Definitions 1 & 2.

    A nested schema has atomic attributes plus named subschemas; a nested
    tuple carries one value per atomic attribute and one subrelation (a
    set of nested tuples) per subschema.

    This module is the faithful, general model used by the public API,
    the paper's worked example and the tests.  The benchmark executor
    uses the specialized one-level representation in {!Grouped}, which
    implements the same [nest]/linking-selection semantics without
    materializing nested values. *)

open Nra_relational

type schema = {
  atoms : Schema.column array;
  subs : (string * schema) array;
}

type tuple = { avals : Value.t array; svals : t array }
and t = { sch : schema; tuples : tuple list }

val depth : schema -> int
(** Definition 1: a flat schema has depth 0. *)

val schema_of_flat : Schema.t -> schema
val of_flat : Relation.t -> t
(** A flat relation as a nested relation of depth 0. *)

val to_flat : t -> Relation.t
(** @raise Invalid_argument if the relation is not flat. *)

val equal : t -> t -> bool
(** Set equality, recursive (subrelations compared as sets). *)

(** {1 Nest and unnest — Definition 3} *)

val nest : ?name:string -> by:int list -> keep:int list -> t -> t
(** [nest ~by:n1 ~keep:n2 r] is υ{_ N1,N2}(r): group the tuples by their
    [n1] atoms (total value order: NULL groups with NULL) and collect,
    per group, the set of [n2]-atom subtuples.  Per the paper's modified
    definition the result is implicitly projected onto N1 ∪ N2.  Existing
    subrelations travel with the nested part: each element of the new
    subrelation keeps the subrelations of the tuple it came from, which
    is what makes consecutive nests build multi-level relations.
    @raise Invalid_argument if [by] and [keep] overlap or are out of
    range. *)

val unnest : sub:int -> t -> t
(** μ: flatten subrelation number [sub]; each element contributes one
    output tuple (atoms ++ element atoms, subrelations ++ element
    subrelations).  A tuple whose subrelation is empty vanishes —
    [unnest] is only a left inverse of [nest] on relations where every
    group is non-empty (the classical partial-inverse caveat). *)

val pp : Format.formatter -> t -> unit
