(** One-level nested relations, physically.

    This is the representation the evaluators use: the result of
    υ{_ N1,N2} over a flat relation, stored as an array of
    (key row, element rows) groups.  Element multiplicity is preserved
    (linking-predicate semantics are insensitive to duplicates, so the
    set-vs-bag distinction of {!Nested_relation} is immaterial here and
    skipping deduplication is the cheaper choice).

    Both physical [nest] algorithms of the paper's Section 5.1 are
    provided: sort-based (sort then cut runs — the one the paper's
    stored procedures simulate) and hash-based. *)

open Nra_relational

type t = {
  key_schema : Schema.t;
  elem_schema : Schema.t;
  groups : (Row.t * Row.t array) array;
}

val nest_sort : by:int array -> keep:int array -> Relation.t -> t
val nest_hash : by:int array -> keep:int array -> Relation.t -> t
(** Groups appear in key order ([nest_sort]) or first-occurrence order
    ([nest_hash]); both produce the same set of groups. *)

val cardinality : t -> int

val unnest : t -> Relation.t
(** Flatten back (groups with no elements vanish). *)

val to_nested : t -> Nested_relation.t
(** Convert to the general model (deduplicating elements). *)

val equal : t -> t -> bool
(** Group-set equality: same keys, same element {e multisets}. *)

(** {1 Linking selections — Definition 5}

    Both return a {e flat} relation over [key_schema]: the paper's
    implicit projection of the selection result onto the nesting
    attributes (the nested component has served its purpose once the
    predicate is computed). *)

val select : Link_pred.t -> marker:int option -> t -> Relation.t
(** σ: keys of groups whose linking predicate is [True]. *)

val pseudo_select : Link_pred.t -> marker:int option -> pad:int array ->
  t -> Relation.t
(** σ̄: every group's key survives; for groups whose predicate is not
    [True] the [pad] positions (of the key schema) are overwritten with
    NULL — including, by construction, the carried primary key of the
    inner block, so enclosing levels see the tuple as "failed". *)

val pp : Format.formatter -> t -> unit
