open Nra_relational

type schema = {
  atoms : Schema.column array;
  subs : (string * schema) array;
}

type tuple = { avals : Value.t array; svals : t array }
and t = { sch : schema; tuples : tuple list }

let rec depth sch =
  if Array.length sch.subs = 0 then 0
  else
    1
    + Array.fold_left (fun d (_, s) -> max d (depth s)) 0 sch.subs

let schema_of_flat s = { atoms = Schema.columns s; subs = [||] }

let of_flat rel =
  {
    sch = schema_of_flat (Relation.schema rel);
    tuples =
      Array.to_list (Relation.rows rel)
      |> List.map (fun row -> { avals = row; svals = [||] });
  }

let to_flat t =
  if Array.length t.sch.subs <> 0 then
    invalid_arg "Nested_relation.to_flat: relation is not flat";
  Relation.of_rows
    (Schema.of_columns (Array.to_list t.sch.atoms))
    (List.map (fun tp -> tp.avals) t.tuples)

(* Canonical recursive comparison: atoms first, then subrelations as
   sorted duplicate-free lists. *)
let rec compare_tuple a b =
  let c = Row.compare a.avals b.avals in
  if c <> 0 then c
  else
    let la = Array.length a.svals and lb = Array.length b.svals in
    let rec go i =
      if i >= la || i >= lb then Int.compare la lb
      else
        let c = compare_rel a.svals.(i) b.svals.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

and compare_rel a b =
  let ca = canonical a and cb = canonical b in
  List.compare compare_tuple ca cb

and canonical r = List.sort_uniq compare_tuple r.tuples

let equal a b = compare_rel a b = 0

let check_positions sch ~by ~keep =
  let n = Array.length sch.atoms in
  let ok i = i >= 0 && i < n in
  if not (List.for_all ok by && List.for_all ok keep) then
    invalid_arg "Nested_relation.nest: atom position out of range";
  if List.exists (fun i -> List.mem i keep) by then
    invalid_arg "Nested_relation.nest: nesting and nested attributes overlap"

let nest ?(name = "nested") ~by ~keep t =
  check_positions t.sch ~by ~keep;
  let elem_schema =
    {
      atoms = Array.of_list (List.map (fun i -> t.sch.atoms.(i)) keep);
      subs = t.sch.subs;
    }
  in
  let out_schema =
    {
      atoms = Array.of_list (List.map (fun i -> t.sch.atoms.(i)) by);
      subs = [| (name, elem_schema) |];
    }
  in
  let by_arr = Array.of_list by and keep_arr = Array.of_list keep in
  (* group in order of first occurrence *)
  let groups : (int, Row.t * tuple list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun tp ->
      let key = Row.project_arr tp.avals by_arr in
      let elem =
        { avals = Row.project_arr tp.avals keep_arr; svals = tp.svals }
      in
      let h = Row.hash key in
      let existing =
        Hashtbl.find_all groups h
        |> List.find_opt (fun (k, _) -> Row.equal k key)
      in
      match existing with
      | Some (_, cell) -> cell := elem :: !cell
      | None ->
          let cell = ref [ elem ] in
          Hashtbl.add groups h (key, cell);
          order := (key, cell) :: !order)
    t.tuples;
  let tuples =
    List.rev_map
      (fun (key, cell) ->
        let elems =
          (* set semantics inside the nested component *)
          List.sort_uniq compare_tuple (List.rev !cell)
        in
        {
          avals = key;
          svals = [| { sch = elem_schema; tuples = elems } |];
        })
      !order
  in
  { sch = out_schema; tuples }

let unnest ~sub t =
  if sub < 0 || sub >= Array.length t.sch.subs then
    invalid_arg "Nested_relation.unnest: no such subrelation";
  let _, sub_schema = t.sch.subs.(sub) in
  let other_subs =
    Array.of_list
      (List.filteri (fun i _ -> i <> sub) (Array.to_list t.sch.subs))
  in
  let out_schema =
    {
      atoms = Array.append t.sch.atoms sub_schema.atoms;
      subs = Array.append other_subs sub_schema.subs;
    }
  in
  let tuples =
    List.concat_map
      (fun tp ->
        let others =
          Array.of_list
            (List.filteri (fun i _ -> i <> sub) (Array.to_list tp.svals))
        in
        List.map
          (fun elem ->
            {
              avals = Array.append tp.avals elem.avals;
              svals = Array.append others elem.svals;
            })
          tp.svals.(sub).tuples)
      t.tuples
  in
  { sch = out_schema; tuples }

let rec pp_tuple ppf tp =
  Format.fprintf ppf "(@[%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (Array.to_list tp.avals);
  Array.iter
    (fun sr ->
      if Array.length tp.avals > 0 || Array.length tp.svals > 1 then
        Format.fprintf ppf ",@ ";
      pp_set ppf sr)
    tp.svals;
  Format.fprintf ppf "@])"

and pp_set ppf r =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp_tuple)
    r.tuples

let rec pp_schema ppf sch =
  Format.fprintf ppf "(@[%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf c -> Format.pp_print_string ppf (Schema.qualified_name c)))
    (Array.to_list sch.atoms);
  Array.iter
    (fun (name, s) ->
      if Array.length sch.atoms > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s:%a" name pp_schema s)
    sch.subs;
  Format.fprintf ppf "@])"

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@]" pp_schema t.sch
    (Format.pp_print_list pp_tuple)
    t.tuples
