lib/nested/nested_relation.ml: Array Format Hashtbl Int List Nra_relational Relation Row Schema Value
