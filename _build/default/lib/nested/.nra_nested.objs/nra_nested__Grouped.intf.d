lib/nested/grouped.mli: Format Link_pred Nested_relation Nra_relational Relation Row Schema
