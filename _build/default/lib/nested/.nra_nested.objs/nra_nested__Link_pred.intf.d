lib/nested/link_pred.mli: Expr Format Nra_relational Row Three_valued
