lib/nested/linking.mli: Link_pred Nested_relation Nra_relational Three_valued
