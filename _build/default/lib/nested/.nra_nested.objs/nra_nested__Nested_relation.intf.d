lib/nested/nested_relation.mli: Format Nra_relational Relation Schema Value
