lib/nested/link_pred.ml: Array Expr Format List Nra_relational Three_valued Value
