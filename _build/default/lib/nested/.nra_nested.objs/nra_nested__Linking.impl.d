lib/nested/linking.ml: Array Link_pred List Nested_relation Nra_relational Three_valued Value
