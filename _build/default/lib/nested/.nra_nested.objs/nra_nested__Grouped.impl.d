lib/nested/grouped.ml: Array Format Fun Hashtbl Link_pred List Nested_relation Nra_relational Relation Row Schema Three_valued Value
