open Nra_relational
module T3 = Three_valued

type quant = Some_ | All

type t =
  | Quant of Expr.scalar * T3.cmpop * quant * int
  | Non_empty
  | Is_empty

let filter_marker ~marker elems =
  match marker with
  | None -> elems
  | Some m -> List.filter (fun e -> not (Value.is_null e.(m))) elems

let eval p ~outer ~elems =
  match p with
  | Non_empty -> T3.of_bool (elems <> [])
  | Is_empty -> T3.of_bool (elems = [])
  | Quant (a, op, q, b) ->
      let x = Expr.eval_scalar outer a in
      let one e = T3.cmp op x e.(b) in
      (match q with
      | Some_ -> T3.disj (List.map one elems)
      | All -> T3.conj (List.map one elems))

let is_positive = function
  | Non_empty | Quant (_, _, Some_, _) -> true
  | Is_empty | Quant (_, _, All, _) -> false

let pp ppf = function
  | Non_empty -> Format.pp_print_string ppf "{B} <> {}"
  | Is_empty -> Format.pp_print_string ppf "{B} = {}"
  | Quant (a, op, q, b) ->
      Format.fprintf ppf "%a %s %s {#%d}" Expr.pp_scalar a
        (T3.cmpop_to_string op)
        (match q with Some_ -> "SOME" | All -> "ALL")
        b
