(** Linking selections over the general nested model — Definition 5.

    These operate on a {!Nested_relation.t} whose top level has (at
    least) one subrelation; the predicate's linked attribute lives in
    subrelation [sub].  They are the reference semantics; the evaluators
    use the equivalent {!Grouped} operators. *)

open Nra_relational

val eval_tuple : Link_pred.t -> sub:int -> marker:int option ->
  Nested_relation.tuple -> Three_valued.t

val select : Link_pred.t -> sub:int -> marker:int option ->
  Nested_relation.t -> Nested_relation.t
(** σ{_C}: keeps nested tuples whose linking predicate is [True]. *)

val pseudo_select : Link_pred.t -> sub:int -> marker:int option ->
  pad:int list -> Nested_relation.t -> Nested_relation.t
(** σ̄{_C,A}: keeps every tuple; failing tuples get their [pad] atom
    positions overwritten with NULL (the subrelations are left
    untouched, as in the paper's Temp3 which drops the nested component
    by the subsequent projection). *)

val drop_sub : sub:int -> Nested_relation.t -> Nested_relation.t
(** The projection that discards a subrelation (the paper's implicit
    projection after a linking selection). *)

(** {1 Deep application}

    Definition 4 notes that for a multi-level relation the linking
    attribute [A] and linked attribute [B] "might belong to the
    subschemas with depth d and d+1 respectively; thus, the above
    definition can still be used".  [at_depth] applies any
    nested-relation transformer at the end of a subrelation path: the
    transformer sees, for each tuple along the path, the subrelation at
    that position, and its result replaces it. *)

val at_depth : path:int list ->
  (Nested_relation.t -> Nested_relation.t) -> Nested_relation.t ->
  Nested_relation.t
(** [at_depth ~path f r] rewrites the subrelations reached by following
    the subrelation indices in [path] (so [path = []] is [f r] itself).
    @raise Invalid_argument if an index is out of range. *)

val select_at : path:int list -> Link_pred.t -> sub:int ->
  marker:int option -> Nested_relation.t -> Nested_relation.t
(** A linking selection between depths d and d+1: [select] applied to
    every subrelation at depth d = [length path]. *)

val pseudo_select_at : path:int list -> Link_pred.t -> sub:int ->
  marker:int option -> pad:int list -> Nested_relation.t ->
  Nested_relation.t
