(** Linking predicates — the paper's Definition 4.

    A linking predicate compares an attribute of the outer (flat) part of
    a nested tuple against the {e set} of values of an attribute of one
    of its subrelations: [A θ SOME {B}], [A θ ALL {B}], or tests the set
    for emptiness ([{B} = ∅] / [{B} ≠ ∅], the EXISTS forms).

    SQL linking operators map onto these as:
    - [IN]        → [= SOME];   [NOT IN] → [<> ALL]
    - [θ ANY/SOME]→ [θ SOME];   [θ ALL]  → [θ ALL]
    - [EXISTS]    → [≠ ∅];      [NOT EXISTS] → [= ∅]

    Evaluation is three-valued: [x θ ALL ∅ = True], [x θ SOME ∅ = False],
    and a NULL on either side of an element comparison contributes
    Unknown — so [5 > ALL {2,3,4,NULL}] is Unknown, the motivating
    example of the paper's Section 2.

    The {e marker} discipline: after an outer join, a group that had no
    join partner holds a single padded element whose carried primary key
    is NULL.  Callers pass the marker position so such elements are
    excluded from the set — this implements the paper's "∨ T.L is null"
    side conditions and its rule that the linking selection "only
    compares the linking attribute to the linked attribute whose
    corresponding primary key is not null". *)

open Nra_relational

type quant = Some_ | All

type t =
  | Quant of Expr.scalar * Three_valued.cmpop * quant * int
      (** [Quant (a, θ, q, b)]: [a] is evaluated on the outer frame; [b]
          is the linked attribute's position in the element frame. *)
  | Non_empty
  | Is_empty

val eval : t -> outer:Row.t -> elems:Row.t list -> Three_valued.t
(** [elems] must already have marker-null padding elements removed. *)

val filter_marker : marker:int option -> Row.t list -> Row.t list
(** Drop elements whose marker position holds NULL ([None] keeps all). *)

val is_positive : t -> bool
(** Positive linking operators (EXISTS, SOME, IN) are satisfied only by
    non-empty sets; negative ones (NOT EXISTS, ALL, NOT IN) are
    satisfied by the empty set.  Drives the σ vs σ̄ choice. *)

val pp : Format.formatter -> t -> unit
