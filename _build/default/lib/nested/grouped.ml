open Nra_relational
module T3 = Three_valued

type t = {
  key_schema : Schema.t;
  elem_schema : Schema.t;
  groups : (Row.t * Row.t array) array;
}

let schemas rel ~by ~keep =
  let s = Relation.schema rel in
  ( Schema.project s (Array.to_list by),
    Schema.project s (Array.to_list keep) )

let nest_sort ~by ~keep rel =
  let key_schema, elem_schema = schemas rel ~by ~keep in
  let sorted = Relation.sort_by by rel in
  let rows = Relation.rows sorted in
  let n = Array.length rows in
  let groups = ref [] in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let key = Row.project_arr rows.(start) by in
    let elems = ref [] in
    while !i < n && Row.equal_on by rows.(start) rows.(!i) do
      elems := Row.project_arr rows.(!i) keep :: !elems;
      incr i
    done;
    groups := (key, Array.of_list (List.rev !elems)) :: !groups
  done;
  { key_schema; elem_schema; groups = Array.of_list (List.rev !groups) }

let nest_hash ~by ~keep rel =
  let key_schema, elem_schema = schemas rel ~by ~keep in
  let tbl : (int, Row.t * Row.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let key = Row.project_arr row by in
      let elem = Row.project_arr row keep in
      let h = Row.hash key in
      let existing =
        Hashtbl.find_all tbl h
        |> List.find_opt (fun (k, _) -> Row.equal k key)
      in
      match existing with
      | Some (_, cell) -> cell := elem :: !cell
      | None ->
          let cell = ref [ elem ] in
          Hashtbl.add tbl h (key, cell);
          order := (key, cell) :: !order)
    (Relation.rows rel);
  let groups =
    List.rev_map
      (fun (key, cell) -> (key, Array.of_list (List.rev !cell)))
      !order
  in
  { key_schema; elem_schema; groups = Array.of_list groups }

let cardinality t = Array.length t.groups

let unnest t =
  let schema = Schema.append t.key_schema t.elem_schema in
  let out = ref [] in
  Array.iter
    (fun (key, elems) ->
      Array.iter (fun e -> out := Row.concat key e :: !out) elems)
    t.groups;
  Relation.of_rows schema (List.rev !out)

let to_nested t =
  let flat = unnest t in
  let karity = Schema.arity t.key_schema in
  let earity = Schema.arity t.elem_schema in
  Nested_relation.nest
    ~by:(List.init karity Fun.id)
    ~keep:(List.init earity (fun i -> karity + i))
    (Nested_relation.of_flat flat)

let equal a b =
  let canon t =
    Array.to_list t.groups
    |> List.map (fun (k, es) ->
           (k, List.sort Row.compare (Array.to_list es)))
    |> List.sort (fun (k1, _) (k2, _) -> Row.compare k1 k2)
  in
  List.equal
    (fun (k1, e1) (k2, e2) -> Row.equal k1 k2 && List.equal Row.equal e1 e2)
    (canon a) (canon b)

let eval_group pred ~marker (key, elems) =
  let elems = Link_pred.filter_marker ~marker (Array.to_list elems) in
  Link_pred.eval pred ~outer:key ~elems

let select pred ~marker t =
  let out = ref [] in
  Array.iter
    (fun g ->
      if T3.to_bool (eval_group pred ~marker g) then out := fst g :: !out)
    t.groups;
  Relation.of_rows t.key_schema (List.rev !out)

let pseudo_select pred ~marker ~pad t =
  let out = ref [] in
  Array.iter
    (fun ((key, _) as g) ->
      let row =
        if T3.to_bool (eval_group pred ~marker g) then key
        else begin
          let padded = Array.copy key in
          Array.iter (fun i -> padded.(i) <- Value.Null) pad;
          padded
        end
      in
      out := row :: !out)
    t.groups;
  Relation.of_rows t.key_schema (List.rev !out)

let pp ppf t =
  Format.fprintf ppf "@[<v>nest %a keeping %a@,%a@]" Schema.pp t.key_schema
    Schema.pp t.elem_schema
    (Format.pp_print_list (fun ppf (k, es) ->
         Format.fprintf ppf "%a -> {%a}" Row.pp k
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
              Row.pp)
           (Array.to_list es)))
    (Array.to_list t.groups)
