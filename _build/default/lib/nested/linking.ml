open Nra_relational
module T3 = Three_valued
module N = Nested_relation

let eval_tuple pred ~sub ~marker (tp : N.tuple) =
  let elems = List.map (fun (e : N.tuple) -> e.avals) tp.svals.(sub).tuples in
  let elems = Link_pred.filter_marker ~marker elems in
  Link_pred.eval pred ~outer:tp.avals ~elems

let select pred ~sub ~marker (t : N.t) =
  {
    t with
    N.tuples =
      List.filter
        (fun tp -> T3.to_bool (eval_tuple pred ~sub ~marker tp))
        t.tuples;
  }

let pseudo_select pred ~sub ~marker ~pad (t : N.t) =
  let pad_tuple (tp : N.tuple) =
    let avals = Array.copy tp.avals in
    List.iter (fun i -> avals.(i) <- Value.Null) pad;
    { tp with N.avals }
  in
  {
    t with
    N.tuples =
      List.map
        (fun tp ->
          if T3.to_bool (eval_tuple pred ~sub ~marker tp) then tp
          else pad_tuple tp)
        t.tuples;
  }

let rec at_depth ~path f (t : N.t) =
  match path with
  | [] -> f t
  | sub :: rest ->
      if sub < 0 || sub >= Array.length t.N.sch.N.subs then
        invalid_arg "Linking.at_depth: no such subrelation";
      let name, sub_schema = t.N.sch.N.subs.(sub) in
      (* the subschema may change shape uniformly; recompute it from the
         first rewritten subrelation if any, else keep the original *)
      let new_schema = ref sub_schema in
      let tuples =
        List.map
          (fun (tp : N.tuple) ->
            let rewritten = at_depth ~path:rest f tp.N.svals.(sub) in
            new_schema := rewritten.N.sch;
            let svals = Array.copy tp.N.svals in
            svals.(sub) <- rewritten;
            { tp with N.svals })
          t.N.tuples
      in
      let subs = Array.copy t.N.sch.N.subs in
      subs.(sub) <- (name, !new_schema);
      { N.sch = { t.N.sch with N.subs }; tuples }

let select_at ~path pred ~sub ~marker t =
  at_depth ~path (select pred ~sub ~marker) t

let pseudo_select_at ~path pred ~sub ~marker ~pad t =
  at_depth ~path (pseudo_select pred ~sub ~marker ~pad) t

let drop_sub ~sub (t : N.t) =
  let drop_i l = List.filteri (fun i _ -> i <> sub) l in
  {
    N.sch =
      {
        t.N.sch with
        N.subs = Array.of_list (drop_i (Array.to_list t.N.sch.N.subs));
      };
    N.tuples =
      List.map
        (fun (tp : N.tuple) ->
          {
            tp with
            N.svals = Array.of_list (drop_i (Array.to_list tp.N.svals));
          })
        t.N.tuples;
  }
