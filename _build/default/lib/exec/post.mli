(** Output post-processing shared by all executors.

    Every executor reduces a query to the multiset of outer-block frame
    rows that satisfy WHERE (including all subquery predicates); this
    module then applies, in SQL order: GROUP BY + aggregates, HAVING,
    SELECT projection, DISTINCT, ORDER BY, LIMIT. *)

open Nra_relational
open Nra_planner

exception Unsupported of string

val apply : Analyze.output -> Relation.t -> Relation.t
(** @raise Unsupported on e.g. a non-grouped column used alongside
    aggregates, or ORDER BY expressions incompatible with DISTINCT. *)
