lib/exec/magic.ml: Analyze Array Expr Frame Hashtbl Linkeval List Naive Nra_planner Nra_relational Post Relation Resolved Row Three_valued Value
