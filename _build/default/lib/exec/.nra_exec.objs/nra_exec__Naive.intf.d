lib/exec/naive.mli: Analyze Catalog Nra_planner Nra_relational Nra_storage Relation Row Schema Three_valued
