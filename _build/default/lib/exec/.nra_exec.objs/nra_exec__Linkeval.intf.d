lib/exec/linkeval.mli: Analyze Expr Nra_planner Nra_relational Row Schema Three_valued
