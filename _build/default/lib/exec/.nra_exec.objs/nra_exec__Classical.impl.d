lib/exec/classical.ml: Analyze Expr Frame List Naive Nra_algebra Nra_planner Nra_relational Post Relation Resolved Schema Three_valued
