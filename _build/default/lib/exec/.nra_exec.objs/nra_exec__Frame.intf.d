lib/exec/frame.mli: Analyze Expr Nra_planner Nra_relational Relation Resolved Schema
