lib/exec/post.mli: Analyze Nra_planner Nra_relational Relation
