lib/exec/post.ml: Analyze Array Expr Format Fun List Nra_algebra Nra_planner Nra_relational Nra_sql Option Printf Relation Resolved Schema Ttype Value
