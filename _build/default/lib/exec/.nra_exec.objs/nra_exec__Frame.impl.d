lib/exec/frame.ml: Analyze Expr Iosim List Nra_algebra Nra_planner Nra_relational Nra_storage Printf Relation Resolved Schema String Table
