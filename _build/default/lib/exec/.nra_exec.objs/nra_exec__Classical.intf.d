lib/exec/classical.mli: Analyze Catalog Nra_planner Nra_relational Nra_storage Relation
