lib/exec/linkeval.ml: Analyze Array Expr Frame List Nra_algebra Nra_planner Nra_relational Nra_sql Resolved Row Schema Three_valued Ttype Value
