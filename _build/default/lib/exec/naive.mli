(** Nested iteration — the paper's "native approach" core.

    Subquery predicates are evaluated tuple-at-a-time: for each
    candidate row of the outer frame the inner block is recomputed
    (recursively), with the inner table accessed through an index on the
    correlated attributes when one exists (mirroring "lineitem is
    accessed by index rowid"); otherwise the inner block is scanned.

    This is the semantic reference implementation: it follows SQL's
    tuple-iteration semantics directly, so the equivalence tests pit the
    other executors against it. *)

open Nra_relational
open Nra_storage
open Nra_planner

type stats = { mutable inner_loops : int; mutable index_probes : int }

val stats : stats
(** Global counters (reset at each [run]). *)

val compile :
  ?use_indexes:bool ->
  Catalog.t ->
  Analyze.t ->
  Schema.t ->
  Analyze.child ->
  Row.t ->
  Three_valued.t
(** [compile cat t outer_schema child] builds the per-row evaluator of
    one subquery predicate against rows of [outer_schema].  Exposed so
    the classical executor can fall back to nested iteration for the
    operators it cannot unnest. *)

val run_where :
  ?use_indexes:bool -> Catalog.t -> Analyze.t -> Relation.t
(** Outer-frame rows satisfying the full WHERE. *)

val run : ?use_indexes:bool -> Catalog.t -> Analyze.t -> Relation.t
(** [run_where] followed by output post-processing. *)
