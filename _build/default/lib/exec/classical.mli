(** Classical unnesting — the "System A native approach" baseline.

    Implements the Kim/Dayal-style rewrites a 2005-era commercial
    optimizer applies, with the same limitations the paper documents:

    - positive linking (EXISTS / IN / θ SOME) → {e semijoin};
    - NOT EXISTS → {e antijoin};
    - NOT IN / θ ALL → antijoin on the complemented operator, but
      {e only} when both linking and linked attributes are declared
      NOT NULL (otherwise the rewrite is wrong under NULLs — Section 2);
    - a subquery correlated to a {e non-adjacent} block (the paper's
      Query 3 family) cannot be reduced to a join and falls back to
      nested iteration (with index access), as does any case where a
      rule does not apply.

    [plan] reports which strategy was chosen per subquery, so tests can
    assert that e.g. Query 2b degenerates to nested iteration exactly
    when the NOT NULL constraint is absent. *)

open Nra_relational
open Nra_storage
open Nra_planner

type strategy = Semijoin | Antijoin | Iterate

val plan : Catalog.t -> Analyze.t -> (int * strategy) list
(** Strategy per block id (children of each block, pre-order). *)

val run_where : Catalog.t -> Analyze.t -> Relation.t
val run : Catalog.t -> Analyze.t -> Relation.t

val strategy_to_string : strategy -> string
