(** Magic decorrelation — the related-work baseline the paper's
    Section 2 discusses (Seshadri et al. / Mumick–Pirahesh, adapted to
    non-aggregate subqueries).

    For an equality-correlated subquery the evaluator:

    + computes the {e magic set}: the distinct correlation-attribute
      combinations actually present in the outer relation;
    + restricts the inner block by semijoining it with the magic set
      (the "pushed selection" the technique is named for), then reduces
      the inner block's own children recursively;
    + groups the restricted inner result by its correlation key once and
      decides each outer tuple's linking predicate against its group
      (the outer-join/antijoin step of the classical formulation,
      realized group-wise so negative operators and NULLs are handled
      exactly).

    The paper's observation — "magic decorrelation … does not improve
    the overall situation" for this query class — is reproducible with
    the benchmark's ablation: the magic set helps exactly when the outer
    block is much smaller than the inner one, and is otherwise overhead
    on top of the same outer-join-shaped plan the nested relational
    approach needs anyway.

    Subqueries without an equality correlation (or whose subtree
    references non-adjacent blocks) fall back to nested iteration, as in
    the classical baseline. *)

open Nra_relational
open Nra_storage
open Nra_planner

val run_where : Catalog.t -> Analyze.t -> Relation.t
val run : Catalog.t -> Analyze.t -> Relation.t

val magic_set_sizes : Catalog.t -> Analyze.t -> (int * int) list
(** For inspection and tests: per equality-correlated block id, the size
    of its magic set on this catalog. *)
