(** Shared linking-predicate evaluation for the set-oriented executors.

    A {e verdict} decides one linking predicate for one outer tuple,
    given the element rows of its associated set; [keep] describes how
    those element rows are computed from a wider frame (the linked
    attribute first, then — for outer-join paths — the carried primary
    key marker).  Used by the nested relational executor and the magic
    decorrelation baseline. *)

open Nra_relational
open Nra_planner

type verdict = Row.t -> Row.t list -> Three_valued.t

val verdict_and_keep :
  key_schema:Schema.t ->
  wide_schema:Schema.t ->
  with_marker:bool ->
  Analyze.child ->
  (Expr.scalar * Schema.column) list * verdict
(** [key_schema] is the frame the outer tuple lives in (the linking
    attribute is evaluated against it); [wide_schema] is the frame the
    keep expressions are computed from.  With [with_marker], elements
    whose final column is NULL are treated as outer-join padding and
    excluded from the set. *)
