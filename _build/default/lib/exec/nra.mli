(** The nested relational approach — Section 4 of the paper.

    Algorithm 1: unnest top-down by reducing every block to a relation
    (local selections pushed down) and left-outer-hash-joining it under
    its correlated predicates into one wide intermediate relation; then
    compute the linking predicates bottom-up, each as a [nest]
    (υ{_ N1,N2}) followed by a linking selection — σ when failing tuples
    may be discarded (outermost predicate, or all enclosing predicates
    positive), σ̄ (pad the owning block's attributes, including its
    carried primary key, with NULL) otherwise.

    The variants of Section 4.2 are selectable:
    - {b pipelined} (§4.2.1–4.2.2): one shared physical sort (fused
      consecutive nests — an upper level's nesting attributes are a
      prefix of the level below, and outer joins preserve the left
      order, so re-sorts are skipped) and the linking selection
      evaluated during the group scan, in a single pass;
    - {b bottom-up for linear correlation} (§4.2.3): a self-contained
      subquery is reduced standalone so only qualifying tuples join
      upward;
    - {b nest push-down} (§4.2.4): with equality correlation, the child
      is grouped by its correlation key once and probed per outer tuple
      instead of materializing the outer join;
    - {b positive simplification} (§4.2.5):
      σ{_ AθSOME{B}}(υ(R ⟕{_C} S)) → R ⋉{_ C∧AθB} S when discarding is
      allowed.

    No indexes are required anywhere: hash joins, sorts and hashes only. *)

open Nra_relational
open Nra_storage
open Nra_planner

type options = {
  pipelined : bool;
  nest_impl : [ `Sort | `Hash ];
  bottom_up_linear : bool;
  push_down_nest : bool;
  positive_simplify : bool;
}

val original : options
(** The paper's "original nested relational approach": sort-based nest
    materialized, separate linking-selection pass. *)

val optimized : options
(** The paper's "optimized" variant: pipelined nest + linking selection
    (one pass over the intermediate result). *)

val full : options
(** Everything in Section 4.2 switched on. *)

type stats = {
  mutable peak_intermediate_rows : int;
      (** largest wide relation materialized *)
  mutable total_intermediate_rows : int;
  mutable nest_select_seconds : float;
      (** time in nest + linking selection — the cost the paper reports
          separately *)
  mutable join_seconds : float;
}

val run_where :
  ?options:options -> Catalog.t -> Analyze.t -> Relation.t * stats
(** Outer-frame rows satisfying WHERE, plus cost counters. *)

val run : ?options:options -> Catalog.t -> Analyze.t -> Relation.t
(** [run_where] followed by output post-processing. *)

val plan_description : ?options:options -> Analyze.t -> string
(** The operator pipeline the executor would run (the paper's Figure 3b
    query tree, linearized), without executing anything: one line per
    join / nest / linking selection, annotated with the σ-vs-σ̄ choice
    and any §4.2 shortcut taken. *)
