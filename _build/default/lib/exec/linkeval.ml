open Nra_relational
open Nra_planner
module A = Analyze
module R = Resolved
module T3 = Three_valued
module Ast = Nra_sql.Ast

type verdict = Row.t -> Row.t list -> T3.t

let guess_ty schema = function
  | Expr.Col i -> (Schema.col schema i).Schema.ty
  | _ -> Ttype.Float

let verdict_and_keep ~key_schema ~wide_schema ~with_marker (c : A.child) :
    (Expr.scalar * Schema.column) list * (Row.t -> Row.t list -> T3.t) =
  let b = c.A.block in
  let keep_b () =
    match (c.A.link, b.A.linked_attr, b.A.scalar_agg) with
    | (A.L_in _ | A.L_not_in _ | A.L_quant _), Some e, _ ->
        let s = Frame.to_scalar wide_schema e in
        [ (s, Schema.column "__b" (guess_ty wide_schema s)) ]
    | A.L_scalar _, Some e, _ ->
        let s = Frame.to_scalar wide_schema e in
        [ (s, Schema.column "__b" (guess_ty wide_schema s)) ]
    | A.L_scalar _, None, Some (_, Some arg) ->
        let s = Frame.to_scalar wide_schema arg in
        [ (s, Schema.column "__b" (guess_ty wide_schema s)) ]
    | _ -> []
  in
  let keep_m () =
    if with_marker then
      let s = Frame.to_scalar wide_schema (R.RCol b.A.marker) in
      [ (s, Schema.column "__m" (guess_ty wide_schema s)) ]
    else []
  in
  let keep = keep_b () @ keep_m () in
  let marker_pos = if with_marker then Some (List.length keep - 1) else None in
  let filt elems =
    match marker_pos with
    | None -> elems
    | Some m -> List.filter (fun e -> not (Value.is_null e.(m))) elems
  in
  let a_scalar e = Frame.to_scalar key_schema e in
  let quant_verdict a op q =
    let a = a_scalar a in
    fun outer elems ->
      let x = Expr.eval_scalar outer a in
      let one (e : Row.t) = T3.cmp op x e.(0) in
      let elems = filt elems in
      match q with
      | `Any -> T3.disj (List.map one elems)
      | `All -> T3.conj (List.map one elems)
  in
  let verdict =
    match c.A.link with
    | A.L_exists -> fun _ elems -> T3.of_bool (filt elems <> [])
    | A.L_not_exists -> fun _ elems -> T3.of_bool (filt elems = [])
    | A.L_in a -> quant_verdict a T3.Eq `Any
    | A.L_not_in a -> quant_verdict a T3.Neq `All
    | A.L_quant (a, op, q) -> quant_verdict a op q
    | A.L_scalar (a, op) -> (
        let a = a_scalar a in
        match b.A.scalar_agg with
        | Some (f, arg) ->
            let func =
              match (f, arg) with
              | Ast.Count_star, _ -> Nra_algebra.Aggregate.Count_star
              | Ast.Count, Some _ -> Nra_algebra.Aggregate.Count (Expr.Col 0)
              | Ast.Sum, Some _ -> Nra_algebra.Aggregate.Sum (Expr.Col 0)
              | Ast.Avg, Some _ -> Nra_algebra.Aggregate.Avg (Expr.Col 0)
              | Ast.Min, Some _ -> Nra_algebra.Aggregate.Min (Expr.Col 0)
              | Ast.Max, Some _ -> Nra_algebra.Aggregate.Max (Expr.Col 0)
              | _, None ->
                  raise (Frame.Unsupported "aggregate without argument")
            in
            fun outer elems ->
              let x = Expr.eval_scalar outer a in
              let v = Nra_algebra.Aggregate.eval_one func (filt elems) in
              T3.cmp op x v
        | None -> (
            fun outer elems ->
              let x = Expr.eval_scalar outer a in
              match filt elems with
              | [] -> T3.Unknown
              | [ e ] -> T3.cmp op x e.(0)
              | _ :: _ :: _ ->
                  failwith "scalar subquery returned more than one row"))
  in
  (keep, verdict)

