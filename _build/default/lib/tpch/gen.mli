(** Deterministic TPC-H-shaped data generator.

    Produces all eight TPC-H tables with the schema, key structure, join
    fan-out and value distributions the benchmark queries of the paper's
    Section 5 depend on, at a configurable scale (1.0 ≈ the official
    SF 1 row counts; benchmarks use a fraction).

    Substitutions vs. the official dbgen, documented in DESIGN.md: text
    columns carry short synthetic strings (their content is never
    queried), and two knobs the paper's experiments turn are explicit:
    [declare_not_null] toggles the NOT NULL constraints on the money
    columns the ALL/NOT IN rewrites hinge on, and [null_rate] injects
    NULLs into those same columns to exercise three-valued semantics. *)

open Nra_storage

type config = {
  scale : float;
  seed : int64;
  null_rate : float;
      (** probability of NULL in [l_extendedprice] and [ps_supplycost]
          (only meaningful with [declare_not_null = false]) *)
  declare_not_null : bool;
      (** declare NOT NULL on [l_extendedprice] / [ps_supplycost] —
          the constraint whose presence lets a classical optimizer turn
          ALL / NOT IN into an antijoin *)
}

val default : config
(** scale 0.01, seed 42, no NULLs, constraints {e not} declared (the
    paper's "general case"). *)

val generate : config -> Catalog.t
(** Build and register all eight tables. *)

val add_benchmark_indexes : Catalog.t -> unit
(** The secondary indexes Section 5.1 creates manually: sorted indexes
    on lineitem(l_partkey, l_suppkey), lineitem(l_partkey),
    lineitem(l_suppkey), lineitem(l_orderkey) and
    partsupp(ps_partkey). *)

(** Date bounds of [o_orderdate] (inclusive), for computing selection
    windows of a target selectivity. *)

val orderdate_lo : int
val orderdate_hi : int
