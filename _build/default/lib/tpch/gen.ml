open Nra_relational
open Nra_storage

type config = {
  scale : float;
  seed : int64;
  null_rate : float;
  declare_not_null : bool;
}

let default =
  { scale = 0.01; seed = 42L; null_rate = 0.0; declare_not_null = false }

let orderdate_lo =
  match Value.date_of_string "1992-01-01" with
  | Value.Date d -> d
  | _ -> assert false

let orderdate_hi =
  match Value.date_of_string "1998-08-02" with
  | Value.Date d -> d
  | _ -> assert false

(* SF 1 row counts *)
let base_suppliers = 10_000
let base_customers = 150_000
let base_parts = 200_000
let base_orders = 1_500_000

let scaled scale base = max 1 (int_of_float (float_of_int base *. scale))

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [|
    "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA";
    "FRANCE"; "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN";
    "JORDAN"; "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA";
    "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES";
  |]

let priorities =
  [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let part_adjectives =
  [|
    "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black";
    "blanched"; "blue"; "blush"; "brown"; "burlywood"; "burnished"; "chartreuse";
    "chiffon"; "chocolate"; "coral"; "cornflower"; "cornsilk"; "cream";
  |]

let part_types =
  [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]

let part_materials = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let containers = [| "SM CASE"; "LG BOX"; "MED BAG"; "JUMBO JAR"; "WRAP PKG" |]

let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let instructs =
  [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]

let comment rng =
  Printf.sprintf "%s %s %s"
    (Prng.pick rng part_adjectives)
    (Prng.pick rng part_types)
    (Prng.pick rng part_materials)

let vi i = Value.Int i
let vf f = Value.Float f
let vs s = Value.String s
let vd d = Value.Date d

let money rng lo hi =
  vf (float_of_int (Prng.in_range rng (lo * 100) (hi * 100)) /. 100.0)

let nullable_money rng cfg lo hi =
  if (not cfg.declare_not_null) && Prng.bool rng cfg.null_rate then Value.Null
  else money rng lo hi

let col = Schema.column

let generate cfg =
  let cat = Catalog.create () in
  let rng = Prng.create cfg.seed in
  let n_suppliers = scaled cfg.scale base_suppliers in
  let n_customers = scaled cfg.scale base_customers in
  let n_parts = scaled cfg.scale base_parts in
  let n_orders = scaled cfg.scale base_orders in

  (* region *)
  let region =
    Table.create ~name:"region" ~key:[ "r_regionkey" ]
      [
        col "r_regionkey" Ttype.Int;
        col ~not_null:true "r_name" Ttype.String;
        col "r_comment" Ttype.String;
      ]
      (Array.init 5 (fun i ->
           [| vi i; vs region_names.(i); vs (comment rng) |]))
  in
  Catalog.register cat region;

  (* nation *)
  let nation =
    Table.create ~name:"nation" ~key:[ "n_nationkey" ]
      [
        col "n_nationkey" Ttype.Int;
        col ~not_null:true "n_name" Ttype.String;
        col ~not_null:true "n_regionkey" Ttype.Int;
        col "n_comment" Ttype.String;
      ]
      (Array.init 25 (fun i ->
           [| vi i; vs nation_names.(i); vi (i mod 5); vs (comment rng) |]))
  in
  Catalog.register cat nation;

  (* supplier *)
  let supplier =
    Table.create ~name:"supplier" ~key:[ "s_suppkey" ]
      [
        col "s_suppkey" Ttype.Int;
        col ~not_null:true "s_name" Ttype.String;
        col "s_address" Ttype.String;
        col ~not_null:true "s_nationkey" Ttype.Int;
        col "s_phone" Ttype.String;
        col "s_acctbal" Ttype.Float;
        col "s_comment" Ttype.String;
      ]
      (Array.init n_suppliers (fun i ->
           let k = i + 1 in
           [|
             vi k;
             vs (Printf.sprintf "Supplier#%09d" k);
             vs (comment rng);
             vi (Prng.int rng 25);
             vs (Printf.sprintf "%02d-%07d" (Prng.in_range rng 10 34)
                   (Prng.int rng 10_000_000));
             money rng (-999) 9999;
             vs (comment rng);
           |]))
  in
  Catalog.register cat supplier;

  (* customer *)
  let customer =
    Table.create ~name:"customer" ~key:[ "c_custkey" ]
      [
        col "c_custkey" Ttype.Int;
        col ~not_null:true "c_name" Ttype.String;
        col "c_address" Ttype.String;
        col ~not_null:true "c_nationkey" Ttype.Int;
        col "c_phone" Ttype.String;
        col "c_acctbal" Ttype.Float;
        col ~not_null:true "c_mktsegment" Ttype.String;
        col "c_comment" Ttype.String;
      ]
      (Array.init n_customers (fun i ->
           let k = i + 1 in
           [|
             vi k;
             vs (Printf.sprintf "Customer#%09d" k);
             vs (comment rng);
             vi (Prng.int rng 25);
             vs (Printf.sprintf "%02d-%07d" (Prng.in_range rng 10 34)
                   (Prng.int rng 10_000_000));
             money rng (-999) 9999;
             vs (Prng.pick rng segments);
             vs (comment rng);
           |]))
  in
  Catalog.register cat customer;

  (* part *)
  let part =
    Table.create ~name:"part" ~key:[ "p_partkey" ]
      [
        col "p_partkey" Ttype.Int;
        col ~not_null:true "p_name" Ttype.String;
        col "p_mfgr" Ttype.String;
        col "p_brand" Ttype.String;
        col "p_type" Ttype.String;
        col ~not_null:true "p_size" Ttype.Int;
        col "p_container" Ttype.String;
        col ~not_null:true "p_retailprice" Ttype.Float;
        col "p_comment" Ttype.String;
      ]
      (Array.init n_parts (fun i ->
           let k = i + 1 in
           [|
             vi k;
             vs
               (Printf.sprintf "%s %s"
                  (Prng.pick rng part_adjectives)
                  (Prng.pick rng part_materials));
             vs (Printf.sprintf "Manufacturer#%d" (Prng.in_range rng 1 5));
             vs (Printf.sprintf "Brand#%d%d" (Prng.in_range rng 1 5)
                   (Prng.in_range rng 1 5));
             vs
               (Printf.sprintf "%s %s"
                  (Prng.pick rng part_types)
                  (Prng.pick rng part_materials));
             vi (Prng.in_range rng 1 50);
             vs (Prng.pick rng containers);
             money rng 500 1500;
             vs (comment rng);
           |]))
  in
  Catalog.register cat part;

  (* partsupp: 4 suppliers per part, TPC-H-style spreading *)
  let suppliers_of_part p =
    List.init 4 (fun k ->
        1 + ((p + (k * ((n_suppliers / 4) + 1))) mod n_suppliers))
    |> List.sort_uniq compare
  in
  let partsupp_rows = ref [] in
  for p = n_parts downto 1 do
    List.iter
      (fun s ->
        partsupp_rows :=
          [|
            vi p;
            vi s;
            vi (Prng.in_range rng 1 9999);
            nullable_money rng cfg 1 1000;
            vs (comment rng);
          |]
          :: !partsupp_rows)
      (suppliers_of_part p)
  done;
  let partsupp =
    Table.create ~name:"partsupp" ~key:[ "ps_partkey"; "ps_suppkey" ]
      [
        col "ps_partkey" Ttype.Int;
        col "ps_suppkey" Ttype.Int;
        col ~not_null:true "ps_availqty" Ttype.Int;
        col ~not_null:cfg.declare_not_null "ps_supplycost" Ttype.Float;
        col "ps_comment" Ttype.String;
      ]
      (Array.of_list !partsupp_rows)
  in
  Catalog.register cat partsupp;

  (* orders and lineitem *)
  let order_rows = ref [] in
  let line_rows = ref [] in
  for o = n_orders downto 1 do
    let odate = Prng.in_range rng orderdate_lo orderdate_hi in
    order_rows :=
      [|
        vi o;
        vi (1 + Prng.int rng n_customers);
        vs (Prng.pick rng [| "O"; "F"; "P" |]);
        money rng 1000 500_000;
        vd odate;
        vs (Prng.pick rng priorities);
        vs (Printf.sprintf "Clerk#%09d" (Prng.in_range rng 1 1000));
        vi 0;
        vs (comment rng);
      |]
      :: !order_rows;
    let n_lines = Prng.in_range rng 1 7 in
    for l = n_lines downto 1 do
      let p = 1 + Prng.int rng n_parts in
      let ss = suppliers_of_part p in
      let s = List.nth ss (Prng.int rng (List.length ss)) in
      let ship = odate + Prng.in_range rng 1 121 in
      let commit = odate + Prng.in_range rng 30 90 in
      let receipt = ship + Prng.in_range rng 1 30 in
      line_rows :=
        [|
          vi o;
          vi p;
          vi s;
          vi l;
          vi (Prng.in_range rng 1 50);
          nullable_money rng cfg 900 104_000;
          vf (float_of_int (Prng.int rng 11) /. 100.0);
          vf (float_of_int (Prng.int rng 9) /. 100.0);
          vs (Prng.pick rng [| "R"; "A"; "N" |]);
          vs (Prng.pick rng [| "O"; "F" |]);
          vd ship;
          vd commit;
          vd receipt;
          vs (Prng.pick rng instructs);
          vs (Prng.pick rng ship_modes);
          vs (comment rng);
        |]
        :: !line_rows
    done
  done;
  let orders =
    Table.create ~name:"orders" ~key:[ "o_orderkey" ]
      [
        col "o_orderkey" Ttype.Int;
        col ~not_null:true "o_custkey" Ttype.Int;
        col "o_orderstatus" Ttype.String;
        col ~not_null:true "o_totalprice" Ttype.Float;
        col ~not_null:true "o_orderdate" Ttype.Date;
        col ~not_null:true "o_orderpriority" Ttype.String;
        col "o_clerk" Ttype.String;
        col "o_shippriority" Ttype.Int;
        col "o_comment" Ttype.String;
      ]
      (Array.of_list !order_rows)
  in
  Catalog.register cat orders;
  let lineitem =
    Table.create ~name:"lineitem" ~key:[ "l_orderkey"; "l_linenumber" ]
      [
        col "l_orderkey" Ttype.Int;
        col ~not_null:true "l_partkey" Ttype.Int;
        col ~not_null:true "l_suppkey" Ttype.Int;
        col "l_linenumber" Ttype.Int;
        col ~not_null:true "l_quantity" Ttype.Int;
        col ~not_null:cfg.declare_not_null "l_extendedprice" Ttype.Float;
        col "l_discount" Ttype.Float;
        col "l_tax" Ttype.Float;
        col "l_returnflag" Ttype.String;
        col "l_linestatus" Ttype.String;
        col ~not_null:true "l_shipdate" Ttype.Date;
        col ~not_null:true "l_commitdate" Ttype.Date;
        col ~not_null:true "l_receiptdate" Ttype.Date;
        col "l_shipinstruct" Ttype.String;
        col "l_shipmode" Ttype.String;
        col "l_comment" Ttype.String;
      ]
      (Array.of_list !line_rows)
  in
  Catalog.register cat lineitem;
  cat

let add_benchmark_indexes cat =
  Catalog.create_sorted_index cat ~table:"lineitem"
    [ "l_partkey"; "l_suppkey" ];
  Catalog.create_sorted_index cat ~table:"lineitem" [ "l_partkey" ];
  Catalog.create_sorted_index cat ~table:"lineitem" [ "l_suppkey" ];
  Catalog.create_sorted_index cat ~table:"lineitem" [ "l_orderkey" ];
  Catalog.create_sorted_index cat ~table:"partsupp" [ "ps_partkey" ]
