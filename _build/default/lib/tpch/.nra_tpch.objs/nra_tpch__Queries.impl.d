lib/tpch/queries.ml: Gen Nra_relational Printf Value
