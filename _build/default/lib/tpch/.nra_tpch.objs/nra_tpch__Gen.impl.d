lib/tpch/gen.ml: Array Catalog List Nra_relational Nra_storage Printf Prng Schema Table Ttype Value
