lib/tpch/prng.ml: Array Int64
