lib/tpch/queries.mli:
