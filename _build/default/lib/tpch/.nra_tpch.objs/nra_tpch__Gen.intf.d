lib/tpch/gen.mli: Catalog Nra_storage
