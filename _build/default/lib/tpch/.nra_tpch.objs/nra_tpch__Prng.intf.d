lib/tpch/prng.mli:
