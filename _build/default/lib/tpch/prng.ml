type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let in_range t lo hi =
  if hi < lo then invalid_arg "Prng.in_range: empty range";
  lo + int t (hi - lo + 1)

let float t x = x *. float_of_int (int t 1_000_000) /. 1_000_000.0

let bool t p = float t 1.0 < p

let pick t arr = arr.(int t (Array.length arr))
