(** Deterministic pseudo-random numbers (splitmix64).

    The generator's output depends only on the seed, so every run of the
    data generator — and therefore every benchmark and test — sees
    identical data, on any platform. *)

type t

val create : int64 -> t

val next : t -> int64

val int : t -> int -> int
(** [int t n] is uniform in [0, n); [n] must be positive. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [lo, hi] (inclusive). *)

val float : t -> float -> float
(** Uniform in [0, x). *)

val bool : t -> float -> bool
(** True with the given probability. *)

val pick : t -> 'a array -> 'a
