open Nra_relational

(* The table maps the hash of the key projection to (key, id) pairs; we
   re-check key equality on probe to survive collisions. *)

type t = {
  positions : int array;
  tbl : (int, Row.t * int) Hashtbl.t;
}

let build rel positions =
  let rows = Relation.rows rel in
  let tbl = Hashtbl.create (max 16 (Array.length rows)) in
  Array.iteri
    (fun id row ->
      if not (Row.has_null_on positions row) then begin
        let key = Row.project_arr row positions in
        Hashtbl.add tbl (Row.hash key) (key, id)
      end)
    rows;
  { positions; tbl }

let positions t = t.positions

let probe t key_row =
  if Array.exists Value.is_null key_row then []
  else
    Hashtbl.find_all t.tbl (Row.hash key_row)
    |> List.filter_map (fun (k, id) ->
           if Row.equal k key_row then Some id else None)
    |> List.rev (* find_all returns most-recent first; restore row order *)

let probe_rows t rel key_row =
  let rows = Relation.rows rel in
  List.map (fun id -> rows.(id)) (probe t key_row)

let cardinality t = Hashtbl.length t.tbl
