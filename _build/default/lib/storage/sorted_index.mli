(** Range (B+-tree-like) indexes: a sorted array of key projections with
    binary search.  Supports point and range probes over a single column
    or a column prefix.  NULL keys are excluded, as in {!Hash_index}. *)

open Nra_relational

type t

val build : Relation.t -> int array -> t

val positions : t -> int array

type bound = Unbounded | Incl of Value.t | Excl of Value.t

val range : t -> lo:bound -> hi:bound -> int list
(** Row ids whose {e first} key column falls in the interval, in key
    order.  For multi-column indexes the remaining columns only break
    ties. *)

val probe : t -> Row.t -> int list
(** Exact-match on the full key, in key order. *)

val cardinality : t -> int
