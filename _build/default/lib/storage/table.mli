(** Base tables.

    A table is a named relation whose schema is qualified with the table
    name and whose primary-key columns are marked [is_key].  Every table
    must declare a primary key: the paper's nested relational approach
    carries the key of each base relation through outer joins to
    distinguish an empty subquery result (key padded to NULL) from a
    genuine NULL value. *)

open Nra_relational

type t

val create : name:string -> key:string list -> Schema.column list ->
  Row.t array -> t
(** [create ~name ~key cols rows] builds a table.  The columns are
    requalified with [name]; the columns listed in [key] are marked
    [is_key] and forced NOT NULL.
    @raise Invalid_argument if [key] is empty, names an unknown column,
    or the rows violate the schema (type or NOT NULL). *)

val name : t -> string
val schema : t -> Schema.t
val relation : t -> Relation.t
val cardinality : t -> int

val key_positions : t -> int array
val key_columns : t -> string list

val with_rows : t -> Row.t array -> t
(** Same name/schema/key, new contents (revalidated). *)

val alias : t -> string -> t
(** [alias t a] is table [t] seen under alias [a]: schema requalified,
    same rows.  Implements [FROM t AS a]. *)

val pp : Format.formatter -> t -> unit
