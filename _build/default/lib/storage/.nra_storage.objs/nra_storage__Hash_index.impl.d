lib/storage/hash_index.ml: Array Hashtbl List Nra_relational Relation Row Value
