lib/storage/table.mli: Format Nra_relational Relation Row Schema
