lib/storage/iosim.mli:
