lib/storage/table.ml: Array Format List Nra_relational Printf Relation Schema
