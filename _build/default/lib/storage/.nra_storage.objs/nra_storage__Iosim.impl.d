lib/storage/iosim.ml: Hashtbl Lru
