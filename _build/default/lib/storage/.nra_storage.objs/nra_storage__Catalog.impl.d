lib/storage/catalog.ml: Array Format Hash_index Hashtbl Int List Nra_relational Option Printf Relation Row Schema Sorted_index String Table
