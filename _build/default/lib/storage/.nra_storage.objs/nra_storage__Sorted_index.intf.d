lib/storage/sorted_index.mli: Nra_relational Relation Row Value
