lib/storage/catalog.mli: Format Hash_index Nra_relational Row Sorted_index Table
