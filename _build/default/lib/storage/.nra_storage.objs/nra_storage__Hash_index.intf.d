lib/storage/hash_index.mli: Nra_relational Relation Row
