lib/storage/lru.mli:
