lib/storage/sorted_index.ml: Array Int List Nra_relational Relation Row Value
