open Nra_relational

type t = {
  positions : int array;
  entries : (Row.t * int) array; (* sorted by key, then id for stability *)
}

type bound = Unbounded | Incl of Value.t | Excl of Value.t

let build rel positions =
  let rows = Relation.rows rel in
  let acc = ref [] in
  Array.iteri
    (fun id row ->
      if not (Row.has_null_on positions row) then
        acc := (Row.project_arr row positions, id) :: !acc)
    rows;
  let entries = Array.of_list !acc in
  Array.sort
    (fun (k1, id1) (k2, id2) ->
      let c = Row.compare k1 k2 in
      if c <> 0 then c else Int.compare id1 id2)
    entries;
  { positions; entries }

let positions t = t.positions
let cardinality t = Array.length t.entries

(* First index whose entry satisfies [above]; entries are sorted so the
   predicate is monotone (a run of false then a run of true). *)
let lower_bound t above =
  let lo = ref 0 and hi = ref (Array.length t.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if above (fst t.entries.(mid)) then hi := mid else lo := mid + 1
  done;
  !lo

let first_key_cmp key v = Value.compare key.(0) v

let range t ~lo ~hi =
  let n = Array.length t.entries in
  let start =
    match lo with
    | Unbounded -> 0
    | Incl v -> lower_bound t (fun k -> first_key_cmp k v >= 0)
    | Excl v -> lower_bound t (fun k -> first_key_cmp k v > 0)
  in
  let stop =
    match hi with
    | Unbounded -> n
    | Incl v -> lower_bound t (fun k -> first_key_cmp k v > 0)
    | Excl v -> lower_bound t (fun k -> first_key_cmp k v >= 0)
  in
  let acc = ref [] in
  for i = stop - 1 downto start do
    acc := snd t.entries.(i) :: !acc
  done;
  !acc

let probe t key_row =
  if Array.exists Value.is_null key_row then []
  else begin
    let start = lower_bound t (fun k -> Row.compare k key_row >= 0) in
    let acc = ref [] in
    let i = ref start in
    let n = Array.length t.entries in
    while !i < n && Row.equal (fst t.entries.(!i)) key_row do
      acc := snd t.entries.(!i) :: !acc;
      incr i
    done;
    List.rev !acc
  end
