(** Equality indexes: key projection of a relation → row ids.

    Rows whose key contains a NULL are not indexed (an equality probe can
    never match them — SQL equi-semantics).  Used by the nested-iteration
    baseline to model "System A accesses the inner table by index rowid",
    and by hash joins. *)

open Nra_relational

type t

val build : Relation.t -> int array -> t
(** [build rel positions] indexes [rel] on the given column positions. *)

val positions : t -> int array

val probe : t -> Row.t -> int list
(** [probe idx key_row] returns ids of rows whose key equals [key_row]
    (a row containing exactly the key values, in index position order).
    A probe containing NULL returns []. *)

val probe_rows : t -> Relation.t -> Row.t -> Row.t list
(** Convenience: probe and materialize the matching rows of [rel] (which
    must be the indexed relation). *)

val cardinality : t -> int
(** Number of indexed entries. *)
