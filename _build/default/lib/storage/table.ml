open Nra_relational

type t = {
  name : string;
  relation : Relation.t;
  key : int array;
  key_names : string list;
}

let create ~name ~key cols rows =
  if key = [] then
    invalid_arg (Printf.sprintf "table %s: a primary key is required" name);
  let cols =
    List.map
      (fun (c : Schema.column) ->
        let in_key = List.mem c.name key in
        {
          c with
          Schema.table = name;
          is_key = in_key;
          not_null = (c.not_null || in_key);
        })
      cols
  in
  let schema = Schema.of_columns cols in
  let key_positions =
    List.map
      (fun k ->
        match Schema.find_opt schema k with
        | Some i -> i
        | None ->
            invalid_arg
              (Printf.sprintf "table %s: key column %s not in schema" name k))
      key
  in
  let relation = Relation.make schema rows in
  (match Relation.typecheck relation with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "table %s: %s" name msg));
  { name; relation; key = Array.of_list key_positions; key_names = key }

let name t = t.name
let schema t = Relation.schema t.relation
let relation t = t.relation
let cardinality t = Relation.cardinality t.relation
let key_positions t = t.key
let key_columns t = t.key_names

let with_rows t rows =
  let relation = Relation.make (schema t) rows in
  (match Relation.typecheck relation with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "table %s: %s" t.name msg));
  { t with relation }

let alias t a =
  let s = Schema.rename_table a (schema t) in
  { t with name = a; relation = Relation.make s (Relation.rows t.relation) }

let pp ppf t =
  Format.fprintf ppf "table %s %a@.%a" t.name Schema.pp (schema t)
    Relation.pp t.relation
