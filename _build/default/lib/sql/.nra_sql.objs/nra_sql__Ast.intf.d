lib/sql/ast.mli: Format Nra_relational Three_valued Ttype Value
