lib/sql/parser.ml: Array Ast Format Lexer List Nra_relational Option Printf Three_valued Ttype Value
