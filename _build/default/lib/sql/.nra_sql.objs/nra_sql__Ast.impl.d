lib/sql/ast.ml: Format List Nra_relational Option String Three_valued Ttype Value
