(** Recursive-descent parser for the SQL subset of {!Ast}. *)

exception Parse_error of string

val parse : string -> Ast.query
(** A single SELECT query.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)

val parse_result : string -> (Ast.query, string) result
(** Error-returning variant; lex and parse errors become messages. *)

val parse_statement : string -> Ast.statement
(** A statement: SELECT queries combined with
    [UNION / INTERSECT / EXCEPT [ALL]] (INTERSECT binds tighter;
    parentheses override).  Subqueries remain plain SELECTs. *)

val parse_statement_result : string -> (Ast.statement, string) result

val parse_command : string -> Ast.command
(** A statement, or DDL/DML:
    [CREATE TABLE t (c TYPE [NOT NULL] …, PRIMARY KEY (c, …))] with
    types INT(EGER) / FLOAT / REAL / DOUBLE / STRING / TEXT / VARCHAR /
    BOOL(EAN) / DATE; [DROP TABLE t];
    [INSERT INTO t VALUES (lit, …), …] or [INSERT INTO t SELECT …];
    [DELETE FROM t [WHERE …]]. *)

val parse_command_result : string -> (Ast.command, string) result

val parse_expr : string -> Ast.expr
(** Parse a standalone scalar expression (used by tests). *)
