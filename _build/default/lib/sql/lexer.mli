(** Hand-written SQL lexer.

    Keywords are case-insensitive; identifiers are lower-cased.  String
    literals use single quotes with [''] escaping.  [--] starts a
    line comment. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string        (** recognized keyword, lower-cased *)
  | OP of string        (** one of [= <> != < <= > >= + - * / . , ( )] *)
  | EOF

exception Lex_error of string * int  (** message, position *)

val tokenize : string -> token list

val keywords : string list
(** The recognized keyword set (lower-case). *)

val pp_token : Format.formatter -> token -> unit
