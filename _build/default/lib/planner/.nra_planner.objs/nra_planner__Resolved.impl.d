lib/planner/resolved.ml: Expr Format Int List Nra_relational Nra_sql Schema String Three_valued Value
