lib/planner/analyze.mli: Catalog Format Nra_relational Nra_sql Nra_storage Resolved Table Three_valued
