lib/planner/analyze.ml: Array Catalog Format List Nra_relational Nra_sql Nra_storage Option Printf Resolved Schema Stdlib String Table Three_valued Value
