lib/planner/resolved.mli: Expr Format Nra_relational Nra_sql Schema Three_valued Value
