(** Name-resolved expressions and flat conditions.

    After analysis every column reference carries the {e unique
    qualifier} ([uid]) of its table binding and the id of the query
    block that binding belongs to.  Uids disambiguate self-joins and
    same-alias bindings in different blocks; the executors build frame
    schemas whose table qualifiers are uids, so translation to physical
    {!Nra_relational.Expr} is a plain schema lookup. *)

open Nra_relational

type rcol = { uid : string; col : string; block_id : int }

type rexpr =
  | RCol of rcol
  | RLit of Value.t
  | RBin of Nra_sql.Ast.binop * rexpr * rexpr
  | RNeg of rexpr

(** Flat (subquery-free) conditions; subqueries are factored out into
    block children by the analyzer. *)
type rcond =
  | RTrue
  | RCmp of Three_valued.cmpop * rexpr * rexpr
  | RAnd of rcond * rcond
  | ROr of rcond * rcond
  | RNot of rcond
  | RIs_null of rexpr
  | RIs_not_null of rexpr
  | RBetween of rexpr * rexpr * rexpr
  | RIn_list of rexpr * Value.t list
  | RLike of rexpr * string

val expr_cols : rexpr -> rcol list
val cond_cols : rcond -> rcol list

val expr_blocks : rexpr -> int list
val cond_blocks : rcond -> int list
(** Distinct block ids referenced, ascending. *)

val conj : rcond list -> rcond
val conjuncts : rcond -> rcond list

exception Unbound of string
(** A column's (uid, name) pair is missing from the frame schema —
    an internal error if analysis succeeded. *)

val to_scalar : Schema.t -> rexpr -> Expr.scalar
val to_pred : Schema.t -> rcond -> Expr.pred

val equal_expr : rexpr -> rexpr -> bool
(** Structural equality — used to match GROUP BY keys against SELECT /
    HAVING occurrences. *)

val pp_expr : Format.formatter -> rexpr -> unit
val pp_cond : Format.formatter -> rcond -> unit
