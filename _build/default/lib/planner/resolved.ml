open Nra_relational
module Ast = Nra_sql.Ast

type rcol = { uid : string; col : string; block_id : int }

type rexpr =
  | RCol of rcol
  | RLit of Value.t
  | RBin of Ast.binop * rexpr * rexpr
  | RNeg of rexpr

type rcond =
  | RTrue
  | RCmp of Three_valued.cmpop * rexpr * rexpr
  | RAnd of rcond * rcond
  | ROr of rcond * rcond
  | RNot of rcond
  | RIs_null of rexpr
  | RIs_not_null of rexpr
  | RBetween of rexpr * rexpr * rexpr
  | RIn_list of rexpr * Value.t list
  | RLike of rexpr * string

let rec expr_cols_acc acc = function
  | RCol c -> c :: acc
  | RLit _ -> acc
  | RBin (_, a, b) -> expr_cols_acc (expr_cols_acc acc a) b
  | RNeg a -> expr_cols_acc acc a

let rec cond_cols_acc acc = function
  | RTrue -> acc
  | RCmp (_, a, b) -> expr_cols_acc (expr_cols_acc acc a) b
  | RAnd (a, b) | ROr (a, b) -> cond_cols_acc (cond_cols_acc acc a) b
  | RNot a -> cond_cols_acc acc a
  | RIs_null a | RIs_not_null a | RIn_list (a, _) | RLike (a, _) ->
      expr_cols_acc acc a
  | RBetween (a, lo, hi) ->
      expr_cols_acc (expr_cols_acc (expr_cols_acc acc a) lo) hi

let expr_cols e = List.rev (expr_cols_acc [] e)
let cond_cols c = List.rev (cond_cols_acc [] c)

let blocks_of cols =
  List.sort_uniq Int.compare (List.map (fun c -> c.block_id) cols)

let expr_blocks e = blocks_of (expr_cols e)
let cond_blocks c = blocks_of (cond_cols c)

let conj = function
  | [] -> RTrue
  | c :: cs -> List.fold_left (fun acc d -> RAnd (acc, d)) c cs

let rec conjuncts = function
  | RAnd (a, b) -> conjuncts a @ conjuncts b
  | RTrue -> []
  | c -> [ c ]

exception Unbound of string

let find_col schema { uid; col; _ } =
  match Schema.find_opt schema ~table:uid col with
  | Some i -> i
  | None -> raise (Unbound (uid ^ "." ^ col))

let rec to_scalar schema = function
  | RCol c -> Expr.Col (find_col schema c)
  | RLit v -> Expr.Const v
  | RBin (op, a, b) ->
      let a = to_scalar schema a and b = to_scalar schema b in
      (match op with
      | Ast.Add -> Expr.Add (a, b)
      | Ast.Sub -> Expr.Sub (a, b)
      | Ast.Mul -> Expr.Mul (a, b)
      | Ast.Div -> Expr.Div (a, b))
  | RNeg a -> Expr.Neg (to_scalar schema a)

let rec to_pred schema = function
  | RTrue -> Expr.true_
  | RCmp (op, a, b) -> Expr.Cmp (op, to_scalar schema a, to_scalar schema b)
  | RAnd (a, b) -> Expr.And (to_pred schema a, to_pred schema b)
  | ROr (a, b) -> Expr.Or (to_pred schema a, to_pred schema b)
  | RNot a -> Expr.Not (to_pred schema a)
  | RIs_null a -> Expr.Is_null (to_scalar schema a)
  | RIs_not_null a -> Expr.Is_not_null (to_scalar schema a)
  | RBetween (a, lo, hi) ->
      Expr.Between (to_scalar schema a, to_scalar schema lo,
        to_scalar schema hi)
  | RIn_list (a, vs) -> Expr.In_list (to_scalar schema a, vs)
  | RLike (a, pattern) -> Expr.Like (to_scalar schema a, pattern)

let rec equal_expr a b =
  match (a, b) with
  | RCol x, RCol y ->
      String.equal x.uid y.uid && String.equal x.col y.col
      && x.block_id = y.block_id
  | RLit x, RLit y -> Value.equal x y
  | RBin (o1, a1, b1), RBin (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | RNeg x, RNeg y -> equal_expr x y
  | _ -> false

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"

let rec pp_expr ppf = function
  | RCol c -> Format.fprintf ppf "%s.%s" c.uid c.col
  | RLit v -> Value.pp ppf v
  | RBin (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | RNeg a -> Format.fprintf ppf "(- %a)" pp_expr a

let rec pp_cond ppf = function
  | RTrue -> Format.pp_print_string ppf "true"
  | RCmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_expr a
        (Three_valued.cmpop_to_string op)
        pp_expr b
  | RAnd (a, b) -> Format.fprintf ppf "(%a and %a)" pp_cond a pp_cond b
  | ROr (a, b) -> Format.fprintf ppf "(%a or %a)" pp_cond a pp_cond b
  | RNot a -> Format.fprintf ppf "(not %a)" pp_cond a
  | RIs_null a -> Format.fprintf ppf "%a is null" pp_expr a
  | RIs_not_null a -> Format.fprintf ppf "%a is not null" pp_expr a
  | RBetween (a, lo, hi) ->
      Format.fprintf ppf "%a between %a and %a" pp_expr a pp_expr lo
        pp_expr hi
  | RLike (a, pattern) -> Format.fprintf ppf "%a like '%s'" pp_expr a pattern
  | RIn_list (a, vs) ->
      Format.fprintf ppf "%a in (%a)" pp_expr a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Value.pp)
        vs
