open Nra_relational

type direction = Asc | Desc
type key = { pos : int; dir : direction }

let sort keys rel =
  let cmp a b =
    let rec go = function
      | [] -> 0
      | { pos; dir } :: rest ->
          let c = Value.compare a.(pos) b.(pos) in
          if c <> 0 then (match dir with Asc -> c | Desc -> -c)
          else go rest
    in
    go keys
  in
  let rows = Array.copy (Relation.rows rel) in
  Array.stable_sort cmp rows;
  Relation.make (Relation.schema rel) rows
