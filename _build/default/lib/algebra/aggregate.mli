(** Grouping and aggregation (γ).

    Grouping uses the total value order, so NULL group keys collapse into
    one group (SQL [GROUP BY] semantics).  Aggregates ignore NULL inputs;
    [Count_star] counts rows.  Over an empty input with no grouping keys
    SQL returns a single row (COUNT = 0, other aggregates NULL) —
    [global] implements that case. *)

open Nra_relational

type func =
  | Count_star
  | Count of Expr.scalar
  | Sum of Expr.scalar
  | Avg of Expr.scalar
  | Min of Expr.scalar
  | Max of Expr.scalar

type spec = { func : func; as_name : string }

val output_type : Schema.t -> func -> Ttype.t
(** Result type of an aggregate over the given input schema. *)

val group_by : keys:int list -> spec list -> Relation.t -> Relation.t
(** Output schema: the key columns, then one column per aggregate (table
    qualifier [""], name [as_name]).  Groups appear in order of first
    occurrence. *)

val global : spec list -> Relation.t -> Relation.t
(** Aggregation without keys: always exactly one output row. *)

val eval_one : func -> Row.t list -> Value.t
(** Aggregate a list of rows directly — used by the scalar-subquery
    evaluators. *)
