(** Joins.

    The paper's approach needs exactly two physical joins — hash
    equi-join and left outer hash join — while the classical-unnesting
    baseline additionally uses semijoin and antijoin, and the
    nested-iteration baseline uses index nested loops.  All variants
    share one entry point that extracts equi-conjuncts as hash keys and
    evaluates the residual conjuncts in 3VL on each candidate pair; with
    no equi-conjunct the join degrades to a nested loop.

    NULL join keys never match (SQL equi-join semantics).  For
    [Left_outer], an unmatched left row is padded with NULLs on the
    right — including the right relation's key columns, which is what
    lets the nested relational operators recognize empty groups. *)

open Nra_relational

type kind =
  | Inner
  | Left_outer
  | Semi   (** left rows with at least one match; left schema only *)
  | Anti   (** left rows with no match (condition never [True]);
               left schema only *)

val join : kind -> on:Expr.pred -> Relation.t -> Relation.t -> Relation.t
(** [on] is over the concatenated frame (left columns then right
    columns), even for [Semi]/[Anti]. *)

val nested_loop : kind -> on:Expr.pred -> Relation.t -> Relation.t ->
  Relation.t
(** Reference implementation; used by tests to validate [join] and by
    the baseline executor when no index applies. *)

val stats_probes : int ref
(** Total hash probes since program start — a cheap cost counter used by
    benchmark sanity checks. *)
