(** Unary physical operators: selection, projection, product, limit. *)

open Nra_relational

val select : Expr.pred -> Relation.t -> Relation.t
(** σ — keeps rows whose predicate is [True] (3VL). *)

val project_cols : int list -> Relation.t -> Relation.t
(** π over column positions (duplicates preserved — SQL bag π). *)

val project_exprs : (Expr.scalar * Schema.column) list -> Relation.t ->
  Relation.t
(** Generalized π: each output column is a computed expression. *)

val product : Relation.t -> Relation.t -> Relation.t
(** Cartesian product; output schema is left ++ right. *)

val distinct : Relation.t -> Relation.t

val limit : int -> Relation.t -> Relation.t
