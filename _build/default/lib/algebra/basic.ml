open Nra_relational

let select pred rel = Relation.filter (Expr.holds pred) rel

let project_cols idxs rel = Relation.project rel idxs

let project_exprs items rel =
  let schema = Schema.of_columns (List.map snd items) in
  let exprs = Array.of_list (List.map fst items) in
  Relation.map_rows schema
    (fun row -> Array.map (Expr.eval_scalar row) exprs)
    rel

let product left right =
  let schema = Schema.append (Relation.schema left) (Relation.schema right) in
  let right_rows = Relation.rows right in
  let out = ref [] in
  Array.iter
    (fun l ->
      Array.iter (fun r -> out := Row.concat l r :: !out) right_rows)
    (Relation.rows left);
  Relation.of_rows schema (List.rev !out)

let distinct rel = Relation.dedup rel

let limit n rel =
  let rows = Relation.rows rel in
  let n = min n (Array.length rows) in
  Relation.make (Relation.schema rel) (Array.sub rows 0 n)
