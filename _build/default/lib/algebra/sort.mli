(** ORDER BY: stable multi-key sort with per-key direction.  NULLs sort
    first ascending / last descending (the total value order of
    {!Nra_relational.Value}). *)

open Nra_relational

type direction = Asc | Desc
type key = { pos : int; dir : direction }

val sort : key list -> Relation.t -> Relation.t
