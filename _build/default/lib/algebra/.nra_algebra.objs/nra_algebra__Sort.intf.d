lib/algebra/sort.mli: Nra_relational Relation
