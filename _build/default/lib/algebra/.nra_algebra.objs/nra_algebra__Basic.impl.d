lib/algebra/basic.ml: Array Expr List Nra_relational Relation Row Schema
