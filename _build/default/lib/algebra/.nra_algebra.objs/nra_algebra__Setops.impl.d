lib/algebra/setops.ml: Array Fun Hashtbl List Nra_relational Relation Row Schema
