lib/algebra/join.ml: Array Expr Hashtbl List Nra_relational Relation Row Schema Value
