lib/algebra/aggregate.ml: Array Expr Hashtbl List Nra_relational Option Relation Row Schema Ttype Value
