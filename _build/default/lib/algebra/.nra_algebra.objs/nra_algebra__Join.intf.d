lib/algebra/join.mli: Expr Nra_relational Relation
