lib/algebra/aggregate.mli: Expr Nra_relational Relation Row Schema Ttype Value
