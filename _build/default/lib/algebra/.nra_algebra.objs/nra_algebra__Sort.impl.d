lib/algebra/sort.ml: Array Nra_relational Relation Value
