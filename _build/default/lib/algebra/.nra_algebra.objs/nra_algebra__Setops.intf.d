lib/algebra/setops.mli: Nra_relational Relation
