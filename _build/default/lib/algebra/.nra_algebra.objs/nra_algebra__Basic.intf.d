lib/algebra/basic.mli: Expr Nra_relational Relation Schema
