open Nra_relational

let check_arity a b =
  if Schema.arity (Relation.schema a) <> Schema.arity (Relation.schema b)
  then invalid_arg "set operation: arity mismatch"

(* Multiset of rows: row -> multiplicity, with collision-safe lookup. *)
module Bag = struct
  type t = (int, Row.t * int ref) Hashtbl.t

  let create n : t = Hashtbl.create (max 16 n)

  let find_ref (t : t) row =
    Hashtbl.find_all t (Row.hash row)
    |> List.find_map (fun (r, c) -> if Row.equal r row then Some c else None)

  let add (t : t) row =
    match find_ref t row with
    | Some c -> incr c
    | None -> Hashtbl.add t (Row.hash row) (row, ref 1)

  let count (t : t) row =
    match find_ref t row with Some c -> !c | None -> 0

  let of_relation rel =
    let t = create (Relation.cardinality rel) in
    Array.iter (add t) (Relation.rows rel);
    t
end

let union a b =
  check_arity a b;
  Relation.dedup (Relation.append a (Relation.make (Relation.schema a) (Relation.rows b)))

let union_all a b =
  check_arity a b;
  Relation.append a (Relation.make (Relation.schema a) (Relation.rows b))

let intersect a b =
  check_arity a b;
  let bag_b = Bag.of_relation b in
  Relation.dedup (Relation.filter (fun r -> Bag.count bag_b r > 0) a)

let intersect_all a b =
  check_arity a b;
  let bag_b = Bag.of_relation b in
  let taken = Bag.create 16 in
  Relation.filter
    (fun r ->
      let available = Bag.count bag_b r - Bag.count taken r in
      if available > 0 then begin
        Bag.add taken r;
        true
      end
      else false)
    a

let except a b =
  check_arity a b;
  let bag_b = Bag.of_relation b in
  Relation.dedup (Relation.filter (fun r -> Bag.count bag_b r = 0) a)

let divide r ~by ~on =
  if on = [] then invalid_arg "divide: empty column mapping";
  let yr = Array.of_list (List.map fst on) in
  let ys = Array.of_list (List.map snd on) in
  let r_schema = Relation.schema r in
  let x_positions =
    List.init (Schema.arity r_schema) Fun.id
    |> List.filter (fun i -> not (Array.mem i yr))
  in
  let x_arr = Array.of_list x_positions in
  let divisor =
    (* the distinct y-tuples that every group must cover *)
    List.sort_uniq Row.compare
      (List.map
         (fun row -> Row.project_arr row ys)
         (Array.to_list (Relation.rows by)))
  in
  let needed = List.length divisor in
  (* group r by its x part, collecting the distinct covered y-tuples *)
  let groups : (int, Row.t * Row.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let x = Row.project_arr row x_arr in
      let y = Row.project_arr row yr in
      if List.exists (Row.equal y) divisor then begin
        let h = Row.hash x in
        match
          Hashtbl.find_all groups h
          |> List.find_opt (fun (k, _) -> Row.equal k x)
        with
        | Some (_, cell) ->
            if not (List.exists (Row.equal y) !cell) then cell := y :: !cell
        | None ->
            let cell = ref [ y ] in
            Hashtbl.add groups h (x, cell);
            order := (x, cell) :: !order
      end
      else if needed = 0 then begin
        (* ∀ over the empty divisor: every x qualifies *)
        let h = Row.hash x in
        if
          Hashtbl.find_all groups h
          |> List.find_opt (fun (k, _) -> Row.equal k x)
          = None
        then begin
          let cell = ref [] in
          Hashtbl.add groups h (x, cell);
          order := (x, cell) :: !order
        end
      end)
    (Relation.rows r);
  let out =
    List.rev !order
    |> List.filter_map (fun (x, cell) ->
           if List.length !cell >= needed then Some x else None)
  in
  Relation.of_rows (Schema.project r_schema x_positions) out

let except_all a b =
  check_arity a b;
  let bag_b = Bag.of_relation b in
  let removed = Bag.create 16 in
  Relation.filter
    (fun r ->
      let to_remove = Bag.count bag_b r - Bag.count removed r in
      if to_remove > 0 then begin
        Bag.add removed r;
        false
      end
      else true)
    a
