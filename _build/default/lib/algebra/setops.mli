(** SQL set operations.

    [UNION]/[INTERSECT]/[EXCEPT] have set semantics (duplicates removed);
    the [_all] variants keep bag semantics with the standard min/max
    multiplicity rules.  Schemas must have equal arity; the left schema
    names the result. *)

open Nra_relational

val union : Relation.t -> Relation.t -> Relation.t
val union_all : Relation.t -> Relation.t -> Relation.t
val intersect : Relation.t -> Relation.t -> Relation.t
val intersect_all : Relation.t -> Relation.t -> Relation.t
val except : Relation.t -> Relation.t -> Relation.t
val except_all : Relation.t -> Relation.t -> Relation.t

val divide : Relation.t -> by:Relation.t -> on:(int * int) list ->
  Relation.t
(** Relational division — the classic universal-quantification operator
    (the algebraic cousin of the paper's [θ ALL] linking predicates).
    [divide r ~by:s ~on:[(yr, ys); …]] returns the distinct tuples of
    [r] projected on the complement of the [yr] positions, keeping a
    group iff for {e every} tuple of [s] there is a tuple in the group
    whose [yr] values equal the [s] tuple's [ys] values (value equality,
    NULL = NULL).  Empty [s] keeps every group (∀ over ∅). *)
