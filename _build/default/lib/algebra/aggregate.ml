open Nra_relational

type func =
  | Count_star
  | Count of Expr.scalar
  | Sum of Expr.scalar
  | Avg of Expr.scalar
  | Min of Expr.scalar
  | Max of Expr.scalar

type spec = { func : func; as_name : string }

let scalar_type schema s =
  match s with
  | Expr.Col i -> Some (Schema.col schema i).Schema.ty
  | Expr.Const (Value.Int _) -> Some Ttype.Int
  | Expr.Const (Value.Float _) -> Some Ttype.Float
  | Expr.Const (Value.String _) -> Some Ttype.String
  | Expr.Const (Value.Date _) -> Some Ttype.Date
  | Expr.Const (Value.Bool _) -> Some Ttype.Bool
  | Expr.Const Value.Null -> None
  | Expr.Add _ | Expr.Sub _ | Expr.Mul _ | Expr.Neg _ -> Some Ttype.Float
  | Expr.Div _ -> Some Ttype.Float

let output_type schema = function
  | Count_star | Count _ -> Ttype.Int
  | Avg _ -> Ttype.Float
  | Sum e | Min e | Max e ->
      Option.value ~default:Ttype.Float (scalar_type schema e)

let eval_one func rows =
  let non_null e =
    List.filter_map
      (fun row ->
        let v = Expr.eval_scalar row e in
        if Value.is_null v then None else Some v)
      rows
  in
  match func with
  | Count_star -> Value.Int (List.length rows)
  | Count e -> Value.Int (List.length (non_null e))
  | Sum e -> (
      match non_null e with
      | [] -> Value.Null
      | v :: vs -> List.fold_left Value.add v vs)
  | Avg e -> (
      match non_null e with
      | [] -> Value.Null
      | vs ->
          let sum = List.fold_left Value.add (Value.Int 0) vs in
          Value.div
            (Value.mul sum (Value.Float 1.0))
            (Value.Int (List.length vs)))
  | Min e -> (
      match non_null e with
      | [] -> Value.Null
      | v :: vs ->
          List.fold_left (fun a b -> if Value.compare b a < 0 then b else a)
            v vs)
  | Max e -> (
      match non_null e with
      | [] -> Value.Null
      | v :: vs ->
          List.fold_left (fun a b -> if Value.compare b a > 0 then b else a)
            v vs)

let out_schema input_schema ~keys specs =
  let key_cols = List.map (Schema.col input_schema) keys in
  let agg_cols =
    List.map
      (fun { func; as_name } ->
        Schema.column as_name (output_type input_schema func))
      specs
  in
  Schema.of_columns (key_cols @ agg_cols)

let group_by ~keys specs rel =
  let kpos = Array.of_list keys in
  (* order-of-first-occurrence grouping via hash on the key projection *)
  let groups : (int, Row.t * Row.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let key = Row.project_arr row kpos in
      let h = Row.hash key in
      let existing =
        Hashtbl.find_all groups h
        |> List.find_opt (fun (k, _) -> Row.equal k key)
      in
      match existing with
      | Some (_, cell) -> cell := row :: !cell
      | None ->
          let cell = ref [ row ] in
          Hashtbl.add groups h (key, cell);
          order := (key, cell) :: !order)
    (Relation.rows rel);
  let schema = out_schema (Relation.schema rel) ~keys specs in
  let out =
    List.rev_map
      (fun (key, cell) ->
        let rows = List.rev !cell in
        let aggs =
          List.map (fun { func; _ } -> eval_one func rows) specs
        in
        Array.append key (Array.of_list aggs))
      !order
  in
  Relation.of_rows schema out

let global specs rel =
  let rows = Array.to_list (Relation.rows rel) in
  let schema = out_schema (Relation.schema rel) ~keys:[] specs in
  let row =
    Array.of_list (List.map (fun { func; _ } -> eval_one func rows) specs)
  in
  Relation.make schema [| row |]
