type column = {
  table : string;
  name : string;
  ty : Ttype.t;
  not_null : bool;
  is_key : bool;
}

type t = column array

exception Ambiguous of string
exception Not_found_col of string

let column ?(table = "") ?(not_null = false) ?(is_key = false) name ty =
  { table; name; ty; not_null; is_key }

let of_columns l = Array.of_list l
let columns s = s
let arity = Array.length
let col s i = s.(i)
let empty = [||]
let append = Array.append
let project s idxs = Array.of_list (List.map (fun i -> s.(i)) idxs)
let rename_table alias s = Array.map (fun c -> { c with table = alias }) s

let qualified_name c =
  if c.table = "" then c.name else c.table ^ "." ^ c.name

let matches ?table name c =
  String.equal c.name name
  && match table with None -> true | Some t -> String.equal c.table t

let find_all s ?table name =
  let acc = ref [] in
  Array.iteri (fun i c -> if matches ?table name c then acc := i :: !acc) s;
  List.rev !acc

let ref_name ?table name =
  match table with None -> name | Some t -> t ^ "." ^ name

let find s ?table name =
  match find_all s ?table name with
  | [ i ] -> i
  | [] -> raise (Not_found_col (ref_name ?table name))
  | _ :: _ -> raise (Ambiguous (ref_name ?table name))

let find_opt s ?table name =
  match find_all s ?table name with [ i ] -> Some i | _ -> None

let mem s ?table name = find_all s ?table name <> []

let equal_names a b =
  arity a = arity b
  && Array.for_all2
       (fun x y -> String.equal x.table y.table && String.equal x.name y.name)
       a b

let pp ppf s =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf c ->
         Format.fprintf ppf "%s:%a%s" (qualified_name c) Ttype.pp c.ty
           (if c.not_null then "!" else "")))
    (Array.to_list s)
