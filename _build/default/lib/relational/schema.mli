(** Flat relational schemas.

    A column is identified by an optional table qualifier and a name.
    Wide intermediate relations produced by unnesting keep the qualifier
    of the base table each column came from, so that the planner can
    refer to ["orders.o_orderkey"] unambiguously after joins.

    [is_key] marks a column that is (part of) the primary key of its base
    table.  The paper's approach relies on carrying such a column through
    outer joins: a [NULL] key identifies a padded ("empty subquery")
    tuple. *)

type column = {
  table : string;  (** qualifier; [""] for computed columns *)
  name : string;
  ty : Ttype.t;
  not_null : bool;  (** declared NOT NULL constraint *)
  is_key : bool;
}

type t

val column : ?table:string -> ?not_null:bool -> ?is_key:bool -> string ->
  Ttype.t -> column

val of_columns : column list -> t
val columns : t -> column array
val arity : t -> int
val col : t -> int -> column

val empty : t
val append : t -> t -> t
(** Schema of a join/product: left columns then right columns. *)

val project : t -> int list -> t

val rename_table : string -> t -> t
(** [rename_table alias s] requalifies every column, as [FROM t AS alias]
    does. *)

(** {1 Name resolution} *)

exception Ambiguous of string
exception Not_found_col of string

val find : t -> ?table:string -> string -> int
(** [find s ~table name] resolves a (possibly qualified) column reference
    to its index.
    @raise Ambiguous when an unqualified name matches several columns
    @raise Not_found_col when nothing matches. *)

val find_opt : t -> ?table:string -> string -> int option
val mem : t -> ?table:string -> string -> bool

val qualified_name : column -> string
(** ["table.name"], or just ["name"] when unqualified. *)

val equal_names : t -> t -> bool
(** Same qualified names, positionally (types not compared). *)

val pp : Format.formatter -> t -> unit
