(** Physical scalar expressions and predicates.

    Columns are positional: an expression is evaluated against a single
    row, so predicates over a join are evaluated against the concatenated
    row (left columns first).  Translation from named SQL expressions is
    done by the planner. *)

type scalar =
  | Col of int
  | Const of Value.t
  | Add of scalar * scalar
  | Sub of scalar * scalar
  | Mul of scalar * scalar
  | Div of scalar * scalar
  | Neg of scalar

type pred =
  | Lit3 of Three_valued.t
  | Cmp of Three_valued.cmpop * scalar * scalar
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Is_null of scalar
  | Is_not_null of scalar
  | In_list of scalar * Value.t list
      (** SQL IN over literals, with its null subtleties *)
  | Between of scalar * scalar * scalar
  | Like of scalar * string
      (** SQL LIKE with [%] (any run) and [_] (any one character); no
          ESCAPE clause.  NULL operand → Unknown.
          @raise Value.Type_error on a non-string operand. *)

val eval_scalar : Row.t -> scalar -> Value.t
val eval_pred : Row.t -> pred -> Three_valued.t

val holds : pred -> Row.t -> bool
(** [WHERE] semantics: true iff the predicate evaluates to [True]. *)

val true_ : pred
val conj : pred list -> pred
val conjuncts : pred -> pred list
(** Flatten nested [And]s. *)

val scalar_cols : scalar -> int list
val pred_cols : pred -> int list
(** Column positions an expression reads (sorted, no duplicates). *)

val shift_scalar : int -> scalar -> scalar
val shift_pred : int -> pred -> pred
(** Add an offset to every column index — used to move a predicate from
    a relation's frame into the right side of a join frame. *)

val remap_scalar : (int -> int) -> scalar -> scalar
val remap_pred : (int -> int) -> pred -> pred

(** {1 Join analysis} *)

val split_equi : left_arity:int -> pred ->
  (int * int) list * pred list
(** Decompose a join predicate (over the concatenated frame) into
    equi-conjuncts [(left_pos, right_pos)] — right positions given in the
    {e right} relation's own frame — and the remaining residual
    conjuncts (still over the concatenated frame). *)

val like_match : pattern:string -> string -> bool
(** The LIKE matcher itself, exposed for tests. *)

(** {1 Simplification} *)

val fold_scalar : scalar -> scalar
val fold_pred : pred -> pred
(** Constant folding and boolean simplification (3VL-exact on values):
    [1 + 2 → 3], [Cmp] of constants → a truth literal, [AND]/[OR]/[NOT]
    over literals collapse, [TRUE AND p → p], and so on.  A constant
    subexpression whose evaluation would raise is left in place (never
    folded into a wrong value), though boolean simplification may
    eliminate a sibling branch entirely — the same leniency a
    short-circuiting evaluator shows. *)

val pp_scalar : Format.formatter -> scalar -> unit
val pp_pred : Format.formatter -> pred -> unit
