lib/relational/schema.mli: Format Ttype
