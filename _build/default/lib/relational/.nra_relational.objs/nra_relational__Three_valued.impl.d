lib/relational/three_valued.ml: Format List Value
