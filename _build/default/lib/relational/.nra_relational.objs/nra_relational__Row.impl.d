lib/relational/row.ml: Array Format Int List Value
