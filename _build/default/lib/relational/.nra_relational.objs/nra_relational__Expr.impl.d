lib/relational/expr.ml: Array Either Format Int List Row String Three_valued Value
