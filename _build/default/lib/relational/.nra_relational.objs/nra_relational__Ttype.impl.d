lib/relational/ttype.ml: Format Value
