lib/relational/relation.ml: Array Buffer Format Hashtbl List Printf Row Schema String Ttype Value
