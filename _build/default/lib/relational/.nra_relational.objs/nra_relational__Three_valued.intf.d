lib/relational/three_valued.mli: Format Value
