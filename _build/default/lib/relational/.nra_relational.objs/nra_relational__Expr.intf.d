lib/relational/expr.mli: Format Row Three_valued Value
