(** Column types.  The engine is dynamically checked (values carry their
    own type); declared column types drive the data generator, the CSV
    reader and error messages. *)

type t = Bool | Int | Float | String | Date

let to_string = function
  | Bool -> "bool"
  | Int -> "int"
  | Float -> "float"
  | String -> "string"
  | Date -> "date"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal (a : t) (b : t) = a = b

(** [admits ty v] — does value [v] inhabit type [ty]?  [Null] inhabits
    every type; ints are accepted where floats are declared. *)
let admits ty (v : Value.t) =
  match (ty, v) with
  | _, Value.Null -> true
  | Bool, Value.Bool _ -> true
  | Int, Value.Int _ -> true
  | Float, (Value.Float _ | Value.Int _) -> true
  | String, Value.String _ -> true
  | Date, Value.Date _ -> true
  | _ -> false
