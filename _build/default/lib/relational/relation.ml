type t = { schema : Schema.t; rows : Row.t array }

let make schema rows =
  let n = Schema.arity schema in
  Array.iter
    (fun r ->
      if Array.length r <> n then
        invalid_arg
          (Printf.sprintf "Relation.make: row arity %d <> schema arity %d"
             (Array.length r) n))
    rows;
  { schema; rows }

let of_rows schema rows = make schema (Array.of_list rows)
let schema t = t.schema
let rows t = t.rows
let cardinality t = Array.length t.rows
let is_empty t = Array.length t.rows = 0

let typecheck t =
  let cols = Schema.columns t.schema in
  let bad = ref None in
  Array.iteri
    (fun ri row ->
      if !bad = None then
        Array.iteri
          (fun ci (c : Schema.column) ->
            let v = row.(ci) in
            if (not (Ttype.admits c.ty v)) && !bad = None then
              bad :=
                Some
                  (Printf.sprintf "row %d, column %s: %s does not admit %s" ri
                     (Schema.qualified_name c) (Ttype.to_string c.ty)
                     (Value.to_string v))
            else if c.not_null && Value.is_null v && !bad = None then
              bad :=
                Some
                  (Printf.sprintf "row %d, column %s: NULL violates NOT NULL"
                     ri
                     (Schema.qualified_name c)))
          cols)
    t.rows;
  match !bad with None -> Ok () | Some msg -> Error msg

let filter p t = { t with rows = Array.of_list (List.filter p (Array.to_list t.rows)) }

let map_rows schema f t = make schema (Array.map f t.rows)

let project t idxs =
  {
    schema = Schema.project t.schema idxs;
    rows = Array.map (fun r -> Row.project r idxs) t.rows;
  }

let append a b =
  if Schema.arity a.schema <> Schema.arity b.schema then
    invalid_arg "Relation.append: arity mismatch";
  { a with rows = Array.append a.rows b.rows }

let sort_by idxs t =
  let rows = Array.copy t.rows in
  let cmp a b = Row.compare_on idxs a b in
  (* Array.stable_sort keeps the original order of equal rows *)
  Array.stable_sort cmp rows;
  { t with rows }

let dedup t =
  let seen = Hashtbl.create (Array.length t.rows) in
  let keep = ref [] in
  Array.iter
    (fun r ->
      let key = Row.hash r in
      let bucket = Hashtbl.find_all seen key in
      if not (List.exists (Row.equal r) bucket) then begin
        Hashtbl.add seen key r;
        keep := r :: !keep
      end)
    t.rows;
  { t with rows = Array.of_list (List.rev !keep) }

let sorted_rows t = List.sort Row.compare (Array.to_list t.rows)

let equal_bag a b =
  cardinality a = cardinality b
  && List.equal Row.equal (sorted_rows a) (sorted_rows b)

let equal_set a b =
  let canon t = List.sort_uniq Row.compare (Array.to_list t.rows) in
  List.equal Row.equal (canon a) (canon b)

let pp ppf t =
  let cols = Schema.columns t.schema in
  let header = Array.map Schema.qualified_name cols in
  let cells = Array.map (fun r -> Array.map Value.to_string r) t.rows in
  let widths =
    Array.mapi
      (fun i h ->
        Array.fold_left
          (fun w row -> max w (String.length row.(i)))
          (String.length h) cells)
      header
  in
  let line sep fill =
    Array.iteri
      (fun i w ->
        Format.pp_print_string ppf (if i = 0 then sep else sep);
        Format.pp_print_string ppf (String.make (w + 2) fill))
      widths;
    Format.pp_print_string ppf sep;
    Format.pp_print_newline ppf ()
  in
  let row_out cells_row =
    Array.iteri
      (fun i w ->
        Format.fprintf ppf "| %s%s " cells_row.(i)
          (String.make (w - String.length cells_row.(i)) ' '))
      widths;
    Format.pp_print_string ppf "|";
    Format.pp_print_newline ppf ()
  in
  line "+" '-';
  row_out header;
  line "+" '-';
  Array.iter row_out cells;
  line "+" '-';
  Format.fprintf ppf "(%d rows)" (Array.length t.rows)

(* CSV: minimal quoting — strings are quoted with doubled quotes only when
   needed; NULL is the bare word NULL. *)

let csv_escape s =
  (* quote whenever the content could be misread: separators, quotes,
     line breaks, or the bare NULL keyword *)
  if
    s = "NULL"
    || String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let value_to_csv = function
  | Value.Null -> "NULL"
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.12g" f
  | Value.String s -> csv_escape s
  | Value.Date d -> Value.string_of_date d

let to_csv t =
  let b = Buffer.create 1024 in
  let cols = Schema.columns t.schema in
  Buffer.add_string b
    (String.concat ","
       (Array.to_list (Array.map Schema.qualified_name cols)));
  Buffer.add_char b '\n';
  Array.iter
    (fun row ->
      Buffer.add_string b
        (String.concat "," (Array.to_list (Array.map value_to_csv row)));
      Buffer.add_char b '\n')
    t.rows;
  Buffer.contents b

(* Scan the whole text into records of (content, was_quoted) fields; a
   quoted field may contain commas, doubled quotes and line breaks. *)
let scan_csv text =
  let n = String.length text in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let quoted = ref false in
  let started = ref false in
  let flush_field () =
    fields := (Buffer.contents buf, !quoted) :: !fields;
    Buffer.clear buf;
    quoted := false;
    started := false
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec go i in_quotes =
    if i >= n then begin
      if !started || !fields <> [] then flush_record ()
    end
    else
      let c = text.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && text.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' then begin
        quoted := true;
        started := true;
        go (i + 1) true
      end
      else if c = ',' then begin
        flush_field ();
        started := true (* a separator implies another field follows *);
        go (i + 1) false
      end
      else if c = '\n' then begin
        flush_record ();
        go (i + 1) false
      end
      else if c = '\r' && not in_quotes then go (i + 1) false
      else begin
        Buffer.add_char buf c;
        started := true;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !records

let value_of_csv (ty : Ttype.t) (s, was_quoted) =
  if s = "NULL" && not was_quoted then Ok Value.Null
  else
    match ty with
    | Ttype.Bool -> (
        match bool_of_string_opt s with
        | Some b -> Ok (Value.Bool b)
        | None -> Error (Printf.sprintf "bad bool %S" s))
    | Ttype.Int -> (
        match int_of_string_opt s with
        | Some i -> Ok (Value.Int i)
        | None -> Error (Printf.sprintf "bad int %S" s))
    | Ttype.Float -> (
        match float_of_string_opt s with
        | Some f -> Ok (Value.Float f)
        | None -> Error (Printf.sprintf "bad float %S" s))
    | Ttype.String -> Ok (Value.String s)
    | Ttype.Date -> (
        match Value.date_of_string s with
        | v -> Ok v
        | exception Value.Type_error m -> Error m)

let of_csv schema text =
  match scan_csv text with
  | [] -> Error "empty CSV"
  | _header :: data ->
      let cols = Schema.columns schema in
      let n = Array.length cols in
      let exception Fail of string in
      (try
         let parse_record ri fields =
           if List.length fields <> n then
             raise
               (Fail
                  (Printf.sprintf "record %d: %d fields, expected %d" (ri + 2)
                     (List.length fields) n));
           let row =
             List.mapi
               (fun ci f ->
                 match value_of_csv cols.(ci).Schema.ty f with
                 | Ok v -> v
                 | Error m ->
                     raise (Fail (Printf.sprintf "record %d: %s" (ri + 2) m)))
               fields
           in
           Array.of_list row
         in
         Ok (make schema (Array.of_list (List.mapi parse_record data)))
       with Fail m -> Error m)
