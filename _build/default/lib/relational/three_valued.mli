(** SQL's three-valued logic.

    Predicates over values containing [NULL] evaluate to [Unknown];
    [WHERE] keeps a tuple only when its condition is [True].  The linking
    predicates of the paper ([θ SOME], [θ ALL], set emptiness) are
    quantified extensions provided by {!Nra_nested.Linking}; this module
    gives the propositional core and the comparison lifting. *)

type t = True | False | Unknown

val of_bool : bool -> t

val to_bool : t -> bool
(** SQL [WHERE] coercion: [True] is [true]; [False] and [Unknown] are
    [false]. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t

val conj : t list -> t
(** n-ary conjunction; [conj [] = True]. *)

val disj : t list -> t
(** n-ary disjunction; [disj [] = False]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Lifted comparisons} *)

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

val cmpop_to_string : cmpop -> string

val negate_op : cmpop -> cmpop
(** The complement: [negate_op Lt = Ge], etc.  Used by classical
    unnesting to turn [θ ALL] into an antijoin on the complement. *)

val flip_op : cmpop -> cmpop
(** Argument swap: [a θ b] iff [b (flip_op θ) a]. *)

val cmp : cmpop -> Value.t -> Value.t -> t
(** Three-valued comparison of two values; [Unknown] if either is
    [NULL]. *)
