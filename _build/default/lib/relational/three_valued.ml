type t = True | False | Unknown

let of_bool b = if b then True else False
let to_bool = function True -> true | False | Unknown -> false

let not_ = function True -> False | False -> True | Unknown -> Unknown

let and_ a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or_ a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let conj l = List.fold_left and_ True l
let disj l = List.fold_left or_ False l

let equal (a : t) (b : t) = a = b

let pp ppf v =
  Format.pp_print_string ppf
    (match v with True -> "true" | False -> "false" | Unknown -> "unknown")

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

let cmpop_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let negate_op = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let flip_op = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let cmp op a b =
  match Value.cmp3 a b with
  | None -> Unknown
  | Some c ->
      of_bool
        (match op with
        | Eq -> c = 0
        | Neq -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0)
