module T3 = Three_valued

type scalar =
  | Col of int
  | Const of Value.t
  | Add of scalar * scalar
  | Sub of scalar * scalar
  | Mul of scalar * scalar
  | Div of scalar * scalar
  | Neg of scalar

type pred =
  | Lit3 of T3.t
  | Cmp of T3.cmpop * scalar * scalar
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Is_null of scalar
  | Is_not_null of scalar
  | In_list of scalar * Value.t list
  | Between of scalar * scalar * scalar
  | Like of scalar * string

(* Greedy-with-backtracking LIKE matcher: '%' matches any run, '_' any
   single character.  Patterns are short, so the worst-case exponential
   backtracking is irrelevant in practice. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go i j =
    if i >= np then j >= ns
    else
      match pattern.[i] with
      | '%' -> go (i + 1) j || (j < ns && go i (j + 1))
      | '_' -> j < ns && go (i + 1) (j + 1)
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let rec eval_scalar row = function
  | Col i -> row.(i)
  | Const v -> v
  | Add (a, b) -> Value.add (eval_scalar row a) (eval_scalar row b)
  | Sub (a, b) -> Value.sub (eval_scalar row a) (eval_scalar row b)
  | Mul (a, b) -> Value.mul (eval_scalar row a) (eval_scalar row b)
  | Div (a, b) -> Value.div (eval_scalar row a) (eval_scalar row b)
  | Neg a -> Value.neg (eval_scalar row a)

let rec eval_pred row = function
  | Lit3 t -> t
  | Cmp (op, a, b) -> T3.cmp op (eval_scalar row a) (eval_scalar row b)
  | And (a, b) -> T3.and_ (eval_pred row a) (eval_pred row b)
  | Or (a, b) -> T3.or_ (eval_pred row a) (eval_pred row b)
  | Not a -> T3.not_ (eval_pred row a)
  | Is_null a -> T3.of_bool (Value.is_null (eval_scalar row a))
  | Is_not_null a -> T3.of_bool (not (Value.is_null (eval_scalar row a)))
  | In_list (a, vs) ->
      let x = eval_scalar row a in
      T3.disj (List.map (fun v -> T3.cmp T3.Eq x v) vs)
  | Between (a, lo, hi) ->
      let x = eval_scalar row a in
      T3.and_
        (T3.cmp T3.Ge x (eval_scalar row lo))
        (T3.cmp T3.Le x (eval_scalar row hi))
  | Like (a, pattern) -> (
      match eval_scalar row a with
      | Value.Null -> T3.Unknown
      | Value.String s -> T3.of_bool (like_match ~pattern s)
      | v ->
          raise
            (Value.Type_error
               ("LIKE on a non-string value: " ^ Value.to_string v)))

let holds p row = T3.to_bool (eval_pred row p)

let true_ = Lit3 T3.True

let conj = function
  | [] -> true_
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | Lit3 T3.True -> []
  | p -> [ p ]

let rec scalar_cols_acc acc = function
  | Col i -> i :: acc
  | Const _ -> acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      scalar_cols_acc (scalar_cols_acc acc a) b
  | Neg a -> scalar_cols_acc acc a

let rec pred_cols_acc acc = function
  | Lit3 _ -> acc
  | Cmp (_, a, b) -> scalar_cols_acc (scalar_cols_acc acc a) b
  | And (a, b) | Or (a, b) -> pred_cols_acc (pred_cols_acc acc a) b
  | Not a -> pred_cols_acc acc a
  | Is_null a | Is_not_null a | In_list (a, _) | Like (a, _) ->
      scalar_cols_acc acc a
  | Between (a, lo, hi) ->
      scalar_cols_acc (scalar_cols_acc (scalar_cols_acc acc a) lo) hi

let scalar_cols s = List.sort_uniq Int.compare (scalar_cols_acc [] s)
let pred_cols p = List.sort_uniq Int.compare (pred_cols_acc [] p)

let rec remap_scalar f = function
  | Col i -> Col (f i)
  | Const v -> Const v
  | Add (a, b) -> Add (remap_scalar f a, remap_scalar f b)
  | Sub (a, b) -> Sub (remap_scalar f a, remap_scalar f b)
  | Mul (a, b) -> Mul (remap_scalar f a, remap_scalar f b)
  | Div (a, b) -> Div (remap_scalar f a, remap_scalar f b)
  | Neg a -> Neg (remap_scalar f a)

let rec remap_pred f = function
  | Lit3 t -> Lit3 t
  | Cmp (op, a, b) -> Cmp (op, remap_scalar f a, remap_scalar f b)
  | And (a, b) -> And (remap_pred f a, remap_pred f b)
  | Or (a, b) -> Or (remap_pred f a, remap_pred f b)
  | Not a -> Not (remap_pred f a)
  | Is_null a -> Is_null (remap_scalar f a)
  | Is_not_null a -> Is_not_null (remap_scalar f a)
  | In_list (a, vs) -> In_list (remap_scalar f a, vs)
  | Between (a, lo, hi) ->
      Between (remap_scalar f a, remap_scalar f lo, remap_scalar f hi)
  | Like (a, pattern) -> Like (remap_scalar f a, pattern)

let shift_scalar off = remap_scalar (fun i -> i + off)
let shift_pred off = remap_pred (fun i -> i + off)

let split_equi ~left_arity p =
  let is_left i = i < left_arity in
  let classify = function
    | Cmp (T3.Eq, Col i, Col j) when is_left i && not (is_left j) ->
        Either.Left (i, j - left_arity)
    | Cmp (T3.Eq, Col j, Col i) when is_left i && not (is_left j) ->
        Either.Left (i, j - left_arity)
    | c -> Either.Right c
  in
  List.partition_map classify (conjuncts p)

(* ---------- constant folding ---------- *)

let dummy_row : Row.t = [||]

let rec fold_scalar s =
  match s with
  | Col _ | Const _ -> s
  | Add (a, b) -> fold_binary (fun x y -> Add (x, y)) a b
  | Sub (a, b) -> fold_binary (fun x y -> Sub (x, y)) a b
  | Mul (a, b) -> fold_binary (fun x y -> Mul (x, y)) a b
  | Div (a, b) -> fold_binary (fun x y -> Div (x, y)) a b
  | Neg a -> (
      match fold_scalar a with
      | Const v as c -> (
          match Value.neg v with
          | v' -> Const v'
          | exception Value.Type_error _ -> Neg c)
      | a' -> Neg a')

and fold_binary rebuild a b =
  let a = fold_scalar a and b = fold_scalar b in
  match (a, b) with
  | Const _, Const _ -> (
      let e = rebuild a b in
      match eval_scalar dummy_row e with
      | v -> Const v
      | exception Value.Type_error _ -> e)
  | _ -> rebuild a b

let rec fold_pred p =
  match p with
  | Lit3 _ -> p
  | Cmp (op, a, b) -> (
      match (fold_scalar a, fold_scalar b) with
      | (Const _ as a'), (Const _ as b') ->
          Lit3 (eval_pred dummy_row (Cmp (op, a', b')))
      | a', b' -> Cmp (op, a', b'))
  | And (a, b) -> (
      match (fold_pred a, fold_pred b) with
      | Lit3 T3.True, q | q, Lit3 T3.True -> q
      | (Lit3 T3.False as f), _ | _, (Lit3 T3.False as f) -> f
      | Lit3 x, Lit3 y -> Lit3 (T3.and_ x y)
      | a', b' -> And (a', b'))
  | Or (a, b) -> (
      match (fold_pred a, fold_pred b) with
      | Lit3 T3.False, q | q, Lit3 T3.False -> q
      | (Lit3 T3.True as t), _ | _, (Lit3 T3.True as t) -> t
      | Lit3 x, Lit3 y -> Lit3 (T3.or_ x y)
      | a', b' -> Or (a', b'))
  | Not a -> (
      match fold_pred a with
      | Lit3 x -> Lit3 (T3.not_ x)
      | a' -> Not a')
  | Is_null a -> (
      match fold_scalar a with
      | Const v -> Lit3 (T3.of_bool (Value.is_null v))
      | a' -> Is_null a')
  | Is_not_null a -> (
      match fold_scalar a with
      | Const v -> Lit3 (T3.of_bool (not (Value.is_null v)))
      | a' -> Is_not_null a')
  | In_list (a, vs) -> (
      match fold_scalar a with
      | Const _ as a' -> Lit3 (eval_pred dummy_row (In_list (a', vs)))
      | a' -> In_list (a', vs))
  | Between (a, lo, hi) -> (
      match (fold_scalar a, fold_scalar lo, fold_scalar hi) with
      | (Const _ as a'), (Const _ as lo'), (Const _ as hi') ->
          Lit3 (eval_pred dummy_row (Between (a', lo', hi')))
      | a', lo', hi' -> Between (a', lo', hi'))
  | Like (a, pattern) -> (
      match fold_scalar a with
      | Const (Value.String _ | Value.Null) as a' -> (
          match eval_pred dummy_row (Like (a', pattern)) with
          | t -> Lit3 t
          | exception Value.Type_error _ -> Like (a', pattern))
      | a' -> Like (a', pattern))

let rec pp_scalar ppf = function
  | Col i -> Format.fprintf ppf "#%d" i
  | Const v -> Value.pp ppf v
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_scalar a pp_scalar b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_scalar a pp_scalar b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_scalar a pp_scalar b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_scalar a pp_scalar b
  | Neg a -> Format.fprintf ppf "(- %a)" pp_scalar a

let rec pp_pred ppf = function
  | Lit3 t -> T3.pp ppf t
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_scalar a (T3.cmpop_to_string op)
        pp_scalar b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp_pred a
  | Is_null a -> Format.fprintf ppf "%a IS NULL" pp_scalar a
  | Is_not_null a -> Format.fprintf ppf "%a IS NOT NULL" pp_scalar a
  | In_list (a, vs) ->
      Format.fprintf ppf "%a IN (%a)" pp_scalar a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Value.pp)
        vs
  | Between (a, lo, hi) ->
      Format.fprintf ppf "%a BETWEEN %a AND %a" pp_scalar a pp_scalar lo
        pp_scalar hi
  | Like (a, pattern) ->
      Format.fprintf ppf "%a LIKE '%s'" pp_scalar a pattern
