(** Flat relations: a schema plus an array of rows.

    SQL relations are multisets; we keep physical order (useful for
    stable tests) and provide explicit [dedup]/set operations where set
    semantics are needed. *)

type t

val make : Schema.t -> Row.t array -> t
(** @raise Invalid_argument if any row's arity differs from the schema's. *)

val of_rows : Schema.t -> Row.t list -> t
val schema : t -> Schema.t
val rows : t -> Row.t array
val cardinality : t -> int
val is_empty : t -> bool

val typecheck : t -> (unit, string) result
(** Verify every value inhabits its declared column type and that
    NOT NULL columns hold no NULL.  Used by tests and the CSV loader. *)

(** {1 Bulk operations} — order-preserving where meaningful *)

val filter : (Row.t -> bool) -> t -> t
val map_rows : Schema.t -> (Row.t -> Row.t) -> t -> t
val project : t -> int list -> t
val append : t -> t -> t

val sort_by : int array -> t -> t
(** Stable sort on the given column positions (total value order,
    NULLs first). *)

val dedup : t -> t
(** Remove duplicate rows, keeping first occurrences. *)

val sorted_rows : t -> Row.t list
(** All rows in total order — canonical form for order-insensitive
    multiset comparison in tests. *)

val equal_bag : t -> t -> bool
(** Multiset equality of rows (schemas not compared). *)

val equal_set : t -> t -> bool
(** Set equality of rows. *)

(** {1 I/O} *)

val pp : Format.formatter -> t -> unit
(** Aligned table with a header of qualified column names. *)

val to_csv : t -> string
val of_csv : Schema.t -> string -> (t, string) result
(** Parse CSV produced by [to_csv]; values are read according to the
    declared column types, the literal [NULL] denotes null. *)
