(* Working with the nested relational model directly: build nested
   relations of arbitrary depth with nest/unnest, and compute the
   paper's Query Q entirely inside the model with deep linking
   selections (the §4.2.1 "do all nests first, then all selections"
   formulation).

     dune exec examples/nested_data.exe *)

open Nra
module N = Nested.Nested_relation
module L = Nested.Linking
module LP = Nested.Link_pred
module T3 = Three_valued

let vi i = Value.Int i
let vnull = Value.Null

(* the flat Temp1 of the paper (R ⟕ S ⟕ T, projected) *)
let temp1 =
  let col name = Schema.column ~table:"w" name Ttype.Int in
  Relation.make
    (Schema.of_columns
       (List.map col [ "b"; "c"; "d"; "e"; "h"; "i"; "j"; "l" ]))
    [|
      [| vi 1; vi 2; vi 3; vi 1; vi 8; vi 1; vi 9; vi 3 |];
      [| vi 1; vi 2; vi 3; vi 2; vi 9; vi 2; vi 7; vi 1 |];
      [| vi 1; vi 2; vi 3; vi 2; vi 9; vi 2; vi 9; vi 3 |];
      [| vi 2; vi 3; vi 5; vi 3; vnull; vi 4; vnull; vnull |];
      [| vnull; vi 5; vi 4; vnull; vnull; vnull; vnull; vnull |];
    |]

let section s = Printf.printf "\n===== %s =====\n" s

let () =
  section "Two consecutive nests (§4.2.1): a two-level nested relation";
  let one_level =
    N.nest ~name:"ts" ~by:[ 0; 1; 2; 3; 4; 5 ] ~keep:[ 6; 7 ]
      (N.of_flat temp1)
  in
  let two_level = N.nest ~name:"ss" ~by:[ 0; 1; 2 ] ~keep:[ 3; 4; 5 ] one_level in
  Format.printf "depth = %d@.%a@." (N.depth two_level.N.sch) N.pp two_level;

  section "Linking selection at depth 1: σ̄[S.H > ALL {T.J}]";
  (* within each ss element, H is atom 1 and the ts set's J is atom 0;
     T.L (atom 1 of ts) is the carried key marker *)
  let inner = LP.Quant (Expr.Col 1, T3.Gt, LP.All, 0) in
  let after_inner =
    L.pseudo_select_at ~path:[ 0 ] inner ~sub:0 ~marker:(Some 1)
      ~pad:[ 0; 1; 2 ] two_level
  in
  Format.printf "%a@." N.pp after_inner;

  section "Linking selection at the top: σ[R.B NOT IN {S.E}]";
  let outer = LP.Quant (Expr.Col 0, T3.Neq, LP.All, 0) in
  let final = L.select outer ~sub:0 ~marker:(Some 2) after_inner in
  Format.printf "%a@." N.pp final;

  section "Unnest round-trip";
  let renested =
    N.nest ~name:"ts" ~by:[ 0; 1; 2; 3; 4; 5 ] ~keep:[ 6; 7 ]
      (N.unnest ~sub:0 one_level)
  in
  Printf.printf "unnest ∘ nest preserved the relation: %b\n"
    (N.equal one_level renested);

  section "Grouped (physical) representation of the same nest";
  let g =
    Nested.Grouped.nest_sort
      ~by:[| 0; 1; 2; 3; 4; 5 |] ~keep:[| 6; 7 |] temp1
  in
  Format.printf "%a@." Nested.Grouped.pp g;
  Printf.printf "grouped and general models agree: %b\n"
    (N.equal (Nested.Grouped.to_nested g) one_level)
