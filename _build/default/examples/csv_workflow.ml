(* Round-tripping relations through CSV: export a query result, re-load
   it as a table, and query the derived table — the I/O path a
   downstream user of the library would take.

     dune exec examples/csv_workflow.exe *)

open Nra

let () =
  let cat =
    Tpch.Gen.generate { Tpch.Gen.default with Tpch.Gen.scale = 0.002 }
  in

  (* export the expensive orders *)
  let expensive =
    Nra.query_exn cat
      "select o_orderkey, o_custkey, o_totalprice from orders where \
       o_totalprice > 400000"
  in
  let csv = Relation.to_csv expensive in
  Printf.printf "exported %d rows, %d bytes of CSV; first lines:\n"
    (Relation.cardinality expensive)
    (String.length csv);
  String.split_on_char '\n' csv
  |> List.filteri (fun i _ -> i < 4)
  |> List.iter print_endline;

  (* re-import under a declared schema and register as a table *)
  let schema =
    [
      Schema.column "okey" Ttype.Int;
      Schema.column "cust" Ttype.Int;
      Schema.column ~not_null:true "price" Ttype.Float;
    ]
  in
  let reloaded =
    match Relation.of_csv (Schema.of_columns schema) csv with
    | Ok rel -> rel
    | Error m -> failwith m
  in
  Catalog.register cat
    (Table.create ~name:"expensive" ~key:[ "okey" ] schema
       (Relation.rows reloaded));

  (* the derived table takes part in nested queries like any other *)
  let sql =
    {|select c_name from customer
      where c_custkey in (select cust from expensive)
      order by c_name limit 5|}
  in
  Printf.printf "\ncustomers with an expensive order (first 5):\n";
  match Nra.query cat sql with
  | Ok rel -> Format.printf "%a@." Relation.pp rel
  | Error m -> prerr_endline m
