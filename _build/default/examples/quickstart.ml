(* Quickstart: build two tables, run nested queries, compare every
   evaluation strategy.

     dune exec examples/quickstart.exe *)

open Nra

let vi i = Value.Int i
let vs s = Value.String s
let vnull = Value.Null

let () =
  (* 1. create a catalog with two tables; every table needs a primary
     key (the nested relational approach carries it through outer joins
     to recognize empty subquery results) *)
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"authors" ~key:[ "aid" ]
       [
         Schema.column "aid" Ttype.Int;
         Schema.column ~not_null:true "name" Ttype.String;
         Schema.column "born" Ttype.Int;
       ]
       [|
         [| vi 1; vs "Codd"; vi 1923 |];
         [| vi 2; vs "Kim"; vnull |];
         [| vi 3; vs "Dayal"; vnull |];
         [| vi 4; vs "Muralikrishna"; vnull |];
       |]);
  Catalog.register cat
    (Table.create ~name:"papers" ~key:[ "pid" ]
       [
         Schema.column "pid" Ttype.Int;
         Schema.column "author" Ttype.Int;
         Schema.column ~not_null:true "title" Ttype.String;
         Schema.column "year" Ttype.Int;
         Schema.column "cites" Ttype.Int;
       ]
       [|
         [| vi 1; vi 1; vs "A relational model"; vi 1970; vi 10000 |];
         [| vi 2; vi 2; vs "On optimizing nested queries"; vi 1982; vi 800 |];
         [| vi 3; vi 3; vs "Of nests and trees"; vi 1987; vi 500 |];
         [| vi 4; vi 2; vs "Null semantics"; vi 1989; vnull |];
       |]);

  (* 2. run a query with a NOT EXISTS subquery *)
  let sql =
    {|select name from authors
      where not exists (select * from papers where papers.author = authors.aid)|}
  in
  print_endline "-- authors without papers:";
  (match Nra.query cat sql with
  | Ok rel -> Format.printf "%a@." Relation.pp rel
  | Error e -> prerr_endline e);

  (* 3. a negative quantified subquery over NULL-laden data: the case
     the paper is about.  Kim's NULL citation count makes the ALL
     comparison three-valued *)
  let sql =
    {|select name from authors
      where 600 < all (select cites from papers where papers.author = authors.aid)|}
  in
  print_endline "-- authors all of whose papers have > 600 citations:";
  (match Nra.query cat sql with
  | Ok rel -> Format.printf "%a@." Relation.pp rel
  | Error e -> prerr_endline e);

  (* 4. the same result from every strategy *)
  print_endline "-- every strategy agrees:";
  List.iter
    (fun (name, s) ->
      match Nra.query ~strategy:s cat sql with
      | Ok rel ->
          Format.printf "   %-14s -> %d rows@." name
            (Relation.cardinality rel)
      | Error e -> Format.printf "   %-14s -> error: %s@." name e)
    Nra.strategies;

  (* 5. inspect how the planner decomposes a nested query *)
  print_endline "-- explain:";
  match Nra.explain cat sql with
  | Ok text -> print_endline text
  | Error e -> prerr_endline e
