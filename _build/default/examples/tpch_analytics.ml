(* TPC-H scenarios: the decision-support workloads the paper's
   introduction motivates — orders whose price beats every line item,
   parts cheaper than some qualifying supplier, suppliers that never
   missed a commit date — run over generated data with per-strategy
   timing.

     dune exec examples/tpch_analytics.exe *)

open Nra

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run cat name sql =
  Printf.printf "\n### %s\n%s\n" name sql;
  List.iter
    (fun (sname, strategy) ->
      Nra_storage.Iosim.reset ();
      match time (fun () -> Nra.query ~strategy cat sql) with
      | Ok rel, dt ->
          Printf.printf "  %-14s %4d rows  cpu %6.3fs  simulated-2005 %7.2fs\n"
            sname
            (Relation.cardinality rel)
            dt
            (Nra_storage.Iosim.simulated_seconds ())
      | Error m, _ -> Printf.printf "  %-14s error: %s\n" sname m)
    Nra.strategies

let () =
  let cfg = { Tpch.Gen.default with Tpch.Gen.scale = 0.01 } in
  let cat = Tpch.Gen.generate cfg in
  Tpch.Gen.add_benchmark_indexes cat;
  Printf.printf "TPC-H at scale %.2f:" cfg.Tpch.Gen.scale;
  List.iter
    (fun t -> Printf.printf " %s=%d" (Table.name t) (Table.cardinality t))
    (Catalog.tables cat);
  print_newline ();

  (* the paper's Query 1 *)
  let lo, hi = Tpch.Queries.q1_window ~outer_fraction:0.05 in
  run cat "orders whose total price beats every delayed line item"
    (Tpch.Queries.q1 ~date_lo:lo ~date_hi:hi);

  (* the paper's Query 2b (negative, linear) *)
  run cat "parts cheaper than ALL their unsold qualifying supplies"
    (Tpch.Queries.q2 ~quant:Tpch.Queries.All ~size_lo:1 ~size_hi:15
       ~availqty_max:2000 ~quantity:25);

  (* the paper's Query 3a (tree correlation) *)
  run cat "the tree-correlated variant (inner block sees both ancestors)"
    (Tpch.Queries.q3 ~quant:Tpch.Queries.All ~exists:true
       ~variant:Tpch.Queries.A ~size_lo:1 ~size_hi:15 ~availqty_max:2000
       ~quantity:25);

  (* suppliers that never missed a commit date: NOT EXISTS over a join *)
  run cat "suppliers that never shipped after the commit date"
    {|select s_name from supplier
      where not exists
        (select * from lineitem
         where l_suppkey = s_suppkey and l_receiptdate > l_commitdate)|};

  (* a flat analytic query exercising grouping on top of a subquery *)
  run cat "order count per priority among high-value orders"
    {|select o_orderpriority, count(*) as n
      from orders
      where o_totalprice > (select avg(o_totalprice) from orders)
      group by o_orderpriority
      order by o_orderpriority|};

  (* customers in debt whose every order is urgent: mixed linking *)
  run cat "indebted customers with only urgent orders"
    {|select c_name from customer
      where c_acctbal < 0
        and '1-URGENT' = all (select o_orderpriority from orders
                              where o_custkey = c_custkey)
        and exists (select * from orders where o_custkey = c_custkey)|};

  (* the same analysis phrased with a CTE and a set operation *)
  run cat "regions that sell either very large or very small parts"
    {|with extreme as
        (select p_partkey from part where p_size >= 49
         union
         select p_partkey from part where p_size <= 2)
      select distinct r_name
      from region, nation, supplier
      where n_regionkey = r_regionkey
        and s_nationkey = n_nationkey
        and exists (select * from partsupp
                    where ps_suppkey = s_suppkey
                      and ps_partkey in (select p_partkey from extreme))|}
