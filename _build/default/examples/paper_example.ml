(* The paper's running example (Sections 2–4), step by step: base
   relations R, S, T; the unnesting outer joins (Temp1); the nest
   (Temp2); the pseudo-selection σ̄ (Temp3); the selection σ (Temp4);
   the tree expression; and the final result of Query Q.

     dune exec examples/paper_example.exe *)

open Nra
module J = Algebra.Join
module G = Nested.Grouped
module LP = Nested.Link_pred
module T3 = Three_valued

let vi i = Value.Int i
let vnull = Value.Null
let col = Schema.column

let r =
  Table.create ~name:"r" ~key:[ "d" ]
    [ col "a" Ttype.Int; col "b" Ttype.Int; col "c" Ttype.Int;
      col "d" Ttype.Int ]
    [|
      [| vi 20; vi 1; vi 2; vi 3 |];
      [| vi 30; vi 2; vi 3; vi 5 |];
      [| vnull; vnull; vi 5; vi 4 |];
    |]

let s =
  Table.create ~name:"s" ~key:[ "i" ]
    [ col "e" Ttype.Int; col "f" Ttype.Int; col "g" Ttype.Int;
      col "h" Ttype.Int; col "i" Ttype.Int ]
    [|
      [| vi 1; vi 5; vi 3; vi 8; vi 1 |];
      [| vi 2; vi 5; vi 3; vi 9; vi 2 |];
      [| vi 3; vi 5; vi 5; vnull; vi 4 |];
    |]

let t =
  Table.create ~name:"t" ~key:[ "l" ]
    [ col "j" Ttype.Int; col "k" Ttype.Int; col "l" Ttype.Int ]
    [|
      [| vi 7; vi 2; vi 1 |];
      [| vi 9; vi 2; vi 3 |];
      [| vnull; vi 4; vi 2 |];
    |]

let query_q =
  {|select r.b, r.c, r.d
from r
where r.a > 10 and r.b not in
  (select s.e from s
   where s.f = 5 and r.d = s.g and s.h > all
     (select t.j from t where t.k = r.c and t.l <> s.i))|}

let section title = Printf.printf "\n===== %s =====\n" title

let () =
  section "Base relations (Figure 1)";
  Format.printf "%a@.@.%a@.@.%a@." Table.pp r Table.pp s Table.pp t;

  section "Query Q (Section 2)";
  print_endline query_q;

  (* ---- Temp1: unnest top-down with left outer joins ---- *)
  section "Temp1 = π(R ⟕_{R.D=S.G} S ⟕_{T.K=R.C ∧ T.L≠S.I} T)";
  let rrel = Table.relation r
  and srel = Table.relation s
  and trel = Table.relation t in
  let rs_schema =
    Schema.append (Relation.schema rrel) (Relation.schema srel)
  in
  let cmp_cols sch op t1 c1 t2 c2 =
    Expr.Cmp
      (op, Expr.Col (Schema.find sch ~table:t1 c1),
       Expr.Col (Schema.find sch ~table:t2 c2))
  in
  let rs =
    J.join J.Left_outer ~on:(cmp_cols rs_schema T3.Eq "r" "d" "s" "g") rrel
      srel
  in
  let rst_schema = Schema.append rs_schema (Relation.schema trel) in
  let rst =
    J.join J.Left_outer
      ~on:
        (Expr.And
           ( cmp_cols rst_schema T3.Eq "t" "k" "r" "c",
             cmp_cols rst_schema T3.Neq "t" "l" "s" "i" ))
      rs trel
  in
  let temp1 =
    Algebra.Basic.project_cols
      (List.map
         (fun (tb, c) -> Schema.find rst_schema ~table:tb c)
         [ ("r", "b"); ("r", "c"); ("r", "d"); ("s", "e"); ("s", "h");
           ("s", "i"); ("t", "j"); ("t", "l") ])
      rst
  in
  Format.printf "%a@." Relation.pp temp1;

  (* ---- Temp2: nest ---- *)
  section "Temp2 = ν_{B,C,D,E,H,I},{J,L}(Temp1)  (Figure 2a)";
  let p tb c = Schema.find (Relation.schema temp1) ~table:tb c in
  let temp2 =
    G.nest_sort
      ~by:[| p "r" "b"; p "r" "c"; p "r" "d"; p "s" "e"; p "s" "h";
             p "s" "i" |]
      ~keep:[| p "t" "j"; p "t" "l" |]
      temp1
  in
  Format.printf "%a@." G.pp temp2;

  (* ---- Temp3 / Temp4: the two linking selections ---- *)
  let all_pred =
    LP.Quant
      (Expr.Col (Schema.find temp2.G.key_schema ~table:"s" "h"),
       T3.Gt, LP.All, 0)
  in
  let marker = Some (Schema.find temp2.G.elem_schema ~table:"t" "l") in
  section "Temp3 = σ̄_{S.H>ALL{T.J}, pad {S.E,S.H,S.I}}(Temp2)  (Figure 2b)";
  let pad =
    Array.of_list
      (List.map
         (fun c -> Schema.find temp2.G.key_schema ~table:"s" c)
         [ "e"; "h"; "i" ])
  in
  Format.printf "%a@." Relation.pp (G.pseudo_select all_pred ~marker ~pad temp2);
  section "Temp4 = σ_{S.H>ALL{T.J}}(Temp2)  (Figure 2c)";
  Format.printf "%a@." Relation.pp (G.select all_pred ~marker temp2);

  (* ---- the planner's tree expression and the full evaluation ---- *)
  let cat = Catalog.create () in
  List.iter (Catalog.register cat) [ r; s; t ];
  section "Tree expression (Figure 3a)";
  (match Nra.explain cat query_q with
  | Ok text -> print_endline text
  | Error e -> prerr_endline e);

  section "Query Q under every strategy";
  List.iter
    (fun (name, strat) ->
      match Nra.query ~strategy:strat cat query_q with
      | Ok rel ->
          Format.printf "--- %s:@.%a@." name Relation.pp rel
      | Error e -> Format.printf "--- %s: error %s@." name e)
    Nra.strategies
