open Nra_relational
open Nra_planner
module A = Analyze
module R = Resolved
module T3 = Three_valued
module J = Nra_algebra.Join
module Ast = Nra_sql.Ast

type options = {
  pipelined : bool;
  nest_impl : [ `Sort | `Hash ];
  bottom_up_linear : bool;
  push_down_nest : bool;
  positive_simplify : bool;
}

let original =
  {
    pipelined = false;
    nest_impl = `Sort;
    bottom_up_linear = false;
    push_down_nest = false;
    positive_simplify = false;
  }

let optimized = { original with pipelined = true }

let full =
  {
    pipelined = true;
    nest_impl = `Sort;
    bottom_up_linear = true;
    push_down_nest = true;
    positive_simplify = true;
  }

(* ---------- per-site rewrite directives ----------

   The optimizer (nra.opt) speaks to this executor through per-child
   directives keyed by block id: which of the five linking
   implementations to run at that site, and — for the join+nest paths —
   whether the nest is pipelined and whether its input may be assumed
   already key-sorted (adjacent-nest fusion).  [n_assume_sorted] is a
   hint, not a command: it is honored only when the executor's own
   sorted-prefix tracking agrees at runtime, so a wrong hint degrades to
   the unfused plan instead of to wrong groups.  A block with no
   directive (or a directive whose structural preconditions do not hold
   here) falls back to the options-driven decision chain, which is
   byte-identical to the pre-directive executor. *)

type nest_directive = { n_pipelined : bool; n_assume_sorted : bool }

type link_impl =
  | D_shared_set
  | D_push_down
  | D_semijoin
  | D_bottom_up of nest_directive
  | D_top_down of nest_directive

type directives = (int * link_impl) list

type stats = {
  mutable peak_intermediate_rows : int;
  mutable total_intermediate_rows : int;
  mutable nest_select_seconds : float;
  mutable join_seconds : float;
}

let now () = Unix.gettimeofday ()

(* ---------- structural checks ---------- *)

let self_contained = A.self_contained
let equi_correlation = A.equi_correlation

let block_positions schema (blk : A.block) =
  let uids = A.block_uids blk in
  let acc = ref [] in
  Array.iteri
    (fun i (c : Schema.column) ->
      if List.mem c.Schema.table uids then acc := i :: !acc)
    (Schema.columns schema);
  Array.of_list (List.rev !acc)

(* ---------- nest + linking selection ---------- *)

type mode = Discard | Pad of int array

let apply_mode mode verdict key elems out =
  match mode with
  | Discard -> if T3.to_bool (verdict key elems) then key :: out else out
  | Pad pad ->
      if T3.to_bool (verdict key elems) then key :: out
      else begin
        let padded = Array.copy key in
        Array.iter (fun i -> padded.(i) <- Value.Null) pad;
        padded :: out
      end

(* The staging relation holds the nest-by attributes as a prefix and the
   keep columns after them; [nest_select] computes υ followed by the
   linking selection, either as two materialized passes (original) or
   fused into one group scan over sorted input (optimized). *)
let nest_select opts ?flags st ~key_schema ~keep ~verdict ~mode ~sorted wide =
  let t0 = now () in
  (* a directive overrides the options: a fused nest ([n_assume_sorted]
     confirmed by the runtime [sorted] flag) takes the single-pass run
     scan, which on key-sorted input produces exactly the groups (and
     group order) the materialized nest would *)
  let pipelined =
    match flags with
    | Some f -> f.n_pipelined || (f.n_assume_sorted && sorted)
    | None -> opts.pipelined
  in
  let key_arity = Schema.arity key_schema in
  let prefix =
    List.init key_arity (fun i -> (Expr.Col i, Schema.col key_schema i))
  in
  let staging = Nra_algebra.Basic.project_exprs (prefix @ keep) wide in
  let by = Array.init key_arity Fun.id in
  let keep_pos =
    Array.init (List.length keep) (fun i -> key_arity + i)
  in
  (* the pre-nest flat staging is governed: charged to the memory
     ledger and routed through a spill partition when it would not fit
     the frame budget (byte-identical either way) *)
  let result, emitted_sorted =
    Nra_storage.Governor.with_staged ~label:"nest-staging" staging
    @@ fun staging ->
    if not pipelined then begin
      (* original: materialize the nested relation, then select *)
      let grouped =
        match opts.nest_impl with
        | `Sort -> Nra_nested.Grouped.nest_sort ~by ~keep:keep_pos staging
        | `Hash -> Nra_nested.Grouped.nest_hash ~by ~keep:keep_pos staging
      in
      let out = ref [] in
      Array.iter
        (fun (key, elems) ->
          Nra_guard.Guard.tick ();
          out := apply_mode mode verdict key (Array.to_list elems) !out)
        grouped.Nra_nested.Grouped.groups;
      (Relation.of_rows key_schema (List.rev !out), opts.nest_impl = `Sort)
    end
    else begin
      (* optimized: single pass over (at most once re-)sorted input; the
         run scan needs adjacent groups, so sortedness is mandatory *)
      let staging =
        if sorted then staging else Relation.sort_by by staging
      in
      let rows = Relation.rows staging in
      let n = Array.length rows in
      let out = ref [] in
      let i = ref 0 in
      while !i < n do
        Nra_guard.Guard.tick ();
        let start = !i in
        let key = Row.project_arr rows.(start) by in
        let elems = ref [] in
        while !i < n && Row.equal_on by rows.(start) rows.(!i) do
          elems := Row.project_arr rows.(!i) keep_pos :: !elems;
          incr i
        done;
        out := apply_mode mode verdict key (List.rev !elems) !out
      done;
      (Relation.of_rows key_schema (List.rev !out), true)
    end
  in
  st.nest_select_seconds <- st.nest_select_seconds +. (now () -. t0);
  (result, emitted_sorted)

(* ---------- the recursive driver ---------- *)

(* Site positivity: JA children (scalar_agg present) are never positive
   — an empty group aggregates to a value, so it must reach the linking
   selection instead of being discarded by σ or a semijoin. *)
let is_positive_site = A.child_positive

(* Allocation-pressure injection fires where a real row-budget
   exhaustion would: as an intermediate materializes under a finite row
   budget.  (A budget of [max_int] rows is effectively unlimited —
   benchmarks use it to measure pure checkpoint overhead — so it cannot
   "exhaust".)  The kill is the guard's own, so the unwind, the
   structured error, and Auto's fallback protocol are identical to the
   organic case. *)
let inject_alloc_pressure () =
  match Nra_guard.Guard.active () with
  | Some { Nra_guard.Guard.max_rows = Some m; _ }
    when m < max_int && Nra_storage.Fault.alloc_should_fail () ->
      raise
        (Nra_guard.Guard.Killed
           (Nra_guard.Guard.Budget_exceeded Nra_guard.Guard.Rows))
  | _ -> ()

let record_intermediate st rel =
  let n = Relation.cardinality rel in
  st.total_intermediate_rows <- st.total_intermediate_rows + n;
  if n > st.peak_intermediate_rows then st.peak_intermediate_rows <- n;
  inject_alloc_pressure ();
  Nra_guard.Guard.add_rows n;
  (* the stored-procedure setting of the paper's Section 5.1 pays a
     per-tuple cost to fetch the intermediate result from the engine *)
  Nra_storage.Fault.with_retries (fun () ->
      Nra_storage.Iosim.charge_fetch_rows n)

(* Per-row application of a linking predicate whose element set comes
   from a closure (virtual-cartesian-product and push-down paths). *)
let rowwise mode verdict elems_of rel =
  let out = ref [] in
  Array.iter
    (fun row ->
      Nra_guard.Guard.tick ();
      out := apply_mode mode verdict row (elems_of row) !out)
    (Relation.rows rel);
  Relation.of_rows (Relation.schema rel) (List.rev !out)

(* The five linking-site implementations, as a closed choice: the
   options-driven decision chain picks one (exactly as it always has),
   and a rewrite directive can pick one directly when its structural
   preconditions hold at this site. *)
type site_pick =
  | P_shared
  | P_push of (R.rcol * R.rexpr) list
  | P_semi
  | P_bottom of nest_directive option
  | P_top of nest_directive option

let rec process cat t opts dirs st ~discard_ok (rel, sorted_prefix)
    (p : A.block) =
  List.fold_left
    (fun acc c ->
      apply_child cat t opts dirs st ~discard_ok ~parent:p acc c)
    (rel, sorted_prefix) p.A.children

and reduce_standalone cat t opts dirs st (b : A.block) : Relation.t =
  let rel = Frame.block_relation b in
  let rel', _ = process cat t opts dirs st ~discard_ok:true (rel, 0) b in
  rel'

and apply_child cat t opts dirs st ~discard_ok ~parent (rel, sorted_prefix)
    (c : A.child) =
  let b = c.A.block in
  let key_schema = Relation.schema rel in
  let key_arity = Schema.arity key_schema in
  let mode =
    if discard_ok then Discard else Pad (block_positions key_schema parent)
  in
  let contained = self_contained b in
  let sp_after_select =
    match mode with
    | Discard -> key_arity
    | Pad _ -> key_arity - Array.length (block_positions key_schema parent)
  in
  let semi_ok =
    b.A.children = [] && discard_ok
    && is_positive_site c
    && b.A.correlated <> []
  in
  let legacy_pick () =
    if contained && b.A.correlated = [] then P_shared
    else
      match (opts.push_down_nest && contained, equi_correlation b) with
      | true, Some pairs -> P_push pairs
      | _ ->
          if opts.positive_simplify && semi_ok then P_semi
          else if opts.bottom_up_linear && contained then P_bottom None
          else P_top None
  in
  let pick =
    match List.assoc_opt b.A.id dirs with
    | Some D_shared_set when contained && b.A.correlated = [] -> P_shared
    | Some D_push_down when contained -> (
        match equi_correlation b with
        | Some pairs -> P_push pairs
        | None -> legacy_pick ())
    | Some D_semijoin when semi_ok -> P_semi
    | Some (D_bottom_up nf) when contained -> P_bottom (Some nf)
    | Some (D_top_down nf) -> P_top (Some nf)
    | _ -> legacy_pick ()
  in
  match pick with
  | P_shared ->
      (* virtual Cartesian product: the subquery is evaluated once and
         its value set shared by every outer tuple *)
      let child_red = reduce_standalone cat t opts dirs st b in
      let keep, verdict =
        Linkeval.verdict_and_keep ~key_schema
          ~wide_schema:(Relation.schema child_red) ~with_marker:false c
      in
      let elems =
        Array.to_list (Relation.rows child_red)
        |> List.map (fun row ->
               Array.of_list
                 (List.map (fun (s, _) -> Expr.eval_scalar row s) keep))
      in
      let rel' = rowwise mode verdict (fun _ -> elems) rel in
      (rel', min sorted_prefix sp_after_select)
  | P_push pairs ->
      (* §4.2.4: group the reduced child by its correlation key once;
         probe per outer tuple *)
      let child_red = reduce_standalone cat t opts dirs st b in
      let cschema = Relation.schema child_red in
      let keep, verdict =
        Linkeval.verdict_and_keep ~key_schema ~wide_schema:cschema
          ~with_marker:false c
      in
      let child_keys =
        Array.of_list
          (List.map (fun (col, _) -> Frame.to_scalar cschema (R.RCol col))
             pairs)
      in
      let outer_keys =
        Array.of_list
          (List.map (fun (_, e) -> Frame.to_scalar key_schema e) pairs)
      in
      let tbl : Row.t list ref Row.Tbl.t =
        Row.Tbl.create (max 16 (Relation.cardinality child_red))
      in
      Array.iter
        (fun row ->
          let key = Array.map (Expr.eval_scalar row) child_keys in
          if not (Array.exists Value.is_null key) then begin
            let elem =
              Array.of_list
                (List.map (fun (s, _) -> Expr.eval_scalar row s) keep)
            in
            match Row.Tbl.find_opt tbl key with
            | Some cell -> cell := elem :: !cell
            | None -> Row.Tbl.add tbl key (ref [ elem ])
          end)
        (Relation.rows child_red);
      let elems_of outer_row =
        let key = Array.map (Expr.eval_scalar outer_row) outer_keys in
        if Array.exists Value.is_null key then []
        else
          match Row.Tbl.find_opt tbl key with
          | Some cell -> List.rev !cell
          | None -> []
      in
      let rel' = rowwise mode verdict elems_of rel in
      (rel', min sorted_prefix sp_after_select)
  | P_semi ->
      (* §4.2.5: σ_{AθSOME{B}}(υ(R ⟕_C S)) = R ⋉_{C ∧ AθB} S *)
      let child_rel = Frame.block_relation b in
      let concat = Schema.append key_schema (Relation.schema child_rel) in
      let corr = Frame.to_pred concat b.A.correlated in
      let on =
        match (c.A.link, b.A.linked_attr) with
        | A.L_exists, _ -> corr
        | A.L_in a, Some e ->
            Expr.And
              (corr,
               Expr.Cmp (T3.Eq, Frame.to_scalar concat a,
                         Frame.to_scalar concat e))
        | A.L_quant (a, op, `Any), Some e ->
            Expr.And
              (corr,
               Expr.Cmp (op, Frame.to_scalar concat a,
                         Frame.to_scalar concat e))
        | _ -> assert false
      in
      let t0 = now () in
      let rel' = J.join J.Semi ~on rel child_rel in
      st.join_seconds <- st.join_seconds +. (now () -. t0);
      (rel', sorted_prefix) (* semijoin preserves left order *)
  | P_bottom flags ->
      (* §4.2.3: reduce the subquery standalone, then one outer join
         and one nest+selection at this level *)
      let child_red = reduce_standalone cat t opts dirs st b in
      join_nest_select cat t opts dirs st ?flags ~mode ~sorted_prefix
        ~sp_after_select rel c child_red ~recurse:false
  | P_top flags ->
      (* Algorithm 1, general top-down case *)
      let child_rel = Frame.block_relation b in
      join_nest_select cat t opts dirs st ?flags ~mode ~sorted_prefix
        ~sp_after_select rel c child_rel ~recurse:true

and join_nest_select cat t opts dirs st ?flags ~mode ~sorted_prefix
    ~sp_after_select rel (c : A.child) child_rel ~recurse =
  let b = c.A.block in
  let key_schema = Relation.schema rel in
  let concat = Schema.append key_schema (Relation.schema child_rel) in
  let t0 = now () in
  let wide =
    if b.A.correlated = [] then
      (* genuine Cartesian product is required when the subquery is
         correlated deeper down but not at this level *)
      J.nested_loop J.Left_outer ~on:Expr.true_ rel child_rel
    else
      J.join J.Left_outer
        ~on:(Frame.to_pred concat b.A.correlated)
        rel child_rel
  in
  st.join_seconds <- st.join_seconds +. (now () -. t0);
  record_intermediate st wide;
  let wide, wide_sorted_prefix =
    if recurse then
      process cat t opts dirs st
        ~discard_ok:(mode = Discard && is_positive_site c)
        (wide, sorted_prefix) b
    else (wide, sorted_prefix)
  in
  let keep, verdict =
    Linkeval.verdict_and_keep ~key_schema ~wide_schema:(Relation.schema wide)
      ~with_marker:true c
  in
  let rel', emitted_sorted =
    (* the wide join product stays live while its staging is projected
       and nested — charge it for that extent so the governor's
       high-water mark reflects both *)
    Nra_storage.Governor.with_charged
      ~rows:(Relation.cardinality wide)
      ~width:(Schema.arity (Relation.schema wide))
      (fun () ->
        nest_select opts ?flags st ~key_schema ~keep ~verdict ~mode
          ~sorted:(wide_sorted_prefix >= Schema.arity key_schema)
          wide)
  in
  (rel', if emitted_sorted then sp_after_select else 0)

(* ---------- entry points ---------- *)

let run_where ?(options = optimized) ?(directives = []) cat (t : A.t) =
  let st =
    {
      peak_intermediate_rows = 0;
      total_intermediate_rows = 0;
      nest_select_seconds = 0.0;
      join_seconds = 0.0;
    }
  in
  let rel = Frame.block_relation t.A.root in
  let rel', _ =
    process cat t options directives st ~discard_ok:true (rel, 0) t.A.root
  in
  (rel', st)

let run ?options ?directives cat t =
  let rel, _ = run_where ?options ?directives cat t in
  Post.apply t.A.output rel

(* ---------- plan rendering (no execution) ---------- *)

let plan_description ?(options = optimized) (t : A.t) =
  let buf = Buffer.create 256 in
  let line depth fmt =
    Format.kasprintf
      (fun s ->
        Buffer.add_string buf (String.make (2 * depth) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let conds cs =
    String.concat " ∧ " (List.map (Format.asprintf "%a" R.pp_cond) cs)
  in
  let block_label (b : A.block) =
    let base =
      String.concat " ⨯ "
        (List.map (fun (bd : A.binding) -> bd.A.uid) b.A.bindings)
    in
    if b.A.local <> [] then Printf.sprintf "σ[%s](%s)" (conds b.A.local) base
    else base
  in
  let link_str (c : A.child) =
    (* a JA site compares against the per-group aggregate, not the raw
       element set — make that visible in the rendered plan *)
    let set =
      match c.A.block.A.scalar_agg with
      | Some (f, _) -> Printf.sprintf "{%s(…)}" (A.agg_name f)
      | None -> "{…}"
    in
    match c.A.link with
    | A.L_exists -> "EXISTS"
    | A.L_not_exists -> "NOT EXISTS"
    | A.L_in e -> Format.asprintf "%a IN %s" R.pp_expr e set
    | A.L_not_in e -> Format.asprintf "%a NOT IN %s" R.pp_expr e set
    | A.L_quant (e, op, q) ->
        Format.asprintf "%a %s %s %s" R.pp_expr e (T3.cmpop_to_string op)
          (match q with `Any -> "ANY" | `All -> "ALL")
          set
    | A.L_scalar (e, op) ->
        Format.asprintf "%a %s scalar%s" R.pp_expr e (T3.cmpop_to_string op)
          set
  in
  let sel_str ~discard_ok (c : A.child) =
    if discard_ok then Format.sprintf "σ[%s]" (link_str c)
    else Format.sprintf "σ̄[%s] (pad the owning block)" (link_str c)
  in
  let rec walk depth ~discard_ok ~frame (p : A.block) =
    List.iter
      (fun (c : A.child) ->
        let b = c.A.block in
        let contained = self_contained b in
        if contained && b.A.correlated = [] then begin
          line depth "· subquery T%d is uncorrelated: evaluate once" b.A.id;
          walk (depth + 1) ~discard_ok:true ~frame:(block_label b) b;
          line depth "%s, against the shared value set" (sel_str ~discard_ok c)
        end
        else if options.push_down_nest && contained
                && equi_correlation b <> None then begin
          line depth "· §4.2.4 push-down: reduce T%d standalone" b.A.id;
          walk (depth + 1) ~discard_ok:true ~frame:(block_label b) b;
          line depth "group T%d by [%s]; probe per outer tuple; %s" b.A.id
            (conds b.A.correlated) (sel_str ~discard_ok c)
        end
        else if options.positive_simplify && b.A.children = [] && discard_ok
                && is_positive_site c
                && b.A.correlated <> [] then
          line depth "· §4.2.5: %s ⋉[%s ∧ %s] %s" frame
            (conds b.A.correlated) (link_str c) (block_label b)
        else if options.bottom_up_linear && contained then begin
          line depth "· §4.2.3 bottom-up: reduce T%d standalone" b.A.id;
          walk (depth + 1) ~discard_ok:true ~frame:(block_label b) b;
          line depth "%s ⟕[%s] T%d; ν by frame keep {linked, key#}; %s" frame
            (conds b.A.correlated) b.A.id (sel_str ~discard_ok c)
        end
        else begin
          let frame' = frame ^ " ⟕ " ^ block_label b in
          line depth "%s ⟕[%s] %s" frame
            (if b.A.correlated = [] then "⨯"
             else conds b.A.correlated)
            (block_label b);
          walk (depth + 1)
            ~discard_ok:(discard_ok && is_positive_site c)
            ~frame:frame' b;
          line depth "ν by {%s …} keep {linked T%d attrs, %s#}; %s%s" frame
            b.A.id
            (Format.asprintf "%a" R.pp_expr (R.RCol b.A.marker))
            (sel_str ~discard_ok c)
            (if options.pipelined then " (pipelined)" else "")
        end)
      p.A.children
  in
  line 0 "T1 := %s" (block_label t.A.root);
  walk 0 ~discard_ok:true ~frame:"T1" t.A.root;
  Buffer.contents buf
