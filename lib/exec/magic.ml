open Nra_relational
open Nra_planner
module A = Analyze
module T3 = Three_valued

(* A small hash multimap from key rows to accumulated values, used for
   both the magic set (unit values) and the grouped inner result. *)
module Keyed = struct
  type 'a t = (int, Row.t * 'a list ref) Hashtbl.t

  let create n : 'a t = Hashtbl.create (max 16 n)

  let find (t : 'a t) key =
    Hashtbl.find_all t (Row.hash key)
    |> List.find_opt (fun (k, _) -> Row.equal k key)

  let add (t : 'a t) key v =
    match find t key with
    | Some (_, cell) -> cell := v :: !cell
    | None -> Hashtbl.add t (Row.hash key) (key, ref [ v ])

  let mem (t : 'a t) key = find t key <> None

  let get (t : 'a t) key =
    match find t key with Some (_, cell) -> List.rev !cell | None -> []
end

let magic_applicable (c : A.child) =
  let b = c.A.block in
  A.self_contained b && A.equi_correlation b <> None

(* Decide the children of block [p] over relation [rel] (whose schema is
   [p]'s frame).  Failing rows are discarded: this executor evaluates
   strictly bottom-up, so at every level "the qualifying rows of the
   block" is exactly the set the enclosing level needs. *)
let rec apply_children cat t rel (p : A.block) =
  List.fold_left (fun rel c -> apply_child cat t rel c) rel p.A.children

and apply_child cat t rel (c : A.child) =
  let b = c.A.block in
  let key_schema = Relation.schema rel in
  match (magic_applicable c, A.equi_correlation b) with
  | true, Some pairs ->
      let outer_keys =
        Array.of_list
          (List.map (fun (_, e) -> Frame.to_scalar key_schema e) pairs)
      in
      (* 1. the magic set: distinct correlation keys of the outer *)
      let magic = Keyed.create (Relation.cardinality rel) in
      Array.iter
        (fun row ->
          Nra_guard.Guard.tick ();
          let key = Array.map (Expr.eval_scalar row) outer_keys in
          if not (Array.exists Value.is_null key) then
            if not (Keyed.mem magic key) then Keyed.add magic key ())
        (Relation.rows rel);
      (* 2. restrict the inner block by the magic set, then reduce its
         own subqueries on the restricted relation *)
      let child_rel = Frame.block_relation b in
      let cschema = Relation.schema child_rel in
      let child_keys =
        Array.of_list
          (List.map
             (fun ((col : Resolved.rcol), _) ->
               Frame.to_scalar cschema (Resolved.RCol col))
             pairs)
      in
      let restricted =
        Relation.filter
          (fun row ->
            Nra_guard.Guard.tick ();
            let key = Array.map (Expr.eval_scalar row) child_keys in
            (not (Array.exists Value.is_null key)) && Keyed.mem magic key)
          child_rel
      in
      let reduced = apply_children cat t restricted b in
      (* 3. group by the correlation key and decide per outer tuple *)
      let keep, verdict =
        Linkeval.verdict_and_keep ~key_schema ~wide_schema:cschema
          ~with_marker:false c
      in
      let groups = Keyed.create (Relation.cardinality reduced) in
      Array.iter
        (fun row ->
          Nra_guard.Guard.tick ();
          let key = Array.map (Expr.eval_scalar row) child_keys in
          if not (Array.exists Value.is_null key) then
            Keyed.add groups key
              (Array.of_list
                 (List.map (fun (s, _) -> Expr.eval_scalar row s) keep)))
        (Relation.rows reduced);
      Relation.filter
        (fun row ->
          Nra_guard.Guard.tick ();
          let key = Array.map (Expr.eval_scalar row) outer_keys in
          let elems =
            if Array.exists Value.is_null key then [] else Keyed.get groups key
          in
          T3.to_bool (verdict row elems))
        rel
  | _ ->
      (* no equality correlation (or an escaping reference): nested
         iteration, as the technique's relational formulations do *)
      let k = Naive.compile cat t key_schema c in
      Relation.filter (fun row -> T3.to_bool (k row)) rel

let run_where cat (t : A.t) =
  apply_children cat t (Frame.block_relation t.A.root) t.A.root

let run cat t = Post.apply t.A.output (run_where cat t)

let magic_set_sizes _cat (t : A.t) =
  let acc = ref [] in
  let rec go rel (p : A.block) =
    List.iter
      (fun (c : A.child) ->
        let b = c.A.block in
        match (magic_applicable c, A.equi_correlation b) with
        | true, Some pairs ->
            let key_schema = Relation.schema rel in
            let outer_keys =
              Array.of_list
                (List.map (fun (_, e) -> Frame.to_scalar key_schema e) pairs)
            in
            let magic = Keyed.create 64 in
            Array.iter
              (fun row ->
                let key = Array.map (Expr.eval_scalar row) outer_keys in
                if not (Array.exists Value.is_null key) then
                  if not (Keyed.mem magic key) then Keyed.add magic key ())
              (Relation.rows rel);
            acc := (b.A.id, Hashtbl.length magic) :: !acc;
            go (Frame.block_relation ~charge:false b) b
        | _ -> ())
      p.A.children
  in
  go (Frame.block_relation ~charge:false t.A.root) t.A.root;
  List.rev !acc
