open Nra_relational
open Nra_storage
open Nra_planner

exception Unsupported of string

let to_scalar schema e =
  try Resolved.to_scalar schema e
  with Resolved.Unbound c ->
    raise (Unsupported (Printf.sprintf "column %s not in frame" c))

let to_pred schema conds =
  try Expr.fold_pred (Expr.conj (List.map (Resolved.to_pred schema) conds))
  with Resolved.Unbound c ->
    raise (Unsupported (Printf.sprintf "column %s not in frame" c))

let cond_uids c =
  List.sort_uniq String.compare
    (List.map (fun rc -> rc.Resolved.uid) (Resolved.cond_cols c))

let applicable ~uids c =
  List.for_all (fun u -> List.mem u uids) (cond_uids c)

(* Scan charges are chunked, with a checkpoint between chunks: a
   monolithic [charge_scan_rows] for a large table would make the whole
   scan one atomic slice — budgets would only be checked (and the
   scheduler could only preempt) once per table.  Chunks are whole
   pages, so the page total (and therefore the charge) is identical to
   the single-call form. *)
let scan_chunk_pages = 8

(* When the buffer pool is enabled and the scan has a table identity,
   the scan goes through the pool page by page: resident pages are
   free, misses are charged page-ins.  This is what makes rescans of a
   small inner table cheap under the paper's 32 MB cache — and
   thrashing visible when the budget is tiny.  Without a pool (the
   default) the charge is the flat sequential form it always was. *)
let charge_scan_chunked ?table n =
  match (Bufpool.frames (), table) with
  | Some _, Some name ->
      let npages = Iosim.pages n in
      for p = 0 to npages - 1 do
        Bufpool.read ("t:" ^ name, p);
        if p mod scan_chunk_pages = scan_chunk_pages - 1 then
          Nra_guard.Guard.tick ()
      done;
      Nra_guard.Guard.tick ()
  | _ ->
      let per = scan_chunk_pages * (Iosim.config ()).Iosim.rows_per_page in
      let rec go remaining =
        if remaining > 0 then begin
          Fault.with_retries (fun () ->
              Iosim.charge_scan_rows (min per remaining));
          Nra_guard.Guard.tick ();
          go (remaining - per)
        end
      in
      go n

let block_relation ?(charge = true) (b : Analyze.block) =
  Nra_guard.Guard.tick ();
  if charge then
    List.iter
      (fun (bd : Analyze.binding) ->
        charge_scan_chunked
          ~table:(Table.name bd.Analyze.table)
          (Table.cardinality bd.Analyze.table))
      b.Analyze.bindings;
  (* columnar batches are built once per base relation, at scan time;
     the kernels downstream pick them up from the cache (columns fill
     lazily, on the owning domain, as kernels force them) *)
  List.iter
    (fun (bd : Analyze.binding) ->
      Batch.prime (Table.relation bd.Analyze.table))
    b.Analyze.bindings;
  let pending = ref b.Analyze.local in
  let take uids =
    let now, later = List.partition (applicable ~uids) !pending in
    pending := later;
    now
  in
  match b.Analyze.bindings with
  | [] -> invalid_arg "block_relation: no bindings"
  | first :: rest ->
      let rel = ref (Table.relation first.Analyze.table) in
      let uids = ref [ first.Analyze.uid ] in
      let conds = take !uids in
      if conds <> [] then
        rel := Nra_algebra.Basic.select (to_pred (Relation.schema !rel) conds) !rel;
      List.iter
        (fun (bd : Analyze.binding) ->
          uids := bd.Analyze.uid :: !uids;
          let joined_schema =
            Schema.append (Relation.schema !rel)
              (Relation.schema (Table.relation bd.Analyze.table))
          in
          let conds = take !uids in
          rel :=
            Nra_algebra.Join.join Nra_algebra.Join.Inner
              ~on:(to_pred joined_schema conds)
              !rel
              (Table.relation bd.Analyze.table))
        rest;
      assert (!pending = []);
      !rel

let single_binding (b : Analyze.block) =
  match b.Analyze.bindings with [ bd ] -> Some bd | _ -> None
