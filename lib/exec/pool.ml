module Guard = Nra_guard.Guard
module Iosim = Nra_storage.Iosim

(* ---------- worker-local ledgers ---------- *)

module Ledger = struct
  type t = {
    mutable ticks : int;
    mutable rows : int;
    mutable seq_pages : int;
    mutable rand_pages : int;
    mutable fetched_rows : int;
    mutable spills : Nra_storage.Bufpool.Spill.t list;
        (* partitions this chunk consumed via Spill.iter_raw, newest
           first; ownership transfers to the owner at the barrier *)
  }

  let create () =
    {
      ticks = 0;
      rows = 0;
      seq_pages = 0;
      rand_pages = 0;
      fetched_rows = 0;
      spills = [];
    }

  let tick l = l.ticks <- l.ticks + 1
  let add_rows l n = l.rows <- l.rows + n

  (* record a spill partition fully consumed by this chunk (with
     [Bufpool.Spill.iter_raw], which neither charges nor draws); the
     owner replays its page reads and frees it at the join barrier *)
  let consumed_spill l sp = l.spills <- sp :: l.spills
end

(* ---------- sizing knobs ---------- *)

let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let default_size () = max 0 (Domain.recommended_domain_count () - 1)

let requested_size : int option ref =
  ref (Option.map (max 0) (env_int "NRA_DOMAINS"))

let size () =
  match !requested_size with Some n -> n | None -> default_size ()

let threshold =
  ref (match env_int "NRA_PARALLEL_THRESHOLD" with
      | Some n when n > 0 -> n
      | _ -> 256)

let parallel_threshold () = !threshold
let set_parallel_threshold n = threshold := max 1 n

let morsel_size =
  ref (match env_int "NRA_MORSEL" with Some n when n > 0 -> n | _ -> 1024)

let morsel () = !morsel_size
let set_morsel n = morsel_size := max 1 n

let executors () = if size () = 0 then 1 else size () + 1
let use_parallel n = executors () > 1 && n >= !threshold

(* ---------- the pool ----------

   Workers live across regions: they block on a condition variable
   until the owner publishes a region, drain its chunk cursor, and go
   back to sleep.  A region is a fresh heap object, so "have I already
   drained this one?" is physical equality on the worker's last-seen
   region.  Publication of the region (and of the input arrays the
   chunk closure captured) is ordered by the mutex; the owner reads the
   result slots only after the completion count says every chunk
   finished, which it observes under the same mutex. *)

type region = {
  count : int;
  run : int -> unit;  (* must not raise: errors land in the caller's slots *)
  cursor : int Atomic.t;
  completed : int Atomic.t;
}

let lock = Mutex.create ()
let work_cv = Condition.create ()
let done_cv = Condition.create ()
let current_region : region option ref = ref None
let stopping = ref false
let workers : unit Domain.t list ref = ref []
let exit_hook = ref false

let drain r =
  let rec go () =
    let i = Atomic.fetch_and_add r.cursor 1 in
    if i < r.count then begin
      r.run i;
      let finished = 1 + Atomic.fetch_and_add r.completed 1 in
      if finished = r.count then begin
        Mutex.lock lock;
        Condition.broadcast done_cv;
        Mutex.unlock lock
      end;
      go ()
    end
  in
  go ()

let worker_body () =
  let last : region option ref = ref None in
  let rec loop () =
    Mutex.lock lock;
    let rec await () =
      if !stopping then None
      else
        match !current_region with
        | Some r when (match !last with Some l -> l != r | None -> true) ->
            Some r
        | _ ->
            Condition.wait work_cv lock;
            await ()
    in
    let job = await () in
    Mutex.unlock lock;
    match job with
    | None -> ()
    | Some r ->
        last := Some r;
        drain r;
        loop ()
  in
  loop ()

let shutdown () =
  match !workers with
  | [] -> ()
  | ds ->
      Mutex.lock lock;
      stopping := true;
      Condition.broadcast work_cv;
      Mutex.unlock lock;
      List.iter Domain.join ds;
      workers := [];
      stopping := false

let set_size n =
  requested_size := Some (max 0 n);
  shutdown ()

(* Spawn lazily, first region only; a failed spawn (fd/thread limits)
   degrades the pool rather than the query. *)
let ensure_workers () =
  let target = size () in
  if List.length !workers <> target then begin
    shutdown ();
    if not !exit_hook then begin
      exit_hook := true;
      at_exit shutdown
    end;
    (try
       for _ = 1 to target do
         workers := Domain.spawn worker_body :: !workers
       done
     with _ -> ())
  end;
  List.length !workers

(* ---------- fork-join ---------- *)

let in_region = ref false (* owner-side: a chunk closure re-entering *)

let merge_ledgers ledgers =
  (* spill-file ownership merges first: replay every consumed
     partition's page reads owner-side, in chunk order then
     consumption order — the same deterministic sequence at every pool
     size (this is the only fault-drawing part of the merge) *)
  Array.iter
    (fun (l : Ledger.t) ->
      List.iter Nra_storage.Bufpool.Spill.account_consumed
        (List.rev l.spills);
      l.spills <- [])
    ledgers;
  let ticks = ref 0
  and rows = ref 0
  and seq = ref 0
  and rand = ref 0
  and fetched = ref 0 in
  Array.iter
    (fun (l : Ledger.t) ->
      ticks := !ticks + l.ticks;
      rows := !rows + l.rows;
      seq := !seq + l.seq_pages;
      rand := !rand + l.rand_pages;
      fetched := !fetched + l.fetched_rows)
    ledgers;
  if !seq <> 0 || !rand <> 0 || !fetched <> 0 then
    Iosim.absorb
      { Iosim.seq_pages = !seq; rand_pages = !rand; fetched_rows = !fetched };
  Guard.absorb ~ticks:!ticks ~rows:!rows

let chunk_count ~min_chunk ~n nexec =
  let by_size = (n + min_chunk - 1) / min_chunk in
  max 1 (min by_size (max nexec (4 * nexec)))

let bounds ~n ~chunks i =
  (i * n / chunks, (i + 1) * n / chunks)

let parallel_chunks ?min_chunk ~n f =
  if n <= 0 then [||]
  else begin
    let min_chunk = match min_chunk with Some m -> max 1 m | None -> !morsel_size in
    Guard.recheck ();
    let cancel =
      match Guard.active () with
      | Some b -> b.Guard.cancel_on
      | None -> None
    in
    let cancelled () =
      match cancel with Some t -> Guard.cancelled t | None -> false
    in
    let nworkers =
      if size () = 0 || !in_region then 0 else ensure_workers ()
    in
    let chunks = chunk_count ~min_chunk ~n (nworkers + 1) in
    let ledgers = Array.init chunks (fun _ -> Ledger.create ()) in
    let results = Array.make chunks None in
    let errors = Array.make chunks None in
    let run i =
      if cancelled () then errors.(i) <- Some (Guard.Killed Guard.Cancelled)
      else begin
        let lo, hi = bounds ~n ~chunks i in
        match f ledgers.(i) ~lo ~hi with
        | v -> results.(i) <- Some v
        | exception e -> errors.(i) <- Some e
      end
    in
    Guard.with_no_yield (fun () ->
        if nworkers = 0 then
          for i = 0 to chunks - 1 do
            run i
          done
        else begin
          let r =
            {
              count = chunks;
              run;
              cursor = Atomic.make 0;
              completed = Atomic.make 0;
            }
          in
          Mutex.lock lock;
          current_region := Some r;
          Condition.broadcast work_cv;
          Mutex.unlock lock;
          in_region := true;
          Fun.protect
            ~finally:(fun () -> in_region := false)
            (fun () -> drain r);
          Mutex.lock lock;
          while Atomic.get r.completed < r.count do
            Condition.wait done_cv lock
          done;
          current_region := None;
          Mutex.unlock lock
        end;
        (* barrier: charge once, then surface the serial-order first error *)
        merge_ledgers ledgers;
        Array.iter (function Some e -> raise e | None -> ()) errors);
    Guard.tick ();
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every chunk ran or an error was raised *))
      results
  end
