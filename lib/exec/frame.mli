(** Frames: the wide relations the executors operate on.

    A frame's schema is a concatenation of table schemas qualified by
    binding uids; resolved predicates translate positionally against it
    by uid lookup.  [block_relation] materializes the paper's
    T{_i} = σ{_ i'}(R{_i}): the block's FROM tables joined with every
    local conjunct pushed down as early as it becomes applicable. *)

open Nra_relational
open Nra_planner

exception Unsupported of string

val to_pred : Schema.t -> Resolved.rcond list -> Expr.pred
(** Conjunction of resolved conditions over a frame schema.
    @raise Unsupported if a column is not present in the frame. *)

val to_scalar : Schema.t -> Resolved.rexpr -> Expr.scalar

val cond_uids : Resolved.rcond -> string list
val applicable : uids:string list -> Resolved.rcond -> bool
(** Does the condition reference only the given binding uids? *)

val charge_scan_chunked : ?table:string -> int -> unit
(** Charge a sequential scan of that many rows, chunked so budget
    checks and preemption happen every few pages.  With [~table] and
    the buffer pool enabled, the scan instead goes through the pool
    page by page — resident pages free, misses charged — so repeated
    scans of a small table cost what the paper's 32 MB buffer cache
    would make them cost. *)

val block_relation : ?charge:bool -> Analyze.block -> Relation.t
(** The block's tables inner-joined under its local conjuncts (pushed
    down); correlated conjuncts and children are {e not} applied.
    Unless [~charge:false], one sequential scan per base table is
    charged to {!Nra_storage.Iosim}. *)

val single_binding : Analyze.block -> Analyze.binding option
(** The block's binding when it has exactly one table. *)
