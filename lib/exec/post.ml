open Nra_relational
open Nra_planner
module A = Analyze
module Agg = Nra_algebra.Aggregate
module Ast = Nra_sql.Ast

exception Unsupported of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let rec oexpr_aggs acc = function
  | A.O_expr _ -> acc
  | A.O_agg a -> a :: acc
  | A.O_bin (_, x, y) -> oexpr_aggs (oexpr_aggs acc x) y
  | A.O_neg x -> oexpr_aggs acc x

let rec ocond_aggs acc = function
  | A.O_true -> acc
  | A.O_cmp (_, x, y) -> oexpr_aggs (oexpr_aggs acc x) y
  | A.O_and (x, y) | A.O_or (x, y) -> ocond_aggs (ocond_aggs acc x) y
  | A.O_not x -> ocond_aggs acc x
  | A.O_is_null x | A.O_is_not_null x -> oexpr_aggs acc x

let equal_agg (a : A.agg_call) (b : A.agg_call) =
  a.A.func = b.A.func
  && Option.equal Resolved.equal_expr a.A.arg b.A.arg

let rec oexpr_has_agg = function
  | A.O_expr _ -> false
  | A.O_agg _ -> true
  | A.O_bin (_, x, y) -> oexpr_has_agg x || oexpr_has_agg y
  | A.O_neg x -> oexpr_has_agg x

(* ---------- non-aggregated path ---------- *)

(* Translate an aggregate-free oexpr against the frame. *)
let rec plain_scalar schema = function
  | A.O_expr e -> Resolved.to_scalar schema e
  | A.O_agg _ -> fail "aggregate used without GROUP BY context"
  | A.O_bin (op, x, y) -> (
      let x = plain_scalar schema x and y = plain_scalar schema y in
      match op with
      | Ast.Add -> Expr.Add (x, y)
      | Ast.Sub -> Expr.Sub (x, y)
      | Ast.Mul -> Expr.Mul (x, y)
      | Ast.Div -> Expr.Div (x, y))
  | A.O_neg x -> Expr.Neg (plain_scalar schema x)

let guess_type schema scalar =
  match scalar with
  | Expr.Col i -> (Schema.col schema i).Schema.ty
  | Expr.Const (Value.Int _) -> Ttype.Int
  | Expr.Const (Value.String _) -> Ttype.String
  | Expr.Const (Value.Date _) -> Ttype.Date
  | Expr.Const (Value.Bool _) -> Ttype.Bool
  | _ -> Ttype.Float

(* Project select columns plus hidden ORDER BY keys, sort, then drop the
   hidden columns. *)
let project_sort_limit ~to_scalar ~(output : A.output) rel =
  let schema = Relation.schema rel in
  let select_cols =
    List.map
      (fun (e, name) ->
        let s = to_scalar schema e in
        (s, Schema.column name (guess_type schema s)))
      output.A.select
  in
  let n_select = List.length select_cols in
  let order_scalars =
    List.map (fun (e, d) -> (to_scalar schema e, d)) output.A.order_by
  in
  if output.A.distinct && output.A.order_by <> [] then begin
    (* DISTINCT: ORDER BY keys must be computable from the select list *)
    let sel_exprs = List.map fst select_cols in
    List.iter
      (fun (s, _) ->
        if not (List.mem s sel_exprs) then
          fail "with DISTINCT, ORDER BY must use selected expressions")
      order_scalars
  end;
  let hidden =
    List.mapi
      (fun i (s, _) -> (s, Schema.column (Printf.sprintf "__ord%d" i)
                          (guess_type schema s)))
      order_scalars
  in
  let projected =
    Nra_algebra.Basic.project_exprs (select_cols @ hidden) rel
  in
  (* the post-processing projection buffer (select + hidden ORDER BY
     keys) is governed: charged to the memory ledger, spilled through
     the pool when it exceeds the frame budget *)
  Nra_storage.Governor.with_staged ~label:"post-project" projected
  @@ fun projected ->
  let projected =
    if output.A.distinct then
      if hidden = [] then Nra_algebra.Basic.distinct projected
      else begin
        (* when DISTINCT and ORDER BY coexist the order keys are select
           expressions (checked above): sort first, then dedup keeping
           first occurrences *)
        let keys =
          List.mapi
            (fun i (_, d) ->
              {
                Nra_algebra.Sort.pos = n_select + i;
                dir =
                  (match d with
                  | `Asc -> Nra_algebra.Sort.Asc
                  | `Desc -> Nra_algebra.Sort.Desc);
              })
            order_scalars
        in
        let sorted = Nra_algebra.Sort.sort keys projected in
        Nra_algebra.Basic.project_cols (List.init n_select Fun.id)
          (Nra_algebra.Basic.distinct sorted)
      end
    else projected
  in
  let projected =
    if (not output.A.distinct) && order_scalars <> [] then
      let keys =
        List.mapi
          (fun i (_, d) ->
            {
              Nra_algebra.Sort.pos = n_select + i;
              dir =
                (match d with
                | `Asc -> Nra_algebra.Sort.Asc
                | `Desc -> Nra_algebra.Sort.Desc);
            })
          order_scalars
      in
      Nra_algebra.Sort.sort keys projected
    else projected
  in
  let visible =
    if Schema.arity (Relation.schema projected) > n_select then
      Nra_algebra.Basic.project_cols (List.init n_select Fun.id) projected
    else projected
  in
  match output.A.limit with
  | Some n -> Nra_algebra.Basic.limit n visible
  | None -> visible

(* ---------- aggregated path ---------- *)

let apply_grouped (output : A.output) rel =
  let schema = Relation.schema rel in
  (* collect distinct aggregate calls from SELECT, HAVING, ORDER BY *)
  let aggs =
    let all =
      List.concat_map (fun (e, _) -> oexpr_aggs [] e) output.A.select
      @ (match output.A.having with
        | Some h -> ocond_aggs [] h
        | None -> [])
      @ List.concat_map (fun (e, _) -> oexpr_aggs [] e) output.A.order_by
    in
    List.fold_left
      (fun acc a -> if List.exists (equal_agg a) acc then acc else a :: acc)
      [] all
    |> List.rev
  in
  (* stage 1: compute group keys and aggregate inputs as physical specs *)
  let key_exprs = List.map (Resolved.to_scalar schema) output.A.group_by in
  let staged =
    (* materialize key expressions as leading columns so group_by can
       key on positions *)
    let key_cols =
      List.mapi
        (fun i s -> (s, Schema.column (Printf.sprintf "__k%d" i)
                       (guess_type schema s)))
        key_exprs
    in
    let identity_cols =
      Array.to_list (Schema.columns schema)
      |> List.mapi (fun i c -> (Expr.Col i, c))
    in
    Nra_algebra.Basic.project_exprs (key_cols @ identity_cols) rel
  in
  (* the aggregation staging (group keys + identity frame) is governed
     like every other staged intermediate *)
  Nra_storage.Governor.with_staged ~label:"agg-staging" staged
  @@ fun staged ->
  let nkeys = List.length key_exprs in
  let to_spec i (a : A.agg_call) =
    let arg =
      Option.map
        (fun e ->
          (* original frame columns sit after the staged keys *)
          Expr.shift_scalar nkeys (Resolved.to_scalar schema e))
        a.A.arg
    in
    let func =
      match (a.A.func, arg) with
      | Ast.Count_star, _ -> Agg.Count_star
      | Ast.Count, Some e -> Agg.Count e
      | Ast.Sum, Some e -> Agg.Sum e
      | Ast.Avg, Some e -> Agg.Avg e
      | Ast.Min, Some e -> Agg.Min e
      | Ast.Max, Some e -> Agg.Max e
      | _, None -> fail "aggregate function needs an argument"
    in
    { Agg.func; as_name = Printf.sprintf "__a%d" i }
  in
  let specs = List.mapi to_spec aggs in
  let grouped =
    if nkeys = 0 then Agg.global specs staged
    else Agg.group_by ~keys:(List.init nkeys Fun.id) specs staged
  in
  (* stage 2: rewrite output expressions over the grouped schema *)
  let key_pos i = Expr.Col i in
  let agg_pos i = Expr.Col (nkeys + i) in
  let find_key e =
    let rec idx i = function
      | [] -> None
      | g :: rest ->
          if Resolved.equal_expr g e then Some i else idx (i + 1) rest
    in
    idx 0 output.A.group_by
  in
  let rec rewrite_rexpr (e : Resolved.rexpr) : Expr.scalar =
    match find_key e with
    | Some i -> key_pos i
    | None -> (
        match e with
        | Resolved.RLit v -> Expr.Const v
        | Resolved.RBin (op, a, b) -> (
            let a = rewrite_rexpr a and b = rewrite_rexpr b in
            match op with
            | Ast.Add -> Expr.Add (a, b)
            | Ast.Sub -> Expr.Sub (a, b)
            | Ast.Mul -> Expr.Mul (a, b)
            | Ast.Div -> Expr.Div (a, b))
        | Resolved.RNeg a -> Expr.Neg (rewrite_rexpr a)
        | Resolved.RCol c ->
            fail "column %s.%s must appear in GROUP BY or inside an aggregate"
              c.Resolved.uid c.Resolved.col)
  in
  let rec rewrite_oexpr = function
    | A.O_agg a -> (
        let rec idx i = function
          | [] -> fail "internal: aggregate not collected"
          | g :: rest -> if equal_agg g a then agg_pos i else idx (i + 1) rest
        in
        idx 0 aggs)
    | A.O_expr e -> rewrite_rexpr e
    | A.O_bin (op, x, y) -> (
        let x = rewrite_oexpr x and y = rewrite_oexpr y in
        match op with
        | Ast.Add -> Expr.Add (x, y)
        | Ast.Sub -> Expr.Sub (x, y)
        | Ast.Mul -> Expr.Mul (x, y)
        | Ast.Div -> Expr.Div (x, y))
    | A.O_neg x -> Expr.Neg (rewrite_oexpr x)
  in
  let rec rewrite_ocond = function
    | A.O_true -> Expr.true_
    | A.O_cmp (op, x, y) -> Expr.Cmp (op, rewrite_oexpr x, rewrite_oexpr y)
    | A.O_and (x, y) -> Expr.And (rewrite_ocond x, rewrite_ocond y)
    | A.O_or (x, y) -> Expr.Or (rewrite_ocond x, rewrite_ocond y)
    | A.O_not x -> Expr.Not (rewrite_ocond x)
    | A.O_is_null x -> Expr.Is_null (rewrite_oexpr x)
    | A.O_is_not_null x -> Expr.Is_not_null (rewrite_oexpr x)
  in
  let filtered =
    match output.A.having with
    | None -> grouped
    | Some h -> Nra_algebra.Basic.select (rewrite_ocond h) grouped
  in
  project_sort_limit
    ~to_scalar:(fun _schema e -> rewrite_oexpr e)
    ~output:{ output with A.group_by = []; having = None }
    filtered

let apply (output : A.output) rel =
  let has_aggs =
    output.A.group_by <> []
    || output.A.having <> None (* HAVING without GROUP BY = global agg *)
    || List.exists (fun (e, _) -> oexpr_has_agg e) output.A.select
    || List.exists (fun (e, _) -> oexpr_has_agg e) output.A.order_by
  in
  if has_aggs then apply_grouped output rel
  else project_sort_limit ~to_scalar:plain_scalar ~output rel
