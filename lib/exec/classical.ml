open Nra_relational
open Nra_planner
module A = Analyze
module R = Resolved
module T3 = Three_valued
module J = Nra_algebra.Join

type strategy = Semijoin | Antijoin | Iterate

let strategy_to_string = function
  | Semijoin -> "semijoin"
  | Antijoin -> "antijoin"
  | Iterate -> "nested-iteration"

(* A subtree is reducible to a derived relation when every block in it
   correlates only to its immediate parent inside the subtree, except
   the root whose correlation must target exactly [parent_id]. *)
let reducible ~parent_id (b : A.block) =
  let ok_cond ~self ~allowed rc =
    List.for_all
      (fun i -> i = self || List.mem i allowed)
      (R.cond_blocks rc)
  in
  let rec inner (blk : A.block) ~parent =
    List.for_all (ok_cond ~self:blk.A.id ~allowed:[ parent ]) blk.A.correlated
    && (match blk.A.linked_attr with
       | None -> true
       | Some e -> List.for_all (fun i -> i = blk.A.id) (R.expr_blocks e))
    && List.for_all (fun c -> inner c.A.block ~parent:blk.A.id) blk.A.children
  in
  List.for_all (ok_cond ~self:b.A.id ~allowed:[ parent_id ]) b.A.correlated
  && (match b.A.linked_attr with
     | None -> true
     | Some e -> List.for_all (fun i -> i = b.A.id) (R.expr_blocks e))
  && List.for_all (fun c -> inner c.A.block ~parent:b.A.id) b.A.children

let choose t ~parent_id (c : A.child) : strategy =
  let b = c.A.block in
  if not (reducible ~parent_id b) then Iterate
  else if b.A.scalar_agg <> None then
    (* type JA: the link compares against a per-group aggregate, and an
       empty group still produces a value (COUNT → 0, others → NULL) —
       no join against the element rows can express that *)
    Iterate
  else
    match c.A.link with
    | A.L_exists | A.L_in _ | A.L_quant (_, _, `Any) -> Semijoin
    | A.L_not_exists -> Antijoin
    | A.L_not_in a | A.L_quant (a, _, `All) ->
        let linked_ok =
          match b.A.linked_attr with
          | Some e -> A.expr_not_nullable t e
          | None -> false
        in
        if A.expr_not_nullable t a && linked_ok then Antijoin else Iterate
    | A.L_scalar _ -> Iterate

let rec plan_block t acc (b : A.block) =
  List.fold_left
    (fun acc (c : A.child) ->
      let s = choose t ~parent_id:b.A.id c in
      let acc = acc @ [ (c.A.block.A.id, s) ] in
      plan_block t acc c.A.block)
    acc b.A.children

let plan _cat t = plan_block t [] t.A.root

(* Join condition for the (anti/semi)join of [rel] (parent side) with the
   reduced child: correlated conjuncts plus the linking comparison. *)
let join_condition concat_schema (c : A.child) =
  let b = c.A.block in
  let corr = Frame.to_pred concat_schema b.A.correlated in
  let linking =
    match (c.A.link, b.A.linked_attr) with
    | (A.L_exists | A.L_not_exists), _ -> Expr.true_
    | A.L_in a, Some e ->
        Expr.Cmp
          (T3.Eq, Frame.to_scalar concat_schema a,
           Frame.to_scalar concat_schema e)
    | A.L_quant (a, op, `Any), Some e ->
        Expr.Cmp
          (op, Frame.to_scalar concat_schema a,
           Frame.to_scalar concat_schema e)
    | A.L_not_in a, Some e ->
        (* NOT IN fails exactly on an equal element *)
        Expr.Cmp
          (T3.Eq, Frame.to_scalar concat_schema a,
           Frame.to_scalar concat_schema e)
    | A.L_quant (a, op, `All), Some e ->
        (* θ ALL fails exactly on a complement-matching element *)
        Expr.Cmp
          (T3.negate_op op, Frame.to_scalar concat_schema a,
           Frame.to_scalar concat_schema e)
    | (A.L_in _ | A.L_not_in _ | A.L_quant _ | A.L_scalar _), _ ->
        invalid_arg "join_condition: missing linked attribute"
  in
  Expr.And (corr, linking)

let rec reduce cat t (b : A.block) : Relation.t =
  let rel = Frame.block_relation b in
  List.fold_left (fun rel c -> apply_child cat t ~parent:b rel c) rel
    b.A.children

and apply_child cat t ~parent rel (c : A.child) : Relation.t =
  let b = c.A.block in
  match choose t ~parent_id:parent.A.id c with
  | Iterate ->
      let k = Naive.compile cat t (Relation.schema rel) c in
      Relation.filter
        (fun row ->
          Nra_guard.Guard.tick ();
          T3.to_bool (k row))
        rel
  | (Semijoin | Antijoin) as s -> (
      let child_rel = reduce cat t b in
      (* uncorrelated EXISTS-style links reduce to an emptiness test,
         avoiding a degenerate nested-loop join on TRUE *)
      match (b.A.correlated, c.A.link) with
      | [], A.L_exists ->
          if Relation.is_empty child_rel then
            Relation.make (Relation.schema rel) [||]
          else rel
      | [], A.L_not_exists ->
          if Relation.is_empty child_rel then rel
          else Relation.make (Relation.schema rel) [||]
      | _ ->
          let concat_schema =
            Schema.append (Relation.schema rel) (Relation.schema child_rel)
          in
          let on = join_condition concat_schema c in
          let kind = match s with Semijoin -> J.Semi | _ -> J.Anti in
          J.join kind ~on rel child_rel)

let run_where cat t = reduce cat t t.A.root
let run cat t = Post.apply t.A.output (run_where cat t)
