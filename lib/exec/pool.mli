(** Morsel-driven intra-query parallelism: a lazily-spawned, reusable
    Domain pool with one fork-join primitive, {!parallel_chunks}.

    The paper's pipeline is "a sequence of hash joins producing one wide
    flat intermediate, then nest + linking selection" — operator shapes
    that parallelize embarrassingly by partitioning on the join/group
    key.  The flat-intermediate representation keeps morsel partitioning
    trivial: every kernel splits its input row array into contiguous
    chunks ("morsels"), workers produce one output buffer per chunk, and
    the owner concatenates the buffers {e in chunk order}, so results
    are bit-identical to the serial path.

    {2 Guard contract (the subtle part)}

    The guard ({!Nra_guard.Guard}) and the I/O simulation
    ({!Nra_storage.Iosim}) are global and single-threaded by design.
    Worker domains therefore never touch them: each chunk closure
    receives a private {!Ledger.t} and accrues ticks/rows/page counts
    there; the owner merges all ledgers and charges the guard {e once}
    at the join barrier.  Consequences, all documented and tested:

    - a parallel region is one coarse checkpoint — budgets are enforced
      at region entry and at the barrier, not per row;
    - the region is a [with_no_yield] critical section from the
      cooperative scheduler's point of view (no worker may perform the
      scheduler's effects);
    - the active budget's cancellation token {e is} polled per morsel
      (reading one [bool ref] across domains is benign), so a cancel
      mid-region stops the remaining morsels and surfaces
      [Killed Cancelled] at the barrier;
    - total charged simulated I/O equals the serial run's total, because
      fault injection and the charge sites stay owner-side and ledger
      merging bypasses {!Nra_storage.Fault.inject}.

    Chunk closures must not call [Guard.tick]/[Iosim.charge_*]
    themselves — that is what the ledger is for.

    {2 Determinism}

    Chunk {e assignment} to workers is dynamic (work stealing via an
    atomic cursor), but chunk {e results} land in a per-chunk slot and
    are combined in chunk order, so output — and, with fault injection
    on, the fault-draw sequence, which is exclusively owner-side — is
    identical for every pool size, including 0. *)

module Ledger : sig
  type t = {
    mutable ticks : int;  (** would-be [Guard.tick] calls *)
    mutable rows : int;  (** would-be [Guard.add_rows] rows *)
    mutable seq_pages : int;
    mutable rand_pages : int;
    mutable fetched_rows : int;  (** would-be [Iosim] charges, in pages/rows *)
    mutable spills : Nra_storage.Bufpool.Spill.t list;
        (** spill partitions this chunk fully consumed (via
            [Bufpool.Spill.iter_raw]); ownership transfers to the owner
            at the join barrier, which replays their page reads in
            chunk order and frees them *)
  }

  val create : unit -> t
  val tick : t -> unit
  val add_rows : t -> int -> unit

  val consumed_spill : t -> Nra_storage.Bufpool.Spill.t -> unit
  (** Record a partition consumed by this chunk.  This is how the
      grace/hybrid join and the spillable nest run {e under} the pool:
      workers read spill data without touching the (single-threaded)
      buffer pool, and the owner settles residency, charges, and fault
      draws deterministically at the barrier. *)
end

val default_size : unit -> int
(** [Domain.recommended_domain_count () - 1] (the owner participates in
    every region, so the pool adds one worker less than the core
    count), clamped at 0. *)

val size : unit -> int
(** Worker-domain count currently in effect: the last {!set_size}, else
    [NRA_DOMAINS] from the environment, else {!default_size}.  [0]
    means strictly serial — no domain is ever spawned and every kernel
    takes its pre-existing serial path. *)

val set_size : int -> unit
(** Override the pool size (clamped at 0).  Takes effect lazily: live
    workers are retired and the new complement is spawned on the next
    parallel region. *)

val executors : unit -> int
(** [size () + 1] when parallel (the owner drains morsels too), [1]
    when serial.  Kernels use this as their partition count. *)

val parallel_threshold : unit -> int
(** Minimum input rows before a kernel leaves its serial path (default
    256, or [NRA_PARALLEL_THRESHOLD]); below it, fork-join overhead
    dominates.  Tests lower it to force tiny inputs through the
    parallel code. *)

val set_parallel_threshold : int -> unit

val morsel : unit -> int
(** Target rows per chunk (default 1024, or [NRA_MORSEL]); the actual
    chunk count is also capped at 4×{!executors} so per-chunk buffers
    stay coarse. *)

val set_morsel : int -> unit

val use_parallel : int -> bool
(** [executors () > 1 && n >= parallel_threshold ()] — the guard every
    kernel places in front of its parallel path. *)

val parallel_chunks :
  ?min_chunk:int -> n:int -> (Ledger.t -> lo:int -> hi:int -> 'a) -> 'a array
(** [parallel_chunks ~n f] splits [0..n-1] into contiguous chunks,
    evaluates [f ledger ~lo ~hi] for each (owner and workers drain a
    shared cursor), and returns the per-chunk results {e in chunk
    order}.  At the barrier the owner merges all ledgers into the guard
    and the I/O simulation, then re-raises the exception of the
    lowest-indexed failed chunk, if any — the same error the serial
    left-to-right loop would have raised first.  [min_chunk] defaults
    to {!morsel}; pass [1] to make every index its own unit of work
    (e.g. one chunk per hash partition).  Runs inline — same semantics,
    same ledger merge — when the pool is serial or the caller is
    already inside a region. *)

val shutdown : unit -> unit
(** Join all worker domains (registered [at_exit]; also used by
    {!set_size}).  Must not be called from inside a parallel region. *)
