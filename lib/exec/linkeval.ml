open Nra_relational
open Nra_planner
module A = Analyze
module R = Resolved
module T3 = Three_valued
module Ast = Nra_sql.Ast

type verdict = Row.t -> Row.t list -> T3.t

let guess_ty schema = function
  | Expr.Col i -> (Schema.col schema i).Schema.ty
  | _ -> Ttype.Float

let verdict_and_keep ~key_schema ~wide_schema ~with_marker (c : A.child) :
    (Expr.scalar * Schema.column) list * (Row.t -> Row.t list -> T3.t) =
  let b = c.A.block in
  let keep_b () =
    match (c.A.link, b.A.linked_attr, b.A.scalar_agg) with
    | (A.L_in _ | A.L_not_in _ | A.L_quant _ | A.L_scalar _), Some e, _ ->
        let s = Frame.to_scalar wide_schema e in
        [ (s, Schema.column "__b" (guess_ty wide_schema s)) ]
    | ( (A.L_in _ | A.L_not_in _ | A.L_quant _ | A.L_scalar _),
        None,
        Some (_, Some arg) ) ->
        let s = Frame.to_scalar wide_schema arg in
        [ (s, Schema.column "__b" (guess_ty wide_schema s)) ]
    | _ -> []
  in
  let keep_m () =
    if with_marker then
      let s = Frame.to_scalar wide_schema (R.RCol b.A.marker) in
      [ (s, Schema.column "__m" (guess_ty wide_schema s)) ]
    else []
  in
  let keep = keep_b () @ keep_m () in
  let marker_pos = if with_marker then Some (List.length keep - 1) else None in
  let filt elems =
    match marker_pos with
    | None -> elems
    | Some m -> List.filter (fun e -> not (Value.is_null e.(m))) elems
  in
  let a_scalar e = Frame.to_scalar key_schema e in
  let quant_verdict a op q =
    let a = a_scalar a in
    fun outer elems ->
      let x = Expr.eval_scalar outer a in
      let one (e : Row.t) = T3.cmp op x e.(0) in
      let elems = filt elems in
      match q with
      | `Any -> T3.disj (List.map one elems)
      | `All -> T3.conj (List.map one elems)
  in
  (* the block's one-row aggregate result: COUNT over an empty group is
     0, the other aggregates are NULL — [Aggregate.eval_one] gives both,
     and the marker filter has already removed outer-join padding *)
  let agg_verdict a op (f, arg) =
    let a = a_scalar a in
    let func =
      match (f, arg) with
      | Ast.Count_star, _ -> Nra_algebra.Aggregate.Count_star
      | Ast.Count, Some _ -> Nra_algebra.Aggregate.Count (Expr.Col 0)
      | Ast.Sum, Some _ -> Nra_algebra.Aggregate.Sum (Expr.Col 0)
      | Ast.Avg, Some _ -> Nra_algebra.Aggregate.Avg (Expr.Col 0)
      | Ast.Min, Some _ -> Nra_algebra.Aggregate.Min (Expr.Col 0)
      | Ast.Max, Some _ -> Nra_algebra.Aggregate.Max (Expr.Col 0)
      | _, None -> raise (Frame.Unsupported "aggregate without argument")
    in
    fun outer elems ->
      let x = Expr.eval_scalar outer a in
      let v = Nra_algebra.Aggregate.eval_one func (filt elems) in
      T3.cmp op x v
  in
  let verdict =
    match (c.A.link, b.A.scalar_agg) with
    | A.L_exists, _ -> fun _ elems -> T3.of_bool (filt elems <> [])
    | A.L_not_exists, _ -> fun _ elems -> T3.of_bool (filt elems = [])
    (* type JA: the subquery's value set is the aggregate's singleton
       {v}, so IN ≡ (= v), NOT IN ≡ (<> v), and θ SOME ≡ θ ALL ≡ (θ v) —
       all under 3VL (NULL on either side → Unknown) *)
    | A.L_in a, Some agg -> agg_verdict a T3.Eq agg
    | A.L_not_in a, Some agg -> agg_verdict a T3.Neq agg
    | A.L_quant (a, op, _), Some agg -> agg_verdict a op agg
    | A.L_scalar (a, op), Some agg -> agg_verdict a op agg
    | A.L_in a, None -> quant_verdict a T3.Eq `Any
    | A.L_not_in a, None -> quant_verdict a T3.Neq `All
    | A.L_quant (a, op, q), None -> quant_verdict a op q
    | A.L_scalar (a, op), None -> (
        let a = a_scalar a in
        fun outer elems ->
          let x = Expr.eval_scalar outer a in
          match filt elems with
          | [] -> T3.Unknown
          | [ e ] -> T3.cmp op x e.(0)
          | _ :: _ :: _ ->
              failwith "scalar subquery returned more than one row")
  in
  (keep, verdict)

