(** The nested relational approach — Section 4 of the paper.

    Algorithm 1: unnest top-down by reducing every block to a relation
    (local selections pushed down) and left-outer-hash-joining it under
    its correlated predicates into one wide intermediate relation; then
    compute the linking predicates bottom-up, each as a [nest]
    (υ{_ N1,N2}) followed by a linking selection — σ when failing tuples
    may be discarded (outermost predicate, or all enclosing predicates
    positive), σ̄ (pad the owning block's attributes, including its
    carried primary key, with NULL) otherwise.

    The variants of Section 4.2 are selectable:
    - {b pipelined} (§4.2.1–4.2.2): one shared physical sort (fused
      consecutive nests — an upper level's nesting attributes are a
      prefix of the level below, and outer joins preserve the left
      order, so re-sorts are skipped) and the linking selection
      evaluated during the group scan, in a single pass;
    - {b bottom-up for linear correlation} (§4.2.3): a self-contained
      subquery is reduced standalone so only qualifying tuples join
      upward;
    - {b nest push-down} (§4.2.4): with equality correlation, the child
      is grouped by its correlation key once and probed per outer tuple
      instead of materializing the outer join;
    - {b positive simplification} (§4.2.5):
      σ{_ AθSOME{B}}(υ(R ⟕{_C} S)) → R ⋉{_ C∧AθB} S when discarding is
      allowed.

    No indexes are required anywhere: hash joins, sorts and hashes only. *)

open Nra_relational
open Nra_storage
open Nra_planner

type options = {
  pipelined : bool;
  nest_impl : [ `Sort | `Hash ];
  bottom_up_linear : bool;
  push_down_nest : bool;
  positive_simplify : bool;
}

val original : options
(** The paper's "original nested relational approach": sort-based nest
    materialized, separate linking-selection pass. *)

val optimized : options
(** The paper's "optimized" variant: pipelined nest + linking selection
    (one pass over the intermediate result). *)

val full : options
(** Everything in Section 4.2 switched on. *)

type nest_directive = {
  n_pipelined : bool;
      (** evaluate the linking selection during the group scan instead of
          materializing υ (§4.2.1–4.2.2) *)
  n_assume_sorted : bool;
      (** fuse with the upstream sort: when the wide input is already
          key-sorted at runtime, skip the re-sort and stream groups off
          the run scan.  Checked against the executor's own sorted-prefix
          tracking, so an over-optimistic directive degrades to the
          materialized path rather than changing results. *)
}

(** Per linking site (keyed by block id), which of the five evaluation
    paths to take.  Directives come from the [lib/opt] rewriter; each is
    validated against the site's structural preconditions at runtime and
    silently falls back to the options-driven choice when they no longer
    hold, so a stale or wrong directive can never change results. *)
type link_impl =
  | D_shared_set  (** uncorrelated: evaluate once, share the value set *)
  | D_push_down  (** §4.2.4 group-by-correlation-key probe *)
  | D_semijoin  (** §4.2.5 positive linking → plain semijoin *)
  | D_bottom_up of nest_directive  (** §4.2.3 reduce standalone, then join+nest *)
  | D_top_down of nest_directive  (** Algorithm 1 general case *)

type directives = (int * link_impl) list

type stats = {
  mutable peak_intermediate_rows : int;
      (** largest wide relation materialized *)
  mutable total_intermediate_rows : int;
  mutable nest_select_seconds : float;
      (** time in nest + linking selection — the cost the paper reports
          separately *)
  mutable join_seconds : float;
}

val run_where :
  ?options:options ->
  ?directives:directives ->
  Catalog.t ->
  Analyze.t ->
  Relation.t * stats
(** Outer-frame rows satisfying WHERE, plus cost counters. *)

val run :
  ?options:options ->
  ?directives:directives ->
  Catalog.t ->
  Analyze.t ->
  Relation.t
(** [run_where] followed by output post-processing. *)

val plan_description : ?options:options -> Analyze.t -> string
(** The operator pipeline the executor would run (the paper's Figure 3b
    query tree, linearized), without executing anything: one line per
    join / nest / linking selection, annotated with the σ-vs-σ̄ choice
    and any §4.2 shortcut taken. *)
