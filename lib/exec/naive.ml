open Nra_relational
open Nra_storage
open Nra_planner
module A = Analyze
module R = Resolved
module T3 = Three_valued
module Ast = Nra_sql.Ast

type stats = { mutable inner_loops : int; mutable index_probes : int }

let stats = { inner_loops = 0; index_probes = 0 }

(* Correlated equi-conjuncts of block [b]: (inner column name, outer
   expression), for index probing. *)
let equi_probes (b : A.block) =
  List.filter_map
    (fun rc ->
      match rc with
      | R.RCmp (T3.Eq, R.RCol c, e) when c.R.block_id = b.A.id
        && not (List.mem b.A.id (R.expr_blocks e)) ->
          Some (c.R.col, e)
      | R.RCmp (T3.Eq, e, R.RCol c) when c.R.block_id = b.A.id
        && not (List.mem b.A.id (R.expr_blocks e)) ->
          Some (c.R.col, e)
      | _ -> None)
    b.A.correlated

(* Pick an index of the inner table covering (a subset of) the equi
   columns; prefer the sorted (B-tree-like) index, as the paper's System
   A uses.  Returns a probe function from the outer row to candidate
   base-table rows. *)
let index_access cat (bd : A.binding) outer_schema equis =
  match Catalog.table_opt cat bd.A.source with
  | None -> None
  | Some base_table -> (
      let base_name = Table.name base_table in
      let cols = List.map fst equis in
      let scalar_of e = Resolved.to_scalar outer_schema e in
      let key_scalars names =
        List.map (fun c -> scalar_of (List.assoc c equis)) names
        |> Array.of_list
      in
      let probe_with names ids_of =
        let scalars = key_scalars names in
        let rows = Relation.rows (Table.relation bd.A.table) in
        (* the index descent is charged at probe time; each rowid fetch
           is charged lazily as the row is actually examined — through
           the buffer cache, and only if the evaluation gets that far
           (EXISTS-style early exits pay only for what they read) *)
        Some
          (fun outer_row ->
            stats.index_probes <- stats.index_probes + 1;
            Fault.with_retries (fun () -> Iosim.charge_probe ~matches:0);
            let key = Array.map (Expr.eval_scalar outer_row) scalars in
            let ids = ids_of key in
            Seq.map
              (fun id ->
                Fault.with_retries (fun () ->
                    Iosim.charge_row_fetch ~table:base_name ~row_id:id);
                rows.(id))
              (List.to_seq ids))
      in
      (* exact sorted index on all equi columns, in some order *)
      let sorted_exact =
        List.find_map
          (fun perm ->
            match
              Catalog.sorted_index_on cat ~table:base_name (List.hd perm)
            with
            | Some idx
              when List.length (Array.to_list (Sorted_index.positions idx))
                   = List.length perm ->
                (* verify the index covers exactly these columns *)
                let idx_cols =
                  Array.to_list (Sorted_index.positions idx)
                  |> List.map (fun p ->
                         (Schema.col (Table.schema base_table) p).Schema.name)
                in
                if List.sort compare idx_cols = List.sort compare cols then
                  Some (idx_cols, idx)
                else None
            | _ -> None)
          (List.map (fun c -> [ c ]) cols
          @ if List.length cols > 1 then [ cols; List.rev cols ] else [])
      in
      match sorted_exact with
      | Some (idx_cols, idx) ->
          probe_with idx_cols (fun key -> Sorted_index.probe idx key)
      | None -> (
          (* hash index on a subset *)
          match Catalog.hash_index_covering cat ~table:base_name cols with
          | Some (idx, idx_cols) ->
              probe_with idx_cols (fun key -> Hash_index.probe idx key)
          | None -> (
              (* sorted index on a single equi column *)
              match
                List.find_map
                  (fun c ->
                    Option.map (fun i -> (c, i))
                      (Catalog.sorted_index_on cat ~table:base_name c))
                  cols
              with
              | Some (c, idx) ->
                  probe_with [ c ] (fun key -> Sorted_index.probe idx key)
              | None -> None)))

(* A subtree whose result cannot depend on the outer tuple: no
   correlation anywhere inside, and the output attribute references only
   the subtree's own blocks.  A DBMS evaluates such a subquery once; so
   do we (one scan charge, one computation). *)
let static_subtree (b : A.block) =
  let ids = List.map (fun blk -> blk.A.id) (A.collect_blocks b) in
  let expr_ok e = List.for_all (fun i -> List.mem i ids) (R.expr_blocks e) in
  List.for_all
    (fun (blk : A.block) ->
      blk.A.correlated = []
      && (match blk.A.linked_attr with None -> true | Some e -> expr_ok e)
      && match blk.A.scalar_agg with
         | Some (_, Some e) -> expr_ok e
         | _ -> true)
    (A.collect_blocks b)

let rec compile ?(use_indexes = true) cat (t : A.t) outer_schema
    (c : A.child) : Row.t -> T3.t =
  let b = c.A.block in
  let filtered = Frame.block_relation ~charge:false b in
  let base_schema = Relation.schema filtered in
  let concat_schema = Schema.append outer_schema base_schema in
  let corr_pred = Frame.to_pred concat_schema b.A.correlated in
  let local_pred =
    (* for the index path, candidates come from the unfiltered base
       table and local conjuncts are applied per candidate *)
    Frame.to_pred base_schema b.A.local
  in
  let kids =
    List.map (compile ~use_indexes cat t concat_schema) b.A.children
  in
  let index_probe =
    match (use_indexes, Frame.single_binding b) with
    | true, Some bd -> (
        match equi_probes b with
        | [] -> None
        | equis -> index_access cat bd outer_schema equis)
    | _ -> None
  in
  let scan_rows = Relation.rows filtered in
  let linked =
    Option.map (fun e -> Frame.to_scalar concat_schema e) b.A.linked_attr
  in
  let agg_arg =
    match b.A.scalar_agg with
    | Some (_, Some e) -> Some (Frame.to_scalar concat_schema e)
    | _ -> None
  in
  let scan_charges =
    List.map
      (fun (bd : A.binding) ->
        (Table.name bd.A.table, Table.cardinality bd.A.table))
      b.A.bindings
  in
  (* lazy qualifying sequence over concatenated (outer ++ inner) rows;
     I/O is charged as elements are forced, so short-circuiting
     evaluation pays only for what it examines *)
  let qualifying_seq outer_row : Row.t Seq.t =
    let candidates =
      match index_probe with
      | Some probe ->
          Seq.filter (fun crow -> Expr.holds local_pred crow)
            (probe outer_row)
      | None ->
          (* nested iteration without an index rescans the inner block;
             under the buffer pool a small inner table stays resident
             across outer tuples, so rescans after the first are nearly
             free — the paper's 32 MB-cache effect *)
          List.iter
            (fun (name, n) ->
              if Nra_storage.Bufpool.enabled () then
                Frame.charge_scan_chunked ~table:name n
              else
                Nra_storage.Fault.with_retries (fun () ->
                    Nra_storage.Iosim.charge_scan_rows n))
            scan_charges;
          Array.to_seq scan_rows
    in
    Seq.filter_map
      (fun crow ->
        Nra_guard.Guard.tick ();
        let row = Row.concat outer_row crow in
        if
          Expr.holds corr_pred row
          && List.for_all (fun k -> T3.to_bool (k row)) kids
        then Some row
        else None)
      candidates
  in
  let static = static_subtree b in
  let static_memo =
    lazy
      (Seq.memoize (qualifying_seq (Row.nulls (Schema.arity outer_schema))))
  in
  let qualifying_for outer_row =
    (* a subquery whose result cannot depend on the outer tuple is
       evaluated (and charged) once, as a DBMS would *)
    if static then Lazy.force static_memo else qualifying_seq outer_row
  in
  (* short-circuiting quantifier evaluation: SOME stops at the first
     True, ALL at the first False; Unknown is remembered *)
  let quant_eval op quant x values =
    let rec go acc seq =
      match seq () with
      | Seq.Nil -> acc
      | Seq.Cons (v, rest) -> (
          let r = T3.cmp op x v in
          match (quant, r) with
          | `Any, T3.True -> T3.True
          | `All, T3.False -> T3.False
          | `Any, r -> go (T3.or_ acc r) rest
          | `All, r -> go (T3.and_ acc r) rest)
    in
    go (match quant with `Any -> T3.False | `All -> T3.True) values
  in
  fun outer_row ->
    Nra_guard.Guard.tick ();
    stats.inner_loops <- stats.inner_loops + 1;
    let qualifying = qualifying_for outer_row in
    match c.A.link with
    | A.L_exists -> T3.of_bool (not (Seq.is_empty qualifying))
    | A.L_not_exists -> T3.of_bool (Seq.is_empty qualifying)
    | A.L_in a | A.L_not_in a | A.L_quant (a, _, _) | A.L_scalar (a, _) -> (
        let x =
          Expr.eval_scalar outer_row (Frame.to_scalar outer_schema a)
        in
        let linked_values () =
          match linked with
          | Some s -> Seq.map (fun row -> Expr.eval_scalar row s) qualifying
          | None -> Seq.empty
        in
        (* the block's one-row aggregate value; the qualifying list is a
           materialized intermediate: charge its footprint to the memory
           governor while the aggregate consumes it *)
        let agg_value f =
          let func =
            match (f, agg_arg) with
            | Ast.Count_star, _ -> Nra_algebra.Aggregate.Count_star
            | Ast.Count, Some e -> Nra_algebra.Aggregate.Count e
            | Ast.Sum, Some e -> Nra_algebra.Aggregate.Sum e
            | Ast.Avg, Some e -> Nra_algebra.Aggregate.Avg e
            | Ast.Min, Some e -> Nra_algebra.Aggregate.Min e
            | Ast.Max, Some e -> Nra_algebra.Aggregate.Max e
            | _, None -> failwith "aggregate without argument"
          in
          let elems = List.of_seq qualifying in
          Nra_storage.Governor.with_charged
            ~rows:(List.length elems)
            ~width:(Schema.arity concat_schema)
            (fun () -> Nra_algebra.Aggregate.eval_one func elems)
        in
        match (c.A.link, b.A.scalar_agg) with
        (* type JA: IN / θ SOME / θ ALL against the aggregate's
           singleton {v} collapse to one 3VL comparison with v *)
        | A.L_in _, Some (f, _) -> T3.cmp T3.Eq x (agg_value f)
        | A.L_not_in _, Some (f, _) -> T3.cmp T3.Neq x (agg_value f)
        | A.L_quant (_, op, _), Some (f, _) -> T3.cmp op x (agg_value f)
        | A.L_scalar (_, op), Some (f, _) -> T3.cmp op x (agg_value f)
        | A.L_in _, None -> quant_eval T3.Eq `Any x (linked_values ())
        | A.L_not_in _, None -> quant_eval T3.Neq `All x (linked_values ())
        | A.L_quant (_, op, quant), None ->
            quant_eval op quant x (linked_values ())
        | A.L_scalar (_, op), None -> (
            match List.of_seq (Seq.take 2 (linked_values ())) with
            | [] -> T3.Unknown
            | [ v ] -> T3.cmp op x v
            | _ -> failwith "scalar subquery returned more than one row")
        | (A.L_exists | A.L_not_exists), _ -> assert false)

let run_where ?(use_indexes = true) cat (t : A.t) =
  stats.inner_loops <- 0;
  stats.index_probes <- 0;
  let rel = Frame.block_relation t.A.root in
  let schema = Relation.schema rel in
  let kids =
    List.map (compile ~use_indexes cat t schema) t.A.root.A.children
  in
  Relation.filter
    (fun row -> List.for_all (fun k -> T3.to_bool (k row)) kids)
    rel

let run ?use_indexes cat t =
  Post.apply t.A.output (run_where ?use_indexes cat t)
