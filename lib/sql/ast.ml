open Nra_relational

type cmpop = Three_valued.cmpop

type quantifier = Any | All

type binop = Add | Sub | Mul | Div

type agg_func = Count_star | Count | Sum | Avg | Min | Max

type expr =
  | Col of string option * string
  | Lit of Value.t
  | Binop of binop * expr * expr
  | Neg of expr
  | Agg of agg_func * expr option

type select_item =
  | Star
  | Table_star of string
  | Sel_expr of expr * string option

type cond =
  | True_
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Is_null of expr
  | Is_not_null of expr
  | Between of expr * expr * expr
  | In_list of expr * Value.t list
  | Like of expr * string
  | Exists of query
  | Not_exists of query
  | In_query of expr * query
  | Not_in_query of expr * query
  | Quant_cmp of expr * cmpop * quantifier * query
  | Scalar_cmp of expr * cmpop * query

and query = {
  distinct : bool;
  select : select_item list;
  from : (string * string option) list;
  where : cond option;
  group_by : expr list;
  having : cond option;
  order_by : (expr * [ `Asc | `Desc ]) list;
  limit : int option;
}

let simple_query ?(distinct = false) ~select ~from ?where () =
  {
    distinct;
    select;
    from;
    where;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
  }

let rec subqueries = function
  | True_ | Cmp _ | Is_null _ | Is_not_null _ | Between _ | In_list _
  | Like _ ->
      []
  | And (a, b) | Or (a, b) -> subqueries a @ subqueries b
  | Not a -> subqueries a
  | Exists q | Not_exists q | In_query (_, q) | Not_in_query (_, q)
  | Quant_cmp (_, _, _, q)
  | Scalar_cmp (_, _, q) ->
      [ q ]

let rec query_depth q =
  let conds =
    Option.to_list q.where @ Option.to_list q.having
  in
  let subs = List.concat_map subqueries conds in
  match subs with
  | [] -> 0
  | _ -> 1 + List.fold_left (fun d s -> max d (query_depth s)) 0 subs

let is_flat q = query_depth q = 0

let rec cond_conjuncts = function
  | And (a, b) -> cond_conjuncts a @ cond_conjuncts b
  | True_ -> []
  | c -> [ c ]

(* -------- printing -------- *)

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let agg_str = function
  | Count_star | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let pp_lit ppf (v : Value.t) =
  match v with
  | Value.Date d -> Format.fprintf ppf "date '%s'" (Value.string_of_date d)
  | Value.Null -> Format.pp_print_string ppf "null"
  | _ -> Value.pp ppf v

let rec pp_expr ppf = function
  | Col (None, n) -> Format.pp_print_string ppf n
  | Col (Some t, n) -> Format.fprintf ppf "%s.%s" t n
  | Lit v -> pp_lit ppf v
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Neg a -> Format.fprintf ppf "(- %a)" pp_expr a
  | Agg (Count_star, _) -> Format.pp_print_string ppf "count(*)"
  | Agg (f, e) ->
      Format.fprintf ppf "%s(%a)" (agg_str f)
        (fun ppf -> function
          | None -> Format.pp_print_string ppf "*"
          | Some e -> pp_expr ppf e)
        e

let pp_select_item ppf = function
  | Star -> Format.pp_print_string ppf "*"
  | Table_star t -> Format.fprintf ppf "%s.*" t
  | Sel_expr (e, None) -> pp_expr ppf e
  | Sel_expr (e, Some a) -> Format.fprintf ppf "%a as %s" pp_expr e a

let rec pp_cond ppf = function
  | True_ -> Format.pp_print_string ppf "true"
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_expr a
        (Three_valued.cmpop_to_string op)
        pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_cond a pp_cond b
  | Not a -> Format.fprintf ppf "(not %a)" pp_cond a
  | Is_null e -> Format.fprintf ppf "%a is null" pp_expr e
  | Is_not_null e -> Format.fprintf ppf "%a is not null" pp_expr e
  | Between (e, lo, hi) ->
      Format.fprintf ppf "%a between %a and %a" pp_expr e pp_expr lo
        pp_expr hi
  | Like (e, pattern) ->
      Format.fprintf ppf "%a like '%s'" pp_expr e
        (String.concat "''" (String.split_on_char '\'' pattern))
  | In_list (e, vs) ->
      Format.fprintf ppf "%a in (%a)" pp_expr e
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_lit)
        vs
  | Exists q -> Format.fprintf ppf "exists %a" pp_subquery q
  | Not_exists q -> Format.fprintf ppf "not exists %a" pp_subquery q
  | In_query (e, q) -> Format.fprintf ppf "%a in %a" pp_expr e pp_subquery q
  | Not_in_query (e, q) ->
      Format.fprintf ppf "%a not in %a" pp_expr e pp_subquery q
  | Quant_cmp (e, op, quant, q) ->
      Format.fprintf ppf "%a %s %s %a" pp_expr e
        (Three_valued.cmpop_to_string op)
        (match quant with Any -> "any" | All -> "all")
        pp_subquery q
  | Scalar_cmp (e, op, q) ->
      Format.fprintf ppf "%a %s %a" pp_expr e
        (Three_valued.cmpop_to_string op)
        pp_subquery q

and pp_subquery ppf q = Format.fprintf ppf "(@[<hv>%a@])" pp_query q

and pp_query ppf q =
  Format.fprintf ppf "select %s%a"
    (if q.distinct then "distinct " else "")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_select_item)
    q.select;
  Format.fprintf ppf "@ from %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (t, alias) ->
         match alias with
         | None -> Format.pp_print_string ppf t
         | Some a -> Format.fprintf ppf "%s %s" t a))
    q.from;
  Option.iter (fun w -> Format.fprintf ppf "@ where %a" pp_cond w) q.where;
  (match q.group_by with
  | [] -> ()
  | gs ->
      Format.fprintf ppf "@ group by %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        gs);
  Option.iter (fun h -> Format.fprintf ppf "@ having %a" pp_cond h) q.having;
  (match q.order_by with
  | [] -> ()
  | os ->
      Format.fprintf ppf "@ order by %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (e, dir) ->
             Format.fprintf ppf "%a%s" pp_expr e
               (match dir with `Asc -> "" | `Desc -> " desc")))
        os);
  Option.iter (fun n -> Format.fprintf ppf "@ limit %d" n) q.limit

let to_string q = Format.asprintf "@[<hv>%a@]" pp_query q

type setop = { op : [ `Union | `Intersect | `Except ]; all : bool }

type statement =
  | Select of query
  | Setop of setop * statement * statement

let setop_str { op; all } =
  (match op with
  | `Union -> "union"
  | `Intersect -> "intersect"
  | `Except -> "except")
  ^ if all then " all" else ""

let rec pp_statement ppf = function
  | Select q -> pp_query ppf q
  | Setop (op, l, r) ->
      Format.fprintf ppf "(%a)@ %s@ (%a)" pp_statement l (setop_str op)
        pp_statement r

let statement_to_string s = Format.asprintf "@[<hv>%a@]" pp_statement s

type column_def = {
  cd_name : string;
  cd_type : Ttype.t;
  cd_not_null : bool;
}

type command =
  | Cmd_query of statement
  | Create_table of {
      table : string;
      columns : column_def list;
      key : string list;
    }
  | Drop_table of string
  | Insert_values of string * Value.t list list
  | Insert_select of string * statement
  | Delete of string * cond option
  | With_query of (string * statement) list * statement
  | Update of string * (string * expr) list * cond option
  | Analyze of string option
