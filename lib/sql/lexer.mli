(** Hand-written SQL lexer.

    Keywords are case-insensitive; identifiers are lower-cased.  String
    literals use single quotes with [''] escaping.  [--] starts a
    line comment. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string        (** recognized keyword, lower-cased *)
  | OP of string        (** one of [= <> != < <= > >= + - * / . , ( )] *)
  | EOF

exception Lex_error of string * int  (** message, position *)

val tokenize : string -> token list

val tokenize_loc : string -> (token * int) list
(** Tokens paired with their starting byte offset in the source; the
    final [EOF] carries [String.length src].  Parse errors report these
    offsets back to the user (with a caret excerpt). *)

val keywords : string list
(** The recognized keyword set (lower-case). *)

val pp_token : Format.formatter -> token -> unit
