open Nra_relational
module T3 = Three_valued

exception Parse_error of string

(* internal: every failure carries the byte offset of the offending
   token, so user-facing messages can point into the query text *)
exception Parse_error_at of string * int

type state = {
  tokens : Lexer.token array;
  offsets : int array;
  mutable cursor : int;
}

let fail st msg =
  let i = min st.cursor (Array.length st.tokens - 1) in
  raise
    (Parse_error_at
       ( Format.asprintf "%s (got %a)" msg Lexer.pp_token st.tokens.(i),
         st.offsets.(i) ))

let peek st = st.tokens.(st.cursor)
let peek2 st =
  if st.cursor + 1 < Array.length st.tokens then st.tokens.(st.cursor + 1)
  else Lexer.EOF

let advance st = st.cursor <- st.cursor + 1

let eat_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw -> advance st
  | _ -> fail st (Printf.sprintf "expected keyword %s" kw)

let eat_op st op =
  match peek st with
  | Lexer.OP o when o = op -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" op)

let try_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw ->
      advance st;
      true
  | _ -> false

let try_op st op =
  match peek st with
  | Lexer.OP o when o = op ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> fail st "expected an identifier"

let cmpop_of_string = function
  | "=" -> Some T3.Eq
  | "<>" -> Some T3.Neq
  | "<" -> Some T3.Lt
  | "<=" -> Some T3.Le
  | ">" -> Some T3.Gt
  | ">=" -> Some T3.Ge
  | _ -> None

(* ---------- literals and scalar expressions ---------- *)

let literal st : Value.t =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Value.Int i
  | Lexer.FLOAT f ->
      advance st;
      Value.Float f
  | Lexer.STRING s ->
      advance st;
      Value.String s
  | Lexer.KW "null" ->
      advance st;
      Value.Null
  | Lexer.KW "true" ->
      advance st;
      Value.Bool true
  | Lexer.KW "false" ->
      advance st;
      Value.Bool false
  | Lexer.KW "date" -> (
      advance st;
      match peek st with
      | Lexer.STRING s ->
          advance st;
          (try Value.date_of_string s
           with Value.Type_error m -> fail st m)
      | _ -> fail st "expected a date string after DATE")
  | Lexer.OP "-" -> (
      advance st;
      match peek st with
      | Lexer.INT i ->
          advance st;
          Value.Int (-i)
      | Lexer.FLOAT f ->
          advance st;
          Value.Float (-.f)
      | _ -> fail st "expected a number after unary minus")
  | _ -> fail st "expected a literal"

let rec expr st = additive st

and additive st =
  let lhs = ref (multiplicative st) in
  let continue = ref true in
  while !continue do
    if try_op st "+" then
      lhs := Ast.Binop (Ast.Add, !lhs, multiplicative st)
    else if try_op st "-" then
      lhs := Ast.Binop (Ast.Sub, !lhs, multiplicative st)
    else continue := false
  done;
  !lhs

and multiplicative st =
  let lhs = ref (unary st) in
  let continue = ref true in
  while !continue do
    if try_op st "*" then lhs := Ast.Binop (Ast.Mul, !lhs, unary st)
    else if try_op st "/" then lhs := Ast.Binop (Ast.Div, !lhs, unary st)
    else continue := false
  done;
  !lhs

and unary st =
  if try_op st "-" then Ast.Neg (unary st)
  else primary st

and primary st =
  match peek st with
  | Lexer.IDENT name ->
      advance st;
      if try_op st "." then Ast.Col (Some name, ident st)
      else Ast.Col (None, name)
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _
  | Lexer.KW ("null" | "true" | "false" | "date") ->
      Ast.Lit (literal st)
  | Lexer.KW (("count" | "sum" | "avg" | "min" | "max") as f) ->
      advance st;
      eat_op st "(";
      let agg =
        if f = "count" && try_op st "*" then Ast.Agg (Ast.Count_star, None)
        else
          let e = expr st in
          let func =
            match f with
            | "count" -> Ast.Count
            | "sum" -> Ast.Sum
            | "avg" -> Ast.Avg
            | "min" -> Ast.Min
            | _ -> Ast.Max
          in
          Ast.Agg (func, Some e)
      in
      eat_op st ")";
      agg
  | Lexer.OP "(" ->
      advance st;
      let e = expr st in
      eat_op st ")";
      e
  | _ -> fail st "expected an expression"

(* ---------- conditions ---------- *)

let rec cond st = or_cond st

and or_cond st =
  let lhs = ref (and_cond st) in
  while try_kw st "or" do
    lhs := Ast.Or (!lhs, and_cond st)
  done;
  !lhs

and and_cond st =
  let lhs = ref (not_cond st) in
  while try_kw st "and" do
    lhs := Ast.And (!lhs, not_cond st)
  done;
  !lhs

and not_cond st =
  if try_kw st "not" then
    match peek st with
    | Lexer.KW "exists" ->
        advance st;
        Ast.Not_exists (parenthesized_query st)
    | _ -> Ast.Not (not_cond st)
  else predicate st

and predicate st =
  match peek st with
  | Lexer.KW "exists" ->
      advance st;
      Ast.Exists (parenthesized_query st)
  | Lexer.KW "true" ->
      advance st;
      Ast.True_
  | Lexer.OP "(" -> (
      (* backtracking: "(cond)" vs "(expr) <tail>" *)
      let saved = st.cursor in
      match
        advance st;
        let c = cond st in
        eat_op st ")";
        c
      with
      | c -> (
          (* reject "(expr)" mis-parsed as cond if a predicate tail
             follows, e.g. "(a.x) > 1" — retry as expression *)
          match peek st with
          | Lexer.OP o when cmpop_of_string o <> None ->
              st.cursor <- saved;
              expr_predicate st
          | Lexer.KW ("is" | "in" | "between" | "like" | "not") ->
              st.cursor <- saved;
              expr_predicate st
          | _ -> c)
      | exception Parse_error_at _ ->
          st.cursor <- saved;
          expr_predicate st)
  | _ -> expr_predicate st

and expr_predicate st =
  let e = expr st in
  predicate_tail st e

and predicate_tail st e =
  match peek st with
  | Lexer.KW "is" ->
      advance st;
      if try_kw st "not" then begin
        eat_kw st "null";
        Ast.Is_not_null e
      end
      else begin
        eat_kw st "null";
        Ast.Is_null e
      end
  | Lexer.KW "in" ->
      advance st;
      in_tail st e ~negated:false
  | Lexer.KW "like" ->
      advance st;
      Ast.Like (e, like_pattern st)
  | Lexer.KW "not" ->
      advance st;
      if try_kw st "in" then in_tail st e ~negated:true
      else if try_kw st "like" then Ast.Not (Ast.Like (e, like_pattern st))
      else if try_kw st "between" then begin
        let lo = expr st in
        eat_kw st "and";
        let hi = expr st in
        Ast.Not (Ast.Between (e, lo, hi))
      end
      else fail st "expected IN, LIKE or BETWEEN after NOT"
  | Lexer.KW "between" ->
      advance st;
      let lo = expr st in
      eat_kw st "and";
      let hi = expr st in
      Ast.Between (e, lo, hi)
  | Lexer.OP o when cmpop_of_string o <> None -> (
      let op = Option.get (cmpop_of_string o) in
      advance st;
      match peek st with
      | Lexer.KW ("any" | "some") ->
          advance st;
          Ast.Quant_cmp (e, op, Ast.Any, parenthesized_query st)
      | Lexer.KW "all" ->
          advance st;
          Ast.Quant_cmp (e, op, Ast.All, parenthesized_query st)
      | Lexer.OP "(" when peek2 st = Lexer.KW "select" ->
          Ast.Scalar_cmp (e, op, parenthesized_query st)
      | _ -> Ast.Cmp (op, e, expr st))
  | _ -> fail st "expected a predicate"

and like_pattern st =
  match peek st with
  | Lexer.STRING p ->
      advance st;
      p
  | _ -> fail st "expected a string pattern after LIKE"

and in_tail st e ~negated =
  eat_op st "(";
  match peek st with
  | Lexer.KW "select" ->
      let q = query st in
      eat_op st ")";
      if negated then Ast.Not_in_query (e, q) else Ast.In_query (e, q)
  | _ ->
      let vs = ref [ literal st ] in
      while try_op st "," do
        vs := literal st :: !vs
      done;
      eat_op st ")";
      let l = Ast.In_list (e, List.rev !vs) in
      if negated then Ast.Not l else l

and parenthesized_query st =
  eat_op st "(";
  let q = query st in
  eat_op st ")";
  q

(* ---------- queries ---------- *)

and select_item st =
  match peek st with
  | Lexer.OP "*" ->
      advance st;
      Ast.Star
  | Lexer.IDENT t
    when peek2 st = Lexer.OP "."
         && st.cursor + 2 < Array.length st.tokens
         && st.tokens.(st.cursor + 2) = Lexer.OP "*" ->
      advance st;
      advance st;
      advance st;
      Ast.Table_star t
  | _ ->
      let e = expr st in
      let alias = alias_opt st in
      Ast.Sel_expr (e, alias)

and alias_opt st =
  if try_kw st "as" then Some (ident st)
  else
    match peek st with
    | Lexer.IDENT a ->
        advance st;
        Some a
    | _ -> None

and from_item st =
  let t = ident st in
  let alias =
    if try_kw st "as" then Some (ident st)
    else
      match peek st with
      | Lexer.IDENT a ->
          advance st;
          Some a
      | _ -> None
  in
  (t, alias)

and query st =
  eat_kw st "select";
  let distinct = try_kw st "distinct" in
  let select = ref [ select_item st ] in
  while try_op st "," do
    select := select_item st :: !select
  done;
  eat_kw st "from";
  let from = ref [ from_item st ] in
  while try_op st "," do
    from := from_item st :: !from
  done;
  let where = if try_kw st "where" then Some (cond st) else None in
  let group_by =
    if try_kw st "group" then begin
      eat_kw st "by";
      let gs = ref [ expr st ] in
      while try_op st "," do
        gs := expr st :: !gs
      done;
      List.rev !gs
    end
    else []
  in
  let having = if try_kw st "having" then Some (cond st) else None in
  let order_by =
    if try_kw st "order" then begin
      eat_kw st "by";
      let one st =
        let e = expr st in
        let dir =
          if try_kw st "desc" then `Desc
          else begin
            ignore (try_kw st "asc");
            `Asc
          end
        in
        (e, dir)
      in
      let os = ref [ one st ] in
      while try_op st "," do
        os := one st :: !os
      done;
      List.rev !os
    end
    else []
  in
  let limit =
    if try_kw st "limit" then (
      match peek st with
      | Lexer.INT n ->
          advance st;
          Some n
      | _ -> fail st "expected an integer after LIMIT")
    else None
  in
  {
    Ast.distinct;
    select = List.rev !select;
    from = List.rev !from;
    where;
    group_by;
    having;
    order_by;
    limit;
  }

(* ---------- statements (set operations) ---------- *)

let rec statement st = union_chain st

and union_chain st =
  let lhs = ref (intersect_chain st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.KW (("union" | "except") as k) ->
        advance st;
        let all = try_kw st "all" in
        let op = if k = "union" then `Union else `Except in
        lhs := Ast.Setop ({ Ast.op; all }, !lhs, intersect_chain st)
    | _ -> continue := false
  done;
  !lhs

and intersect_chain st =
  let lhs = ref (setop_primary st) in
  while try_kw st "intersect" do
    let all = try_kw st "all" in
    lhs := Ast.Setop ({ Ast.op = `Intersect; all }, !lhs, setop_primary st)
  done;
  !lhs

and setop_primary st =
  if try_op st "(" then begin
    let s = statement st in
    eat_op st ")";
    s
  end
  else Ast.Select (query st)

(* ---------- commands (DDL / DML) ---------- *)

let type_name st : Ttype.t =
  let named = function
    | "int" | "integer" -> Some Ttype.Int
    | "float" | "real" | "double" | "decimal" | "numeric" -> Some Ttype.Float
    | "string" | "text" | "varchar" | "char" -> Some Ttype.String
    | "bool" | "boolean" -> Some Ttype.Bool
    | _ -> None
  in
  match peek st with
  | Lexer.IDENT n -> (
      match named n with
      | Some ty ->
          advance st;
          (* tolerate a length like varchar(25) *)
          if try_op st "(" then begin
            (match peek st with
            | Lexer.INT _ -> advance st
            | _ -> fail st "expected a length");
            eat_op st ")"
          end;
          ty
      | None -> fail st (Printf.sprintf "unknown type %s" n))
  | Lexer.KW "date" ->
      advance st;
      Ttype.Date
  | _ -> fail st "expected a type name"

let create_table st =
  eat_kw st "table";
  let table = ident st in
  eat_op st "(";
  let columns = ref [] in
  let key = ref [] in
  let item () =
    if try_kw st "primary" then begin
      eat_kw st "key";
      eat_op st "(";
      let ks = ref [ ident st ] in
      while try_op st "," do
        ks := ident st :: !ks
      done;
      eat_op st ")";
      if !key <> [] then fail st "duplicate PRIMARY KEY clause";
      key := List.rev !ks
    end
    else begin
      let cd_name = ident st in
      let cd_type = type_name st in
      let cd_not_null =
        if try_kw st "not" then begin
          eat_kw st "null";
          true
        end
        else false
      in
      columns := { Ast.cd_name; cd_type; cd_not_null } :: !columns
    end
  in
  item ();
  while try_op st "," do
    item ()
  done;
  eat_op st ")";
  if !key = [] then
    fail st "CREATE TABLE requires a PRIMARY KEY (…) clause";
  Ast.Create_table { table; columns = List.rev !columns; key = !key }

let insert st =
  eat_kw st "into";
  let table = ident st in
  match peek st with
  | Lexer.KW "values" ->
      advance st;
      let row () =
        eat_op st "(";
        let vs = ref [ literal st ] in
        while try_op st "," do
          vs := literal st :: !vs
        done;
        eat_op st ")";
        List.rev !vs
      in
      let rows = ref [ row () ] in
      while try_op st "," do
        rows := row () :: !rows
      done;
      Ast.Insert_values (table, List.rev !rows)
  | Lexer.KW "select" | Lexer.OP "(" ->
      Ast.Insert_select (table, statement st)
  | _ -> fail st "expected VALUES or SELECT after INSERT INTO t"

let with_query st =
  let cte () =
    let name = ident st in
    eat_kw st "as";
    eat_op st "(";
    let s = statement st in
    eat_op st ")";
    (name, s)
  in
  let ctes = ref [ cte () ] in
  while try_op st "," do
    ctes := cte () :: !ctes
  done;
  Ast.With_query (List.rev !ctes, statement st)

let command st : Ast.command =
  match peek st with
  | Lexer.KW "with" ->
      advance st;
      with_query st
  | Lexer.KW "create" ->
      advance st;
      create_table st
  | Lexer.KW "drop" ->
      advance st;
      eat_kw st "table";
      Ast.Drop_table (ident st)
  | Lexer.KW "insert" ->
      advance st;
      insert st
  | Lexer.KW "delete" ->
      advance st;
      eat_kw st "from";
      let table = ident st in
      let where = if try_kw st "where" then Some (cond st) else None in
      Ast.Delete (table, where)
  | Lexer.KW "update" ->
      advance st;
      let table = ident st in
      eat_kw st "set";
      let assignment () =
        let c = ident st in
        eat_op st "=";
        (c, expr st)
      in
      let assigns = ref [ assignment () ] in
      while try_op st "," do
        assigns := assignment () :: !assigns
      done;
      let where = if try_kw st "where" then Some (cond st) else None in
      Ast.Update (table, List.rev !assigns, where)
  | Lexer.IDENT "analyze" -> (
      advance st;
      match peek st with
      | Lexer.IDENT name ->
          advance st;
          Ast.Analyze (Some name)
      | Lexer.EOF -> Ast.Analyze None
      | t ->
          fail st
            (Format.asprintf "expected a table name after ANALYZE, got %a"
               Lexer.pp_token t))
  | _ -> Ast.Cmd_query (statement st)

(* ---------- error rendering ---------- *)

type located_error = { message : string; offset : int option; excerpt : string }

(* One display line of the query around [pos], control characters
   flattened to spaces, with a caret line pointing at the offset. *)
let excerpt src pos =
  let clean =
    String.map (fun c -> if c = '\n' || c = '\t' || c = '\r' then ' ' else c) src
  in
  let n = String.length clean in
  let pos = min (max pos 0) n in
  let width = 64 in
  let from = max 0 (min (pos - (width / 2)) (n - width)) in
  let upto = min n (from + width) in
  let prefix = if from > 0 then "…" else "" in
  let suffix = if upto < n then "…" else "" in
  let line = prefix ^ String.sub clean from (upto - from) ^ suffix in
  let caret_col = String.length prefix + (pos - from) in
  Printf.sprintf "  %s\n  %s^" line (String.make caret_col ' ')

let render_error (e : located_error) =
  match e.offset with
  | None -> e.message
  | Some pos -> Printf.sprintf "%s at offset %d\n%s" e.message pos e.excerpt

let located f src =
  match f src with
  | v -> Ok v
  | exception Parse_error_at (m, pos) ->
      Error { message = m; offset = Some pos; excerpt = excerpt src pos }
  | exception Parse_error m -> Error { message = m; offset = None; excerpt = "" }
  | exception Lexer.Lex_error (m, pos) ->
      Error
        {
          message = "lexical error: " ^ m;
          offset = Some pos;
          excerpt = excerpt src pos;
        }

let with_state src f =
  let toks = Lexer.tokenize_loc src in
  let tokens = Array.of_list (List.map fst toks) in
  let offsets = Array.of_list (List.map snd toks) in
  let st = { tokens; offsets; cursor = 0 } in
  let result = f st in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> fail st (Format.asprintf "trailing input starting with %a" Lexer.pp_token t));
  result

(* exception-raising entry points keep raising the public [Parse_error],
   now with the offset rendered into the message *)
let raising f src =
  try f src
  with Parse_error_at (m, pos) ->
    raise (Parse_error (Printf.sprintf "%s at offset %d" m pos))

let parse src = raising (fun src -> with_state src query) src
let parse_expr src = raising (fun src -> with_state src expr) src
let parse_statement src = raising (fun src -> with_state src statement) src
let parse_command src = raising (fun src -> with_state src command) src

let parse_located src = located (fun src -> with_state src query) src

let parse_statement_located src =
  located (fun src -> with_state src statement) src

let parse_command_located src = located (fun src -> with_state src command) src

let errors_to_result f src = Result.map_error render_error (f src)

let parse_result src = errors_to_result parse_located src
let parse_statement_result src = errors_to_result parse_statement_located src
let parse_command_result src = errors_to_result parse_command_located src
