type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | OP of string
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "select"; "distinct"; "from"; "where"; "and"; "or"; "not"; "in";
    "exists"; "any"; "some"; "all"; "between"; "is"; "null"; "as";
    "like"; "group"; "order"; "by"; "having"; "asc"; "desc"; "limit"; "date";
    "true"; "false"; "count"; "sum"; "avg"; "min"; "max"; "union";
    "intersect"; "except"; "create"; "table"; "drop"; "insert"; "into";
    "values"; "delete"; "primary"; "key"; "with"; "update"; "set";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize_loc src =
  let n = String.length src in
  let tokens = ref [] in
  let tok_start = ref 0 in
  let emit t = tokens := (t, !tok_start) :: !tokens in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let fail msg = raise (Lex_error (msg, !pos)) in
  while !pos < n do
    tok_start := !pos;
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.lowercase_ascii (String.sub src start (!pos - start)) in
      if is_keyword word then emit (KW word) else emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float =
        !pos < n && src.[!pos] = '.'
        && match peek 1 with Some d -> is_digit d | None -> false
      in
      if is_float then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        (* exponent *)
        if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
          incr pos;
          if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
          while !pos < n && is_digit src.[!pos] do
            incr pos
          done
        end;
        emit (FLOAT (float_of_string (String.sub src start (!pos - start))))
      end
      else emit (INT (int_of_string (String.sub src start (!pos - start))))
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string literal"
        else if src.[!pos] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2;
            go ()
          end
          else incr pos
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos;
          go ()
        end
      in
      go ();
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" ->
          emit (OP (if two = "!=" then "<>" else two));
          pos := !pos + 2
      | _ -> (
          match c with
          | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '.' | ',' | '(' | ')'
            ->
              emit (OP (String.make 1 c));
              incr pos
          | _ -> fail (Printf.sprintf "unexpected character %C" c))
    end
  done;
  List.rev ((EOF, n) :: !tokens)

let tokenize src = List.map fst (tokenize_loc src)

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | INT i -> Format.fprintf ppf "int %d" i
  | FLOAT f -> Format.fprintf ppf "float %g" f
  | STRING s -> Format.fprintf ppf "string %S" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | OP s -> Format.fprintf ppf "%S" s
  | EOF -> Format.pp_print_string ppf "<eof>"
