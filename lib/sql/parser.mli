(** Recursive-descent parser for the SQL subset of {!Ast}. *)

exception Parse_error of string

type located_error = {
  message : string;
  offset : int option;  (** byte offset of the offending token *)
  excerpt : string;
      (** a one-line window of the query with a caret under the offset;
          empty when there is no offset *)
}

val excerpt : string -> int -> string
(** [excerpt src pos] renders the caret excerpt used in
    {!located_error}. *)

val render_error : located_error -> string
(** ["<message> at offset <n>\n  <query excerpt>\n  ^"]. *)

val parse_located : string -> (Ast.query, located_error) result
val parse_statement_located : string -> (Ast.statement, located_error) result
val parse_command_located : string -> (Ast.command, located_error) result

val parse : string -> Ast.query
(** A single SELECT query.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)

val parse_result : string -> (Ast.query, string) result
(** Error-returning variant; lex and parse errors become messages. *)

val parse_statement : string -> Ast.statement
(** A statement: SELECT queries combined with
    [UNION / INTERSECT / EXCEPT [ALL]] (INTERSECT binds tighter;
    parentheses override).  Subqueries remain plain SELECTs. *)

val parse_statement_result : string -> (Ast.statement, string) result

val parse_command : string -> Ast.command
(** A statement, or DDL/DML:
    [CREATE TABLE t (c TYPE [NOT NULL] …, PRIMARY KEY (c, …))] with
    types INT(EGER) / FLOAT / REAL / DOUBLE / STRING / TEXT / VARCHAR /
    BOOL(EAN) / DATE; [DROP TABLE t];
    [INSERT INTO t VALUES (lit, …), …] or [INSERT INTO t SELECT …];
    [DELETE FROM t [WHERE …]]. *)

val parse_command_result : string -> (Ast.command, string) result

val parse_expr : string -> Ast.expr
(** Parse a standalone scalar expression (used by tests). *)
