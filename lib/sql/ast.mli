(** Abstract syntax of the SQL subset.

    The subset covers everything the paper's query class needs —
    SELECT/FROM/WHERE blocks nested to any depth through EXISTS /
    NOT EXISTS / IN / NOT IN / θ SOME/ANY / θ ALL, correlation to any
    enclosing block — plus the flat-query conveniences used by the
    examples (DISTINCT, ORDER BY, GROUP BY/HAVING with aggregates,
    LIMIT, BETWEEN, IN value-lists, IS [NOT] NULL, scalar-subquery
    comparison). *)

open Nra_relational

type cmpop = Three_valued.cmpop

type quantifier = Any | All
(** [SOME] parses as [Any]. *)

type binop = Add | Sub | Mul | Div

type agg_func = Count_star | Count | Sum | Avg | Min | Max

type expr =
  | Col of string option * string  (** optionally qualified column *)
  | Lit of Value.t
  | Binop of binop * expr * expr
  | Neg of expr
  | Agg of agg_func * expr option
      (** aggregate call; only legal in SELECT / HAVING / ORDER BY of a
          grouped or globally-aggregated block *)

type select_item =
  | Star
  | Table_star of string  (** [t.*] *)
  | Sel_expr of expr * string option  (** expression AS alias *)

type cond =
  | True_
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Is_null of expr
  | Is_not_null of expr
  | Between of expr * expr * expr
  | In_list of expr * Value.t list
  | Like of expr * string  (** pattern with [%] and [_]; no ESCAPE *)
  | Exists of query
  | Not_exists of query
  | In_query of expr * query
  | Not_in_query of expr * query
  | Quant_cmp of expr * cmpop * quantifier * query
  | Scalar_cmp of expr * cmpop * query
      (** comparison against a scalar (single-value) subquery *)

and query = {
  distinct : bool;
  select : select_item list;
  from : (string * string option) list;  (** (table, alias) *)
  where : cond option;
  group_by : expr list;
  having : cond option;
  order_by : (expr * [ `Asc | `Desc ]) list;
  limit : int option;
}

val simple_query : ?distinct:bool -> select:select_item list ->
  from:(string * string option) list -> ?where:cond -> unit -> query

(** {1 Statements}

    A statement combines SELECT queries with set operations.
    [INTERSECT] binds tighter than [UNION]/[EXCEPT]; all three are
    left-associative.  An ORDER BY / LIMIT written after the last
    component applies to the whole combination (hoisted by the
    evaluator). *)

type setop = { op : [ `Union | `Intersect | `Except ]; all : bool }

type statement =
  | Select of query
  | Setop of setop * statement * statement

(** {1 Commands} — DDL and DML for the CLI/REPL story *)

type column_def = {
  cd_name : string;
  cd_type : Ttype.t;
  cd_not_null : bool;
}

type command =
  | Cmd_query of statement
  | Create_table of {
      table : string;
      columns : column_def list;
      key : string list;  (** PRIMARY KEY — mandatory in this engine *)
    }
  | Drop_table of string
  | Insert_values of string * Value.t list list
  | Insert_select of string * statement
  | Delete of string * cond option
      (** DELETE FROM t [WHERE …] — the condition may contain
          subqueries *)
  | With_query of (string * statement) list * statement
      (** WITH n AS (…), … SELECT …: each common table expression is
          materialized once, in order, and visible to later ones and to
          the main statement *)
  | Update of string * (string * expr) list * cond option
      (** UPDATE t SET c = e, … [WHERE …]; assignments see the
          pre-update row, the WHERE may contain subqueries *)
  | Analyze of string option
      (** ANALYZE [t] — collect optimizer statistics for one table, or
          for every table in the catalog when no name is given *)

(** {1 Structure} *)

val subqueries : cond -> query list
(** Immediate subqueries of a condition (not recursive). *)

val query_depth : query -> int
(** 0 for a flat query; 1 + max over subqueries otherwise (the paper's
    "n-level nested query"). *)

val is_flat : query -> bool

val cond_conjuncts : cond -> cond list

(** {1 Printing} — emits re-parsable SQL *)

val pp_expr : Format.formatter -> expr -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_query : Format.formatter -> query -> unit
val pp_statement : Format.formatter -> statement -> unit
val to_string : query -> string
val statement_to_string : statement -> string
