(** Columnar batches: typed structure-of-arrays mirrors of relations.

    A batch stores one unboxed array per column ([int array],
    [float array], [string array], bools in [Bytes]) plus a per-column
    null bitmap, so the hot kernels — morsel filter, hash-join build
    and probe, nest partitioning — run column-at-a-time over flat
    memory instead of chasing a [Value.t] pointer and matching a
    variant tag per cell.  Rows remain the engine's carrier: kernels
    use batches to {e decide} (selection vectors, key-hash vectors)
    and then gather the {e original} rows by index, which is what
    makes the columnar path bit-identical to row-at-a-time execution
    at every pool size and frame budget.

    Columns are built lazily.  Forcing happens on the owning domain
    only — {!filter_plan} and {!hash_on} force the columns they need
    at compile time, before any [Pool.parallel_chunks] region starts;
    worker domains only ever see plain arrays.  A column is typed only
    when all its non-null cells share one constructor; mixed columns
    (legal under [Ttype.Float] admitting [Int] values) fall back to a
    boxed representation so that {!of_relation} → {!to_relation} is
    structurally exact for every relation.

    See docs/PERF.md ("Columnar batches") for layout and the
    vectorizable predicate subset, docs/STORAGE.md for the columnar
    spill page format built on {!pack}. *)

(** {1 Toggle}

    [NRA_COLUMNAR] (default on; "0"/"false"/"off"/"no" disable) or
    [--columnar] on the CLI.  Disabling clears the scan cache; every
    kernel then takes its row-at-a-time path. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Null and selection bitmaps} *)

module Bitset : sig
  type t = Bytes.t

  val create : int -> t
  (** All bits clear. *)

  val set : t -> int -> unit
  val get : t -> int -> bool
end

(** {1 Batches} *)

type col =
  | Ints of int array
  | Floats of float array
  | Strings of string array
  | Bools of Bytes.t  (** one byte per cell, ['\001'] = true *)
  | Dates of int array
  | Boxed of Value.t array
      (** mixed-constructor columns: exact but unvectorized *)

type t

val of_relation : Relation.t -> t
(** Wrap a relation; columns build lazily on first access. *)

val to_relation : t -> Relation.t
(** Rebuild rows.  [to_relation (of_relation r)] is structurally
    identical to [r] for every value mix, NULLs included. *)

val length : t -> int
val schema : t -> Schema.t

val column : t -> int -> col * Bitset.t
(** Force and return column [i] with its null bitmap (bit set = NULL).
    Owner-domain only (columns are lazy). *)

(** {1 Scan-time cache}

    Keyed on the physical identity of the relation's rows array —
    sound because relations are immutable (DML builds fresh arrays and
    [Table.alias] shares the existing one).  Owner-domain only. *)

val prime : Relation.t -> unit
(** Build (lazily) and cache a batch for a base relation; called at
    scan time by [Frame.block_relation].  No-op when disabled or
    already cached. *)

val find : Relation.t -> t option
val for_relation : Relation.t -> t
(** Cached batch if primed, otherwise a fresh transient one. *)

val drop_cache : unit -> unit

(** {1 Kernel services} *)

val hash_on : t -> int array -> int array * Bitset.t
(** Per-row key-hash vector over the given column positions: element
    [i] equals [Row.hash_on idxs row_i] exactly (same fold, computed
    column-at-a-time through [Value.hash_int]/[hash_float] on unboxed
    cells), and the bitmap flags rows with a NULL in any key position
    ([Row.has_null_on]).  Forces the key columns; call owner-side. *)

val filter_plan :
  Expr.pred -> Relation.t -> (lo:int -> hi:int -> int array) option
(** Compile a predicate to a vectorized evaluator.  [Some plan] when
    the whole predicate falls in the vectorizable subset — [Lit3],
    [Cmp] over [Col]/[Const], [Is_null]/[Is_not_null], [In_list],
    [Between], closed under [And]/[Or] — where evaluation is total and
    agrees with [Expr.holds] on every row.  [plan ~lo ~hi] returns the
    ascending indices in [\[lo, hi)] satisfying the predicate (a
    selection vector); safe to call from worker domains once compiled.
    [None] when disabled, on an empty relation, or when any part of
    the predicate is outside the subset ([Not] does not decompose
    under WHERE semantics; [Like] and arithmetic can raise) — callers
    then fall back to [Expr.holds] rows. *)

(** {1 Columnar spill pages}

    [Bufpool.Spill] packs each flushed page column-wise when the
    columnar core is enabled: unboxed cell storage instead of per-cell
    [Value.t] blocks, reconstructed exactly on re-read. *)

type packed

val pack : Row.t array -> packed option
(** [None] if rows disagree on arity (never the case for spill pages). *)

val packed_length : packed -> int
val packed_iter : packed -> (Row.t -> unit) -> unit
(** Rebuild and visit rows in order; pure, callable from workers. *)
