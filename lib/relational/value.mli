(** SQL values, including [NULL].

    Values are the atoms of the (nested) relational model.  Every
    comparison involving [Null] is three-valued (see {!Three_valued});
    this module only provides the {e total} structural operations needed
    for grouping, hashing and sorting, where SQL semantics require that
    [NULL] compares equal to itself (as in [GROUP BY] and [ORDER BY]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int  (** days since 1970-01-01; range-comparable like an int *)

val is_null : t -> bool

(** {1 Total structural order}

    Used for sorting, grouping and set operations.  [Null] sorts first and
    is equal to itself.  Values of distinct runtime types are ordered by an
    arbitrary but fixed type rank; well-typed plans never compare values of
    different types, but the total order keeps sorting robust. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val hash_int : int -> int
(** [hash_int i = hash (Int i)] without constructing the value — and,
    for [|i| < 2^53], without the intermediate float the boxed path
    used to allocate.  The columnar kernels ({!Batch}) hash unboxed
    column cells through these. *)

val hash_float : float -> int
(** [hash_float f = hash (Float f)]; agrees with {!hash_int} on every
    int/float pair that {!compare} makes equal. *)

(** {1 Three-valued comparison}

    [cmp3 a b] is [None] when either side is [Null] (SQL Unknown),
    otherwise [Some c] with [c] the sign of the comparison.  [Int] and
    [Float] compare numerically across the two types. *)

val cmp3 : t -> t -> int option

(** {1 Arithmetic}

    NULL-propagating; [Int]/[Float] promote to [Float] when mixed.
    Dates support interval arithmetic: [date ± int] is a date shifted by
    that many days, [date - date] the signed day count.
    @raise Type_error on other non-numeric operands. *)

exception Type_error of string

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Division by zero yields [Null] (the forgiving option; a DBMS would
    raise a runtime error). *)
val div : t -> t -> t
val neg : t -> t

(** {1 Dates} *)

val date_of_string : string -> t
(** [date_of_string "1994-03-17"] parses an ISO date into [Date days].
    @raise Type_error on malformed input. *)

val string_of_date : int -> string

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val type_name : t -> string
(** Runtime type name, for error messages. *)
