type t = Value.t array

let project_arr row idxs = Array.map (fun i -> row.(i)) idxs
let project row idxs = project_arr row (Array.of_list idxs)
let concat = Array.append
let nulls n = Array.make n Value.Null

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then Int.compare la lb
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let hash row =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 row

(* A keyed hash table over whole rows: grouping and duplicate-style
   lookups index by projected key rows, and a keyed table beats the
   (hash, assoc-scan) encoding it replaces. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash r = hash r land max_int
end)

let compare_on idxs a b =
  let n = Array.length idxs in
  let rec go i =
    if i >= n then 0
    else
      let c = Value.compare a.(idxs.(i)) b.(idxs.(i)) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal_on idxs a b = compare_on idxs a b = 0

let hash_on idxs row =
  Array.fold_left (fun acc i -> (acc * 31) + Value.hash row.(i)) 17 idxs

let has_null_on idxs row =
  Array.exists (fun i -> Value.is_null row.(i)) idxs

let pp ppf row =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (Array.to_list row)
