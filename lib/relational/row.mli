(** Tuples (rows) are value arrays; this module collects the positional
    operations the physical operators need.  All comparison/hash
    functions here use the {e total} order of {!Value} (NULL = NULL), as
    required for grouping, sorting and duplicate elimination. *)

type t = Value.t array

val project : t -> int list -> t
val project_arr : t -> int array -> t
val concat : t -> t -> t
val nulls : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

module Tbl : Hashtbl.S with type key = t
(** Hash table keyed by whole rows (total order: NULL = NULL), for
    group-by and keyed lookups. *)

(** {1 Keyed operations} — over a projection of positions *)

val compare_on : int array -> t -> t -> int
val equal_on : int array -> t -> t -> bool
val hash_on : int array -> t -> int

val has_null_on : int array -> t -> bool
(** Any NULL among the given positions?  Equi-join keys containing NULL
    never match. *)

val pp : Format.formatter -> t -> unit
