(* Columnar batches: structure-of-arrays mirrors of flat relations.

   A batch holds one typed, unboxed array per column plus a per-column
   null bitmap.  The hot kernels (morsel filter, hash-join build and
   probe, nest partitioning) run over these flat arrays — no Value.t
   variant dispatch or pointer chase per cell — while rows stay the
   carrier at operator boundaries: kernels gather *original* rows by
   index, so the columnar path is bit-identical to row-at-a-time.

   Columns are built lazily and forced on the owning domain only
   (compilation of a filter plan or a hash vector forces what it
   needs *before* entering [Pool.parallel_chunks]); worker domains see
   only plain arrays.  A column is typed only when every non-null cell
   shares one Value constructor — mixed Int/Float columns fall back to
   [Boxed], which keeps [to_relation (of_relation r)] structurally
   exact. *)

module T3 = Three_valued

(* ------------------------------------------------------------------ *)
(* Toggle                                                              *)

let env_enabled () =
  match Sys.getenv_opt "NRA_COLUMNAR" with
  | None -> true
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "false" | "off" | "no" -> false
      | _ -> true)

let enabled_flag = ref (env_enabled ())
let enabled () = !enabled_flag

(* ------------------------------------------------------------------ *)
(* Null bitmaps (bit set = NULL) and selection bitmaps (bit set = keep) *)

module Bitset = struct
  type t = Bytes.t

  let create n = Bytes.make ((n + 7) / 8) '\000'

  let set b i =
    let j = i lsr 3 in
    Bytes.unsafe_set b j
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

  let get b i =
    Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let full n =
    let b = Bytes.make ((n + 7) / 8) '\255' in
    (* zero the tail bits past [n] so unions stay exact *)
    for i = n to (Bytes.length b * 8) - 1 do
      let j = i lsr 3 in
      Bytes.unsafe_set b j
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get b j) land lnot (1 lsl (i land 7))))
    done;
    b

  let inter_into ~into b =
    for j = 0 to Bytes.length into - 1 do
      Bytes.unsafe_set into j
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get into j)
           land Char.code (Bytes.unsafe_get b j)))
    done

  let union_into ~into b =
    for j = 0 to Bytes.length into - 1 do
      Bytes.unsafe_set into j
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get into j)
           lor Char.code (Bytes.unsafe_get b j)))
    done

  let popcount b =
    let n = ref 0 in
    for j = 0 to Bytes.length b - 1 do
      let c = ref (Char.code (Bytes.unsafe_get b j)) in
      while !c <> 0 do
        c := !c land (!c - 1);
        incr n
      done
    done;
    !n

  (* Indices of set bits, offset by [base], ascending. *)
  let indices ~base b =
    let out = Array.make (popcount b) 0 in
    let k = ref 0 in
    for j = 0 to Bytes.length b - 1 do
      let c = Char.code (Bytes.unsafe_get b j) in
      if c <> 0 then
        for bit = 0 to 7 do
          if c land (1 lsl bit) <> 0 then begin
            out.(!k) <- base + (j lsl 3) + bit;
            incr k
          end
        done
    done;
    out
end

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)

type col =
  | Ints of int array
  | Floats of float array
  | Strings of string array
  | Bools of Bytes.t  (** one byte per cell, ['\001'] = true *)
  | Dates of int array
  | Boxed of Value.t array
      (** mixed-constructor columns: exact but unvectorized *)

type t = {
  schema : Schema.t;
  length : int;
  cols : (col * Bitset.t) Lazy.t array;
}

let length t = t.length
let schema t = t.schema
let column t i = Lazy.force t.cols.(i)

(* Classify then fill: a column is typed only when every non-null cell
   shares the constructor of the first non-null one. *)
let build_column (get : int -> Value.t) n : col * Bitset.t =
  let nulls = Bitset.create n in
  let kind = ref `All_null in
  (try
     for i = 0 to n - 1 do
       match get i with
       | Value.Null -> ()
       | v ->
           let k =
             match v with
             | Value.Null -> assert false
             | Value.Bool _ -> `Bool
             | Value.Int _ -> `Int
             | Value.Float _ -> `Float
             | Value.String _ -> `String
             | Value.Date _ -> `Date
           in
           if !kind = `All_null then kind := k
           else if !kind <> k then begin
             kind := `Mixed;
             raise Exit
           end
     done
   with Exit -> ());
  let col =
    match !kind with
    | `Mixed ->
        let a = Array.make n Value.Null in
        for i = 0 to n - 1 do
          let v = get i in
          a.(i) <- v;
          if Value.is_null v then Bitset.set nulls i
        done;
        Boxed a
    | `All_null ->
        for i = 0 to n - 1 do
          Bitset.set nulls i
        done;
        Ints (Array.make n 0)
    | `Int ->
        let a = Array.make n 0 in
        for i = 0 to n - 1 do
          match get i with
          | Value.Int x -> a.(i) <- x
          | _ -> Bitset.set nulls i
        done;
        Ints a
    | `Float ->
        let a = Array.make n 0.0 in
        for i = 0 to n - 1 do
          match get i with
          | Value.Float x -> a.(i) <- x
          | _ -> Bitset.set nulls i
        done;
        Floats a
    | `String ->
        let a = Array.make n "" in
        for i = 0 to n - 1 do
          match get i with
          | Value.String x -> a.(i) <- x
          | _ -> Bitset.set nulls i
        done;
        Strings a
    | `Bool ->
        let a = Bytes.make n '\000' in
        for i = 0 to n - 1 do
          match get i with
          | Value.Bool x -> if x then Bytes.unsafe_set a i '\001'
          | _ -> Bitset.set nulls i
        done;
        Bools a
    | `Date ->
        let a = Array.make n 0 in
        for i = 0 to n - 1 do
          match get i with
          | Value.Date x -> a.(i) <- x
          | _ -> Bitset.set nulls i
        done;
        Dates a
  in
  (col, nulls)

let of_relation rel =
  let rows = Relation.rows rel in
  let n = Array.length rows in
  let arity = Schema.arity (Relation.schema rel) in
  {
    schema = Relation.schema rel;
    length = n;
    cols =
      Array.init arity (fun ci ->
          lazy (build_column (fun i -> rows.(i).(ci)) n));
  }

let value_at (col, nulls) i =
  if Bitset.get nulls i then Value.Null
  else
    match col with
    | Ints a -> Value.Int a.(i)
    | Floats a -> Value.Float a.(i)
    | Strings a -> Value.String a.(i)
    | Bools a -> Value.Bool (Bytes.unsafe_get a i = '\001')
    | Dates a -> Value.Date a.(i)
    | Boxed a -> a.(i)

let to_relation t =
  let arity = Array.length t.cols in
  let cols = Array.map Lazy.force t.cols in
  Relation.make t.schema
    (Array.init t.length (fun i ->
         Array.init arity (fun c -> value_at cols.(c) i)))

(* ------------------------------------------------------------------ *)
(* Scan-time cache, keyed on the rows array's physical identity.
   Relations are immutable (DML builds fresh arrays; [Table.alias]
   shares them), so identity is a sound key.  Owner-domain only. *)

let cache : (Row.t array * t) list ref = ref []
let cache_limit = 32

let find rel =
  let rows = Relation.rows rel in
  List.find_map (fun (k, b) -> if k == rows then Some b else None) !cache

let prime rel =
  if enabled () && not (Relation.is_empty rel) then
    match find rel with
    | Some _ -> ()
    | None ->
        let b = of_relation rel in
        let trimmed =
          if List.length !cache >= cache_limit then
            List.filteri (fun i _ -> i < cache_limit - 1) !cache
          else !cache
        in
        cache := (Relation.rows rel, b) :: trimmed

let drop_cache () = cache := []

let set_enabled b =
  enabled_flag := b;
  if not b then drop_cache ()

let for_relation rel =
  match find rel with Some b -> b | None -> of_relation rel

(* ------------------------------------------------------------------ *)
(* Key-hash vectors for hash join and nest.

   [hash_on t idxs] returns the per-row [Row.hash_on idxs] value (bit
   for bit the same fold, computed column-at-a-time over unboxed cells
   via [Value.hash_int]/[hash_float]) plus a bitmap of rows with a
   NULL in any key position ([Row.has_null_on]).  Null cells still
   contribute [Value.hash Null] to the fold, exactly like the row
   path, because nest keys legitimately contain NULLs. *)

let null_hash = 0x9e3779b9

let hash_on t idxs =
  let n = t.length in
  let h = Array.make n 17 in
  let anynull = Bitset.create n in
  Array.iter
    (fun ci ->
      let col, nulls = column t ci in
      match col with
      | Ints a ->
          for i = 0 to n - 1 do
            let hv =
              if Bitset.get nulls i then begin
                Bitset.set anynull i;
                null_hash
              end
              else Value.hash_int (Array.unsafe_get a i)
            in
            h.(i) <- (h.(i) * 31) + hv
          done
      | Floats a ->
          for i = 0 to n - 1 do
            let hv =
              if Bitset.get nulls i then begin
                Bitset.set anynull i;
                null_hash
              end
              else Value.hash_float (Array.unsafe_get a i)
            in
            h.(i) <- (h.(i) * 31) + hv
          done
      | Strings a ->
          for i = 0 to n - 1 do
            let hv =
              if Bitset.get nulls i then begin
                Bitset.set anynull i;
                null_hash
              end
              else Hashtbl.hash (Array.unsafe_get a i)
            in
            h.(i) <- (h.(i) * 31) + hv
          done
      | Bools a ->
          for i = 0 to n - 1 do
            let hv =
              if Bitset.get nulls i then begin
                Bitset.set anynull i;
                null_hash
              end
              else if Bytes.unsafe_get a i = '\001' then 3
              else 5
            in
            h.(i) <- (h.(i) * 31) + hv
          done
      | Dates a ->
          for i = 0 to n - 1 do
            let hv =
              if Bitset.get nulls i then begin
                Bitset.set anynull i;
                null_hash
              end
              else 7 * Hashtbl.hash (Array.unsafe_get a i)
            in
            h.(i) <- (h.(i) * 31) + hv
          done
      | Boxed a ->
          for i = 0 to n - 1 do
            let v = a.(i) in
            if Value.is_null v then Bitset.set anynull i;
            h.(i) <- (h.(i) * 31) + Value.hash v
          done)
    idxs;
  (h, anynull)

(* ------------------------------------------------------------------ *)
(* Vectorized predicates.

   [filter_plan] compiles the simple conjunctive/comparison forms —
   Lit3 | Cmp over Col/Const | Is_(not_)null | In_list | Between |
   And | Or — into bitmap loops over typed columns, and returns None
   for anything else (Not does not decompose under WHERE-semantics
   [holds], Like and arithmetic scalars can raise), in which case the
   caller falls back to [Expr.holds] on materialized rows.  Within the
   subset, evaluation is total, so vectorized and row-at-a-time
   results coincide exactly, error behavior included. *)

(* Comparison results are classified once into keep-on-{lt,eq,gt}
   booleans so each typed loop is monomorphic with the op hoisted. *)
let keep_of = function
  | T3.Eq -> (false, true, false)
  | T3.Neq -> (true, false, true)
  | T3.Lt -> (true, false, false)
  | T3.Le -> (true, true, false)
  | T3.Gt -> (false, false, true)
  | T3.Ge -> (false, true, true)

(* Float comparison with primitive operators but Float.compare's total
   semantics (NaN equal to itself and below everything else). *)
let fcmp (x : float) (c : float) =
  if x < c then -1
  else if x > c then 1
  else if x = c then 0
  else if c = c then -1 (* x is NaN *)
  else if x = x then 1 (* c is NaN *)
  else 0

type producer = lo:int -> hi:int -> Bitset.t

let const_plan b ~lo ~hi = if b then Bitset.full (hi - lo) else Bitset.create (hi - lo)

let cmp_ints op (a : int array) nulls c : producer =
  let ltk, eqk, gtk = keep_of op in
  fun ~lo ~hi ->
    let out = Bitset.create (hi - lo) in
    for i = lo to hi - 1 do
      if not (Bitset.get nulls i) then begin
        let x = Array.unsafe_get a i in
        if (if x < c then ltk else if x = c then eqk else gtk) then
          Bitset.set out (i - lo)
      end
    done;
    out

let cmp_floats op (get : int -> float) nulls (c : float) : producer =
  let ltk, eqk, gtk = keep_of op in
  fun ~lo ~hi ->
    let out = Bitset.create (hi - lo) in
    for i = lo to hi - 1 do
      if not (Bitset.get nulls i) then begin
        let r = fcmp (get i) c in
        if (if r < 0 then ltk else if r = 0 then eqk else gtk) then
          Bitset.set out (i - lo)
      end
    done;
    out

let cmp_strings op (a : string array) nulls c : producer =
  let ltk, eqk, gtk = keep_of op in
  fun ~lo ~hi ->
    let out = Bitset.create (hi - lo) in
    for i = lo to hi - 1 do
      if not (Bitset.get nulls i) then begin
        let r = String.compare (Array.unsafe_get a i) c in
        if (if r < 0 then ltk else if r = 0 then eqk else gtk) then
          Bitset.set out (i - lo)
      end
    done;
    out

(* Mismatched runtime types, Boxed columns: per-row Value semantics
   (still a flat loop, just with reconstructed cells). *)
let cmp_generic op colpair (c : Value.t) : producer =
 fun ~lo ~hi ->
  let out = Bitset.create (hi - lo) in
  for i = lo to hi - 1 do
    if T3.cmp op (value_at colpair i) c = T3.True then Bitset.set out (i - lo)
  done;
  out

let cmp_col_const b op ci v : producer =
  let ((col, nulls) as pair) = column b ci in
  match (col, v) with
  | _, Value.Null -> const_plan false
  | Ints a, Value.Int c -> cmp_ints op a nulls c
  | Ints a, Value.Float c ->
      cmp_floats op (fun i -> float_of_int (Array.unsafe_get a i)) nulls c
  | Floats a, Value.Float c -> cmp_floats op (fun i -> Array.unsafe_get a i) nulls c
  | Floats a, Value.Int c ->
      cmp_floats op (fun i -> Array.unsafe_get a i) nulls (float_of_int c)
  | Dates a, Value.Date c -> cmp_ints op a nulls c
  | Strings a, Value.String c -> cmp_strings op a nulls c
  | Bools a, Value.Bool c ->
      let ltk, eqk, gtk = keep_of op in
      fun ~lo ~hi ->
        let out = Bitset.create (hi - lo) in
        for i = lo to hi - 1 do
          if not (Bitset.get nulls i) then begin
            let r = Bool.compare (Bytes.unsafe_get a i = '\001') c in
            if (if r < 0 then ltk else if r = 0 then eqk else gtk) then
              Bitset.set out (i - lo)
          end
        done;
        out
  | _ -> cmp_generic op pair v

let cmp_col_col b op ci cj : producer =
  let ((coli, nullsi) as pi) = column b ci in
  let ((colj, nullsj) as pj) = column b cj in
  let ltk, eqk, gtk = keep_of op in
  let masked body : producer =
   fun ~lo ~hi ->
    let out = Bitset.create (hi - lo) in
    for i = lo to hi - 1 do
      if not (Bitset.get nullsi i || Bitset.get nullsj i) then begin
        let r : int = body i in
        if (if r < 0 then ltk else if r = 0 then eqk else gtk) then
          Bitset.set out (i - lo)
      end
    done;
    out
  in
  match (coli, colj) with
  | Ints a, Ints c -> masked (fun i -> Int.compare a.(i) c.(i))
  | Dates a, Dates c -> masked (fun i -> Int.compare a.(i) c.(i))
  | Floats a, Floats c -> masked (fun i -> fcmp a.(i) c.(i))
  | Ints a, Floats c -> masked (fun i -> fcmp (float_of_int a.(i)) c.(i))
  | Floats a, Ints c -> masked (fun i -> fcmp a.(i) (float_of_int c.(i)))
  | Strings a, Strings c -> masked (fun i -> String.compare a.(i) c.(i))
  | _ ->
      fun ~lo ~hi ->
        let out = Bitset.create (hi - lo) in
        for i = lo to hi - 1 do
          if T3.cmp op (value_at pi i) (value_at pj i) = T3.True then
            Bitset.set out (i - lo)
        done;
        out

let null_plan b ci ~want_null : producer =
  let _, nulls = column b ci in
  fun ~lo ~hi ->
    let out = Bitset.create (hi - lo) in
    for i = lo to hi - 1 do
      if Bitset.get nulls i = want_null then Bitset.set out (i - lo)
    done;
    out

let rec compile b (p : Expr.pred) : producer option =
  match p with
  | Expr.Lit3 t -> Some (const_plan (t = T3.True))
  | Expr.And (p, q) -> (
      match (compile b p, compile b q) with
      | Some f, Some g ->
          Some
            (fun ~lo ~hi ->
              let m = f ~lo ~hi in
              Bitset.inter_into ~into:m (g ~lo ~hi);
              m)
      | _ -> None)
  | Expr.Or (p, q) -> (
      match (compile b p, compile b q) with
      | Some f, Some g ->
          Some
            (fun ~lo ~hi ->
              let m = f ~lo ~hi in
              Bitset.union_into ~into:m (g ~lo ~hi);
              m)
      | _ -> None)
  | Expr.Cmp (op, Expr.Col i, Expr.Const v) -> Some (cmp_col_const b op i v)
  | Expr.Cmp (op, Expr.Const v, Expr.Col i) ->
      Some (cmp_col_const b (T3.flip_op op) i v)
  | Expr.Cmp (op, Expr.Col i, Expr.Col j) -> Some (cmp_col_col b op i j)
  | Expr.Cmp (op, Expr.Const u, Expr.Const v) ->
      Some (const_plan (T3.cmp op u v = T3.True))
  | Expr.Is_null (Expr.Col i) -> Some (null_plan b i ~want_null:true)
  | Expr.Is_not_null (Expr.Col i) -> Some (null_plan b i ~want_null:false)
  | Expr.Is_null (Expr.Const v) -> Some (const_plan (Value.is_null v))
  | Expr.Is_not_null (Expr.Const v) ->
      Some (const_plan (not (Value.is_null v)))
  | Expr.In_list (x, vs) ->
      (* IN over literals is exactly a disjunction of equalities *)
      compile b
        (List.fold_left
           (fun acc v -> Expr.Or (acc, Expr.Cmp (T3.Eq, x, Expr.Const v)))
           (Expr.Lit3 T3.False) vs)
  | Expr.Between (x, lo, hi) ->
      compile b (Expr.And (Expr.Cmp (T3.Ge, x, lo), Expr.Cmp (T3.Le, x, hi)))
  | _ -> None

let filter_plan pred rel =
  if not (enabled ()) then None
  else if Relation.is_empty rel then None
  else
    let b = for_relation rel in
    match compile b pred with
    | None -> None
    | Some producer ->
        Some (fun ~lo ~hi -> Bitset.indices ~base:lo (producer ~lo ~hi))

(* ------------------------------------------------------------------ *)
(* Columnar spill pages: a page of rows packed column-wise, so spilled
   partitions hold unboxed ints/floats instead of per-cell Value
   blocks.  Reconstruction preserves constructors exactly (the Boxed
   fallback catches mixed columns), so spilled-and-reread rows are
   structurally identical to what was written. *)

type packed = { plen : int; pcols : (col * Bitset.t) array }

let pack rows =
  let n = Array.length rows in
  if n = 0 then Some { plen = 0; pcols = [||] }
  else
    let arity = Array.length rows.(0) in
    if Array.exists (fun r -> Array.length r <> arity) rows then None
    else
      Some
        {
          plen = n;
          pcols =
            Array.init arity (fun ci ->
                build_column (fun i -> rows.(i).(ci)) n);
        }

let packed_length p = p.plen

let packed_iter p f =
  let arity = Array.length p.pcols in
  for i = 0 to p.plen - 1 do
    f (Array.init arity (fun c -> value_at p.pcols.(c) i))
  done
