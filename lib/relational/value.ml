type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let is_null = function Null -> true | _ -> false

let type_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* ints and floats live in one numeric order *)
  | String _ -> 3
  | Date _ -> 4

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Date _ -> "date"

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

(* Ints and floats that compare equal must hash alike ([compare] puts
   both in one numeric order).  Both constructors therefore route
   through the same rule on the value's float image: an integral float
   below 2^53 (where int<->float conversion is exact) hashes as its
   int, anything else as the float itself.  For ints below 2^53 —
   every int in practice — this is a direct [Hashtbl.hash i] with no
   intermediate float boxing. *)

let max_exact_int = 0x20_0000_0000_0000 (* 2^53 *)
let max_exact_float = 9.007199254740992e15 (* 2^53 *)

let hash_float f =
  if Float.is_integer f && Float.abs f < max_exact_float then
    Hashtbl.hash (int_of_float f)
  else Hashtbl.hash f

let hash_int i =
  if i > -max_exact_int && i < max_exact_int then Hashtbl.hash i
  else hash_float (float_of_int i)

let hash = function
  | Null -> 0x9e3779b9
  | Bool b -> if b then 3 else 5
  | Int i -> hash_int i
  | Float f -> hash_float f
  | String s -> Hashtbl.hash s
  | Date d -> 7 * Hashtbl.hash d

let cmp3 a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | _ -> Some (compare a b)

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_error "expected a numeric value, got %s" (type_name v)

let arith int_op float_op a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) ->
      Float (float_op (as_float a) (as_float b))
  | _ ->
      type_error "arithmetic on non-numeric values (%s, %s)" (type_name a)
        (type_name b)

let add a b =
  match (a, b) with
  | Date d, Int n | Int n, Date d -> Date (d + n)
  | _ -> arith ( + ) ( +. ) a b

let sub a b =
  match (a, b) with
  | Date d, Int n -> Date (d - n)
  | Date x, Date y -> Int (x - y)
  | _ -> arith ( - ) ( -. ) a b

let mul = arith ( * ) ( *. )

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _, Int 0 -> Null
  | _, Float f when f = 0.0 -> Null
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (as_float a /. as_float b)
  | _ ->
      type_error "division on non-numeric values (%s, %s)" (type_name a)
        (type_name b)

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | v -> type_error "negation of non-numeric value (%s)" (type_name v)

(* Civil-date conversion (Howard Hinnant's algorithm), so that generated
   and parsed dates agree without depending on Unix. *)

let days_from_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let date_of_string s =
  let fail () = type_error "malformed date %S (expected YYYY-MM-DD)" s in
  if String.length s <> 10 || s.[4] <> '-' || s.[7] <> '-' then fail ();
  let int_at off len =
    match int_of_string_opt (String.sub s off len) with
    | Some i -> i
    | None -> fail ()
  in
  let y = int_at 0 4 and m = int_at 5 2 and d = int_at 8 2 in
  if m < 1 || m > 12 || d < 1 || d > 31 then fail ();
  Date (days_from_civil ~y ~m ~d)

let string_of_date days =
  let y, m, d = civil_from_days days in
  Printf.sprintf "%04d-%02d-%02d" y m d

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "'%s'" s
  | Date d -> Format.pp_print_string ppf (string_of_date d)

let to_string v = Format.asprintf "%a" pp v
