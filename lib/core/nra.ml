module Value = Nra_relational.Value
module Three_valued = Nra_relational.Three_valued
module Ttype = Nra_relational.Ttype
module Schema = Nra_relational.Schema
module Row = Nra_relational.Row
module Relation = Nra_relational.Relation
module Expr = Nra_relational.Expr
module Batch = Nra_relational.Batch

module Table = Nra_storage.Table
module Catalog = Nra_storage.Catalog
module Hash_index = Nra_storage.Hash_index
module Sorted_index = Nra_storage.Sorted_index
module Fault = Nra_storage.Fault
module Iosim = Nra_storage.Iosim
module Bufpool = Nra_storage.Bufpool
module Governor = Nra_storage.Governor
module Wal = Nra_storage.Wal
module Guard = Nra_guard.Guard
module Pool = Nra_pool.Pool

module Algebra = struct
  module Basic = Nra_algebra.Basic
  module Join = Nra_algebra.Join
  module Setops = Nra_algebra.Setops
  module Aggregate = Nra_algebra.Aggregate
  module Sort = Nra_algebra.Sort
end

module Nested = struct
  module Nested_relation = Nra_nested.Nested_relation
  module Grouped = Nra_nested.Grouped
  module Link_pred = Nra_nested.Link_pred
  module Linking = Nra_nested.Linking
end

module Sql = struct
  module Ast = Nra_sql.Ast
  module Lexer = Nra_sql.Lexer
  module Parser = Nra_sql.Parser
end

module Planner = struct
  module Resolved = Nra_planner.Resolved
  module Analyze = Nra_planner.Analyze
end

module Exec = struct
  module Frame = Nra_exec.Frame
  module Post = Nra_exec.Post
  module Naive = Nra_exec.Naive
  module Classical = Nra_exec.Classical
  module Magic = Nra_exec.Magic
  module Linkeval = Nra_exec.Linkeval
  module Nra_exec = Nra_exec.Nra
end

module Tpch = struct
  module Prng = Nra_tpch.Prng
  module Gen = Nra_tpch.Gen
  module Queries = Nra_tpch.Queries
end

module Stats = struct
  module Histogram = Nra_stats.Histogram
  module Col_stats = Nra_stats.Col_stats
  module Table_stats = Nra_stats.Table_stats
  module Stats_store = Nra_stats.Stats_store
  module Cardinality = Nra_stats.Cardinality
  module Cost = Nra_stats.Cost
end

module Opt = struct
  module Config = Nra_opt.Config
  module Plan = Nra_opt.Plan
  module Rewrite = Nra_opt.Rewrite
end

(* ---------- the error taxonomy ---------- *)

module Exec_error = struct
  type t =
    | Budget_exceeded of Guard.resource
    | Cancelled
    | Io_error of string
    | Parse of { message : string; offset : int option; excerpt : string }
    | Invalid of string
    | Unsupported of string
    | Runtime of string
    | Rejected of string
    | Queue_timeout of { waited_ms : float }

  let to_string = function
    | Budget_exceeded r ->
        Printf.sprintf "query killed: budget exceeded (%s)"
          (Guard.resource_to_string r)
    | Cancelled -> "query killed: cancelled"
    | Io_error m -> Printf.sprintf "I/O error: %s" m
    | Parse { message; offset; excerpt } ->
        "parse error: "
        ^ Nra_sql.Parser.render_error
            { Nra_sql.Parser.message; offset; excerpt }
    | Invalid m | Unsupported m | Runtime m -> m
    | Rejected m -> Printf.sprintf "statement rejected: %s" m
    | Queue_timeout { waited_ms } ->
        Printf.sprintf
          "statement rejected: timed out in the admission queue after \
           %.1f ms" waited_ms
end

(* Convert the engine's runtime exceptions into the taxonomy.  Kills are
   counted here — exactly once, where they surface as a user-visible
   error; Auto's degraded attempts are caught earlier (in [run_auto])
   and counted as fallbacks instead. *)
let trap f =
  match f () with
  | v -> v
  | exception Guard.Killed k ->
      Guard.note_kill k;
      Error
        (match k with
        | Guard.Budget_exceeded r -> Exec_error.Budget_exceeded r
        | Guard.Cancelled -> Exec_error.Cancelled)
  | exception Fault.Io_fault m -> Error (Exec_error.Io_error m)
  | exception Nra_exec.Frame.Unsupported m ->
      Error (Exec_error.Unsupported ("unsupported by this strategy: " ^ m))
  | exception Nra_exec.Post.Unsupported m -> Error (Exec_error.Unsupported m)
  | exception Nra_planner.Analyze.Error m -> Error (Exec_error.Invalid m)
  | exception Invalid_argument m -> Error (Exec_error.Invalid m)
  | exception Failure m -> Error (Exec_error.Runtime m)

type strategy =
  | Naive
  | Classical
  | Magic
  | Nra_original
  | Nra_optimized
  | Nra_full
  | Hybrid
  | Auto

let strategies =
  [
    ("naive", Naive);
    ("classical", Classical);
    ("magic", Magic);
    ("nra-original", Nra_original);
    ("nra-optimized", Nra_optimized);
    ("nra-full", Nra_full);
    ("hybrid", Hybrid);
    ("auto", Auto);
  ]

let strategy_of_string s = List.assoc_opt (String.lowercase_ascii s) strategies

let strategy_to_string s =
  fst (List.find (fun (_, v) -> v = s) strategies)

(* the Section 6 dispatch: classical unnesting whenever it fully
   applies, the nested relational approach otherwise *)
let classical_fully_applies cat t =
  List.for_all
    (fun (_, s) -> s <> Nra_exec.Classical.Iterate)
    (Nra_exec.Classical.plan cat t)

let of_cost_strategy = function
  | Nra_stats.Cost.Naive -> Naive
  | Nra_stats.Cost.Classical -> Classical
  | Nra_stats.Cost.Magic -> Magic
  | Nra_stats.Cost.Nra_original -> Nra_original
  | Nra_stats.Cost.Nra_optimized -> Nra_optimized
  | Nra_stats.Cost.Nra_full -> Nra_full

(* ---------- the algebraic rewrite pass (nra.opt) ---------- *)

let rewrite_rules = Nra_opt.Config.rules
let set_rewrite_rules = Nra_opt.Config.set
let set_rewrite_spec = Nra_opt.Config.set_spec
let columnar_enabled = Nra_relational.Batch.enabled
let set_columnar = Nra_relational.Batch.set_enabled
let rewrite_epoch = Nra_opt.Config.current_epoch
let rewrite_signature = Nra_opt.Config.signature

(* which executor options an NRA-family strategy runs under — the
   rewriter's starting plan must mirror exactly that decision chain *)
let nra_base_options = function
  | Nra_original -> Some Nra_exec.Nra.original
  | Nra_optimized -> Some Nra_exec.Nra.optimized
  | Nra_full | Hybrid -> Some Nra_exec.Nra.full
  | Naive | Classical | Magic | Auto -> None

(* [Some r] only when rules are enabled AND the cost gate fired at
   least one edit; rewriting is advisory, so any estimation failure
   (e.g. an executor planner raising on an exotic shape) silently
   yields the unrewritten plan *)
let rewrite_for cat t base =
  if Nra_opt.Config.rules () = [] then None
  else
    match Nra_opt.Rewrite.rewrite cat t ~base with
    | r when r.Nra_opt.Rewrite.changed -> Some r
    | _ -> None
    | exception _ -> None

(* every NRA-family execution funnels through here, so enabled rewrites
   apply transparently to every strategy, including Auto's picks and
   Hybrid's NRA arm *)
let run_nra options cat t =
  match rewrite_for cat t options with
  | Some r ->
      Nra_exec.Nra.run ~options ~directives:r.Nra_opt.Rewrite.dirs cat t
  | None -> Nra_exec.Nra.run ~options cat t

(* Auto over strategies × rewritten plans.  The rewriter only fires
   cost-improving edits and [run_nra] re-applies them at execution, so
   the cross-product collapses to adjusting each NRA strategy's
   estimate by its rewrite's estimated delta (never below zero) and
   re-ranking. *)
let estimates_with_rewrites cat t =
  let es = Nra_stats.Cost.estimates cat t in
  if Nra_opt.Config.rules () = [] then es
  else
    let clamp v = Float.max 0.0 v in
    List.map
      (fun (e : Nra_stats.Cost.estimate) ->
        match nra_base_options (of_cost_strategy e.Nra_stats.Cost.strategy) with
        | None -> e
        | Some base -> (
            match rewrite_for cat t base with
            | None -> e
            | Some r ->
                let b = r.Nra_opt.Rewrite.before
                and a = r.Nra_opt.Rewrite.after in
                let bd = e.Nra_stats.Cost.breakdown in
                {
                  e with
                  Nra_stats.Cost.cost_ms =
                    clamp
                      (e.Nra_stats.Cost.cost_ms
                      +. (a.Nra_opt.Rewrite.ms -. b.Nra_opt.Rewrite.ms));
                  breakdown =
                    {
                      Nra_stats.Cost.seq_pages =
                        clamp
                          (bd.Nra_stats.Cost.seq_pages
                          +. (a.Nra_opt.Rewrite.seq -. b.Nra_opt.Rewrite.seq));
                      rand_pages =
                        clamp
                          (bd.Nra_stats.Cost.rand_pages
                          +. (a.Nra_opt.Rewrite.rand -. b.Nra_opt.Rewrite.rand));
                      fetched_rows =
                        clamp
                          (bd.Nra_stats.Cost.fetched_rows
                          +. (a.Nra_opt.Rewrite.fetch -. b.Nra_opt.Rewrite.fetch));
                    };
                }))
      es
    (* the input is (cost, preference)-sorted; a stable re-sort on cost
       alone keeps the preference tiebreak *)
    |> List.stable_sort (fun (x : Nra_stats.Cost.estimate) y ->
           Float.compare x.Nra_stats.Cost.cost_ms y.Nra_stats.Cost.cost_ms)

(* Budget-aware choice: when the caller runs under a guard, prefer the
   cheapest plan whose estimate FITS what is left of that budget over
   the globally cheapest one — a tight row allowance steers away from
   the NRA's wide intermediates even when they are I/O-cheaper.  With
   no active guard, [Guard.remaining ()] is unlimited and this is the
   plain cheapest. *)
let budget_pick es =
  let r = Guard.remaining () in
  Nra_stats.Cost.pick ~remaining_io_ms:r.Guard.sim_io_ms
    ~remaining_rows:r.Guard.max_rows es

(* the cost model's choice, mapped into this facade's strategy type;
   estimation is pure (no Iosim charges) but involves the executors'
   planners, so any failure falls back to the default strategy *)
let auto_pick cat t =
  match estimates_with_rewrites cat t with
  | [] -> Nra_optimized
  | es -> of_cost_strategy (budget_pick es).Nra_stats.Cost.strategy
  | exception _ -> Nra_optimized

(* ---------- Auto's kill-and-fallback ---------- *)

(* A budget kill under Auto is evidence of a cost-model misestimate:
   the chosen plan was supposed to cost [cost_ms] and has already spent
   [overrun] times that.  Rather than failing the query, kill the
   attempt, roll the I/O ledger back, and rerun under the
   always-applicable default strategy. *)
let auto_overrun = ref 4.0
let auto_floor_ms = ref 1.0

let set_auto_guard ?overrun ?floor_ms () =
  Option.iter (fun v -> auto_overrun := Float.max 1.0 v) overrun;
  Option.iter (fun v -> auto_floor_ms := Float.max 0.0 v) floor_ms

let auto_guard () = (!auto_overrun, !auto_floor_ms)

let auto_attempt_ms cost_ms =
  Float.max !auto_floor_ms (cost_ms *. !auto_overrun)

let rec run_analyzed strategy cat t =
  match strategy with
  | Naive -> Nra_exec.Naive.run cat t
  | Classical -> Nra_exec.Classical.run cat t
  | Magic -> Nra_exec.Magic.run cat t
  | Nra_original -> run_nra Nra_exec.Nra.original cat t
  | Nra_optimized -> run_nra Nra_exec.Nra.optimized cat t
  | Nra_full -> run_nra Nra_exec.Nra.full cat t
  | Hybrid ->
      if classical_fully_applies cat t then Nra_exec.Classical.run cat t
      else run_nra Nra_exec.Nra.full cat t
  | Auto -> run_auto cat t

and run_auto cat t =
  match estimates_with_rewrites cat t with
  | exception _ -> run_analyzed Nra_optimized cat t
  | [] -> run_analyzed Nra_optimized cat t
  | es -> run_auto_estimates cat t es

(* The attempt/fallback protocol over an already-computed estimate list
   — shared with [run_prepared], whose plan cache pays for estimation
   once and replays it here on every execution. *)
and run_auto_estimates cat t es =
  let best = budget_pick es in
  let pick = of_cost_strategy best.Nra_stats.Cost.strategy in
  if pick = Nra_optimized then
    (* the chosen plan IS the fallback: a derived budget would only
       kill a query that has nowhere left to degrade to *)
    run_analyzed Nra_optimized cat t
  else
    let attempt =
      Guard.min_budget (Guard.remaining ())
        (Guard.budget
           ~sim_io_ms:(auto_attempt_ms best.Nra_stats.Cost.cost_ms)
           ())
    in
    (* the attempt runs under a per-task I/O ledger instead of a
       global checkpoint: [uncharge] subtracts only the attempt's own
       charges, so concurrently scheduled statements can interleave
       freely — no no-yield critical section needed *)
    let led = Nra_storage.Iosim.push_ledger () in
    match Guard.with_budget attempt (fun () -> run_analyzed pick cat t) with
    | rel ->
        Nra_storage.Iosim.pop_ledger led;
        rel
    | exception Guard.Killed (Guard.Budget_exceeded _) ->
        Nra_storage.Iosim.pop_ledger led;
        (* un-charge the aborted attempt: the fallback redoes the
           work, and double-charging would poison both the client's
           budget and any [--time] report *)
        Nra_storage.Iosim.uncharge led;
        (* if the CLIENT's budget (not the derived one) is what
           blew, degrading cannot help — re-raise for the facade *)
        Guard.recheck ();
        Guard.note_fallback ();
        run_analyzed Nra_optimized cat t
    | exception e ->
        Nra_storage.Iosim.pop_ledger led;
        raise e

let ( let* ) = Result.bind
module Ast = Nra_sql.Ast

let run_select strategy cat q =
  trap (fun () ->
      let t = Nra_planner.Analyze.analyze cat q in
      Ok (run_analyzed strategy cat t))

(* An ORDER BY / LIMIT written after the last component of a set
   operation applies to the combined result. *)
let strip_rightmost stmt =
  let rec go = function
    | Ast.Select q ->
        (Ast.Select { q with Ast.order_by = []; limit = None },
         q.Ast.order_by, q.Ast.limit)
    | Ast.Setop (op, l, r) ->
        let r', ob, lim = go r in
        (Ast.Setop (op, l, r'), ob, lim)
  in
  go stmt

let setop_sort_keys schema order_by =
  let resolve (e, dir) =
    let dir =
      match dir with
      | `Asc -> Nra_algebra.Sort.Asc
      | `Desc -> Nra_algebra.Sort.Desc
    in
    match e with
    | Ast.Col (None, name) -> (
        match Nra_relational.Schema.find_opt schema name with
        | Some pos -> Ok { Nra_algebra.Sort.pos; dir }
        | None ->
            Error
              (Exec_error.Invalid
                 (Printf.sprintf "unknown output column %s" name)))
    | Ast.Lit (Value.Int k)
      when k >= 1 && k <= Nra_relational.Schema.arity schema ->
        Ok { Nra_algebra.Sort.pos = k - 1; dir }
    | _ ->
        Error
          (Exec_error.Invalid
             "ORDER BY on a set operation must use output column names \
              or 1-based positions")
  in
  List.fold_left
    (fun acc key ->
      let* keys = acc in
      let* k = resolve key in
      Ok (keys @ [ k ]))
    (Ok []) order_by

let rec combine strategy cat = function
  | Ast.Select q -> run_select strategy cat q
  | Ast.Setop (op, l, r) ->
      let* lrel = combine strategy cat l in
      let* rrel = combine strategy cat r in
      if
        Nra_relational.Schema.arity (Relation.schema lrel)
        <> Nra_relational.Schema.arity (Relation.schema rrel)
      then
        Error
          (Exec_error.Invalid
             (Printf.sprintf
                "set operation over different arities (%d vs %d columns)"
                (Nra_relational.Schema.arity (Relation.schema lrel))
                (Nra_relational.Schema.arity (Relation.schema rrel))))
      else
        let f =
          match (op.Ast.op, op.Ast.all) with
          | `Union, false -> Nra_algebra.Setops.union
          | `Union, true -> Nra_algebra.Setops.union_all
          | `Intersect, false -> Nra_algebra.Setops.intersect
          | `Intersect, true -> Nra_algebra.Setops.intersect_all
          | `Except, false -> Nra_algebra.Setops.except
          | `Except, true -> Nra_algebra.Setops.except_all
        in
        Ok (f lrel rrel)

let run_statement strategy cat stmt =
  match stmt with
  | Ast.Select q -> run_select strategy cat q
  | Ast.Setop _ ->
      let body, order_by, limit = strip_rightmost stmt in
      let* rel = combine strategy cat body in
      let* rel =
        if order_by = [] then Ok rel
        else
          let* keys = setop_sort_keys (Relation.schema rel) order_by in
          Ok (Nra_algebra.Sort.sort keys rel)
      in
      Ok
        (match limit with
        | Some n -> Nra_algebra.Basic.limit n rel
        | None -> rel)

(* Materialize common table expressions, in order, as temporary catalog
   tables carrying a synthetic __rowid primary key (the engine's
   carried-key discipline needs one).  The materialization is
   WAL-protected like DML: Begin, a Create record before each temp
   table registers (log-before-write), Drop records as the temps are
   dismantled after the body, Commit.  An ordinary error or escaped
   fault aborts inline — the undo re-drops whatever was registered —
   and a simulated power loss escapes raw, leaving [Wal.recover] to
   undo the unfinished statement: a mid-statement crash can no longer
   leak a temp table into the catalog. *)
let run_with strategy cat ctes stmt =
  trap @@ fun () ->
  let wal = Wal.begin_stmt () in
  let registered = ref [] in
  (* newest-first Table.t list *)
  let rec go = function
    | [] -> run_statement strategy cat stmt
    | (name, cstmt) :: rest ->
        if Catalog.mem cat name then
          Error
            (Exec_error.Invalid
               (Printf.sprintf "relation %s already exists" name))
        else
          let* rel = run_statement strategy cat cstmt in
          let cols =
            Nra_relational.Schema.column "__rowid" Ttype.Int
            :: (Array.to_list
                  (Nra_relational.Schema.columns (Relation.schema rel))
               |> List.map (fun (c : Nra_relational.Schema.column) ->
                      { c with Nra_relational.Schema.table = "" }))
          in
          let rows =
            Array.mapi
              (fun i row -> Row.concat [| Value.Int i |] row)
              (Relation.rows rel)
          in
          (match Table.create ~name ~key:[ "__rowid" ] cols rows with
          | table ->
              Wal.log_create wal table;
              Catalog.register cat table;
              registered := table :: !registered;
              go rest
          | exception Invalid_argument m -> Error (Exec_error.Invalid m))
  in
  (* dismantle the temps under the log, then commit; a fault in the
     dismantling itself aborts (undo drops the stragglers and
     re-drops the already-dropped via their Create images) *)
  let finish ok =
    match
      List.iter
        (fun tb ->
          Wal.log_drop wal tb;
          Catalog.drop_table cat (Table.name tb))
        !registered
    with
    | () ->
        Wal.commit wal;
        ok
    | exception (Fault.Crash _ as e) -> raise e
    | exception e ->
        Wal.abort ~applied:true cat wal;
        raise e
  in
  match go ctes with
  | Ok _ as ok -> finish ok
  | Error _ as err ->
      Wal.abort ~applied:true cat wal;
      err
  | exception (Fault.Crash _ as e) -> raise e
  | exception e ->
      Wal.abort ~applied:true cat wal;
      raise e

(* ---------- commands ---------- *)

type exec_result = Rows of Relation.t | Count of int | Done of string

let invalidf fmt = Format.kasprintf (fun m -> Error (Exec_error.Invalid m)) fmt

(* All DML below is atomic: matching rows are computed, new contents are
   validated (types, NOT NULL, key uniqueness) and the indexes rebuilt
   BEFORE [Catalog.update_rows]'s single commit point.  A budget kill,
   injected I/O fault, or type error anywhere in between surfaces as an
   [Error] with the table, its indexes, and the catalog generation
   untouched. *)

(* Every DML mutation runs through the write-ahead log: Begin, the
   op's before/after images (log-before-write), the mutation, Commit.
   [mutate] must be one of the catalog's atomic entry points — it
   either applies fully or raises having applied nothing
   ([Catalog.update_rows] validates before its single commit point) —
   so on an exception we know exactly whether undo is needed: only
   when [Wal.commit] itself was what failed.  Inline rollback
   preserves the pre-statement state; [Fault.Crash] (the
   kill-at-fault-point harness's power loss) bypasses all cleanup by
   design and escapes raw — [Wal.recover] repairs the catalog on
   restart. *)
let wal_mutate cat ~log ~mutate =
  let stmt = Wal.begin_stmt () in
  let applied = ref false in
  try
    log stmt;
    mutate ();
    applied := true;
    Wal.commit stmt
  with
  | Fault.Crash _ as e -> raise e
  | e ->
      Wal.abort ~applied:!applied cat stmt;
      raise e

let do_create cat ~table ~columns ~key =
  trap (fun () ->
      if Catalog.mem cat table then
        invalidf "table %s already exists" table
      else begin
        let cols =
          List.map
            (fun (cd : Ast.column_def) ->
              Nra_relational.Schema.column ~not_null:cd.Ast.cd_not_null
                cd.Ast.cd_name cd.Ast.cd_type)
            columns
        in
        let t = Table.create ~name:table ~key cols [||] in
        wal_mutate cat
          ~log:(fun stmt -> Wal.log_create stmt t)
          ~mutate:(fun () -> Catalog.register cat t);
        Ok (Done (Printf.sprintf "table %s created" table))
      end)

let do_insert_rows cat table new_rows =
  trap (fun () ->
      match Catalog.table_opt cat table with
      | None -> invalidf "unknown table %s" table
      | Some t ->
          let arity =
            Nra_relational.Schema.arity (Table.schema t)
          in
          let bad =
            List.find_opt
              (fun r -> Array.length r <> arity)
              new_rows
          in
          (match bad with
          | Some r ->
              invalidf "insert into %s: %d values where %d columns expected"
                table (Array.length r) arity
          | None ->
              let before = Relation.rows (Table.relation t) in
              let rows = Array.append before (Array.of_list new_rows) in
              wal_mutate cat
                ~log:(fun stmt ->
                  Wal.log_update stmt ~table ~before ~after:rows)
                ~mutate:(fun () -> Catalog.update_rows cat table rows);
              Ok (Count (List.length new_rows))))

let do_delete strategy cat table where =
  trap (fun () ->
      match Catalog.table_opt cat table with
      | None -> invalidf "unknown table %s" table
      | Some t -> (
          let probe =
            Ast.simple_query ~select:[ Ast.Star ]
              ~from:[ (table, None) ]
              ?where ()
          in
          match run_select strategy cat probe with
          | Error m -> Error m
          | Ok matching ->
              (* identify doomed rows by primary key *)
              let keys = Table.key_positions t in
              let doomed = Hashtbl.create 64 in
              Array.iter
                (fun row ->
                  let k = Row.project_arr row keys in
                  Hashtbl.replace doomed (Row.hash k) k)
                (Relation.rows matching);
              let is_doomed row =
                let k = Row.project_arr row keys in
                match Hashtbl.find_opt doomed (Row.hash k) with
                | Some k2 -> Row.equal k k2
                | None -> false
              in
              let before_rows = Relation.rows (Table.relation t) in
              let survivors =
                Array.of_list
                  (List.filter
                     (fun r -> not (is_doomed r))
                     (Array.to_list before_rows))
              in
              wal_mutate cat
                ~log:(fun stmt ->
                  Wal.log_update stmt ~table ~before:before_rows
                    ~after:survivors)
                ~mutate:(fun () -> Catalog.update_rows cat table survivors);
              Ok
                (Count (Array.length before_rows - Array.length survivors))))

let do_update strategy cat table assigns where =
  trap (fun () ->
      match Catalog.table_opt cat table with
      | None -> invalidf "unknown table %s" table
      | Some t -> (
          let schema = Table.schema t in
          let positions =
            List.map
              (fun (c, _) ->
                match Nra_relational.Schema.find_opt schema c with
                | Some i -> i
                | None ->
                    invalid_arg
                      (Printf.sprintf "table %s has no column %s" table c))
              assigns
          in
          (* one query computes, per matching primary key, the new values
             of the assigned columns — so assignments see the pre-update
             row and the WHERE may use subqueries *)
          let select =
            List.map
              (fun k -> Ast.Sel_expr (Ast.Col (None, k), None))
              (Table.key_columns t)
            @ List.mapi
                (fun i (_, e) ->
                  Ast.Sel_expr (e, Some (Printf.sprintf "__set%d" i)))
                assigns
          in
          let probe =
            Ast.simple_query ~select ~from:[ (table, None) ] ?where ()
          in
          match run_select strategy cat probe with
          | Error m -> Error m
          | Ok matching ->
              let nkeys = List.length (Table.key_columns t) in
              let updates = Hashtbl.create 64 in
              Array.iter
                (fun row ->
                  let k = Array.sub row 0 nkeys in
                  let vs =
                    Array.sub row nkeys (Array.length row - nkeys)
                  in
                  Hashtbl.replace updates (Row.hash k) (k, vs))
                (Relation.rows matching);
              let keys = Table.key_positions t in
              let changed = ref 0 in
              let before = Relation.rows (Table.relation t) in
              let rows =
                Array.map
                  (fun row ->
                    let k = Row.project_arr row keys in
                    match Hashtbl.find_opt updates (Row.hash k) with
                    | Some (k2, vs) when Row.equal k k2 ->
                        incr changed;
                        let row' = Array.copy row in
                        List.iteri
                          (fun i pos -> row'.(pos) <- vs.(i))
                          positions;
                        row'
                    | _ -> row)
                  before
              in
              wal_mutate cat
                ~log:(fun stmt ->
                  Wal.log_update stmt ~table ~before ~after:rows)
                ~mutate:(fun () -> Catalog.update_rows cat table rows);
              Ok (Count !changed)))

let run_command strategy cat = function
  | Ast.Cmd_query stmt -> (
      match run_statement strategy cat stmt with
      | Ok rel -> Ok (Rows rel)
      | Error e -> Error e)
  | Ast.Create_table { table; columns; key } ->
      do_create cat ~table ~columns ~key
  | Ast.Drop_table table ->
      trap (fun () ->
          match Catalog.table_opt cat table with
          | None -> invalidf "unknown table %s" table
          | Some t ->
              wal_mutate cat
                ~log:(fun stmt -> Wal.log_drop stmt t)
                ~mutate:(fun () -> Catalog.drop_table cat table);
              Ok (Done (Printf.sprintf "table %s dropped" table)))
  | Ast.Insert_values (table, rows) ->
      do_insert_rows cat table (List.map Array.of_list rows)
  | Ast.Insert_select (table, stmt) -> (
      match run_statement strategy cat stmt with
      | Error e -> Error e
      | Ok rel ->
          do_insert_rows cat table (Array.to_list (Relation.rows rel)))
  | Ast.Delete (table, where) -> do_delete strategy cat table where
  | Ast.With_query (ctes, stmt) -> (
      match run_with strategy cat ctes stmt with
      | Ok rel -> Ok (Rows rel)
      | Error e -> Error e)
  | Ast.Update (table, assigns, where) ->
      do_update strategy cat table assigns where
  | Ast.Analyze target ->
      trap (fun () ->
          let store = Nra_stats.Stats_store.of_catalog cat in
          match target with
          | Some name ->
              if Catalog.mem cat name then begin
                ignore (Nra_stats.Stats_store.analyze cat store name);
                Ok (Done (Printf.sprintf "analyzed %s" name))
              end
              else invalidf "unknown table %s" name
          | None ->
              let all = Nra_stats.Stats_store.analyze_all cat store in
              Ok (Done (Printf.sprintf "analyzed %d table(s)"
                          (List.length all))))

(* ---------- the public entry points ---------- *)

let parse_command sql =
  match Nra_sql.Parser.parse_command_located sql with
  | Ok cmd -> Ok cmd
  | Error { Nra_sql.Parser.message; offset; excerpt } ->
      Error (Exec_error.Parse { message; offset; excerpt })

let with_guard guard f =
  match guard with
  | None -> f ()
  | Some b -> Guard.with_budget b f

let run ?(strategy = Nra_optimized) ?guard cat sql =
  let* cmd = parse_command sql in
  with_guard guard (fun () -> run_command strategy cat cmd)

(* ---------- prepared statements ---------- *)

(* The compile-once-execute-many contract behind the nra.server plan
   cache: [prepare] pays for parse + analysis + (for Auto) cost
   estimation once; [run_prepared] replays only execution.  Non-SELECT
   shapes (set operations, WITH, DML) keep their parsed command — still
   skipping the lexer/parser — and take the ordinary paths, which
   analyze per component. *)
type prepared = {
  p_sql : string;
  p_cmd : Ast.command;
  p_strategy : strategy;
  p_analyzed : Nra_planner.Analyze.t option;
  p_estimates : Nra_stats.Cost.estimate list;
      (* Auto over a plain SELECT only; [] otherwise *)
}

let prepared_sql p = p.p_sql
let prepared_strategy p = p.p_strategy

(* A structural fingerprint of the statement's subquery links, computed
   from the parse tree alone (no catalog): one letter per linking
   operator in traversal order, suffixed with ['!agg'] when the
   subquery's single select item is an aggregate (type JA).  Plan caches
   add this to their key so an aggregate-linking query can never share a
   cache slot with a lookalike non-aggregate one, whatever the text
   normalization does. *)
let query_shape sql =
  let buf = Buffer.create 16 in
  let item_tag (q : Ast.query) =
    match q.Ast.select with
    | [ Ast.Sel_expr (Ast.Agg (f, _), _) ] ->
        "!" ^ Nra_planner.Analyze.agg_name f
    | _ -> ""
  in
  let rec walk_query (q : Ast.query) =
    List.iter walk_cond (Option.to_list q.Ast.where);
    List.iter walk_cond (Option.to_list q.Ast.having)
  and sub tag q =
    Buffer.add_string buf (tag ^ item_tag q);
    walk_query q
  and walk_cond (c : Ast.cond) =
    match c with
    | Ast.And (a, b) | Ast.Or (a, b) ->
        walk_cond a;
        walk_cond b
    | Ast.Not a -> walk_cond a
    | Ast.Exists q -> sub "e" q
    | Ast.Not_exists q -> sub "E" q
    | Ast.In_query (_, q) -> sub "i" q
    | Ast.Not_in_query (_, q) -> sub "I" q
    | Ast.Quant_cmp (_, _, Ast.Any, q) -> sub "q" q
    | Ast.Quant_cmp (_, _, Ast.All, q) -> sub "Q" q
    | Ast.Scalar_cmp (_, _, q) -> sub "s" q
    | Ast.True_ | Ast.Cmp _ | Ast.Is_null _ | Ast.Is_not_null _
    | Ast.Between _ | Ast.In_list _ | Ast.Like _ ->
        ()
  in
  let rec walk_statement = function
    | Ast.Select q -> walk_query q
    | Ast.Setop (_, a, b) ->
        walk_statement a;
        walk_statement b
  in
  (match Nra_sql.Parser.parse_command_located sql with
  | Ok (Ast.Cmd_query stmt) -> walk_statement stmt
  | Ok (Ast.With_query (ctes, stmt)) ->
      List.iter (fun (_, s) -> walk_statement s) ctes;
      walk_statement stmt
  | Ok _ | Error _ -> ());
  Buffer.contents buf

let prepared_is_query p =
  match p.p_cmd with Ast.Cmd_query _ -> true | _ -> false

let prepare ?(strategy = Nra_optimized) cat sql =
  let* cmd = parse_command sql in
  match cmd with
  | Ast.Cmd_query (Ast.Select q) ->
      trap (fun () ->
          let t = Nra_planner.Analyze.analyze cat q in
          let est =
            if strategy = Auto then
              try estimates_with_rewrites cat t with _ -> []
            else []
          in
          Ok
            {
              p_sql = sql;
              p_cmd = cmd;
              p_strategy = strategy;
              p_analyzed = Some t;
              p_estimates = est;
            })
  | _ ->
      Ok
        {
          p_sql = sql;
          p_cmd = cmd;
          p_strategy = strategy;
          p_analyzed = None;
          p_estimates = [];
        }

let run_prepared ?guard cat p =
  with_guard guard (fun () ->
      match (p.p_cmd, p.p_analyzed) with
      | Ast.Cmd_query (Ast.Select _), Some t ->
          trap (fun () ->
              match p.p_strategy with
              | Auto when p.p_estimates <> [] ->
                  Ok (Rows (run_auto_estimates cat t p.p_estimates))
              | s -> Ok (Rows (run_analyzed s cat t)))
      | _ -> run_command p.p_strategy cat p.p_cmd)

let exec ?strategy ?guard cat sql =
  Result.map_error Exec_error.to_string (run ?strategy ?guard cat sql)

let query ?(strategy = Nra_optimized) ?guard cat sql =
  Result.map_error Exec_error.to_string
    (let* cmd = parse_command sql in
     match cmd with
     | Ast.Cmd_query stmt ->
         with_guard guard (fun () -> run_statement strategy cat stmt)
     | Ast.With_query (ctes, stmt) ->
         with_guard guard (fun () -> run_with strategy cat ctes stmt)
     | Ast.Create_table _ | Ast.Drop_table _ | Ast.Insert_values _
     | Ast.Insert_select _ | Ast.Delete _ | Ast.Update _ | Ast.Analyze _
       ->
         Error
           (Exec_error.Invalid
              "not a query (use Nra.exec for DDL/DML/ANALYZE)"))

let query_exn ?strategy cat sql =
  match query ?strategy cat sql with
  | Ok rel -> rel
  | Error m -> failwith m

(* Higher layers (nra.server's plan cache) register a one-line status
   note here; EXPLAIN COSTS appends it after the guard events so cache
   hit/miss/invalidation counters surface without this library
   depending on the serving layer. *)
let explain_note : (unit -> string option) ref = ref (fun () -> None)
let set_explain_note f = explain_note := f

let explain cat sql =
  match Nra_planner.Analyze.analyze_string cat sql with
  | Error m -> Error m
  | Ok t ->
      let plan = Nra_exec.Classical.plan cat t in
      Ok
        (Format.asprintf
           "@[<v>tree expression:@,%a@,@,depth: %d@,linear correlated: \
            %b%a%a@]"
           Nra_planner.Analyze.pp_block t.Nra_planner.Analyze.root
           t.Nra_planner.Analyze.depth t.Nra_planner.Analyze.linear
           (fun ppf plan ->
             if plan <> [] then begin
               Format.fprintf ppf "@,classical strategies:";
               List.iter
                 (fun (id, s) ->
                   Format.fprintf ppf "@,  block T%d: %s" id
                     (Nra_exec.Classical.strategy_to_string s))
                 plan
             end)
           plan
           (fun ppf t ->
             if t.Nra_planner.Analyze.depth > 0 then
               Format.fprintf ppf
                 "@,@,nested relational pipeline (optimized):@,%s"
                 (String.trim (Nra_exec.Nra.plan_description t)))
           t)

(* The rewrite part of EXPLAIN COSTS: which rules are on, and — per
   NRA strategy whose plan has applicable sites — the fired/skipped
   trace with the before/after whole-plan estimates, so Auto's choice
   over rewritten plans is auditable. *)
let rewrite_section cat t =
  match Nra_opt.Config.rules () with
  | [] -> "rewrite: off (no rules enabled; --rewrite or NRA_REWRITE)\n"
  | _ ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "rewrite rules: %s\n" (rewrite_signature ()));
      List.iter
        (fun s ->
          match nra_base_options s with
          | None -> ()
          | Some base -> (
              match Nra_opt.Rewrite.rewrite cat t ~base with
              | r ->
                  if r.Nra_opt.Rewrite.trace <> [] then begin
                    Buffer.add_string buf
                      (Printf.sprintf
                         "rewrite trace (%s): est %.1f → %.1f ms\n"
                         (strategy_to_string s)
                         r.Nra_opt.Rewrite.before.Nra_opt.Rewrite.ms
                         r.Nra_opt.Rewrite.after.Nra_opt.Rewrite.ms);
                    List.iter
                      (fun l -> Buffer.add_string buf (l ^ "\n"))
                      (Nra_opt.Rewrite.trace_lines r)
                  end
                  else
                    Buffer.add_string buf
                      (Printf.sprintf
                         "rewrite trace (%s): no applicable sites\n"
                         (strategy_to_string s))
              | exception _ -> ()))
        [ Nra_original; Nra_optimized; Nra_full ];
      Buffer.contents buf

let explain_costs cat sql =
  match Nra_planner.Analyze.analyze_string cat sql with
  | Error m -> Error m
  | Ok t -> (
      try
        let report = Nra_stats.Cost.report cat t in
        let auto_line =
          match estimates_with_rewrites cat t with
          | [] -> ""
          | best :: _ ->
              let pick = of_cost_strategy best.Nra_stats.Cost.strategy in
              if pick = Nra_optimized then
                "auto guard: choice is the fallback strategy; runs \
                 unguarded\n"
              else
                Printf.sprintf
                  "auto guard: attempt budget %.3f sim-I/O ms (estimate \
                   x %.1f overrun, floor %.1f ms); fallback: %s\n"
                  (auto_attempt_ms best.Nra_stats.Cost.cost_ms)
                  !auto_overrun !auto_floor_ms
                  (strategy_to_string Nra_optimized)
        in
        let ev = Guard.events () in
        let bp = Bufpool.stats () in
        let storage_line =
          Printf.sprintf
            "storage (session): buffer pool %s; %d hit(s), %d miss(es), \
             %d eviction(s), %d writeback(s); %d spilled partition(s) \
             (%d page(s)); %d WAL record(s)\n"
            (match Bufpool.frames () with
            | Some f -> Printf.sprintf "%d frame(s)" f
            | None -> "off")
            bp.Bufpool.hits bp.Bufpool.misses bp.Bufpool.evictions
            bp.Bufpool.writebacks bp.Bufpool.spilled_partitions
            bp.Bufpool.spilled_pages (Wal.records ())
        in
        let gv = Governor.stats () in
        let governor_line =
          Printf.sprintf
            "memory governor (session): %d staged intermediate(s) (%d \
             row(s)), high-water %d byte(s), %d spilled staging(s) (%d \
             row(s)), largest resident staging %d page(s); spill volume \
             %d KB\n"
            gv.Governor.stagings gv.Governor.staged_rows
            gv.Governor.high_water_bytes gv.Governor.spilled_stagings
            gv.Governor.spilled_rows gv.Governor.max_resident_pages
            (int_of_float
               (float_of_int bp.Bufpool.spilled_pages
               *. (Iosim.config ()).Iosim.page_size_kb))
        in
        let note =
          match !explain_note () with
          | Some line -> "\n" ^ line
          | None -> ""
        in
        Ok
          (Printf.sprintf
             "%s\n%s%s%s%sguard events (session): %d budget kill(s), %d \
              cancellation(s), %d auto fallback(s)%s"
             report auto_line (rewrite_section cat t) storage_line
             governor_line ev.Guard.budget_kills ev.Guard.cancellations
             ev.Guard.auto_fallbacks note)
      with e -> Error (Printexc.to_string e))

let auto_choice cat sql =
  match Nra_planner.Analyze.analyze_string cat sql with
  | Error m -> Error m
  | Ok t -> Ok (auto_pick cat t)

(* ---------- statement footprints ---------- *)

(* Which tables a command reads and writes, by name — the serving
   layer's table-level locks are granted from this, so DML on disjoint
   tables can interleave under the scheduler while conflicting
   statements still serialize.  [All_tables] is the conservative
   answer for statements whose reach cannot be named up front
   (catalog-wide ANALYZE). *)
type footprint =
  | All_tables
  | Tables of { read : string list; write : string list }

let rec query_tables (q : Ast.query) =
  let own = List.map fst q.Ast.from in
  let conds = Option.to_list q.Ast.where @ Option.to_list q.Ast.having in
  own
  @ List.concat_map query_tables (List.concat_map Ast.subqueries conds)

let rec statement_tables = function
  | Ast.Select q -> query_tables q
  | Ast.Setop (_, l, r) -> statement_tables l @ statement_tables r

let cond_tables c =
  match c with
  | None -> []
  | Some c -> List.concat_map query_tables (Ast.subqueries c)

let dedup names = List.sort_uniq String.compare names

let command_footprint = function
  | Ast.Cmd_query stmt -> Tables { read = dedup (statement_tables stmt); write = [] }
  | Ast.Create_table { table; _ } -> Tables { read = []; write = [ table ] }
  | Ast.Drop_table table -> Tables { read = []; write = [ table ] }
  | Ast.Insert_values (table, _) -> Tables { read = []; write = [ table ] }
  | Ast.Insert_select (table, stmt) ->
      Tables { read = dedup (statement_tables stmt); write = [ table ] }
  | Ast.Delete (table, where) ->
      (* the probe query scans the target too; listing it under [write]
         already excludes concurrent readers *)
      Tables { read = dedup (cond_tables where); write = [ table ] }
  | Ast.Update (table, _, where) ->
      Tables { read = dedup (cond_tables where); write = [ table ] }
  | Ast.With_query (ctes, stmt) ->
      (* each CTE registers (and later drops) a temp catalog table *)
      Tables
        {
          read =
            dedup
              (statement_tables stmt
              @ List.concat_map (fun (_, s) -> statement_tables s) ctes);
          write = dedup (List.map fst ctes);
        }
  | Ast.Analyze (Some table) -> Tables { read = [ table ]; write = [ table ] }
  | Ast.Analyze None -> All_tables

let prepared_footprint p = command_footprint p.p_cmd
