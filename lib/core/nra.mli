(** Nested relational processing of SQL subqueries — public facade.

    This library reproduces Cao & Badia, {e "A Nested Relational
    Approach to Processing SQL Subqueries"} (SIGMOD 2005): a complete
    in-memory relational engine, a SQL subset with arbitrarily nested
    non-aggregate subqueries, and interchangeable evaluation
    strategies: nested iteration, classical unnesting, magic
    decorrelation, and the paper's nested relational approach in three
    configurations.

    Quickstart:
    {[
      let cat = Nra.Tpch.Gen.generate Nra.Tpch.Gen.default in
      match Nra.query cat "select o_orderkey from orders where ..." with
      | Ok rel -> Format.printf "%a@." Nra.Relation.pp rel
      | Error e -> prerr_endline e
    ]} *)

(** {1 Re-exported components} *)

module Value = Nra_relational.Value
module Three_valued = Nra_relational.Three_valued
module Ttype = Nra_relational.Ttype
module Schema = Nra_relational.Schema
module Row = Nra_relational.Row
module Relation = Nra_relational.Relation
module Expr = Nra_relational.Expr

module Batch = Nra_relational.Batch
(** Columnar batches: typed unboxed columns + null bitmaps behind the
    hot kernels ([--columnar] / [NRA_COLUMNAR], default on) — see
    docs/PERF.md. *)

module Table = Nra_storage.Table
module Catalog = Nra_storage.Catalog
module Hash_index = Nra_storage.Hash_index
module Sorted_index = Nra_storage.Sorted_index

module Fault = Nra_storage.Fault
(** Deterministic fault injection into the simulated I/O layer — see
    docs/ROBUSTNESS.md. *)

module Iosim = Nra_storage.Iosim
(** The simulated I/O cost model the executors charge. *)

module Bufpool = Nra_storage.Bufpool
(** The paged buffer pool behind out-of-core execution
    ([--buffer-pages] / [NRA_BUFFER_PAGES]) — see docs/STORAGE.md. *)

module Governor = Nra_storage.Governor
(** The per-statement memory governor: every staged intermediate is
    charged rows x width to a live-bytes ledger with a session
    high-water mark, and stagings that exceed the buffer pool's frame
    budget spill through {!Bufpool} — see docs/STORAGE.md. *)

module Wal = Nra_storage.Wal
(** The write-ahead log wrapping every DML mutation {e and} CTE
    materialization; [Wal.recover] repairs the catalog after a
    {!Fault.Crash} — see docs/STORAGE.md. *)

module Guard = Nra_guard.Guard
(** Resource budgets and cooperative cancellation; pass a
    {!Guard.budget} to {!query} / {!exec} / {!run}. *)

module Pool = Nra_pool.Pool
(** The Domain pool behind morsel-driven intra-query parallelism
    ([--domains] / [NRA_DOMAINS]) — see docs/PERF.md. *)

module Algebra : sig
  module Basic = Nra_algebra.Basic
  module Join = Nra_algebra.Join
  module Setops = Nra_algebra.Setops
  module Aggregate = Nra_algebra.Aggregate
  module Sort = Nra_algebra.Sort
end

module Nested : sig
  module Nested_relation = Nra_nested.Nested_relation
  module Grouped = Nra_nested.Grouped
  module Link_pred = Nra_nested.Link_pred
  module Linking = Nra_nested.Linking
end

module Sql : sig
  module Ast = Nra_sql.Ast
  module Lexer = Nra_sql.Lexer
  module Parser = Nra_sql.Parser
end

module Planner : sig
  module Resolved = Nra_planner.Resolved
  module Analyze = Nra_planner.Analyze
end

module Exec : sig
  module Frame = Nra_exec.Frame
  module Post = Nra_exec.Post
  module Naive = Nra_exec.Naive
  module Classical = Nra_exec.Classical
  module Magic = Nra_exec.Magic
  module Linkeval = Nra_exec.Linkeval
  module Nra_exec = Nra_exec.Nra
end

module Tpch : sig
  module Prng = Nra_tpch.Prng
  module Gen = Nra_tpch.Gen
  module Queries = Nra_tpch.Queries
end

module Stats : sig
  module Histogram = Nra_stats.Histogram
  module Col_stats = Nra_stats.Col_stats
  module Table_stats = Nra_stats.Table_stats
  module Stats_store = Nra_stats.Stats_store
  module Cardinality = Nra_stats.Cardinality
  module Cost = Nra_stats.Cost
end

module Opt : sig
  module Config = Nra_opt.Config
  module Plan = Nra_opt.Plan
  module Rewrite = Nra_opt.Rewrite
end
(** The algebraic rewrite subsystem: an explicit NRA plan IR lifted
    from the planner's block tree, four cost-gated rules (nest fusion,
    push-down, pipelining, semijoin conversion), and the directives the
    executors consume — see docs/OPTIMIZER.md. *)

(** {1 Errors} *)

(** Every way a statement can fail, as one closed type.  The string API
    ({!query}, {!exec}) renders these with {!Exec_error.to_string}; the
    structured API ({!run}) returns them directly.  No exception escapes
    the public entry points for malformed, unsupported, over-budget or
    faulted statements. *)
module Exec_error : sig
  type t =
    | Budget_exceeded of Guard.resource
        (** killed by the active {!Guard.budget} *)
    | Cancelled  (** killed via a cancelled {!Guard.token} *)
    | Io_error of string
        (** a (simulated) I/O fault survived the executor's retries *)
    | Parse of { message : string; offset : int option; excerpt : string }
        (** lex/parse failure, with the offending byte offset and a
            caret excerpt when available *)
    | Invalid of string
        (** semantic rejection: unknown tables/columns, arity or type
            mismatches, key violations, DDL misuse *)
    | Unsupported of string
        (** the chosen strategy cannot run this (well-formed) query *)
    | Runtime of string  (** any other evaluator failure *)
    | Rejected of string
        (** refused before execution by the serving layer's admission
            controller: the wait queue was full, or the session was
            closed (see [nra.server]) *)
    | Queue_timeout of { waited_ms : float }
        (** admitted to the wait queue but no execution slot freed
            within the queue timeout *)

  val to_string : t -> string
end

(** {1 Convenience API} *)

type strategy =
  | Naive  (** nested iteration, index-assisted *)
  | Classical  (** semijoin/antijoin unnesting with fallbacks *)
  | Magic  (** magic decorrelation (related work §2) *)
  | Nra_original  (** the paper's approach, unoptimized *)
  | Nra_optimized  (** pipelined nest + linking selection (default) *)
  | Nra_full  (** all Section 4.2 optimizations *)
  | Hybrid
      (** the paper's Section 6 integration story: when classical
          unnesting applies to {e every} subquery (semijoins/antijoins
          only, no iteration fallback), use it — it wins on positive
          operators (Figure 5); otherwise use the full nested relational
          approach *)
  | Auto
      (** cost-based dispatch: price every concrete strategy with
          {!Stats.Cost} (using whatever [ANALYZE] statistics are fresh —
          System-R defaults otherwise) and run the cheapest.  Always
          returns the same relation as the other strategies; estimation
          failures fall back to [Nra_optimized]. *)

val strategies : (string * strategy) list
val strategy_of_string : string -> strategy option
val strategy_to_string : strategy -> string

val query :
  ?strategy:strategy ->
  ?guard:Guard.budget ->
  Catalog.t ->
  string ->
  (Relation.t, string) result
(** Parse, analyze and run a SQL statement — a SELECT query, or several
    combined with [UNION / INTERSECT / EXCEPT [ALL]] (an ORDER BY /
    LIMIT after the last component applies to the combined result and
    must use output column names or 1-based positions).  Defaults to
    [Nra_optimized].  When [guard] is given, evaluation runs under that
    budget and a crossed limit returns an [Error] instead of running
    unbounded. *)

val query_exn : ?strategy:strategy -> Catalog.t -> string -> Relation.t

(** {1 Commands — DDL and DML} *)

type exec_result =
  | Rows of Relation.t  (** a query's result *)
  | Count of int  (** rows inserted / deleted *)
  | Done of string  (** DDL acknowledgement *)

val exec :
  ?strategy:strategy ->
  ?guard:Guard.budget ->
  Catalog.t ->
  string ->
  (exec_result, string) result
(** Run any command: a query (like {!query}), [CREATE TABLE] (a
    [PRIMARY KEY] clause is mandatory — the engine's invariant),
    [DROP TABLE], [INSERT INTO t VALUES (…), …],
    [INSERT INTO t SELECT …], or [DELETE FROM t [WHERE …]] (the WHERE
    may contain subqueries and runs under the chosen strategy).
    Modifications revalidate the schema, enforce key uniqueness and
    rebuild the table's indexes — all {e before} the single commit
    point, so a budget kill, fault, or type error mid-DML leaves the
    table, its indexes, and the catalog generation untouched.
    [ANALYZE [t]] collects optimizer statistics (see {!Stats}) for one
    table or the whole catalog. *)

val run :
  ?strategy:strategy ->
  ?guard:Guard.budget ->
  Catalog.t ->
  string ->
  (exec_result, Exec_error.t) result
(** {!exec} with structured errors — the taxonomy of {!Exec_error}
    instead of rendered strings. *)

(** {1 Prepared statements} *)

type prepared
(** A statement carried past its per-execution costs: parsed, and — for
    a plain SELECT — analyzed into the block tree, with [Auto]'s cost
    estimation already paid.  The [nra.server] plan cache stores these
    keyed on (normalized text, strategy, catalog + statistics
    generation), so repeated statements skip parse/plan/estimate. *)

val prepare :
  ?strategy:strategy ->
  Catalog.t ->
  string ->
  (prepared, Exec_error.t) result
(** Parse [sql]; analyze it when it is a plain SELECT; when [strategy]
    is [Auto], additionally price every strategy once.  Set operations,
    WITH and DML prepare to their parsed command only (execution
    analyzes per component, as {!run} does). *)

val run_prepared :
  ?guard:Guard.budget ->
  Catalog.t ->
  prepared ->
  (exec_result, Exec_error.t) result
(** Execute without re-parsing, re-analyzing or re-estimating.  An
    [Auto] preparation replays its stored estimates through the same
    budget-aware pick and kill-and-fallback protocol as {!run}; the
    pick still consults [Guard.remaining ()] at {e execution} time, so
    a cached plan adapts to the caller's current budget.  The caller is
    responsible for staleness: a prepared statement must not outlive a
    change to its catalog or statistics (the plan cache enforces this
    with generation checks). *)

val prepared_sql : prepared -> string
val prepared_strategy : prepared -> strategy

val query_shape : string -> string
(** A structural fingerprint of the statement's subquery links from the
    parse tree alone: one letter per linking operator in traversal
    order ([e]/[E] EXISTS, [i]/[I] IN, [q]/[Q] θ SOME/ALL, [s] scalar),
    suffixed with [!agg] when the subquery's single select item is an
    aggregate (type JA) — so ["i!max"] is [IN (SELECT MAX…)].  Empty
    for unparsable or subquery-free statements.  The plan cache adds
    this to its key: an aggregate-linking query can never share a slot
    with a lookalike non-aggregate one regardless of text
    normalization. *)

val prepared_is_query : prepared -> bool
(** [true] for SELECT / set-operation statements — the only ones the
    plan cache retains (DDL and DML are cheap to parse and mutate the
    very generations the cache is keyed on). *)

(** {1 Auto degradation knobs} *)

val set_auto_guard : ?overrun:float -> ?floor_ms:float -> unit -> unit
(** Configure [Auto]'s kill-and-fallback: the chosen plan runs under a
    simulated-I/O budget of [max floor_ms (estimate *. overrun)]; if it
    blows that budget it is killed, its I/O charges rolled back, and the
    query rerun under [Nra_optimized] (counted in {!Guard.events}).
    [overrun] is clamped to [>= 1.0] (default 4.0), [floor_ms] to
    [>= 0.0] (default 1.0 — estimates near zero would otherwise make
    every misestimate fatal).  The derived budget is intersected with
    the client's own ({!Guard.min_budget}), and a kill attributable to
    the client's budget is {e not} degraded: it surfaces as
    [Budget_exceeded]. *)

val auto_guard : unit -> float * float
(** The current [(overrun, floor_ms)] pair. *)

val explain : Catalog.t -> string -> (string, string) result
(** A textual report: the block tree (the paper's "tree expression"),
    nesting depth, linearity, and the strategy the classical baseline
    would pick per subquery. *)

val explain_costs : Catalog.t -> string -> (string, string) result
(** The [EXPLAIN COSTS] report: every strategy's estimated I/O cost
    (cheapest first) and the strategy [Auto] would run.  See
    {!Stats.Cost.report}. *)

val set_explain_note : (unit -> string option) -> unit
(** Register a one-line status source appended to {!explain_costs}
    after the guard events.  The serving layer uses this to surface
    plan-cache hit/miss/invalidation counters without this library
    depending on it. *)

val auto_choice : Catalog.t -> string -> (strategy, string) result
(** The strategy [Auto] would run for this query — exposed so
    benchmarks and tests can record the choice without re-estimating.
    Under an active {!Guard} budget the choice is budget-aware: the
    cheapest plan whose estimate {e fits} [Guard.remaining ()] wins
    over the globally cheapest (see {!Stats.Cost.pick}). *)

(** {1 The algebraic rewrite pass}

    Rules are off by default; enable them with {!set_rewrite_rules} /
    {!set_rewrite_spec} (the CLI's [--rewrite], and [NRA_REWRITE] in
    the environment).  Once enabled, every NRA-family execution —
    including [Auto]'s picks and [Hybrid]'s NRA arm — runs the
    cost-gated rewritten plan transparently; results are always
    byte-identical to the unrewritten plan. *)

val rewrite_rules : unit -> Nra_opt.Config.rule list
val set_rewrite_rules : Nra_opt.Config.rule list -> unit

val set_rewrite_spec : string -> (unit, string) result
(** Parse ["all"], ["none"], or a comma list of rule names, then
    {!set_rewrite_rules}. *)

(** {1 The columnar execution core}

    On by default; [--columnar false] / [NRA_COLUMNAR=0] fall back to
    row-at-a-time kernels.  Results are byte-identical either way at
    every pool size and frame budget — the toggle exists so the bench
    sweep can measure both sides (see docs/PERF.md). *)

val columnar_enabled : unit -> bool
val set_columnar : bool -> unit

val rewrite_epoch : unit -> int
val rewrite_signature : unit -> string
(** ["mask@epoch"]; plan caches must key on this so toggling rules can
    never serve a stale plan. *)

val nra_base_options : strategy -> Nra_exec.Nra.options option
(** The executor options an NRA-family strategy runs under ([None] for
    the non-NRA strategies and [Auto]). *)

val rewrite_for :
  Catalog.t ->
  Nra_planner.Analyze.t ->
  Nra_exec.Nra.options ->
  Nra_opt.Rewrite.result option
(** [Some r] only when rules are enabled and the cost gate fired at
    least one edit for this plan. *)

val estimates_with_rewrites :
  Catalog.t -> Nra_planner.Analyze.t -> Nra_stats.Cost.estimate list
(** {!Stats.Cost.estimates} with each NRA strategy's estimate adjusted
    by its rewrite's estimated delta and re-ranked — the estimate list
    [Auto] actually picks over. *)

(** {1 Statement footprints} *)

(** Which tables a command reads and writes — the serving layer grants
    table-level locks from this so statements with disjoint footprints
    interleave under the scheduler. *)
type footprint =
  | All_tables  (** conservative: conflicts with everything *)
  | Tables of { read : string list; write : string list }

val command_footprint : Sql.Ast.command -> footprint
val prepared_footprint : prepared -> footprint
