(** A generation-checked plan cache over {!Nra.prepared} statements.

    Entries are keyed on (normalized statement text, subquery-link
    shape — see {!Nra.query_shape}, which distinguishes
    aggregate-linking (type-JA) subqueries from lookalike non-aggregate
    ones — strategy, rewrite signature — see {!Nra.rewrite_signature})
    and stamped with the catalog's global generation
    ([Catalog.global_generation]) and the statistics epoch
    ([Stats_store.epoch_for]) at preparation time.  A lookup whose
    stamps no longer match discards the entry and re-prepares: any DML
    or DDL bumps the catalog generation, any [ANALYZE] bumps the stats
    epoch, so a cached plan can never be replayed against a world it
    was not priced for.

    Normalization collapses whitespace and case {e outside} quoted
    literals, so ["SELECT * FROM emp"] and ["select *  from emp"] share
    an entry while ["… where name = 'Ann'"] and ["… = 'ANN'"] do not.

    Only queries are cached ({!Nra.prepared_is_query}); DML/DDL pass
    through uncached — caching them would be self-defeating, since they
    invalidate the generation they would be keyed on.

    Eviction is LRU with a fixed capacity.  Counters (hits, misses,
    invalidations, evictions) feed [explain --costs] via
    {!Nra.set_explain_note} and the bench report. *)

type t

val create : ?capacity:int -> Nra.Catalog.t -> t
(** A cache bound to one catalog (and its statistics store, via the
    epoch registry).  [capacity] defaults to 128 and is clamped to
    [>= 1]. *)

val normalize : string -> string
(** The cache key's text component: lowercased, whitespace-collapsed,
    with single-quoted literals preserved byte-for-byte. *)

val find_or_prepare :
  t ->
  strategy:Nra.strategy ->
  string ->
  (Nra.prepared, Nra.Exec_error.t) result
(** The cached plan when its generation stamps are current (a {e hit});
    otherwise prepare, cache (queries only, when preparation succeeds),
    and return (a {e miss}, additionally an {e invalidation} when a
    stale entry was displaced).  Preparation failures are not cached. *)

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** entries discarded on generation mismatch *)
  evictions : int;  (** entries displaced by LRU capacity pressure *)
  entries : int;  (** current size *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val hit_rate : stats -> float
(** [hits / (hits + misses)], or [0.] before any lookup. *)

val clear : t -> unit
(** Drop every entry (counters are kept). *)

val note : unit -> string option
(** The [explain --costs] status line aggregated over every cache
    created so far, or [None] when no lookups have happened — wired
    into the core facade via {!Nra.set_explain_note}. *)
