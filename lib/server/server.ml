module Guard = Nra_guard.Guard

type config = {
  admission : Admission.config;
  cache_capacity : int;
  session_wall_ms : float option;
  session_sim_io_ms : float option;
  session_rows : int option;
  strategy : Nra.strategy;
  quantum_ms : float;
  urgent_ms : float;
  domains : int option;
}

let default_config =
  {
    admission = Admission.default_config;
    cache_capacity = 128;
    session_wall_ms = None;
    session_sim_io_ms = None;
    session_rows = None;
    strategy = Nra.Auto;
    quantum_ms = Scheduler.default_quantum_ms;
    urgent_ms = 5.0;
    domains = None;
  }

type outcome = {
  session_id : int;
  sql : string;
  submitted_at : float;
  started_at : float option;
  finished_at : float;
  result : (Nra.exec_result, Nra.Exec_error.t) result;
}

let latency_ms o = o.finished_at -. o.submitted_at

(* What a queued statement needs to run later. *)
type pending = {
  pd_session : Session.t;
  pd_sql : string;
  pd_guard : Guard.budget option;
  pd_submitted : float;
}

type t = {
  cat : Nra.Catalog.t;
  cfg : config;
  pc : Plan_cache.t;
  adm : pending Admission.t;
  sched : Scheduler.t;
  (* (statement id, outcome); newest first, reversed by [drain];
     id 0 marks outcomes of statements that never got a task *)
  mutable completed : (int * outcome) list;
  (* Table-level locks over statement footprints (Nra.footprint):
     shared read locks counted per table, exclusive write locks, and a
     global count for All_tables statements.  Granted all-at-once (so
     no incremental acquisition → no deadlock); a blocked statement
     virtual-sleeps and retries, which lets DML on disjoint tables
     interleave under the scheduler where the old with_no_yield
     serialized every non-query. *)
  mutable read_locks : (string * int) list;
  mutable write_locks : string list;
  mutable global_locks : int;
}

let hook_registered = ref false

let create ?(config = default_config) cat =
  if not !hook_registered then begin
    Nra.set_explain_note Plan_cache.note;
    hook_registered := true
  end;
  (* a WAL left torn by a crash is repaired before the first statement
     is admitted, so every session starts from a consistent catalog *)
  (match Nra.Wal.recover_if_needed cat with
  | Some s ->
      Printf.eprintf
        "server: recovered unfinished statement(s) from WAL (%d redone, \
         %d undone)\n%!"
        s.Nra.Wal.redone s.Nra.Wal.undone
  | None -> ());
  (* The scheduler owns the Domain pool: statements time-slice on one
     domain, and a statement's parallel region runs to the barrier
     within its slice (a no-yield critical section), so one pool serves
     all sessions without interleaving hazards. *)
  Option.iter Nra_pool.Pool.set_size config.domains;
  {
    cat;
    cfg = config;
    pc = Plan_cache.create ~capacity:config.cache_capacity cat;
    adm = Admission.create config.admission;
    sched = Scheduler.create ~quantum_ms:config.quantum_ms ();
    completed = [];
    read_locks = [];
    write_locks = [];
    global_locks = 0;
  }

let catalog t = t.cat
let config t = t.cfg
let cache t = t.pc
let scheduler t = t.sched
let now t = Scheduler.now t.sched
let admission_stats t = Admission.stats t.adm

let session t ?label ?wall_ms ?sim_io_ms ?rows () =
  let pick o dflt = match o with Some _ -> o | None -> dflt in
  Session.create ?label
    ?wall_ms:(pick wall_ms t.cfg.session_wall_ms)
    ?sim_io_ms:(pick sim_io_ms t.cfg.session_sim_io_ms)
    ?rows:(pick rows t.cfg.session_rows)
    ()

let complete t id o = t.completed <- (id, o) :: t.completed

let timeout_outcome (w : pending Admission.waiter) =
  {
    session_id = Session.id w.payload.pd_session;
    sql = w.payload.pd_sql;
    submitted_at = w.payload.pd_submitted;
    started_at = None;
    finished_at = w.at;
    result =
      Error (Nra.Exec_error.Queue_timeout { waited_ms = w.at -. w.enqueued_at });
  }

(* ---------- table-level locking ---------- *)

let lock_wait_ms = 0.05

let read_count t name =
  match List.assoc_opt name t.read_locks with Some n -> n | None -> 0

let conflicts t (fp : Nra.footprint) =
  match fp with
  | Nra.All_tables ->
      t.global_locks > 0 || t.read_locks <> [] || t.write_locks <> []
  | Nra.Tables { read; write } ->
      t.global_locks > 0
      || List.exists (fun n -> List.mem n t.write_locks) (read @ write)
      || List.exists (fun n -> read_count t n > 0) write

let grant t = function
  | Nra.All_tables -> t.global_locks <- t.global_locks + 1
  | Nra.Tables { read; write } ->
      List.iter
        (fun n -> t.read_locks <- (n, read_count t n + 1)
                  :: List.remove_assoc n t.read_locks)
        read;
      t.write_locks <- write @ t.write_locks

let release t = function
  | Nra.All_tables -> t.global_locks <- t.global_locks - 1
  | Nra.Tables { read; write } ->
      List.iter
        (fun n ->
          let c = read_count t n - 1 in
          t.read_locks <-
            (if c <= 0 then List.remove_assoc n t.read_locks
             else (n, c) :: List.remove_assoc n t.read_locks))
        read;
      List.iter
        (fun n ->
          let rec drop_one = function
            | [] -> []
            | x :: rest -> if x = n then rest else x :: drop_one rest
          in
          t.write_locks <- drop_one t.write_locks)
        write

(* All-at-once acquisition: spin (on the virtual clock) until the whole
   footprint is grantable, then grant it atomically within the slice.
   Two same-table writers therefore serialize, while writers on
   disjoint tables — and any readers not touching a written table —
   interleave freely. *)
let acquire t fp =
  while conflicts t fp do
    Scheduler.sleep_for lock_wait_ms
  done;
  grant t fp

(* Budget-aware priority: a statement whose session is nearly out of
   simulated-I/O allowance runs ahead of bulk work, so it can finish
   (or be killed by the guard) instead of queueing behind statements
   with time to spare.  Re-read by the scheduler at every switch. *)
let priority t p () =
  match (Session.remaining p.pd_session).Guard.sim_io_ms with
  | Some left when left <= t.cfg.urgent_ms -> 0
  | _ -> 1

(* Spawn one admitted statement as a scheduler task whose slot starts
   at [start].  The task interleaves with every other in-flight
   statement at the guard checkpoints; when it finishes it frees its
   admission slot, which may expire stale waiters and promote (spawn)
   the head waiter.  The outcome is tagged with the task id so a serial
   caller ({!exec}) can claim exactly its own. *)
let rec spawn_stmt t p ~start =
  let id = ref 0 in
  id :=
    Scheduler.spawn t.sched ~prio:(priority t p)
      ~label:(Printf.sprintf "s%d" (Session.id p.pd_session))
      (fun () ->
        let guard =
          let base = Session.remaining p.pd_session in
          match p.pd_guard with
          | None -> base
          (* override first: its cancel token (the REPL's SIGINT token)
             governs the statement; limits are element-wise min either
             way *)
          | Some g -> Guard.min_budget g base
        in
        let result, spend =
          match
            Plan_cache.find_or_prepare t.pc ~strategy:t.cfg.strategy p.pd_sql
          with
          | Error _ as e ->
              (e, { Guard.wall_ms = 0.0; sim_io_ms = 0.0; rows = 0 })
          | Ok prep ->
              let run () = Nra.run_prepared ~guard t.cat prep in
              (* Table-level locking over the statement's footprint:
                 writers exclude readers and writers of the same table
                 but interleave with everything disjoint.  DML
                 atomicity holds because each mutation validates and
                 commits within a slice (the WAL brackets it), and the
                 write lock keeps a second same-table statement from
                 observing the window between a DML's read and its
                 commit point.  [All_tables] (catalog-wide ANALYZE)
                 keeps the old whole-statement critical section. *)
              let fp = Nra.prepared_footprint prep in
              acquire t fp;
              let r =
                Fun.protect
                  ~finally:(fun () -> release t fp)
                  (fun () ->
                    match fp with
                    | Nra.All_tables -> Guard.with_no_yield run
                    | Nra.Tables _ -> run ())
              in
              (r, Guard.last_spend ())
        in
        Session.charge p.pd_session spend;
        let done_at = Scheduler.now t.sched in
        complete t !id
          {
            session_id = Session.id p.pd_session;
            sql = p.pd_sql;
            submitted_at = p.pd_submitted;
            started_at = Some start;
            finished_at = done_at;
            result;
          };
        let expired, promoted = Admission.release t.adm ~now:done_at in
        List.iter (fun w -> complete t 0 (timeout_outcome w)) expired;
        match promoted with
        | Some (w : pending Admission.waiter) ->
            ignore (spawn_stmt t w.payload ~start:w.at)
        | None -> ());
  !id

let rejected session sql ~arrived ~at msg =
  {
    session_id = Session.id session;
    sql;
    submitted_at = arrived;
    started_at = None;
    finished_at = at;
    result = Error (Nra.Exec_error.Rejected msg);
  }

let submit t ?at ?guard session sql =
  (* the statement arrived when the caller says it did, even if the
     clock has already been driven past that instant by an in-flight
     slice — scheduling uses the clamped time, but latency is measured
     from the arrival, so time spent behind a long statement is not
     silently erased (the open-loop / coordinated-omission rule) *)
  let arrived =
    match at with None -> Scheduler.now t.sched | Some a -> a
  in
  let at = Float.max arrived (Scheduler.now t.sched) in
  (* bring the in-flight statements up to the arrival: slices run (and
     complete, freeing slots and promoting waiters) until the virtual
     clock reaches [at] *)
  Scheduler.advance_to t.sched at;
  List.iter
    (fun w -> complete t 0 (timeout_outcome w))
    (Admission.expire t.adm ~now:at);
  if Session.closed session then
    `Done (rejected session sql ~arrived ~at "session closed")
  else
    let p =
      { pd_session = session; pd_sql = sql; pd_guard = guard;
        pd_submitted = arrived }
    in
    match Admission.submit t.adm ~now:at p with
    | `Admitted -> `Running (spawn_stmt t p ~start:at)
    | `Queued -> `Queued
    | `Rejected_full ->
        `Done (rejected session sql ~arrived ~at "admission queue full")

let drain t =
  let l = List.rev_map snd t.completed in
  t.completed <- [];
  l

let finish t =
  Scheduler.run_until_idle t.sched;
  (* nothing left in flight: anything still queued can only time out *)
  List.iter
    (fun w -> complete t 0 (timeout_outcome w))
    (Admission.expire t.adm ~now:infinity);
  drain t

let exec t ?guard session sql =
  (* the serial client issues its next statement after everything
     before it has completed *)
  Scheduler.run_until_idle t.sched;
  match submit t ?guard session sql with
  | `Done o -> o.result
  | `Running id -> (
      Scheduler.run_until_idle t.sched;
      (* claim this statement's outcome, leaving any concurrent
         completions for [drain] *)
      let mine, rest =
        List.partition (fun (i, _) -> i = id) t.completed
      in
      t.completed <- rest;
      match mine with
      | [ (_, o) ] -> o.result
      | _ -> assert false)
  | `Queued ->
      (* a free slot was just ensured, so admission cannot queue us *)
      assert false

let close_session t s =
  let flushed =
    Admission.cancel t.adm (fun p -> Session.id p.pd_session = Session.id s)
  in
  List.iter
    (fun p ->
      complete t 0
        {
          session_id = Session.id p.pd_session;
          sql = p.pd_sql;
          submitted_at = p.pd_submitted;
          started_at = None;
          finished_at = Scheduler.now t.sched;
          result = Error Nra.Exec_error.Cancelled;
        })
    flushed;
  Session.close s

let report t s =
  Format.asprintf "@[<v>%a@,%a@,%a@,%a@]" Session.pp s Admission.pp_stats
    (Admission.stats t.adm) Plan_cache.pp_stats (Plan_cache.stats t.pc)
    Scheduler.pp_stats (Scheduler.stats t.sched)
