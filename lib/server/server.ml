module Guard = Nra_guard.Guard

type config = {
  admission : Admission.config;
  cache_capacity : int;
  session_wall_ms : float option;
  session_sim_io_ms : float option;
  session_rows : int option;
  strategy : Nra.strategy;
}

let default_config =
  {
    admission = Admission.default_config;
    cache_capacity = 128;
    session_wall_ms = None;
    session_sim_io_ms = None;
    session_rows = None;
    strategy = Nra.Auto;
  }

type outcome = {
  session_id : int;
  sql : string;
  submitted_at : float;
  started_at : float option;
  finished_at : float;
  result : (Nra.exec_result, Nra.Exec_error.t) result;
}

let latency_ms o = o.finished_at -. o.submitted_at

(* What a queued statement needs to run later. *)
type pending = {
  pd_session : Session.t;
  pd_sql : string;
  pd_guard : Guard.budget option;
  pd_submitted : float;
}

type t = {
  cat : Nra.Catalog.t;
  cfg : config;
  pc : Plan_cache.t;
  adm : pending Admission.t;
  mutable clock : float;
  mutable inflight : float list;  (* virtual completion times of slot holders *)
  mutable completed : outcome list;  (* newest first; reversed by [drain] *)
}

let hook_registered = ref false

let create ?(config = default_config) cat =
  if not !hook_registered then begin
    Nra.set_explain_note Plan_cache.note;
    hook_registered := true
  end;
  {
    cat;
    cfg = config;
    pc = Plan_cache.create ~capacity:config.cache_capacity cat;
    adm = Admission.create config.admission;
    clock = 0.0;
    inflight = [];
    completed = [];
  }

let catalog t = t.cat
let config t = t.cfg
let cache t = t.pc
let now t = t.clock
let admission_stats t = Admission.stats t.adm

let session t ?label ?wall_ms ?sim_io_ms ?rows () =
  let pick o dflt = match o with Some _ -> o | None -> dflt in
  Session.create ?label
    ?wall_ms:(pick wall_ms t.cfg.session_wall_ms)
    ?sim_io_ms:(pick sim_io_ms t.cfg.session_sim_io_ms)
    ?rows:(pick rows t.cfg.session_rows)
    ()

(* Execute one statement whose slot starts at [start].  Host-synchronous;
   its virtual duration is the simulated I/O it consumed. *)
let run_pending t p ~start =
  let guard =
    let base = Session.remaining p.pd_session in
    match p.pd_guard with
    | None -> base
    (* override first: its cancel token (the REPL's SIGINT token)
       governs the statement; limits are element-wise min either way *)
    | Some g -> Guard.min_budget g base
  in
  let result, spend =
    match Plan_cache.find_or_prepare t.pc ~strategy:t.cfg.strategy p.pd_sql with
    | Error _ as e -> (e, { Guard.wall_ms = 0.0; sim_io_ms = 0.0; rows = 0 })
    | Ok prep ->
        let r = Nra.run_prepared ~guard t.cat prep in
        (r, Guard.last_spend ())
  in
  Session.charge p.pd_session spend;
  let done_at = start +. spend.Guard.sim_io_ms in
  t.inflight <- done_at :: t.inflight;
  {
    session_id = Session.id p.pd_session;
    sql = p.pd_sql;
    submitted_at = p.pd_submitted;
    started_at = Some start;
    finished_at = done_at;
    result;
  }

let timeout_outcome (w : pending Admission.waiter) =
  {
    session_id = Session.id w.payload.pd_session;
    sql = w.payload.pd_sql;
    submitted_at = w.payload.pd_submitted;
    started_at = None;
    finished_at = w.at;
    result =
      Error (Nra.Exec_error.Queue_timeout { waited_ms = w.at -. w.enqueued_at });
  }

let complete t o = t.completed <- o :: t.completed

let rec remove_one x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_one x rest

(* Retire every in-flight statement completing by [upto], oldest first.
   Each retirement frees a slot, which may time out stale waiters and
   promote (and run) the head waiter — whose own completion re-enters
   the in-flight set and is retired in turn if it also falls by [upto]. *)
let rec retire_until t ~upto =
  match t.inflight with
  | [] -> ()
  | l ->
      let m = List.fold_left Float.min infinity l in
      if m > upto then ()
      else begin
        t.inflight <- remove_one m l;
        let expired, promoted = Admission.release t.adm ~now:m in
        List.iter (fun w -> complete t (timeout_outcome w)) expired;
        (match promoted with
        | Some (w : pending Admission.waiter) ->
            complete t (run_pending t w.payload ~start:w.at)
        | None -> ());
        retire_until t ~upto
      end

let rejected session sql ~at msg =
  {
    session_id = Session.id session;
    sql;
    submitted_at = at;
    started_at = None;
    finished_at = at;
    result = Error (Nra.Exec_error.Rejected msg);
  }

let submit t ?at ?guard session sql =
  let at =
    match at with None -> t.clock | Some a -> Float.max a t.clock
  in
  t.clock <- at;
  retire_until t ~upto:at;
  List.iter
    (fun w -> complete t (timeout_outcome w))
    (Admission.expire t.adm ~now:at);
  if Session.closed session then
    `Done (rejected session sql ~at "session closed")
  else
    let p =
      { pd_session = session; pd_sql = sql; pd_guard = guard;
        pd_submitted = at }
    in
    match Admission.submit t.adm ~now:at p with
    | `Admitted -> `Done (run_pending t p ~start:at)
    | `Queued -> `Queued
    | `Rejected_full -> `Done (rejected session sql ~at "admission queue full")

let drain t =
  let l = List.rev t.completed in
  t.completed <- [];
  l

let rec finish t =
  match t.inflight with
  | [] ->
      (* no slot holder left; anything still queued can only time out *)
      List.iter
        (fun w -> complete t (timeout_outcome w))
        (Admission.expire t.adm ~now:infinity);
      drain t
  | l ->
      let m = List.fold_left Float.min infinity l in
      t.clock <- Float.max t.clock m;
      retire_until t ~upto:m;
      finish t

(* Advance time until everything in flight has retired: a serial client
   issues its next statement after the previous one completed. *)
let rec await_idle t =
  match t.inflight with
  | [] -> ()
  | l ->
      let m = List.fold_left Float.min infinity l in
      t.clock <- Float.max t.clock m;
      retire_until t ~upto:m;
      await_idle t

let exec t ?guard session sql =
  await_idle t;
  match submit t ?guard session sql with
  | `Done o -> o.result
  | `Queued ->
      (* a free slot was just ensured, so admission cannot queue us *)
      assert false

let close_session t s =
  let flushed =
    Admission.cancel t.adm (fun p -> Session.id p.pd_session = Session.id s)
  in
  List.iter
    (fun p ->
      complete t
        {
          session_id = Session.id p.pd_session;
          sql = p.pd_sql;
          submitted_at = p.pd_submitted;
          started_at = None;
          finished_at = t.clock;
          result = Error Nra.Exec_error.Cancelled;
        })
    flushed;
  Session.close s

let report t s =
  Format.asprintf "@[<v>%a@,%a@,%a@]" Session.pp s Admission.pp_stats
    (Admission.stats t.adm) Plan_cache.pp_stats (Plan_cache.stats t.pc)
