(** A client session: one cancellation token plus one aggregate budget
    spent down across the session's statements.

    The guard (PR 2) bounds a {e single} statement; a session bounds a
    {e client}.  Its totals — wall-clock, simulated I/O, intermediate
    rows — are debited by every statement the session runs, so the Nth
    statement of a profligate client is killed even though each
    statement individually looked harmless.  Per-statement overrides
    only ever {e tighten} the session allowance
    ([Guard.min_budget]), never widen it.

    Closing a session cancels its token — cooperatively killing any
    running statement — and marks it so the server rejects later
    submissions and flushes its queued work. *)

type t

val create :
  ?label:string ->
  ?wall_ms:float ->
  ?sim_io_ms:float ->
  ?rows:int ->
  unit ->
  t
(** A fresh open session with the given aggregate totals (each
    unlimited when omitted) and a fresh cancel token. *)

val id : t -> int
(** Process-unique, monotonically assigned. *)

val label : t -> string
(** [create]'s label, defaulting to ["session-<id>"]. *)

val token : t -> Nra_guard.Guard.token

(** {1 The aggregate budget} *)

val remaining : t -> Nra_guard.Guard.budget
(** What is left right now, as a budget carrying the session token —
    ready to be intersected with a per-statement override and passed to
    the engine.  Limits are clamped at 0: an exhausted session yields a
    zero allowance, which kills the next statement at its first
    checkpoint rather than silently unbounding it. *)

val charge : t -> Nra_guard.Guard.spend -> unit
(** Debit one statement's consumption (from [Guard.last_spend]) and
    count the statement. *)

val spent : t -> Nra_guard.Guard.spend
(** Cumulative consumption across all charged statements. *)

val statements : t -> int
(** Statements charged so far. *)

(** {1 Lifecycle} *)

val close : t -> unit
(** Cancel the token and mark the session closed.  Idempotent. *)

val closed : t -> bool

val pp : Format.formatter -> t -> unit
(** The [\session] report body: label, state, statements, and
    spent/total per resource. *)
