type config = {
  max_concurrent : int;
  queue_len : int;
  queue_timeout_ms : float option;
}

let default_config =
  { max_concurrent = 4; queue_len = 16; queue_timeout_ms = Some 1000.0 }

type stats = {
  admitted : int;
  queued : int;
  rejected_full : int;
  timed_out : int;
  cancelled : int;
  peak_running : int;
  peak_queue : int;
}

let zero_stats =
  {
    admitted = 0;
    queued = 0;
    rejected_full = 0;
    timed_out = 0;
    cancelled = 0;
    peak_running = 0;
    peak_queue = 0;
  }

type 'a entry = { e_payload : 'a; e_enqueued_at : float }

type 'a t = {
  cfg : config;
  mutable running : int;
  mutable queue : 'a entry list;  (* FIFO: head is oldest *)
  mutable st : stats;
}

let create cfg =
  let cfg =
    {
      cfg with
      max_concurrent = Int.max 1 cfg.max_concurrent;
      queue_len = Int.max 0 cfg.queue_len;
    }
  in
  { cfg; running = 0; queue = []; st = zero_stats }

let config t = t.cfg
let running t = t.running
let queue_length t = List.length t.queue
let stats t = t.st

type 'a waiter = { payload : 'a; enqueued_at : float; at : float }

let deadline t (e : 'a entry) =
  match t.cfg.queue_timeout_ms with
  | None -> infinity
  | Some ms -> e.e_enqueued_at +. ms

let note_admitted t =
  t.st <-
    {
      t.st with
      admitted = t.st.admitted + 1;
      peak_running = Int.max t.st.peak_running t.running;
    }

(* Queue entries share one timeout, so deadlines are in FIFO order: the
   expired entries are always a prefix. *)
let expire t ~now =
  let rec split = function
    | e :: rest when deadline t e <= now ->
        let gone, keep = split rest in
        ({ payload = e.e_payload; enqueued_at = e.e_enqueued_at;
           at = deadline t e }
         :: gone,
         keep)
    | keep -> ([], keep)
  in
  let gone, keep = split t.queue in
  t.queue <- keep;
  t.st <- { t.st with timed_out = t.st.timed_out + List.length gone };
  gone

let submit t ~now payload =
  if t.running < t.cfg.max_concurrent then begin
    t.running <- t.running + 1;
    note_admitted t;
    `Admitted
  end
  else if List.length t.queue < t.cfg.queue_len then begin
    t.queue <- t.queue @ [ { e_payload = payload; e_enqueued_at = now } ];
    t.st <-
      {
        t.st with
        queued = t.st.queued + 1;
        peak_queue = Int.max t.st.peak_queue (List.length t.queue);
      };
    `Queued
  end
  else begin
    t.st <- { t.st with rejected_full = t.st.rejected_full + 1 };
    `Rejected_full
  end

let release t ~now =
  if t.running <= 0 then invalid_arg "Admission.release: nothing running";
  t.running <- t.running - 1;
  (* waiters whose deadline passed while the slot was busy never get it *)
  let expired = expire t ~now in
  match t.queue with
  | [] -> (expired, None)
  | e :: rest ->
      t.queue <- rest;
      t.running <- t.running + 1;
      note_admitted t;
      ( expired,
        Some { payload = e.e_payload; enqueued_at = e.e_enqueued_at; at = now }
      )

let cancel t pred =
  let gone, keep = List.partition (fun e -> pred e.e_payload) t.queue in
  t.queue <- keep;
  t.st <- { t.st with cancelled = t.st.cancelled + List.length gone };
  List.map (fun e -> e.e_payload) gone

let pp_stats ppf s =
  Format.fprintf ppf
    "admitted %d, queued %d, rejected %d (queue full), timed out %d, \
     cancelled %d; peaks: %d running / %d queued"
    s.admitted s.queued s.rejected_full s.timed_out s.cancelled
    s.peak_running s.peak_queue
