(** Deterministic cooperative scheduler: truly interleaved statements
    on the virtual clock.

    PR 3's admission control admitted several statements "concurrently"
    but each one still ran host-synchronously and occupied its slot for
    its whole simulated-I/O duration — a long statement head-of-line
    blocked every short one behind it.  This module runs each admitted
    statement as a {e resumable task} (an OCaml 5 effect-handler
    coroutine): the task body is the unchanged evaluator code, and every
    [Guard.tick]/[add_rows] checkpoint offers a switch point through the
    guard's yield hook.  When a task has charged [quantum_ms] of
    simulated I/O since it was scheduled in, the hook performs a yield
    effect, the scheduler captures the continuation, and the next task
    runs — so concurrent statements genuinely interleave on the shared
    virtual clock, deterministically: the schedule is a function of the
    arrival sequence, the I/O charges, and the quantum alone.

    {b The clock.}  Virtual time is the {!Nra_storage.Iosim} ledger (in
    ms) plus idle jumps: while any task runs, time advances exactly as
    fast as the simulated disk is charged; when every live task is
    asleep (fault-retry backoff) or the caller advances to a future
    arrival, the clock jumps without charges.  {!now} is monotone at
    every scheduling point.

    {b Policy.}  Deterministic round-robin within two priority classes:
    a task whose priority thunk reports [0] (the server maps "session
    sim-I/O budget nearly exhausted" to this) runs ahead of bulk work
    ([1]).  Priorities are re-read at every switch, so a session
    draining its budget mid-statement gets boosted at the next quantum.
    Tests can replace the policy wholesale with [~chooser] to drive
    {e randomized} schedules for interleaving-equivalence testing.

    {b Preemption.}  Budget enforcement stays in the guard: the check
    runs at every checkpoint {e before} the yield hook, so a statement
    whose budget trips mid-quantum is killed (its [Killed] unwind runs
    inside the task) within one quantum of exhaustion, never after
    another full slice.

    {b Sleeping.}  {!Nra_storage.Fault.with_retries} backoff is a
    scheduler sleep: the retrying task suspends until the virtual clock
    passes the backoff while other tasks keep the disk busy; no real
    wall-clock time passes.  Inside a [Guard.with_no_yield] critical
    section the sleep degrades to the default virtual no-op rather than
    suspending.

    Global and single-threaded like the rest of the engine: one task
    runs at a time, switches happen only at checkpoints, and the guard
    context (budget scopes, accruals) is detached and reattached around
    every switch so interleaved statements cannot observe each other's
    consumption. *)

type t

val create : ?quantum_ms:float -> ?chooser:(now:float -> int list -> int)
  -> unit -> t
(** A fresh scheduler with its clock at 0.  [quantum_ms] (default
    {!default_quantum_ms}) is how much simulated I/O a task may charge
    per slice before the yield hook suspends it; [infinity] restores
    PR 3's slot-serialized behavior (a task runs to completion once
    scheduled).  [chooser] overrides the round-robin policy: it is
    given the current virtual time and the runnable task ids (ascending)
    and returns the id to run — used by the randomized
    interleaving-equivalence tests.  The first [create] registers the
    guard yield hook and the fault backoff sleeper (both global,
    dispatching on the currently running scheduler). *)

val default_quantum_ms : float
(** 0.5 ms of simulated I/O per slice. *)

val quantum_ms : t -> float

val now : t -> float
(** The virtual clock, in ms: monotone at every scheduling point. *)

val spawn :
  t -> ?prio:(unit -> int) -> ?label:string -> (unit -> unit) -> int
(** Register a task and return its id.  The body is not entered until
    the scheduler is next driven ({!advance_to} / {!run_until_idle});
    [prio] (default: constant [1]) is re-read at every switch point —
    smaller runs first.  Safe to call from inside a running task (a
    completion handler admitting queued work). *)

val alive : t -> int
(** Tasks spawned but not yet finished (running, runnable or asleep). *)

val advance_to : t -> float -> unit
(** Drive tasks until the clock reaches the target: runnable tasks are
    sliced (each slice advances the clock by the I/O it charges), due
    sleepers are woken, and when everything is idle the clock jumps.
    On return [now t >= target] (a final slice may overshoot it — I/O
    charges are lumpy).  This is how the server moves time forward to a
    statement's arrival. *)

val run_until_idle : t -> unit
(** Drive tasks (waking sleepers, jumping the clock over pure-sleep
    gaps) until every spawned task has finished. *)

type stats = {
  spawned : int;
  finished : int;
  slices : int;  (** scheduling slices run (context switches) *)
  yields : int;  (** quantum expiries (yield effects handled) *)
  sleeps : int;  (** backoff sleeps taken as virtual suspensions *)
  woken : int;  (** sleeper wake-ups *)
  idle_jumped_ms : float;  (** clock advanced with no task running *)
  max_live : int;  (** peak concurrently live tasks *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val sleep_for : float -> unit
(** Voluntary virtual sleep for spin-waits (e.g. the server's
    table-lock acquisition loop).  Inside a scheduled task it suspends
    for [ms] on the virtual clock so other tasks run; outside any task,
    or within a no-yield critical section, it is a no-op. *)
