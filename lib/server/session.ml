module Guard = Nra_guard.Guard

type t = {
  id : int;
  label : string;
  token : Guard.token;
  wall_ms : float option;
  sim_io_ms : float option;
  rows : int option;
  mutable spent_wall_ms : float;
  mutable spent_sim_io_ms : float;
  mutable spent_rows : int;
  mutable statements : int;
  mutable closed : bool;
}

let next_id = ref 0

let create ?label ?wall_ms ?sim_io_ms ?rows () =
  incr next_id;
  let id = !next_id in
  {
    id;
    label =
      (match label with Some l -> l | None -> Printf.sprintf "session-%d" id);
    token = Guard.token ();
    wall_ms;
    sim_io_ms;
    rows;
    spent_wall_ms = 0.0;
    spent_sim_io_ms = 0.0;
    spent_rows = 0;
    statements = 0;
    closed = false;
  }

let id t = t.id
let label t = t.label
let token t = t.token

let remaining t =
  Guard.budget
    ?wall_ms:
      (Option.map (fun l -> Float.max 0.0 (l -. t.spent_wall_ms)) t.wall_ms)
    ?sim_io_ms:
      (Option.map
         (fun l -> Float.max 0.0 (l -. t.spent_sim_io_ms))
         t.sim_io_ms)
    ?max_rows:(Option.map (fun l -> Int.max 0 (l - t.spent_rows)) t.rows)
    ~cancel_on:t.token ()

let charge t (s : Guard.spend) =
  t.spent_wall_ms <- t.spent_wall_ms +. s.Guard.wall_ms;
  t.spent_sim_io_ms <- t.spent_sim_io_ms +. s.Guard.sim_io_ms;
  t.spent_rows <- t.spent_rows + s.Guard.rows;
  t.statements <- t.statements + 1

let spent t =
  {
    Guard.wall_ms = t.spent_wall_ms;
    sim_io_ms = t.spent_sim_io_ms;
    rows = t.spent_rows;
  }

let statements t = t.statements

let close t =
  if not t.closed then begin
    t.closed <- true;
    Guard.cancel t.token
  end

let closed t = t.closed

let pp ppf t =
  let resource ppf (name, spent, total, unit_) =
    match total with
    | None -> Format.fprintf ppf "%s: %s%s of unlimited" name spent unit_
    | Some tot -> Format.fprintf ppf "%s: %s%s of %s%s" name spent unit_ tot unit_
  in
  Format.fprintf ppf "@[<v>%s (#%d): %s, %d statement(s)@,%a@,%a@,%a@]"
    t.label t.id
    (if t.closed then "closed" else "open")
    t.statements resource
    ( "wall",
      Printf.sprintf "%.1f" t.spent_wall_ms,
      Option.map (Printf.sprintf "%.1f") t.wall_ms,
      " ms" )
    resource
    ( "sim-io",
      Printf.sprintf "%.2f" t.spent_sim_io_ms,
      Option.map (Printf.sprintf "%.2f") t.sim_io_ms,
      " ms" )
    resource
    ( "rows",
      string_of_int t.spent_rows,
      Option.map string_of_int t.rows,
      "" )
