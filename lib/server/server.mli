(** The serving layer: sessions + admission + plan cache over one
    catalog, with statements run by the cooperative {!Scheduler}.

    The engine is single-threaded, so the server models a concurrent
    population of clients in {e virtual time} (see {!Admission}): every
    submission carries an arrival time on a monotone millisecond clock.
    An admitted statement becomes a {e resumable scheduler task} that
    interleaves with every other in-flight statement at the guard
    checkpoints — time-sliced by [quantum_ms] of simulated I/O — instead
    of occupying its slot host-synchronously as in PR 3.  Queued
    statements run when a slot frees — or time out, or are flushed by
    session close.  For a given workload the schedule, admission
    decisions, latencies and rejections are all deterministic.

    The serial path ({!exec}) is what the CLI REPL uses: one client,
    statements submitted back-to-back at the clock, so admission always
    grants a slot and the value added is the session budget, the
    cancellation token, and the plan cache.  The concurrent path
    ({!submit} with explicit [~at] / {!drain} / {!finish}) is what the
    bench workload driver uses. *)

type config = {
  admission : Admission.config;
  cache_capacity : int;
  session_wall_ms : float option;  (** default per-session totals … *)
  session_sim_io_ms : float option;
  session_rows : int option;  (** … applied by {!session} *)
  strategy : Nra.strategy;
  quantum_ms : float;
      (** simulated-I/O per scheduler slice; [infinity] restores PR 3's
          slot-serialized behavior *)
  urgent_ms : float;
      (** a statement whose session has at most this much simulated-I/O
          allowance left is boosted ahead of bulk work *)
  domains : int option;
      (** worker-domain count for intra-query parallelism, applied to
          the scheduler-owned pool ([Nra_pool.Pool.set_size]) at
          {!create}; [None] keeps the pool's current size
          ([NRA_DOMAINS] or the core count).  A statement's parallel
          regions run to their barrier within its scheduler slice —
          see docs/PERF.md. *)
}

val default_config : config
(** {!Admission.default_config}, cache of 128, unlimited sessions,
    [Auto], {!Scheduler.default_quantum_ms}, 5 ms urgency threshold,
    pool size left as-is. *)

type t

val create : ?config:config -> Nra.Catalog.t -> t
(** Also registers the plan cache's [explain --costs] note hook
    ({!Nra.set_explain_note}) — idempotent. *)

val catalog : t -> Nra.Catalog.t
val config : t -> config
val cache : t -> Plan_cache.t

val scheduler : t -> Scheduler.t
(** The server's scheduler — exposed for stats and for the bench
    driver. *)

val now : t -> float
(** The virtual clock, in ms (see {!Scheduler.now}): monotone; advances
    with the simulated-I/O charges of running statements and jumps over
    idle gaps. *)

val session :
  t ->
  ?label:string ->
  ?wall_ms:float ->
  ?sim_io_ms:float ->
  ?rows:int ->
  unit ->
  Session.t
(** A new session; budget totals default to the server config's
    session defaults. *)

val close_session : t -> Session.t -> unit
(** Cancel the session's token, flush its queued statements (each
    completes as [Error Cancelled], visible in {!drain}) and reject its
    future submissions.  An in-flight statement of the session is
    killed at its next checkpoint (the token trips the guard). *)

(** {1 Statement outcomes} *)

type outcome = {
  session_id : int;
  sql : string;
  submitted_at : float;
  started_at : float option;  (** [None]: never got a slot *)
  finished_at : float;
  result : (Nra.exec_result, Nra.Exec_error.t) result;
}

val latency_ms : outcome -> float
(** [finished_at -. submitted_at] — queue wait plus execution. *)

(** {1 The concurrent path} *)

val submit :
  t ->
  ?at:float ->
  ?guard:Nra.Guard.budget ->
  Session.t ->
  string ->
  [ `Done of outcome | `Running of int | `Queued ]
(** One statement arriving at [at] (default: the current clock).  The
    clock never goes backwards — a stale [at] is clamped forward for
    scheduling — but [submitted_at] keeps the caller's arrival time, so
    {!latency_ms} counts time the server spent on other work past the
    arrival (the open-loop rule: a slice that overshoots an arrival
    must not erase that statement's wait).
    First drives the scheduler to [at] — in-flight statements interleave
    up to the arrival, completions free slots and promote waiters, and
    queue timeouts expire, accumulating outcomes for {!drain}.  Then:

    - closed session: [`Done] with [Error (Rejected _)];
    - slot free: the statement is spawned as a scheduler task under
      [Guard.min_budget (Session.remaining session) guard] —
      [`Running id]; it runs (interleaved) as the clock is driven by
      later submissions or {!finish}, charges the session
      ({!Session.charge}) when it completes, and its outcome arrives
      via {!drain} / {!finish};
    - queue has room: [`Queued] (outcome arrives via {!drain});
    - otherwise: [`Done] with [Error (Rejected "admission queue full")].

    Queries go through the plan cache; per-statement [guard] only ever
    tightens the session allowance (limits merge element-wise min).
    When [guard] carries a cancel token it governs the statement in
    place of the session token — the REPL scopes its SIGINT token this
    way; a closed session is still rejected up front either way.
    Non-query statements (DML, [WITH], [ANALYZE]) run as scheduler
    critical sections ({!Nra.Guard.with_no_yield}): single-writer
    atomicity for read-validate-commit. *)

val drain : t -> outcome list
(** The outcomes accumulated since the last drain — completed
    statements, queue timeouts ([Error (Queue_timeout _)] stamped at
    the missed deadline), and cancellations from session close — in
    completion order. *)

val finish : t -> outcome list
(** Run the scheduler until nothing is in flight or queued (every
    waiter is promoted and run, or times out), then drain. *)

(** {1 The serial path} *)

val exec :
  t ->
  ?guard:Nra.Guard.budget ->
  Session.t ->
  string ->
  (Nra.exec_result, Nra.Exec_error.t) result
(** {!submit} with the result awaited: every in-flight statement is
    retired first (the serial client issues its next statement after
    the previous completed), then the scheduler runs this statement to
    completion and its outcome — and only its — is claimed; concurrent
    completions stay for {!drain}. *)

(** {1 Reports} *)

val admission_stats : t -> Admission.stats

val report : t -> Session.t -> string
(** The [\session] REPL report: the session ({!Session.pp}), the
    admission counters, the plan-cache counters and the scheduler
    counters. *)
