(** The serving layer: sessions + admission + plan cache over one
    catalog.

    The engine is single-threaded, so the server models a concurrent
    population of clients in {e virtual time} (see {!Admission}): every
    submission carries an arrival time on a monotone millisecond clock,
    an admitted statement executes host-synchronously but {e occupies
    its slot} for its simulated-I/O duration, and queued statements run
    when a slot frees — or time out, or are flushed by session close.
    For a given workload the admission decisions, latencies and
    rejections are deterministic.

    The serial path ({!exec}) is what the CLI REPL uses: one client,
    statements submitted back-to-back at the clock, so admission always
    grants a slot and the value added is the session budget, the
    cancellation token, and the plan cache.  The concurrent path
    ({!submit} with explicit [~at] / {!drain} / {!finish}) is what the
    bench workload driver uses. *)

type config = {
  admission : Admission.config;
  cache_capacity : int;
  session_wall_ms : float option;  (** default per-session totals … *)
  session_sim_io_ms : float option;
  session_rows : int option;  (** … applied by {!session} *)
  strategy : Nra.strategy;
}

val default_config : config
(** {!Admission.default_config}, cache of 128, unlimited sessions,
    [Auto]. *)

type t

val create : ?config:config -> Nra.Catalog.t -> t
(** Also registers the plan cache's [explain --costs] note hook
    ({!Nra.set_explain_note}) — idempotent. *)

val catalog : t -> Nra.Catalog.t
val config : t -> config
val cache : t -> Plan_cache.t
val now : t -> float
(** The virtual clock, in ms: the latest arrival or completion seen. *)

val session :
  t ->
  ?label:string ->
  ?wall_ms:float ->
  ?sim_io_ms:float ->
  ?rows:int ->
  unit ->
  Session.t
(** A new session; budget totals default to the server config's
    session defaults. *)

val close_session : t -> Session.t -> unit
(** Cancel the session's token, flush its queued statements (each
    completes as [Error Cancelled], visible in {!drain}) and reject its
    future submissions. *)

(** {1 Statement outcomes} *)

type outcome = {
  session_id : int;
  sql : string;
  submitted_at : float;
  started_at : float option;  (** [None]: never got a slot *)
  finished_at : float;
  result : (Nra.exec_result, Nra.Exec_error.t) result;
}

val latency_ms : outcome -> float
(** [finished_at -. submitted_at] — queue wait plus execution. *)

(** {1 The concurrent path} *)

val submit :
  t ->
  ?at:float ->
  ?guard:Nra.Guard.budget ->
  Session.t ->
  string ->
  [ `Done of outcome | `Queued ]
(** One statement arriving at [at] (default: the current clock; the
    clock never goes backwards, a stale [at] is clamped forward).
    Retires every in-flight statement that completes by [at] first —
    which promotes and {e runs} queued waiters, and expires queue
    timeouts, accumulating their outcomes for {!drain}.  Then:

    - closed session: [`Done] with [Error (Rejected _)];
    - slot free: runs now under
      [Guard.min_budget (Session.remaining session) guard], charges the
      session ({!Session.charge}), and occupies the slot for the
      statement's simulated-I/O duration — [`Done outcome];
    - queue has room: [`Queued] (outcome arrives via {!drain});
    - otherwise: [`Done] with [Error (Rejected "admission queue full")].

    Queries go through the plan cache; per-statement [guard] only ever
    tightens the session allowance (limits merge element-wise min).
    When [guard] carries a cancel token it governs the statement in
    place of the session token — the REPL scopes its SIGINT token this
    way; a closed session is still rejected up front either way. *)

val drain : t -> outcome list
(** The outcomes accumulated since the last drain — queued statements
    that ran on promotion, queue timeouts ([Error (Queue_timeout _)]
    stamped at the missed deadline), and cancellations from session
    close — in completion order. *)

val finish : t -> outcome list
(** Advance the clock until nothing is in flight or queued (every
    waiter is promoted and run, or times out), then drain. *)

(** {1 The serial path} *)

val exec :
  t ->
  ?guard:Nra.Guard.budget ->
  Session.t ->
  string ->
  (Nra.exec_result, Nra.Exec_error.t) result
(** {!submit} with the result awaited: every in-flight statement is
    retired first (the serial client issues its next statement after
    the previous completed), so the caller always gets a slot and a
    direct result. *)

(** {1 Reports} *)

val admission_stats : t -> Admission.stats

val report : t -> Session.t -> string
(** The [\session] REPL report: the session ({!Session.pp}), the
    admission counters and the plan-cache counters. *)
