(** The admission controller: a concurrent-query cap with a bounded
    FIFO wait queue and queue timeouts.

    The engine is single-threaded (like [Iosim] and the guard), so
    concurrency is modeled in {e virtual time}: every operation takes
    [~now], a monotone millisecond clock the server derives from the
    simulated I/O durations of the statements it runs.  This keeps
    admission decisions — who waited, who timed out, who was turned
    away — fully deterministic for a given workload, which is what the
    tests and the bench driver assert against.

    Policy, in order, for a statement arriving at [now]:
    - a free slot ([running < max_concurrent]): admitted;
    - queue shorter than [queue_len]: queued FIFO;
    - otherwise: rejected ([`Rejected_full] — the caller surfaces it as
      [Nra.Exec_error.Rejected]).

    A queued statement whose slot does not free within
    [queue_timeout_ms] times out ([Exec_error.Queue_timeout]).  Closing
    a session {!cancel}s its queued entries. *)

type config = {
  max_concurrent : int;  (** execution slots; clamped to [>= 1] *)
  queue_len : int;  (** wait-queue bound; clamped to [>= 0] *)
  queue_timeout_ms : float option;
      (** give up waiting after this long; [None] waits forever *)
}

val default_config : config
(** 4 slots, queue of 16, 1000 ms queue timeout. *)

type 'a t
(** ['a] is the waiter payload (the server's pending statement). *)

val create : config -> 'a t
val config : 'a t -> config

val running : 'a t -> int
val queue_length : 'a t -> int

val submit : 'a t -> now:float -> 'a -> [ `Admitted | `Queued | `Rejected_full ]
(** [`Admitted] takes a slot (released later via {!release}). *)

type 'a waiter = {
  payload : 'a;
  enqueued_at : float;
  at : float;  (** when the outcome happened: promotion or deadline *)
}

val expire : 'a t -> now:float -> 'a waiter list
(** Pop every queued entry whose deadline passed, oldest first; [at] is
    the deadline it missed, so [at -. enqueued_at] is the configured
    timeout, not the (later) moment the server noticed. *)

val release : 'a t -> now:float -> 'a waiter list * 'a waiter option
(** Free one slot at [now].  Returns the waiters that timed out while
    the slot was busy (their deadlines precede [now]) and the head
    waiter promoted into the freed slot, if any — promotion keeps the
    slot taken, so the caller must {!release} again when the promoted
    statement finishes. *)

val cancel : 'a t -> ('a -> bool) -> 'a list
(** Remove (and return, FIFO order) the queued entries matching the
    predicate — session close flushing its queued work. *)

type stats = {
  admitted : int;  (** granted a slot, directly or by promotion *)
  queued : int;  (** entered the wait queue *)
  rejected_full : int;
  timed_out : int;
  cancelled : int;
  peak_running : int;
  peak_queue : int;
}

val stats : 'a t -> stats
val pp_stats : Format.formatter -> stats -> unit
