type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  evictions : int;
  entries : int;
}

let zero_stats =
  { hits = 0; misses = 0; invalidations = 0; evictions = 0; entries = 0 }

type entry = {
  prep : Nra.prepared;
  cat_gen : int;
  stats_epoch : int;
  mutable used : int;  (* lookup tick of last use, for LRU *)
}

type t = {
  capacity : int;
  cat : Nra.Catalog.t;
  tbl : (string * string * string * string, entry) Hashtbl.t;
      (* (normalized SQL, subquery-link shape, strategy, rewrite
         signature) — the rewrite mask+epoch in the key means toggling
         rules via CLI/env can never serve a plan prepared under a
         different configuration, and the shape fingerprint
         ([Nra.query_shape]) means an aggregate-linking (type-JA)
         statement can never share a slot with a lookalike
         non-aggregate one whatever [normalize] collapses *)
  mutable tick : int;
  mutable st : stats;
}

(* Aggregate across all caches, for the [explain --costs] note. *)
let global : stats ref = ref zero_stats

let bump ?(hits = 0) ?(misses = 0) ?(invalidations = 0) ?(evictions = 0) t =
  let add s =
    {
      s with
      hits = s.hits + hits;
      misses = s.misses + misses;
      invalidations = s.invalidations + invalidations;
      evictions = s.evictions + evictions;
    }
  in
  t.st <- add t.st;
  global := add !global

let create ?(capacity = 128) cat =
  { capacity = Int.max 1 capacity; cat; tbl = Hashtbl.create 64; tick = 0;
    st = zero_stats }

let normalize sql =
  let b = Buffer.create (String.length sql) in
  let n = String.length sql in
  let rec go i ~in_lit ~pending_ws =
    if i >= n then ()
    else
      let c = sql.[i] in
      if in_lit then begin
        Buffer.add_char b c;
        (* '' is an escaped quote inside the literal *)
        if c = '\'' && not (i + 1 < n && sql.[i + 1] = '\'') then
          go (i + 1) ~in_lit:false ~pending_ws:false
        else if c = '\'' then begin
          Buffer.add_char b '\'';
          go (i + 2) ~in_lit:true ~pending_ws:false
        end
        else go (i + 1) ~in_lit:true ~pending_ws:false
      end
      else
        match c with
        | ' ' | '\t' | '\n' | '\r' -> go (i + 1) ~in_lit ~pending_ws:true
        | _ ->
            if pending_ws && Buffer.length b > 0 then Buffer.add_char b ' ';
            Buffer.add_char b (Char.lowercase_ascii c);
            go (i + 1) ~in_lit:(c = '\'') ~pending_ws:false
  in
  go 0 ~in_lit:false ~pending_ws:false;
  let s = Buffer.contents b in
  (* trailing statement terminator is noise *)
  let s =
    let l = String.length s in
    if l > 0 && s.[l - 1] = ';' then String.sub s 0 (l - 1) else s
  in
  String.trim s

let stamps t =
  ( Nra.Catalog.global_generation t.cat,
    Nra_stats.Stats_store.epoch_for t.cat )

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, oldest) when oldest.used <= e.used -> acc
        | _ -> Some (k, e))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      bump t ~evictions:1
  | None -> ()

let find_or_prepare t ~strategy sql =
  t.tick <- t.tick + 1;
  let key =
    ( normalize sql,
      Nra.query_shape sql,
      Nra.strategy_to_string strategy,
      Nra.rewrite_signature () )
  in
  let cat_gen, stats_epoch = stamps t in
  let stale =
    match Hashtbl.find_opt t.tbl key with
    | Some e when e.cat_gen = cat_gen && e.stats_epoch = stats_epoch ->
        e.used <- t.tick;
        bump t ~hits:1;
        Some (Ok e.prep)
    | Some _ ->
        Hashtbl.remove t.tbl key;
        bump t ~invalidations:1;
        None
    | None -> None
  in
  match stale with
  | Some hit -> hit
  | None -> (
      bump t ~misses:1;
      match Nra.prepare ~strategy t.cat sql with
      | Error _ as e -> e
      | Ok prep ->
          if Nra.prepared_is_query prep then begin
            if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
            Hashtbl.replace t.tbl key
              { prep; cat_gen; stats_epoch; used = t.tick }
          end;
          Ok prep)

let stats t = { t.st with entries = Hashtbl.length t.tbl }

let pp_stats ppf s =
  let looked = s.hits + s.misses in
  let rate = if looked = 0 then 0.0 else float_of_int s.hits /. float_of_int looked in
  Format.fprintf ppf
    "plan cache: %d hit%s / %d miss%s (%.0f%%), %d invalidated, %d evicted, \
     %d cached"
    s.hits
    (if s.hits = 1 then "" else "s")
    s.misses
    (if s.misses = 1 then "" else "es")
    (rate *. 100.0) s.invalidations s.evictions s.entries

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then 0.0 else float_of_int s.hits /. float_of_int looked

let clear t = Hashtbl.reset t.tbl

let note () =
  let s = !global in
  let looked = s.hits + s.misses in
  if looked = 0 then None
  else
    Some
      (Printf.sprintf
         "plan cache: %d/%d hits (%.0f%%), %d invalidated, %d evicted" s.hits
         looked
         (float_of_int s.hits /. float_of_int looked *. 100.0)
         s.invalidations s.evictions)
