module Guard = Nra_guard.Guard

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Sleep : float -> unit Effect.t

type task_status =
  | Ready of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

type task = {
  id : int;
  label : string;
  prio : unit -> int;
  mutable status : task_status;
  mutable wake_at : float option;  (* sleeping until this virtual ms *)
  mutable gctx : Guard.ctx;  (* detached guard context while suspended *)
  mutable slice_start_io : float;  (* io_now_ms when last scheduled in *)
  mutable last_run : int;  (* scheduling seqno, for round-robin *)
}

type stats = {
  spawned : int;
  finished : int;
  slices : int;
  yields : int;
  sleeps : int;
  woken : int;
  idle_jumped_ms : float;
  max_live : int;
}

let zero_stats =
  {
    spawned = 0;
    finished = 0;
    slices = 0;
    yields = 0;
    sleeps = 0;
    woken = 0;
    idle_jumped_ms = 0.0;
    max_live = 0;
  }

type t = {
  q_ms : float;
  chooser : (now:float -> int list -> int) option;
  mutable vclock : float;  (* ms; sampled at the last sync *)
  mutable io_mark : float;  (* io_now_ms at that sync *)
  mutable tasks : task list;  (* live tasks, oldest first *)
  mutable seq : int;
  mutable next_id : int;
  mutable st : stats;
}

let default_quantum_ms = 0.5

let io_now_ms () = Nra_storage.Iosim.simulated_seconds () *. 1000.0

(* The clock between syncs: whatever the disk ledger accrued since the
   last sync belongs to virtual time.  The clamp matters: an Auto
   fallback uncharges its failed attempt's I/O from the global ledger
   (possibly across yields, since Auto statements interleave), which
   can pull the ledger below the mark — the clock freezes over such a
   stretch rather than rewinding, staying monotone. *)
let now t = t.vclock +. Float.max 0.0 (io_now_ms () -. t.io_mark)

let sync t =
  t.vclock <- now t;
  t.io_mark <- io_now_ms ()

let quantum_ms t = t.q_ms
let stats t = t.st
let alive t =
  List.length (List.filter (fun tk -> tk.status <> Finished) t.tasks)

(* ---------- the global dispatch point ----------

   One task runs at a time, engine-wide; the guard yield hook and the
   fault backoff sleeper are process globals, so they dispatch on
   whichever scheduler/task is currently in a slice. *)

let current : (t * task) option ref = ref None

let hook () =
  match !current with
  | None -> ()
  | Some (t, tk) ->
      if io_now_ms () -. tk.slice_start_io >= t.q_ms then
        Effect.perform Yield

let sleeper ms =
  match !current with
  | None -> ()  (* outside any task: the default virtual no-op *)
  | Some _ ->
      (* inside a critical section the task may not suspend (an Auto
         attempt's I/O rollback window): wait out the backoff as the
         no-op default does, still recorded by the fault layer *)
      if not (Guard.yields_suppressed ()) then
        Effect.perform (Sleep (Float.max 0.0 ms))

(* Voluntary virtual sleep, for spin-waits (the server's lock-acquire
   loop): inside a scheduled task it suspends on the virtual clock so
   other tasks run and the clock advances; outside any task (or in a
   no-yield critical section) it is a no-op and the caller's loop
   resolves immediately in the single-statement world. *)
let sleep_for = sleeper

let hooks_installed = ref false

let install_hooks () =
  if not !hooks_installed then begin
    hooks_installed := true;
    Guard.set_yield_hook (Some hook);
    Nra_storage.Fault.set_sleeper sleeper
  end

let create ?(quantum_ms = default_quantum_ms) ?chooser () =
  install_hooks ();
  {
    q_ms = Float.max 0.0 quantum_ms;
    chooser;
    vclock = 0.0;
    io_mark = io_now_ms ();
    tasks = [];
    seq = 0;
    next_id = 0;
    st = zero_stats;
  }

let spawn t ?(prio = fun () -> 1) ?label body =
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let tk =
    {
      id;
      label = (match label with Some l -> l | None -> Printf.sprintf "task-%d" id);
      prio;
      status = Ready body;
      wake_at = None;
      gctx = Guard.empty_ctx;
      slice_start_io = 0.0;
      last_run = 0;
    }
  in
  t.tasks <- t.tasks @ [ tk ];
  let live = alive t in
  t.st <-
    {
      t.st with
      spawned = t.st.spawned + 1;
      max_live = Int.max t.st.max_live live;
    };
  id

(* ---------- one slice ---------- *)

let handler t tk : (unit, unit) Effect.Deep.handler =
  {
    Effect.Deep.retc =
      (fun () ->
        tk.status <- Finished;
        tk.gctx <- Guard.empty_ctx;
        t.st <- { t.st with finished = t.st.finished + 1 });
    exnc =
      (fun e ->
        (* task bodies trap their own errors into outcomes; anything
           escaping is a scheduler bug — mark the task dead so the run
           loop cannot spin on it, then let the caller see the raise *)
        tk.status <- Finished;
        t.st <- { t.st with finished = t.st.finished + 1 };
        raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                tk.status <- Suspended k;
                tk.gctx <- Guard.save_ctx ();
                t.st <- { t.st with yields = t.st.yields + 1 })
        | Sleep ms ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                tk.status <- Suspended k;
                tk.wake_at <- Some (now t +. ms);
                tk.gctx <- Guard.save_ctx ();
                t.st <- { t.st with sleeps = t.st.sleeps + 1 })
        | _ -> None);
  }

(* Run [tk] until it yields, sleeps, or finishes.  The slice happens
   inside the task's own guard context; the host's ambient context (if
   the caller sits under a budget of its own) is detached around it. *)
let step t tk =
  t.seq <- t.seq + 1;
  tk.last_run <- t.seq;
  t.st <- { t.st with slices = t.st.slices + 1 };
  (match tk.wake_at with
  | Some _ ->
      tk.wake_at <- None;
      t.st <- { t.st with woken = t.st.woken + 1 }
  | None -> ());
  let host_ctx = Guard.save_ctx () in
  let saved = !current in
  current := Some (t, tk);
  Guard.restore_ctx tk.gctx;
  tk.gctx <- Guard.empty_ctx;
  tk.slice_start_io <- io_now_ms ();
  Fun.protect
    ~finally:(fun () ->
      current := saved;
      Guard.restore_ctx host_ctx;
      sync t)
    (fun () ->
      match tk.status with
      | Ready body -> Effect.Deep.match_with body () (handler t tk)
      | Suspended k ->
          tk.status <- Finished;
          (* resumes under the original handler *)
          Effect.Deep.continue k ()
      | Finished -> ())

(* ---------- the run loop ---------- *)

let runnable t tk =
  match tk.status with
  | Finished -> false
  | Ready _ | Suspended _ -> (
      match tk.wake_at with None -> true | Some w -> w <= now t)

let prune t =
  if List.exists (fun tk -> tk.status = Finished) t.tasks then
    t.tasks <- List.filter (fun tk -> tk.status <> Finished) t.tasks

let pick t =
  prune t;
  let candidates = List.filter (runnable t) t.tasks in
  match candidates with
  | [] -> None
  | _ -> (
      match t.chooser with
      | Some choose ->
          let id =
            choose ~now:(now t)
              (List.sort compare (List.map (fun tk -> tk.id) candidates))
          in
          Some
            (match List.find_opt (fun tk -> tk.id = id) candidates with
            | Some tk -> tk
            | None -> List.hd candidates)
      | None ->
          (* deterministic: the smallest (priority class, last-run
             seqno, id) wins — round-robin within a class, urgent
             class first *)
          let key tk = (tk.prio (), tk.last_run, tk.id) in
          Some
            (List.fold_left
               (fun best tk -> if key tk < key best then tk else best)
               (List.hd candidates) (List.tl candidates)))

let earliest_wake t =
  List.fold_left
    (fun acc tk ->
      match (tk.status, tk.wake_at) with
      | Finished, _ | _, None -> acc
      | _, Some w -> (
          match acc with Some a -> Some (Float.min a w) | None -> Some w))
    None t.tasks

let jump_to t target =
  let n = now t in
  if target > n then begin
    t.st <- { t.st with idle_jumped_ms = t.st.idle_jumped_ms +. (target -. n) };
    t.vclock <- target;
    t.io_mark <- io_now_ms ()
  end

let advance_to t target =
  let rec drive () =
    if now t >= target then ()
    else
      match pick t with
      | Some tk ->
          step t tk;
          drive ()
      | None -> (
          match earliest_wake t with
          | Some w when w <= target ->
              jump_to t w;
              drive ()
          | Some _ | None -> jump_to t target)
  in
  drive ()

let run_until_idle t =
  let rec drive () =
    match pick t with
    | Some tk ->
        step t tk;
        drive ()
    | None -> (
        match earliest_wake t with
        | Some w ->
            jump_to t w;
            drive ()
        | None -> prune t)
  in
  drive ()

let pp_stats ppf s =
  Format.fprintf ppf
    "scheduler: %d task(s) (%d done, peak %d live), %d slice(s), %d \
     yield(s), %d sleep(s)/%d wake(s), %.2f ms idle-jumped"
    s.spawned s.finished s.max_live s.slices s.yields s.sleeps s.woken
    s.idle_jumped_ms
