(** Query guard: resource budgets, cooperative cancellation, and the
    kill events the engine's graceful-degradation story is built on.

    The ROADMAP's north star is a server: no single query may run
    unbounded.  A {!budget} caps three resources —

    - {b wall-clock} milliseconds of real elapsed time;
    - {b simulated I/O} milliseconds as accrued by {!Nra_storage.Iosim}
      (the deterministic resource: the same query over the same data
      always accrues the same charges, so budget kills in tests are
      reproducible);
    - {b intermediate rows} materialized by the evaluators (the nested
      relational approach's wide intermediates, nested-iteration's
      candidate streams);

    — plus a cooperative {!token} a client (or a SIGINT handler) can
    cancel from outside.

    Enforcement is cooperative: every evaluator's row-producing loop
    calls {!tick} (and {!add_rows} where intermediates materialize).
    When a limit is crossed, {!tick} raises {!Killed}, which unwinds to
    the facade — no state is mutated mid-DML because all DML validates
    fully before committing (see docs/ROBUSTNESS.md).

    On top of plain kills, [Auto] in {!Nra} runs its chosen plan under a
    budget derived from the plan's own cost estimate; a kill there is
    evidence of a cost-model misestimate and triggers fallback to the
    always-applicable [Nra_optimized] strategy, counted in {!events}.

    Global and single-threaded, like {!Nra_storage.Iosim}. *)

type resource = Wall_clock | Sim_io | Rows

val resource_to_string : resource -> string

type kill = Budget_exceeded of resource | Cancelled

exception Killed of kill
(** Raised by {!tick} / {!add_rows}; unwinds the evaluator. *)

val kill_to_string : kill -> string

(** {1 Cancellation tokens} *)

type token

val token : unit -> token
val cancel : token -> unit
(** Safe to call from a signal handler: sets one mutable flag. *)

val cancelled : token -> bool

(** {1 Budgets} *)

type budget = {
  wall_ms : float option;
  sim_io_ms : float option;
  max_rows : int option;
  cancel_on : token option;
}

val unlimited : budget

val budget :
  ?wall_ms:float ->
  ?sim_io_ms:float ->
  ?max_rows:int ->
  ?cancel_on:token ->
  unit ->
  budget

val min_budget : budget -> budget -> budget
(** Element-wise tighter of the two; either cancel token cancels (the
    first present one wins — callers combine an ambient budget with a
    derived one, which shares the ambient token). *)

val is_unlimited : budget -> bool

val with_budget : budget -> (unit -> 'a) -> 'a
(** Install the budget (fresh wall-clock and I/O baselines), run the
    thunk, restore the previously active budget — even on exceptions.
    Nested installs are independent except that intermediate rows
    produced inside also count against the enclosing budget. *)

val active : unit -> budget option
(** The installed budget, if any. *)

type spend = { wall_ms : float; sim_io_ms : float; rows : int }
(** What one {!with_budget} scope actually consumed. *)

val last_spend : unit -> spend
(** The spend of the most recently exited {!with_budget} scope —
    including one that exited by a {!Killed} unwind.  Nested scopes
    overwrite it as they exit, outermost last, so a caller that installed
    a budget reads its own statement's consumption immediately after
    [with_budget] returns.  The session layer ([nra.server]) uses this to
    spend a statement's cost down against its session's aggregate
    budget.  Zero before any budget has been installed. *)

val remaining : unit -> budget
(** What is left of the active budget right now ([unlimited] when none
    is installed); limits are clamped at 0.  Carries the active cancel
    token, so a sub-budget derived from it stays cancellable. *)

val tick : unit -> unit
(** The evaluator checkpoint: checks cancellation and the
    simulated-I/O limit every call and the wall clock every 32nd call
    (cheap when no budget is installed), then gives the registered
    yield hook (if any) the chance to suspend the running scheduler
    task.
    @raise Killed when a limit is crossed. *)

val add_rows : int -> unit
(** Count intermediate-result rows against the active (and any
    enclosing) budget, then offer the yield hook a switch point, like
    {!tick}.
    @raise Killed when the row limit is crossed. *)

val absorb : ticks:int -> rows:int -> unit
(** Merge a parallel region's worker ledgers in one call: credit
    [ticks] deferred checkpoints and [rows] intermediate rows to the
    active scope, then {!recheck} every limit.  This is the guard half
    of the ledger-merge contract (see [nra.pool] and docs/PERF.md):
    worker domains never touch the scope stack, so budget enforcement
    inside a region is coarse — entry and barrier — while cancellation
    stays per-morsel.  Never yields (the caller is still inside its
    [with_no_yield] region).
    @raise Killed when a limit is crossed. *)

(** {1 Scheduler integration}

    The cooperative scheduler ([nra.server]) runs each statement as a
    resumable task.  Checkpoints are its switch points: {!tick} and
    {!add_rows} call the registered {e yield hook} after their budget
    checks, and the hook — which lives in the scheduler, where the
    effect handler is — decides whether the task's quantum has expired
    and suspends it.  Because a task is descheduled mid-statement, its
    budget scopes cannot measure consumption against fixed start marks:
    {!save_ctx} folds the running slice into each scope's accumulator
    and detaches the scope stack, {!restore_ctx} reattaches it and
    rebases, so a statement is only ever charged for wall-clock and
    simulated-I/O that passed while it was actually scheduled. *)

val set_yield_hook : (unit -> unit) option -> unit
(** Register (or clear) the checkpoint yield hook.  Global, like the
    rest of the guard; the scheduler saves and restores the previous
    hook around its run loop. *)

val with_no_yield : (unit -> 'a) -> 'a
(** Run the thunk with the yield hook suppressed (nestable): a
    scheduler critical section.  Used where interleaving would break a
    serial invariant — DML's read-validate-commit (single-writer
    atomicity) and the Domain pool's fork-join regions.  Auto's
    killable attempt no longer needs it: its rollback is a per-task
    {!Nra_storage.Iosim} ledger that tolerates interleaved charges. *)

val yields_suppressed : unit -> bool
(** True inside {!with_no_yield}.  The scheduler's backoff sleeper
    consults this: a fault retry inside a critical section must wait
    virtually without suspending the task. *)

type ctx
(** A task's detached guard context: its whole stack of budget scopes
    with accruals folded, plus its open per-task {!Nra_storage.Iosim}
    ledgers (Auto's attempt ledger travels with the task so it only
    tallies charges from the task's own run slices). *)

val empty_ctx : ctx
(** The context of a task that has not started yet (no scopes). *)

val save_ctx : unit -> ctx
(** Fold the running slice into every active scope, detach and return
    the scope stack, leaving no budget installed.  Called by the
    scheduler when a task suspends (and around its own run loop, to
    shield the host's ambient budget from the tasks'). *)

val restore_ctx : ctx -> unit
(** Reattach a detached context and rebase its slices to "now" on both
    clocks.  Called when a task is scheduled in. *)

val recheck : unit -> unit
(** An immediate, unconditional check of {e every} limit of the active
    budget (including the wall clock, which {!tick} only samples).  The
    facade calls this after an Auto attempt is killed and rolled back,
    to distinguish "the attempt's derived budget blew" (degrade and
    rerun) from "the client's own budget is exhausted" (re-raise — no
    rerun could succeed).
    @raise Killed when a limit is crossed. *)

(** {1 Degradation events} *)

type events = {
  budget_kills : int;  (** queries killed over budget *)
  cancellations : int;  (** queries killed by a cancelled token *)
  auto_fallbacks : int;
      (** Auto attempts killed and rerun on [Nra_optimized] *)
}

val events : unit -> events
val reset_events : unit -> unit

val note_fallback : unit -> unit
(** Called by the facade when Auto degrades; public so alternative
    front ends can record their own fallbacks. *)

val note_kill : kill -> unit
(** Called by the facade when a {!Killed} surfaces as a user-facing
    error (not on every raise: Auto's killed attempts that degrade
    successfully count only as fallbacks). *)
