type resource = Wall_clock | Sim_io | Rows

let resource_to_string = function
  | Wall_clock -> "wall-clock"
  | Sim_io -> "simulated-io"
  | Rows -> "intermediate-rows"

type kill = Budget_exceeded of resource | Cancelled

exception Killed of kill

let kill_to_string = function
  | Budget_exceeded r ->
      Printf.sprintf "budget exceeded (%s)" (resource_to_string r)
  | Cancelled -> "cancelled"

(* ---------- cancellation ---------- *)

type token = bool ref

let token () = ref false
let cancel t = t := true
let cancelled t = !t

(* ---------- budgets ---------- *)

type budget = {
  wall_ms : float option;
  sim_io_ms : float option;
  max_rows : int option;
  cancel_on : token option;
}

let unlimited =
  { wall_ms = None; sim_io_ms = None; max_rows = None; cancel_on = None }

let budget ?wall_ms ?sim_io_ms ?max_rows ?cancel_on () =
  { wall_ms; sim_io_ms; max_rows; cancel_on }

let min_opt merge a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (merge a b)

let min_budget a b =
  {
    wall_ms = min_opt Float.min a.wall_ms b.wall_ms;
    sim_io_ms = min_opt Float.min a.sim_io_ms b.sim_io_ms;
    max_rows = min_opt Int.min a.max_rows b.max_rows;
    cancel_on = (match a.cancel_on with Some _ as t -> t | None -> b.cancel_on);
  }

let is_unlimited b =
  b.wall_ms = None && b.sim_io_ms = None && b.max_rows = None
  && b.cancel_on = None

(* ---------- the active guard ----------

   A statement may run as a cooperative-scheduler task that is suspended
   and resumed many times, so a scope cannot measure its consumption as
   "now minus a fixed start": while the task is descheduled, other tasks
   advance both the wall clock and the shared simulated-I/O clock, and
   neither belongs to this statement.  Each scope therefore accrues
   consumption incrementally — [acc] holds what was spent in completed
   run slices, [base] marks where the current slice began — and
   {!save_ctx}/{!restore_ctx} fold/rebase at every context switch, so a
   scope is only ever charged for time that passed while its own task
   was running.

   The active scopes form an explicit stack (innermost first): the whole
   stack IS the task's guard context, detached wholesale on suspend. *)

type state = {
  b : budget;
  mutable wall_acc_ms : float;  (* spent in finished run slices *)
  mutable io_acc_ms : float;
  mutable wall_base : float;  (* where the current slice began *)
  mutable io_base_ms : float;
  mutable rows : int;
  mutable ticks : int;
}

let stack : state list ref = ref []

let io_now_ms () = Nra_storage.Iosim.simulated_seconds () *. 1000.0

let install b =
  {
    b;
    wall_acc_ms = 0.0;
    io_acc_ms = 0.0;
    wall_base = Unix.gettimeofday ();
    io_base_ms = io_now_ms ();
    rows = 0;
    ticks = 0;
  }

let wall_spent s =
  s.wall_acc_ms +. ((Unix.gettimeofday () -. s.wall_base) *. 1000.0)

let io_spent s = s.io_acc_ms +. (io_now_ms () -. s.io_base_ms)

let active () = match !stack with [] -> None | s :: _ -> Some s.b

(* ---------- scheduler integration ---------- *)

(* The cooperative scheduler (nra.server) registers a hook here; every
   checkpoint calls it after the budget checks, and the hook decides
   whether the running task's quantum has expired and performs its
   yield effect.  The guard itself knows nothing about effects — this
   indirection is what lets the seven evaluators interleave without any
   of them changing. *)
let yield_hook : (unit -> unit) option ref = ref None
let set_yield_hook h = yield_hook := h

(* Critical sections: Auto's killable attempt rolls the I/O ledger back
   on a kill, which must not erase charges a concurrently scheduled
   statement accrued in between; DML's read-validate-commit must not
   interleave with another writer.  Both run with yields suppressed. *)
let no_yield_depth = ref 0

let with_no_yield f =
  incr no_yield_depth;
  Fun.protect ~finally:(fun () -> decr no_yield_depth) f

let yields_suppressed () = !no_yield_depth > 0

let maybe_yield () =
  match !yield_hook with
  | Some h when !no_yield_depth = 0 -> h ()
  | _ -> ()

(* A task's detached context is its guard-scope stack plus its open
   per-task Iosim ledgers (Auto's attempt ledger must only see charges
   from its own task's run slices, so it detaches and reattaches with
   the scopes). *)
type ctx = { scopes : state list; io : Nra_storage.Iosim.task_io }

let empty_ctx : ctx =
  { scopes = []; io = Nra_storage.Iosim.empty_task }

let save_ctx () =
  let now = Unix.gettimeofday () and io = io_now_ms () in
  List.iter
    (fun s ->
      s.wall_acc_ms <- s.wall_acc_ms +. ((now -. s.wall_base) *. 1000.0);
      s.io_acc_ms <- s.io_acc_ms +. (io -. s.io_base_ms);
      s.wall_base <- now;
      s.io_base_ms <- io)
    !stack;
  let c = { scopes = !stack; io = Nra_storage.Iosim.save_task () } in
  stack := [];
  c

let restore_ctx c =
  let now = Unix.gettimeofday () and io = io_now_ms () in
  List.iter
    (fun s ->
      s.wall_base <- now;
      s.io_base_ms <- io)
    c.scopes;
  stack := c.scopes;
  Nra_storage.Iosim.restore_task c.io

(* ---------- events ---------- *)

type events = {
  budget_kills : int;
  cancellations : int;
  auto_fallbacks : int;
}

let ev = ref { budget_kills = 0; cancellations = 0; auto_fallbacks = 0 }
let events () = !ev
let reset_events () =
  ev := { budget_kills = 0; cancellations = 0; auto_fallbacks = 0 }

let note_fallback () =
  ev := { !ev with auto_fallbacks = !ev.auto_fallbacks + 1 }

let note_kill = function
  | Budget_exceeded _ -> ev := { !ev with budget_kills = !ev.budget_kills + 1 }
  | Cancelled -> ev := { !ev with cancellations = !ev.cancellations + 1 }

(* ---------- checkpoints ---------- *)

let check s =
  (match s.b.cancel_on with
  | Some t when !t -> raise (Killed Cancelled)
  | _ -> ());
  (match s.b.sim_io_ms with
  | Some limit when io_spent s > limit ->
      raise (Killed (Budget_exceeded Sim_io))
  | _ -> ());
  (* the wall clock moves slowly relative to row production; sample it
     every 32nd tick to keep the checkpoint cheap *)
  if s.ticks land 31 = 0 then
    match s.b.wall_ms with
    | Some limit when wall_spent s > limit ->
        raise (Killed (Budget_exceeded Wall_clock))
    | _ -> ()

let tick () =
  (match !stack with
  | [] -> ()
  | s :: _ ->
      s.ticks <- s.ticks + 1;
      check s);
  maybe_yield ()

let recheck () =
  match !stack with
  | [] -> ()
  | s :: _ -> (
      (match s.b.cancel_on with
      | Some t when !t -> raise (Killed Cancelled)
      | _ -> ());
      (match s.b.sim_io_ms with
      | Some limit when io_spent s > limit ->
          raise (Killed (Budget_exceeded Sim_io))
      | _ -> ());
      (match s.b.wall_ms with
      | Some limit when wall_spent s > limit ->
          raise (Killed (Budget_exceeded Wall_clock))
      | _ -> ());
      match s.b.max_rows with
      | Some limit when s.rows > limit ->
          raise (Killed (Budget_exceeded Rows))
      | _ -> ())

(* Parallel regions (nra.pool) accrue checkpoints into worker-local
   ledgers; the owner merges them here in one call at the join barrier.
   Folding into the top scope only mirrors tick/add_rows: enclosing
   scopes receive the rows when the scope exits (see with_budget). *)
let absorb ~ticks ~rows =
  (match !stack with
  | [] -> ()
  | s :: _ ->
      s.ticks <- s.ticks + ticks;
      s.rows <- s.rows + rows);
  recheck ()

let add_rows n =
  (match !stack with
  | [] -> ()
  | s :: _ -> (
      s.rows <- s.rows + n;
      match s.b.max_rows with
      | Some limit when s.rows > limit ->
          raise (Killed (Budget_exceeded Rows))
      | _ -> ()));
  maybe_yield ()

(* ---------- spend accounting ---------- *)

type spend = { wall_ms : float; sim_io_ms : float; rows : int }

let zero_spend = { wall_ms = 0.0; sim_io_ms = 0.0; rows = 0 }
let last = ref zero_spend
let last_spend () = !last

let with_budget b f =
  let saved = !stack in
  let s = install b in
  stack := s :: saved;
  Fun.protect
    ~finally:(fun () ->
      let wall = wall_spent s and io = io_spent s in
      stack := saved;
      last := { wall_ms = wall; sim_io_ms = io; rows = s.rows };
      (* rows materialized inside also count against the enclosing
         budget (without re-raising during unwind: the next enclosing
         add_rows/tick surfaces the overrun) *)
      match saved with
      | outer :: _ -> outer.rows <- outer.rows + s.rows
      | [] -> ())
    f

let remaining () =
  match !stack with
  | [] -> unlimited
  | s :: _ ->
      {
        wall_ms =
          Option.map (fun l -> Float.max 0.0 (l -. wall_spent s)) s.b.wall_ms;
        sim_io_ms =
          Option.map (fun l -> Float.max 0.0 (l -. io_spent s)) s.b.sim_io_ms;
        max_rows = Option.map (fun l -> Int.max 0 (l - s.rows)) s.b.max_rows;
        cancel_on = s.b.cancel_on;
      }
