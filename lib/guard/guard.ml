type resource = Wall_clock | Sim_io | Rows

let resource_to_string = function
  | Wall_clock -> "wall-clock"
  | Sim_io -> "simulated-io"
  | Rows -> "intermediate-rows"

type kill = Budget_exceeded of resource | Cancelled

exception Killed of kill

let kill_to_string = function
  | Budget_exceeded r ->
      Printf.sprintf "budget exceeded (%s)" (resource_to_string r)
  | Cancelled -> "cancelled"

(* ---------- cancellation ---------- *)

type token = bool ref

let token () = ref false
let cancel t = t := true
let cancelled t = !t

(* ---------- budgets ---------- *)

type budget = {
  wall_ms : float option;
  sim_io_ms : float option;
  max_rows : int option;
  cancel_on : token option;
}

let unlimited =
  { wall_ms = None; sim_io_ms = None; max_rows = None; cancel_on = None }

let budget ?wall_ms ?sim_io_ms ?max_rows ?cancel_on () =
  { wall_ms; sim_io_ms; max_rows; cancel_on }

let min_opt merge a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (merge a b)

let min_budget a b =
  {
    wall_ms = min_opt Float.min a.wall_ms b.wall_ms;
    sim_io_ms = min_opt Float.min a.sim_io_ms b.sim_io_ms;
    max_rows = min_opt Int.min a.max_rows b.max_rows;
    cancel_on = (match a.cancel_on with Some _ as t -> t | None -> b.cancel_on);
  }

let is_unlimited b =
  b.wall_ms = None && b.sim_io_ms = None && b.max_rows = None
  && b.cancel_on = None

(* ---------- the active guard ---------- *)

type state = {
  b : budget;
  wall_start : float;
  io_start_ms : float;
  mutable rows : int;
  mutable ticks : int;
}

let current : state option ref = ref None

let io_now_ms () = Nra_storage.Iosim.simulated_seconds () *. 1000.0

let install b =
  {
    b;
    wall_start = Unix.gettimeofday ();
    io_start_ms = io_now_ms ();
    rows = 0;
    ticks = 0;
  }

let active () = Option.map (fun s -> s.b) !current

(* ---------- events ---------- *)

type events = {
  budget_kills : int;
  cancellations : int;
  auto_fallbacks : int;
}

let ev = ref { budget_kills = 0; cancellations = 0; auto_fallbacks = 0 }
let events () = !ev
let reset_events () =
  ev := { budget_kills = 0; cancellations = 0; auto_fallbacks = 0 }

let note_fallback () =
  ev := { !ev with auto_fallbacks = !ev.auto_fallbacks + 1 }

let note_kill = function
  | Budget_exceeded _ -> ev := { !ev with budget_kills = !ev.budget_kills + 1 }
  | Cancelled -> ev := { !ev with cancellations = !ev.cancellations + 1 }

(* ---------- checkpoints ---------- *)

let check s =
  (match s.b.cancel_on with
  | Some t when !t -> raise (Killed Cancelled)
  | _ -> ());
  (match s.b.sim_io_ms with
  | Some limit when io_now_ms () -. s.io_start_ms > limit ->
      raise (Killed (Budget_exceeded Sim_io))
  | _ -> ());
  (* the wall clock moves slowly relative to row production; sample it
     every 32nd tick to keep the checkpoint cheap *)
  if s.ticks land 31 = 0 then
    match s.b.wall_ms with
    | Some limit
      when (Unix.gettimeofday () -. s.wall_start) *. 1000.0 > limit ->
        raise (Killed (Budget_exceeded Wall_clock))
    | _ -> ()

let tick () =
  match !current with
  | None -> ()
  | Some s ->
      s.ticks <- s.ticks + 1;
      check s

let recheck () =
  match !current with
  | None -> ()
  | Some s -> (
      (match s.b.cancel_on with
      | Some t when !t -> raise (Killed Cancelled)
      | _ -> ());
      (match s.b.sim_io_ms with
      | Some limit when io_now_ms () -. s.io_start_ms > limit ->
          raise (Killed (Budget_exceeded Sim_io))
      | _ -> ());
      (match s.b.wall_ms with
      | Some limit
        when (Unix.gettimeofday () -. s.wall_start) *. 1000.0 > limit ->
          raise (Killed (Budget_exceeded Wall_clock))
      | _ -> ());
      match s.b.max_rows with
      | Some limit when s.rows > limit ->
          raise (Killed (Budget_exceeded Rows))
      | _ -> ())

let add_rows n =
  match !current with
  | None -> ()
  | Some s -> (
      s.rows <- s.rows + n;
      match s.b.max_rows with
      | Some limit when s.rows > limit ->
          raise (Killed (Budget_exceeded Rows))
      | _ -> ())

(* ---------- spend accounting ---------- *)

type spend = { wall_ms : float; sim_io_ms : float; rows : int }

let zero_spend = { wall_ms = 0.0; sim_io_ms = 0.0; rows = 0 }
let last = ref zero_spend
let last_spend () = !last

let with_budget b f =
  let saved = !current in
  let s = install b in
  current := Some s;
  Fun.protect
    ~finally:(fun () ->
      current := saved;
      last :=
        {
          wall_ms = (Unix.gettimeofday () -. s.wall_start) *. 1000.0;
          sim_io_ms = io_now_ms () -. s.io_start_ms;
          rows = s.rows;
        };
      (* rows materialized inside also count against the enclosing
         budget (without re-raising during unwind: the next enclosing
         add_rows/tick surfaces the overrun) *)
      match saved with
      | Some outer -> outer.rows <- outer.rows + s.rows
      | None -> ())
    f

let remaining () =
  match !current with
  | None -> unlimited
  | Some s ->
      {
        wall_ms =
          Option.map
            (fun l ->
              Float.max 0.0
                (l -. ((Unix.gettimeofday () -. s.wall_start) *. 1000.0)))
            s.b.wall_ms;
        sim_io_ms =
          Option.map
            (fun l -> Float.max 0.0 (l -. (io_now_ms () -. s.io_start_ms)))
            s.b.sim_io_ms;
        max_rows = Option.map (fun l -> Int.max 0 (l - s.rows)) s.b.max_rows;
        cancel_on = s.b.cancel_on;
      }
