open Nra_relational
module T3 = Three_valued
module Pool = Nra_pool.Pool

type t = {
  key_schema : Schema.t;
  elem_schema : Schema.t;
  groups : (Row.t * Row.t array) array;
}

let schemas rel ~by ~keep =
  let s = Relation.schema rel in
  ( Schema.project s (Array.to_list by),
    Schema.project s (Array.to_list keep) )

let nest_sort ~by ~keep rel =
  let key_schema, elem_schema = schemas rel ~by ~keep in
  let sorted = Relation.sort_by by rel in
  let rows = Relation.rows sorted in
  let n = Array.length rows in
  let groups = ref [] in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let key = Row.project_arr rows.(start) by in
    let elems = ref [] in
    while !i < n && Row.equal_on by rows.(start) rows.(!i) do
      elems := Row.project_arr rows.(!i) keep :: !elems;
      incr i
    done;
    groups := (key, Array.of_list (List.rev !elems)) :: !groups
  done;
  { key_schema; elem_schema; groups = Array.of_list (List.rev !groups) }

(* Accumulate [(key, elems)] groups from a stream of projected rows,
   keyed by the whole key row (Row.Tbl replaces the old find_all +
   List.find_opt linear bucket scan); [order] keeps first-seen key
   order tagged with the first row's index, so partitioned runs can
   splice back into the exact serial order. *)
let nest_into tbl order idx key elem =
  match Row.Tbl.find_opt tbl key with
  | Some cell -> cell := elem :: !cell
  | None ->
      let cell = ref [ elem ] in
      Row.Tbl.add tbl key cell;
      order := (idx, key, cell) :: !order

let finish_groups order =
  List.rev_map
    (fun (idx, key, cell) -> (idx, (key, Array.of_list (List.rev !cell))))
    !order

let nest_hash_serial ~by ~keep rows =
  let tbl : Row.t list ref Row.Tbl.t = Row.Tbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun i row ->
      nest_into tbl order i (Row.project_arr row by) (Row.project_arr row keep))
    rows;
  Array.of_list (List.map snd (finish_groups order))

(* Columnar serial variant: group keys hash column-at-a-time into a
   precomputed vector ([Batch.hash_on] equals [Row.hash] of the
   projected key exactly), so the table is keyed by the unboxed hash
   with a [Row.equal] scan of the (almost always singleton) bucket —
   same groups, same first-seen order as [nest_hash_serial]. *)
let nest_hash_serial_vec ~by ~keep rows khash =
  let tbl : (int, (Row.t * Row.t list ref) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  Array.iteri
    (fun i row ->
      let key = Row.project_arr row by in
      let elem = Row.project_arr row keep in
      let h = khash.(i) land max_int in
      match Hashtbl.find_opt tbl h with
      | Some bucket -> (
          match List.find_opt (fun (k, _) -> Row.equal k key) !bucket with
          | Some (_, cell) -> cell := elem :: !cell
          | None ->
              let cell = ref [ elem ] in
              bucket := (key, cell) :: !bucket;
              order := (i, key, cell) :: !order)
      | None ->
          let cell = ref [ elem ] in
          Hashtbl.add tbl h (ref [ (key, cell) ]);
          order := (i, key, cell) :: !order)
    rows;
  Array.of_list (List.map snd (finish_groups order))

(* Parallel variant: project keys/elems over row morsels, partition row
   indices by key hash — every occurrence of a key lands in one
   partition, in row order — nest the partitions in parallel, then
   sort the union of groups by each group's first-seen row index.
   That index order is exactly the serial first-seen key order, so the
   result is bit-identical to [nest_hash_serial]. *)
let nest_hash_parallel ~by ~keep ~khash rows =
  let n = Array.length rows in
  let nparts = Pool.executors () in
  let keys = Array.make n [||] in
  let elems = Array.make n [||] in
  ignore
    (Pool.parallel_chunks ~n (fun _ledger ~lo ~hi ->
         for i = lo to hi - 1 do
           keys.(i) <- Row.project_arr rows.(i) by;
           elems.(i) <- Row.project_arr rows.(i) keep
         done));
  let key_hash i =
    match khash with Some v -> Array.unsafe_get v i | None -> Row.hash keys.(i)
  in
  let parts = Array.make nparts [] in
  for i = n - 1 downto 0 do
    let p = key_hash i land max_int mod nparts in
    parts.(p) <- i :: parts.(p)
  done;
  let part_idx = Array.map Array.of_list parts in
  let per_part =
    Pool.parallel_chunks ~min_chunk:1 ~n:nparts (fun _ledger ~lo ~hi ->
        let acc = ref [] in
        for k = lo to hi - 1 do
          let tbl : Row.t list ref Row.Tbl.t = Row.Tbl.create 64 in
          let order = ref [] in
          Array.iter
            (fun i -> nest_into tbl order i keys.(i) elems.(i))
            part_idx.(k);
          acc := List.rev_append (List.rev (finish_groups order)) !acc
        done;
        List.rev !acc)
  in
  let all = Array.of_list (List.concat (Array.to_list per_part)) in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) all;
  Array.map snd all

(* Spillable variant: when the input exceeds the buffer pool's frame
   budget, partition the projected (key, elem) stream by key hash into
   buckets sized to fit the budget.  Bucket 0 nests in memory as rows
   arrive (hybrid); the others spill through Bufpool.Spill — charged
   page writes, charged page re-reads when each partition nests on its
   own — with the row's original index prepended so the final
   first-index sort restores the exact serial first-seen key order.
   Bit-identical to [nest_hash_serial] by the same argument as
   [nest_hash_parallel]: every occurrence of a key lands in one
   partition, in row order. *)
let nest_hash_spill ~by ~keep ~frames ~khash rows =
  let module B = Nra_storage.Bufpool in
  let n = Array.length rows in
  let budget = max 1 (frames - 1) in
  let input_pages = Nra_storage.Iosim.pages n in
  let nparts = min 64 (max 2 ((input_pages + budget - 1) / budget)) in
  let karity = Array.length by and earity = Array.length keep in
  let tbl0 : Row.t list ref Row.Tbl.t = Row.Tbl.create 64 in
  let order0 = ref [] in
  let spills =
    Array.init (nparts - 1) (fun p -> B.Spill.create (Printf.sprintf "ns%d" p))
  in
  Fun.protect ~finally:(fun () -> Array.iter B.Spill.free spills) @@ fun () ->
  Array.iteri
    (fun i row ->
      let key = Row.project_arr row by in
      let elem = Row.project_arr row keep in
      let h =
        match khash with Some v -> Array.unsafe_get v i | None -> Row.hash key
      in
      let p = h land max_int mod nparts in
      if p = 0 then nest_into tbl0 order0 i key elem
      else
        B.Spill.add spills.(p - 1)
          (Array.concat [ [| Value.Int i |]; key; elem ]))
    rows;
  Array.iter B.Spill.finish spills;
  (* spilled partitions nest under the Domain pool, one chunk per
     partition: workers read spill data with [iter_raw] (no pool
     traffic) and hand the consumed partitions to their ledger; the
     owner replays page reads and frees them at the join barrier in
     partition order.  Group order is restored by the final
     first-index sort, so partition results can arrive in any order. *)
  let per_part =
    if nparts > 1 then
      Pool.parallel_chunks ~min_chunk:1
        ~n:(nparts - 1)
        (fun ledger ~lo ~hi ->
          let acc = ref [] in
          for k = lo to hi - 1 do
            Pool.Ledger.tick ledger;
            let sp = spills.(k) in
            let tbl : Row.t list ref Row.Tbl.t = Row.Tbl.create 64 in
            let order = ref [] in
            B.Spill.iter_raw sp (fun packed ->
                let i =
                  match packed.(0) with Value.Int i -> i | _ -> assert false
                in
                let key = Array.sub packed 1 karity in
                let elem = Array.sub packed (1 + karity) earity in
                nest_into tbl order i key elem);
            acc := List.rev_append (finish_groups order) !acc;
            Pool.Ledger.consumed_spill ledger sp
          done;
          !acc)
    else [||]
  in
  let all =
    Array.fold_left
      (fun acc part -> List.rev_append part acc)
      (List.rev (finish_groups order0))
      per_part
  in
  let arr = Array.of_list all in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
  Array.map snd arr

let nest_hash ~by ~keep rel =
  let key_schema, elem_schema = schemas rel ~by ~keep in
  let rows = Relation.rows rel in
  (* columnar group-key hashes, computed owner-side; identical values
     to the row path's [Row.hash], so partition layout, spill page
     counts and group order are unchanged *)
  let khash =
    (* cached batches only (see Join.key_vectors): nesting usually runs
       over a joined intermediate, where building a transient batch of
       the group-key columns would cost more than inline row hashing *)
    if Batch.enabled () && not (Relation.is_empty rel) then
      match Batch.find rel with
      | Some b -> Some (fst (Batch.hash_on b by))
      | None -> None
    else None
  in
  let groups =
    match Nra_storage.Bufpool.frames () with
    | Some f when Nra_storage.Iosim.pages (Array.length rows) > f ->
        (* the spill path runs its partitions under the Domain pool
           itself (iter_raw workers + owner-side ledger replay), so
           out-of-core and parallel compose *)
        nest_hash_spill ~by ~keep ~frames:f ~khash rows
    | _ ->
        if Pool.use_parallel (Array.length rows) then
          nest_hash_parallel ~by ~keep ~khash rows
        else (
          match khash with
          | Some v -> nest_hash_serial_vec ~by ~keep rows v
          | None -> nest_hash_serial ~by ~keep rows)
  in
  { key_schema; elem_schema; groups }

let cardinality t = Array.length t.groups

let unnest t =
  let schema = Schema.append t.key_schema t.elem_schema in
  let out = ref [] in
  Array.iter
    (fun (key, elems) ->
      Array.iter (fun e -> out := Row.concat key e :: !out) elems)
    t.groups;
  Relation.of_rows schema (List.rev !out)

let to_nested t =
  let flat = unnest t in
  let karity = Schema.arity t.key_schema in
  let earity = Schema.arity t.elem_schema in
  Nested_relation.nest
    ~by:(List.init karity Fun.id)
    ~keep:(List.init earity (fun i -> karity + i))
    (Nested_relation.of_flat flat)

let equal a b =
  let canon t =
    Array.to_list t.groups
    |> List.map (fun (k, es) ->
           (k, List.sort Row.compare (Array.to_list es)))
    |> List.sort (fun (k1, _) (k2, _) -> Row.compare k1 k2)
  in
  List.equal
    (fun (k1, e1) (k2, e2) -> Row.equal k1 k2 && List.equal Row.equal e1 e2)
    (canon a) (canon b)

let eval_group pred ~marker (key, elems) =
  let elems = Link_pred.filter_marker ~marker (Array.to_list elems) in
  Link_pred.eval pred ~outer:key ~elems

let select pred ~marker t =
  let out = ref [] in
  Array.iter
    (fun g ->
      if T3.to_bool (eval_group pred ~marker g) then out := fst g :: !out)
    t.groups;
  Relation.of_rows t.key_schema (List.rev !out)

let pseudo_select pred ~marker ~pad t =
  let out = ref [] in
  Array.iter
    (fun ((key, _) as g) ->
      let row =
        if T3.to_bool (eval_group pred ~marker g) then key
        else begin
          let padded = Array.copy key in
          Array.iter (fun i -> padded.(i) <- Value.Null) pad;
          padded
        end
      in
      out := row :: !out)
    t.groups;
  Relation.of_rows t.key_schema (List.rev !out)

let pp ppf t =
  Format.fprintf ppf "@[<v>nest %a keeping %a@,%a@]" Schema.pp t.key_schema
    Schema.pp t.elem_schema
    (Format.pp_print_list (fun ppf (k, es) ->
         Format.fprintf ppf "%a -> {%a}" Row.pp k
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
              Row.pp)
           (Array.to_list es)))
    (Array.to_list t.groups)
