(** Linking predicates — the paper's Definition 4.

    A linking predicate compares an attribute of the outer (flat) part of
    a nested tuple against the {e set} of values of an attribute of one
    of its subrelations: [A θ SOME {B}], [A θ ALL {B}], or tests the set
    for emptiness ([{B} = ∅] / [{B} ≠ ∅], the EXISTS forms).

    SQL linking operators map onto these as:
    - [IN]        → [= SOME];   [NOT IN] → [<> ALL]
    - [θ ANY/SOME]→ [θ SOME];   [θ ALL]  → [θ ALL]
    - [EXISTS]    → [≠ ∅];      [NOT EXISTS] → [= ∅]
    - aggregate subqueries (type JA, [A θ (SELECT agg(B) …)], also via
      [IN]/[SOME]/[ALL]) → [Agg]

    Evaluation is three-valued: [x θ ALL ∅ = True], [x θ SOME ∅ = False],
    and a NULL on either side of an element comparison contributes
    Unknown — so [5 > ALL {2,3,4,NULL}] is Unknown, the motivating
    example of the paper's Section 2.

    The {e marker} discipline: after an outer join, a group that had no
    join partner holds a single padded element whose carried primary key
    is NULL.  Callers pass the marker position so such elements are
    excluded from the set — this implements the paper's "∨ T.L is null"
    side conditions and its rule that the linking selection "only
    compares the linking attribute to the linked attribute whose
    corresponding primary key is not null". *)

open Nra_relational

type quant = Some_ | All

type t =
  | Quant of Expr.scalar * Three_valued.cmpop * quant * int
      (** [Quant (a, θ, q, b)]: [a] is evaluated on the outer frame; [b]
          is the linked attribute's position in the element frame. *)
  | Non_empty
  | Is_empty
  | Agg of Expr.scalar * Three_valued.cmpop * Nra_algebra.Aggregate.func
      (** Aggregate linking (type JA), e.g. [A θ MAX{B}]: the element
          set is collapsed to the aggregate's single value — COUNT of
          the empty set is 0, SUM/AVG/MIN/MAX of it are NULL — and [A θ
          v] is one three-valued comparison.  [IN]/[θ SOME]/[θ ALL]
          against a one-row aggregate subquery all reduce to this. *)

val eval : t -> outer:Row.t -> elems:Row.t list -> Three_valued.t
(** [elems] must already have marker-null padding elements removed. *)

val filter_marker : marker:int option -> Row.t list -> Row.t list
(** Drop elements whose marker position holds NULL ([None] keeps all). *)

val is_positive : t -> bool
(** Positive linking operators (EXISTS, SOME, IN) are satisfied only by
    non-empty sets; negative ones (NOT EXISTS, ALL, NOT IN) are
    satisfied by the empty set.  Aggregate linking is never positive:
    the empty set aggregates to a value (COUNT → 0) that can satisfy
    the comparison.  Drives the σ vs σ̄ choice. *)

val pp : Format.formatter -> t -> unit
