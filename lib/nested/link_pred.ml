open Nra_relational
module T3 = Three_valued

type quant = Some_ | All

type t =
  | Quant of Expr.scalar * T3.cmpop * quant * int
  | Non_empty
  | Is_empty
  | Agg of Expr.scalar * T3.cmpop * Nra_algebra.Aggregate.func

let filter_marker ~marker elems =
  match marker with
  | None -> elems
  | Some m -> List.filter (fun e -> not (Value.is_null e.(m))) elems

let eval p ~outer ~elems =
  match p with
  | Non_empty -> T3.of_bool (elems <> [])
  | Is_empty -> T3.of_bool (elems = [])
  | Quant (a, op, q, b) ->
      let x = Expr.eval_scalar outer a in
      let one e = T3.cmp op x e.(b) in
      (match q with
      | Some_ -> T3.disj (List.map one elems)
      | All -> T3.conj (List.map one elems))
  | Agg (a, op, f) ->
      (* aggregate linking (type JA): the set is collapsed to one value
         first — COUNT ∅ = 0, other aggregates of ∅ are NULL — and the
         comparison is a single 3VL test against it *)
      let x = Expr.eval_scalar outer a in
      T3.cmp op x (Nra_algebra.Aggregate.eval_one f elems)

let is_positive = function
  | Non_empty | Quant (_, _, Some_, _) -> true
  | Is_empty | Quant (_, _, All, _) -> false
  | Agg _ -> false (* the empty set aggregates to a value: it matters *)

let agg_func_name (f : Nra_algebra.Aggregate.func) =
  match f with
  | Nra_algebra.Aggregate.Count_star | Nra_algebra.Aggregate.Count _ ->
      "count"
  | Nra_algebra.Aggregate.Sum _ -> "sum"
  | Nra_algebra.Aggregate.Avg _ -> "avg"
  | Nra_algebra.Aggregate.Min _ -> "min"
  | Nra_algebra.Aggregate.Max _ -> "max"

let pp ppf = function
  | Non_empty -> Format.pp_print_string ppf "{B} <> {}"
  | Is_empty -> Format.pp_print_string ppf "{B} = {}"
  | Quant (a, op, q, b) ->
      Format.fprintf ppf "%a %s %s {#%d}" Expr.pp_scalar a
        (T3.cmpop_to_string op)
        (match q with Some_ -> "SOME" | All -> "ALL")
        b
  | Agg (a, op, f) ->
      Format.fprintf ppf "%a %s %s{B}" Expr.pp_scalar a
        (T3.cmpop_to_string op) (agg_func_name f)
