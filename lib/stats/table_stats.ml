open Nra_relational
open Nra_storage

type t = {
  table : string;
  rows : int;
  generation : int;
  cols : (string * Col_stats.t) list;
}

let collect ?buckets ~generation table =
  let rel = Table.relation table in
  let rows = Relation.rows rel in
  let schema = Table.schema table in
  let cols =
    Array.to_list (Schema.columns schema)
    |> List.mapi (fun i (c : Schema.column) ->
           let values = Array.map (fun row -> row.(i)) rows in
           (c.Schema.name, Col_stats.collect ?buckets values))
  in
  { table = Table.name table; rows = Array.length rows; generation; cols }

let col t name = List.assoc_opt name t.cols

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d rows (generation %d)%a@]" t.table t.rows
    t.generation
    (fun ppf cols ->
      List.iter
        (fun (name, cs) ->
          Format.fprintf ppf "@,  %-20s %a" name Col_stats.pp cs)
        cols)
    t.cols
