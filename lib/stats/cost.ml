open Nra_relational
open Nra_storage
open Nra_planner
module A = Analyze
module R = Resolved
module T3 = Three_valued
module C = Cardinality

type strategy =
  | Naive
  | Classical
  | Magic
  | Nra_original
  | Nra_optimized
  | Nra_full

let all = [ Naive; Classical; Magic; Nra_original; Nra_optimized; Nra_full ]

let to_string = function
  | Naive -> "naive"
  | Classical -> "classical"
  | Magic -> "magic"
  | Nra_original -> "nra-original"
  | Nra_optimized -> "nra-optimized"
  | Nra_full -> "nra-full"

(* CPU costs Iosim cannot see: classical's plain joins beat the nested
   operators, pipelined NRA beats materialized, magic pays for its
   magic set, naive interprets per tuple *)
let preference = function
  | Classical -> 0
  | Nra_full -> 1
  | Magic -> 2
  | Nra_optimized -> 3
  | Nra_original -> 4
  | Naive -> 5

type breakdown = {
  seq_pages : float;
  rand_pages : float;
  fetched_rows : float;
}

type estimate = {
  strategy : strategy;
  cost_ms : float;
  breakdown : breakdown;
}

type acc = {
  mutable seq : float;
  mutable rand : float;
  mutable fetch : float;
}

let pages rows =
  let rpp = float_of_int (max 1 (Iosim.config ()).Iosim.rows_per_page) in
  Float.max 1.0 (Float.ceil (rows /. rpp))

let block_scan_pages (b : A.block) =
  List.fold_left
    (fun acc (bd : A.binding) ->
      acc +. pages (float_of_int (Table.cardinality bd.A.table)))
    0.0 b.A.bindings

(* ---------- nested iteration (Naive; Classical/Magic fallback) ---- *)

(* mirror of Naive.equi_probes, column names only *)
let equi_probe_cols (b : A.block) =
  List.filter_map
    (fun rc ->
      match rc with
      | R.RCmp (T3.Eq, R.RCol c, e)
        when c.R.block_id = b.A.id && not (List.mem b.A.id (R.expr_blocks e))
        ->
          Some c.R.col
      | R.RCmp (T3.Eq, e, R.RCol c)
        when c.R.block_id = b.A.id && not (List.mem b.A.id (R.expr_blocks e))
        ->
          Some c.R.col
      | _ -> None)
    b.A.correlated

(* mirror of Naive.index_access's index selection: which columns does
   the chosen index actually probe on?  (The same Catalog lookups, so
   the model and the executor agree query by query.) *)
let index_probe_cols cat (bd : A.binding) cols =
  match Catalog.table_opt cat bd.A.source with
  | None -> None
  | Some base -> (
      let name = Table.name base in
      let sorted_exact =
        List.find_map
          (fun perm ->
            match Catalog.sorted_index_on cat ~table:name (List.hd perm) with
            | Some idx
              when Array.length (Sorted_index.positions idx)
                   = List.length perm ->
                let idx_cols =
                  Array.to_list (Sorted_index.positions idx)
                  |> List.map (fun p ->
                         (Schema.col (Table.schema base) p).Schema.name)
                in
                if List.sort compare idx_cols = List.sort compare cols then
                  Some idx_cols
                else None
            | _ -> None)
          (List.map (fun c -> [ c ]) cols
          @ if List.length cols > 1 then [ cols; List.rev cols ] else [])
      in
      match sorted_exact with
      | Some ic -> Some ic
      | None -> (
          match Catalog.hash_index_covering cat ~table:name cols with
          | Some (_, ic) -> Some ic
          | None ->
              List.find_opt
                (fun c -> Catalog.sorted_index_on cat ~table:name c <> None)
                cols
              |> Option.map (fun c -> [ c ])))

(* mirror of Naive.static_subtree, on the correlation structure alone *)
let static_subtree (b : A.block) =
  List.for_all
    (fun (blk : A.block) -> blk.A.correlated = [])
    (A.collect_blocks b)

let rec naive_child env cat acc ~outer (c : A.child) =
  let b = c.A.block in
  let probes = if static_subtree b then 1.0 else outer in
  (match (b.A.bindings, equi_probe_cols b) with
  | [ bd ], (_ :: _ as cols) -> (
      match index_probe_cols cat bd cols with
      | Some ic ->
          let raw = C.probe_fanout env b ic in
          let table_pages =
            pages (float_of_int (Table.cardinality bd.A.table))
          in
          (* page misses per probe: the probed rows live on about
             pages_per_value distinct pages (clustering statistic),
             never more than the rows themselves or the whole table *)
          let ppv =
            C.pages_per_value env bd (List.hd ic) ~fallback:table_pages
          in
          let misses = Float.min raw (Float.min ppv table_pages) in
          acc.rand <- acc.rand +. (probes *. (1.0 +. misses))
      | None ->
          (* equi correlation but no usable index: rescan per probe *)
          acc.seq <- acc.seq +. (probes *. block_scan_pages b))
  | _ ->
      (* no single binding or no equi conjunct: rescan per probe *)
      acc.seq <- acc.seq +. (probes *. block_scan_pages b));
  let qualifying = probes *. C.fanout env b in
  List.iter (naive_child env cat acc ~outer:qualifying) b.A.children

let naive_cost env cat (t : A.t) acc =
  acc.seq <- acc.seq +. block_scan_pages t.A.root;
  let outer = C.block_card env t.A.root in
  List.iter (naive_child env cat acc ~outer) t.A.root.A.children

(* ---------- classical unnesting ---------- *)

let classical_cost env cat (t : A.t) acc =
  let plan = Nra_exec.Classical.plan cat t in
  acc.seq <- acc.seq +. block_scan_pages t.A.root;
  let outer = C.block_card env t.A.root in
  let rec go ~outer (c : A.child) =
    let b = c.A.block in
    match List.assoc_opt b.A.id plan with
    | Some Nra_exec.Classical.Iterate | None ->
        (* the whole subtree degenerates to nested iteration *)
        naive_child env cat acc ~outer c
    | Some (Nra_exec.Classical.Semijoin | Nra_exec.Classical.Antijoin) ->
        (* bottom-up reduction: scan once, join in memory *)
        acc.seq <- acc.seq +. block_scan_pages b;
        List.iter (go ~outer:(C.block_card env b)) b.A.children
  in
  List.iter (go ~outer) t.A.root.A.children

(* ---------- magic decorrelation ---------- *)

let magic_cost env cat (t : A.t) acc =
  acc.seq <- acc.seq +. block_scan_pages t.A.root;
  let outer = C.block_card env t.A.root in
  let rec go ~outer (c : A.child) =
    let b = c.A.block in
    if A.self_contained b && A.equi_correlation b <> None then begin
      (* magic set + pushed selection: scans and in-memory hashing *)
      acc.seq <- acc.seq +. block_scan_pages b;
      List.iter (go ~outer:(C.block_card env b)) b.A.children
    end
    else naive_child env cat acc ~outer c
  in
  List.iter (go ~outer) t.A.root.A.children

(* ---------- the nested relational approach ---------- *)

let nra_cost env _cat (opts : Nra_exec.Nra.options) (t : A.t) acc =
  acc.seq <- acc.seq +. block_scan_pages t.A.root;
  let outer = C.block_card env t.A.root in
  (* left-outer-join output: every outer tuple survives (padded when
     unmatched), matched ones multiply by the fan-out *)
  let loj_out ~outer b = outer *. Float.max 1.0 (C.fanout env b) in
  let rec go ~outer (c : A.child) =
    let b = c.A.block in
    let contained = A.self_contained b in
    let equi = A.equi_correlation b <> None in
    acc.seq <- acc.seq +. block_scan_pages b;
    if contained && b.A.correlated = [] then
      (* virtual Cartesian product: the subquery is reduced once *)
      List.iter (go ~outer:(C.block_card env b)) b.A.children
    else if opts.Nra_exec.Nra.push_down_nest && contained && equi then
      (* §4.2.4: group the reduced child once, probe per outer tuple *)
      List.iter (go ~outer:(C.block_card env b)) b.A.children
    else if
      opts.Nra_exec.Nra.positive_simplify
      && b.A.children = []
      && A.child_positive c
      && b.A.correlated <> []
    then
      (* §4.2.5: semijoin, no wide intermediate *)
      ()
    else if opts.Nra_exec.Nra.bottom_up_linear && contained then begin
      (* §4.2.3: reduce standalone, then one join+nest at this level *)
      List.iter (go ~outer:(C.block_card env b)) b.A.children;
      acc.fetch <- acc.fetch +. loj_out ~outer b
    end
    else begin
      (* Algorithm 1: left outer join into the wide intermediate,
         children join against the widened relation *)
      let out = loj_out ~outer b in
      acc.fetch <- acc.fetch +. out;
      List.iter (go ~outer:out) b.A.children
    end
  in
  List.iter (go ~outer) t.A.root.A.children

(* ---------- assembly ---------- *)

let price (bd : breakdown) =
  let c = Iosim.config () in
  (bd.seq_pages *. c.Iosim.t_seq_ms)
  +. (bd.rand_pages *. c.Iosim.t_rand_ms)
  +. (bd.fetched_rows *. c.Iosim.t_fetch_ms)

let estimate cat (t : A.t) strategy =
  let env = C.make_env cat t in
  let acc = { seq = 0.0; rand = 0.0; fetch = 0.0 } in
  (match strategy with
  | Naive -> naive_cost env cat t acc
  | Classical -> classical_cost env cat t acc
  | Magic -> magic_cost env cat t acc
  | Nra_original -> nra_cost env cat Nra_exec.Nra.original t acc
  | Nra_optimized -> nra_cost env cat Nra_exec.Nra.optimized t acc
  | Nra_full -> nra_cost env cat Nra_exec.Nra.full t acc);
  let breakdown =
    { seq_pages = acc.seq; rand_pages = acc.rand; fetched_rows = acc.fetch }
  in
  { strategy; cost_ms = price breakdown; breakdown }

let estimates cat t =
  List.map (estimate cat t) all
  |> List.stable_sort (fun a b ->
         match Float.compare a.cost_ms b.cost_ms with
         | 0 -> Int.compare (preference a.strategy) (preference b.strategy)
         | n -> n)

let choose cat t = (List.hd (estimates cat t)).strategy

(* ---------- budget-aware selection ---------- *)

(* [fetched_rows] doubles as the intermediate-row proxy: the NRA
   estimators charge it per wide-intermediate tuple, mirroring the
   executor's [record_intermediate] (which charges the guard's row
   budget and the fetch cost from the same count). *)
let fits ~remaining_io_ms ~remaining_rows e =
  (match remaining_io_ms with
  | Some limit -> e.cost_ms <= limit
  | None -> true)
  &&
  match remaining_rows with
  | Some limit -> e.breakdown.fetched_rows <= float_of_int limit
  | None -> true

let pick ~remaining_io_ms ~remaining_rows = function
  | [] -> invalid_arg "Cost.pick: no estimates"
  | cheapest :: _ as es -> (
      match List.find_opt (fits ~remaining_io_ms ~remaining_rows) es with
      | Some e -> e
      | None -> cheapest)

let analyzed_tables cat (t : A.t) =
  List.sort_uniq String.compare
    (List.map (fun (_, bd) -> bd.A.source) t.A.by_uid)
  |> List.map (fun name -> (name, Stats_store.find_for cat name <> None))

let report cat t =
  let es = estimates cat t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-14s %12s %12s %12s %12s\n" "strategy" "est(ms)"
       "seq pages" "rand pages" "fetched");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %12.1f %12.0f %12.0f %12.0f\n"
           (to_string e.strategy) e.cost_ms e.breakdown.seq_pages
           e.breakdown.rand_pages e.breakdown.fetched_rows))
    es;
  Buffer.add_string buf
    (Printf.sprintf "auto picks: %s\n" (to_string (List.hd es).strategy));
  let missing =
    analyzed_tables cat t
    |> List.filter_map (fun (n, ok) -> if ok then None else Some n)
  in
  if missing <> [] then
    Buffer.add_string buf
      (Printf.sprintf
         "note: no fresh statistics for %s — using defaults (run ANALYZE)\n"
         (String.concat ", " missing));
  Buffer.contents buf
