(** Per-column statistics: the unit ANALYZE collects.

    Beyond the textbook quartet (row count, NULL count, distinct-value
    count, min/max) and the equi-depth histogram, a column carries a
    {e clustering} statistic, [pages_per_value]: the average number of
    distinct simulated pages (at {!Nra_storage.Iosim}'s current
    [rows_per_page]) that hold the rows of one distinct value.  It is
    ≈1 when equal values are physically contiguous (lineitem rows of one
    order) and approaches the per-value row count when they are
    scattered (lineitem rows of one part) — exactly the quantity an
    index-nested-loop cost model needs to price rowid fetches through
    the buffer cache. *)

open Nra_relational

type t = {
  rows : int;  (** total rows, NULLs included *)
  nulls : int;
  ndv : int;  (** distinct non-NULL values *)
  min_v : Value.t option;  (** None iff all values are NULL *)
  max_v : Value.t option;
  pages_per_value : float;  (** see above; 0 when the column is all NULL *)
  hist : Histogram.t option;
}

val collect : ?buckets:int -> Value.t array -> t
(** From the column's values in physical row order (position = rowid,
    which is what gives [pages_per_value] its meaning). *)

val null_frac : t -> float

val eq_sel : t -> float
(** Selectivity of [col = <non-null literal>] among {e all} rows:
    [(1 - null_frac) / ndv]. *)

val sel_cmp : t -> Three_valued.cmpop -> Value.t -> float * float
(** [(p_true, p_unknown)] of [col θ v] over a random row: the 3VL
    selectivity pair.  Comparisons against NULL are [(0, 1)]; otherwise
    [p_unknown = null_frac] and [p_true] comes from the histogram (or
    min/max interpolation, or 1/ndv for equality). *)

val pp : Format.formatter -> t -> unit
