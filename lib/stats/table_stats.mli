(** Per-table statistics: one {!Col_stats.t} per column plus the row
    count, stamped with the catalog generation the snapshot was taken
    at (see {!Nra_storage.Catalog.generation}). *)

open Nra_storage

type t = {
  table : string;
  rows : int;
  generation : int;
  cols : (string * Col_stats.t) list;  (** by unqualified column name *)
}

val collect : ?buckets:int -> generation:int -> Table.t -> t

val col : t -> string -> Col_stats.t option

val pp : Format.formatter -> t -> unit
