(** The cost model: price every evaluation strategy's plan for a query
    in {!Nra_storage.Iosim} units, without running (or charging)
    anything.

    Each estimator mirrors its executor's charging discipline:

    - every strategy pays one sequential scan per base table it
      materializes ([Frame.block_relation]);
    - nested iteration (Naive, and the Classical/Magic iteration
      fallbacks) pays, per outer tuple, one random read for the index
      descent plus the probed rows' page misses — estimated from the
      probed column's [pages_per_value] clustering statistic — or a full
      inner rescan when no index applies;
    - Classical semijoin/antijoin reductions and Magic's pushed
      selections are scan-only (in-memory hash joins);
    - the NRA variants pay the per-tuple engine→procedure fetch for
      every wide-intermediate tuple they materialize; the §4.2 shortcuts
      (push-down nest, positive simplification, standalone reduction)
      skip those fetches exactly where the executor does.

    Ties are broken by a fixed preference order —
    Classical > Nra_full > Magic > Nra_optimized > Nra_original > Naive
    — reflecting CPU costs the I/O simulation cannot see (pipelining,
    magic-set construction, per-tuple interpretation). *)

open Nra_storage
open Nra_planner

type strategy =
  | Naive
  | Classical
  | Magic
  | Nra_original
  | Nra_optimized
  | Nra_full

val all : strategy list
val to_string : strategy -> string
(** Matches the names in [Nra.strategies]. *)

type breakdown = {
  seq_pages : float;
  rand_pages : float;
  fetched_rows : float;
}

type estimate = {
  strategy : strategy;
  cost_ms : float;  (** priced with the current {!Iosim.config} *)
  breakdown : breakdown;
}

val estimate : Catalog.t -> Analyze.t -> strategy -> estimate

val estimates : Catalog.t -> Analyze.t -> estimate list
(** All six, cheapest first (ties in preference order). *)

val choose : Catalog.t -> Analyze.t -> strategy
(** The head of {!estimates}. *)

val fits :
  remaining_io_ms:float option -> remaining_rows:int option ->
  estimate -> bool
(** Does this plan's estimate fit inside what is left of the caller's
    budget?  [cost_ms] is checked against the remaining simulated-I/O
    allowance and [breakdown.fetched_rows] — which the NRA estimators
    charge per wide-intermediate tuple, mirroring the executor's row
    accounting — against the remaining row allowance. *)

val pick :
  remaining_io_ms:float option -> remaining_rows:int option ->
  estimate list -> estimate
(** Budget-aware choice over a cheapest-first estimate list: the
    cheapest estimate that {!fits}, or the globally cheapest when none
    does (a doomed query should still take its cheapest path to the
    kill).  This is how a caller's [Guard.remaining ()] steers Auto: a
    tight row budget flips the choice away from intermediate-heavy
    plans toward scan-shaped ones even when the latter price higher.
    @raise Invalid_argument on an empty list. *)

val report : Catalog.t -> Analyze.t -> string
(** The EXPLAIN COSTS table: per-strategy breakdowns and the choice,
    with a note when some table lacks fresh statistics. *)
