open Nra_relational

type t = { bounds : Value.t array }

let build ?(buckets = 32) values =
  let vs = Array.of_seq (Seq.filter (fun v -> not (Value.is_null v))
                           (Array.to_seq values)) in
  if Array.length vs = 0 then None
  else begin
    Array.sort Value.compare vs;
    let len = Array.length vs in
    let n = max 1 (min buckets len) in
    (* boundary i sits after ~i/n of the sorted values: equi-depth *)
    let bounds =
      Array.init (n + 1) (fun i ->
          if i = 0 then vs.(0) else vs.(min (len - 1) ((i * len / n) - 1)))
    in
    Some { bounds }
  end

let buckets t = Array.length t.bounds - 1
let bounds t = t.bounds

(* numeric position for within-bucket interpolation; strings (and any
   future non-numeric type) have no metric, the caller uses 0.5 *)
let to_float = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Date d -> Some (float_of_int d)
  | Value.Bool b -> Some (if b then 1.0 else 0.0)
  | Value.String _ | Value.Null -> None

let frac_below t v =
  let b = t.bounds in
  let n = Array.length b - 1 in
  if Value.is_null v || Value.compare v b.(0) < 0 then 0.0
  else if Value.compare v b.(n) >= 0 then 1.0
  else begin
    (* largest k with bounds.(k) <= v; buckets are small, scan linearly *)
    let k = ref 0 in
    for i = 0 to n - 1 do
      if Value.compare b.(i) v <= 0 then k := i
    done;
    let k = !k in
    let within =
      match (to_float v, to_float b.(k), to_float b.(k + 1)) with
      | Some x, Some lo, Some hi when hi > lo ->
          min 1.0 (max 0.0 ((x -. lo) /. (hi -. lo)))
      | _ -> 0.5
    in
    (float_of_int k +. within) /. float_of_int n
  end

let frac_between t lo hi =
  max 0.0 (frac_below t hi -. frac_below t lo)

let pp ppf t =
  Format.fprintf ppf "@[<h>equi-depth[%d]: %a@]" (buckets t)
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
       Value.pp)
    t.bounds
