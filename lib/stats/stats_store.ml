open Nra_storage

(* [epoch] counts ANALYZE runs against this store: plan caches key on
   it so a statement planned before statistics were (re)collected is
   re-estimated afterwards. *)
type t = { tbl : (string, Table_stats.t) Hashtbl.t; mutable epoch : int }

let create () : t = { tbl = Hashtbl.create 16; epoch = 0 }

let epoch t = t.epoch

let analyze ?buckets cat (t : t) name =
  let table = Catalog.table cat name in
  let ts =
    Table_stats.collect ?buckets ~generation:(Catalog.generation cat name)
      table
  in
  t.epoch <- t.epoch + 1;
  Hashtbl.replace t.tbl name ts;
  ts

let analyze_all ?buckets cat t =
  List.map
    (fun table -> analyze ?buckets cat t (Table.name table))
    (Catalog.tables cat)

let find cat (t : t) name =
  match Hashtbl.find_opt t.tbl name with
  | Some ts when ts.Table_stats.generation = Catalog.generation cat name ->
      Some ts
  | _ -> None

let tables (t : t) =
  Hashtbl.fold (fun _ ts acc -> ts :: acc) t.tbl []
  |> List.sort (fun a b ->
         String.compare a.Table_stats.table b.Table_stats.table)

(* ---- global association, keyed by catalog identity ---- *)

let stores : (Catalog.t * t) list ref = ref []

let find_store cat =
  List.find_opt (fun (c, _) -> c == cat) !stores |> Option.map snd

let of_catalog cat =
  match find_store cat with
  | Some s -> s
  | None ->
      let s = create () in
      stores := (cat, s) :: !stores;
      s

let find_for cat name =
  match find_store cat with None -> None | Some s -> find cat s name

let epoch_for cat =
  match find_store cat with None -> 0 | Some s -> s.epoch

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Table_stats.pp)
    (tables t)
