open Nra_storage

type t = (string, Table_stats.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let analyze ?buckets cat (t : t) name =
  let table = Catalog.table cat name in
  let ts =
    Table_stats.collect ?buckets ~generation:(Catalog.generation cat name)
      table
  in
  Hashtbl.replace t name ts;
  ts

let analyze_all ?buckets cat t =
  List.map
    (fun table -> analyze ?buckets cat t (Table.name table))
    (Catalog.tables cat)

let find cat (t : t) name =
  match Hashtbl.find_opt t name with
  | Some ts when ts.Table_stats.generation = Catalog.generation cat name ->
      Some ts
  | _ -> None

let tables (t : t) =
  Hashtbl.fold (fun _ ts acc -> ts :: acc) t []
  |> List.sort (fun a b ->
         String.compare a.Table_stats.table b.Table_stats.table)

(* ---- global association, keyed by catalog identity ---- *)

let stores : (Catalog.t * t) list ref = ref []

let find_store cat =
  List.find_opt (fun (c, _) -> c == cat) !stores |> Option.map snd

let of_catalog cat =
  match find_store cat with
  | Some s -> s
  | None ->
      let s = create () in
      stores := (cat, s) :: !stores;
      s

let find_for cat name =
  match find_store cat with None -> None | Some s -> find cat s name

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Table_stats.pp)
    (tables t)
