open Nra_relational
open Nra_storage
module T3 = Three_valued

type t = {
  rows : int;
  nulls : int;
  ndv : int;
  min_v : Value.t option;
  max_v : Value.t option;
  pages_per_value : float;
  hist : Histogram.t option;
}

let collect ?buckets values =
  let rows = Array.length values in
  let rpp = max 1 (Iosim.config ()).Iosim.rows_per_page in
  (* one pass: per distinct value remember the last page seen and how
     many distinct pages it spans (rows arrive in physical order, so a
     new page for a value is exactly a change of page) *)
  let seen : (Value.t, int * int) Hashtbl.t = Hashtbl.create 1024 in
  let nulls = ref 0 in
  let min_v = ref None and max_v = ref None in
  Array.iteri
    (fun i v ->
      if Value.is_null v then incr nulls
      else begin
        (match !min_v with
        | None -> min_v := Some v
        | Some m -> if Value.compare v m < 0 then min_v := Some v);
        (match !max_v with
        | None -> max_v := Some v
        | Some m -> if Value.compare v m > 0 then max_v := Some v);
        let page = i / rpp in
        match Hashtbl.find_opt seen v with
        | None -> Hashtbl.add seen v (page, 1)
        | Some (last, n) ->
            if last <> page then Hashtbl.replace seen v (page, n + 1)
      end)
    values;
  let ndv = Hashtbl.length seen in
  let total_pages =
    Hashtbl.fold (fun _ (_, n) acc -> acc + n) seen 0
  in
  let pages_per_value =
    if ndv = 0 then 0.0 else float_of_int total_pages /. float_of_int ndv
  in
  {
    rows;
    nulls = !nulls;
    ndv;
    min_v = !min_v;
    max_v = !max_v;
    pages_per_value;
    hist = Histogram.build ?buckets values;
  }

let null_frac t =
  if t.rows = 0 then 0.0 else float_of_int t.nulls /. float_of_int t.rows

let eq_sel t =
  if t.ndv = 0 then 0.0 else (1.0 -. null_frac t) /. float_of_int t.ndv

let clamp x = min 1.0 (max 0.0 x)

(* P(col <= v) among non-NULL rows *)
let frac_le t v =
  match t.hist with
  | Some h -> Histogram.frac_below h v
  | None -> (
      (* no histogram (un-analyzed path never builds t, so this is the
         all-NULL case or a degenerate build): interpolate on min/max *)
      match (t.min_v, t.max_v) with
      | Some lo, Some hi -> (
          match (Histogram.build ~buckets:1 [| lo; hi |], v) with
          | Some h, v -> Histogram.frac_below h v
          | None, _ -> 0.5)
      | _ -> 0.5)

let sel_cmp t op v =
  if Value.is_null v then (0.0, 1.0)
  else
    let nf = null_frac t in
    let eq = if t.ndv = 0 then 0.0 else 1.0 /. float_of_int t.ndv in
    let le = frac_le t v in
    let frac_nonnull =
      match op with
      | T3.Eq -> eq
      | T3.Neq -> 1.0 -. eq
      | T3.Le -> le
      | T3.Lt -> le -. eq
      | T3.Gt -> 1.0 -. le
      | T3.Ge -> 1.0 -. le +. eq
    in
    (clamp (clamp frac_nonnull *. (1.0 -. nf)), nf)

let pp ppf t =
  Format.fprintf ppf
    "@[<h>rows %d, nulls %d, ndv %d, ppv %.2f, range %a .. %a@]" t.rows
    t.nulls t.ndv t.pages_per_value
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "-")
       Value.pp)
    t.min_v
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "-")
       Value.pp)
    t.max_v
