(** The statistics registry: where ANALYZE output lives.

    [Nra_storage] cannot depend on this library, so statistics are kept
    {e alongside} the catalog rather than inside it: a process-global
    association from catalog identity (physical equality) to a
    per-catalog store.  Lookups are generation-checked — statistics
    collected before a table's rows were replaced are treated as absent,
    so a stale snapshot can mis-estimate but never resurrect dropped
    data.  Catalogs that were never ANALYZEd cost nothing here. *)

open Nra_storage

type t

val create : unit -> t

val analyze : ?buckets:int -> Catalog.t -> t -> string -> Table_stats.t
(** Collect (and store) statistics for one table.
    @raise Not_found if the table is absent from the catalog. *)

val analyze_all : ?buckets:int -> Catalog.t -> t -> Table_stats.t list

val find : Catalog.t -> t -> string -> Table_stats.t option
(** Fresh statistics only: [None] when the table was never analyzed or
    its catalog generation moved since. *)

val tables : t -> Table_stats.t list

val epoch : t -> int
(** Monotonic count of ANALYZE runs recorded in this store.  Plan
    caches include it in their keys: a statement planned before
    statistics changed must be re-estimated after. *)

(** {1 The global per-catalog association} *)

val of_catalog : Catalog.t -> t
(** The store bound to this catalog, created on first use. *)

val find_for : Catalog.t -> string -> Table_stats.t option
(** [find] through the global association, allocating nothing when the
    catalog was never ANALYZEd. *)

val epoch_for : Catalog.t -> int
(** {!epoch} through the global association; 0 when the catalog was
    never ANALYZEd. *)

val pp : Format.formatter -> t -> unit
