(** Cardinality and selectivity estimation over {!Nra_planner.Analyze}
    output.

    Selectivities are three-valued: a predicate's estimate is the pair
    [(p_true, p_unknown)] (with [p_false] the remainder), combined under
    the usual independence assumptions by the 3VL truth tables — so
    [NOT] and the negative linking operators price the NULL mass
    correctly instead of folding it into [false].  Statistics come from
    {!Stats_store} when the table was ANALYZEd; otherwise the classic
    System-R defaults apply (1/10 for equality, 1/3 for ranges, NDV
    heuristics from the key declaration). *)

open Nra_storage
open Nra_planner

type env

val make_env : Catalog.t -> Analyze.t -> env

val col_stats : env -> Resolved.rcol -> Col_stats.t option
(** Fresh ANALYZE output for the column's base table, if any. *)

val ndv : env -> Resolved.rcol -> float
(** Distinct non-NULL values; falls back to the table cardinality for a
    single-column primary key and rows/10 otherwise. *)

val null_frac : env -> Resolved.rcol -> float

(** {1 The 3VL selectivity algebra}

    Selectivity pairs [(p_true, p_unknown)] combined by the three-valued
    truth tables under independence. *)

val and3 : float * float -> float * float -> float * float
val or3 : float * float -> float * float -> float * float
val not3 : float * float -> float * float

val cond_sel : env -> Resolved.rcond -> float * float
(** [(p_true, p_unknown)] of one (possibly composite) condition. *)

val local_sel : env -> Analyze.block -> float
(** Probability a random tuple of the block's base relation satisfies
    all local conjuncts ([p_true] of their conjunction). *)

val block_base_rows : env -> Analyze.block -> float
(** Product of the block's binding cardinalities (exact, from the
    catalog — row counts are always known). *)

val block_card : env -> Analyze.block -> float
(** [block_base_rows × local_sel] — the block relation's size after
    pushed-down local selections. *)

val corr_sel : env -> Analyze.block -> float
(** Per-outer-tuple selectivity of the block's correlated conjuncts:
    for a fixed outer tuple, the probability that a random inner tuple
    matches (equality contributes [1/ndv(inner column)]). *)

val fanout : env -> Analyze.block -> float
(** Expected matching inner tuples per outer tuple:
    [block_card × corr_sel]. *)

val probe_fanout : env -> Analyze.block -> string list -> float
(** Candidate rows returned by an index probe on the given inner equi
    columns — base rows × Π 1/ndv, {e before} local selections (an
    index returns raw table rows; filters apply per candidate). *)

val pages_per_value : env -> Analyze.binding -> string -> fallback:float ->
  float
(** Clustering of the binding's base-table column: distinct pages per
    probed value (see {!Col_stats}); [fallback] when not analyzed. *)
