open Nra_relational
open Nra_storage
open Nra_planner
module A = Analyze
module R = Resolved
module T3 = Three_valued

type env = { cat : Catalog.t; analysis : A.t }

let make_env cat analysis = { cat; analysis }

let clamp x = min 1.0 (max 0.0 x)
let third = 1.0 /. 3.0

let col_stats env (c : R.rcol) =
  match A.binding_of_col env.analysis c with
  | None -> None
  | Some bd -> Stats_store.find_for env.cat bd.A.source
               |> Fun.flip Option.bind (fun ts -> Table_stats.col ts c.R.col)

let table_rows (bd : A.binding) =
  float_of_int (Table.cardinality bd.A.table)

let ndv env (c : R.rcol) =
  match col_stats env c with
  | Some cs when cs.Col_stats.ndv > 0 -> float_of_int cs.Col_stats.ndv
  | _ -> (
      match A.binding_of_col env.analysis c with
      | Some bd ->
          let rows = table_rows bd in
          (* a declared single-column key is unique; otherwise the
             System-R-era default of rows/10 distinct values *)
          if Table.key_columns bd.A.table = [ c.R.col ] then max 1.0 rows
          else max 1.0 (rows /. 10.0)
      | None -> 100.0)

let null_frac env (c : R.rcol) =
  match col_stats env c with
  | Some cs -> Col_stats.null_frac cs
  | None -> 0.0

(* NULL propagates through expressions: P(e is NULL) under column
   independence *)
let expr_null_frac env e =
  let cols = R.expr_cols e in
  1.0
  -. List.fold_left (fun acc c -> acc *. (1.0 -. null_frac env c)) 1.0 cols

(* ---------- 3VL selectivity algebra ---------- *)

let and3 (t1, u1) (t2, u2) =
  (t1 *. t2, clamp ((t1 *. u2) +. (u1 *. t2) +. (u1 *. u2)))

let or3 (t1, u1) (t2, u2) =
  let f1 = clamp (1.0 -. t1 -. u1) and f2 = clamp (1.0 -. t2 -. u2) in
  let f = f1 *. f2 in
  let u = clamp ((f1 *. u2) +. (u1 *. f2) +. (u1 *. u2)) in
  (clamp (1.0 -. f -. u), u)

let not3 (t, u) = (clamp (1.0 -. t -. u), u)

let default_cmp = function
  | T3.Eq -> 0.1
  | T3.Neq -> 0.9
  | T3.Lt | T3.Le | T3.Gt | T3.Ge -> third

let col_lit env op c v =
  match col_stats env c with
  | Some cs -> Col_stats.sel_cmp cs op v
  | None ->
      if Value.is_null v then (0.0, 1.0) else (default_cmp op, 0.0)

let rec cond_sel env (rc : R.rcond) : float * float =
  match rc with
  | R.RTrue -> (1.0, 0.0)
  | R.RCmp (op, R.RCol c, R.RLit v) -> col_lit env op c v
  | R.RCmp (op, R.RLit v, R.RCol c) -> col_lit env (T3.flip_op op) c v
  | R.RCmp (op, R.RCol a, R.RCol b) ->
      let u =
        clamp
          (1.0 -. ((1.0 -. null_frac env a) *. (1.0 -. null_frac env b)))
      in
      let n = max (ndv env a) (ndv env b) in
      let t =
        match op with
        | T3.Eq -> 1.0 /. n
        | T3.Neq -> 1.0 -. (1.0 /. n)
        | T3.Lt | T3.Le | T3.Gt | T3.Ge -> third
      in
      (clamp (t *. (1.0 -. u)), u)
  | R.RCmp (op, e1, e2) ->
      let u =
        clamp
          (1.0
          -. (1.0 -. expr_null_frac env e1) *. (1.0 -. expr_null_frac env e2)
          )
      in
      (clamp (default_cmp op *. (1.0 -. u)), u)
  | R.RAnd (a, b) -> and3 (cond_sel env a) (cond_sel env b)
  | R.ROr (a, b) -> or3 (cond_sel env a) (cond_sel env b)
  | R.RNot c -> not3 (cond_sel env c)
  | R.RIs_null e -> (clamp (expr_null_frac env e), 0.0)
  | R.RIs_not_null e -> (clamp (1.0 -. expr_null_frac env e), 0.0)
  | R.RBetween (e, lo, hi) ->
      cond_sel env (R.RAnd (R.RCmp (T3.Ge, e, lo), R.RCmp (T3.Le, e, hi)))
  | R.RIn_list (R.RCol c, vs) ->
      let nf = null_frac env c in
      let eq =
        match col_stats env c with
        | Some cs -> Col_stats.eq_sel cs
        | None -> 0.1
      in
      let n = List.length (List.sort_uniq Value.compare vs) in
      (clamp (float_of_int n *. eq), nf)
  | R.RIn_list (e, vs) ->
      ( clamp (0.1 *. float_of_int (List.length vs)),
        clamp (expr_null_frac env e) )
  | R.RLike (e, _) -> (0.1, clamp (expr_null_frac env e))

(* ---------- block-level quantities ---------- *)

let local_sel env (b : A.block) =
  fst
    (List.fold_left
       (fun acc rc -> and3 acc (cond_sel env rc))
       (1.0, 0.0) b.A.local)

let block_base_rows _env (b : A.block) =
  List.fold_left (fun acc bd -> acc *. table_rows bd) 1.0 b.A.bindings

let block_card env b = block_base_rows env b *. local_sel env b

(* per-outer-tuple selectivity of one correlated conjunct: the inner
   side fixed to the block's column, the outer side a constant for the
   duration of the probe *)
let corr_conjunct_sel env (b : A.block) rc =
  let inner (c : R.rcol) = c.R.block_id = b.A.id in
  let outer e = not (List.mem b.A.id (R.expr_blocks e)) in
  let per_tuple op (c : R.rcol) =
    let n = max 1.0 (ndv env c) in
    let nn = 1.0 -. null_frac env c in
    match op with
    | T3.Eq -> nn /. n
    | T3.Neq -> nn *. (1.0 -. (1.0 /. n))
    | T3.Lt | T3.Le | T3.Gt | T3.Ge -> nn *. third
  in
  match rc with
  | R.RCmp (op, R.RCol c, e) when inner c && outer e -> per_tuple op c
  | R.RCmp (op, e, R.RCol c) when inner c && outer e ->
      per_tuple (T3.flip_op op) c
  | _ -> fst (cond_sel env rc) |> fun t -> max t third

let corr_sel env (b : A.block) =
  List.fold_left
    (fun acc rc -> acc *. corr_conjunct_sel env b rc)
    1.0 b.A.correlated

let fanout env b = block_card env b *. corr_sel env b

let probe_fanout env (b : A.block) cols =
  let per_col acc col =
    let c = { R.uid = (List.hd b.A.bindings).A.uid; col; block_id = b.A.id }
    in
    acc /. max 1.0 (ndv env c)
  in
  List.fold_left per_col (block_base_rows env b) cols

let pages_per_value env (bd : A.binding) col ~fallback =
  match
    Stats_store.find_for env.cat bd.A.source
    |> Fun.flip Option.bind (fun ts -> Table_stats.col ts col)
  with
  | Some cs when cs.Col_stats.pages_per_value > 0.0 ->
      cs.Col_stats.pages_per_value
  | _ -> fallback
