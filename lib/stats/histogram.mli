(** Equi-depth histograms over {!Nra_relational.Value} columns.

    Built from the non-NULL values of a column: the sorted values are
    cut into [buckets] ranges holding (as nearly as possible) the same
    number of rows, and only the bucket boundaries are retained.  Range
    selectivities interpolate linearly inside a bucket for numeric-like
    values (ints, floats, dates, bools) and fall back to the bucket
    midpoint for strings — equi-depth boundaries carry most of the
    information either way. *)

open Nra_relational

type t

val build : ?buckets:int -> Value.t array -> t option
(** [build vs] over the {e non-NULL} values of a column (NULLs are
    filtered out here for convenience); [None] when no non-NULL value
    exists.  Default 32 buckets; never more than the number of values. *)

val buckets : t -> int

val bounds : t -> Value.t array
(** The [buckets + 1] boundaries, ascending; [bounds.(0)] is the column
    minimum and the last element the maximum. *)

val frac_below : t -> Value.t -> float
(** Continuous approximation of [P(x <= v)] over the non-NULL values:
    0 below the minimum, 1 at or above the maximum, interpolated within
    the covering bucket otherwise. *)

val frac_between : t -> Value.t -> Value.t -> float
(** [P(lo <= x <= hi)], clamped to [0, 1]. *)

val pp : Format.formatter -> t -> unit
