(* Memory governor: a per-statement ledger over staged intermediates.

   The evaluators stage flat intermediates — the pre-nest wide staging
   in the NRA pipeline, the projection/aggregation buffers in
   post-processing, sub-block materializations — that historically
   lived unbounded on the OCaml heap no matter what frame budget the
   buffer pool enforced on base tables and hash build sides.  Every
   such staging now passes through [with_staged]:

   - its footprint (rows x schema width x 8-byte value slots) is
     charged to a live-bytes ledger with a high-water mark, reported by
     [explain --costs];
   - when the buffer pool is enabled and the staging would not fit the
     frame budget ([Iosim.pages rows > frames]), the rows are routed
     through a [Bufpool.Spill] partition and read straight back — the
     relation is byte-identical (spill preserves append order), but
     the page-outs/page-ins are charged and fault-drawn like any other
     spill traffic, and the staging never counts as resident;
   - stagings kept in memory record [max_resident_pages], so a test
     can assert that no unspilled intermediate ever exceeded the frame
     budget.

   Like the rest of the storage layer this is a residency simulation:
   rows stay on the heap, the charges are what is real.  Global and
   single-threaded; called owner-side only (staging happens outside
   the morsel kernels). *)

open Nra_relational

(* one boxed Value.t slot, the unit the ledger prices a column at *)
let slot_bytes = 8

type stats = {
  stagings : int;  (* intermediates charged *)
  staged_rows : int;
  high_water_bytes : int;  (* max live staged bytes since reset *)
  spilled_stagings : int;
  spilled_rows : int;
  max_resident_pages : int;  (* largest staging kept unspilled *)
}

let zero =
  {
    stagings = 0;
    staged_rows = 0;
    high_water_bytes = 0;
    spilled_stagings = 0;
    spilled_rows = 0;
    max_resident_pages = 0;
  }

let st = ref zero
let live = ref 0

let reset () =
  st := zero;
  live := 0

let () = Iosim.on_reset reset
let stats () = !st
let live_bytes () = !live
let bytes ~rows ~width = rows * width * slot_bytes

let charge ~rows ~width =
  st := { !st with stagings = !st.stagings + 1; staged_rows = !st.staged_rows + rows };
  live := !live + bytes ~rows ~width;
  if !live > !st.high_water_bytes then st := { !st with high_water_bytes = !live }

let release ~rows ~width = live := max 0 (!live - bytes ~rows ~width)

let with_charged ~rows ~width f =
  charge ~rows ~width;
  Fun.protect ~finally:(fun () -> release ~rows ~width) f

let over_budget rows =
  match Bufpool.frames () with
  | None -> false
  | Some f -> Iosim.pages rows > f

(* write the staging out and read it straight back: pages are charged
   (write-behind flushes, then one pinned read per page) and the rows
   come back in exactly the order they went in *)
let spill_roundtrip ~label rel =
  let rows = Relation.rows rel in
  let sp = Bufpool.Spill.create label in
  Fun.protect
    ~finally:(fun () -> Bufpool.Spill.free sp)
    (fun () ->
      Array.iter (Bufpool.Spill.add sp) rows;
      Bufpool.Spill.finish sp;
      let out = Array.make (Array.length rows) [||] in
      let i = ref 0 in
      Bufpool.Spill.iter sp (fun r ->
          out.(!i) <- r;
          incr i);
      Relation.make (Relation.schema rel) out)

let with_staged ~label rel f =
  let rows = Relation.cardinality rel in
  let width = Schema.arity (Relation.schema rel) in
  if rows > 0 && over_budget rows then begin
    (* spilled: the staging lives on "disk", not in frames — it is
       tallied but never counts toward live bytes; the spill pages are
       accounted through the pool instead *)
    st :=
      {
        !st with
        stagings = !st.stagings + 1;
        staged_rows = !st.staged_rows + rows;
        spilled_stagings = !st.spilled_stagings + 1;
        spilled_rows = !st.spilled_rows + rows;
      };
    f (spill_roundtrip ~label rel)
  end
  else begin
    let p = Iosim.pages rows in
    if p > !st.max_resident_pages then st := { !st with max_resident_pages = p };
    with_charged ~rows ~width (fun () -> f rel)
  end
