(** Deterministic fault injection for the simulated storage layer.

    Production storage fails: pages go unreadable, fetches time out,
    caches return garbage under memory pressure.  This module lets the
    read paths fronted by {!Iosim} — sequential scans, index probes, and
    the {!Lru}-backed rowid fetches — raise transient {!Io_fault}s with
    a configured probability, drawn from a seeded PRNG so every run is
    reproducible.  The executors wrap those read paths in
    {!with_retries}, a bounded retry-with-exponential-backoff loop, so
    the whole abort/retry/fallback machinery (see docs/ROBUSTNESS.md)
    is testable end to end:

    - with [probability] in (0, 1), faults are {e transient}: a retry
      redraws the PRNG and almost surely succeeds within the bound;
    - with [probability = 1.0], faults are {e permanent}: the retry
      budget exhausts and the last {!Io_fault} escapes to the facade,
      which surfaces it as a structured [Io_error].

    Like {!Iosim}, everything is global and single-threaded.

    The environment variable [NRA_FAULT_INJECT] ("p", "p:seed", or
    "p:seed:retries") configures injection at program start — this is
    how CI runs the whole test suite under injection. *)

exception Io_fault of string
(** A (simulated) failed storage read.  The payload names the site,
    e.g. ["scan"], ["probe"], ["fetch"]. *)

type config = {
  probability : float;  (** per-read fault probability in [0, 1] *)
  seed : int;  (** PRNG seed; same seed + same read sequence = same faults *)
  max_retries : int;  (** attempts beyond the first in {!with_retries} *)
  backoff_ms : float;
      (** base backoff; attempt [k] sleeps [backoff_ms * 2^k].  The
          sleep is real (wall-clock) but defaults small enough that a
          full test run under injection stays fast. *)
}

val default_config : config
(** Disabled: probability 0.0, seed 0, 6 retries, 0.05 ms backoff. *)

val config : unit -> config

val configure :
  ?seed:int -> ?max_retries:int -> ?backoff_ms:float -> float -> unit
(** [configure p] enables injection with probability [p] (clamped to
    [0, 1]), reseeds the PRNG, and resets {!stats}. *)

val disable : unit -> unit
(** Probability back to 0.0; stats are kept for inspection. *)

val enabled : unit -> bool

val inject : string -> unit
(** Called by the storage read paths: draws the PRNG and raises
    [Io_fault site] with the configured probability.  Free (no draw)
    when disabled. *)

val with_retries : (unit -> 'a) -> 'a
(** Run the thunk, retrying up to [max_retries] extra attempts when it
    raises {!Io_fault}, sleeping an exponentially growing backoff
    between attempts.  The final attempt's fault propagates. *)

type stats = {
  injected : int;  (** faults raised by {!inject} *)
  retried : int;  (** attempts re-run by {!with_retries} *)
  escaped : int;  (** faults that exhausted the retry budget *)
  backoff_ms_total : float;  (** cumulative sleep *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
