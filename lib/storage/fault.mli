(** Deterministic fault injection for the simulated storage layer.

    Production storage fails: pages go unreadable, fetches time out,
    caches return garbage under memory pressure.  This module lets the
    read paths fronted by {!Iosim} — sequential scans, index probes, and
    the {!Lru}-backed rowid fetches — raise transient {!Io_fault}s with
    a configured probability, drawn from a seeded PRNG so every run is
    reproducible.  The executors wrap those read paths in
    {!with_retries}, a bounded retry-with-exponential-backoff loop, so
    the whole abort/retry/fallback machinery (see docs/ROBUSTNESS.md)
    is testable end to end:

    - with [probability] in (0, 1), faults are {e transient}: a retry
      redraws the PRNG and almost surely succeeds within the bound;
    - with [probability = 1.0], faults are {e permanent}: the retry
      budget exhausts and the last {!Io_fault} escapes to the facade,
      which surfaces it as a structured [Io_error].

    Like {!Iosim}, everything is global and single-threaded.

    The environment variable [NRA_FAULT_INJECT] ("p", "p:seed",
    "p:seed:retries", or "p:seed:retries:palloc" — the last field arms
    allocation-pressure faults) configures injection at program start —
    this is how CI runs the whole test suite under injection. *)

exception Io_fault of string
(** A (simulated) failed storage read.  The payload names the site,
    e.g. ["scan"], ["probe"], ["fetch"]. *)

exception Crash of string
(** A simulated {e power loss} at a fault point, armed by
    {!arm_crash}.  Unlike {!Io_fault} it is not caught by
    {!with_retries} (a dead process cannot retry), must not be caught
    by in-path cleanup handlers, and escapes the {!Nra} facade raw —
    the write-ahead log's recovery ({!Wal.recover}) is the only thing
    that survives it.  The payload names the site. *)

type config = {
  probability : float;  (** per-read fault probability in [0, 1] *)
  seed : int;  (** PRNG seed; same seed + same read sequence = same faults *)
  max_retries : int;  (** attempts beyond the first in {!with_retries} *)
  backoff_ms : float;
      (** base backoff; attempt [k] waits out [backoff_ms * 2^k]
          through the pluggable {!set_sleeper} (a virtual pause by
          default: recorded, never slept in real time). *)
  alloc_probability : float;
      (** per-intermediate-materialization probability of an
          allocation-pressure fault (see {!alloc_should_fail}) *)
}

val default_config : config
(** Disabled: probabilities 0.0, seed 0, 6 retries, 0.05 ms backoff. *)

val config : unit -> config

val configure :
  ?seed:int ->
  ?max_retries:int ->
  ?backoff_ms:float ->
  ?alloc_probability:float ->
  float ->
  unit
(** [configure p] enables injection with probability [p] (clamped to
    [0, 1]), reseeds the PRNG, and resets {!stats}.
    [alloc_probability] additionally arms allocation-pressure faults. *)

val disable : unit -> unit
(** Probabilities back to 0.0; stats are kept for inspection. *)

val enabled : unit -> bool

val inject : string -> unit
(** Called by the storage read paths: draws the PRNG and raises
    [Io_fault site] with the configured probability.  Free (no draw)
    when disabled. *)

val draws : unit -> int
(** Total {!inject} calls so far — fault points are numbered even when
    injection is disabled, so a crash-recovery corpus can enumerate a
    statement's points deterministically (run it once, diff {!draws})
    and then re-run with {!arm_crash} at each point in turn. *)

val arm_crash : at:int -> unit
(** One-shot: raise {!Crash} at the first fault point whose
    {!draws}-count reaches [at], then disarm. *)

val arm_fault : at:int -> unit
(** One-shot: raise {!Io_fault} at the first fault point whose
    {!draws}-count reaches [at], then disarm — a {e guaranteed} fault
    at a chosen point regardless of [probability] (combine with
    [max_retries = 0] to force an escape there). *)

val disarm : unit -> unit
(** Clear both armings. *)

val with_retries : (unit -> 'a) -> 'a
(** Run the thunk, retrying up to [max_retries] extra attempts when it
    raises {!Io_fault}, sleeping an exponentially growing backoff
    between attempts (through the pluggable sleeper).  The final
    attempt's fault propagates. *)

val alloc_should_fail : unit -> bool
(** Allocation-pressure injection: with probability
    [alloc_probability], decide that the caller's row budget just
    exhausted (a seeded PRNG draw, counted in {!stats}).  This module
    cannot depend on the guard, so the {e caller} — an evaluator about
    to materialize an intermediate under a finite row budget — raises
    the [Guard.Killed (Budget_exceeded Rows)] itself, taking exactly
    the unwind a real exhaustion takes.  Callers must not consult this
    without an installed finite row budget: exhaustion of an unlimited
    budget is meaningless. *)

val set_sleeper : (float -> unit) -> unit
(** Replace how {!with_retries} waits out a backoff (argument in
    milliseconds).  The cooperative scheduler ([nra.server])
    substitutes a virtual-clock sleep that suspends only the retrying
    task — concurrent statements make progress during the backoff and
    no real wall-clock time passes; tests substitute a recorder. *)

val default_sleeper : float -> unit
(** The initial sleeper: a no-op — the pause is accounted in
    {!stats}.[backoff_ms_total] but never slept in real time.  (The
    old real-time [Unix.sleepf] path is gone: it blocked the whole
    process, which a server serving concurrent sessions cannot
    afford.) *)

type stats = {
  injected : int;  (** faults raised by {!inject} *)
  retried : int;  (** attempts re-run by {!with_retries} *)
  escaped : int;  (** faults that exhausted the retry budget *)
  backoff_ms_total : float;  (** cumulative sleep *)
  alloc_injected : int;  (** allocation-pressure faults granted *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
