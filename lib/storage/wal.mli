(** Write-ahead log with undo.

    Physical logging over the in-place catalog: before a DML statement
    mutates a table, it appends a record holding the full before- and
    after-image (log-before-write), and finishes with a Commit record.
    Every append is charged through {!Iosim.charge_wal_append} {e
    before} the record becomes durable — so a fault or crash at the
    append leaves a clean torn-log prefix, the case recovery is built
    to tolerate.

    Two failure paths, matching the two ways execution can die:

    - {!abort} — inline rollback when an {!Fault.Io_fault} escapes its
      retry budget: before-images re-applied in reverse order, then an
      Abort record.  Preserves DML's pre-statement atomicity.
    - {!recover} — crash recovery after {!Fault.Crash} (the
      kill-at-fault-point harness, which bypasses all cleanup): REDO
      committed statements in log order, then UNDO unfinished ones in
      reverse.  Idempotent — images are absolute — so a crash during
      recovery just means recovering again.

    Rollback paths never charge and never draw faults: undo must not
    itself fail.  Global and single-threaded, like the catalog. *)

type stmt

val begin_stmt : unit -> stmt
(** Open a statement (appends a Begin record, one charged page). *)

val log_update :
  stmt ->
  table:string ->
  before:Nra_relational.Row.t array ->
  after:Nra_relational.Row.t array ->
  unit
(** Record a full-table image swap; charged at the paged size of both
    images.  Must be appended {e before} the catalog mutation. *)

val log_create : stmt -> Table.t -> unit
(** Record a table creation (undo drops it; redo re-registers it). *)

val log_drop : stmt -> Table.t -> unit
(** Record a table drop, capturing the whole table for undo. *)

val commit : stmt -> unit

val abort : ?applied:bool -> Catalog.t -> stmt -> unit
(** Inline undo: re-apply the statement's before-images in reverse
    order, then append an Abort record.  Uncharged and fault-free.
    [~applied:false] (the statement died before its mutation ran —
    e.g. a fault on the log append itself, or the mutation's own
    validation) skips the undo but still appends the Abort record,
    which is load-bearing either way: it tells {!recover} this
    statement needs no undo. *)

type recovery = { redone : int; undone : int }

val recover : Catalog.t -> recovery
(** Replay the log against the catalog: redo every committed
    statement's ops in log order, then undo every statement that
    neither committed nor aborted, in reverse order.  Uncharged,
    fault-free, idempotent. *)

val needs_recovery : unit -> bool
(** True when the log contains a statement that began or mutated but
    neither committed nor aborted — the shape only a crash leaves
    behind.  A log of fully ended statements needs no recovery (replay
    would be an idempotent no-op). *)

val recover_if_needed : Catalog.t -> recovery option
(** {!recover} iff {!needs_recovery}; [None] means the log was clean
    and the catalog untouched.  Run at CLI and server startup so an
    embedding that observed a crash heals before serving. *)

val records : unit -> int
(** Total records appended since the last {!reset} (the WAL counter
    reported by [explain --costs]). *)

val reset : unit -> unit
