(** A fixed-capacity LRU set of page identifiers — the buffer-cache
    model of {!Iosim}.  O(1) hit/insert/evict. *)

type t

val create : capacity:int -> t
(** [capacity <= 0] means "always miss" (caching disabled). *)

val touch : t -> int -> bool
(** [touch t page] returns whether [page] was resident (a cache hit),
    and in all cases makes it the most recently used entry, evicting the
    least recently used one if the capacity is exceeded. *)

val mem : t -> int -> bool
(** Residency test without promoting. *)

val size : t -> int
val capacity : t -> int

val remove : t -> int -> unit
(** Drop an entry without evicting anything else; no-op if absent. *)

val find_victim : t -> (int -> bool) -> int option
(** The least-recently-used entry satisfying the predicate, or [None]
    if every entry fails it — the buffer pool's pin-aware eviction
    scan (O(1) when the true LRU entry is evictable). *)

val clear : t -> unit
