(** Disk-I/O cost simulation.

    The paper's experiments ran on a 2005-era server: TPC-H SF 1 (1 GB)
    on a single SCSI disk with a 32 MB buffer cache, where the dominant
    costs are page I/O — sequential for scans and hash joins, random for
    index descents and row fetches by rowid — plus, for the nested
    relational approach as implemented there (stored procedures), the
    per-tuple overhead of fetching the intermediate result out of the
    SQL engine.  An in-memory OCaml engine inverts those ratios, so the
    executors {e charge} their accesses here and the benchmarks report a
    simulated elapsed time next to the measured CPU time.  The cost
    model is deliberately simple and fully documented:

    - a sequential page read costs [t_seq_ms];
    - a random page read (index leaf, rowid fetch) costs [t_rand_ms];
    - fetching one intermediate-result tuple into the procedure costs
      [t_fetch_ms];
    - a page holds [rows_per_page] rows (row width is ignored).

    Charging conventions (see DESIGN.md):
    - materializing a block's tables charges one sequential scan per
      base table;
    - an index probe charges one random read for the leaf plus one per
      matching row fetched;
    - a nested-iteration rescan (no index) charges the inner block's
      scan once per outer tuple;
    - the NRA executor charges [t_fetch_ms] per wide-intermediate tuple
      (the paper's "communication overhead").

    Everything is global and single-threaded, matching the engine. *)

type config = {
  rows_per_page : int;
  t_seq_ms : float;
  t_rand_ms : float;
  t_fetch_ms : float;
  cache_pages : int;
      (** capacity of the LRU buffer cache consulted by {e identified}
          random reads ([charge_row_fetch]); 0 disables caching.  The
          paper's environment kept ≈3% of the database cached; pick
          [cache_pages] accordingly for the scale in use. *)
  page_size_kb : float;
      (** size of one simulated page in KB (default 8.0) — the unit
          {!frames_for_mb} divides a memory budget by, so the paper's
          "32 MB buffer cache" is expressible as an exact frame count
          ([--page-size-kb] on the CLI). *)
}

val default_config : config
(** 100 rows/page, 0.1 ms sequential, 1.0 ms random, 0.12 ms/tuple
    fetch — calibrated so the scaled-down TPC-H runs land in the same
    regime as the paper's figures (the fetch constant is derived from
    the paper's own Query 1 numbers). *)

val config : unit -> config
val set_config : config -> unit

val reset : unit -> unit

val on_reset : (unit -> unit) -> unit
(** Register a hook run by every {!reset}: the buffer pool above this
    module clears its residency and counters through it, so "cold"
    measurements stay cold after a reset. *)

val pages : int -> int
(** [pages rows] — how many pages that many rows occupy
    (ceiling division by [rows_per_page]). *)

val frames_for_mb : float -> int
(** A memory budget in MB converted to whole frames at the configured
    [page_size_kb] — e.g. the paper's 32 MB cache at 8 KB pages is
    exactly 4096 frames. *)

val charge_scan_rows : int -> unit
(** Sequential scan of a relation with that many rows. *)

val charge_probe : matches:int -> unit
(** One index probe returning [matches] rows. *)

val charge_random_pages : int -> unit
(** Raw random reads with no page identity — never cached. *)

val charge_row_fetch : table:string -> row_id:int -> unit
(** Fetch one row by rowid: identifies the page [(table,
    row_id / rows_per_page)] and consults the buffer cache — a hit is
    free, a miss costs one random read.  Used by index-driven nested
    iteration, where page locality is exactly what the paper's buffer
    cache traded against. *)

val cache_hits : unit -> int
val cache_misses : unit -> int

val charge_fetch_rows : int -> unit
(** Engine → procedure transfer of intermediate tuples. *)

val charge_page_in : int -> unit
(** Buffer-pool miss: [n] pages read back from a spill partition or a
    table extent (sequential; fault site ["page-in"]). *)

val charge_page_out : int -> unit
(** Buffer-pool writeback: [n] dirty frames flushed on eviction
    (fault site ["page-out"]). *)

val charge_wal_append : pages:int -> unit
(** Append that many pages to the write-ahead log (fault site
    ["wal"]). *)

type counters = {
  seq_pages : int;
  rand_pages : int;
  fetched_rows : int;
}

val counters : unit -> counters

val absorb : counters -> unit
(** Add a delta to the charge counters without drawing from the fault
    injector: the deposit half of the parallel-region ledger merge
    ([nra.pool]).  The fault draws belong to the original owner-side
    charge sites, so the injected-fault sequence — and the total
    simulated I/O — are identical for every pool size. *)

type checkpoint

val checkpoint : unit -> checkpoint
(** Snapshot the charge counters (and cache hit/miss tallies). *)

val rollback : checkpoint -> unit
(** Restore a snapshot: the charges of an aborted attempt vanish from
    the simulation.  Buffer-cache {e contents} are kept — a real pool
    stays warm after an aborted query — only the tallies rewind.

    Checkpoint/rollback is a {e global} snapshot: it is only safe when
    no other statement can charge in between.  Auto's kill-and-fallback
    used to rely on that (inside [Guard.with_no_yield]); it now uses the
    per-task {!ledger} below, which tolerates interleaved charges from
    other scheduler tasks. *)

(** {2 Per-task ledgers}

    A stack of open ledgers that every charge function also tallies
    into.  [push_ledger] opens one; [uncharge] subtracts exactly that
    ledger's charges (including cache hit/miss tallies) from the global
    counters — other tasks' charges interleaved by the scheduler are
    untouched, which is what lets Auto's attempt run {e without} a
    no-yield critical section.  The stack is task-local: the scheduler
    detaches it at every context switch via [save_task]/[restore_task]
    (threaded through [Guard.ctx]). *)

type ledger

val push_ledger : unit -> ledger
val pop_ledger : ledger -> unit
(** Pops down to and including the given ledger (tolerant of nested
    pushes abandoned by an exception). *)

val uncharge : ledger -> unit
(** Subtract the ledger's tallies from the global counters and from any
    still-open enclosing ledgers (so a nested attempt's aborted work is
    not uncharged twice).  Cache contents stay warm. *)

type task_io
(** The detached ledger stack of a suspended task. *)

val empty_task : task_io
val save_task : unit -> task_io
val restore_task : task_io -> unit

val simulated_seconds : unit -> float
(** Simulated elapsed I/O time since the last [reset]. *)
