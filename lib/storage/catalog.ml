open Nra_relational

type indexes = {
  mutable hash : (string list * Hash_index.t) list;
      (* column names (index order) * index *)
  mutable sorted : (string list * Sorted_index.t) list;
}

type entry = { table : Table.t; idx : indexes; gen : int }

(* [gen] is the catalog-wide content version: bumped on every register,
   DML row replacement, and drop.  Consumers that cache whole-query
   derived data (the nra.server plan cache) compare it instead of
   tracking every table they touched. *)
type t = { tbl : (string, entry) Hashtbl.t; mutable gen : int }

let create () = { tbl = Hashtbl.create 16; gen = 0 }

let positions_of table cols =
  let schema = Table.schema table in
  List.map
    (fun c ->
      match Schema.find_opt schema c with
      | Some i -> i
      | None ->
          invalid_arg
            (Printf.sprintf "index on %s: unknown column %s"
               (Table.name table) c))
    cols
  |> Array.of_list

let register t table =
  let name = Table.name table in
  t.gen <- t.gen + 1;
  let idx = { hash = []; sorted = [] } in
  let key_cols = Table.key_columns table in
  idx.hash <-
    [ (key_cols, Hash_index.build (Table.relation table)
                   (Table.key_positions table)) ];
  let gen =
    match Hashtbl.find_opt t.tbl name with Some e -> e.gen + 1 | None -> 0
  in
  Hashtbl.replace t.tbl name { table; idx; gen }

(* exposed below, used by DML *)

let entry t name =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> e
  | None -> raise Not_found

let check_key_unique table =
  let keys = Table.key_positions table in
  let rows = Relation.rows (Table.relation table) in
  let seen = Hashtbl.create (Array.length rows) in
  Array.iter
    (fun row ->
      let k = Row.project_arr row keys in
      let h = Row.hash k in
      if Hashtbl.find_all seen h |> List.exists (Row.equal k) then
        invalid_arg
          (Printf.sprintf "table %s: duplicate primary key %s"
             (Table.name table)
             (Format.asprintf "%a" Row.pp k));
      Hashtbl.add seen h k)
    rows

let update_rows t name rows =
  let e = entry t name in
  let table = Table.with_rows e.table rows in
  check_key_unique table;
  let rel = Table.relation table in
  let hash =
    List.map (fun (cols, _) -> (cols, Hash_index.build rel (positions_of table cols)))
      e.idx.hash
  in
  let sorted =
    List.map
      (fun (cols, _) -> (cols, Sorted_index.build rel (positions_of table cols)))
      e.idx.sorted
  in
  t.gen <- t.gen + 1;
  Hashtbl.replace t.tbl name { table; idx = { hash; sorted }; gen = e.gen + 1 }

let drop_table t name =
  if not (Hashtbl.mem t.tbl name) then raise Not_found;
  t.gen <- t.gen + 1;
  Hashtbl.remove t.tbl name

let generation t name =
  match Hashtbl.find_opt t.tbl name with Some e -> e.gen | None -> -1

let global_generation t = t.gen

let table t name = (entry t name).table
let table_opt t name = Option.map (fun e -> e.table) (Hashtbl.find_opt t.tbl name)
let mem t name = Hashtbl.mem t.tbl name

let tables t =
  Hashtbl.fold (fun _ e acc -> e.table :: acc) t.tbl []
  |> List.sort (fun a b -> String.compare (Table.name a) (Table.name b))

let create_hash_index t ~table:name cols =
  let e = entry t name in
  if not (List.mem_assoc cols e.idx.hash) then
    e.idx.hash <-
      (cols, Hash_index.build (Table.relation e.table)
               (positions_of e.table cols))
      :: e.idx.hash

let create_sorted_index t ~table:name cols =
  let e = entry t name in
  if not (List.mem_assoc cols e.idx.sorted) then
    e.idx.sorted <-
      (cols, Sorted_index.build (Table.relation e.table)
               (positions_of e.table cols))
      :: e.idx.sorted

let same_set a b =
  List.sort String.compare a = List.sort String.compare b

let hash_index t ~table:name cols =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some e ->
      List.find_opt (fun (ic, _) -> same_set ic cols) e.idx.hash
      |> Option.map snd

let hash_index_covering t ~table:name cols =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some e ->
      let subset ic = ic <> [] && List.for_all (fun c -> List.mem c cols) ic in
      e.idx.hash
      |> List.filter (fun (ic, _) -> subset ic)
      |> List.sort (fun (a, _) (b, _) ->
             Int.compare (List.length b) (List.length a))
      |> (function
           | [] -> None
           | (ic, i) :: _ -> Some (i, ic))

let sorted_index_on t ~table:name col =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some e ->
      List.find_opt
        (fun (ic, _) -> match ic with c :: _ -> c = col | [] -> false)
        e.idx.sorted
      |> Option.map snd

let drop_indexes t ~table:name =
  let e = entry t name in
  let key_cols = Table.key_columns e.table in
  e.idx.hash <- List.filter (fun (ic, _) -> same_set ic key_cols) e.idx.hash;
  e.idx.sorted <- []

let pp ppf t =
  let ts = tables t in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf tb ->
         Format.fprintf ppf "%s (%d rows) %a" (Table.name tb)
           (Table.cardinality tb) Schema.pp (Table.schema tb)))
    ts
