(* A paged buffer pool with a fixed frame budget.

   The engine's data always lives in OCaml heap memory — what this pool
   simulates is *residency*: which pages an engine with [frames] frames
   of buffer memory would have resident, and therefore which accesses
   hit (free) and which miss (a page-in charged through Iosim, possibly
   forcing a dirty writeback first).  Everything the cost model, the
   guards, the scheduler quanta, and the fault injector see goes through
   those Iosim charge sites, so bounded memory is visible to every
   layer above without any layer holding real 8 KB buffers.

   Disabled by default ([frames () = None]): the engine behaves exactly
   as before this pool existed.  Enable with [set_frames (Some n)],
   [--buffer-pages N] on the CLI, or the NRA_BUFFER_PAGES environment
   variable ("N" frames, or "32mb"-style budgets converted at the
   configured Iosim page size) — the latter is how CI runs the whole
   suite out-of-core.

   Global and single-threaded, like Iosim: worker domains never touch
   the pool.  The spill paths do run under the Domain pool, but workers
   walk partition data with [Spill.iter_raw] (pure heap reads, no pool
   traffic) and the owner replays the residency and charges at the join
   barrier with [Spill.account_consumed], in partition order — so the
   charge totals and the fault-draw sequence stay independent of the
   domain count (see docs/STORAGE.md). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  spilled_partitions : int;
  spilled_pages : int;
}

let zero_stats =
  {
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    spilled_partitions = 0;
    spilled_pages = 0;
  }

type meta = {
  key : string * int;
  mutable dirty : bool;
  mutable pins : int;
}

let frame_budget : int option ref = ref None

(* page identity: (owner, page number) interned to a dense int for the
   Lru recency list *)
let ids : (string * int, int) Hashtbl.t = Hashtbl.create 256
let next_id = ref 0
let metas : (int, meta) Hashtbl.t = Hashtbl.create 256
let lru = ref (Lru.create ~capacity:max_int)
let st = ref zero_stats

let enabled () = !frame_budget <> None
let frames () = !frame_budget
let stats () = !st

let reset () =
  Hashtbl.reset ids;
  Hashtbl.reset metas;
  next_id := 0;
  lru := Lru.create ~capacity:max_int;
  st := zero_stats

let set_frames n =
  reset ();
  frame_budget := Option.map (max 1) n

let id_of key =
  match Hashtbl.find_opt ids key with
  | Some i -> i
  | None ->
      let i = !next_id in
      incr next_id;
      Hashtbl.add ids key i;
      i

let resident key =
  match Hashtbl.find_opt ids key with
  | None -> false
  | Some i -> Hashtbl.mem metas i

(* Evict down to the frame budget: least-recently-used unpinned frames
   go first; a dirty victim is written back (one charged page) before
   the frame is reused.  If every frame is pinned the pool over-commits
   rather than deadlocking — pins here are short (one spill page while
   its rows are consumed), so this is the pragmatic choice a
   simulation can make where a real pool would block. *)
let rec enforce () =
  match !frame_budget with
  | None -> ()
  | Some f ->
      if Hashtbl.length metas > f then begin
        match
          Lru.find_victim !lru (fun i -> (Hashtbl.find metas i).pins = 0)
        with
        | None -> ()
        | Some i ->
            let m = Hashtbl.find metas i in
            if m.dirty then begin
              Fault.with_retries (fun () -> Iosim.charge_page_out 1);
              st := { !st with writebacks = !st.writebacks + 1 }
            end;
            Lru.remove !lru i;
            Hashtbl.remove metas i;
            st := { !st with evictions = !st.evictions + 1 };
            enforce ()
      end

(* make [key] resident and most-recent; [dirty] marks the frame,
   [charge] pays for the page-in on a miss *)
let touch ~dirty ~charge key =
  if enabled () then begin
    let i = id_of key in
    match Hashtbl.find_opt metas i with
    | Some m ->
        st := { !st with hits = !st.hits + 1 };
        ignore (Lru.touch !lru i);
        if dirty then m.dirty <- true
    | None ->
        st := { !st with misses = !st.misses + 1 };
        if charge then Fault.with_retries (fun () -> Iosim.charge_page_in 1);
        ignore (Lru.touch !lru i);
        Hashtbl.replace metas i { key; dirty; pins = 0 };
        enforce ()
  end

let read key = touch ~dirty:false ~charge:true key

(* a blind write allocates the frame dirty without reading the old
   contents back in — the cost is deferred to the writeback *)
let write key = touch ~dirty:true ~charge:false key

let pin key =
  if enabled () then begin
    if not (resident key) then read key;
    let m = Hashtbl.find metas (id_of key) in
    m.pins <- m.pins + 1
  end

let unpin key =
  if enabled () then
    match Hashtbl.find_opt ids key with
    | None -> ()
    | Some i -> (
        match Hashtbl.find_opt metas i with
        | Some m -> m.pins <- max 0 (m.pins - 1)
        | None -> ())

(* free a page whose data is dead: no writeback, the frame just
   becomes available *)
let drop key =
  match Hashtbl.find_opt ids key with
  | None -> ()
  | Some i ->
      Lru.remove !lru i;
      Hashtbl.remove metas i;
      Hashtbl.remove ids key

(* ---------- spill partitions ----------

   A spill partition is an append-only run of pages holding rows that
   exceeded the frame budget — the unit the grace hash join and the
   spillable nest write out and later consume partition-at-a-time.  The
   rows themselves stay on the OCaml heap (this is a simulation); what
   the pool tracks is that the partition's pages were *written* (dirty
   frames, written back as the budget forces them out) and later *read*
   (hits if still resident — which is exactly how a hybrid join's
   lucky partitions become free — misses charged otherwise). *)

module Spill = struct
  (* A page is stored columnar ([Batch.pack]: typed unboxed columns +
     null bitmaps, reconstructed exactly on re-read) when the columnar
     core is enabled at flush time, row-wise otherwise.  Page counts,
     charges and fault draws are independent of the format — only the
     in-heap representation of the spilled data changes. *)
  type page =
    | Prows of Nra_relational.Row.t array
    | Packed of Nra_relational.Batch.packed

  let iter_page f = function
    | Prows rows -> Array.iter f rows
    | Packed p -> Nra_relational.Batch.packed_iter p f

  type t = {
    tag : string;
    mutable page_data : page list; (* newest first until [finish] *)
    mutable finished : page array;
    mutable buf : Nra_relational.Row.t list;
    mutable buf_len : int;
    mutable n_pages : int;
    mutable rows : int;
  }

  let seq = ref 0

  let create label =
    incr seq;
    {
      tag = Printf.sprintf "spill:%s#%d" label !seq;
      page_data = [];
      finished = [||];
      buf = [];
      buf_len = 0;
      n_pages = 0;
      rows = 0;
    }

  let length t = t.rows

  let flush_page t =
    if t.buf_len > 0 then begin
      if t.n_pages = 0 then
        st := { !st with spilled_partitions = !st.spilled_partitions + 1 };
      let rows = Array.of_list (List.rev t.buf) in
      let page =
        if Nra_relational.Batch.enabled () then
          match Nra_relational.Batch.pack rows with
          | Some p -> Packed p
          | None -> Prows rows
        else Prows rows
      in
      t.page_data <- page :: t.page_data;
      t.buf <- [];
      t.buf_len <- 0;
      write (t.tag, t.n_pages);
      t.n_pages <- t.n_pages + 1;
      st := { !st with spilled_pages = !st.spilled_pages + 1 }
    end

  let add t row =
    t.buf <- row :: t.buf;
    t.buf_len <- t.buf_len + 1;
    t.rows <- t.rows + 1;
    if t.buf_len >= (Iosim.config ()).Iosim.rows_per_page then flush_page t

  let finish t =
    flush_page t;
    t.finished <- Array.of_list (List.rev t.page_data);
    t.page_data <- []

  let iter t f =
    Array.iteri
      (fun p rows ->
        let key = (t.tag, p) in
        pin key;
        Fun.protect
          ~finally:(fun () -> unpin key)
          (fun () -> iter_page f rows))
      t.finished

  (* pure data walk for worker domains: no pool residency, no charges,
     no fault draws.  The owner must replay the partition's page reads
     with [account_consumed] at the join barrier. *)
  let iter_raw t f = Array.iter (fun page -> iter_page f page) t.finished

  let free t =
    for p = 0 to t.n_pages - 1 do
      drop (t.tag, p)
    done;
    t.finished <- [||];
    t.page_data <- []

  let pages t = t.n_pages

  (* owner-side replay of a partition a worker consumed with
     [iter_raw]: pin/unpin every page in order (hits if resident,
     page-in charges + fault draws otherwise — exactly what a serial
     [iter] would have paid), then free the dead pages.  Called at the
     join barrier in partition order, so charges and faults land in the
     same sequence at every pool size. *)
  let account_consumed t =
    Array.iteri
      (fun p _ ->
        let key = (t.tag, p) in
        pin key;
        unpin key)
      t.finished;
    free t
end

(* NRA_BUFFER_PAGES: "N" frames, "0" disabled, or a "<X>mb" memory
   budget converted at the configured Iosim page size *)
let () =
  Iosim.on_reset reset;
  match Sys.getenv_opt "NRA_BUFFER_PAGES" with
  | None -> ()
  | Some spec -> (
      let spec = String.trim (String.lowercase_ascii spec) in
      match int_of_string_opt spec with
      | Some n when n > 0 -> frame_budget := Some n
      | Some _ -> ()
      | None ->
          if String.length spec > 2
             && String.sub spec (String.length spec - 2) 2 = "mb"
          then
            match
              float_of_string_opt
                (String.sub spec 0 (String.length spec - 2))
            with
            | Some mb when mb > 0.0 ->
                frame_budget := Some (Iosim.frames_for_mb mb)
            | _ -> ())
