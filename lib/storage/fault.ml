exception Io_fault of string

exception Crash of string
(* A simulated power loss at a fault point: unlike Io_fault it is NOT
   caught by [with_retries] (you cannot retry a dead process) and must
   not be caught by any in-path cleanup handler — the WAL recovery
   protocol (lib/storage/wal.ml) is what survives it. *)

type config = {
  probability : float;
  seed : int;
  max_retries : int;
  backoff_ms : float;
  alloc_probability : float;
}

let default_config =
  {
    probability = 0.0;
    seed = 0;
    max_retries = 6;
    backoff_ms = 0.05;
    alloc_probability = 0.0;
  }

type stats = {
  injected : int;
  retried : int;
  escaped : int;
  backoff_ms_total : float;
  alloc_injected : int;
}

let zero_stats =
  {
    injected = 0;
    retried = 0;
    escaped = 0;
    backoff_ms_total = 0.0;
    alloc_injected = 0;
  }

let current = ref default_config
let st = ref zero_stats

(* kill-at-fault-point harness state (see below) *)
let draw_count = ref 0
let crash_armed : int option ref = ref None
let fault_armed : int option ref = ref None

(* splitmix64: every draw is a function of (seed, draw index) only, so a
   fault trace is reproducible from the config alone *)
let prng_state = ref 0L

let next_u64 () =
  let open Int64 in
  prng_state := add !prng_state 0x9E3779B97F4A7C15L;
  let z = !prng_state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let draw () =
  (* uniform in [0, 1) from the top 53 bits *)
  Int64.to_float (Int64.shift_right_logical (next_u64 ()) 11)
  /. 9007199254740992.0

let config () = !current

let enabled () =
  !current.probability > 0.0 || !current.alloc_probability > 0.0

let configure ?seed ?max_retries ?backoff_ms ?alloc_probability probability =
  let c = !current in
  let seed = Option.value seed ~default:c.seed in
  let clamp p = Float.max 0.0 (Float.min 1.0 p) in
  current :=
    {
      probability = clamp probability;
      seed;
      max_retries = Option.value max_retries ~default:c.max_retries;
      backoff_ms = Option.value backoff_ms ~default:c.backoff_ms;
      alloc_probability =
        clamp (Option.value alloc_probability ~default:c.alloc_probability);
    };
  prng_state := Int64.of_int seed;
  st := zero_stats;
  draw_count := 0;
  crash_armed := None;
  fault_armed := None

let disable () =
  current := { !current with probability = 0.0; alloc_probability = 0.0 }

let stats () = !st
let reset_stats () = st := zero_stats

(* ---------- the deterministic kill-at-fault-point harness ----------

   Every [inject] call is a numbered fault point, counted even when
   injection is disabled.  The crash-recovery corpus (test/test_wal.ml)
   enumerates a statement's points once, then re-runs it with a crash —
   or a guaranteed one-shot fault — armed at each point in turn.  Both
   armings are one-shot: they disarm as they fire, so the unwound
   run's remaining charges are unaffected. *)

let draws () = !draw_count
let arm_crash ~at = crash_armed := Some at
let arm_fault ~at = fault_armed := Some at

let disarm () =
  crash_armed := None;
  fault_armed := None

let inject site =
  incr draw_count;
  (match !crash_armed with
  | Some n when !draw_count >= n ->
      crash_armed := None;
      raise (Crash site)
  | _ -> ());
  (match !fault_armed with
  | Some n when !draw_count >= n ->
      fault_armed := None;
      st := { !st with injected = !st.injected + 1 };
      raise (Io_fault site)
  | _ -> ());
  let c = !current in
  if c.probability > 0.0 && draw () < c.probability then begin
    st := { !st with injected = !st.injected + 1 };
    raise (Io_fault site)
  end

(* Allocation pressure: a seeded decision that the active row budget
   just exhausted.  This module cannot see (or depend on) the guard, so
   it only answers the question; the caller — an evaluator about to
   materialize an intermediate — raises the actual
   [Guard.Killed (Budget_exceeded Rows)], making the unwind
   byte-for-byte the one a real exhaustion takes. *)
let alloc_should_fail () =
  let c = !current in
  c.alloc_probability > 0.0
  && draw () < c.alloc_probability
  && begin
       st := { !st with alloc_injected = !st.alloc_injected + 1 };
       true
     end

(* The backoff sleeper is pluggable.  The default waits out the backoff
   in NO time at all: backoff is an I/O-scheduling delay, and this
   engine's time is simulated — a real [Unix.sleepf] here (the PR 2
   behavior) blocked the whole process for every retry storm.  The
   cooperative scheduler substitutes a sleeper that suspends only the
   retrying task until the virtual clock passes the backoff, so
   concurrent statements keep the (virtual) disk busy meanwhile; the
   cumulative pause is always recorded in [backoff_ms_total]. *)
let default_sleeper (_ms : float) = ()
let sleeper = ref default_sleeper
let set_sleeper f = sleeper := f

let with_retries f =
  let c = !current in
  let rec go attempt =
    try f ()
    with Io_fault _ as e ->
      if attempt >= c.max_retries then begin
        st := { !st with escaped = !st.escaped + 1 };
        raise e
      end
      else begin
        let pause = c.backoff_ms *. (2.0 ** float_of_int attempt) in
        st :=
          {
            !st with
            retried = !st.retried + 1;
            backoff_ms_total = !st.backoff_ms_total +. pause;
          };
        !sleeper pause;
        go (attempt + 1)
      end
  in
  go 0

(* CI enables injection for a whole `dune runtest` via the environment:
   NRA_FAULT_INJECT="p", "p:seed", "p:seed:retries", or
   "p:seed:retries:palloc" (the last field adds allocation-pressure
   faults — row-budget exhaustion under any finite row budget) *)
let () =
  match Sys.getenv_opt "NRA_FAULT_INJECT" with
  | None -> ()
  | Some spec -> (
      match String.split_on_char ':' spec with
      | [ p ] -> (
          match float_of_string_opt p with
          | Some p -> configure p
          | None -> ())
      | [ p; seed ] -> (
          match (float_of_string_opt p, int_of_string_opt seed) with
          | Some p, Some seed -> configure ~seed p
          | _ -> ())
      | [ p; seed; retries ] -> (
          match
            ( float_of_string_opt p,
              int_of_string_opt seed,
              int_of_string_opt retries )
          with
          | Some p, Some seed, Some max_retries ->
              configure ~seed ~max_retries p
          | _ -> ())
      | p :: seed :: retries :: palloc :: _ -> (
          match
            ( float_of_string_opt p,
              int_of_string_opt seed,
              int_of_string_opt retries,
              float_of_string_opt palloc )
          with
          | Some p, Some seed, Some max_retries, Some alloc_probability ->
              configure ~seed ~max_retries ~alloc_probability p
          | _ -> ())
      | [] -> ())
