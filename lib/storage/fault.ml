exception Io_fault of string

type config = {
  probability : float;
  seed : int;
  max_retries : int;
  backoff_ms : float;
}

let default_config =
  { probability = 0.0; seed = 0; max_retries = 6; backoff_ms = 0.05 }

type stats = {
  injected : int;
  retried : int;
  escaped : int;
  backoff_ms_total : float;
}

let zero_stats =
  { injected = 0; retried = 0; escaped = 0; backoff_ms_total = 0.0 }

let current = ref default_config
let st = ref zero_stats

(* splitmix64: every draw is a function of (seed, draw index) only, so a
   fault trace is reproducible from the config alone *)
let prng_state = ref 0L

let next_u64 () =
  let open Int64 in
  prng_state := add !prng_state 0x9E3779B97F4A7C15L;
  let z = !prng_state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let draw () =
  (* uniform in [0, 1) from the top 53 bits *)
  Int64.to_float (Int64.shift_right_logical (next_u64 ()) 11)
  /. 9007199254740992.0

let config () = !current
let enabled () = !current.probability > 0.0

let configure ?seed ?max_retries ?backoff_ms probability =
  let c = !current in
  let seed = Option.value seed ~default:c.seed in
  current :=
    {
      probability = Float.max 0.0 (Float.min 1.0 probability);
      seed;
      max_retries = Option.value max_retries ~default:c.max_retries;
      backoff_ms = Option.value backoff_ms ~default:c.backoff_ms;
    };
  prng_state := Int64.of_int seed;
  st := zero_stats

let disable () = current := { !current with probability = 0.0 }

let stats () = !st
let reset_stats () = st := zero_stats

let inject site =
  let c = !current in
  if c.probability > 0.0 && draw () < c.probability then begin
    st := { !st with injected = !st.injected + 1 };
    raise (Io_fault site)
  end

let with_retries f =
  let c = !current in
  let rec go attempt =
    try f ()
    with Io_fault _ as e ->
      if attempt >= c.max_retries then begin
        st := { !st with escaped = !st.escaped + 1 };
        raise e
      end
      else begin
        let pause = c.backoff_ms *. (2.0 ** float_of_int attempt) in
        st :=
          {
            !st with
            retried = !st.retried + 1;
            backoff_ms_total = !st.backoff_ms_total +. pause;
          };
        if pause > 0.0 then Unix.sleepf (pause /. 1000.0);
        go (attempt + 1)
      end
  in
  go 0

(* CI enables injection for a whole `dune runtest` via the environment:
   NRA_FAULT_INJECT="p", "p:seed", or "p:seed:retries" *)
let () =
  match Sys.getenv_opt "NRA_FAULT_INJECT" with
  | None -> ()
  | Some spec -> (
      match String.split_on_char ':' spec with
      | [ p ] -> (
          match float_of_string_opt p with
          | Some p -> configure p
          | None -> ())
      | [ p; seed ] -> (
          match (float_of_string_opt p, int_of_string_opt seed) with
          | Some p, Some seed -> configure ~seed p
          | _ -> ())
      | p :: seed :: retries :: _ -> (
          match
            ( float_of_string_opt p,
              int_of_string_opt seed,
              int_of_string_opt retries )
          with
          | Some p, Some seed, Some max_retries ->
              configure ~seed ~max_retries p
          | _ -> ())
      | [] -> ())
