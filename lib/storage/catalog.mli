(** The catalog: a mutable registry of tables and their indexes.

    Indexes are named by the table and column list they cover; the
    executors look indexes up by coverage, mirroring how the paper's
    "System A" picks an index on the correlated/linked attributes when
    one exists.  Primary-key hash indexes are built automatically on
    registration. *)

open Nra_relational

type t

val create : unit -> t

val register : t -> Table.t -> unit
(** Add (or replace) a table; builds its primary-key hash index.
    Existing secondary indexes of a replaced table are dropped. *)

val update_rows : t -> string -> Row.t array -> unit
(** Replace a table's contents (revalidating types, NOT NULL and key
    uniqueness) and rebuild {e all} its indexes, secondary ones
    included.  The DML path.
    @raise Not_found if the table is absent
    @raise Invalid_argument if the rows violate the schema or duplicate
    a primary key. *)

val drop_table : t -> string -> unit
(** @raise Not_found if absent. *)

val table : t -> string -> Table.t
(** @raise Not_found if absent. *)

val table_opt : t -> string -> Table.t option
val tables : t -> Table.t list
val mem : t -> string -> bool

val generation : t -> string -> int
(** Monotonic per-table content version: 0 on first registration,
    bumped every time the table is re-registered or its rows are
    replaced by DML; [-1] if the table is absent.  Consumers that cache
    derived data (e.g. [nra.stats] statistics) compare generations to
    detect staleness. *)

val global_generation : t -> int
(** Monotonic catalog-wide content version: bumped on every table
    registration, DML row replacement, and drop.  Whole-query caches
    (the [nra.server] plan cache) key on this instead of enumerating the
    tables a plan touches. *)

(** {1 Indexes} *)

val create_hash_index : t -> table:string -> string list -> unit
val create_sorted_index : t -> table:string -> string list -> unit

val hash_index : t -> table:string -> string list -> Hash_index.t option
(** Look up a hash index on exactly these columns (order-insensitive). *)

val hash_index_covering : t -> table:string -> string list ->
  (Hash_index.t * string list) option
(** A hash index whose column set is a non-empty subset of the given
    columns — usable for a partial-key probe followed by a residual
    filter.  Prefers the widest such index.  Returns the index and its
    column list in index position order. *)

val sorted_index_on : t -> table:string -> string -> Sorted_index.t option
(** A sorted index whose first column is the given one. *)

val drop_indexes : t -> table:string -> unit
(** Drop secondary indexes (keeps the automatic primary-key index). *)

val pp : Format.formatter -> t -> unit
