(** Memory governor: a per-statement ledger over staged intermediates.

    Evaluators stage flat intermediates (the pre-nest wide staging,
    post-processing projection/aggregation buffers, sub-block
    materializations) that the buffer pool's frame budget historically
    never saw.  {!with_staged} brackets each one:

    - its footprint (rows x schema width x 8-byte value slots) is
      charged to a live-bytes ledger with a high-water mark, surfaced
      in [explain --costs] and [query --time];
    - when the buffer pool is enabled and the staging exceeds the
      frame budget, its rows are routed through a {!Bufpool.Spill}
      partition and read straight back — byte-identical (spill
      preserves order), with the page traffic charged and fault-drawn
      like any other spill I/O;
    - stagings kept in memory record {!field:max_resident_pages}, so
      tests can assert no unspilled intermediate ever exceeded the
      budget.

    A residency simulation like the rest of the storage layer: rows
    stay on the OCaml heap, the charges are what is real.  Global and
    single-threaded; call owner-side only. *)

type stats = {
  stagings : int;  (** intermediates charged since reset *)
  staged_rows : int;
  high_water_bytes : int;  (** peak simultaneous live staged bytes *)
  spilled_stagings : int;  (** stagings routed through [Bufpool.Spill] *)
  spilled_rows : int;
  max_resident_pages : int;
      (** largest staging kept unspilled, in pages — never exceeds the
          frame budget while the pool is enabled *)
}

val stats : unit -> stats
val live_bytes : unit -> int

val reset : unit -> unit
(** Zero the ledger.  Also runs on every {!Iosim.reset}. *)

val charge : rows:int -> width:int -> unit
val release : rows:int -> width:int -> unit

val with_charged : rows:int -> width:int -> (unit -> 'a) -> 'a
(** Charge an intermediate's footprint for the dynamic extent of [f]
    (released on any exit).  Used for intermediates that are observed
    but not re-routable (e.g. the wide join product while it is being
    nested). *)

val with_staged :
  label:string ->
  Nra_relational.Relation.t ->
  (Nra_relational.Relation.t -> 'a) ->
  'a
(** [with_staged ~label rel f] — charge the staged relation and hand
    [f] either [rel] itself (fits the budget, counted resident) or its
    spill round-trip (over budget: written to a spill partition and
    read back in order, page traffic charged).  The relation [f]
    receives is row-for-row identical either way. *)

val over_budget : int -> bool
(** Whether a staging of that many rows exceeds the enabled frame
    budget (always false when the pool is disabled). *)
