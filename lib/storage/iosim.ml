type config = {
  rows_per_page : int;
  t_seq_ms : float;
  t_rand_ms : float;
  t_fetch_ms : float;
  cache_pages : int;
}

(* t_fetch is calibrated from the paper's own numbers: its Query 1 run
   fetches a 165K-tuple intermediate result in ≈19 s of the reported
   elapsed time, i.e. ≈0.12 ms per tuple. *)
let default_config =
  {
    rows_per_page = 100;
    t_seq_ms = 0.1;
    t_rand_ms = 1.0;
    t_fetch_ms = 0.12;
    (* ~3% of a scale-0.05 database (≈5K pages), mirroring the paper's
       32 MB cache over 1 GB of data *)
    cache_pages = 160;
  }

let current = ref default_config
let cache = ref (Lru.create ~capacity:default_config.cache_pages)
let hits = ref 0
let misses = ref 0
let config () = !current

let set_config c =
  current := c;
  cache := Lru.create ~capacity:c.cache_pages

type counters = {
  seq_pages : int;
  rand_pages : int;
  fetched_rows : int;
}

let state = ref { seq_pages = 0; rand_pages = 0; fetched_rows = 0 }

let reset () =
  state := { seq_pages = 0; rand_pages = 0; fetched_rows = 0 };
  Lru.clear !cache;
  hits := 0;
  misses := 0

let pages rows =
  let rpp = !current.rows_per_page in
  (rows + rpp - 1) / rpp

(* Fault.inject sits at the head of every charge function, before any
   counter or cache mutation, so a Fault.with_retries re-run never
   double-charges *)

let add_rand n =
  state := { !state with rand_pages = !state.rand_pages + n }

let charge_scan_rows rows =
  Fault.inject "scan";
  state := { !state with seq_pages = !state.seq_pages + pages rows }

let charge_probe ~matches =
  Fault.inject "probe";
  state := { !state with rand_pages = !state.rand_pages + 1 + matches }

let charge_random_pages n =
  Fault.inject "read";
  add_rand n

let charge_row_fetch ~table ~row_id =
  Fault.inject "fetch";
  let page =
    Hashtbl.hash (table, row_id / !current.rows_per_page)
  in
  if Lru.touch !cache page then incr hits
  else begin
    incr misses;
    add_rand 1
  end

let cache_hits () = !hits
let cache_misses () = !misses

let charge_fetch_rows rows =
  Fault.inject "transfer";
  state := { !state with fetched_rows = !state.fetched_rows + rows }

let counters () = !state

(* Parallel-region ledger merge (nra.pool): workers tally would-be
   charges locally and the owner deposits the sum here at the join
   barrier.  Deliberately no Fault.inject — every charge site already
   drew its fault owner-side, and a second draw would make the fault
   sequence depend on the domain count. *)
let absorb (c : counters) =
  state :=
    {
      seq_pages = !state.seq_pages + c.seq_pages;
      rand_pages = !state.rand_pages + c.rand_pages;
      fetched_rows = !state.fetched_rows + c.fetched_rows;
    }

(* aborted-attempt rollback: Auto's kill-and-fallback undoes the killed
   plan's charges so the simulation reflects only work that produced the
   answer.  Cache contents are deliberately kept — a real buffer pool
   stays warm after an aborted query *)

type checkpoint = { cp_state : counters; cp_hits : int; cp_misses : int }

let checkpoint () = { cp_state = !state; cp_hits = !hits; cp_misses = !misses }

let rollback cp =
  state := cp.cp_state;
  hits := cp.cp_hits;
  misses := cp.cp_misses

let simulated_seconds () =
  let c = !current and s = !state in
  (float_of_int s.seq_pages *. c.t_seq_ms
  +. (float_of_int s.rand_pages *. c.t_rand_ms)
  +. (float_of_int s.fetched_rows *. c.t_fetch_ms))
  /. 1000.0
