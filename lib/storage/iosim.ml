type config = {
  rows_per_page : int;
  t_seq_ms : float;
  t_rand_ms : float;
  t_fetch_ms : float;
  cache_pages : int;
  page_size_kb : float;
}

(* t_fetch is calibrated from the paper's own numbers: its Query 1 run
   fetches a 165K-tuple intermediate result in ≈19 s of the reported
   elapsed time, i.e. ≈0.12 ms per tuple. *)
let default_config =
  {
    rows_per_page = 100;
    t_seq_ms = 0.1;
    t_rand_ms = 1.0;
    t_fetch_ms = 0.12;
    (* ~3% of a scale-0.05 database (≈5K pages), mirroring the paper's
       32 MB cache over 1 GB of data *)
    cache_pages = 160;
    (* the 2005 commodity default; --page-size-kb overrides it, so a
       memory budget given in MB (the paper's "32 MB buffer cache")
       converts to an exact frame count instead of a hard-coded one *)
    page_size_kb = 8.0;
  }

let current = ref default_config
let cache = ref (Lru.create ~capacity:default_config.cache_pages)
let hits = ref 0
let misses = ref 0
let config () = !current

let set_config c =
  current := c;
  cache := Lru.create ~capacity:c.cache_pages

type counters = {
  seq_pages : int;
  rand_pages : int;
  fetched_rows : int;
}

let state = ref { seq_pages = 0; rand_pages = 0; fetched_rows = 0 }

(* Consumers above this module (the nra.storage buffer pool) register
   here so [reset] clears their residency and counters too: suites that
   measure "cold" charges per run call [reset] between runs and must
   get a cold pool as well as zeroed counters. *)
let reset_hooks : (unit -> unit) list ref = ref []
let on_reset f = reset_hooks := f :: !reset_hooks

let reset () =
  state := { seq_pages = 0; rand_pages = 0; fetched_rows = 0 };
  Lru.clear !cache;
  hits := 0;
  misses := 0;
  List.iter (fun f -> f ()) !reset_hooks

let pages rows =
  let rpp = !current.rows_per_page in
  (rows + rpp - 1) / rpp

(* Per-task I/O ledgers: a stack of open ledgers that every charge also
   tallies into.  Auto's kill-and-fallback pushes one around the
   attempt; on a kill, [uncharge] subtracts exactly the attempt's own
   charges from the globals — no global snapshot, so other tasks'
   charges interleaved by the scheduler are untouched.  The stack is
   task-local state: the scheduler detaches it with the guard context
   ([save_task]/[restore_task]) at every context switch. *)

type ledger = {
  mutable l_seq : int;
  mutable l_rand : int;
  mutable l_fetched : int;
  mutable l_hits : int;
  mutable l_misses : int;
}

let ledgers : ledger list ref = ref []

let tally ~seq ~rand ~fetched =
  match !ledgers with
  | [] -> ()
  | ls ->
      List.iter
        (fun l ->
          l.l_seq <- l.l_seq + seq;
          l.l_rand <- l.l_rand + rand;
          l.l_fetched <- l.l_fetched + fetched)
        ls

let push_ledger () =
  let l = { l_seq = 0; l_rand = 0; l_fetched = 0; l_hits = 0; l_misses = 0 } in
  ledgers := l :: !ledgers;
  l

let pop_ledger l =
  (* tolerant: drops down to and including [l], so an exception that
     unwound past a nested push cannot leave stale ledgers live *)
  let rec drop = function
    | [] -> []
    | x :: rest -> if x == l then rest else drop rest
  in
  ledgers := drop !ledgers

let uncharge l =
  state :=
    {
      seq_pages = !state.seq_pages - l.l_seq;
      rand_pages = !state.rand_pages - l.l_rand;
      fetched_rows = !state.fetched_rows - l.l_fetched;
    };
  hits := !hits - l.l_hits;
  misses := !misses - l.l_misses;
  (* enclosing ledgers (a nested Auto attempt) drop them too, so an
     outer uncharge cannot subtract the same work twice *)
  List.iter
    (fun o ->
      o.l_seq <- o.l_seq - l.l_seq;
      o.l_rand <- o.l_rand - l.l_rand;
      o.l_fetched <- o.l_fetched - l.l_fetched;
      o.l_hits <- o.l_hits - l.l_hits;
      o.l_misses <- o.l_misses - l.l_misses)
    !ledgers

(* stale ledgers must not survive a world reset *)
let () = on_reset (fun () -> ledgers := [])

type task_io = ledger list

let empty_task = []

let save_task () =
  let s = !ledgers in
  ledgers := [];
  s

let restore_task s = ledgers := s

let frames_for_mb mb =
  let kb_per_page = Float.max 0.125 !current.page_size_kb in
  max 1 (int_of_float (Float.ceil (mb *. 1024.0 /. kb_per_page)))

(* Fault.inject sits at the head of every charge function, before any
   counter or cache mutation, so a Fault.with_retries re-run never
   double-charges *)

let add_rand n =
  tally ~seq:0 ~rand:n ~fetched:0;
  state := { !state with rand_pages = !state.rand_pages + n }

let charge_scan_rows rows =
  Fault.inject "scan";
  let n = pages rows in
  tally ~seq:n ~rand:0 ~fetched:0;
  state := { !state with seq_pages = !state.seq_pages + n }

let charge_probe ~matches =
  Fault.inject "probe";
  tally ~seq:0 ~rand:(1 + matches) ~fetched:0;
  state := { !state with rand_pages = !state.rand_pages + 1 + matches }

let charge_random_pages n =
  Fault.inject "read";
  add_rand n

let charge_row_fetch ~table ~row_id =
  Fault.inject "fetch";
  let page =
    Hashtbl.hash (table, row_id / !current.rows_per_page)
  in
  if Lru.touch !cache page then begin
    incr hits;
    List.iter (fun l -> l.l_hits <- l.l_hits + 1) !ledgers
  end
  else begin
    incr misses;
    List.iter (fun l -> l.l_misses <- l.l_misses + 1) !ledgers;
    add_rand 1
  end

let cache_hits () = !hits
let cache_misses () = !misses

let charge_fetch_rows rows =
  Fault.inject "transfer";
  tally ~seq:0 ~rand:0 ~fetched:rows;
  state := { !state with fetched_rows = !state.fetched_rows + rows }

(* Buffer-pool page traffic (nra.storage Bufpool) and WAL appends.
   All three are sequential-page charges: a page-in reads a spill
   partition (or a table extent) front to back, a writeback flushes one
   frame to its partition file, and the log is append-only.  Distinct
   fault sites keep the traffic classes tellable apart in fault traces
   and in the crash corpus. *)

let charge_page_in n =
  Fault.inject "page-in";
  tally ~seq:n ~rand:0 ~fetched:0;
  state := { !state with seq_pages = !state.seq_pages + n }

let charge_page_out n =
  Fault.inject "page-out";
  tally ~seq:n ~rand:0 ~fetched:0;
  state := { !state with seq_pages = !state.seq_pages + n }

let charge_wal_append ~pages:n =
  Fault.inject "wal";
  tally ~seq:n ~rand:0 ~fetched:0;
  state := { !state with seq_pages = !state.seq_pages + n }

let counters () = !state

(* Parallel-region ledger merge (nra.pool): workers tally would-be
   charges locally and the owner deposits the sum here at the join
   barrier.  Deliberately no Fault.inject — every charge site already
   drew its fault owner-side, and a second draw would make the fault
   sequence depend on the domain count. *)
let absorb (c : counters) =
  tally ~seq:c.seq_pages ~rand:c.rand_pages ~fetched:c.fetched_rows;
  state :=
    {
      seq_pages = !state.seq_pages + c.seq_pages;
      rand_pages = !state.rand_pages + c.rand_pages;
      fetched_rows = !state.fetched_rows + c.fetched_rows;
    }

(* aborted-attempt rollback: Auto's kill-and-fallback undoes the killed
   plan's charges so the simulation reflects only work that produced the
   answer.  Cache contents are deliberately kept — a real buffer pool
   stays warm after an aborted query *)

type checkpoint = { cp_state : counters; cp_hits : int; cp_misses : int }

let checkpoint () = { cp_state = !state; cp_hits = !hits; cp_misses = !misses }

let rollback cp =
  state := cp.cp_state;
  hits := cp.cp_hits;
  misses := cp.cp_misses

let simulated_seconds () =
  let c = !current and s = !state in
  (float_of_int s.seq_pages *. c.t_seq_ms
  +. (float_of_int s.rand_pages *. c.t_rand_ms)
  +. (float_of_int s.fetched_rows *. c.t_fetch_ms))
  /. 1000.0
