(* Write-ahead log with undo.

   The engine mutates the catalog in place (Catalog.update_rows /
   register / drop_table), so durability here means: before any
   mutation is applied, a physical log record holding the before- and
   after-image is appended (log-before-write), and the statement ends
   with a Commit record.  If execution dies mid-statement:

   - an ordinary escaped fault (Fault.Io_fault past its retry budget)
     is handled inline: the facade calls [abort], which re-applies the
     before-images in reverse order and appends an Abort record — the
     same pre-statement atomicity DML always had, now driven by the
     log instead of ad-hoc snapshots;

   - a power-loss crash (Fault.Crash from the kill-at-fault-point
     harness) skips all cleanup by design.  The catalog is left in
     whatever torn state the crash produced, and [recover] repairs it:
     REDO every committed statement's ops in log order, then UNDO every
     unfinished statement's ops in reverse order.  Both passes are
     idempotent (images are absolute, not deltas), so a crash during
     recovery just means running [recover] again.

   Like everything in the simulation the log "disk" is process memory;
   what is real is the charging: every append pays sequential pages
   through Iosim.charge_wal_append before the record becomes durable,
   and that charge site draws from the fault injector.  A fault or
   crash at the append therefore hits *before* the record exists,
   which is exactly the torn-log case recovery must tolerate.  The
   rollback paths ([abort], [recover]) never charge and never draw —
   undo must not itself fail. *)

open Nra_relational

type op =
  | Update of { table : string; before : Row.t array; after : Row.t array }
  | Create of Table.t
  | Drop of Table.t

type record =
  | Begin of int
  | Op of int * op
  | Commit of int
  | Abort of int

type stmt = int

(* newest record first; replay reverses *)
let log : record list ref = ref []
let next = ref 0
let appended = ref 0

let records () = !appended

let reset () =
  log := [];
  next := 0;
  appended := 0

(* Charge first, append second: if the charge faults (or the crash
   harness fires there), the record was never written — the torn-log
   prefix discipline recovery relies on. *)
let append ~pages r =
  Fault.with_retries (fun () -> Iosim.charge_wal_append ~pages);
  log := r :: !log;
  incr appended

let begin_stmt () =
  let id = !next in
  incr next;
  append ~pages:1 (Begin id);
  id

let log_update id ~table ~before ~after =
  let pages =
    max 1 (Iosim.pages (Array.length before + Array.length after))
  in
  append ~pages (Op (id, Update { table; before; after }))

let log_create id t =
  let pages = max 1 (Iosim.pages (Table.cardinality t)) in
  append ~pages (Op (id, Create t))

let log_drop id t = append ~pages:1 (Op (id, Drop t))
let commit id = append ~pages:1 (Commit id)

(* Apply one op's before-image — shared by inline abort and the
   recovery undo pass.  Absolute images make this idempotent, and
   guards on table existence make it safe against torn states (e.g. a
   crash after the Create record but before the register). *)
let undo_op cat = function
  | Update { table; before; _ } ->
      if Catalog.mem cat table then Catalog.update_rows cat table before
  | Create t ->
      if Catalog.mem cat (Table.name t) then
        Catalog.drop_table cat (Table.name t)
  | Drop t -> Catalog.register cat t

let redo_op cat = function
  | Update { table; after; _ } ->
      if Catalog.mem cat table then Catalog.update_rows cat table after
  | Create t -> Catalog.register cat t
  | Drop t ->
      if Catalog.mem cat (Table.name t) then
        Catalog.drop_table cat (Table.name t)

(* ops of one statement, newest first (= undo order) *)
let ops_of id =
  List.filter_map
    (function Op (i, op) when i = id -> Some op | _ -> None)
    !log

let abort ?(applied = true) cat id =
  if applied then List.iter (undo_op cat) (ops_of id);
  (* uncharged: rollback must not fault.  The Abort record matters to
     recovery — without it, replay would undo this statement a second
     time and clobber later committed work. *)
  log := Abort id :: !log;
  incr appended

type recovery = { redone : int; undone : int }

let recover cat =
  let chrono = List.rev !log in
  let committed = Hashtbl.create 16 and ended = Hashtbl.create 16 in
  List.iter
    (function
      | Commit id ->
          Hashtbl.replace committed id ();
          Hashtbl.replace ended id ()
      | Abort id -> Hashtbl.replace ended id ()
      | _ -> ())
    chrono;
  let redone = ref 0 in
  List.iter
    (function
      | Op (id, op) when Hashtbl.mem committed id ->
          redo_op cat op;
          incr redone
      | _ -> ())
    chrono;
  let undone = ref 0 in
  let unfinished = Hashtbl.create 4 in
  (* !log is newest-first, which is exactly reverse chronological *)
  List.iter
    (function
      | Op (id, op) when not (Hashtbl.mem ended id) ->
          Hashtbl.replace unfinished id ();
          undo_op cat op;
          incr undone
      | Begin id when not (Hashtbl.mem ended id) ->
          Hashtbl.replace unfinished id ()
      | _ -> ())
    !log;
  (* mark the rolled-back statements ended (uncharged, like [abort]):
     a later [needs_recovery] must see a clean log, and a re-recovery
     must not undo them over subsequently committed work *)
  Hashtbl.iter
    (fun id () ->
      log := Abort id :: !log;
      incr appended)
    unfinished;
  { redone = !redone; undone = !undone }

(* a statement that opened (Begin) or mutated (Op) but never ended
   (Commit/Abort) — the log shape only a crash leaves behind *)
let needs_recovery () =
  let ended = Hashtbl.create 16 in
  List.iter
    (function
      | Commit id | Abort id -> Hashtbl.replace ended id () | _ -> ())
    !log;
  List.exists
    (function
      | Begin id | Op (id, _) -> not (Hashtbl.mem ended id) | _ -> false)
    !log

let recover_if_needed cat = if needs_recovery () then Some (recover cat) else None
