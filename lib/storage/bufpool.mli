(** A paged buffer pool with a fixed frame budget.

    Simulates bounded buffer memory over the in-heap engine: pages are
    identified as [(owner, page_number)] pairs, residency is tracked in
    an LRU list ({!Lru}), and only the {e charging} is real — a miss
    pays one sequential page through {!Iosim.charge_page_in}, evicting
    a dirty frame pays {!Iosim.charge_page_out}, and hits are free.
    Both charge sites draw from the fault injector, so out-of-core
    execution composes with the fault and crash harnesses.

    Disabled by default ([frames () = None]); every access is then a
    no-op and the engine charges exactly as it did before this module
    existed.  Enable with {!set_frames}, [--buffer-pages]/[--buffer-mb]
    on the CLI, or the [NRA_BUFFER_PAGES] environment variable ("[N]"
    frames, "[0]" disabled, or "[32mb]"-style budgets converted at the
    configured {!Iosim} page size).

    Global and single-threaded, like {!Iosim}: worker domains never
    touch the pool.  Spilled partitions are still consumed {e under}
    the Domain pool: workers walk data with {!Spill.iter_raw} (no pool
    traffic) and the owner replays residency and charges in partition
    order at the join barrier via {!Spill.account_consumed} (see
    docs/STORAGE.md). *)

type stats = {
  hits : int;  (** accesses satisfied by a resident frame (free) *)
  misses : int;  (** accesses that had to page in or allocate a frame *)
  evictions : int;  (** frames reclaimed to respect the budget *)
  writebacks : int;  (** dirty victims flushed (each one charged page) *)
  spilled_partitions : int;
      (** spill partitions that materialized at least one page *)
  spilled_pages : int;  (** total pages written across spill partitions *)
}

val enabled : unit -> bool
val frames : unit -> int option

val set_frames : int option -> unit
(** Set the frame budget ([None] disables the pool).  Clears all
    residency and statistics; budgets below 1 are clamped to 1. *)

val stats : unit -> stats

val reset : unit -> unit
(** Clear residency and statistics but keep the configured budget.
    Also runs automatically on every {!Iosim.reset} so cold
    measurements stay cold. *)

val read : string * int -> unit
(** Access a page for reading: free on a hit, one charged page-in on a
    miss (possibly preceded by a dirty writeback to free a frame). *)

val write : string * int -> unit
(** Access a page for writing: the frame is marked dirty and the cost
    is deferred to its eventual writeback (write-behind).  A miss does
    not read the old contents back in (blind write). *)

val pin : string * int -> unit
(** Make the page resident (charging as {!read} if absent) and exempt
    it from eviction until {!unpin}.  Pins nest. *)

val unpin : string * int -> unit

val drop : string * int -> unit
(** Discard a page whose data is dead: the frame is freed with no
    writeback, even if dirty. *)

val resident : string * int -> bool
(** Residency test without promoting or charging (for tests). *)

(** Append-only spilled partitions — the unit the grace hash join and
    the spillable nest write when their build side exceeds the frame
    budget.  Rows are buffered into pages of [rows_per_page] rows; each
    full page is a {!write} (dirty frame, written back as the budget
    forces it out) and each page revisited by [iter] is a {!read}
    (free if still resident — how a hybrid join's lucky partitions
    become free — charged otherwise), pinned while its rows are
    consumed. *)
module Spill : sig
  type t

  val create : string -> t
  (** [create label] — a fresh empty partition; the label only
      namespaces page identities for debugging. *)

  val add : t -> Nra_relational.Row.t -> unit
  val length : t -> int

  val finish : t -> unit
  (** Flush the final partial page.  Call once, before [iter]. *)

  val iter : t -> (Nra_relational.Row.t -> unit) -> unit

  val iter_raw : t -> (Nra_relational.Row.t -> unit) -> unit
  (** Walk the partition's rows without touching the pool: no residency
      updates, no charges, no fault draws.  This is the only spill
      entry point worker domains may call; the owning domain must
      account for the consumed pages afterwards with
      {!account_consumed}. *)

  val pages : t -> int
  (** Number of pages the partition materialized. *)

  val free : t -> unit
  (** Drop every page of the partition from the pool (no writebacks)
      and release the row storage. *)

  val account_consumed : t -> unit
  (** Owner-side replay for a partition consumed via {!iter_raw}:
      pin/unpin every page in order (charging page-ins and drawing
      faults exactly as a serial [iter] would), then {!free} it.
      Called at the join barrier in partition order so the charge and
      fault sequences are identical at every domain count. *)
end
