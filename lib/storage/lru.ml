(* Classic hashtable + doubly-linked list.  Nodes are mutable records;
   the list is kept in recency order with [head] the most recent. *)

type node = {
  page : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  tbl : (int, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable size : int;
}

let create ~capacity =
  { capacity; tbl = Hashtbl.create 64; head = None; tail = None; size = 0 }

let capacity t = t.capacity
let size t = t.size
let mem t page = Hashtbl.mem t.tbl page

let detach t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      detach t n;
      Hashtbl.remove t.tbl n.page;
      t.size <- t.size - 1

let touch t page =
  if t.capacity <= 0 then false
  else
    match Hashtbl.find_opt t.tbl page with
    | Some n ->
        detach t n;
        push_front t n;
        true
    | None ->
        let n = { page; prev = None; next = None } in
        Hashtbl.replace t.tbl page n;
        push_front t n;
        t.size <- t.size + 1;
        if t.size > t.capacity then evict_lru t;
        false

let remove t page =
  match Hashtbl.find_opt t.tbl page with
  | None -> ()
  | Some n ->
      detach t n;
      Hashtbl.remove t.tbl page;
      t.size <- t.size - 1

(* Least-recent entry satisfying [ok] — the buffer pool's eviction
   scan, which must skip pinned frames.  Walks from the tail, so the
   common case (the LRU entry itself is evictable) is O(1). *)
let find_victim t ok =
  let rec go = function
    | None -> None
    | Some n -> if ok n.page then Some n.page else go n.prev
  in
  go t.tail

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.size <- 0
