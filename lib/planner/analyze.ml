open Nra_relational
open Nra_storage
module Ast = Nra_sql.Ast
module R = Resolved
module T3 = Three_valued

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type binding = {
  uid : string;
  alias : string;
  source : string;
  table : Table.t;
}

type link_op =
  | L_exists
  | L_not_exists
  | L_in of R.rexpr
  | L_not_in of R.rexpr
  | L_quant of R.rexpr * T3.cmpop * [ `Any | `All ]
  | L_scalar of R.rexpr * T3.cmpop

type block = {
  id : int;
  bindings : binding list;
  local : R.rcond list;
  correlated : R.rcond list;
  linked_attr : R.rexpr option;
  scalar_agg : (Ast.agg_func * R.rexpr option) option;
  marker : R.rcol;
  children : child list;
}

and child = { link : link_op; block : block }

type agg_call = { func : Ast.agg_func; arg : R.rexpr option }

type oexpr =
  | O_expr of R.rexpr
  | O_agg of agg_call
  | O_bin of Ast.binop * oexpr * oexpr
  | O_neg of oexpr

type ocond =
  | O_true
  | O_cmp of T3.cmpop * oexpr * oexpr
  | O_and of ocond * ocond
  | O_or of ocond * ocond
  | O_not of ocond
  | O_is_null of oexpr
  | O_is_not_null of oexpr

type output = {
  select : (oexpr * string) list;
  distinct : bool;
  group_by : R.rexpr list;
  having : ocond option;
  order_by : (oexpr * [ `Asc | `Desc ]) list;
  limit : int option;
}

type t = {
  root : block;
  output : output;
  blocks : block list;
  depth : int;
  linear : bool;
  by_uid : (string * binding) list;
}

let is_positive = function
  | L_exists | L_in _ | L_quant (_, _, `Any) -> true
  | L_not_exists | L_not_in _ | L_quant (_, _, `All) -> false
  | L_scalar _ -> false (* treated like a negative: empty result matters *)

(* Positivity of a linking *site*: a positive link may discard outer
   tuples whose group is empty (σ instead of σ̄, semijoin instead of
   outer join + nest).  An aggregate-linking (type-JA) child is never
   positive regardless of its link operator — the aggregate of an empty
   group is a value (COUNT → 0, SUM/MIN/MAX/AVG → NULL), so the empty
   group must survive to the linking selection. *)
let child_positive (c : child) =
  c.block.scalar_agg = None && is_positive c.link

let block_uids b = List.map (fun bd -> bd.uid) b.bindings

(* ---------- negation normal form over subquery predicates ----------

   Negation is pushed through the boolean structure so that every
   subquery predicate surfaces as a (possibly negated-operator) conjunct.
   All rewrites are exact in three-valued logic:
   NOT (x θ SOME S) = x θ' ALL S with θ' the complement of θ, etc. *)

let rec nnf (c : Ast.cond) : Ast.cond =
  match c with
  | Ast.Not c -> negate c
  | Ast.And (a, b) -> Ast.And (nnf a, nnf b)
  | Ast.Or (a, b) -> Ast.Or (nnf a, nnf b)
  | c -> c

and negate (c : Ast.cond) : Ast.cond =
  match c with
  | Ast.True_ -> Ast.Not Ast.True_
  | Ast.Not c -> nnf c
  | Ast.And (a, b) -> Ast.Or (negate a, negate b)
  | Ast.Or (a, b) -> Ast.And (negate a, negate b)
  | Ast.Cmp (op, a, b) -> Ast.Cmp (T3.negate_op op, a, b)
  | Ast.Is_null e -> Ast.Is_not_null e
  | Ast.Is_not_null e -> Ast.Is_null e
  | Ast.Exists q -> Ast.Not_exists q
  | Ast.Not_exists q -> Ast.Exists q
  | Ast.In_query (e, q) -> Ast.Not_in_query (e, q)
  | Ast.Not_in_query (e, q) -> Ast.In_query (e, q)
  | Ast.Quant_cmp (e, op, Ast.Any, q) ->
      Ast.Quant_cmp (e, T3.negate_op op, Ast.All, q)
  | Ast.Quant_cmp (e, op, Ast.All, q) ->
      Ast.Quant_cmp (e, T3.negate_op op, Ast.Any, q)
  | Ast.Scalar_cmp (e, op, q) -> Ast.Scalar_cmp (e, T3.negate_op op, q)
  | Ast.Between _ | Ast.In_list _ | Ast.Like _ -> Ast.Not c

(* ---------- scopes and name resolution ---------- *)

type scope = { block_id : int; sbindings : binding list }

let binding_has_col bd name = Schema.mem (Table.schema bd.table) name

let resolve_col scopes ?table name : R.rcol =
  let qualified t =
    let rec go = function
      | [] -> error "unknown table or alias %s (for column %s.%s)" t t name
      | sc :: rest -> (
          match
            List.find_opt (fun bd -> String.equal bd.alias t) sc.sbindings
          with
          | Some bd ->
              if binding_has_col bd name then
                { R.uid = bd.uid; col = name; block_id = sc.block_id }
              else error "table %s has no column %s" t name
          | None -> go rest)
    in
    go scopes
  in
  let unqualified () =
    let rec go = function
      | [] -> error "unknown column %s" name
      | sc :: rest -> (
          match List.filter (fun bd -> binding_has_col bd name) sc.sbindings
          with
          | [ bd ] -> { R.uid = bd.uid; col = name; block_id = sc.block_id }
          | [] -> go rest
          | _ :: _ :: _ -> error "ambiguous column %s" name)
    in
    go scopes
  in
  match table with Some t -> qualified t | None -> unqualified ()

let rec resolve_expr scopes (e : Ast.expr) : R.rexpr =
  match e with
  | Ast.Col (t, n) -> R.RCol (resolve_col scopes ?table:t n)
  | Ast.Lit v -> R.RLit v
  | Ast.Binop (op, a, b) ->
      R.RBin (op, resolve_expr scopes a, resolve_expr scopes b)
  | Ast.Neg a -> R.RNeg (resolve_expr scopes a)
  | Ast.Agg _ -> error "aggregate function not allowed in this position"

let rec resolve_cond scopes (c : Ast.cond) : R.rcond =
  match c with
  | Ast.True_ -> R.RTrue
  | Ast.Cmp (op, a, b) ->
      R.RCmp (op, resolve_expr scopes a, resolve_expr scopes b)
  | Ast.And (a, b) -> R.RAnd (resolve_cond scopes a, resolve_cond scopes b)
  | Ast.Or (a, b) -> R.ROr (resolve_cond scopes a, resolve_cond scopes b)
  | Ast.Not a -> R.RNot (resolve_cond scopes a)
  | Ast.Is_null e -> R.RIs_null (resolve_expr scopes e)
  | Ast.Is_not_null e -> R.RIs_not_null (resolve_expr scopes e)
  | Ast.Between (e, lo, hi) ->
      R.RBetween
        (resolve_expr scopes e, resolve_expr scopes lo,
         resolve_expr scopes hi)
  | Ast.In_list (e, vs) -> R.RIn_list (resolve_expr scopes e, vs)
  | Ast.Like (e, pattern) -> R.RLike (resolve_expr scopes e, pattern)
  | Ast.Exists _ | Ast.Not_exists _ | Ast.In_query _ | Ast.Not_in_query _
  | Ast.Quant_cmp _ | Ast.Scalar_cmp _ ->
      error "subquery in an unsupported position (must be a conjunct of WHERE)"

(* ---------- block construction ---------- *)

type builder = {
  catalog : Catalog.t;
  mutable next_id : int;
  mutable uids : string list;
  mutable all_bindings : (string * binding) list;
}

let fresh_uid bld ~alias ~block_id =
  let candidate =
    if List.mem alias bld.uids then Printf.sprintf "%s_%d" alias block_id
    else alias
  in
  let rec unique c k =
    if List.mem c bld.uids then unique (Printf.sprintf "%s_%d" candidate k) (k + 1)
    else c
  in
  let uid = unique candidate 0 in
  bld.uids <- uid :: bld.uids;
  uid

let make_bindings bld ~block_id (from : (string * string option) list) =
  if from = [] then error "FROM clause is empty";
  let seen = ref [] in
  List.map
    (fun (tname, alias_opt) ->
      let table =
        match Catalog.table_opt bld.catalog tname with
        | Some t -> t
        | None -> error "unknown table %s" tname
      in
      let alias = Option.value ~default:tname alias_opt in
      if List.mem alias !seen then
        error "duplicate table alias %s in one FROM clause" alias;
      seen := alias :: !seen;
      let uid = fresh_uid bld ~alias ~block_id in
      let binding =
        { uid; alias; source = tname; table = Table.alias table uid }
      in
      bld.all_bindings <- (uid, binding) :: bld.all_bindings;
      binding)
    from

let check_subquery_shape (q : Ast.query) =
  if q.Ast.group_by <> [] then error "GROUP BY in a subquery is not supported";
  if q.Ast.having <> None then error "HAVING in a subquery is not supported";
  if q.Ast.order_by <> [] then
    error "ORDER BY in a subquery is not supported";
  if q.Ast.limit <> None then error "LIMIT in a subquery is not supported"

let agg_name = function
  | Ast.Count_star | Ast.Count -> "count"
  | Ast.Sum -> "sum"
  | Ast.Avg -> "avg"
  | Ast.Min -> "min"
  | Ast.Max -> "max"

type want = W_exists | W_one | W_scalar

let rec build bld scopes (q : Ast.query) ~want : block =
  bld.next_id <- bld.next_id + 1;
  let id = bld.next_id in
  let bindings = make_bindings bld ~block_id:id q.Ast.from in
  let scope = { block_id = id; sbindings = bindings } in
  let scopes' = scope :: scopes in
  (* the block's output attribute *)
  let linked_attr, scalar_agg =
    match want with
    | W_exists -> (None, None)
    | W_one -> (
        match q.Ast.select with
        (* type JA: the subquery's one output row is an aggregate; IN
           and θ SOME/ALL then compare against that singleton *)
        | [ Ast.Sel_expr (Ast.Agg (f, arg), _) ] ->
            (None, Some (f, Option.map (resolve_expr scopes') arg))
        | [ Ast.Sel_expr (e, _) ] -> (Some (resolve_expr scopes' e), None)
        | [ Ast.Star ] | _ ->
            error "IN/quantified subquery must select exactly one expression")
    | W_scalar -> (
        match q.Ast.select with
        | [ Ast.Sel_expr (Ast.Agg (f, arg), _) ] ->
            (None, Some (f, Option.map (resolve_expr scopes') arg))
        | [ Ast.Sel_expr (e, _) ] -> (Some (resolve_expr scopes' e), None)
        | _ -> error "scalar subquery must select exactly one expression")
  in
  (* conjuncts *)
  let where = Option.value ~default:Ast.True_ q.Ast.where in
  let conjs = Ast.cond_conjuncts (nnf where) in
  let local = ref [] and correlated = ref [] and children = ref [] in
  let add_plain c =
    let rc = resolve_cond scopes' c in
    let outer_refs = List.filter (fun b -> b <> id) (R.cond_blocks rc) in
    if outer_refs = [] then local := rc :: !local
    else correlated := rc :: !correlated
  in
  let add_child link sub ~want =
    let b = build bld scopes' sub ~want in
    children := { link; block = b } :: !children
  in
  List.iter
    (fun c ->
      match c with
      | Ast.Exists sub ->
          check_subquery_shape sub;
          add_child L_exists sub ~want:W_exists
      | Ast.Not_exists sub ->
          check_subquery_shape sub;
          add_child L_not_exists sub ~want:W_exists
      | Ast.In_query (e, sub) ->
          check_subquery_shape sub;
          add_child (L_in (resolve_expr scopes' e)) sub ~want:W_one
      | Ast.Not_in_query (e, sub) ->
          check_subquery_shape sub;
          add_child (L_not_in (resolve_expr scopes' e)) sub ~want:W_one
      | Ast.Quant_cmp (e, op, quant, sub) ->
          check_subquery_shape sub;
          let quant = match quant with Ast.Any -> `Any | Ast.All -> `All in
          add_child (L_quant (resolve_expr scopes' e, op, quant)) sub
            ~want:W_one
      | Ast.Scalar_cmp (e, op, sub) ->
          check_subquery_shape sub;
          add_child (L_scalar (resolve_expr scopes' e, op)) sub ~want:W_scalar
      | c ->
          if Ast.subqueries c <> [] then
            error
              "subquery under OR or in another non-conjunct position is not \
               supported"
          else add_plain c)
    conjs;
  let first = List.hd bindings in
  let marker_col =
    match Table.key_columns first.table with
    | k :: _ -> k
    | [] -> error "table %s has no primary key" first.alias
  in
  {
    id;
    bindings;
    local = List.rev !local;
    correlated = List.rev !correlated;
    linked_attr;
    scalar_agg;
    marker = { R.uid = first.uid; col = marker_col; block_id = id };
    children = List.rev !children;
  }

(* ---------- outer output ---------- *)

let rec ast_has_agg = function
  | Ast.Agg _ -> true
  | Ast.Binop (_, a, b) -> ast_has_agg a || ast_has_agg b
  | Ast.Neg a -> ast_has_agg a
  | Ast.Col _ | Ast.Lit _ -> false

(* Keep aggregate-free subtrees whole (a single [O_expr]), so that the
   grouped-output rewriter can match them against GROUP BY keys
   structurally. *)
let rec resolve_oexpr scopes (e : Ast.expr) : oexpr =
  if not (ast_has_agg e) then O_expr (resolve_expr scopes e)
  else
    match e with
    | Ast.Agg (f, arg) ->
        O_agg { func = f; arg = Option.map (resolve_expr scopes) arg }
    | Ast.Binop (op, a, b) ->
        O_bin (op, resolve_oexpr scopes a, resolve_oexpr scopes b)
    | Ast.Neg a -> O_neg (resolve_oexpr scopes a)
    | Ast.Col _ | Ast.Lit _ -> assert false

let rec resolve_ocond scopes (c : Ast.cond) : ocond =
  match c with
  | Ast.True_ -> O_true
  | Ast.Cmp (op, a, b) ->
      O_cmp (op, resolve_oexpr scopes a, resolve_oexpr scopes b)
  | Ast.And (a, b) -> O_and (resolve_ocond scopes a, resolve_ocond scopes b)
  | Ast.Or (a, b) -> O_or (resolve_ocond scopes a, resolve_ocond scopes b)
  | Ast.Not a -> O_not (resolve_ocond scopes a)
  | Ast.Is_null e -> O_is_null (resolve_oexpr scopes e)
  | Ast.Is_not_null e -> O_is_not_null (resolve_oexpr scopes e)
  | _ -> error "unsupported condition in HAVING"

let output_of bld scopes (q : Ast.query) root_bindings : output =
  ignore bld;
  (* synthetic columns (e.g. a CTE's __rowid) stay out of SELECT * and
     t.* but remain individually addressable *)
  let hidden (c : Schema.column) =
    String.length c.Schema.name >= 2 && String.sub c.Schema.name 0 2 = "__"
  in
  let expand_binding (bd : binding) =
    Array.to_list (Schema.columns (Table.schema bd.table))
    |> List.filter (fun c -> not (hidden c))
    |> List.map (fun (c : Schema.column) ->
           ( O_expr
               (R.RCol { R.uid = bd.uid; col = c.Schema.name; block_id = 1 }),
             c.Schema.name ))
  in
  let select =
    List.concat_map
      (function
        | Ast.Table_star t -> (
            match
              List.find_opt (fun bd -> String.equal bd.alias t) root_bindings
            with
            | Some bd -> expand_binding bd
            | None -> error "unknown table or alias %s in %s.*" t t)
        | Ast.Star -> List.concat_map expand_binding root_bindings
        | Ast.Sel_expr (e, alias) ->
            let name =
              match (alias, e) with
              | Some a, _ -> a
              | None, Ast.Col (_, n) -> n
              | None, Ast.Agg (f, _) -> agg_name f
              | None, _ -> "expr"
            in
            [ (resolve_oexpr scopes e, name) ])
      q.Ast.select
  in
  (* ORDER BY resolves against the select-list names first (SQL's alias
     scope), then against the frame *)
  let resolve_order e =
    match e with
    | Ast.Col (None, name) -> (
        match List.assoc_opt name (List.map (fun (o, n) -> (n, o)) select) with
        | Some o -> o
        | None -> resolve_oexpr scopes e)
    | e -> resolve_oexpr scopes e
  in
  {
    select;
    distinct = q.Ast.distinct;
    group_by = List.map (resolve_expr scopes) q.Ast.group_by;
    having = Option.map (resolve_ocond scopes) q.Ast.having;
    order_by = List.map (fun (e, d) -> (resolve_order e, d)) q.Ast.order_by;
    limit = q.Ast.limit;
  }

(* ---------- whole-query analysis ---------- *)

let rec collect_blocks b = b :: List.concat_map (fun c -> collect_blocks c.block) b.children

let rec block_depth b =
  match b.children with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun d c -> max d (block_depth c.block)) 0 cs

let linear_of root =
  let rec go b parent_id =
    List.length b.children <= 1
    && List.for_all
         (fun rc ->
           match List.filter (fun i -> i <> b.id) (R.cond_blocks rc) with
           | [] -> true
           | [ j ] -> j = parent_id
           | _ -> false)
         b.correlated
    && List.for_all (fun c -> go c.block b.id) b.children
  in
  (* the root has no correlated predicates by construction *)
  List.length root.children <= 1
  && List.for_all (fun c -> go c.block root.id) root.children

let self_contained (b : block) =
  let ids = List.map (fun blk -> blk.id) (collect_blocks b) in
  let inside i = List.mem i ids in
  let expr_ok e = List.for_all inside (R.expr_blocks e) in
  let block_ok ~own (blk : block) =
    (own
    || List.for_all
         (fun rc -> List.for_all inside (R.cond_blocks rc))
         blk.correlated)
    && (match blk.linked_attr with None -> true | Some e -> expr_ok e)
    &&
    match blk.scalar_agg with
    | Some (_, Some e) -> expr_ok e
    | _ -> true
  in
  block_ok ~own:true b
  && List.for_all (fun blk -> block_ok ~own:false blk)
       (List.tl (collect_blocks b))

let equi_correlation (b : block) =
  let classify rc =
    match rc with
    | R.RCmp (T3.Eq, R.RCol c, e)
      when c.R.block_id = b.id && not (List.mem b.id (R.expr_blocks e)) ->
        Some (c, e)
    | R.RCmp (T3.Eq, e, R.RCol c)
      when c.R.block_id = b.id && not (List.mem b.id (R.expr_blocks e)) ->
        Some (c, e)
    | _ -> None
  in
  let pairs = List.map classify b.correlated in
  if List.for_all Option.is_some pairs && pairs <> [] then
    Some (List.map Option.get pairs)
  else None

let analyze catalog (q : Ast.query) : t =
  let bld = { catalog; next_id = 0; uids = []; all_bindings = [] } in
  let root = build bld [] q ~want:W_exists in
  let root_scope = { block_id = root.id; sbindings = root.bindings } in
  let output = output_of bld [ root_scope ] q root.bindings in
  let blocks = collect_blocks root in
  {
    root;
    output;
    blocks;
    depth = block_depth root;
    linear = linear_of root;
    by_uid = bld.all_bindings;
  }

let analyze_string catalog src =
  match Nra_sql.Parser.parse_result src with
  | Stdlib.Error m -> Stdlib.Error ("parse error: " ^ m)
  | Stdlib.Ok q -> (
      match analyze catalog q with
      | t -> Stdlib.Ok t
      | exception Error m -> Stdlib.Error m)

let binding_of_col t (c : R.rcol) = List.assoc_opt c.R.uid t.by_uid

let col_not_null t (c : R.rcol) =
  match binding_of_col t c with
  | None -> false
  | Some bd -> (
      let schema = Table.schema bd.table in
      match Schema.find_opt schema ~table:c.R.uid c.R.col with
      | Some i -> (Schema.col schema i).Schema.not_null
      | None -> false)

let rec expr_not_nullable t (e : R.rexpr) =
  match e with
  | R.RCol c -> col_not_null t c
  | R.RLit v -> not (Value.is_null v)
  | R.RBin (Ast.Div, _, _) -> false (* division by zero yields NULL *)
  | R.RBin (_, a, b) -> expr_not_nullable t a && expr_not_nullable t b
  | R.RNeg a -> expr_not_nullable t a

(* ---------- printing: the paper's tree expression ---------- *)

let pp_link ppf = function
  | L_exists -> Format.pp_print_string ppf "EXISTS"
  | L_not_exists -> Format.pp_print_string ppf "NOT EXISTS"
  | L_in e -> Format.fprintf ppf "%a IN" R.pp_expr e
  | L_not_in e -> Format.fprintf ppf "%a NOT IN" R.pp_expr e
  | L_quant (e, op, q) ->
      Format.fprintf ppf "%a %s %s" R.pp_expr e (T3.cmpop_to_string op)
        (match q with `Any -> "ANY" | `All -> "ALL")
  | L_scalar (e, op) ->
      Format.fprintf ppf "%a %s (scalar)" R.pp_expr e (T3.cmpop_to_string op)

let rec pp_block ppf b =
  Format.fprintf ppf "@[<v 2>T%d: %s%a" b.id
    (String.concat "," (List.map (fun bd -> bd.alias) b.bindings))
    (fun ppf l ->
      if l <> [] then
        Format.fprintf ppf " [local: %a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
             R.pp_cond)
          l)
    b.local;
  if b.correlated <> [] then
    Format.fprintf ppf " [corr: %a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         R.pp_cond)
      b.correlated;
  (match b.scalar_agg with
  | Some (f, arg) ->
      Format.fprintf ppf " [agg: %s(%s)]" (agg_name f)
        (match arg with
        | Some e -> Format.asprintf "%a" R.pp_expr e
        | None -> "*")
  | None -> ());
  List.iter
    (fun c -> Format.fprintf ppf "@,%a -> %a" pp_link c.link pp_block c.block)
    b.children;
  Format.fprintf ppf "@]"
