(** Query-block analysis.

    Decomposes a parsed query into the paper's structure: one {e block}
    per SELECT-FROM-WHERE, a tree of blocks connected by {e linking
    operators}, and per block the {e local} conjuncts (referencing only
    that block) and the {e correlated} conjuncts (referencing enclosing
    blocks).  This is the common input to all three executors.

    Restrictions (checked, with informative errors):
    - subquery predicates must be conjuncts of WHERE (possibly under
      NOT, which is normalized away; a subquery under OR is rejected);
    - subquery blocks cannot use GROUP BY / HAVING / ORDER BY / LIMIT;
    - aggregates may appear only in the outer block's SELECT / HAVING /
      ORDER BY, or as the single select item of a subquery — a scalar
      comparison or an IN / θ SOME / θ ALL link over the aggregate's
      one-row result (type JA). *)

open Nra_relational
open Nra_storage

exception Error of string

type binding = {
  uid : string;  (** unique frame qualifier *)
  alias : string;  (** SQL-visible name *)
  source : string;  (** the catalog table this binding refers to *)
  table : Table.t;  (** already re-qualified with [uid] *)
}

type link_op =
  | L_exists
  | L_not_exists
  | L_in of Resolved.rexpr
  | L_not_in of Resolved.rexpr
  | L_quant of Resolved.rexpr * Three_valued.cmpop * [ `Any | `All ]
  | L_scalar of Resolved.rexpr * Three_valued.cmpop
      (** comparison against a scalar subquery (single row/value);
          the subquery's value is the block's [linked_attr] or
          [scalar_agg] *)

type block = {
  id : int;  (** DFS pre-order, root = 1 — the paper's T{_i} numbering *)
  bindings : binding list;
  local : Resolved.rcond list;
  correlated : Resolved.rcond list;
  linked_attr : Resolved.rexpr option;
      (** the subquery's selected expression (for IN / quantified /
          plain scalar linking) *)
  scalar_agg : (Nra_sql.Ast.agg_func * Resolved.rexpr option) option;
      (** when the block is an aggregate subquery: a scalar comparison
          or a type-JA IN / θ SOME / θ ALL over the one-row result *)
  marker : Resolved.rcol;
      (** a primary-key column of the block's first table — NULL after
          outer-join padding iff the block produced no tuple *)
  children : child list;
}

and child = { link : link_op; block : block }

(** {1 Outer-block output processing} *)

type agg_call = {
  func : Nra_sql.Ast.agg_func;
  arg : Resolved.rexpr option;
}

type oexpr =
  | O_expr of Resolved.rexpr
  | O_agg of agg_call
  | O_bin of Nra_sql.Ast.binop * oexpr * oexpr
  | O_neg of oexpr

type ocond =
  | O_true
  | O_cmp of Three_valued.cmpop * oexpr * oexpr
  | O_and of ocond * ocond
  | O_or of ocond * ocond
  | O_not of ocond
  | O_is_null of oexpr
  | O_is_not_null of oexpr

type output = {
  select : (oexpr * string) list;
  distinct : bool;
  group_by : Resolved.rexpr list;
  having : ocond option;
  order_by : (oexpr * [ `Asc | `Desc ]) list;
  limit : int option;
}

type t = {
  root : block;
  output : output;
  blocks : block list;  (** pre-order *)
  depth : int;  (** nesting depth: 0 = flat *)
  linear : bool;
      (** the paper's "linear correlated": every block has at most one
          child and correlates only to its immediate parent *)
  by_uid : (string * binding) list;
}

val analyze : Catalog.t -> Nra_sql.Ast.query -> t
(** @raise Error on unknown tables/columns, ambiguity, or an
    unsupported shape. *)

val analyze_string : Catalog.t -> string -> (t, string) result
(** Parse then analyze; all failures as [Error _]. *)

val binding_of_col : t -> Resolved.rcol -> binding option
(** The binding a resolved column's [uid] refers to — the route from a
    predicate column back to the catalog table whose statistics
    describe it. *)

val col_not_null : t -> Resolved.rcol -> bool
(** Declared NOT NULL? *)

val expr_not_nullable : t -> Resolved.rexpr -> bool
(** Conservatively: can this expression never evaluate to NULL?
    (All columns NOT NULL, no division, no NULL literal.) *)

val block_uids : block -> string list
(** Uids of the block's own bindings. *)

val collect_blocks : block -> block list
(** The subtree's blocks in pre-order (the block itself first). *)

val self_contained : block -> bool
(** No block inside the subtree references anything outside it, except
    the subtree root's own correlated predicates.  A self-contained
    subtree can be reduced standalone (the paper's §4.2.3/4.2.4, and the
    precondition of magic decorrelation). *)

val equi_correlation : block -> (Resolved.rcol * Resolved.rexpr) list option
(** When every correlated predicate of the block has the shape
    [inner_column = outer_expression], the list of those pairs
    (and [None] otherwise, including the uncorrelated case). *)

val is_positive : link_op -> bool

val child_positive : child -> bool
(** Site-level positivity: [is_positive] on the link, except that an
    aggregate-linking (type-JA) child — [scalar_agg <> None] — is never
    positive.  The aggregate of an empty group is a value (COUNT → 0,
    SUM/MIN/MAX/AVG → NULL), so empty groups must reach the linking
    selection: discarding unmatched outer tuples early (σ instead of σ̄,
    or a semijoin) would change the answer. *)

val agg_name : Nra_sql.Ast.agg_func -> string
(** Lower-case SQL name of the aggregate ([count], [sum], …). *)

val pp_block : Format.formatter -> block -> unit
(** Debugging aid: the tree expression of the paper's Section 4
    (blocks, linking and correlated predicate labels). *)
