(* The explicit NRA plan IR the rewriter works on.

   One node per linking site (the planner's [Analyze.child]), carrying
   the implementation choice the executor would make for it — the same
   five-way decision chain as [Nra_exec.Nra.apply_child], computed here
   statically from the strategy's options.  Rules rewrite the [impl]
   field; [directives] compiles the tree back into the per-block-id
   directive list the executor consumes.  Because the executor
   re-validates every directive against the site's structural
   preconditions at runtime, the IR can afford to be a faithful mirror
   rather than a proof-carrying one: a directive the executor cannot
   honor degrades to the options chain, never to a wrong answer. *)

open Nra_planner
module A = Analyze
module Nx = Nra_exec.Nra

type nest = { pipelined : bool; assume_sorted : bool }

type impl =
  | Shared_set
  | Push_down
  | Semijoin
  | Bottom_up of nest
  | Top_down of nest

type node = {
  child : A.child;
  impl : impl;
  sub : node list;
  discard_ok : bool;
      (* may the linking selection discard failing tuples here (σ), or
         must it NULL-pad (σ̄)?  Discard holds at the outermost level and
         propagates through positive links only. *)
}

type t = { analyzed : A.t; base : Nx.options; roots : node list }

(* ---------- lifting: mirror the executor's decision chain ---------- *)

let rec lift_child (base : Nx.options) ~discard_ok (c : A.child) =
  let b = c.A.block in
  let contained = A.self_contained b in
  let nest0 = { pipelined = base.Nx.pipelined; assume_sorted = false } in
  let impl =
    if contained && b.A.correlated = [] then Shared_set
    else
      match (base.Nx.push_down_nest && contained, A.equi_correlation b) with
      | true, Some _ -> Push_down
      | _ ->
          if
            base.Nx.positive_simplify && b.A.children = [] && discard_ok
            && A.child_positive c
            && b.A.correlated <> []
          then Semijoin
          else if base.Nx.bottom_up_linear && contained then Bottom_up nest0
          else Top_down nest0
  in
  let sub_discard =
    match impl with
    | Top_down _ -> discard_ok && A.child_positive c
    | _ -> true (* standalone reduction: the subtree is outermost *)
  in
  let sub = List.map (lift_child base ~discard_ok:sub_discard) b.A.children in
  { child = c; impl; sub; discard_ok }

let lift ?(base = Nx.optimized) (analyzed : A.t) =
  {
    analyzed;
    base;
    roots =
      List.map (lift_child base ~discard_ok:true) analyzed.A.root.A.children;
  }

(* ---------- traversal ---------- *)

let rec fold_node f acc n = List.fold_left (fold_node f) (f acc n) n.sub
let fold f acc p = List.fold_left (fold_node f) acc p.roots
let nodes p = List.rev (fold (fun acc n -> n :: acc) [] p)

let find p id =
  fold
    (fun acc n -> if n.child.A.block.A.id = id then Some n else acc)
    None p

(* ---------- rewriting ---------- *)

let rec map_node f n =
  let n = f n in
  { n with sub = List.map (map_node f) n.sub }

let replace p ~id ~impl =
  {
    p with
    roots =
      List.map
        (map_node (fun n ->
             if n.child.A.block.A.id = id then { n with impl } else n))
        p.roots;
  }

(* After an impl change the discard contexts downstream may have
   changed (a site rewritten away from Top_down now reduces its subtree
   standalone, where discarding is always allowed); recompute them
   top-down so the IR agrees with what the executor will do. *)
let renormalize p =
  let rec renorm ~discard_ok n =
    let sub_discard =
      match n.impl with
      | Top_down _ -> discard_ok && A.child_positive n.child
      | _ -> true
    in
    {
      n with
      discard_ok;
      sub = List.map (renorm ~discard_ok:sub_discard) n.sub;
    }
  in
  { p with roots = List.map (renorm ~discard_ok:true) p.roots }

(* ---------- compiling to executor directives ---------- *)

let directive_of_impl = function
  | Shared_set -> Nx.D_shared_set
  | Push_down -> Nx.D_push_down
  | Semijoin -> Nx.D_semijoin
  | Bottom_up n ->
      Nx.D_bottom_up
        { Nx.n_pipelined = n.pipelined; n_assume_sorted = n.assume_sorted }
  | Top_down n ->
      Nx.D_top_down
        { Nx.n_pipelined = n.pipelined; n_assume_sorted = n.assume_sorted }

let directives p =
  fold
    (fun acc n -> (n.child.A.block.A.id, directive_of_impl n.impl) :: acc)
    [] p
  |> List.rev

(* ---------- rendering ---------- *)

let nest_to_string n =
  if n.pipelined then "υ-pipelined"
  else if n.assume_sorted then "υ-fused"
  else "υ-materialized"

let impl_to_string = function
  | Shared_set -> "shared-set"
  | Push_down -> "push-down"
  | Semijoin -> "semijoin"
  | Bottom_up n -> Printf.sprintf "bottom-up(%s)" (nest_to_string n)
  | Top_down n -> Printf.sprintf "top-down(%s)" (nest_to_string n)

let describe p =
  let buf = Buffer.create 128 in
  let rec go depth n =
    Buffer.add_string buf
      (Printf.sprintf "%sblock %d: %s%s\n"
         (String.make (2 * depth) ' ')
         n.child.A.block.A.id (impl_to_string n.impl)
         (if n.discard_ok then "" else " σ̄"));
    List.iter (go (depth + 1)) n.sub
  in
  List.iter (go 0) p.roots;
  Buffer.contents buf
