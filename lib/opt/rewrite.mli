(** Cost-gated rewrite engine over the {!Plan} IR.

    Each enabled rule proposes [impl] edits node by node; an edit is
    applied only when the whole-plan Iosim estimate strictly improves.
    The engine iterates to a bounded fixpoint and returns the rewritten
    plan, the executor directives compiled from it, and the fired /
    skipped trace for [explain --costs]. *)

open Nra_storage
open Nra_planner
module Nx := Nra_exec.Nra

type costline = { seq : float; rand : float; fetch : float; ms : float }

val cost_of : Catalog.t -> Plan.t -> costline
(** The IR-level Iosim estimate: {!Nra_stats.Cost}'s NRA walk extended
    with nest materialize / sort / pipeline charges, so two plans that
    differ only in a directive still cost differently. *)

val propose : Config.rule -> Plan.node -> Plan.impl option
(** The rule's structural precondition check: [Some impl] when the rule
    applies at this node (before any costing). *)

type verdict = Fired | Skipped of string

type trace_entry = {
  rule : Config.rule;
  block_id : int;
  site : string;
  cost_before : costline;
  cost_after : costline;
  verdict : verdict;
}

type result = {
  plan : Plan.t;
  dirs : Nx.directives;
  changed : bool;
  trace : trace_entry list;
  before : costline;
  after : costline;
}

val rewrite :
  ?rules:Config.rule list ->
  Catalog.t ->
  Analyze.t ->
  base:Nx.options ->
  result
(** Rules default to {!Config.rules} (the global toggle state). *)

val trace_lines : result -> string list
