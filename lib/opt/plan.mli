(** Explicit NRA plan IR, lifted from the planner's block tree.

    One node per linking site, annotated with the implementation choice
    the executor's options-driven decision chain would make under the
    given strategy options — the IR's starting point is always exactly
    the unrewritten plan.  Rules edit [impl]; [directives] compiles the
    tree into the per-block-id directive list that
    {!Nra_exec.Nra.run_where} consumes. *)

open Nra_planner
module Nx := Nra_exec.Nra

type nest = { pipelined : bool; assume_sorted : bool }

type impl =
  | Shared_set
  | Push_down
  | Semijoin
  | Bottom_up of nest
  | Top_down of nest

type node = {
  child : Analyze.child;
  impl : impl;
  sub : node list;
  discard_ok : bool;
}

type t = { analyzed : Analyze.t; base : Nx.options; roots : node list }

val lift : ?base:Nx.options -> Analyze.t -> t
(** Mirror the executor's decision chain under [base] (default: the
    [optimized] options). *)

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
val nodes : t -> node list
val find : t -> int -> node option
val replace : t -> id:int -> impl:impl -> t
val renormalize : t -> t
(** Recompute every node's [discard_ok] from its (possibly rewritten)
    ancestors. *)

val directives : t -> Nx.directives
val impl_to_string : impl -> string
val describe : t -> string
