(* The rewrite engine: rules propose [impl] edits on the plan IR, and an
   edit is applied only when the whole-plan Iosim estimate strictly
   improves.

   The cost walk below is [Nra_stats.Cost.nra_cost] extended to price
   what the directives can change: a materialized nest pays a
   materialize-and-rescan pass over its staging, a sort-based nest pays
   a sort pass unless the input is already key-sorted, and a pipelined
   nest pays only the sort (when needed).  Sortedness is tracked as a
   conservative boolean — "the relation is fully key-sorted for the
   current frame" — mirroring the executor's sorted-prefix tracking;
   where the static analysis cannot be sure (e.g. below a top-down
   recursion) it assumes unsorted, which can only under-fire the fusion
   rule, never mis-fire it. *)

open Nra_storage
open Nra_planner
module A = Analyze
module C = Nra_stats.Cardinality
module Nx = Nra_exec.Nra

type costline = { seq : float; rand : float; fetch : float; ms : float }

let pages rows =
  let rpp = float_of_int (max 1 (Iosim.config ()).Iosim.rows_per_page) in
  Float.max 1.0 (Float.ceil (rows /. rpp))

let block_scan_pages (b : A.block) =
  List.fold_left
    (fun acc (bd : A.binding) ->
      acc +. pages (float_of_int (Table.cardinality bd.A.table)))
    0.0 b.A.bindings

type acc = { mutable seq : float; mutable rand : float; mutable fetch : float }

let price seq rand fetch =
  let c = Iosim.config () in
  (seq *. c.Iosim.t_seq_ms)
  +. (rand *. c.Iosim.t_rand_ms)
  +. (fetch *. c.Iosim.t_fetch_ms)

(* Charge one nest+linking-selection over [rows] staged tuples; return
   whether its output is key-sorted (the executor's [emitted_sorted]).
   [sorted] is the staging input's static sortedness. *)
let charge_nest (base : Nx.options) (nf : Plan.nest) ~sorted ~rows acc =
  let p2 = 2.0 *. pages rows in
  let pipelined = nf.Plan.pipelined || (nf.Plan.assume_sorted && sorted) in
  if pipelined then begin
    (* single pass; one re-sort when the input is not already sorted *)
    if not sorted then acc.seq <- acc.seq +. p2;
    true
  end
  else begin
    (* materialize the nested relation, then a separate selection pass *)
    acc.seq <- acc.seq +. p2;
    match base.Nx.nest_impl with
    | `Sort ->
        acc.seq <- acc.seq +. p2;
        true
    | `Hash -> false
  end

let cost_of cat (p : Plan.t) =
  let env = C.make_env cat p.Plan.analyzed in
  let acc = { seq = 0.0; rand = 0.0; fetch = 0.0 } in
  let root = p.Plan.analyzed.A.root in
  acc.seq <- acc.seq +. block_scan_pages root;
  let loj_out ~outer b = outer *. Float.max 1.0 (C.fanout env b) in
  (* returns the static sortedness of the frame after this site *)
  let rec go ~outer ~sorted (n : Plan.node) =
    let b = n.Plan.child.A.block in
    acc.seq <- acc.seq +. block_scan_pages b;
    let standalone_sub () =
      (* the subtree is reduced on its own frame, which starts unsorted *)
      ignore
        (List.fold_left
           (fun s c -> go ~outer:(C.block_card env b) ~sorted:s c)
           false n.Plan.sub)
    in
    match n.Plan.impl with
    | Plan.Shared_set | Plan.Push_down ->
        standalone_sub ();
        sorted && n.Plan.discard_ok
    | Plan.Semijoin -> sorted
    | Plan.Bottom_up nf ->
        standalone_sub ();
        let rows = loj_out ~outer b in
        acc.fetch <- acc.fetch +. rows;
        let emitted = charge_nest p.Plan.base nf ~sorted ~rows acc in
        emitted && n.Plan.discard_ok
    | Plan.Top_down nf ->
        let rows = loj_out ~outer b in
        acc.fetch <- acc.fetch +. rows;
        (* grandchildren widen the frame, so their sortedness (and the
           wide relation's, once they have run) is conservatively lost *)
        ignore
          (List.fold_left
             (fun s c -> go ~outer:rows ~sorted:s c)
             false n.Plan.sub);
        let sorted_mid = sorted && n.Plan.sub = [] in
        let emitted = charge_nest p.Plan.base nf ~sorted:sorted_mid ~rows acc in
        emitted && n.Plan.discard_ok
  in
  ignore
    (List.fold_left
       (fun s n -> go ~outer:(C.block_card env root) ~sorted:s n)
       false p.Plan.roots);
  {
    seq = acc.seq;
    rand = acc.rand;
    fetch = acc.fetch;
    ms = price acc.seq acc.rand acc.fetch;
  }

(* ---------- rules ---------- *)

(* A rule proposes a new impl for one node, or nothing.  Preconditions
   mirror the executor's runtime validation exactly, so a proposal that
   survives the cost gate always takes effect. *)
let propose (rule : Config.rule) (n : Plan.node) : Plan.impl option =
  let b = n.Plan.child.A.block in
  match (rule, n.Plan.impl) with
  | Config.Semijoin, (Plan.Bottom_up _ | Plan.Top_down _)
    when b.A.children = [] && n.Plan.discard_ok
         && A.child_positive n.Plan.child
         && b.A.correlated <> [] ->
      Some Plan.Semijoin
  | Config.Push_down, (Plan.Bottom_up _ | Plan.Top_down _)
    when A.self_contained b
         && A.equi_correlation b <> None
         && b.A.correlated <> [] ->
      Some Plan.Push_down
  | Config.Pipeline, Plan.Bottom_up nf when not nf.Plan.pipelined ->
      Some (Plan.Bottom_up { nf with Plan.pipelined = true })
  | Config.Pipeline, Plan.Top_down nf when not nf.Plan.pipelined ->
      Some (Plan.Top_down { nf with Plan.pipelined = true })
  | Config.Fuse_nests, Plan.Bottom_up nf
    when (not nf.Plan.pipelined) && not nf.Plan.assume_sorted ->
      Some (Plan.Bottom_up { nf with Plan.assume_sorted = true })
  | Config.Fuse_nests, Plan.Top_down nf
    when (not nf.Plan.pipelined) && not nf.Plan.assume_sorted ->
      Some (Plan.Top_down { nf with Plan.assume_sorted = true })
  | _ -> None

(* ---------- the engine ---------- *)

type verdict = Fired | Skipped of string

type trace_entry = {
  rule : Config.rule;
  block_id : int;
  site : string;
  cost_before : costline;
  cost_after : costline;
  verdict : verdict;
}

type result = {
  plan : Plan.t;
  dirs : Nx.directives;
  changed : bool;
  trace : trace_entry list;
  before : costline;
  after : costline;
}

(* rule application order: structural conversions first (they remove
   whole intermediates), then the nest-shape refinements *)
let rule_order =
  [ Config.Semijoin; Config.Push_down; Config.Pipeline; Config.Fuse_nests ]

let max_passes = 4
let eps = 1e-9

let rewrite ?rules cat (analyzed : A.t) ~(base : Nx.options) : result =
  let rules =
    match rules with Some rs -> rs | None -> Config.rules ()
  in
  let active = List.filter (fun r -> List.mem r rules) rule_order in
  let plan = ref (Plan.lift ~base analyzed) in
  let cost = ref (cost_of cat !plan) in
  let before = !cost in
  let trace = ref [] in
  let changed = ref false in
  let pass_no = ref 0 in
  let progressed = ref true in
  while !progressed && !pass_no < max_passes do
    progressed := false;
    incr pass_no;
    List.iter
      (fun rule ->
        List.iter
          (fun (n : Plan.node) ->
            match propose rule n with
            | None -> ()
            | Some impl ->
                let id = n.Plan.child.A.block.A.id in
                let site =
                  Printf.sprintf "block %d: %s → %s" id
                    (Plan.impl_to_string n.Plan.impl)
                    (Plan.impl_to_string impl)
                in
                let candidate =
                  Plan.renormalize (Plan.replace !plan ~id ~impl)
                in
                let cost' = cost_of cat candidate in
                if cost'.ms < !cost.ms -. eps then begin
                  trace :=
                    {
                      rule;
                      block_id = id;
                      site;
                      cost_before = !cost;
                      cost_after = cost';
                      verdict = Fired;
                    }
                    :: !trace;
                  plan := candidate;
                  cost := cost';
                  changed := true;
                  progressed := true
                end
                else if !pass_no = 1 then
                  (* record the gate's refusals once, for explain *)
                  trace :=
                    {
                      rule;
                      block_id = id;
                      site;
                      cost_before = !cost;
                      cost_after = cost';
                      verdict = Skipped "no estimated improvement";
                    }
                    :: !trace)
          (Plan.nodes !plan))
      active
  done;
  {
    plan = !plan;
    dirs = Plan.directives !plan;
    changed = !changed;
    trace = List.rev !trace;
    before;
    after = !cost;
  }

(* ---------- rendering for explain --costs ---------- *)

let trace_lines (r : result) =
  let line (e : trace_entry) =
    let verdict =
      match e.verdict with
      | Fired -> "fired"
      | Skipped reason -> Printf.sprintf "skipped (%s)" reason
    in
    Printf.sprintf "  %-10s %-45s %8.1f → %8.1f ms  %s"
      (Config.rule_to_string e.rule)
      e.site e.cost_before.ms e.cost_after.ms verdict
  in
  List.map line r.trace
