(* Which rewrite rules are enabled, and the epoch counter that makes
   rule toggling visible to caches.  Rules are OFF by default: the
   rewriter only runs when the user (CLI --rewrite, NRA_REWRITE env, or
   a test) switches rules on, so the seed behavior of every strategy is
   untouched. *)

type rule = Fuse_nests | Push_down | Pipeline | Semijoin

let all = [ Fuse_nests; Push_down; Pipeline; Semijoin ]

let rule_to_string = function
  | Fuse_nests -> "fuse"
  | Push_down -> "push-down"
  | Pipeline -> "pipeline"
  | Semijoin -> "semijoin"

let rule_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fuse" | "fuse-nests" | "nest-fusion" -> Ok Fuse_nests
  | "push-down" | "pushdown" | "push_down" -> Ok Push_down
  | "pipeline" | "pipelined" -> Ok Pipeline
  | "semijoin" | "semi-join" -> Ok Semijoin
  | other ->
      Error
        (Printf.sprintf
           "unknown rewrite rule %S (expected fuse, push-down, pipeline, \
            semijoin, or all/none)"
           other)

(* canonical order, so the mask string is stable no matter how the set
   was spelled *)
let canonical rs = List.filter (fun r -> List.mem r rs) all

let parse spec =
  match String.lowercase_ascii (String.trim spec) with
  | "" | "none" | "off" -> Ok []
  | "all" | "on" -> Ok all
  | s ->
      String.split_on_char ',' s
      |> List.fold_left
           (fun acc tok ->
             match acc with
             | Error _ -> acc
             | Ok rs -> (
                 match rule_of_string tok with
                 | Ok r -> Ok (if List.mem r rs then rs else r :: rs)
                 | Error e -> Error e))
           (Ok [])
      |> Result.map canonical

let enabled =
  ref
    (match Sys.getenv_opt "NRA_REWRITE" with
    | None -> []
    | Some spec -> ( match parse spec with Ok rs -> rs | Error _ -> []))

let epoch = ref 0
let rules () = !enabled
let current_epoch () = !epoch

let set rs =
  enabled := canonical rs;
  incr epoch

let set_spec spec =
  match parse spec with
  | Ok rs ->
      set rs;
      Ok ()
  | Error e -> Error e

let mask () =
  match !enabled with
  | [] -> "none"
  | rs -> String.concat "," (List.map rule_to_string rs)

(* plan-cache key component: the rule mask alone is not enough, because
   a cache entry stored under mask M, invalidated by toggling away and
   back to M, must not resurrect — the epoch makes each [set] distinct *)
let signature () = Printf.sprintf "%s@%d" (mask ()) !epoch
