(** Rewrite-rule configuration: the global enabled-rule set, its parse
    (CLI [--rewrite] / [NRA_REWRITE] env), and the epoch counter that
    plan caches fold into their keys.  Rules are OFF by default, so
    unrewritten execution stays byte-for-byte the seed behavior. *)

type rule =
  | Fuse_nests  (** adjacent-nest fusion: skip the re-sort (§4.2.2) *)
  | Push_down  (** nest push-down past the outer join (§4.2.4) *)
  | Pipeline  (** pipelined linking selection (§4.2.1) *)
  | Semijoin  (** positive linking predicate → plain semijoin (§4.2.5) *)

val all : rule list
val rule_to_string : rule -> string
val rule_of_string : string -> (rule, string) result

val parse : string -> (rule list, string) result
(** ["all"], ["none"], or a comma-separated rule list. *)

val rules : unit -> rule list
(** Currently enabled, in canonical order. *)

val set : rule list -> unit
(** Replace the enabled set and bump the epoch. *)

val set_spec : string -> (unit, string) result
(** [parse] then [set]. *)

val current_epoch : unit -> int

val mask : unit -> string
(** Canonical string of the enabled set, ["none"] when empty. *)

val signature : unit -> string
(** ["mask@epoch"] — the plan-cache key component. *)
