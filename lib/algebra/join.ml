open Nra_relational

type kind = Inner | Left_outer | Semi | Anti

let stats_probes = ref 0

let out_schema kind left right =
  match kind with
  | Inner | Left_outer ->
      Schema.append (Relation.schema left) (Relation.schema right)
  | Semi | Anti -> Relation.schema left

(* Emit output rows for one left row given its matching right rows. *)
let emit kind ~right_arity lrow matches acc =
  match kind with
  | Inner -> List.fold_left (fun a r -> Row.concat lrow r :: a) acc matches
  | Left_outer -> (
      match matches with
      | [] -> Row.concat lrow (Row.nulls right_arity) :: acc
      | ms -> List.fold_left (fun a r -> Row.concat lrow r :: a) acc ms)
  | Semi -> if matches <> [] then lrow :: acc else acc
  | Anti -> if matches = [] then lrow :: acc else acc

let nested_loop kind ~on left right =
  let right_rows = Relation.rows right in
  let right_arity = Schema.arity (Relation.schema right) in
  let acc = ref [] in
  Array.iter
    (fun lrow ->
      Nra_guard.Guard.tick ();
      let matches =
        Array.to_list right_rows
        |> List.filter (fun rrow -> Expr.holds on (Row.concat lrow rrow))
      in
      acc := emit kind ~right_arity lrow matches !acc)
    (Relation.rows left);
  Relation.of_rows (out_schema kind left right) (List.rev !acc)

let join kind ~on left right =
  let left_arity = Schema.arity (Relation.schema left) in
  let equi, residual = Expr.split_equi ~left_arity on in
  if equi = [] then nested_loop kind ~on left right
  else begin
    let lpos = Array.of_list (List.map fst equi) in
    let rpos = Array.of_list (List.map snd equi) in
    let right_rows = Relation.rows right in
    let right_arity = Schema.arity (Relation.schema right) in
    let tbl = Hashtbl.create (max 16 (Array.length right_rows)) in
    Array.iter
      (fun rrow ->
        if not (Row.has_null_on rpos rrow) then
          Hashtbl.add tbl (Row.hash_on rpos rrow) rrow)
      right_rows;
    let residual_pred = Expr.conj residual in
    let acc = ref [] in
    Array.iter
      (fun lrow ->
        Nra_guard.Guard.tick ();
        incr stats_probes;
        let matches =
          if Row.has_null_on lpos lrow then []
          else
            Hashtbl.find_all tbl (Row.hash_on lpos lrow)
            |> List.rev (* restore build order *)
            |> List.filter (fun rrow ->
                   Array.for_all2
                     (fun li ri -> Value.equal lrow.(li) rrow.(ri))
                     lpos rpos
                   && Expr.holds residual_pred (Row.concat lrow rrow))
        in
        acc := emit kind ~right_arity lrow matches !acc)
      (Relation.rows left);
    Relation.of_rows (out_schema kind left right) (List.rev !acc)
  end
