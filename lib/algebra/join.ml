open Nra_relational
module Pool = Nra_pool.Pool

type kind = Inner | Left_outer | Semi | Anti

let stats_probes = ref 0

let out_schema kind left right =
  match kind with
  | Inner | Left_outer ->
      Schema.append (Relation.schema left) (Relation.schema right)
  | Semi | Anti -> Relation.schema left

(* Emit output rows for one left row given its matching right rows. *)
let emit kind ~right_arity lrow matches acc =
  match kind with
  | Inner -> List.fold_left (fun a r -> Row.concat lrow r :: a) acc matches
  | Left_outer -> (
      match matches with
      | [] -> Row.concat lrow (Row.nulls right_arity) :: acc
      | ms -> List.fold_left (fun a r -> Row.concat lrow r :: a) acc ms)
  | Semi -> if matches <> [] then lrow :: acc else acc
  | Anti -> if matches = [] then lrow :: acc else acc

(* ---------- nested loop (no equi-conjunct) ---------- *)

let nested_loop kind ~on left right =
  let left_rows = Relation.rows left in
  let right_rows = Relation.rows right in
  let right_arity = Schema.arity (Relation.schema right) in
  (* hoisted: one list conversion for the whole join, not one per left
     row *)
  let right_list = Array.to_list right_rows in
  (* a trivially-true predicate (the Cartesian fallback in join-nest
     fusion) needs no per-pair concat just to test it *)
  let all_match =
    match on with Expr.Lit3 Three_valued.True -> true | _ -> false
  in
  let matches_of lrow =
    if all_match then right_list
    else
      List.filter (fun rrow -> Expr.holds on (Row.concat lrow rrow)) right_list
  in
  let out =
    if Pool.use_parallel (Array.length left_rows) then begin
      let morsels =
        Pool.parallel_chunks ~n:(Array.length left_rows)
          (fun ledger ~lo ~hi ->
            let acc = ref [] in
            for i = lo to hi - 1 do
              Pool.Ledger.tick ledger;
              acc :=
                emit kind ~right_arity left_rows.(i)
                  (matches_of left_rows.(i))
                  !acc
            done;
            List.rev !acc)
      in
      List.concat (Array.to_list morsels)
    end
    else begin
      let acc = ref [] in
      Array.iter
        (fun lrow ->
          Nra_guard.Guard.tick ();
          acc := emit kind ~right_arity lrow (matches_of lrow) !acc)
        left_rows;
      List.rev !acc
    end
  in
  Relation.of_rows (out_schema kind left right) out

(* ---------- hash join ---------- *)

(* Key-hash vectors: per-row [Row.hash_on] plus a has-null-key bitmap,
   computed column-at-a-time over unboxed cells when the columnar core
   is on ([Batch.hash_on] produces bit-identical hashes, so partition
   assignment, build order and probe results are unchanged).  [None]
   falls back to hashing boxed rows inline, exactly the pre-columnar
   code.  Vectors are computed owner-side; workers only index into the
   resulting plain arrays. *)
(* Only a *cached* batch (primed at scan time for a base relation)
   qualifies: for an unprimed intermediate, building a transient batch
   of the key columns just to hash them costs more than hashing the
   boxed rows inline, so those sides keep the row path. *)
let key_vectors rel idxs =
  if Batch.enabled () && not (Relation.is_empty rel) then
    match Batch.find rel with
    | Some b -> Some (Batch.hash_on b idxs)
    | None -> None
  else None

let vec_null vecs idxs row i =
  match vecs with
  | Some (_, nulls) -> Batch.Bitset.get nulls i
  | None -> Row.has_null_on idxs row

let vec_hash vecs idxs row i =
  match vecs with
  | Some (h, _) -> Array.unsafe_get h i
  | None -> Row.hash_on idxs row

(* The shared probe step: the same expression in the serial and
   parallel paths, so their match lists are identical by construction.
   The key hash is the caller's — precomputed columnar vector entry or
   an inline [Row.hash_on]. *)
let probe_one tbl ~h ~lpos ~rpos ~residual_pred lrow =
  Hashtbl.find_all tbl h
  |> List.rev (* restore build order *)
  |> List.filter (fun rrow ->
         Array.for_all2
           (fun li ri -> Value.equal lrow.(li) rrow.(ri))
           lpos rpos
         && Expr.holds residual_pred (Row.concat lrow rrow))

let join_serial kind ~lpos ~rpos ~residual_pred ~right_arity ~lvecs ~rvecs
    left_rows right_rows =
  let tbl = Hashtbl.create (max 16 (Array.length right_rows)) in
  Array.iteri
    (fun i rrow ->
      if not (vec_null rvecs rpos rrow i) then
        Hashtbl.add tbl (vec_hash rvecs rpos rrow i) rrow)
    right_rows;
  let acc = ref [] in
  Array.iteri
    (fun i lrow ->
      Nra_guard.Guard.tick ();
      incr stats_probes;
      let matches =
        if vec_null lvecs lpos lrow i then []
        else
          probe_one tbl
            ~h:(vec_hash lvecs lpos lrow i)
            ~lpos ~rpos ~residual_pred lrow
      in
      acc := emit kind ~right_arity lrow matches !acc)
    left_rows;
  List.rev !acc

(* Parallel variant: radix-partition the build side by key hash (each
   key's rows land in exactly one partition, in build order), build the
   partition tables in parallel, then probe left-side morsels in
   parallel — each morsel fills its own buffer and the owner
   concatenates the buffers in morsel order, so the result is
   bit-identical to [join_serial].  Workers run only pure row/predicate
   code; checkpoints accrue to the morsel's ledger and are charged at
   the barrier (the guard contract in docs/PERF.md). *)
let join_parallel kind ~lpos ~rpos ~residual_pred ~right_arity ~lvecs ~rvecs
    left_rows right_rows =
  let nparts = Pool.executors () in
  let nright = Array.length right_rows in
  let rhash = Array.make nright 0 in
  let parts = Array.make nparts [] in
  (* reverse iteration so each partition's index list is in build order *)
  for i = nright - 1 downto 0 do
    if not (vec_null rvecs rpos right_rows.(i) i) then begin
      let h = vec_hash rvecs rpos right_rows.(i) i in
      rhash.(i) <- h;
      let p = h land max_int mod nparts in
      parts.(p) <- i :: parts.(p)
    end
  done;
  let part_idx = Array.map Array.of_list parts in
  let tables =
    Pool.parallel_chunks ~min_chunk:1 ~n:nparts (fun _ledger ~lo ~hi ->
        Array.init (hi - lo) (fun k ->
            let ids = part_idx.(lo + k) in
            let tbl = Hashtbl.create (max 16 (Array.length ids)) in
            Array.iter (fun i -> Hashtbl.add tbl rhash.(i) right_rows.(i)) ids;
            tbl))
    |> Array.to_list |> Array.concat
  in
  let morsels =
    Pool.parallel_chunks ~n:(Array.length left_rows) (fun ledger ~lo ~hi ->
        let acc = ref [] in
        for i = lo to hi - 1 do
          let lrow = left_rows.(i) in
          Pool.Ledger.tick ledger;
          let matches =
            if vec_null lvecs lpos lrow i then []
            else
              let h = vec_hash lvecs lpos lrow i in
              probe_one
                tables.(h land max_int mod nparts)
                ~h ~lpos ~rpos ~residual_pred lrow
          in
          acc := emit kind ~right_arity lrow matches !acc
        done;
        List.rev !acc)
  in
  stats_probes := !stats_probes + Array.length left_rows;
  List.concat (Array.to_list morsels)

(* Grace/hybrid variant: when the build side exceeds the buffer pool's
   frame budget, partition both inputs by key hash into [nparts]
   buckets sized so one bucket's build table fits the budget.  Bucket 0
   is kept in memory and probed on the fly during the left pass (the
   "hybrid" refinement); the others spill through Bufpool.Spill —
   charged page writes under the budget, charged page reads when each
   partition is processed build-then-probe.

   Bit-identical to [join_serial] by the same argument as
   [join_parallel]: every row with key hash [h] lands in partition
   [h mod nparts], spills preserve arrival order so each partition
   table is built in build order, and [probe_one] against the
   partition table sees exactly the rows the global table's
   [find_all h] would return.  Left matches are collected into a
   per-row array indexed by the original position (spilled left rows
   carry their index) and emitted in one ordered pass at the end. *)
let join_grace kind ~lpos ~rpos ~residual_pred ~right_arity ~frames ~lvecs
    ~rvecs left_rows right_rows =
  let module B = Nra_storage.Bufpool in
  let build_pages = Nra_storage.Iosim.pages (Array.length right_rows) in
  let budget = max 1 (frames - 1) in
  let nparts = min 64 (max 2 ((build_pages + budget - 1) / budget)) in
  let tbl0 = Hashtbl.create 1024 in
  let rspills =
    Array.init (nparts - 1) (fun p -> B.Spill.create (Printf.sprintf "jr%d" p))
  in
  let lspills =
    Array.init (nparts - 1) (fun p -> B.Spill.create (Printf.sprintf "jl%d" p))
  in
  let free_all () =
    Array.iter B.Spill.free rspills;
    Array.iter B.Spill.free lspills
  in
  Fun.protect ~finally:free_all @@ fun () ->
  (* build pass: partition the right side *)
  Array.iteri
    (fun i rrow ->
      Nra_guard.Guard.tick ();
      if not (vec_null rvecs rpos rrow i) then begin
        let h = vec_hash rvecs rpos rrow i in
        let p = h land max_int mod nparts in
        if p = 0 then Hashtbl.add tbl0 h rrow
        else B.Spill.add rspills.(p - 1) rrow
      end)
    right_rows;
  Array.iter B.Spill.finish rspills;
  (* probe pass: partition 0 resolved immediately, the rest deferred
     with the row's original index prepended *)
  let n = Array.length left_rows in
  let matches = Array.make n [] in
  Array.iteri
    (fun i lrow ->
      Nra_guard.Guard.tick ();
      if not (vec_null lvecs lpos lrow i) then begin
        let h = vec_hash lvecs lpos lrow i in
        let p = h land max_int mod nparts in
        if p = 0 then
          matches.(i) <- probe_one tbl0 ~h ~lpos ~rpos ~residual_pred lrow
        else B.Spill.add lspills.(p - 1) (Array.append [| Value.Int i |] lrow)
      end)
    left_rows;
  Array.iter B.Spill.finish lspills;
  (* spilled partitions run under the Domain pool, one chunk per
     partition: workers walk spill data with [iter_raw] (pure heap
     reads — the pool stays owner-side state) and record the consumed
     partitions in their ledger; the owner replays each partition's
     page reads and frees it at the join barrier, in partition order,
     so charges and fault draws are identical at every pool size.
     [matches] writes are race-free: each left row lives in exactly
     one partition, and one partition belongs to exactly one chunk. *)
  if nparts > 1 then
    ignore
      (Pool.parallel_chunks ~min_chunk:1
         ~n:(nparts - 1)
         (fun ledger ~lo ~hi ->
           for k = lo to hi - 1 do
             Pool.Ledger.tick ledger;
             let rsp = rspills.(k) in
             let tbl = Hashtbl.create (max 16 (B.Spill.length rsp)) in
             B.Spill.iter_raw rsp (fun rrow ->
                 Hashtbl.add tbl (Row.hash_on rpos rrow) rrow);
             B.Spill.iter_raw lspills.(k) (fun packed ->
                 Pool.Ledger.tick ledger;
                 let i =
                   match packed.(0) with Value.Int i -> i | _ -> assert false
                 in
                 let lrow = Array.sub packed 1 (Array.length packed - 1) in
                 matches.(i) <-
                   probe_one tbl ~h:(Row.hash_on lpos lrow) ~lpos ~rpos
                     ~residual_pred lrow);
             Pool.Ledger.consumed_spill ledger rsp;
             Pool.Ledger.consumed_spill ledger lspills.(k)
           done));
  stats_probes := !stats_probes + n;
  let acc = ref [] in
  for i = 0 to n - 1 do
    acc := emit kind ~right_arity left_rows.(i) matches.(i) !acc
  done;
  List.rev !acc

let join kind ~on left right =
  let left_arity = Schema.arity (Relation.schema left) in
  let equi, residual = Expr.split_equi ~left_arity on in
  if equi = [] then nested_loop kind ~on left right
  else begin
    let lpos = Array.of_list (List.map fst equi) in
    let rpos = Array.of_list (List.map snd equi) in
    let left_rows = Relation.rows left in
    let right_rows = Relation.rows right in
    let right_arity = Schema.arity (Relation.schema right) in
    let residual_pred = Expr.conj residual in
    let lvecs = key_vectors left lpos and rvecs = key_vectors right rpos in
    let spill =
      match Nra_storage.Bufpool.frames () with
      | Some f when Nra_storage.Iosim.pages (Array.length right_rows) > f ->
          Some f
      | _ -> None
    in
    let rows =
      match spill with
      | Some frames ->
          (* the grace/hybrid path runs its spilled partitions under
             the Domain pool itself (iter_raw workers + owner-side
             ledger replay), so out-of-core and parallel compose *)
          join_grace kind ~lpos ~rpos ~residual_pred ~right_arity ~frames
            ~lvecs ~rvecs left_rows right_rows
      | None ->
          if
            Pool.use_parallel
              (max (Array.length left_rows) (Array.length right_rows))
          then
            join_parallel kind ~lpos ~rpos ~residual_pred ~right_arity ~lvecs
              ~rvecs left_rows right_rows
          else
            join_serial kind ~lpos ~rpos ~residual_pred ~right_arity ~lvecs
              ~rvecs left_rows right_rows
    in
    Relation.of_rows (out_schema kind left right) rows
  end
