open Nra_relational
module Pool = Nra_pool.Pool

(* Scan+filter is the third parallel kernel (after hash join and nest):
   Exec.Frame funnels every block's local predicates through here.
   Morsels keep their relative order, so the output row order is the
   serial one.

   When the columnar core is on and the predicate compiles to the
   vectorizable subset, each morsel evaluates typed column loops and
   returns a selection vector; the owner splices the vectors in chunk
   order and gathers the original rows.  Otherwise morsels fall back
   to [Expr.holds] row-at-a-time.  Both paths emit the same physical
   rows in the same order. *)

(* Filter a morsel row-at-a-time into a row array (no list rebuild on
   the owner: each morsel packs its survivors once, backwards). *)
let filter_morsel pred rows ~lo ~hi =
  let acc = ref [] and cnt = ref 0 in
  for i = lo to hi - 1 do
    if Expr.holds pred rows.(i) then begin
      acc := rows.(i) :: !acc;
      incr cnt
    end
  done;
  if !cnt = 0 then [||]
  else begin
    let out = Array.make !cnt rows.(lo) in
    let rec fill i = function
      | [] -> ()
      | r :: tl ->
          out.(i) <- r;
          fill (i - 1) tl
    in
    fill (!cnt - 1) !acc;
    out
  end

let select pred rel =
  let rows = Relation.rows rel in
  let n = Array.length rows in
  match Batch.filter_plan pred rel with
  | Some plan ->
      let gather sel = Array.map (fun i -> Array.unsafe_get rows i) sel in
      let picked =
        if not (Pool.use_parallel n) then gather (plan ~lo:0 ~hi:n)
        else
          Array.concat
            (Array.to_list
               (Pool.parallel_chunks ~n (fun _ledger ~lo ~hi ->
                    gather (plan ~lo ~hi))))
      in
      Relation.make (Relation.schema rel) picked
  | None ->
      if not (Pool.use_parallel n) then
        Relation.filter (Expr.holds pred) rel
      else
        Relation.make (Relation.schema rel)
          (Array.concat
             (Array.to_list
                (Pool.parallel_chunks ~n (fun _ledger ~lo ~hi ->
                     filter_morsel pred rows ~lo ~hi))))

let project_cols idxs rel = Relation.project rel idxs

let project_exprs items rel =
  let schema = Schema.of_columns (List.map snd items) in
  let exprs = Array.of_list (List.map fst items) in
  Relation.map_rows schema
    (fun row -> Array.map (Expr.eval_scalar row) exprs)
    rel

(* The output cardinality is known exactly, so fill a pre-sized array
   instead of reversing an accumulated list. *)
let product left right =
  let schema = Schema.append (Relation.schema left) (Relation.schema right) in
  let lrows = Relation.rows left and rrows = Relation.rows right in
  let nl = Array.length lrows and nr = Array.length rrows in
  if nl = 0 || nr = 0 then Relation.make schema [||]
  else begin
    let out = Array.make (nl * nr) [||] in
    for i = 0 to nl - 1 do
      let l = lrows.(i) and base = i * nr in
      for j = 0 to nr - 1 do
        out.(base + j) <- Row.concat l rrows.(j)
      done
    done;
    Relation.make schema out
  end

let distinct rel = Relation.dedup rel

let limit n rel =
  let rows = Relation.rows rel in
  let n = min n (Array.length rows) in
  Relation.make (Relation.schema rel) (Array.sub rows 0 n)
