open Nra_relational
module Pool = Nra_pool.Pool

(* Scan+filter is the third parallel kernel (after hash join and nest):
   Exec.Frame funnels every block's local predicates through here.
   Morsels keep their relative order, so the output row order is the
   serial one. *)
let select pred rel =
  let rows = Relation.rows rel in
  if not (Pool.use_parallel (Array.length rows)) then
    Relation.filter (Expr.holds pred) rel
  else begin
    let morsels =
      Pool.parallel_chunks ~n:(Array.length rows) (fun _ledger ~lo ~hi ->
          let acc = ref [] in
          for i = lo to hi - 1 do
            if Expr.holds pred rows.(i) then acc := rows.(i) :: !acc
          done;
          List.rev !acc)
    in
    Relation.of_rows (Relation.schema rel)
      (List.concat (Array.to_list morsels))
  end

let project_cols idxs rel = Relation.project rel idxs

let project_exprs items rel =
  let schema = Schema.of_columns (List.map snd items) in
  let exprs = Array.of_list (List.map fst items) in
  Relation.map_rows schema
    (fun row -> Array.map (Expr.eval_scalar row) exprs)
    rel

let product left right =
  let schema = Schema.append (Relation.schema left) (Relation.schema right) in
  let right_rows = Relation.rows right in
  let out = ref [] in
  Array.iter
    (fun l ->
      Array.iter (fun r -> out := Row.concat l r :: !out) right_rows)
    (Relation.rows left);
  Relation.of_rows schema (List.rev !out)

let distinct rel = Relation.dedup rel

let limit n rel =
  let rows = Relation.rows rel in
  let n = min n (Array.length rows) in
  Relation.make (Relation.schema rel) (Array.sub rows 0 n)
