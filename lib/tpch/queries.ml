open Nra_relational

type quant = Any | All
type q3_variant = A | B | C

let quant_str = function Any -> "any" | All -> "all"

let q1 ~date_lo ~date_hi =
  Printf.sprintf
    {|select o_orderkey, o_orderpriority
from orders
where o_orderdate >= date '%s' and o_orderdate < date '%s'
  and o_totalprice > all
    (select l_extendedprice
     from lineitem
     where l_orderkey = o_orderkey
       and l_commitdate < l_receiptdate
       and l_shipdate < l_commitdate)|}
    date_lo date_hi

let q1_window ~outer_fraction =
  let span = Gen.orderdate_hi - Gen.orderdate_lo in
  let width = int_of_float (outer_fraction *. float_of_int span) in
  let lo = Gen.orderdate_lo in
  ( Value.string_of_date lo,
    Value.string_of_date (min Gen.orderdate_hi (lo + max 1 width)) )

type ja_link = Ja_in | Ja_not_in | Ja_gt_all | Ja_scalar_eq

let ja_link_str = function
  | Ja_in -> "in"
  | Ja_not_in -> "not in"
  | Ja_gt_all -> "> all"
  | Ja_scalar_eq -> "="

let q1_ja ~link ~date_lo ~date_hi =
  Printf.sprintf
    {|select o_orderkey, o_orderpriority
from orders
where o_orderdate >= date '%s' and o_orderdate < date '%s'
  and o_totalprice %s
    (select max(l_extendedprice)
     from lineitem
     where l_orderkey = o_orderkey
       and l_commitdate < l_receiptdate
       and l_shipdate < l_commitdate)|}
    date_lo date_hi (ja_link_str link)

let q2 ~quant ~size_lo ~size_hi ~availqty_max ~quantity =
  Printf.sprintf
    {|select p_partkey, p_name
from part
where p_size >= %d and p_size <= %d
  and p_retailprice < %s
    (select ps_supplycost
     from partsupp
     where ps_partkey = p_partkey
       and ps_availqty < %d
       and not exists
         (select *
          from lineitem
          where ps_partkey = l_partkey
            and ps_suppkey = l_suppkey
            and l_quantity = %d))|}
    size_lo size_hi (quant_str quant) availqty_max quantity

let q3 ~quant ~exists ~variant ~size_lo ~size_hi ~availqty_max ~quantity =
  let corr1, corr2 =
    match variant with
    | A -> ("p_partkey = l_partkey", "ps_suppkey = l_suppkey")
    | B -> ("p_partkey <> l_partkey", "ps_suppkey = l_suppkey")
    | C -> ("p_partkey = l_partkey", "ps_suppkey <> l_suppkey")
  in
  Printf.sprintf
    {|select p_partkey, p_name
from part
where p_size >= %d and p_size <= %d
  and p_retailprice < %s
    (select ps_supplycost
     from partsupp
     where ps_partkey = p_partkey
       and ps_availqty < %d
       and %s
         (select *
          from lineitem
          where %s
            and %s
            and l_quantity = %d))|}
    size_lo size_hi (quant_str quant) availqty_max
    (if exists then "exists" else "not exists")
    corr1 corr2 quantity

let size_window ~outer_fraction =
  let width = max 1 (int_of_float (outer_fraction *. 50.0)) in
  (1, min 50 width)

let availqty_bound ~fraction =
  max 1 (int_of_float (fraction *. 9999.0))
