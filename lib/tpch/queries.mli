(** The nested queries of the paper's Section 5, as parameterized SQL.

    Block sizes are controlled exactly as in the paper: by the constants
    of the pushed-down selections.  Helpers compute those constants from
    target fractions of the base tables, using the generator's known
    uniform distributions. *)

type quant = Any | All
type q3_variant = A  (** =,= *) | B  (** <>,= *) | C  (** =,<> *)

val q1 : date_lo:string -> date_hi:string -> string
(** Query 1: one-level, [o_totalprice > ALL (select l_extendedprice …)],
    correlated on [l_orderkey = o_orderkey]. *)

val q1_window : outer_fraction:float -> string * string
(** Date window (ISO strings) selecting ≈ the given fraction of
    orders. *)

type ja_link = Ja_in | Ja_not_in | Ja_gt_all | Ja_scalar_eq

val ja_link_str : ja_link -> string
(** The SQL spelling of the linking operator ("in", "not in", "> all",
    "="). *)

val q1_ja : link:ja_link -> date_lo:string -> date_hi:string -> string
(** Query 1-JA: Query 1's shape with an aggregated (type-JA) subquery —
    [o_totalprice θ (select MAX(l_extendedprice) …)], correlated on
    [l_orderkey = o_orderkey], under the chosen linking operator. *)

val q2 : quant:quant -> size_lo:int -> size_hi:int -> availqty_max:int ->
  quantity:int -> string
(** Query 2: two-level linear:
    [p_retailprice < ANY|ALL (select ps_supplycost … and NOT EXISTS
    (select * from lineitem …))]. *)

val q3 : quant:quant -> exists:bool -> variant:q3_variant ->
  size_lo:int -> size_hi:int -> availqty_max:int -> quantity:int -> string
(** Query 3: Query 2 with the innermost block correlated to {e both}
    enclosing blocks ([p_partkey = l_partkey] replaces
    [ps_partkey = l_partkey]); [variant] picks the =/<> combination of
    the two correlated predicates; [exists] selects EXISTS vs NOT
    EXISTS; [quant] the ALL/ANY of the middle linking operator. *)

val size_window : outer_fraction:float -> int * int
(** [p_size] range selecting ≈ the fraction of parts (p_size uniform
    1–50). *)

val availqty_bound : fraction:float -> int
(** [ps_availqty < bound] selecting ≈ the fraction (uniform 1–9999). *)
