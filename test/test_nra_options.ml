(* The nested relational executor under every §4.2 option combination:
   all must compute identical results; the stats must reflect what each
   variant is supposed to avoid. *)

open Nra
open Test_support
module N = Exec.Nra_exec
module A = Planner.Analyze

let option_space =
  let bools = [ false; true ] in
  List.concat_map
    (fun pipelined ->
      List.concat_map
        (fun bottom_up ->
          List.concat_map
            (fun push_down ->
              List.concat_map
                (fun positive ->
                  List.map
                    (fun nest_impl ->
                      {
                        N.pipelined;
                        nest_impl;
                        bottom_up_linear = bottom_up;
                        push_down_nest = push_down;
                        positive_simplify = positive;
                      })
                    [ `Sort; `Hash ])
                bools)
            bools)
        bools)
    bools

let analyze cat sql =
  match A.analyze_string cat sql with
  | Ok t -> t
  | Error m -> Alcotest.fail m

let run_opts cat t options = N.run ~options cat t

let check_all_options cat sql =
  let t = analyze cat sql in
  let reference = Exec.Naive.run cat t in
  List.iteri
    (fun i options ->
      let rel = run_opts cat t options in
      if not (Relation.equal_bag reference rel) then
        Alcotest.fail
          (Printf.sprintf "option combination %d disagrees on %s" i sql))
    option_space

let corpus =
  [
    "select dname from dept where budget < all (select salary from emp \
     where emp.dept_id = dept.dept_id)";
    "select dname from dept where not exists (select * from emp where \
     emp.dept_id = dept.dept_id) and budget > any (select hours from \
     project where project.owner_dept = dept.dept_id)";
    "select dname from dept where budget <= all (select salary from emp \
     where emp.dept_id = dept.dept_id and not exists (select * from \
     project where project.lead_emp = emp.emp_id))";
    "select dname from dept where budget < any (select salary from emp \
     where emp.dept_id = dept.dept_id and exists (select * from project \
     where project.owner_dept = dept.dept_id and project.lead_emp = \
     emp.emp_id))";
    "select ename from emp where salary > all (select budget from dept)";
    "select ename from emp where dept_id in (select dept_id from dept \
     where budget > 20)";
    "select dname from dept where budget > all (select hours from project \
     where project.owner_dept <> dept.dept_id)";
  ]

let test_option_space () =
  let cat = emp_dept_catalog () in
  List.iter (check_all_options cat) corpus

let test_variants_have_names () =
  Alcotest.(check bool) "original is two-pass" false N.original.N.pipelined;
  Alcotest.(check bool) "optimized is pipelined" true N.optimized.N.pipelined;
  Alcotest.(check bool) "full enables everything" true
    (N.full.N.pipelined && N.full.N.bottom_up_linear
    && N.full.N.push_down_nest && N.full.N.positive_simplify)

let test_stats_intermediate () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      "select dname from dept where budget < all (select salary from emp \
       where emp.dept_id = dept.dept_id)"
  in
  let _, st = N.run_where ~options:N.original cat t in
  Alcotest.(check bool) "outer join materialized" true
    (st.N.peak_intermediate_rows > 0);
  (* push-down avoids the wide intermediate entirely *)
  let _, st = N.run_where ~options:N.full cat t in
  Alcotest.(check int) "push-down avoids it" 0 st.N.peak_intermediate_rows

let test_positive_simplification_used () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      "select dname from dept where exists (select * from emp where \
       emp.dept_id = dept.dept_id)"
  in
  let options = { N.original with N.positive_simplify = true } in
  let _, st = N.run_where ~options cat t in
  Alcotest.(check int) "semijoin instead of outer join + nest" 0
    st.N.peak_intermediate_rows;
  Alcotest.(check bool) "no nest time" true (st.N.nest_select_seconds >= 0.0)

let test_nest_cost_recorded () =
  let cfg = { Tpch.Gen.default with scale = 0.002 } in
  let cat = Tpch.Gen.generate cfg in
  let lo, hi = Tpch.Queries.q1_window ~outer_fraction:0.5 in
  let t = analyze cat (Tpch.Queries.q1 ~date_lo:lo ~date_hi:hi) in
  let _, st_orig = N.run_where ~options:N.original cat t in
  let _, st_opt = N.run_where ~options:N.optimized cat t in
  Alcotest.(check bool) "original records nest time" true
    (st_orig.N.nest_select_seconds > 0.0);
  Alcotest.(check bool) "same intermediate size" true
    (st_orig.N.total_intermediate_rows = st_opt.N.total_intermediate_rows)

let test_deep_linear_bottom_up () =
  (* 3-level strictly linear chain: bottom-up must agree *)
  let cat = emp_dept_catalog () in
  let sql =
    "select dname from dept where budget < any (select salary from emp \
     where emp.dept_id = dept.dept_id and salary > all (select hours from \
     project where project.lead_emp = emp.emp_id))"
  in
  let t = analyze cat sql in
  Alcotest.(check bool) "is linear" true t.A.linear;
  check_all_options cat sql

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_plan_description () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      "select dname from dept where budget <= all (select salary from emp \
       where emp.dept_id = dept.dept_id and not exists (select * from \
       project where project.lead_emp = emp.emp_id))"
  in
  let plan = N.plan_description t in
  Alcotest.(check bool) "starts from T1" true (contains plan "T1 :=");
  Alcotest.(check bool) "outer join shown" true (contains plan "⟕");
  Alcotest.(check bool) "nest shown" true (contains plan "ν by");
  Alcotest.(check bool) "pseudo-selection for negative enclosing" true
    (contains plan "σ̄[NOT EXISTS");
  Alcotest.(check bool) "discard at the top" true
    (contains plan "σ[dept.budget <= ALL");
  (* the full options report the shortcut they take *)
  let plan_full = N.plan_description ~options:N.full t in
  Alcotest.(check bool) "bottom-up reported" true
    (contains plan_full "§4.2.3" || contains plan_full "§4.2.4");
  (* explain exposes the pipeline *)
  match Nra.explain cat "select dname from dept where exists (select * from \
                         emp where emp.dept_id = dept.dept_id)" with
  | Ok text ->
      Alcotest.(check bool) "explain includes the pipeline" true
        (contains text "nested relational pipeline")
  | Error m -> Alcotest.fail m

let test_ja_plan_description () =
  let ja_sql =
    "select ename from emp where salary in (select max(budget) from dept \
     where dept.dept_id = emp.dept_id)"
  in
  let cat = emp_dept_catalog () in
  let t = analyze cat ja_sql in
  let plan = N.plan_description t in
  Alcotest.(check bool) "aggregate value set rendered" true
    (contains plan "{max(…)}");
  (* a JA site is never positive: the §4.2.5 semijoin shortcut must not
     be reported even under the full options *)
  let plan_full = N.plan_description ~options:N.full t in
  Alcotest.(check bool) "no semijoin shortcut on a JA link" false
    (contains plan_full "§4.2.5");
  match Nra.explain cat ja_sql with
  | Ok text ->
      Alcotest.(check bool) "explain shows the aggregate" true
        (contains text "agg: max")
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "nra_options"
    [
      ( "equivalence",
        [
          Alcotest.test_case "all 32 option combinations" `Quick
            test_option_space;
          Alcotest.test_case "deep linear chain" `Quick
            test_deep_linear_bottom_up;
        ] );
      ( "variants",
        [
          Alcotest.test_case "presets" `Quick test_variants_have_names;
          Alcotest.test_case "intermediate stats" `Quick
            test_stats_intermediate;
          Alcotest.test_case "positive simplification" `Quick
            test_positive_simplification_used;
          Alcotest.test_case "nest cost recorded" `Quick
            test_nest_cost_recorded;
          Alcotest.test_case "plan description" `Quick test_plan_description;
          Alcotest.test_case "JA plan description" `Quick
            test_ja_plan_description;
        ] );
    ]
