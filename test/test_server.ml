(* The serving layer (ISSUE: sessions, admission control, plan cache):
   admission cap and bounded queue under burst, structured queue
   timeouts, session aggregate budgets killing the Nth statement,
   session close flushing queued work, generation-checked plan-cache
   invalidation on DML and ANALYZE, and a guard unwind (alloc-pressure
   fault) leaving session and cache consistent. *)

open Nra

(* these tests pin exact simulated-I/O budgets (queue timeouts, the
   statement a session budget kills), so a CI-wide NRA_BUFFER_PAGES
   run must not add buffer-pool charges on top; the alloc-pressure
   case additionally relies on the unrewritten plan staging an
   intermediate, so a CI-wide NRA_REWRITE run is pinned off too *)
let () = Bufpool.set_frames None
let () = Nra.set_rewrite_rules []

module Server = Nra_server.Server
module Admission = Nra_server.Admission
module Plan_cache = Nra_server.Plan_cache
module Session = Nra_server.Session

let nested_sql =
  "select ename from emp where dept_id in (select dept_id from dept \
   where budget > 40)"

let server ?(config = Server.default_config) () =
  Server.create ~config (Test_support.emp_dept_catalog ())

let admission_config ?(queue_timeout_ms = Some 1e9) ~max_concurrent ~queue_len
    () =
  {
    Server.default_config with
    Server.admission =
      { Admission.max_concurrent; queue_len; queue_timeout_ms };
  }

let ok_rows = function
  | Ok (Nra.Rows rel) -> Relation.cardinality rel
  | Ok _ -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.fail (Exec_error.to_string e)

(* ---------- admission under burst ---------- *)

let test_burst_cap () =
  let srv =
    server ~config:(admission_config ~max_concurrent:2 ~queue_len:3 ()) ()
  in
  let s = Server.session srv () in
  (* seven statements arriving at the same instant: 2 slots, 3 queue
     places, 2 turned away *)
  let results =
    List.init 7 (fun _ -> Server.submit srv ~at:0.0 s nested_sql)
  in
  let count p = List.length (List.filter p results) in
  Alcotest.(check int) "admitted as running tasks" 2
    (count (function `Running _ -> true | _ -> false));
  Alcotest.(check int) "queued" 3
    (count (function `Queued -> true | _ -> false));
  Alcotest.(check int) "rejected" 2
    (count (function
      | `Done { Server.result = Error (Exec_error.Rejected m); _ } ->
          Alcotest.(check string) "reason" "admission queue full" m;
          true
      | _ -> false));
  (* driving the scheduler runs the two admitted statements interleaved
     and every queued statement on promotion, all to the same result *)
  let late = Server.finish srv in
  Alcotest.(check int) "admitted and queued all completed" 5
    (List.length late);
  List.iter
    (fun o ->
      Alcotest.(check int) "same rows" 4 (ok_rows o.Server.result);
      match o.Server.started_at with
      | Some _ -> ()
      | None -> Alcotest.fail "completed statement never started")
    late;
  Alcotest.(check int) "promoted statements started after the burst" 3
    (List.length
       (List.filter
          (fun o ->
            match o.Server.started_at with
            | Some st -> st > 0.0
            | None -> false)
          late));
  let a = Server.admission_stats srv in
  Alcotest.(check int) "admitted total" 5 a.Admission.admitted;
  Alcotest.(check int) "peak running" 2 a.Admission.peak_running;
  Alcotest.(check int) "peak queue" 3 a.Admission.peak_queue;
  Alcotest.(check int) "rejected_full" 2 a.Admission.rejected_full;
  Alcotest.(check int) "statements charged" 5 (Session.statements s)

let test_queue_timeout () =
  let timeout = 0.001 in
  let srv =
    server
      ~config:
        (admission_config ~max_concurrent:1 ~queue_len:4
           ~queue_timeout_ms:(Some timeout) ())
      ()
  in
  let s = Server.session srv () in
  (match Server.submit srv ~at:0.0 s nested_sql with
  | `Running _ -> ()
  | _ -> Alcotest.fail "first statement should be admitted");
  (match Server.submit srv ~at:0.0 s nested_sql with
  | `Queued -> ()
  | _ -> Alcotest.fail "second statement should queue");
  match Server.finish srv with
  | [ first; o ] -> (
      (match first.Server.result with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Exec_error.to_string e));
      match o.Server.result with
      | Error (Exec_error.Queue_timeout { waited_ms }) ->
          Alcotest.(check (float 1e-9)) "waited the timeout" timeout waited_ms;
          Alcotest.(check (option (float 0.0))) "never started" None
            o.Server.started_at;
          Alcotest.(check bool) "rendered" true
            (String.length
               (Exec_error.to_string
                  (Exec_error.Queue_timeout { waited_ms }))
            > 0);
          Alcotest.(check int) "timed out counted" 1
            (Server.admission_stats srv).Admission.timed_out
      | Error e -> Alcotest.fail (Exec_error.to_string e)
      | Ok _ -> Alcotest.fail "expected a queue timeout")
  | os -> Alcotest.fail (Printf.sprintf "expected 2 outcomes, got %d"
                           (List.length os))

let test_close_flushes_queue () =
  let srv =
    server ~config:(admission_config ~max_concurrent:1 ~queue_len:4 ()) ()
  in
  let a = Server.session srv ~label:"a" () in
  let b = Server.session srv ~label:"b" () in
  (match Server.submit srv ~at:0.0 a nested_sql with
  | `Running _ -> ()
  | _ -> Alcotest.fail "a's statement should be admitted");
  List.iter
    (fun _ ->
      match Server.submit srv ~at:0.0 b nested_sql with
      | `Queued -> ()
      | _ -> Alcotest.fail "b's statements should queue")
    [ (); () ];
  Server.close_session srv b;
  let flushed = Server.drain srv in
  Alcotest.(check int) "both flushed" 2 (List.length flushed);
  List.iter
    (fun o ->
      Alcotest.(check int) "b's outcome" (Session.id b) o.Server.session_id;
      match o.Server.result with
      | Error Exec_error.Cancelled -> ()
      | _ -> Alcotest.fail "expected cancellation")
    flushed;
  (* the closed session is rejected up front *)
  (match Server.submit srv b nested_sql with
  | `Done { Server.result = Error (Exec_error.Rejected m); _ } ->
      Alcotest.(check string) "reason" "session closed" m
  | _ -> Alcotest.fail "closed session must be rejected");
  Alcotest.(check bool) "b closed" true (Session.closed b);
  Alcotest.(check int) "cancelled counted" 2
    (Server.admission_stats srv).Admission.cancelled;
  (* a's in-flight statement still runs to completion... *)
  (match Server.finish srv with
  | [ o ] ->
      Alcotest.(check int) "a's statement completed" 4
        (ok_rows o.Server.result)
  | os ->
      Alcotest.fail
        (Printf.sprintf "expected a's outcome only, got %d" (List.length os)));
  (* ...and nothing of b's ever ran *)
  Alcotest.(check int) "b never charged" 0 (Session.statements b);
  Alcotest.(check int) "a charged once" 1 (Session.statements a)

(* ---------- session aggregate budgets ---------- *)

let test_session_budget_kills_nth () =
  (* measure one statement's simulated-I/O spend on an unlimited
     session, then allow 1.5x that: statement 1 fits, statement 2 must
     die mid-flight on the session's aggregate allowance *)
  let probe = server () in
  let sp = Server.session probe () in
  ignore (ok_rows (Server.exec probe sp nested_sql));
  let per_stmt = (Session.spent sp).Guard.sim_io_ms in
  Alcotest.(check bool) "probe spent io" true (per_stmt > 0.0);
  let srv = server () in
  let s = Server.session srv ~sim_io_ms:(per_stmt *. 1.5) () in
  Alcotest.(check int) "first fits" 4 (ok_rows (Server.exec srv s nested_sql));
  (match Server.exec srv s nested_sql with
  | Error (Exec_error.Budget_exceeded Guard.Sim_io) -> ()
  | Error e -> Alcotest.fail (Exec_error.to_string e)
  | Ok _ -> Alcotest.fail "second statement must exceed the session budget");
  Alcotest.(check int) "both charged" 2 (Session.statements s);
  (* the kill is cooperative and early: the killed statement cannot have
     spent more than the whole session allowance *)
  Alcotest.(check bool) "spend bounded" true
    ((Session.spent s).Guard.sim_io_ms <= per_stmt *. 1.5 +. 1e-9)

let test_statement_override_only_tightens () =
  let srv = server () in
  let s = Server.session srv () in
  (match
     Server.exec srv ~guard:(Guard.budget ~sim_io_ms:1e-9 ()) s nested_sql
   with
  | Error (Exec_error.Budget_exceeded Guard.Sim_io) -> ()
  | Error e -> Alcotest.fail (Exec_error.to_string e)
  | Ok _ -> Alcotest.fail "tight override must kill the statement");
  (* the session itself is unlimited, so the next statement is fine *)
  Alcotest.(check int) "session survives" 4
    (ok_rows (Server.exec srv s nested_sql))

(* ---------- the plan cache ---------- *)

let cache_stats srv = Plan_cache.stats (Server.cache srv)

let test_cache_hit_on_normalized_repeat () =
  let srv = server () in
  let s = Server.session srv () in
  ignore (ok_rows (Server.exec srv s nested_sql));
  ignore
    (ok_rows
       (Server.exec srv s
          "SELECT ename   FROM emp WHERE dept_id IN (select dept_id \
           from dept\n  where budget > 40)"));
  let c = cache_stats srv in
  Alcotest.(check int) "one miss" 1 c.Plan_cache.misses;
  Alcotest.(check int) "one hit" 1 c.Plan_cache.hits;
  (* quoted literals keep their case: different constants, different
     plans *)
  ignore (ok_rows (Server.exec srv s "select * from emp where ename = 'ada'"));
  ignore
    (ok_rows (Server.exec srv s "select * from emp where ename = 'ADA'"));
  let c = cache_stats srv in
  Alcotest.(check int) "literal case is significant" 3 c.Plan_cache.misses;
  Alcotest.(check int) "entries" 3 c.Plan_cache.entries

let test_cache_strategy_keyed () =
  let srv = server () in
  let s = Server.session srv () in
  ignore (ok_rows (Server.exec srv s nested_sql));
  ignore (ok_rows (Server.exec srv s nested_sql));
  (* same text prepared for a different strategy is a different plan *)
  (match
     Plan_cache.find_or_prepare (Server.cache srv) ~strategy:Nra.Naive
       nested_sql
   with
  | Ok p ->
      Alcotest.(check bool) "prepared for naive" true
        (Nra.prepared_strategy p = Nra.Naive)
  | Error e -> Alcotest.fail (Exec_error.to_string e));
  let c = cache_stats srv in
  Alcotest.(check int) "strategy in the key" 2 c.Plan_cache.misses;
  Alcotest.(check int) "hit only on same strategy" 1 c.Plan_cache.hits

let test_cache_invalidation_on_dml_and_analyze () =
  let srv = server () in
  let s = Server.session srv () in
  Alcotest.(check int) "cold" 4 (ok_rows (Server.exec srv s nested_sql));
  Alcotest.(check int) "warm" 4 (ok_rows (Server.exec srv s nested_sql));
  let c = cache_stats srv in
  Alcotest.(check int) "warm hit" 1 c.Plan_cache.hits;
  (* DML bumps the catalog generation: the cached plan must not survive *)
  (match
     Server.exec srv s "insert into emp values (7, 'gil', 1, 55, null)"
   with
  | Ok (Nra.Count 1) -> ()
  | Ok _ -> Alcotest.fail "expected one inserted row"
  | Error e -> Alcotest.fail (Exec_error.to_string e));
  Alcotest.(check int) "sees the insert" 5
    (ok_rows (Server.exec srv s nested_sql));
  let c = cache_stats srv in
  Alcotest.(check int) "invalidated by DML" 1 c.Plan_cache.invalidations;
  (* re-warmed... *)
  Alcotest.(check int) "re-warmed" 5 (ok_rows (Server.exec srv s nested_sql));
  Alcotest.(check int) "re-warmed hit" 2 (cache_stats srv).Plan_cache.hits;
  (* ...until ANALYZE bumps the statistics epoch *)
  (match Server.exec srv s "analyze" with
  | Ok (Nra.Done _) -> ()
  | _ -> Alcotest.fail "analyze failed");
  Alcotest.(check int) "after analyze" 5
    (ok_rows (Server.exec srv s nested_sql));
  Alcotest.(check int) "invalidated by ANALYZE" 2
    (cache_stats srv).Plan_cache.invalidations;
  (* DML and ANALYZE themselves were never cached *)
  Alcotest.(check int) "only the query is cached" 1
    (cache_stats srv).Plan_cache.entries

let test_cache_ja_shape_keyed_and_replanned () =
  let srv = server () in
  let s = Server.session srv () in
  (* a type-JA statement and its non-aggregate lookalike: normalization
     collapses whitespace and case, but the shape fingerprint must keep
     their slots apart *)
  let ja =
    "select ename from emp where salary in (select max(budget) from dept \
     where dept.dept_id = emp.dept_id)"
  in
  let lookalike =
    "select ename from emp where salary in (select budget from dept where \
     dept.dept_id = emp.dept_id)"
  in
  Alcotest.(check bool) "shapes differ" true
    (Nra.query_shape ja <> Nra.query_shape lookalike);
  (* no current salary equals its department's max budget, and the
     NULL-budget / NULL-dept groups are Unknown *)
  Alcotest.(check int) "JA cold" 0 (ok_rows (Server.exec srv s ja));
  Alcotest.(check int) "JA warm" 0 (ok_rows (Server.exec srv s ja));
  ignore (ok_rows (Server.exec srv s lookalike));
  let c = cache_stats srv in
  Alcotest.(check int) "two slots, two misses" 2 c.Plan_cache.misses;
  Alcotest.(check int) "hit only on the same shape" 1 c.Plan_cache.hits;
  Alcotest.(check int) "both cached" 2 c.Plan_cache.entries;
  (* DML bumps the generation: the cached JA plan is invalidated, and
     the re-planned run must see the new row (gil earns exactly the max
     budget of dept 1) *)
  (match
     Server.exec srv s "insert into emp values (7, 'gil', 1, 100, null)"
   with
  | Ok (Nra.Count 1) -> ()
  | Ok _ -> Alcotest.fail "expected one inserted row"
  | Error e -> Alcotest.fail (Exec_error.to_string e));
  Alcotest.(check int) "re-planned JA sees the insert" 1
    (ok_rows (Server.exec srv s ja));
  Alcotest.(check int) "invalidated by DML" 1
    (cache_stats srv).Plan_cache.invalidations

let test_cache_lru_eviction () =
  let cat = Test_support.emp_dept_catalog () in
  let pc = Plan_cache.create ~capacity:2 cat in
  let get sql =
    match Plan_cache.find_or_prepare pc ~strategy:Nra.Nra_optimized sql with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Exec_error.to_string e)
  in
  get "select * from emp";
  get "select * from dept";
  get "select * from emp";  (* refresh emp: dept becomes the LRU victim *)
  get "select * from project";
  let c = Plan_cache.stats pc in
  Alcotest.(check int) "capacity held" 2 c.Plan_cache.entries;
  Alcotest.(check int) "one eviction" 1 c.Plan_cache.evictions;
  get "select * from emp";
  Alcotest.(check int) "emp survived as recently used" 2
    (Plan_cache.stats pc).Plan_cache.hits

let test_normalize () =
  Alcotest.(check string) "case and whitespace" "select * from emp"
    (Plan_cache.normalize "  SELECT   *\n FROM\temp ;");
  Alcotest.(check string) "literals preserved"
    "select * from emp where ename = 'Ada  B'"
    (Plan_cache.normalize "SELECT * FROM emp WHERE ename = 'Ada  B'");
  Alcotest.(check string) "escaped quote stays inside the literal"
    "select 'it''s OK' from emp"
    (Plan_cache.normalize "SELECT   'it''s OK'  FROM emp")

(* ---------- fault unwind consistency ---------- *)

let test_alloc_fault_unwind_keeps_state () =
  (* a correlated query pinned to the NRA pipeline: it materializes the
     wide intermediate whose allocation the fault layer pressures *)
  let correlated =
    "select ename from emp where exists (select * from project where \
     owner_dept = emp.dept_id)"
  in
  let srv =
    server
      ~config:{ Server.default_config with Server.strategy = Nra.Nra_optimized }
      ()
  in
  let s = Server.session srv ~rows:1_000_000 () in
  Alcotest.(check int) "healthy first" 5
    (ok_rows (Server.exec srv s correlated));
  Fault.configure ~alloc_probability:1.0 0.0;
  Fun.protect ~finally:Fault.disable (fun () ->
      match Server.exec srv s correlated with
      | Error (Exec_error.Budget_exceeded Guard.Rows) ->
          Alcotest.(check bool) "alloc fault counted" true
            ((Fault.stats ()).Fault.alloc_injected > 0)
      | Error e -> Alcotest.fail (Exec_error.to_string e)
      | Ok _ -> Alcotest.fail "alloc pressure must kill the statement");
  (* the unwind charged the session and left the cache consistent: the
     same session runs the same (still-cached) plan to completion *)
  Alcotest.(check int) "charged both" 2 (Session.statements s);
  Alcotest.(check int) "recovers" 5 (ok_rows (Server.exec srv s correlated));
  let c = cache_stats srv in
  Alcotest.(check int) "no spurious invalidation" 0
    c.Plan_cache.invalidations;
  Alcotest.(check int) "plan reused across the kill" 2 c.Plan_cache.hits

let () =
  Alcotest.run "server"
    [
      ( "admission",
        [
          Alcotest.test_case "burst: cap, queue, reject" `Quick test_burst_cap;
          Alcotest.test_case "queue timeout is structured" `Quick
            test_queue_timeout;
          Alcotest.test_case "close flushes queued work" `Quick
            test_close_flushes_queue;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "aggregate budget kills Nth statement" `Quick
            test_session_budget_kills_nth;
          Alcotest.test_case "override only tightens" `Quick
            test_statement_override_only_tightens;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "hit on normalized repeat" `Quick
            test_cache_hit_on_normalized_repeat;
          Alcotest.test_case "strategy is in the key" `Quick
            test_cache_strategy_keyed;
          Alcotest.test_case "DML and ANALYZE invalidate" `Quick
            test_cache_invalidation_on_dml_and_analyze;
          Alcotest.test_case "JA shape keyed and re-planned" `Quick
            test_cache_ja_shape_keyed_and_replanned;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "normalization" `Quick test_normalize;
        ] );
      ( "faults",
        [
          Alcotest.test_case "alloc-pressure unwind keeps state" `Quick
            test_alloc_fault_unwind_keeps_state;
        ] );
    ]
