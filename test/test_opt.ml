(* The lib/opt rewrite subsystem (ISSUE: algebraic rewrite pass over
   NRA plans): rule-spec parsing and the cache epoch, per-rule
   fire / must-NOT-fire preconditions on lifted plan IR, the cost gate
   (a rewrite is applied only on strict estimated improvement),
   byte-identical CSV output rewritten-vs-unrewritten across every
   strategy × domains × frame budgets with faults on, the plan cache's
   rewrite-signature key component, and the server's table-level locks
   (DML on disjoint tables interleaves, same-table DML serializes). *)

open Nra
open Test_support
module Cfg = Nra.Opt.Config
module Plan = Nra.Opt.Plan
module Rw = Nra.Opt.Rewrite
module Nx = Nra.Exec.Nra_exec
module An = Nra.Planner.Analyze
module Server = Nra_server.Server
module Scheduler = Nra_server.Scheduler
module Plan_cache = Nra_server.Plan_cache

let reset () =
  Nra.set_rewrite_rules [];
  Nra.Fault.disable ();
  Nra.Bufpool.set_frames None;
  Nra.Pool.set_size 0

let analyze cat sql =
  match An.analyze_string cat sql with
  | Ok t -> t
  | Error m -> Alcotest.fail (Printf.sprintf "analyze failed (%s): %s" sql m)

let lift ?(base = Nx.original) cat sql = Plan.lift ~base (analyze cat sql)

(* the node for block [id], preorder *)
let node_of plan id =
  match Plan.find plan id with
  | Some n -> n
  | None -> Alcotest.fail (Printf.sprintf "no IR node for block %d" id)

let rule = Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Cfg.rule_to_string r))
    ( = )

(* ---------- configuration ---------- *)

let test_config_parse () =
  Alcotest.(check (result (list rule) string)) "all" (Ok Cfg.all)
    (Cfg.parse "all");
  Alcotest.(check (result (list rule) string)) "none" (Ok [])
    (Cfg.parse "none");
  Alcotest.(check (result (list rule) string)) "empty" (Ok [])
    (Cfg.parse "");
  (* canonical order no matter how the set is spelled *)
  Alcotest.(check (result (list rule) string)) "subset, reordered"
    (Ok [ Cfg.Fuse_nests; Cfg.Semijoin ])
    (Cfg.parse "semijoin , FUSE");
  Alcotest.(check (result (list rule) string)) "duplicates collapse"
    (Ok [ Cfg.Pipeline ])
    (Cfg.parse "pipeline,pipelined");
  (match Cfg.parse "semijoin,bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus rule accepted")

let test_config_epoch () =
  reset ();
  let e0 = Nra.rewrite_epoch () in
  let s0 = Nra.rewrite_signature () in
  Nra.set_rewrite_rules Cfg.all;
  Alcotest.(check bool) "set bumps the epoch" true (Nra.rewrite_epoch () > e0);
  Alcotest.(check bool) "signature changed" true (Nra.rewrite_signature () <> s0);
  (* toggling away and back to the same mask must NOT restore the old
     signature — that is what lets caches survive rule flapping *)
  Nra.set_rewrite_rules [];
  Alcotest.(check bool) "same mask, fresh epoch" true
    (Nra.rewrite_signature () <> s0);
  reset ()

(* ---------- per-rule preconditions on the lifted IR ----------

   [Rw.propose] is the structural gate alone (no costing): each rule
   must offer an edit exactly where the executor's runtime validation
   would accept the directive. *)

let exists_equi =
  "select dname from dept where exists (select * from emp where \
   emp.dept_id = dept.dept_id)"

let not_exists_equi =
  "select dname from dept where not exists (select * from emp where \
   emp.dept_id = dept.dept_id)"

let nested_under_negative =
  "select dname from dept where not exists (select * from emp where \
   emp.dept_id = dept.dept_id and exists (select * from project where \
   project.lead_emp = emp.emp_id))"

let non_equi_corr =
  "select dname from dept where budget > all (select hours from project \
   where project.owner_dept <> dept.dept_id)"

let uncorrelated =
  "select ename from emp where salary > all (select budget from dept)"

let test_semijoin_rule () =
  let cat = emp_dept_catalog () in
  (* fires: positive leaf link, equality correlation, discard allowed *)
  (match Rw.propose Cfg.Semijoin (node_of (lift cat exists_equi) 2) with
  | Some Plan.Semijoin -> ()
  | _ -> Alcotest.fail "semijoin must fire on a positive correlated leaf");
  (* must NOT fire: negative linking operator *)
  Alcotest.(check bool) "not under NOT EXISTS" true
    (Rw.propose Cfg.Semijoin (node_of (lift cat not_exists_equi) 2) = None);
  (* must NOT fire: discarding is not allowed below a negative parent
     (the padded σ̄ tuples are still needed upstairs) *)
  Alcotest.(check bool) "not when discard_ok is false" true
    (Rw.propose Cfg.Semijoin (node_of (lift cat nested_under_negative) 3)
    = None);
  (* must NOT fire: uncorrelated blocks take the shared-set path *)
  Alcotest.(check bool) "not on a shared-set site" true
    (Rw.propose Cfg.Semijoin (node_of (lift cat uncorrelated) 2) = None)

let test_push_down_rule () =
  let cat = emp_dept_catalog () in
  (match Rw.propose Cfg.Push_down (node_of (lift cat exists_equi) 2) with
  | Some Plan.Push_down -> ()
  | _ -> Alcotest.fail "push-down must fire on equality correlation");
  (* must NOT fire: the correlation is not an equality *)
  Alcotest.(check bool) "not on non-equality correlation" true
    (Rw.propose Cfg.Push_down (node_of (lift cat non_equi_corr) 2) = None);
  Alcotest.(check bool) "not on a shared-set site" true
    (Rw.propose Cfg.Push_down (node_of (lift cat uncorrelated) 2) = None)

let test_pipeline_rule () =
  let cat = emp_dept_catalog () in
  (* fires on a materialized nest (the original variant)… *)
  (match
     Rw.propose Cfg.Pipeline (node_of (lift ~base:Nx.original cat exists_equi) 2)
   with
  | Some (Plan.Top_down { pipelined = true; _ }) -> ()
  | _ -> Alcotest.fail "pipeline must fire on a materialized nest");
  (* …and must NOT fire when the nest is already pipelined *)
  Alcotest.(check bool) "not when already pipelined" true
    (Rw.propose Cfg.Pipeline
       (node_of (lift ~base:Nx.optimized cat exists_equi) 2)
    = None)

let test_fuse_rule () =
  let cat = emp_dept_catalog () in
  (match
     Rw.propose Cfg.Fuse_nests
       (node_of (lift ~base:Nx.original cat exists_equi) 2)
   with
  | Some (Plan.Top_down { assume_sorted = true; pipelined = false }) -> ()
  | _ -> Alcotest.fail "fusion must offer assume_sorted on a sort nest");
  (* must NOT fire on a pipelined nest (fusion is subsumed there) *)
  Alcotest.(check bool) "not on a pipelined nest" true
    (Rw.propose Cfg.Fuse_nests
       (node_of (lift ~base:Nx.optimized cat exists_equi) 2)
    = None)

(* ---------- the cost gate ---------- *)

let test_gate_no_rules () =
  let cat = emp_dept_catalog () in
  let r = Rw.rewrite ~rules:[] cat (analyze cat exists_equi) ~base:Nx.original in
  Alcotest.(check bool) "no rules, no change" false r.Rw.changed;
  Alcotest.(check int) "no trace" 0 (List.length r.Rw.trace);
  (* the compiled directives of an unchanged plan just restate the
     options-driven choice (the core only installs them when [changed]) *)
  Alcotest.(check bool) "unchanged cost" true
    (r.Rw.after.Rw.ms = r.Rw.before.Rw.ms)

let test_gate_monotone () =
  let cat = emp_dept_catalog () in
  List.iter
    (fun sql ->
      let r =
        Rw.rewrite ~rules:Cfg.all cat (analyze cat sql) ~base:Nx.original
      in
      Alcotest.(check bool)
        (Printf.sprintf "estimate never worsens (%s)" sql)
        true
        (r.Rw.after.Rw.ms <= r.Rw.before.Rw.ms +. 1e-9);
      List.iter
        (fun (e : Rw.trace_entry) ->
          match e.Rw.verdict with
          | Rw.Fired ->
              Alcotest.(check bool) "every fired edit strictly improved" true
                (e.Rw.cost_after.Rw.ms < e.Rw.cost_before.Rw.ms)
          | Rw.Skipped _ -> ())
        r.Rw.trace;
      if r.Rw.changed then
        Alcotest.(check bool) "a changed plan compiles directives" true
          (r.Rw.dirs <> []))
    [ exists_equi; not_exists_equi; nested_under_negative; uncorrelated ]

(* ---------- rewritten vs unrewritten: byte-identical CSV ----------

   The ISSUE's identity matrix: the whole subquery corpus, every
   strategy, domains {0,2,4} × frame budgets {8 pages, unbounded},
   faults on — the CSV under --rewrite all must equal the CSV under
   --rewrite none byte for byte (same rows, same order), or both runs
   must fail identically. *)

let run_csv cat strategy sql spec =
  Nra.set_rewrite_rules spec;
  (* reseed per run so both sides of the comparison see the very same
     fault sequence *)
  Nra.Fault.configure ~seed:11 0.02;
  match Nra.query ~strategy cat sql with
  | Ok rel -> Ok (Relation.to_csv rel)
  | Error m -> Error m

let test_identity_matrix () =
  let cat = emp_dept_catalog () in
  List.iter
    (fun domains ->
      List.iter
        (fun frames ->
          Nra.Pool.set_size domains;
          Nra.Bufpool.set_frames frames;
          List.iter
            (fun sql ->
              List.iter
                (fun strategy ->
                  let plain = run_csv cat strategy sql [] in
                  let rewritten = run_csv cat strategy sql Cfg.all in
                  let label =
                    Printf.sprintf "%s / %d domains / %s frames: %s"
                      (Nra.strategy_to_string strategy)
                      domains
                      (match frames with
                      | Some n -> string_of_int n
                      | None -> "inf")
                      sql
                  in
                  match (plain, rewritten) with
                  | Ok a, Ok b ->
                      if a <> b then
                        Alcotest.fail
                          (Printf.sprintf "CSV diverged under rewrite: %s"
                             label)
                  | Error _, Error _ -> ()
                  | _ ->
                      Alcotest.fail
                        (Printf.sprintf "one side failed: %s" label))
                all_strategies)
            subquery_corpus)
        [ Some 8; None ])
    [ 0; 2; 4 ];
  reset ()

(* ---------- plan cache keys on the rewrite signature ---------- *)

let test_plan_cache_key () =
  reset ();
  let cat = emp_dept_catalog () in
  let pc = Plan_cache.create cat in
  let look () =
    match Plan_cache.find_or_prepare pc ~strategy:Nra.Nra_optimized exists_equi
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Nra.Exec_error.to_string e)
  in
  look ();
  look ();
  let s = Plan_cache.stats pc in
  Alcotest.(check int) "second lookup hits" 1 s.Plan_cache.hits;
  Alcotest.(check int) "one miss" 1 s.Plan_cache.misses;
  (* toggling rules changes the signature: the cached plan must not be
     served for the new configuration *)
  Nra.set_rewrite_rules Cfg.all;
  look ();
  let s = Plan_cache.stats pc in
  Alcotest.(check int) "rule toggle misses" 2 s.Plan_cache.misses;
  look ();
  let s = Plan_cache.stats pc in
  Alcotest.(check int) "stable config hits again" 2 s.Plan_cache.hits;
  reset ()

(* ---------- table-level locks in the server ----------

   PR 6 wrapped every non-query in [Guard.with_no_yield], so two DML
   statements could never interleave.  The footprint locks relax that:
   DML on disjoint tables yields back and forth like queries do, while
   same-table writers still serialize (and a catalog-wide ANALYZE keeps
   the old critical section). *)

let tpch_server () =
  let cat =
    Nra.Tpch.Gen.generate
      { Nra.Tpch.Gen.scale = 0.002; seed = 7L; null_rate = 0.0;
        declare_not_null = false }
  in
  Server.create
    ~config:{ Server.default_config with Server.quantum_ms = 0.2 }
    cat

let submit_now srv session sql =
  match Server.submit srv ~at:0.0 session sql with
  | `Running _ | `Queued -> ()
  | `Done o -> (
      match o.Server.result with
      | Ok _ -> ()
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "submit failed (%s): %s" sql
               (Nra.Exec_error.to_string e)))

let all_ok outcomes =
  List.iter
    (fun (o : Server.outcome) ->
      match o.Server.result with
      | Ok _ -> ()
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "%s: %s" o.Server.sql
               (Nra.Exec_error.to_string e)))
    outcomes

let test_disjoint_dml_interleaves () =
  reset ();
  let srv = tpch_server () in
  let s1 = Server.session srv () and s2 = Server.session srv () in
  submit_now srv s1 "update orders set o_shippriority = o_shippriority + 1";
  submit_now srv s2 "update lineitem set l_linenumber = l_linenumber + 0";
  let outs = Server.finish srv in
  all_ok outs;
  Alcotest.(check int) "both statements completed" 2 (List.length outs);
  let st = Scheduler.stats (Server.scheduler srv) in
  (* under with_no_yield this was structurally impossible: a DML ran
     its whole body inside one no-yield slice *)
  Alcotest.(check bool) "disjoint-table DML actually yielded" true
    (st.Scheduler.yields > 0)

let test_same_table_dml_serializes () =
  reset ();
  let srv = tpch_server () in
  let s1 = Server.session srv () and s2 = Server.session srv () in
  submit_now srv s1 "update orders set o_shippriority = o_shippriority + 1";
  submit_now srv s2 "update orders set o_shippriority = o_shippriority + 1";
  let outs = Server.finish srv in
  all_ok outs;
  (* the blocked writer waited on the lock by virtual-sleeping *)
  let st = Scheduler.stats (Server.scheduler srv) in
  Alcotest.(check bool) "second writer slept on the table lock" true
    (st.Scheduler.sleeps > 0);
  (* and both full-table updates report the same row count: neither saw
     a half-applied table *)
  (match
     List.filter_map
       (fun (o : Server.outcome) ->
         match o.Server.result with Ok (Nra.Count n) -> Some n | _ -> None)
       outs
   with
  | [ a; b ] -> Alcotest.(check int) "same rows touched" a b
  | _ -> Alcotest.fail "expected two update counts")

let test_analyze_keeps_critical_section () =
  reset ();
  let srv = tpch_server () in
  let s1 = Server.session srv () and s2 = Server.session srv () in
  submit_now srv s1 "analyze";
  submit_now srv s2 "select count(*) from region";
  all_ok (Server.finish srv)

let () =
  Alcotest.run "opt"
    [
      ( "config",
        [
          Alcotest.test_case "parse" `Quick test_config_parse;
          Alcotest.test_case "epoch" `Quick test_config_epoch;
        ] );
      ( "rules",
        [
          Alcotest.test_case "semijoin" `Quick test_semijoin_rule;
          Alcotest.test_case "push-down" `Quick test_push_down_rule;
          Alcotest.test_case "pipeline" `Quick test_pipeline_rule;
          Alcotest.test_case "fuse" `Quick test_fuse_rule;
        ] );
      ( "gate",
        [
          Alcotest.test_case "no rules, no change" `Quick test_gate_no_rules;
          Alcotest.test_case "monotone estimates" `Quick test_gate_monotone;
        ] );
      ( "identity",
        [ Alcotest.test_case "rewritten = unrewritten" `Slow
            test_identity_matrix ] );
      ( "plan-cache",
        [ Alcotest.test_case "keyed on rewrite signature" `Quick
            test_plan_cache_key ] );
      ( "locks",
        [
          Alcotest.test_case "disjoint DML interleaves" `Quick
            test_disjoint_dml_interleaves;
          Alcotest.test_case "same-table DML serializes" `Quick
            test_same_table_dml_serializes;
          Alcotest.test_case "analyze stays exclusive" `Quick
            test_analyze_keeps_critical_section;
        ] );
    ]
