(* Out-of-core execution: buffer-pool unit tests and the
   spill-equivalence matrix.

   The matrix is the PR's acceptance bar: every strategy, over the
   whole subquery corpus, must return byte-identical CSV at a tiny
   frame budget (grace join / spilled nest engaged), at the paper's
   32 MB working-memory point, and unbounded — all with fault
   injection on, against a pool-disabled reference.  The page size is
   shrunk so the six-row fixtures genuinely overflow the tiny budget. *)

open Nra
module B = Nra.Bufpool
module I = Nra.Iosim

let () = Fault.disable ()

let with_pool ?(rows_per_page = 2) frames f =
  let saved = I.config () in
  I.set_config { saved with I.rows_per_page };
  I.reset ();
  B.set_frames frames;
  Fun.protect
    ~finally:(fun () ->
      B.set_frames None;
      I.set_config saved;
      I.reset ();
      Fault.disable ())
    f

(* ---------- buffer-pool unit tests ---------- *)

let test_lru_eviction () =
  with_pool (Some 2) (fun () ->
      B.read ("t", 0);
      B.read ("t", 1);
      B.read ("t", 0);
      (* miss: the budget is full, page 1 is the cold victim *)
      B.read ("t", 2);
      Alcotest.(check bool) "recent page resident" true (B.resident ("t", 0));
      Alcotest.(check bool) "cold page evicted" false (B.resident ("t", 1));
      B.read ("t", 0);
      B.read ("t", 1);
      let s = B.stats () in
      Alcotest.(check int) "hits" 2 s.B.hits;
      Alcotest.(check int) "misses" 4 s.B.misses;
      Alcotest.(check int) "evictions" 2 s.B.evictions;
      Alcotest.(check int) "clean victims never write back" 0 s.B.writebacks;
      (* every miss paid exactly one sequential page *)
      Alcotest.(check int) "misses charged" 4 (I.counters ()).I.seq_pages)

let test_pin_blocks_eviction () =
  with_pool (Some 2) (fun () ->
      B.pin ("t", 0);
      B.read ("t", 1);
      (* page 0 is the LRU victim but pinned: 1 must go instead *)
      B.read ("t", 2);
      Alcotest.(check bool) "pinned page survives" true (B.resident ("t", 0));
      Alcotest.(check bool) "unpinned page evicted" false (B.resident ("t", 1));
      B.unpin ("t", 0);
      B.read ("t", 3);
      Alcotest.(check bool) "unpinned page evictable" false
        (B.resident ("t", 0)))

let test_dirty_writeback () =
  with_pool (Some 1) (fun () ->
      (* write-behind: the write itself is free... *)
      B.write ("t", 0);
      Alcotest.(check int) "blind write uncharged" 0 (I.counters ()).I.seq_pages;
      (* ...until eviction flushes it: one page out + one page in *)
      B.read ("t", 1);
      let s = B.stats () in
      Alcotest.(check int) "dirty victim written back" 1 s.B.writebacks;
      Alcotest.(check int) "writeback + miss charged" 2
        (I.counters ()).I.seq_pages;
      (* dropping a dead dirty page costs nothing *)
      B.write ("t", 2);
      B.drop ("t", 2);
      Alcotest.(check int) "drop skips the writeback" 2
        (I.counters ()).I.seq_pages;
      Alcotest.(check bool) "dropped page gone" false (B.resident ("t", 2)))

let test_spill_roundtrip () =
  with_pool ~rows_per_page:3 (Some 2) (fun () ->
      let sp = B.Spill.create "unit" in
      let rows = Array.init 8 (fun i -> [| Value.Int i; Value.Int (i * i) |]) in
      Array.iter (B.Spill.add sp) rows;
      B.Spill.finish sp;
      Alcotest.(check int) "length" 8 (B.Spill.length sp);
      let got = ref [] in
      B.Spill.iter sp (fun r -> got := r :: !got);
      let got = Array.of_list (List.rev !got) in
      Alcotest.(check bool) "rows round-trip in order" true (got = rows);
      let s = B.stats () in
      Alcotest.(check int) "one partition" 1 s.B.spilled_partitions;
      (* ceil(8/3) = 3 pages *)
      Alcotest.(check int) "pages" 3 s.B.spilled_pages;
      B.Spill.free sp)

let test_reset_hooks () =
  with_pool (Some 4) (fun () ->
      B.read ("t", 0);
      Alcotest.(check bool) "resident before reset" true (B.resident ("t", 0));
      (* cold measurements reset the I/O model; residency must go too *)
      I.reset ();
      Alcotest.(check bool) "Iosim.reset clears residency" false
        (B.resident ("t", 0));
      Alcotest.(check int) "stats cleared" 0 (B.stats ()).B.misses;
      Alcotest.(check bool) "budget survives" true (B.frames () = Some 4))

let test_disabled_is_free () =
  B.set_frames None;
  I.reset ();
  B.read ("t", 0);
  B.write ("t", 1);
  B.pin ("t", 2);
  B.unpin ("t", 2);
  Alcotest.(check int) "disabled pool never charges" 0
    (I.counters ()).I.seq_pages;
  Alcotest.(check int) "disabled pool never counts" 0 (B.stats ()).B.misses

(* ---------- the spill-equivalence matrix ---------- *)

let budgets =
  [
    ("tiny", Some 2);
    ("paper-32mb", Some (I.frames_for_mb 32.0));
    ("unbounded", None);
  ]

let outcome cat strategy sql =
  match Nra.query ~strategy cat sql with
  | Ok rel -> "ok:" ^ Relation.to_csv rel
  | Error m -> "error:" ^ m

let test_spill_equivalence () =
  let saved = I.config () in
  (* two rows per page so six-row tables overflow a two-frame budget *)
  I.set_config { saved with I.rows_per_page = 2 };
  Fault.configure ~seed:23 0.02;
  let spilled = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      B.set_frames None;
      I.set_config saved;
      I.reset ();
      Fault.disable ())
  @@ fun () ->
  let cat = Test_support.emp_dept_catalog () in
  List.iter
    (fun sql ->
      List.iter
        (fun strategy ->
          B.set_frames None;
          let reference = outcome cat strategy sql in
          List.iter
            (fun (bname, frames) ->
              B.set_frames frames;
              let got = outcome cat strategy sql in
              spilled := !spilled + (B.stats ()).B.spilled_partitions;
              Alcotest.(check string)
                (Printf.sprintf "%s / %s / %s"
                   (Nra.strategy_to_string strategy)
                   bname sql)
                reference got)
            budgets)
        Test_support.all_strategies)
    Test_support.subquery_corpus;
  (* the matrix must actually exercise the spill paths *)
  Alcotest.(check bool) "some partitions spilled" true (!spilled > 0)

let () =
  Alcotest.run "outofcore"
    [
      ( "bufpool",
        [
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "pin blocks eviction" `Quick
            test_pin_blocks_eviction;
          Alcotest.test_case "dirty writeback" `Quick test_dirty_writeback;
          Alcotest.test_case "spill round-trip" `Quick test_spill_roundtrip;
          Alcotest.test_case "reset hooks" `Quick test_reset_hooks;
          Alcotest.test_case "disabled is free" `Quick test_disabled_is_free;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "strategies x budgets x faults" `Quick
            test_spill_equivalence;
        ] );
    ]
