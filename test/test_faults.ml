(* Deterministic fault injection: seeded reproducibility, transparent
   absorption of transient faults by the executors' retry loops (with no
   double-charged I/O), permanent faults surfacing as structured errors
   with engine state intact, and the Iosim checkpoint/rollback primitive
   the Auto fallback protocol uses. *)

open Nra
module Iosim = Nra_storage.Iosim

(* these tests assume every scan touches storage (a permanent fault
   must escape, retries must draw); a CI-wide NRA_BUFFER_PAGES run
   would keep hot pages resident and free, so pin the pool off *)
let () = Bufpool.set_frames None

(* pinned intermediate-row counts assume the unrewritten plans *)
let () = Nra.set_rewrite_rules []

let with_faults ?seed ?max_retries ?backoff_ms p f =
  Fault.configure ?seed ?max_retries ?backoff_ms p;
  Fun.protect ~finally:Fault.disable f

let nested_sql =
  "select ename from emp where dept_id in (select dept_id from dept \
   where budget > 40)"

let test_configure_clamps () =
  with_faults 1.5 (fun () ->
      Alcotest.(check (float 0.0)) "clamped high" 1.0
        (Fault.config ()).Fault.probability);
  with_faults (-0.5) (fun () ->
      Alcotest.(check (float 0.0)) "clamped low" 0.0
        (Fault.config ()).Fault.probability;
      Alcotest.(check bool) "p=0 is disabled" false (Fault.enabled ()));
  Alcotest.(check bool) "disabled after" false (Fault.enabled ())

let test_determinism () =
  let draw () =
    with_faults ~seed:11 0.5 (fun () ->
        List.init 200 (fun _ ->
            match Fault.inject "t" with
            | () -> false
            | exception Fault.Io_fault _ -> true))
  in
  let a = draw () in
  Alcotest.(check (list bool)) "same seed, same faults" a (draw ());
  Alcotest.(check bool) "some faults" true (List.mem true a);
  Alcotest.(check bool) "some passes" true (List.mem false a);
  let other =
    with_faults ~seed:12 0.5 (fun () ->
        List.init 200 (fun _ ->
            match Fault.inject "t" with
            | () -> false
            | exception Fault.Io_fault _ -> true))
  in
  Alcotest.(check bool) "different seed differs" false (a = other)

let test_transient_absorbed () =
  let cat = Test_support.emp_dept_catalog () in
  Iosim.reset ();
  let expected =
    match Nra.query cat nested_sql with
    | Ok rel -> rel
    | Error m -> Alcotest.fail m
  in
  let clean_sim = Iosim.simulated_seconds () in
  with_faults ~seed:5 ~max_retries:8 ~backoff_ms:0.01 0.3 (fun () ->
      (* many runs so the seeded draw certainly injects; every one must
         come back Ok with the same rows and the same simulated charges
         as a fault-free run — injection fires BEFORE any counter or
         cache mutation, so retries never double-charge *)
      for _ = 1 to 20 do
        Iosim.reset ();
        (match Nra.query cat nested_sql with
        | Ok rel ->
            Alcotest.(check bool)
              "same rows under faults" true
              (Relation.equal_bag expected rel)
        | Error m -> Alcotest.fail ("transient fault escaped: " ^ m));
        Alcotest.(check (float 1e-12))
          "no double-charged I/O" clean_sim
          (Iosim.simulated_seconds ())
      done;
      let s = Fault.stats () in
      Alcotest.(check bool) "faults were injected" true (s.Fault.injected > 0);
      Alcotest.(check bool) "retries happened" true (s.Fault.retried > 0);
      Alcotest.(check int) "none escaped" 0 s.Fault.escaped;
      Alcotest.(check bool) "backoff accrued" true
        (s.Fault.backoff_ms_total > 0.0))

let test_permanent_escapes () =
  let cat = Test_support.emp_dept_catalog () in
  with_faults ~seed:1 ~max_retries:2 ~backoff_ms:0.01 1.0 (fun () ->
      (match Nra.run cat "select ename from emp" with
      | Error (Exec_error.Io_error _) -> ()
      | Error e ->
          Alcotest.fail ("wrong error class: " ^ Exec_error.to_string e)
      | Ok _ -> Alcotest.fail "a permanent fault must escape");
      let s = Fault.stats () in
      Alcotest.(check bool) "escape recorded" true (s.Fault.escaped > 0);
      Alcotest.(check int) "retry budget honored" (s.Fault.escaped * 2)
        s.Fault.retried);
  (* the engine is intact once injection stops *)
  match Nra.query cat "select ename from emp" with
  | Ok rel -> Alcotest.(check int) "rows" 6 (Relation.cardinality rel)
  | Error m -> Alcotest.fail m

let test_dml_atomic_under_faults () =
  let cat = Test_support.emp_dept_catalog () in
  let gen0 = Catalog.generation cat "emp" in
  with_faults ~seed:2 ~max_retries:1 ~backoff_ms:0.01 1.0 (fun () ->
      match Nra.exec cat "delete from emp where salary > 0" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected the delete's probe to fault");
  Alcotest.(check int) "rows untouched" 6
    (Table.cardinality (Catalog.table cat "emp"));
  Alcotest.(check int) "generation untouched" gen0
    (Catalog.generation cat "emp")

(* ---------- the pluggable backoff sleeper ---------- *)

let test_pluggable_sleeper () =
  let recorded = ref [] in
  Fault.set_sleeper (fun ms -> recorded := ms :: !recorded);
  Fun.protect
    ~finally:(fun () -> Fault.set_sleeper Fault.default_sleeper)
    (fun () ->
      (* permanent faults: every retry backs off through the sleeper *)
      with_faults ~seed:3 ~max_retries:4 ~backoff_ms:2.0 1.0 (fun () ->
          (match Fault.with_retries (fun () -> Fault.inject "probe") with
          | () -> Alcotest.fail "p=1.0 must escape"
          | exception Fault.Io_fault _ -> ());
          let st = Fault.stats () in
          Alcotest.(check int) "retried through sleeper" 4 st.Fault.retried;
          Alcotest.(check int) "sleeper called per retry" 4
            (List.length !recorded);
          (* exponential: 2, 4, 8, 16 — recorded newest first *)
          Alcotest.(check (list (float 1e-9))) "exponential backoff"
            [ 16.0; 8.0; 4.0; 2.0 ] !recorded;
          Alcotest.(check (float 1e-9)) "cumulative sleep stat" 30.0
            st.Fault.backoff_ms_total))

(* ---------- allocation-pressure faults ---------- *)

let test_alloc_pressure_needs_finite_budget () =
  let cat = Test_support.emp_dept_catalog () in
  let correlated =
    "select ename from emp where exists (select * from project where \
     owner_dept = emp.dept_id)"
  in
  Fault.configure ~alloc_probability:1.0 0.0;
  Fun.protect ~finally:Fault.disable (fun () ->
      (* no finite row budget installed: the gate never consults the
         fault layer, so unbudgeted (and CI whole-suite) runs are safe *)
      (match Nra.query cat correlated with
      | Ok rel -> Alcotest.(check int) "unbudgeted ok" 5
                    (Relation.cardinality rel)
      | Error m -> Alcotest.fail m);
      Alcotest.(check int) "no draw without a budget" 0
        (Fault.stats ()).Fault.alloc_injected;
      (* a finite row budget arms it: certain exhaustion at the first
         intermediate materialization, surfacing as a row-budget kill *)
      (match
         Nra.query ~guard:(Guard.budget ~max_rows:1_000_000 ()) cat correlated
       with
      | Error m ->
          Alcotest.(check string) "row kill"
            "query killed: budget exceeded (intermediate-rows)" m
      | Ok _ -> Alcotest.fail "expected an alloc-pressure kill");
      Alcotest.(check bool) "draws counted" true
        ((Fault.stats ()).Fault.alloc_injected > 0));
  (* disabled again: the same budgeted query completes *)
  match Nra.query ~guard:(Guard.budget ~max_rows:1_000_000 ()) cat correlated with
  | Ok rel -> Alcotest.(check int) "recovered" 5 (Relation.cardinality rel)
  | Error m -> Alcotest.fail m

let test_alloc_probability_clamped () =
  Fault.configure ~alloc_probability:1.5 0.0;
  Alcotest.(check (float 0.0)) "clamped high" 1.0
    (Fault.config ()).Fault.alloc_probability;
  Fault.disable ();
  Alcotest.(check (float 0.0)) "disable zeroes" 0.0
    (Fault.config ()).Fault.alloc_probability

let test_checkpoint_rollback () =
  Iosim.reset ();
  Iosim.charge_scan_rows 500;
  let cp = Iosim.checkpoint () in
  let sim0 = Iosim.simulated_seconds () in
  let c0 = Iosim.counters () in
  Iosim.charge_scan_rows 5_000;
  Iosim.charge_random_pages 7;
  Iosim.charge_fetch_rows 1_000;
  Alcotest.(check bool) "charges accrued" true
    (Iosim.simulated_seconds () > sim0);
  Iosim.rollback cp;
  Alcotest.(check (float 0.0)) "time restored" sim0
    (Iosim.simulated_seconds ());
  let c1 = Iosim.counters () in
  Alcotest.(check int) "seq pages" c0.Iosim.seq_pages c1.Iosim.seq_pages;
  Alcotest.(check int) "rand pages" c0.Iosim.rand_pages c1.Iosim.rand_pages;
  Alcotest.(check int) "fetched rows" c0.Iosim.fetched_rows
    c1.Iosim.fetched_rows

let () =
  Alcotest.run "faults"
    [
      ( "injection",
        [
          Alcotest.test_case "configure clamps" `Quick test_configure_clamps;
          Alcotest.test_case "seeded determinism" `Quick test_determinism;
          Alcotest.test_case "transient absorbed" `Quick
            test_transient_absorbed;
          Alcotest.test_case "permanent escapes" `Quick
            test_permanent_escapes;
          Alcotest.test_case "DML atomic under faults" `Quick
            test_dml_atomic_under_faults;
          Alcotest.test_case "pluggable sleeper" `Quick test_pluggable_sleeper;
        ] );
      ( "alloc pressure",
        [
          Alcotest.test_case "armed only under a finite row budget" `Quick
            test_alloc_pressure_needs_finite_budget;
          Alcotest.test_case "probability clamped" `Quick
            test_alloc_probability_clamped;
        ] );
      ( "iosim",
        [
          Alcotest.test_case "checkpoint/rollback" `Quick
            test_checkpoint_rollback;
        ] );
    ]
