(* Crash-recovery corpus for the write-ahead log.

   For every DML shape we first run the statement cleanly on a fresh
   catalog, counting its fault points via [Fault.draws].  Then, for
   each point k, we re-run on another fresh catalog with a crash armed
   at exactly point k ([Fault.arm_crash]), catch the simulated power
   loss, and prove [Wal.recover] restores the exact pre-statement
   catalog (byte-identical CSV of every table) — and that recovering
   again is a no-op (replay is idempotent, images are absolute).

   A second pass arms an escaping [Io_fault] (retries zeroed) at every
   point instead: the facade's inline [Wal.abort] must leave the same
   pre-statement state, and a later [recover] must change nothing
   (the Abort record tells it the statement needs no undo). *)

open Nra

(* the harness numbers fault points itself; a CI-wide NRA_FAULT_INJECT
   run must not perturb the draw sequence *)
let () = Fault.disable ()

let fingerprint cat =
  Catalog.tables cat
  |> List.map (fun t -> (Table.name t, Relation.to_csv (Table.relation t)))
  |> List.sort compare
  |> List.map (fun (n, csv) -> n ^ "\n" ^ csv)
  |> String.concat "\n====\n"

(* fresh world: catalog rebuilt, WAL emptied, draw counter re-zeroed.
   Pool residency is cleared too (a CI run may enable NRA_BUFFER_PAGES):
   warm pages skip their charge draws, so the dry run and the armed
   re-run must both start cold for the point numbering to line up. *)
let fresh ?(max_retries = Fault.default_config.Fault.max_retries) () =
  Wal.reset ();
  Bufpool.reset ();
  Fault.configure ~max_retries 0.0;
  Test_support.emp_dept_catalog ()

let exec_ok cat sql =
  match Nra.exec cat sql with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "statement %S failed: %s" sql m

(* (name, setup statements run un-armed, the statement under test) —
   one entry per DML shape the facade logs *)
let dml_corpus =
  [
    ("create", [], "create table scratch (id int, v int, primary key (id))");
    ( "insert-values",
      [],
      "insert into emp values (7, 'gil', 2, 55, 1), (8, 'hal', 3, 45, 5)" );
    ( "insert-select",
      [ "create table hipay (emp_id int, salary int, primary key (emp_id))" ],
      "insert into hipay select emp_id, salary from emp where salary >= 70" );
    ("delete", [], "delete from emp where salary < 65");
    ( "delete-subquery",
      [],
      "delete from project where not exists (select * from emp where \
       emp.emp_id = project.lead_emp and emp.salary >= 70)" );
    ("update", [], "update emp set salary = salary + 10 where dept_id = 1");
    ( "update-subquery",
      [],
      "update dept set budget = 0 where not exists (select * from emp where \
       emp.dept_id = dept.dept_id and emp.salary >= 70)" );
    ("drop", [], "drop table project");
  ]

(* count the statement's fault points with a clean dry run *)
let count_points setup sql =
  let cat = fresh () in
  List.iter (exec_ok cat) setup;
  let d0 = Fault.draws () in
  exec_ok cat sql;
  let n = Fault.draws () - d0 in
  Alcotest.(check bool) (sql ^ ": draws fault points") true (n > 0);
  n

let test_crash_recovery () =
  List.iter
    (fun (name, setup, sql) ->
      let n = count_points setup sql in
      for k = 1 to n do
        let cat = fresh () in
        List.iter (exec_ok cat) setup;
        let before = fingerprint cat in
        Fault.arm_crash ~at:(Fault.draws () + k);
        (match Nra.exec cat sql with
        | exception Fault.Crash _ -> ()
        | Ok _ ->
            Alcotest.failf "%s: crash at point %d/%d did not fire" name k n
        | Error m ->
            Alcotest.failf "%s: crash at point %d/%d surfaced as error: %s"
              name k n m);
        Fault.disarm ();
        ignore (Wal.recover cat);
        Alcotest.(check string)
          (Printf.sprintf "%s: recovered @%d/%d" name k n)
          before (fingerprint cat);
        (* recovery is idempotent: recovering again changes nothing *)
        ignore (Wal.recover cat);
        Alcotest.(check string)
          (Printf.sprintf "%s: recover twice @%d/%d" name k n)
          before (fingerprint cat)
      done)
    dml_corpus

let test_inline_abort () =
  List.iter
    (fun (name, setup, sql) ->
      let n = count_points setup sql in
      for k = 1 to n do
        (* retries zeroed so the armed fault escapes and takes the
           facade's inline-abort path instead of the crash path *)
        let cat = fresh ~max_retries:0 () in
        List.iter (exec_ok cat) setup;
        let before = fingerprint cat in
        Fault.arm_fault ~at:(Fault.draws () + k);
        (match Nra.exec cat sql with
        | Error _ -> ()
        | Ok _ ->
            Alcotest.failf "%s: fault at point %d/%d was absorbed" name k n);
        Fault.disarm ();
        Alcotest.(check string)
          (Printf.sprintf "%s: aborted inline @%d/%d" name k n)
          before (fingerprint cat);
        (* the Abort record makes recovery a no-op afterwards *)
        ignore (Wal.recover cat);
        Alcotest.(check string)
          (Printf.sprintf "%s: recover after abort @%d/%d" name k n)
          before (fingerprint cat)
      done)
    dml_corpus

let test_transient_fault_absorbed () =
  (* with the default retry budget an armed one-shot fault is
     transient: the retry succeeds and the statement completes *)
  List.iter
    (fun (name, setup, sql) ->
      let clean = fresh () in
      List.iter (exec_ok clean) setup;
      exec_ok clean sql;
      let expected = fingerprint clean in
      let cat = fresh () in
      List.iter (exec_ok cat) setup;
      Fault.arm_fault ~at:(Fault.draws () + 1);
      exec_ok cat sql;
      Fault.disarm ();
      Alcotest.(check string)
        (name ^ ": retried to completion")
        expected (fingerprint cat))
    dml_corpus

let test_multi_statement_recovery () =
  (* commit one statement, crash inside the next: recovery must land on
     the state after the first, before the second *)
  let stmt1 = "insert into emp values (7, 'gil', 2, 55, 1)" in
  let stmt2 = "update emp set salary = salary + 10 where dept_id = 1" in
  let cat = fresh () in
  exec_ok cat stmt1;
  let after1 = fingerprint cat in
  let d0 = Fault.draws () in
  exec_ok cat stmt2;
  let n = Fault.draws () - d0 in
  for k = 1 to n do
    let cat = fresh () in
    exec_ok cat stmt1;
    Fault.arm_crash ~at:(Fault.draws () + k);
    (match Nra.exec cat stmt2 with
    | exception Fault.Crash _ -> ()
    | _ -> Alcotest.failf "crash at point %d/%d did not fire" k n);
    Fault.disarm ();
    ignore (Wal.recover cat);
    Alcotest.(check string)
      (Printf.sprintf "multi-statement recovered @%d/%d" k n)
      after1 (fingerprint cat)
  done

let test_redo_restores_lost_writes () =
  (* physical redo: even if the committed statement's effects are lost
     after the crash (we clobber the table behind the WAL's back),
     replay re-applies the committed after-image *)
  let cat = fresh () in
  exec_ok cat "insert into emp values (7, 'gil', 2, 55, 1)";
  let committed = fingerprint cat in
  let d0 = Fault.draws () in
  exec_ok cat "delete from emp where salary < 65";
  let n = Fault.draws () - d0 in
  let cat = fresh () in
  exec_ok cat "insert into emp values (7, 'gil', 2, 55, 1)";
  Fault.arm_crash ~at:(Fault.draws () + n);
  (match Nra.exec cat "delete from emp where salary < 65" with
  | exception Fault.Crash _ -> ()
  | _ -> Alcotest.fail "crash at the last point did not fire");
  Fault.disarm ();
  (* simulate the volatile state being lost with the crash *)
  Catalog.update_rows cat "emp" [||];
  ignore (Wal.recover cat);
  Alcotest.(check string) "redo rebuilt the committed insert" committed
    (fingerprint cat)

let test_wal_counters () =
  let cat = fresh () in
  Alcotest.(check int) "empty log" 0 (Wal.records ());
  exec_ok cat "insert into emp values (7, 'gil', 2, 55, 1)";
  (* Begin + Op + Commit *)
  Alcotest.(check int) "one statement logs three records" 3 (Wal.records ());
  (match Nra.query cat "select ename from emp where emp_id = 7" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "queries do not log" 3 (Wal.records ());
  Wal.reset ();
  Alcotest.(check int) "reset empties the counter" 0 (Wal.records ())

let () =
  Alcotest.run "wal"
    [
      ( "crash",
        [
          Alcotest.test_case "kill at every fault point" `Quick
            test_crash_recovery;
          Alcotest.test_case "multi-statement" `Quick
            test_multi_statement_recovery;
          Alcotest.test_case "redo restores lost writes" `Quick
            test_redo_restores_lost_writes;
        ] );
      ( "abort",
        [
          Alcotest.test_case "inline undo at every fault point" `Quick
            test_inline_abort;
          Alcotest.test_case "transient faults absorbed" `Quick
            test_transient_fault_absorbed;
        ] );
      ( "accounting",
        [ Alcotest.test_case "record counters" `Quick test_wal_counters ] );
    ]
