(* Section 2 of the paper argues that classical rewrites of ALL / NOT IN
   are wrong in the presence of NULLs:

     R.A > ALL (select S.B …)  ≠  antijoin(R, S, R.A <= S.B)
     R.A > ALL (select S.B …)  ≠  R.A > (select max(S.B) …)

   "Readers can convince themselves by assuming that R.A is 5 and S.B is
   {2, 3, 4, null}."  These tests make the argument executable, and
   check that the classical executor only uses the antijoin rewrite when
   the NOT NULL constraints make it sound. *)

open Nra
open Test_support
module J = Algebra.Join
module T = Three_valued

(* One-row R with A = 5; S.B = {2,3,4,NULL}. *)
let cat_motivating ?(with_null = true) () =
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"rr" ~key:[ "rid" ]
       [ Schema.column "rid" Ttype.Int; Schema.column "a" Ttype.Int ]
       [| [| vi 1; vi 5 |] |]);
  let rows =
    [ [| vi 1; vi 2 |]; [| vi 2; vi 3 |]; [| vi 3; vi 4 |] ]
    @ if with_null then [ [| vi 4; vnull |] ] else []
  in
  Catalog.register cat
    (Table.create ~name:"ss" ~key:[ "sid" ]
       [ Schema.column "sid" Ttype.Int; Schema.column "b" Ttype.Int ]
       (Array.of_list rows));
  cat

let all_query = "select a from rr where a > all (select b from ss)"

let test_motivating_example () =
  (* with the NULL present, 5 > ALL {2,3,4,null} is Unknown: empty result *)
  let cat = cat_motivating () in
  let rel = check_equivalent cat all_query in
  Alcotest.(check int) "unknown is not selected" 0 (Relation.cardinality rel);
  (* without the NULL it is True *)
  let cat = cat_motivating ~with_null:false () in
  let rel = check_equivalent cat all_query in
  Alcotest.(check int) "plain ALL holds" 1 (Relation.cardinality rel)

let test_antijoin_rewrite_is_wrong_under_nulls () =
  let cat = cat_motivating () in
  let r = Table.relation (Catalog.table cat "rr") in
  let s = Table.relation (Catalog.table cat "ss") in
  (* the naive rewrite: antijoin on A <= B *)
  let anti =
    J.join J.Anti ~on:(Expr.Cmp (T.Le, Expr.Col 1, Expr.Col 3)) r s
  in
  Alcotest.(check int) "antijoin wrongly keeps the tuple" 1
    (Relation.cardinality anti);
  let correct = check_equivalent cat all_query in
  Alcotest.(check bool) "so it disagrees with the real semantics" false
    (Relation.cardinality anti = Relation.cardinality correct)

let test_max_rewrite_is_wrong_under_nulls () =
  let cat = cat_motivating () in
  (* MAX ignores NULLs: max{2,3,4,null} = 4 and 5 > 4 — wrongly true *)
  let via_max =
    q cat "select a from rr where a > (select max(b) from ss)"
  in
  Alcotest.(check int) "max rewrite says yes" 1 (Relation.cardinality via_max);
  let correct = check_equivalent cat all_query in
  Alcotest.(check int) "true ALL says no" 0 (Relation.cardinality correct)

let test_not_in_with_null_in_set () =
  let cat = cat_motivating () in
  (* x NOT IN (set containing NULL) is never True *)
  let rel =
    check_equivalent cat "select a from rr where a not in (select b from ss)"
  in
  Alcotest.(check int) "NOT IN with NULL in set" 0 (Relation.cardinality rel);
  (* …except vacuously over the empty set *)
  let rel =
    check_equivalent cat
      "select a from rr where a not in (select b from ss where b > 100)"
  in
  Alcotest.(check int) "NOT IN over empty set" 1 (Relation.cardinality rel)

let test_null_linking_attribute () =
  (* NULL on the left of IN / NOT IN *)
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"rr" ~key:[ "rid" ]
       [ Schema.column "rid" Ttype.Int; Schema.column "a" Ttype.Int ]
       [| [| vi 1; vnull |] |]);
  Catalog.register cat
    (Table.create ~name:"ss" ~key:[ "sid" ]
       [ Schema.column "sid" Ttype.Int; Schema.column "b" Ttype.Int ]
       [| [| vi 1; vi 5 |] |]);
  List.iter
    (fun (sql, expected) ->
      let rel = check_equivalent cat sql in
      Alcotest.(check int) sql expected (Relation.cardinality rel))
    [
      ("select rid from rr where a in (select b from ss)", 0);
      ("select rid from rr where a not in (select b from ss)", 0);
      (* with an empty subquery both are decided *)
      ("select rid from rr where a in (select b from ss where b > 9)", 0);
      ("select rid from rr where a not in (select b from ss where b > 9)", 1);
      (* EXISTS ignores the NULL attribute entirely *)
      ("select rid from rr where exists (select * from ss)", 1);
    ]

let test_exists_on_all_null_row () =
  (* EXISTS is true even if the inner row is all-NULL in its payload *)
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"rr" ~key:[ "rid" ]
       [ Schema.column "rid" Ttype.Int ]
       [| [| vi 1 |] |]);
  Catalog.register cat
    (Table.create ~name:"ss" ~key:[ "sid" ]
       [ Schema.column "sid" Ttype.Int; Schema.column "b" Ttype.Int ]
       [| [| vi 1; vnull |] |]);
  let rel = check_equivalent cat "select rid from rr where exists (select b from ss)" in
  Alcotest.(check int) "exists sees the row" 1 (Relation.cardinality rel)

(* correlated variant of the motivating example: a NULL inside one
   group must not leak into another group's verdict *)
let test_null_confined_to_group () =
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"rr" ~key:[ "rid" ]
       [ Schema.column "rid" Ttype.Int; Schema.column "a" Ttype.Int ]
       [| [| vi 1; vi 5 |]; [| vi 2; vi 5 |] |]);
  Catalog.register cat
    (Table.create ~name:"ss" ~key:[ "sid" ]
       [
         Schema.column "sid" Ttype.Int;
         Schema.column "rref" Ttype.Int;
         Schema.column "b" Ttype.Int;
       ]
       [|
         [| vi 1; vi 1; vi 2 |];
         [| vi 2; vi 1; vnull |];
         (* group of rid 2 has no NULL *)
         [| vi 3; vi 2; vi 2 |];
       |]);
  let rel =
    check_equivalent cat
      "select rid from rr where a > all (select b from ss where rref = rid)"
  in
  check_rows "only rid 2 qualifies" [ [ Some 2 ] ] rel

(* ---------- type JA: aggregates under the linking operators ----------

   The aggregate subquery always produces exactly one value, and the
   empty group produces it too: COUNT → 0, SUM/AVG/MIN/MAX → NULL.  So
   unlike plain subqueries the group must never be discarded before the
   linking selection, and every comparison against the NULL aggregate
   result is Unknown under 3VL.

   Fixture: rr(rid, k, a) correlates through k into ss(rref, b).
     rid 1: k=1, a=5 — group b = {2, 3}
     rid 2: k=2, a=7 — empty group
     rid 3: k=3, a=5 — group b = {NULL}
     rid 4: k=NULL  — empty group (NULL joins nothing)
   ss additionally has a NULL-rref row that belongs to no group. *)
let cat_ja () =
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"rr" ~key:[ "rid" ]
       [
         Schema.column "rid" Ttype.Int;
         Schema.column "k" Ttype.Int;
         Schema.column "a" Ttype.Int;
       ]
       [|
         [| vi 1; vi 1; vi 5 |];
         [| vi 2; vi 2; vi 7 |];
         [| vi 3; vi 3; vi 5 |];
         [| vi 4; vnull; vi 5 |];
       |]);
  Catalog.register cat
    (Table.create ~name:"ss" ~key:[ "sid" ]
       [
         Schema.column "sid" Ttype.Int;
         Schema.column "rref" Ttype.Int;
         Schema.column "b" Ttype.Int;
       ]
       [|
         [| vi 1; vi 1; vi 2 |];
         [| vi 2; vi 1; vi 3 |];
         [| vi 3; vi 3; vnull |];
         [| vi 4; vnull; vi 9 |];
       |]);
  cat

let ja_expect cat (sql, expected) =
  let rel = check_equivalent cat sql in
  Alcotest.(check (list int))
    sql expected
    (List.map
       (fun row -> match row.(0) with
          | Value.Int i -> i
          | v -> Alcotest.fail ("expected int rid, got " ^ Value.to_string v))
       (Relation.sorted_rows rel))

let test_ja_empty_group_aggregates () =
  let cat = cat_ja () in
  List.iter (ja_expect cat)
    [
      (* COUNT of an empty group is 0, not a missing row: rid 2 and the
         NULL-key rid 4 must surface *)
      ( "select rid from rr where 0 in (select count(*) from ss where \
         ss.rref = rr.k)",
        [ 2; 4 ] );
      (* COUNT(b) also skips the NULL payload: group {NULL} counts 0 *)
      ( "select rid from rr where 0 in (select count(b) from ss where \
         ss.rref = rr.k)",
        [ 2; 3; 4 ] );
      (* SUM of the empty group is NULL, so = is Unknown there *)
      ( "select rid from rr where a = (select sum(b) from ss where ss.rref \
         = rr.k)",
        [ 1 ] );
      (* θ ALL over the aggregate singleton {NULL} is Unknown — unlike
         θ ALL over the empty plain set, which is vacuously True *)
      ( "select rid from rr where a >= all (select sum(b) from ss where \
         ss.rref = rr.k)",
        [ 1 ] );
      ( "select rid from rr where a >= all (select b from ss where ss.rref \
         = rr.k)",
        [ 1; 2; 4 ] );
    ]

let test_ja_null_aggregate_result () =
  let cat = cat_ja () in
  List.iter (ja_expect cat)
    [
      (* every comparison form against a NULL aggregate is Unknown:
         rid 2 (empty), rid 3 (all-NULL group) and rid 4 (NULL key) all
         drop; only rid 1's real max of 3 decides *)
      ( "select rid from rr where a <> (select max(b) from ss where \
         ss.rref = rr.k)",
        [ 1 ] );
      ( "select rid from rr where a not in (select max(b) from ss where \
         ss.rref = rr.k)",
        [ 1 ] );
      ( "select rid from rr where a in (select min(b) from ss where \
         ss.rref = rr.k)",
        [] );
      ( "select rid from rr where a > all (select avg(b) from ss where \
         ss.rref = rr.k)",
        [ 1 ] );
      (* NULL linking attribute against a real aggregate is Unknown too *)
      ( "select rid from rr where k in (select count(*) from ss where \
         ss.rref = rr.k)",
        [] );
    ]

let test_classical_constraint_sensitivity () =
  (* the classical executor may antijoin exactly when both sides are
     declared NOT NULL (paper: the NOT NULL constraint on
     l_extendedprice lets System A antijoin Query 1) *)
  let mk declare =
    let cat = Catalog.create () in
    Catalog.register cat
      (Table.create ~name:"rr" ~key:[ "rid" ]
         [
           Schema.column "rid" Ttype.Int;
           Schema.column ~not_null:true "a" Ttype.Int;
         ]
         [| [| vi 1; vi 5 |] |]);
    Catalog.register cat
      (Table.create ~name:"ss" ~key:[ "sid" ]
         [
           Schema.column "sid" Ttype.Int;
           Schema.column ~not_null:declare "b" Ttype.Int;
         ]
         [| [| vi 1; vi 2 |] |]);
    cat
  in
  let plan_of cat =
    match Planner.Analyze.analyze_string cat all_query with
    | Ok t -> Exec.Classical.plan cat t
    | Error m -> Alcotest.fail m
  in
  (match plan_of (mk true) with
  | [ (2, Exec.Classical.Antijoin) ] -> ()
  | p ->
      Alcotest.fail
        (Printf.sprintf "expected antijoin with NOT NULL, got %s"
           (String.concat ","
              (List.map
                 (fun (_, s) -> Exec.Classical.strategy_to_string s)
                 p))));
  match plan_of (mk false) with
  | [ (2, Exec.Classical.Iterate) ] -> ()
  | _ -> Alcotest.fail "expected nested iteration without NOT NULL"

let () =
  Alcotest.run "null_semantics"
    [
      ( "section 2",
        [
          Alcotest.test_case "5 > ALL {2,3,4,null}" `Quick
            test_motivating_example;
          Alcotest.test_case "antijoin rewrite is wrong" `Quick
            test_antijoin_rewrite_is_wrong_under_nulls;
          Alcotest.test_case "max rewrite is wrong" `Quick
            test_max_rewrite_is_wrong_under_nulls;
        ] );
      ( "null placement",
        [
          Alcotest.test_case "NOT IN with NULL in set" `Quick
            test_not_in_with_null_in_set;
          Alcotest.test_case "NULL linking attribute" `Quick
            test_null_linking_attribute;
          Alcotest.test_case "EXISTS on NULL payload" `Quick
            test_exists_on_all_null_row;
          Alcotest.test_case "NULL confined to its group" `Quick
            test_null_confined_to_group;
        ] );
      ( "type JA",
        [
          Alcotest.test_case "empty-group aggregates" `Quick
            test_ja_empty_group_aggregates;
          Alcotest.test_case "NULL aggregate results" `Quick
            test_ja_null_aggregate_result;
        ] );
      ( "classical constraints",
        [
          Alcotest.test_case "NOT NULL toggles the antijoin" `Quick
            test_classical_constraint_sensitivity;
        ] );
    ]
