(* Cross-executor equivalence: nested iteration (the semantic reference),
   classical unnesting, and the three nested-relational configurations
   must agree on every query — on a hand-written corpus covering every
   linking operator and correlation shape, and on randomized queries
   over randomized NULL-rich data. *)

open Nra
open Test_support

(* the hand-written corpus lives in Test_support.subquery_corpus: the
   scheduler suite replays the same queries under randomized
   interleavings *)
let corpus_emp_dept = subquery_corpus

let test_corpus () =
  let cat = emp_dept_catalog () in
  List.iter (fun sql -> ignore (check_equivalent cat sql)) corpus_emp_dept

(* the auto strategy may pick any executor, but whatever it picks must
   return exactly the nra-optimized relation — with and without
   statistics in place (the choice can differ between the two; the
   result cannot) *)
let test_auto_matches_optimized () =
  let check cat sql =
    match
      ( Nra.query ~strategy:Auto cat sql,
        Nra.query ~strategy:Nra_optimized cat sql )
    with
    | Ok a, Ok b ->
        if Relation.sorted_rows a <> Relation.sorted_rows b then
          Alcotest.fail ("auto disagrees with nra-optimized on: " ^ sql)
    | Error m, _ | _, Error m -> Alcotest.fail (sql ^ ": " ^ m)
  in
  let cold = emp_dept_catalog () in
  List.iter (check cold) corpus_emp_dept;
  let warm = emp_dept_catalog () in
  (match Nra.exec warm "analyze" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  List.iter (check warm) corpus_emp_dept

let test_corpus_against_hand_results () =
  let cat = emp_dept_catalog () in
  (* a few fully hand-derived answers to anchor the corpus *)
  let rel =
    check_equivalent cat
      "select dname from dept where not exists (select * from emp where \
       emp.dept_id = dept.dept_id)"
  in
  Alcotest.(check (list (list string)))
    "only the empty department" [ [ "'empty'" ] ]
    (List.map
       (fun row -> [ Value.to_string row.(0) ])
       (Relation.sorted_rows rel));
  let rel =
    check_equivalent cat
      "select ename from emp where salary >= all (select e2.salary from emp \
       e2 where e2.dept_id = emp.dept_id)"
  in
  (* per department maxima: eng→ada(90); sales→cyd(70) but dan's NULL
     salary makes the comparison for cyd… cyd: 70 >= all {70, null} is
     unknown → out; dan: null >= … unknown → out; hr→eve(80) vacuous
     group of one; fay's dept is NULL: her group is empty (no emp has
     dept_id = NULL) → vacuously true *)
  Alcotest.(check (list (list string)))
    "department maxima under NULLs"
    [ [ "'ada'" ]; [ "'eve'" ]; [ "'fay'" ] ]
    (List.map
       (fun row -> [ Value.to_string row.(0) ])
       (Relation.sorted_rows rel))

(* ---------- randomized skeleton queries ---------- *)

let cmp_syms = [| "="; "<>"; "<"; "<="; ">"; ">=" |]
let quants = [| "any"; "all" |]

type rand_cfg = {
  null_rate : float;
  rows_r : int;
  rows_s : int;
  rows_t : int;
}

let random_catalog rng cfg =
  let v_opt bound =
    if Tpch.Prng.bool rng cfg.null_rate then vnull
    else vi (Tpch.Prng.int rng (max 1 bound))
  in
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"rr" ~key:[ "rid" ]
       [
         Schema.column "rid" Ttype.Int;
         Schema.column "a" Ttype.Int;
         Schema.column "b" Ttype.Int;
       ]
       (Array.init cfg.rows_r (fun i -> [| vi i; v_opt 6; v_opt 6 |])));
  Catalog.register cat
    (Table.create ~name:"ss" ~key:[ "sid" ]
       [
         Schema.column "sid" Ttype.Int;
         Schema.column "c" Ttype.Int;
         Schema.column "d" Ttype.Int;
         Schema.column "rref" Ttype.Int;
       ]
       (Array.init cfg.rows_s (fun i ->
            [| vi i; v_opt 6; v_opt 6; v_opt cfg.rows_r |])));
  Catalog.register cat
    (Table.create ~name:"tt" ~key:[ "tid" ]
       [
         Schema.column "tid" Ttype.Int;
         Schema.column "e" Ttype.Int;
         Schema.column "sref" Ttype.Int;
       ]
       (Array.init cfg.rows_t (fun i ->
            [| vi i; v_opt 6; v_opt cfg.rows_s |])));
  cat

let random_query rng =
  let cmp () = cmp_syms.(Tpch.Prng.int rng 6) in
  let quant () = quants.(Tpch.Prng.int rng 2) in
  let const () = string_of_int (Tpch.Prng.int rng 6) in
  let inner_most =
    if Tpch.Prng.bool rng 0.5 then ""
    else
      let corr =
        match Tpch.Prng.int rng 3 with
        | 0 -> "tt.sref = ss.sid" (* adjacent, equality *)
        | 1 -> "tt.e <> ss.c" (* adjacent, non-equality *)
        | _ -> "tt.e = rr.a" (* non-adjacent *)
      in
      let link =
        match Tpch.Prng.int rng 4 with
        | 0 -> Printf.sprintf "exists (select * from tt where %s)" corr
        | 1 -> Printf.sprintf "not exists (select * from tt where %s)" corr
        | 2 ->
            Printf.sprintf "ss.d %s %s (select e from tt where %s)" (cmp ())
              (quant ()) corr
        | _ ->
            Printf.sprintf "ss.d not in (select e from tt where %s)" corr
      in
      " and " ^ link
  in
  let mid_corr =
    match Tpch.Prng.int rng 3 with
    | 0 -> "ss.rref = rr.rid"
    | 1 -> "ss.c <> rr.b"
    | _ -> "ss.c = rr.a"
  in
  let mid_local =
    match Tpch.Prng.int rng 4 with
    | 0 -> Printf.sprintf "ss.c %s %s" (cmp ()) (const ())
    | 1 -> Printf.sprintf "ss.c between %s and 5" (const ())
    | 2 -> "ss.c is not null"
    | _ -> Printf.sprintf "ss.c in (%s, %s)" (const ()) (const ())
  in
  let subq =
    Printf.sprintf "(select d from ss where %s and %s%s)" mid_corr mid_local
      inner_most
  in
  let link =
    match Tpch.Prng.int rng 6 with
    | 0 ->
        Printf.sprintf
          "exists (select * from ss where %s and %s%s)" mid_corr mid_local
          inner_most
    | 1 ->
        Printf.sprintf
          "not exists (select * from ss where %s and %s%s)" mid_corr
          mid_local inner_most
    | 2 -> Printf.sprintf "rr.b in %s" subq
    | 3 -> Printf.sprintf "rr.b not in %s" subq
    | 4 ->
        (* aggregate scalar subquery: always exactly one value *)
        let agg = [| "min"; "max"; "sum"; "avg"; "count" |] in
        Printf.sprintf "rr.b %s (select %s(d) from ss where %s and %s%s)"
          (cmp ())
          agg.(Tpch.Prng.int rng 5)
          mid_corr mid_local inner_most
    | _ -> Printf.sprintf "rr.b %s %s %s" (cmp ()) (quant ()) subq
  in
  let outer_local = Printf.sprintf "rr.a %s %s" (cmp ()) (const ()) in
  Printf.sprintf "select rid from rr where %s and %s" outer_local link

let test_randomized () =
  let rng = Tpch.Prng.create 0xFEEDL in
  for _round = 1 to 150 do
    let cat =
      random_catalog rng
        { null_rate = 0.25; rows_r = 12; rows_s = 14; rows_t = 10 }
    in
    let sql = random_query rng in
    ignore (check_equivalent cat sql)
  done

let test_randomized_no_nulls () =
  let rng = Tpch.Prng.create 0xBEEFL in
  for _round = 1 to 50 do
    let cat =
      random_catalog rng
        { null_rate = 0.0; rows_r = 10; rows_s = 12; rows_t = 8 }
    in
    let sql = random_query rng in
    ignore (check_equivalent cat sql)
  done

let test_empty_tables () =
  let rng = Tpch.Prng.create 1L in
  let cat =
    random_catalog rng { null_rate = 0.3; rows_r = 5; rows_s = 0; rows_t = 0 }
  in
  List.iter
    (fun sql -> ignore (check_equivalent cat sql))
    [
      "select rid from rr where exists (select * from ss)";
      "select rid from rr where not exists (select * from ss)";
      "select rid from rr where a in (select c from ss)";
      "select rid from rr where a not in (select c from ss)";
      "select rid from rr where a > all (select c from ss where ss.rref = \
       rr.rid)";
      "select rid from rr where a > any (select c from ss where ss.rref = \
       rr.rid)";
    ]

let test_naive_without_indexes () =
  (* the index path and the rescan path must agree; use data with
     secondary indexes so the index path actually fires *)
  let cat =
    Tpch.Gen.generate { Tpch.Gen.default with Tpch.Gen.scale = 0.002 }
  in
  Tpch.Gen.add_benchmark_indexes cat;
  let sqls =
    [
      "select o_orderkey from orders where o_orderkey < 50 and o_totalprice \
       > all (select l_extendedprice from lineitem where l_orderkey = \
       o_orderkey)";
      "select p_partkey from part where p_partkey < 40 and p_retailprice < \
       any (select ps_supplycost from partsupp where ps_partkey = \
       p_partkey)";
    ]
  in
  List.iter
    (fun sql ->
      match Planner.Analyze.analyze_string cat sql with
      | Error m -> Alcotest.fail m
      | Ok t ->
          let with_idx = Exec.Naive.run ~use_indexes:true cat t in
          let probes_with = Exec.Naive.stats.Exec.Naive.index_probes in
          let without = Exec.Naive.run ~use_indexes:false cat t in
          let probes_without = Exec.Naive.stats.Exec.Naive.index_probes in
          Alcotest.(check bool) "index path fired" true (probes_with > 0);
          Alcotest.(check int) "scan path avoids probes" 0 probes_without;
          Alcotest.(check bool) "same result" true
            (Relation.equal_bag with_idx without))
    sqls

let test_empty_outer () =
  let rng = Tpch.Prng.create 2L in
  let cat =
    random_catalog rng { null_rate = 0.3; rows_r = 0; rows_s = 5; rows_t = 5 }
  in
  let rel =
    check_equivalent cat
      "select rid from rr where a in (select c from ss where ss.rref = rr.rid)"
  in
  Alcotest.(check int) "empty outer" 0 (Relation.cardinality rel)

let () =
  Alcotest.run "exec_equivalence"
    [
      ( "corpus",
        [
          Alcotest.test_case "all strategies agree" `Quick test_corpus;
          Alcotest.test_case "auto returns the nra-optimized relation"
            `Quick test_auto_matches_optimized;
          Alcotest.test_case "anchored results" `Quick
            test_corpus_against_hand_results;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "150 random queries with NULLs" `Slow
            test_randomized;
          Alcotest.test_case "50 random queries without NULLs" `Slow
            test_randomized_no_nulls;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "empty inner tables" `Quick test_empty_tables;
          Alcotest.test_case "empty outer table" `Quick test_empty_outer;
          Alcotest.test_case "naive with vs without indexes" `Quick
            test_naive_without_indexes;
        ] );
    ]
