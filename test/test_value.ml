open Nra
open Test_support

let qtest = QCheck_alcotest.to_alcotest

let arb_value =
  let open QCheck in
  let base =
    oneof
      [
        always Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Value.String s) (string_small_of Gen.printable);
        map (fun d -> Value.Date d) (int_range (-100_000) 100_000);
      ]
  in
  base

let test_is_null () =
  Alcotest.(check bool) "null" true (Value.is_null Value.Null);
  Alcotest.(check bool) "int" false (Value.is_null (vi 0))

let test_compare_basics () =
  Alcotest.(check int) "null = null" 0 (Value.compare Value.Null Value.Null);
  Alcotest.(check bool) "null sorts first" true
    (Value.compare Value.Null (vi (-1000)) < 0);
  Alcotest.(check int) "int/float mixed" 0
    (Value.compare (vi 3) (vf 3.0));
  Alcotest.(check bool) "int < float" true (Value.compare (vi 3) (vf 3.5) < 0);
  Alcotest.(check bool) "string order" true
    (Value.compare (vs "abc") (vs "abd") < 0)

let test_hash_consistent_with_equal () =
  Alcotest.(check int) "int/float hash agree" (Value.hash (vi 7))
    (Value.hash (vf 7.0));
  (* the int fast path (no intermediate float) must keep the invariant
     hash (Int n) = hash (Float (float_of_int n)) for every n — pin it
     across the 2^53 exactness boundary where the two paths diverge
     internally, and for the raw hash_int/hash_float entry points the
     columnar kernels use *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "hash invariant at %d" n)
        (Value.hash (vi n))
        (Value.hash (vf (float_of_int n)));
      Alcotest.(check int)
        (Printf.sprintf "hash_int agrees at %d" n)
        (Value.hash (vi n))
        (Value.hash_int n))
    [
      0;
      1;
      -1;
      42;
      1_000_000;
      -1_000_000;
      0x1F_FFFF_FFFF_FFFF (* 2^53 - 1 *);
      0x20_0000_0000_0000 (* 2^53 *);
      0x20_0000_0000_0001 (* 2^53 + 1, inexact conversion *);
      max_int;
      min_int;
    ];
  Alcotest.(check int) "hash_float agrees" (Value.hash (vf 2.5))
    (Value.hash_float 2.5);
  Alcotest.(check int) "non-integral float stays on float path"
    (Value.hash (vf 0.5))
    (Value.hash_float 0.5)

let test_cmp3 () =
  Alcotest.(check (option int)) "null lhs" None (Value.cmp3 Value.Null (vi 1));
  Alcotest.(check (option int)) "null rhs" None (Value.cmp3 (vi 1) Value.Null);
  Alcotest.(check (option int)) "lt" (Some (-1)) (Value.cmp3 (vi 1) (vi 2))

let test_arith () =
  Alcotest.check value_testable "add" (vi 5) (Value.add (vi 2) (vi 3));
  Alcotest.check value_testable "add null" Value.Null
    (Value.add (vi 2) Value.Null);
  Alcotest.check value_testable "mixed promotes" (vf 5.5)
    (Value.add (vi 2) (vf 3.5));
  Alcotest.check value_testable "div by zero is null" Value.Null
    (Value.div (vi 2) (vi 0));
  Alcotest.check value_testable "neg" (vi (-2)) (Value.neg (vi 2));
  Alcotest.check value_testable "date + days" (Value.Date 40)
    (Value.add (Value.Date 10) (vi 30));
  Alcotest.check value_testable "days + date" (Value.Date 40)
    (Value.add (vi 30) (Value.Date 10));
  Alcotest.check value_testable "date - days" (Value.Date 5)
    (Value.sub (Value.Date 10) (vi 5));
  Alcotest.check value_testable "date - date" (vi 7)
    (Value.sub (Value.Date 17) (Value.Date 10));
  Alcotest.check value_testable "date + null" Value.Null
    (Value.add (Value.Date 10) Value.Null);
  Alcotest.(check_raises) "string arithmetic"
    (Value.Type_error "arithmetic on non-numeric values (string, int)")
    (fun () -> ignore (Value.add (vs "x") (vi 1)))

let test_dates () =
  (match Value.date_of_string "1994-03-17" with
  | Value.Date d ->
      Alcotest.(check string) "roundtrip" "1994-03-17" (Value.string_of_date d)
  | _ -> Alcotest.fail "not a date");
  let d1 = Value.date_of_string "1992-01-01"
  and d2 = Value.date_of_string "1998-08-02" in
  (match (d1, d2) with
  | Value.Date a, Value.Date b ->
      Alcotest.(check int) "TPC-H span" 2405 (b - a)
  | _ -> Alcotest.fail "not dates");
  Alcotest.(check bool) "epoch" true
    (Value.equal (Value.date_of_string "1970-01-01") (Value.Date 0));
  List.iter
    (fun bad ->
      match Value.date_of_string bad with
      | exception Value.Type_error _ -> ()
      | _ -> Alcotest.fail ("accepted malformed date " ^ bad))
    [ "1994/03/17"; "94-03-17"; "1994-13-01"; "1994-00-10"; "abcd-ef-gh" ]

let prop_compare_total =
  QCheck.Test.make ~name:"compare is antisymmetric"
    QCheck.(pair arb_value arb_value)
    (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0))

let prop_compare_transitive =
  QCheck.Test.make ~name:"compare is transitive"
    QCheck.(triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
      let le x y = Value.compare x y <= 0 in
      if le a b && le b c then le a c else true)

let prop_equal_hash =
  QCheck.Test.make ~name:"equal values hash equally"
    QCheck.(pair arb_value arb_value)
    (fun (a, b) ->
      if Value.equal a b then Value.hash a = Value.hash b else true)

let prop_date_roundtrip =
  QCheck.Test.make ~name:"date string roundtrip"
    QCheck.(int_range (-200_000) 200_000)
    (fun d ->
      match Value.date_of_string (Value.string_of_date d) with
      | Value.Date d' -> d = d'
      | _ -> false)

let () =
  Alcotest.run "value"
    [
      ( "basics",
        [
          Alcotest.test_case "is_null" `Quick test_is_null;
          Alcotest.test_case "compare" `Quick test_compare_basics;
          Alcotest.test_case "hash/equal" `Quick
            test_hash_consistent_with_equal;
          Alcotest.test_case "cmp3" `Quick test_cmp3;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "dates" `Quick test_dates;
        ] );
      ( "properties",
        [
          qtest prop_compare_total;
          qtest prop_compare_transitive;
          qtest prop_equal_hash;
          qtest prop_date_roundtrip;
        ] );
    ]
