(* Shared fixtures and helpers for the test suites. *)

open Nra

(* the naive tuple-at-a-time differential oracle lives in its own
   module; re-export it so suites can say Test_support.Reference_eval *)
module Reference_eval = Reference_eval

let vi i = Value.Int i
let vf f = Value.Float f
let vs s = Value.String s
let vnull = Value.Null
let col = Schema.column

(* ---------- the paper's Figure 1 base relations ----------

   R(A, B, C, D) with key D; S(E, F, G, H, I) with key I;
   T(J, K, L) with key L. *)

let paper_r () =
  Table.create ~name:"r" ~key:[ "d" ]
    [
      col "a" Ttype.Int;
      col "b" Ttype.Int;
      col "c" Ttype.Int;
      col "d" Ttype.Int;
    ]
    [|
      [| vi 20; vi 1; vi 2; vi 3 |];
      [| vi 30; vi 2; vi 3; vi 5 |];
      [| vnull; vnull; vi 5; vi 4 |];
    |]

let paper_s () =
  Table.create ~name:"s" ~key:[ "i" ]
    [
      col "e" Ttype.Int;
      col "f" Ttype.Int;
      col "g" Ttype.Int;
      col "h" Ttype.Int;
      col "i" Ttype.Int;
    ]
    [|
      [| vi 1; vi 5; vi 3; vi 8; vi 1 |];
      [| vi 2; vi 5; vi 3; vi 9; vi 2 |];
      [| vi 3; vi 5; vi 5; vnull; vi 4 |];
    |]

let paper_t () =
  Table.create ~name:"t" ~key:[ "l" ]
    [ col "j" Ttype.Int; col "k" Ttype.Int; col "l" Ttype.Int ]
    [|
      [| vi 7; vi 2; vi 1 |];
      [| vi 9; vi 2; vi 3 |];
      [| vnull; vi 4; vi 2 |];
    |]

let paper_catalog () =
  let cat = Catalog.create () in
  Catalog.register cat (paper_r ());
  Catalog.register cat (paper_s ());
  Catalog.register cat (paper_t ());
  cat

(* ---------- a small employees/departments schema with NULLs ---------- *)

let emp_dept_catalog () =
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"dept" ~key:[ "dept_id" ]
       [
         col "dept_id" Ttype.Int;
         col ~not_null:true "dname" Ttype.String;
         col "budget" Ttype.Int;
       ]
       [|
         [| vi 1; vs "eng"; vi 100 |];
         [| vi 2; vs "sales"; vi 50 |];
         [| vi 3; vs "hr"; vnull |];
         [| vi 4; vs "empty"; vi 10 |];
       |]);
  Catalog.register cat
    (Table.create ~name:"emp" ~key:[ "emp_id" ]
       [
         col "emp_id" Ttype.Int;
         col ~not_null:true "ename" Ttype.String;
         col "dept_id" Ttype.Int;
         col "salary" Ttype.Int;
         col "manager_id" Ttype.Int;
       ]
       [|
         [| vi 1; vs "ada"; vi 1; vi 90; vnull |];
         [| vi 2; vs "bob"; vi 1; vi 60; vi 1 |];
         [| vi 3; vs "cyd"; vi 2; vi 70; vi 1 |];
         [| vi 4; vs "dan"; vi 2; vnull; vi 3 |];
         [| vi 5; vs "eve"; vi 3; vi 80; vnull |];
         [| vi 6; vs "fay"; vnull; vi 40; vi 5 |];
       |]);
  Catalog.register cat
    (Table.create ~name:"project" ~key:[ "proj_id" ]
       [
         col "proj_id" Ttype.Int;
         col "owner_dept" Ttype.Int;
         col "lead_emp" Ttype.Int;
         col "hours" Ttype.Int;
       ]
       [|
         [| vi 1; vi 1; vi 1; vi 10 |];
         [| vi 2; vi 1; vi 2; vnull |];
         [| vi 3; vi 2; vi 3; vi 30 |];
         [| vi 4; vi 3; vnull; vi 5 |];
       |]);
  cat

(* ---------- the hand-written subquery corpus ----------

   Figure-4-style nesting shapes over the emp/dept schema: every
   linking operator, correlation shape and depth the engine supports.
   Shared by the executor-equivalence suite (every strategy must agree
   on every query) and the scheduler suite (every randomized
   interleaving must agree with serial execution). *)

let subquery_corpus =
  [
    (* flat *)
    "select ename, salary from emp where salary >= 60";
    "select * from emp, dept where emp.dept_id = dept.dept_id";
    (* EXISTS / NOT EXISTS, correlated *)
    "select dname from dept where exists (select * from emp where \
     emp.dept_id = dept.dept_id)";
    "select dname from dept where not exists (select * from emp where \
     emp.dept_id = dept.dept_id)";
    (* IN / NOT IN *)
    "select ename from emp where dept_id in (select dept_id from dept where \
     budget > 40)";
    "select ename from emp where dept_id not in (select dept_id from dept \
     where budget > 40)";
    (* quantified comparisons, correlated and not *)
    "select ename from emp where salary > all (select budget from dept)";
    "select ename from emp where salary > any (select budget from dept)";
    "select dname from dept where budget < all (select salary from emp \
     where emp.dept_id = dept.dept_id)";
    "select dname from dept where budget <> some (select salary from emp \
     where emp.dept_id = dept.dept_id)";
    (* uncorrelated EXISTS (constant truth value) *)
    "select ename from emp where exists (select * from dept where budget > \
     90)";
    "select ename from emp where not exists (select * from dept where \
     budget > 1000)";
    (* two-level linear *)
    "select dname from dept where budget < any (select salary from emp \
     where emp.dept_id = dept.dept_id and exists (select * from project \
     where project.lead_emp = emp.emp_id))";
    "select dname from dept where budget <= all (select salary from emp \
     where emp.dept_id = dept.dept_id and not exists (select * from project \
     where project.lead_emp = emp.emp_id))";
    (* two-level with non-adjacent correlation (tree-expression graph) *)
    "select dname from dept where budget < any (select salary from emp \
     where emp.dept_id = dept.dept_id and exists (select * from project \
     where project.owner_dept = dept.dept_id and project.lead_emp = \
     emp.emp_id))";
    (* tree query: two subqueries in one block, mixed signs *)
    "select dname from dept where exists (select * from emp where \
     emp.dept_id = dept.dept_id) and budget not in (select hours from \
     project where project.owner_dept = dept.dept_id)";
    "select dname from dept where not exists (select * from emp where \
     emp.dept_id = dept.dept_id and salary > 75) and budget > some (select \
     hours from project where project.owner_dept = dept.dept_id)";
    (* non-equality correlation *)
    "select dname from dept where budget > all (select hours from project \
     where project.owner_dept <> dept.dept_id)";
    (* linking attribute is an expression *)
    "select ename from emp where salary + 10 in (select budget from dept)";
    (* linked attribute is an expression *)
    "select ename from emp where salary in (select budget - 10 from dept \
     where dept.dept_id = emp.dept_id)";
    (* self join with correlation *)
    "select e1.ename from emp e1 where e1.salary >= all (select e2.salary \
     from emp e2 where e2.dept_id = e1.dept_id)";
    "select e1.ename from emp e1 where exists (select * from emp e2 where \
     e2.manager_id = e1.emp_id)";
    (* multi-table inner block *)
    "select dname from dept where budget < any (select salary from emp, \
     project where emp.emp_id = project.lead_emp and project.owner_dept = \
     dept.dept_id)";
    (* multi-table outer block *)
    "select ename, dname from emp, dept where emp.dept_id = dept.dept_id \
     and salary > all (select hours from project where project.owner_dept = \
     dept.dept_id)";
    (* local predicates of every flavor *)
    "select ename from emp where salary between 50 and 80 and dept_id in \
     (select dept_id from dept where dname in ('eng', 'hr'))";
    "select ename from emp where manager_id is null and dept_id is not null";
    (* scalar subqueries (aggregate and raw) *)
    "select ename from emp where salary > (select avg(salary) from emp e2 \
     where e2.dept_id = emp.dept_id)";
    "select ename from emp where salary < (select max(budget) from dept)";
    "select ename from emp where dept_id = (select dept_id from dept where \
     dname = 'eng')";
    "select ename from emp where salary >= (select count(*) from project)";
    "select ename from emp where salary - 50 < (select count(hours) from \
     project where project.lead_emp = emp.emp_id)";
    (* type JA: IN / NOT IN / quantified comparisons over an aggregate
       subquery — the value set is the aggregate's singleton, and the
       empty group aggregates to COUNT = 0 / others NULL rather than
       vanishing *)
    "select ename from emp where salary in (select max(budget) from dept \
     where dept.dept_id = emp.dept_id)";
    "select ename from emp where salary not in (select min(budget) from \
     dept where dept.dept_id = emp.dept_id)";
    "select ename from emp where salary > all (select avg(salary) from emp \
     e2 where e2.dept_id = emp.dept_id)";
    "select ename from emp where salary >= any (select sum(hours) from \
     project where project.lead_emp = emp.emp_id)";
    "select ename from emp where 0 in (select count(*) from project where \
     project.lead_emp = emp.emp_id)";
    "select ename from emp where 1 <= all (select count(hours) from \
     project where project.lead_emp = emp.emp_id)";
    "select dname from dept where budget not in (select count(*) from emp \
     where emp.dept_id = dept.dept_id)";
    "select dname from dept where budget > some (select sum(salary) from \
     emp where emp.dept_id = dept.dept_id and salary > 60)";
    (* JA over an uncorrelated aggregate *)
    "select ename from emp where salary in (select max(budget) from dept)";
    "select ename from emp where salary + 10 > all (select avg(hours) from \
     project)";
    (* JA with an expression aggregate argument *)
    "select ename from emp where salary in (select max(budget - 10) from \
     dept where dept.dept_id = emp.dept_id)";
    (* three levels deep, alternating signs *)
    "select dname from dept where budget < any (select salary from emp \
     where emp.dept_id = dept.dept_id and salary > all (select hours from \
     project where project.lead_emp = emp.emp_id and not exists (select * \
     from emp e3 where e3.manager_id = emp.emp_id)))";
    (* NOT over a subquery predicate (normalization) *)
    "select ename from emp where not (salary in (select budget from dept))";
    "select dname from dept where not (budget > all (select salary from \
     emp where emp.dept_id = dept.dept_id))";
    (* DISTINCT / ORDER BY / LIMIT on top of subqueries *)
    "select distinct dept_id from emp where dept_id in (select dept_id \
     from dept)";
    "select ename from emp where dept_id in (select dept_id from dept) \
     order by salary desc limit 3";
  ]

(* ---------- executor comparison ---------- *)

let all_strategies = List.map snd Nra.strategies

let run_all ?(strategies = all_strategies) cat sql =
  List.map
    (fun s ->
      match Nra.query ~strategy:s cat sql with
      | Ok rel -> (Nra.strategy_to_string s, Ok rel)
      | Error m -> (Nra.strategy_to_string s, Error m))
    strategies

let check_equivalent ?strategies cat sql =
  match run_all ?strategies cat sql with
  | [] -> Alcotest.fail "no strategies"
  | (ref_name, ref_res) :: rest ->
      let ref_rel =
        match ref_res with
        | Ok rel -> rel
        | Error m ->
            Alcotest.fail (Printf.sprintf "%s failed on %s: %s" ref_name sql m)
      in
      List.iter
        (fun (name, res) ->
          match res with
          | Error m ->
              Alcotest.fail
                (Printf.sprintf "%s failed on %s: %s" name sql m)
          | Ok rel ->
              if not (Relation.equal_bag ref_rel rel) then
                Alcotest.fail
                  (Format.asprintf
                     "%s disagrees with %s on:@.%s@.%s result:@.%a@.%s \
                      result:@.%a"
                     name ref_name sql ref_name Relation.pp ref_rel name
                     Relation.pp rel))
        rest;
      ref_rel

(* ---------- alcotest helpers ---------- *)

let relation_testable =
  Alcotest.testable Relation.pp (fun a b -> Relation.equal_bag a b)

let value_testable = Alcotest.testable Value.pp Value.equal

let t3 = Alcotest.testable Three_valued.pp Three_valued.equal

let rows_of rel = Relation.sorted_rows rel

let int_rows rel =
  List.map
    (fun row ->
      Array.to_list row
      |> List.map (function
           | Value.Int i -> Some i
           | Value.Null -> None
           | v -> Alcotest.fail ("expected int, got " ^ Value.to_string v)))
    (rows_of rel)

let check_rows name expected rel =
  Alcotest.(check (list (list (option int)))) name expected (int_rows rel)

(* run a flat SQL and return the relation, failing on error *)
let q cat sql =
  match Nra.query cat sql with
  | Ok rel -> rel
  | Error m -> Alcotest.fail (Printf.sprintf "query failed (%s): %s" sql m)
