(* A deliberately naive tuple-at-a-time reference evaluator.

   The differential oracle for the executor suites: it interprets the
   raw SQL AST directly — nested-loop FROM products, per-tuple subquery
   re-evaluation under a scope stack, three-valued WHERE — touching
   none of the machinery under test (no Analyze block tree, no Frame
   compilation, no nest/linking pipeline, no optimizer, no storage
   operators).  Its only shared ground with the engine is the base
   value algebra (Value arithmetic/comparison, Three_valued, LIKE
   matching), which both sides must agree on by definition.

   Semantics implemented, matching the engine's documented behavior:
   - WHERE under 3VL; a tuple qualifies iff the condition is True.
   - EXISTS / NOT EXISTS never yield Unknown.
   - IN ≡ (= ANY), NOT IN ≡ (<> ALL); ANY is a 3VL disjunction, ALL a
     3VL conjunction over the subquery's value set.
   - An aggregate subquery yields exactly one value, even for the
     empty group: COUNT → 0, SUM/AVG/MIN/MAX → NULL.  Aggregates skip
     NULL inputs.
   - A raw scalar subquery with no rows yields Unknown; more than one
     row is a runtime error.

   Supported surface: single-block SELECT with FROM/WHERE/DISTINCT at
   the top level, arbitrary subquery nesting in WHERE.  GROUP BY,
   HAVING, ORDER BY, LIMIT and set operations raise [Unsupported] —
   callers compare order-insensitively via [sorted_csv]. *)

open Nra
module Ast = Sql.Ast
module T3 = Three_valued

exception Unsupported of string
exception Eval_error of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt
let eval_error fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* one FROM binding: alias, column names, current tuple *)
type binding = { alias : string; cols : string array; row : Row.t }

(* a scope stack, innermost block first; each frame is one block's FROM *)
type env = binding list list

let col_index (b : binding) name =
  let n = Array.length b.cols in
  let rec go i = if i >= n then None else if b.cols.(i) = name then Some i else go (i + 1) in
  go 0

let lookup (env : env) tbl name =
  let rec frames = function
    | [] -> (
        match tbl with
        | Some t -> eval_error "unknown table or alias %s" t
        | None -> eval_error "unknown column %s" name)
    | frame :: rest -> (
        match tbl with
        | Some t -> (
            match List.find_opt (fun b -> b.alias = t) frame with
            | None -> frames rest
            | Some b -> (
                match col_index b name with
                | Some i -> b.row.(i)
                | None -> eval_error "unknown column %s.%s" t name))
        | None -> (
            let hits =
              List.filter_map
                (fun b -> Option.map (fun i -> b.row.(i)) (col_index b name))
                frame
            in
            match hits with
            | [ v ] -> v
            | [] -> frames rest
            | _ -> eval_error "ambiguous column %s" name))
  in
  frames env

let rec eval_expr env = function
  | Ast.Col (tbl, name) -> lookup env tbl name
  | Ast.Lit v -> v
  | Ast.Binop (op, a, b) ->
      let f =
        match op with
        | Ast.Add -> Value.add
        | Ast.Sub -> Value.sub
        | Ast.Mul -> Value.mul
        | Ast.Div -> Value.div
      in
      f (eval_expr env a) (eval_expr env b)
  | Ast.Neg e -> Value.neg (eval_expr env e)
  | Ast.Agg _ -> unsupported "aggregate outside a subquery select list"

let eval_agg f arg envs =
  let non_null e =
    List.filter_map
      (fun env ->
        let v = eval_expr env e in
        if Value.is_null v then None else Some v)
      envs
  in
  let arg_or_fail () =
    match arg with
    | Some e -> e
    | None -> eval_error "aggregate without argument"
  in
  match f with
  | Ast.Count_star -> Value.Int (List.length envs)
  | Ast.Count -> Value.Int (List.length (non_null (arg_or_fail ())))
  | Ast.Sum -> (
      match non_null (arg_or_fail ()) with
      | [] -> Value.Null
      | v :: vs -> List.fold_left Value.add v vs)
  | Ast.Avg -> (
      match non_null (arg_or_fail ()) with
      | [] -> Value.Null
      | vs ->
          let sum = List.fold_left Value.add (Value.Int 0) vs in
          Value.div
            (Value.mul sum (Value.Float 1.0))
            (Value.Int (List.length vs)))
  | Ast.Min -> (
      match non_null (arg_or_fail ()) with
      | [] -> Value.Null
      | v :: vs ->
          List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)
  | Ast.Max -> (
      match non_null (arg_or_fail ()) with
      | [] -> Value.Null
      | v :: vs ->
          List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)

(* the cartesian product of a block's FROM, as per-tuple frames *)
let from_frames cat (from : (string * string option) list) : binding list list =
  if from = [] then unsupported "empty FROM";
  let sources =
    List.map
      (fun (name, alias_opt) ->
        let t =
          match Catalog.table_opt cat name with
          | Some t -> t
          | None -> eval_error "unknown table %s" name
        in
        let rel = Table.relation t in
        let cols =
          Array.map (fun c -> c.Schema.name) (Schema.columns (Relation.schema rel))
        in
        let alias = Option.value alias_opt ~default:name in
        (alias, cols, Relation.rows rel))
      from
  in
  (let seen = Hashtbl.create 4 in
   List.iter
     (fun (alias, _, _) ->
       if Hashtbl.mem seen alias then eval_error "duplicate alias %s" alias;
       Hashtbl.add seen alias ())
     sources);
  List.fold_left
    (fun acc (alias, cols, rows) ->
      List.concat_map
        (fun partial ->
          Array.to_list rows
          |> List.map (fun row -> partial @ [ { alias; cols; row } ]))
        acc)
    [ [] ] sources

let rec eval_cond cat (env : env) = function
  | Ast.True_ -> T3.True
  | Ast.Cmp (op, a, b) -> T3.cmp op (eval_expr env a) (eval_expr env b)
  | Ast.And (a, b) -> T3.and_ (eval_cond cat env a) (eval_cond cat env b)
  | Ast.Or (a, b) -> T3.or_ (eval_cond cat env a) (eval_cond cat env b)
  | Ast.Not a -> T3.not_ (eval_cond cat env a)
  | Ast.Is_null e -> T3.of_bool (Value.is_null (eval_expr env e))
  | Ast.Is_not_null e -> T3.of_bool (not (Value.is_null (eval_expr env e)))
  | Ast.Between (x, lo, hi) ->
      let v = eval_expr env x in
      T3.and_
        (T3.cmp T3.Ge v (eval_expr env lo))
        (T3.cmp T3.Le v (eval_expr env hi))
  | Ast.In_list (e, vs) ->
      let x = eval_expr env e in
      T3.disj (List.map (fun v -> T3.cmp T3.Eq x v) vs)
  | Ast.Like (e, pattern) -> (
      match eval_expr env e with
      | Value.Null -> T3.Unknown
      | Value.String s -> T3.of_bool (Expr.like_match ~pattern s)
      | v -> eval_error "LIKE on a non-string value: %s" (Value.to_string v))
  | Ast.Exists q -> T3.of_bool (sub_envs cat env q <> [])
  | Ast.Not_exists q -> T3.of_bool (sub_envs cat env q = [])
  | Ast.In_query (e, q) ->
      let x = eval_expr env e in
      T3.disj (List.map (fun v -> T3.cmp T3.Eq x v) (sub_values cat env q))
  | Ast.Not_in_query (e, q) ->
      let x = eval_expr env e in
      T3.conj (List.map (fun v -> T3.cmp T3.Neq x v) (sub_values cat env q))
  | Ast.Quant_cmp (e, op, quant, q) -> (
      let x = eval_expr env e in
      let verdicts =
        List.map (fun v -> T3.cmp op x v) (sub_values cat env q)
      in
      match quant with Ast.Any -> T3.disj verdicts | Ast.All -> T3.conj verdicts)
  | Ast.Scalar_cmp (e, op, q) -> (
      let x = eval_expr env e in
      match sub_values cat env q with
      | [] -> T3.Unknown
      | [ v ] -> T3.cmp op x v
      | _ :: _ :: _ -> eval_error "scalar subquery returned more than one row")

(* the environments of a subquery's qualifying tuples, with the outer
   scopes still visible (that is the whole point of a reference
   evaluator: correlation by plain lexical scoping, re-run per outer
   tuple).  DISTINCT inside a subquery cannot change any linking
   verdict or aggregate we support, so it is ignored. *)
and sub_envs cat (outer : env) (q : Ast.query) : env list =
  if q.Ast.group_by <> [] then unsupported "GROUP BY in a subquery";
  if q.Ast.having <> None then unsupported "HAVING in a subquery";
  if q.Ast.order_by <> [] then unsupported "ORDER BY in a subquery";
  if q.Ast.limit <> None then unsupported "LIMIT in a subquery";
  from_frames cat q.Ast.from
  |> List.filter_map (fun frame ->
         let env = frame :: outer in
         match q.Ast.where with
         | None -> Some env
         | Some c ->
             if T3.to_bool (eval_cond cat env c) then Some env else None)

(* a subquery's value set: one value per qualifying tuple, or the
   one-row aggregate (COUNT of an empty group is 0; the rest NULL) *)
and sub_values cat outer (q : Ast.query) : Value.t list =
  let envs = sub_envs cat outer q in
  match q.Ast.select with
  | [ Ast.Sel_expr (Ast.Agg (f, arg), _) ] -> [ eval_agg f arg envs ]
  | [ Ast.Sel_expr (e, _) ] -> List.map (fun env -> eval_expr env e) envs
  | _ -> unsupported "subquery must select exactly one expression"

let select_row env (items : Ast.select_item list) : Row.t =
  let frame = match env with f :: _ -> f | [] -> [] in
  let of_item = function
    | Ast.Star -> List.concat_map (fun b -> Array.to_list b.row) frame
    | Ast.Table_star t -> (
        match List.find_opt (fun b -> b.alias = t) frame with
        | Some b -> Array.to_list b.row
        | None -> eval_error "unknown table or alias %s" t)
    | Ast.Sel_expr (Ast.Agg _, _) -> unsupported "top-level aggregate"
    | Ast.Sel_expr (e, _) -> [ eval_expr env e ]
  in
  Array.of_list (List.concat_map of_item items)

let rows_of_query cat (q : Ast.query) : Row.t list =
  if q.Ast.group_by <> [] then unsupported "GROUP BY";
  if q.Ast.having <> None then unsupported "HAVING";
  if q.Ast.order_by <> [] then unsupported "ORDER BY";
  if q.Ast.limit <> None then unsupported "LIMIT";
  let envs = sub_envs cat [] { q with Ast.distinct = false } in
  let rows = List.map (fun env -> select_row env q.Ast.select) envs in
  if q.Ast.distinct then List.sort_uniq Row.compare rows else rows

let rows cat sql : (Row.t list, string) result =
  match Sql.Parser.parse_result sql with
  | Error m -> Error m
  | Ok q -> (
      try Ok (rows_of_query cat q) with
      | Unsupported m -> Error ("unsupported: " ^ m)
      | Eval_error m -> Error m
      | Value.Type_error m -> Error m)

(* ---------- canonical rendering for byte-level comparison ---------- *)

let csv_of_rows (rows : Row.t list) : string =
  List.sort Row.compare rows
  |> List.map (fun row ->
         Array.to_list row |> List.map Value.to_string |> String.concat ",")
  |> String.concat "\n"

let sorted_csv cat sql : (string, string) result =
  Result.map csv_of_rows (rows cat sql)

let relation_csv (rel : Relation.t) : string =
  csv_of_rows (Array.to_list (Relation.rows rel))
