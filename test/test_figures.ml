(* Figure-shape regression tests: the qualitative claims of the paper's
   Section 5 — who wins, and that NRA is insensitive to the linking
   operator — asserted on the simulated 2005 I/O costs at a small scale.
   The full sweeps live in bench/main.ml; these tests pin the shapes. *)

open Nra
module I = Nra_storage.Iosim
module Q = Tpch.Queries

(* figure shapes compare measured CPU and exact simulated I/O between
   strategies; retry backoff sleeps under a CI-wide NRA_FAULT_INJECT
   run would distort both, so injection is off here *)
let () = Fault.disable ()

(* likewise the shapes compare the unrewritten plans per strategy *)
let () = Nra.set_rewrite_rules []

let cat =
  lazy
    (let cat =
       Tpch.Gen.generate { Tpch.Gen.default with Tpch.Gen.scale = 0.01 }
     in
     Tpch.Gen.add_benchmark_indexes cat;
     cat)

let sim strategy sql =
  let cat = Lazy.force cat in
  I.reset ();
  ignore (Nra.query_exn ~strategy cat sql);
  I.simulated_seconds ()

let q1 () =
  let lo, hi = Q.q1_window ~outer_fraction:0.01 in
  Q.q1 ~date_lo:lo ~date_hi:hi

let q2 quant =
  Q.q2 ~quant ~size_lo:1 ~size_hi:12 ~availqty_max:200 ~quantity:25

let q3 ~quant ~exists ~variant =
  Q.q3 ~quant ~exists ~variant ~size_lo:1 ~size_hi:12 ~availqty_max:200
    ~quantity:25

let assert_faster ?(factor = 1.5) name fast slow =
  if fast *. factor >= slow then
    Alcotest.fail
      (Printf.sprintf "%s: expected %.3fs to beat %.3fs by ≥ %.1fx" name fast
         slow factor)

let test_figure4 () =
  let sql = q1 () in
  let native = sim Nra.Classical sql in
  let nra = sim Nra.Nra_optimized sql in
  assert_faster "figure 4: NRA beats nested iteration" ~factor:1.5 nra native

let test_figure5 () =
  (* positive operators: the semijoin/antijoin plan wins *)
  let sql = q2 Q.Any in
  let native = sim Nra.Classical sql in
  let nra = sim Nra.Nra_optimized sql in
  assert_faster "figure 5: native unnesting beats NRA" ~factor:1.2 native nra

let test_figure6 () =
  let sql = q2 Q.All in
  let native = sim Nra.Classical sql in
  let nra = sim Nra.Nra_optimized sql in
  assert_faster "figure 6: NRA beats the forced iteration" ~factor:3.0 nra
    native

let test_figure6_crossover_is_the_operator () =
  (* figures 5 vs 6 differ only in ANY vs ALL: NRA's cost must be the
     same for both, native's must blow up *)
  let nra_any = sim Nra.Nra_optimized (q2 Q.Any) in
  let nra_all = sim Nra.Nra_optimized (q2 Q.All) in
  Alcotest.(check (float 0.05)) "NRA is operator-insensitive" nra_any nra_all;
  let native_any = sim Nra.Classical (q2 Q.Any) in
  let native_all = sim Nra.Classical (q2 Q.All) in
  assert_faster "native collapses on ALL" ~factor:3.0 native_any native_all

let test_figures789 () =
  List.iter
    (fun variant ->
      List.iter
        (fun (quant, exists, label) ->
          let sql = q3 ~quant ~exists ~variant in
          let native = sim Nra.Classical sql in
          let nra = sim Nra.Nra_optimized sql in
          assert_faster
            (Printf.sprintf "figures 7-9 (%s): NRA wins on tree correlation"
               label)
            ~factor:2.0 nra native)
        [
          (Q.All, true, "3a"); (Q.All, false, "3b"); (Q.Any, true, "3c");
        ])
    [ Q.A; Q.B; Q.C ]

let test_not_null_restores_native_on_q1 () =
  (* the paper: with NOT NULL on l_extendedprice, System A antijoins
     Query 1 and "the performance is about the same as ours" *)
  let cat =
    Tpch.Gen.generate
      { Tpch.Gen.default with Tpch.Gen.scale = 0.01; declare_not_null = true }
  in
  Tpch.Gen.add_benchmark_indexes cat;
  let sql = q1 () in
  let run strategy =
    I.reset ();
    ignore (Nra.query_exn ~strategy cat sql);
    I.simulated_seconds ()
  in
  let native = run Nra.Classical in
  let nra = run Nra.Nra_optimized in
  Alcotest.(check bool)
    "antijoin-based native is within 3x of NRA" true
    (native < 3.0 *. nra +. 0.05)

let test_original_vs_optimized_cpu () =
  (* figure 10's claim, qualitatively: optimized nest+select costs no
     more than original *)
  let cat = Lazy.force cat in
  let lo, hi = Q.q1_window ~outer_fraction:0.8 in
  let sql = Q.q1 ~date_lo:lo ~date_hi:hi in
  match Planner.Analyze.analyze_string cat sql with
  | Error m -> Alcotest.fail m
  | Ok t ->
      let module N = Exec.Nra_exec in
      (* interleave the two variants and keep the minimum of each: under
         a loaded CI machine (e.g. the whole suite in parallel) wall
         clock spikes hit some repetitions, but the best run of each
         still approximates its unloaded cost *)
      let once options =
        let _, st = N.run_where ~options cat t in
        st.N.nest_select_seconds
      in
      let orig = ref infinity and opt = ref infinity in
      for _ = 1 to 7 do
        orig := Float.min !orig (once N.original);
        opt := Float.min !opt (once N.optimized)
      done;
      let orig = !orig and opt = !opt in
      Alcotest.(check bool)
        (Printf.sprintf "optimized (%.4fs) <= original (%.4fs) + noise" opt
           orig)
        true
        (opt <= (orig *. 1.25) +. 0.002)

let test_hybrid_takes_the_best_side () =
  (* §6 integration: hybrid must match the winner on both sides of the
     figure 5/6 crossover *)
  let close a b = Float.abs (a -. b) <= 0.02 +. (0.05 *. Float.max a b) in
  let h5 = sim Nra.Hybrid (q2 Q.Any) in
  let c5 = sim Nra.Classical (q2 Q.Any) in
  Alcotest.(check bool)
    (Printf.sprintf "hybrid (%.2fs) = classical (%.2fs) on figure 5" h5 c5)
    true (close h5 c5);
  let h6 = sim Nra.Hybrid (q2 Q.All) in
  let n6 = sim Nra.Nra_full (q2 Q.All) in
  Alcotest.(check bool)
    (Printf.sprintf "hybrid (%.2fs) = nra-full (%.2fs) on figure 6" h6 n6)
    true (close h6 n6)

let () =
  Alcotest.run "figures"
    [
      ( "shapes",
        [
          Alcotest.test_case "figure 4" `Slow test_figure4;
          Alcotest.test_case "figure 5" `Slow test_figure5;
          Alcotest.test_case "figure 6" `Slow test_figure6;
          Alcotest.test_case "figures 5/6 crossover" `Slow
            test_figure6_crossover_is_the_operator;
          Alcotest.test_case "figures 7-9" `Slow test_figures789;
          Alcotest.test_case "NOT NULL restores native on Q1" `Slow
            test_not_null_restores_native_on_q1;
          Alcotest.test_case "original vs optimized" `Slow
            test_original_vs_optimized_cpu;
          Alcotest.test_case "hybrid takes the best side" `Slow
            test_hybrid_takes_the_best_side;
        ] );
    ]
