open Nra
open Test_support

(* these tests pin the I/O simulator's exact accounting by calling the
   charge functions directly (no retry wrapper), so a CI-wide
   NRA_FAULT_INJECT run must not perturb them *)
let () = Fault.disable ()

let mk_table () =
  Table.create ~name:"t" ~key:[ "id" ]
    [
      Schema.column "id" Ttype.Int;
      Schema.column "grp" Ttype.Int;
      Schema.column "v" Ttype.Int;
    ]
    (Array.init 100 (fun i -> [| vi i; vi (i mod 7); vi (100 - i) |]))

let test_table_create () =
  let t = mk_table () in
  Alcotest.(check string) "name" "t" (Table.name t);
  Alcotest.(check int) "cardinality" 100 (Table.cardinality t);
  Alcotest.(check (list string)) "key" [ "id" ] (Table.key_columns t);
  let cols = Schema.columns (Table.schema t) in
  Alcotest.(check bool) "key is NOT NULL" true cols.(0).Schema.not_null;
  Alcotest.(check bool) "key flagged" true cols.(0).Schema.is_key;
  Alcotest.(check string) "qualified" "t.id"
    (Schema.qualified_name cols.(0))

let test_table_errors () =
  (match
     Table.create ~name:"bad" ~key:[] [ Schema.column "a" Ttype.Int ] [||]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted empty key");
  (match
     Table.create ~name:"bad" ~key:[ "zz" ]
       [ Schema.column "a" Ttype.Int ]
       [||]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted unknown key column");
  match
    Table.create ~name:"bad" ~key:[ "a" ]
      [ Schema.column "a" Ttype.Int ]
      [| [| vnull |] |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted NULL key"

let test_alias () =
  let t = Table.alias (mk_table ()) "x" in
  Alcotest.(check string) "renamed" "x.id"
    (Schema.qualified_name (Schema.col (Table.schema t) 0));
  Alcotest.(check int) "same rows" 100 (Table.cardinality t)

let test_hash_index () =
  let t = mk_table () in
  let idx = Hash_index.build (Table.relation t) [| 1 |] in
  Alcotest.(check int) "entries" 100 (Hash_index.cardinality idx);
  let hits = Hash_index.probe idx [| vi 3 |] in
  (* ids ≡ 3 (mod 7) in 0..99: 3, 10, …, 94 *)
  Alcotest.(check int) "group 3 size" 14 (List.length hits);
  List.iter
    (fun id ->
      let row = (Relation.rows (Table.relation t)).(id) in
      Alcotest.check value_testable "key matches" (vi 3) row.(1))
    hits;
  Alcotest.(check (list int)) "null probe" []
    (Hash_index.probe idx [| vnull |]);
  Alcotest.(check (list int)) "miss" [] (Hash_index.probe idx [| vi 99 |])

let test_hash_index_skips_null_keys () =
  let rel =
    Relation.make
      (Schema.of_columns [ Schema.column "a" Ttype.Int ])
      [| [| vi 1 |]; [| vnull |]; [| vi 1 |] |]
  in
  let idx = Hash_index.build rel [| 0 |] in
  Alcotest.(check int) "null row not indexed" 2 (Hash_index.cardinality idx);
  Alcotest.(check int) "both non-null rows found" 2
    (List.length (Hash_index.probe idx [| vi 1 |]))

let test_sorted_index () =
  let t = mk_table () in
  let idx = Sorted_index.build (Table.relation t) [| 2 |] in
  (* v = 100 - id, so range [95, 98] hits ids 2..5 *)
  let ids =
    Sorted_index.range idx ~lo:(Sorted_index.Incl (vi 95))
      ~hi:(Sorted_index.Incl (vi 98))
  in
  Alcotest.(check (list int)) "range ids" [ 2; 3; 4; 5 ]
    (List.sort compare ids);
  let ids =
    Sorted_index.range idx ~lo:(Sorted_index.Excl (vi 95))
      ~hi:Sorted_index.Unbounded
  in
  Alcotest.(check int) "open range" 5 (List.length ids);
  Alcotest.(check (list int)) "probe exact" [ 42 ]
    (Sorted_index.probe idx [| vi 58 |]);
  Alcotest.(check (list int)) "probe null" []
    (Sorted_index.probe idx [| vnull |])

let test_sorted_index_multi () =
  let t = mk_table () in
  let idx = Sorted_index.build (Table.relation t) [| 1; 0 |] in
  Alcotest.(check (list int)) "composite probe" [ 10 ]
    (Sorted_index.probe idx [| vi 3; vi 10 |])

let test_catalog () =
  let cat = Catalog.create () in
  Catalog.register cat (mk_table ());
  Alcotest.(check bool) "mem" true (Catalog.mem cat "t");
  Alcotest.(check bool) "not mem" false (Catalog.mem cat "u");
  Alcotest.(check int) "pk index auto-built" 1
    (match Catalog.hash_index cat ~table:"t" [ "id" ] with
    | Some idx -> List.length (Hash_index.probe idx [| vi 5 |])
    | None -> -1);
  Catalog.create_hash_index cat ~table:"t" [ "grp" ];
  Catalog.create_sorted_index cat ~table:"t" [ "v" ];
  Alcotest.(check bool) "secondary hash found" true
    (Catalog.hash_index cat ~table:"t" [ "grp" ] <> None);
  Alcotest.(check bool) "covering prefers widest" true
    (match Catalog.hash_index_covering cat ~table:"t" [ "grp"; "id" ] with
    | Some (_, cols) -> List.length cols = 1
    | None -> false);
  Alcotest.(check bool) "sorted_index_on" true
    (Catalog.sorted_index_on cat ~table:"t" "v" <> None);
  Catalog.drop_indexes cat ~table:"t";
  Alcotest.(check bool) "secondary dropped" true
    (Catalog.hash_index cat ~table:"t" [ "grp" ] = None);
  Alcotest.(check bool) "pk survives" true
    (Catalog.hash_index cat ~table:"t" [ "id" ] <> None)

let qtest = QCheck_alcotest.to_alcotest

(* indexes agree with a full scan *)
let prop_index_vs_scan =
  QCheck.Test.make ~name:"hash and sorted probes agree with scans"
    QCheck.(pair (small_list (option (int_bound 10))) (option (int_bound 10)))
    (fun (vals, probe_v) ->
      let to_v = function None -> Value.Null | Some i -> Value.Int i in
      let rel =
        Relation.make
          (Schema.of_columns [ Schema.column "a" Ttype.Int ])
          (Array.of_list (List.map (fun v -> [| to_v v |]) vals))
      in
      let probe = [| to_v probe_v |] in
      let expect =
        if Value.is_null probe.(0) then []
        else
          List.filteri (fun _ v -> v = probe_v) vals |> List.length
          |> fun n -> List.init n Fun.id
      in
      let hash_hits =
        Hash_index.probe (Hash_index.build rel [| 0 |]) probe
      in
      let sorted_hits =
        Sorted_index.probe (Sorted_index.build rel [| 0 |]) probe
      in
      List.length hash_hits = List.length expect
      && List.length sorted_hits = List.length expect)

let () =
  Alcotest.run "storage"
    [
      ( "table",
        [
          Alcotest.test_case "create" `Quick test_table_create;
          Alcotest.test_case "errors" `Quick test_table_errors;
          Alcotest.test_case "alias" `Quick test_alias;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "hash" `Quick test_hash_index;
          Alcotest.test_case "hash skips NULL keys" `Quick
            test_hash_index_skips_null_keys;
          Alcotest.test_case "sorted" `Quick test_sorted_index;
          Alcotest.test_case "sorted composite" `Quick test_sorted_index_multi;
        ] );
      ("catalog", [ Alcotest.test_case "registry" `Quick test_catalog ]);
      ("properties", [ qtest prop_index_vs_scan ]);
    ]
