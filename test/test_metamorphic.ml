(* Metamorphic testing: SQL-level identities that must hold on any
   database, checked on randomized tables built through the DDL/DML
   path.  These are an oracle orthogonal to the cross-executor
   equivalence suite — they catch bugs all executors could share. *)

open Nra

let rng = Tpch.Prng.create 0xC0FFEEL

let exec cat sql =
  match Nra.exec cat sql with
  | Ok r -> r
  | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" sql m)

let card cat sql =
  match exec cat sql with
  | Nra.Rows r -> Relation.cardinality r
  | _ -> Alcotest.fail "expected rows"

let scalar cat sql =
  match exec cat sql with
  | Nra.Rows r when Relation.cardinality r = 1 -> (Relation.rows r).(0).(0)
  | _ -> Alcotest.fail ("expected a single value from " ^ sql)

(* a fresh random table through CREATE + INSERT *)
let random_table cat name rows =
  ignore
    (exec cat
       (Printf.sprintf
          "create table %s (id int, a int, b int, primary key (id))" name));
  let values =
    List.init rows (fun i ->
        let v () =
          if Tpch.Prng.bool rng 0.2 then "null"
          else string_of_int (Tpch.Prng.int rng 8)
        in
        Printf.sprintf "(%d, %s, %s)" i (v ()) (v ()))
  in
  if rows > 0 then
    ignore
      (exec cat
         (Printf.sprintf "insert into %s values %s" name
            (String.concat ", " values)))

let fresh_db () =
  let cat = Catalog.create () in
  random_table cat "t" (1 + Tpch.Prng.int rng 40);
  random_table cat "u" (Tpch.Prng.int rng 30);
  cat

let random_pred () =
  let cmp () = [| "="; "<>"; "<"; "<="; ">"; ">=" |].(Tpch.Prng.int rng 6) in
  let k () = string_of_int (Tpch.Prng.int rng 8) in
  match Tpch.Prng.int rng 5 with
  | 0 -> Printf.sprintf "a %s %s" (cmp ()) (k ())
  | 1 -> Printf.sprintf "a %s b" (cmp ())
  | 2 -> "a is null"
  | 3 -> Printf.sprintf "a between %s and %s" (k ()) (k ())
  | _ -> Printf.sprintf "a %s %s and b is not null" (cmp ()) (k ())

let rounds = 40

let test_count_star_is_cardinality () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let p = random_pred () in
    let n = card cat (Printf.sprintf "select id from t where %s" p) in
    let c = scalar cat (Printf.sprintf "select count(*) from t where %s" p) in
    Alcotest.check Test_support.value_testable p (Value.Int n) c
  done

let test_excluded_middle_under_3vl () =
  (* |P| + |NOT P| + |unknown P| = |t|, where the unknown rows are those
     selected by neither *)
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let p = random_pred () in
    let total = card cat "select id from t" in
    let yes = card cat (Printf.sprintf "select id from t where %s" p) in
    let no = card cat (Printf.sprintf "select id from t where not (%s)" p) in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %d + %d <= %d" p yes no total)
      true
      (yes + no <= total);
    (* the remainder is exactly the rows where the predicate is unknown:
       adding IS-NULL guards must recover them *)
    let unknown =
      card cat
        (Printf.sprintf
           "select id from t where (a is null or b is null) and id not in \
            (select id from t where %s) and id not in (select id from t \
            where not (%s))"
           p p)
    in
    Alcotest.(check int) "partition" total (yes + no + unknown)
  done

let test_group_counts_sum_to_total () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let p = random_pred () in
    let total = card cat (Printf.sprintf "select id from t where %s" p) in
    let summed =
      scalar cat
        (Printf.sprintf
           "with g as (select a, count(*) as n from t where %s group by a) \
            select sum(n) from g"
           p)
    in
    let expected = if total = 0 then Value.Null else Value.Int total in
    Alcotest.check Test_support.value_testable "sum of group counts"
      expected summed
  done

let test_distinct_and_limit_bounds () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let all = card cat "select a from t" in
    let distinct = card cat "select distinct a from t" in
    Alcotest.(check bool) "distinct <= all" true (distinct <= all);
    let k = Tpch.Prng.int rng 10 in
    let limited = card cat (Printf.sprintf "select a from t limit %d" k) in
    Alcotest.(check int) "limit" (min k all) limited;
    let ordered = card cat "select a from t order by a desc" in
    Alcotest.(check int) "order by permutes" all ordered
  done

let test_setop_cardinalities () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let a = card cat "select a from t" in
    let b = card cat "select a from u" in
    Alcotest.(check int) "union all"
      (a + b)
      (card cat "select a from t union all select a from u");
    let inter = card cat "select a from t intersect all select a from u" in
    let except = card cat "select a from t except all select a from u" in
    Alcotest.(check int) "A = (A∩B) + (A−B) as bags" a (inter + except);
    let union = card cat "select a from t union select a from u" in
    let du = card cat "select distinct a from t" in
    let dv = card cat "select distinct a from u" in
    Alcotest.(check bool) "|A∪B| <= |A|+|B| (sets)" true (union <= du + dv);
    Alcotest.(check bool) "|A∪B| >= max" true (union >= max du dv)
  done

let test_in_vs_exists () =
  (* x IN (select y …) ≡ EXISTS (select * … where y = x) — note the
     equivalence holds in 3VL for the WHERE-filtered result *)
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let via_in = card cat "select id from t where a in (select a from u)" in
    let via_exists =
      card cat
        "select id from t where exists (select * from u u2 where u2.a = t.a)"
    in
    Alcotest.(check int) "IN = EXISTS-with-equality" via_in via_exists;
    let via_not_in =
      card cat "select id from t where a not in (select a from u)"
    in
    (* NOT IN is stricter than NOT EXISTS when NULLs are around *)
    let via_not_exists =
      card cat
        "select id from t where not exists (select * from u u2 where u2.a \
         = t.a)"
    in
    Alcotest.(check bool) "NOT IN <= NOT EXISTS" true
      (via_not_in <= via_not_exists)
  done

let test_delete_is_complement () =
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let p = random_pred () in
    let total = card cat "select id from t" in
    let matching = card cat (Printf.sprintf "select id from t where %s" p) in
    (match exec cat (Printf.sprintf "delete from t where %s" p) with
    | Nra.Count n -> Alcotest.(check int) "delete count" matching n
    | _ -> Alcotest.fail "expected count");
    Alcotest.(check int) "survivors" (total - matching)
      (card cat "select id from t")
  done

(* ---------- type-JA differential oracle ----------

   Seeded random aggregate-linking queries (IN / NOT IN / θ ANY / θ ALL
   / θ scalar over COUNT / SUM / AVG / MIN / MAX subqueries, correlated
   and not) checked byte-for-byte against the naive tuple-at-a-time
   reference evaluator — across every strategy plus Auto, across domain
   counts and frame budgets, with seeded fault injection on.  The
   reference re-runs the subquery per outer tuple by lexical scoping
   and shares nothing with the nest-then-link pipeline under test. *)

module B = Nra.Bufpool
module Ref = Test_support.Reference_eval

let ja_rng = Tpch.Prng.create 0x1A5EEDL

let ja_catalog () =
  (* built directly (not through DDL) so hundreds of small catalogs are
     cheap; the DDL path is exercised by the identity tests above *)
  let v_opt bound =
    if Tpch.Prng.bool ja_rng 0.25 then Value.Null
    else Value.Int (Tpch.Prng.int ja_rng bound)
  in
  let cat = Catalog.create () in
  Catalog.register cat
    (Table.create ~name:"oo" ~key:[ "oid" ]
       [
         Schema.column "oid" Ttype.Int;
         Schema.column "a" Ttype.Int;
         Schema.column "b" Ttype.Int;
       ]
       (Array.init 8 (fun i -> [| Value.Int i; v_opt 6; v_opt 6 |])));
  Catalog.register cat
    (Table.create ~name:"ii" ~key:[ "iid" ]
       [
         Schema.column "iid" Ttype.Int;
         Schema.column "c" Ttype.Int;
         Schema.column "d" Ttype.Int;
         Schema.column "oref" Ttype.Int;
       ]
       (Array.init 10 (fun i -> [| Value.Int i; v_opt 6; v_opt 6; v_opt 8 |])));
  cat

let ja_query () =
  let cmp () = [| "="; "<>"; "<"; "<="; ">"; ">=" |].(Tpch.Prng.int ja_rng 6) in
  let k () = Tpch.Prng.int ja_rng 6 in
  let agg =
    match Tpch.Prng.int ja_rng 7 with
    | 0 -> "count(*)"
    | 1 -> "count(ii.c)"
    | 2 -> "sum(ii.c)"
    | 3 -> "avg(ii.c)"
    | 4 -> "min(ii.c)"
    | 5 -> "max(ii.c)"
    | _ -> "max(ii.c + ii.d)" (* expression aggregate argument *)
  in
  let corr =
    match Tpch.Prng.int ja_rng 4 with
    | 0 | 1 -> Some "ii.oref = oo.oid" (* equality correlation *)
    | 2 -> Some "ii.c <> oo.a" (* non-equality correlation *)
    | _ -> None (* uncorrelated *)
  in
  let local =
    match Tpch.Prng.int ja_rng 4 with
    | 0 -> Some (Printf.sprintf "ii.d %s %d" (cmp ()) (k ()))
    | 1 -> Some "ii.d is not null"
    | 2 -> Some (Printf.sprintf "ii.d between %d and %d" (k ()) (2 + k ()))
    | _ -> None
  in
  let where =
    match List.filter_map Fun.id [ corr; local ] with
    | [] -> ""
    | cs -> " where " ^ String.concat " and " cs
  in
  let sub = Printf.sprintf "(select %s from ii%s)" agg where in
  let lhs =
    match Tpch.Prng.int ja_rng 4 with
    | 0 -> "oo.b"
    | 1 -> "oo.a + 1" (* linking attribute is an expression *)
    | 2 -> string_of_int (k ()) (* constant, e.g. 0 IN (COUNT …) *)
    | _ -> "oo.a + oo.b"
  in
  let link =
    match Tpch.Prng.int ja_rng 5 with
    | 0 -> Printf.sprintf "%s in %s" lhs sub
    | 1 -> Printf.sprintf "%s not in %s" lhs sub
    | 2 -> Printf.sprintf "%s %s any %s" lhs (cmp ()) sub
    | 3 -> Printf.sprintf "%s %s all %s" lhs (cmp ()) sub
    | _ -> Printf.sprintf "%s %s %s" lhs (cmp ()) sub
  in
  Printf.sprintf "select oid from oo where oo.a %s %d and %s" (cmp ()) (k ())
    link

let ja_rounds = 210
let ja_domains = [ 0; 2; 4 ]
let ja_budgets = [ ("8", Some 8); ("inf", None) ]

let test_ja_differential () =
  (* the reference answers are config-independent: compute them once *)
  let cases =
    List.init ja_rounds (fun _ ->
        let cat = ja_catalog () in
        let sql = ja_query () in
        match Ref.sorted_csv cat sql with
        | Ok csv -> (cat, sql, csv)
        | Error m -> Alcotest.fail (sql ^ ": reference: " ^ m))
  in
  let saved = Fault.config () in
  let restore () =
    Nra_pool.Pool.set_size 0;
    B.set_frames None;
    if saved.Fault.probability > 0.0 || saved.Fault.alloc_probability > 0.0
    then
      Fault.configure ~seed:saved.Fault.seed
        ~max_retries:saved.Fault.max_retries
        ~backoff_ms:saved.Fault.backoff_ms
        ~alloc_probability:saved.Fault.alloc_probability
        saved.Fault.probability
    else Fault.disable ()
  in
  let run_config ~domains (budget_name, frames) =
    B.set_frames frames;
    Nra_pool.Pool.set_size domains;
    (* seeded faults: deterministic, absorbed by the retry loop *)
    Fault.configure ~seed:7 ~max_retries:6 ~alloc_probability:0.05 0.02;
    List.iter
      (fun (cat, sql, expect) ->
        List.iter
          (fun s ->
            match Nra.query ~strategy:s cat sql with
            | Error m ->
                Alcotest.fail
                  (Printf.sprintf "%s (%s, domains=%d, frames=%s): %s" sql
                     (Nra.strategy_to_string s) domains budget_name m)
            | Ok rel ->
                let got = Ref.relation_csv rel in
                if got <> expect then
                  Alcotest.fail
                    (Printf.sprintf
                       "%s: %s disagrees with the reference (domains=%d, \
                        frames=%s)\nreference:\n%s\ngot:\n%s"
                       sql (Nra.strategy_to_string s) domains budget_name
                       expect got))
          Test_support.all_strategies)
      cases
  in
  Fun.protect ~finally:restore (fun () ->
      List.iter
        (fun domains ->
          List.iter (fun budget -> run_config ~domains budget) ja_budgets)
        ja_domains)

let test_ja_singleton_identities () =
  (* an aggregate subquery always returns exactly one row, so the
     linking operators collapse: IN ≡ (=), θ ANY ≡ θ ALL ≡ θ scalar,
     and [0 IN (COUNT ...)] ≡ NOT EXISTS *)
  for _ = 1 to rounds do
    let cat = fresh_db () in
    let agg =
      [| "count(*)"; "count(u2.a)"; "sum(u2.a)"; "avg(u2.a)"; "min(u2.a)";
         "max(u2.a)" |].(Tpch.Prng.int rng 6)
    in
    let cmp = [| "="; "<>"; "<"; "<="; ">"; ">=" |].(Tpch.Prng.int rng 6) in
    let sub = Printf.sprintf "(select %s from u u2 where u2.b = t.b)" agg in
    let any = card cat (Printf.sprintf "select id from t where a %s any %s" cmp sub) in
    let all = card cat (Printf.sprintf "select id from t where a %s all %s" cmp sub) in
    let scl = card cat (Printf.sprintf "select id from t where a %s %s" cmp sub) in
    Alcotest.(check int) (sub ^ ": ANY = ALL over a singleton") any all;
    Alcotest.(check int) (sub ^ ": ALL = scalar over a singleton") all scl;
    let in_eq = card cat (Printf.sprintf "select id from t where a in %s" sub) in
    let eq = card cat (Printf.sprintf "select id from t where a = %s" sub) in
    Alcotest.(check int) (sub ^ ": IN = (=) over a singleton") in_eq eq;
    let via_count =
      card cat
        "select id from t where 0 in (select count(*) from u u2 where u2.a \
         = t.a)"
    in
    let via_not_exists =
      card cat
        "select id from t where not exists (select * from u u2 where u2.a \
         = t.a)"
    in
    Alcotest.(check int) "COUNT(*) = 0 is NOT EXISTS" via_count via_not_exists
  done

let () =
  Alcotest.run "metamorphic"
    [
      ( "identities",
        [
          Alcotest.test_case "count(*) = cardinality" `Quick
            test_count_star_is_cardinality;
          Alcotest.test_case "3VL excluded middle" `Quick
            test_excluded_middle_under_3vl;
          Alcotest.test_case "group counts sum" `Quick
            test_group_counts_sum_to_total;
          Alcotest.test_case "distinct/limit/order bounds" `Quick
            test_distinct_and_limit_bounds;
          Alcotest.test_case "set operation cardinalities" `Quick
            test_setop_cardinalities;
          Alcotest.test_case "IN vs EXISTS" `Quick test_in_vs_exists;
          Alcotest.test_case "delete complements select" `Quick
            test_delete_is_complement;
          Alcotest.test_case "JA singleton collapse" `Quick
            test_ja_singleton_identities;
        ] );
      ( "ja differential",
        [
          Alcotest.test_case "all strategies match the naive reference"
            `Quick test_ja_differential;
        ] );
    ]
